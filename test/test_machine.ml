let occ = Machine.Occupancy.default

let test_paper_mapping () =
  (* Section II-A: PRP <= 24 VGPRs -> occupancy 10; 25..28 -> 9. *)
  Alcotest.(check int) "24 -> 10" 10 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 24);
  Alcotest.(check int) "1 -> 10" 10 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 1);
  Alcotest.(check int) "25 -> 9" 9 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 25);
  Alcotest.(check int) "28 -> 9" 9 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 28);
  Alcotest.(check int) "29 -> 8" 8 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 29);
  Alcotest.(check int) "0 -> max" 10 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 0);
  Alcotest.(check int) "huge -> 1" 1 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr 500)

let test_aprp_paper_values () =
  (* APRP maps 1..24 -> 24 and 25..28 -> 28 (Section II-A). *)
  for p = 1 to 24 do
    Alcotest.(check int) "aprp low bucket" 24 (Machine.Occupancy.aprp occ Ir.Reg.Vgpr p)
  done;
  for p = 25 to 28 do
    Alcotest.(check int) "aprp second bucket" 28 (Machine.Occupancy.aprp occ Ir.Reg.Vgpr p)
  done;
  Alcotest.(check int) "aprp 0" 0 (Machine.Occupancy.aprp occ Ir.Reg.Vgpr 0)

let prop_aprp_idempotent =
  QCheck.Test.make ~name:"aprp idempotent" ~count:300 (QCheck.int_range 0 300) (fun p ->
      let a = Machine.Occupancy.aprp occ Ir.Reg.Vgpr p in
      Machine.Occupancy.aprp occ Ir.Reg.Vgpr a = a)

let prop_aprp_monotone =
  QCheck.Test.make ~name:"aprp monotone" ~count:300
    QCheck.(pair (int_range 0 300) (int_range 0 300))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Machine.Occupancy.aprp occ Ir.Reg.Vgpr lo <= Machine.Occupancy.aprp occ Ir.Reg.Vgpr hi)

let prop_aprp_preserves_occupancy =
  QCheck.Test.make ~name:"aprp preserves occupancy" ~count:300 (QCheck.int_range 1 300)
    (fun p ->
      Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr p
      = Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr
          (Machine.Occupancy.aprp occ Ir.Reg.Vgpr p))

let prop_occupancy_antitone =
  QCheck.Test.make ~name:"occupancy non-increasing in pressure" ~count:300
    QCheck.(pair (int_range 0 300) (int_range 0 300))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr lo
      >= Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr hi)

let test_max_pressure_inverse () =
  for waves = 1 to 10 do
    let p = Machine.Occupancy.max_pressure_for occ Ir.Reg.Vgpr ~occupancy:waves in
    Alcotest.(check bool)
      (Printf.sprintf "pressure %d supports %d waves" p waves)
      true
      (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr p >= waves);
    (* occupancy is floored at 1, so the "one granule more drops below"
       check only applies above that floor *)
    if waves > 1 && waves < 10 then
      Alcotest.(check bool) "p+granularity drops below" true
        (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr (p + 4) < waves)
  done

let test_of_pressures_is_min () =
  Alcotest.(check int) "vgpr limits" 9 (Machine.Occupancy.of_pressures occ ~vgpr:28 ~sgpr:1);
  Alcotest.(check int) "sgpr limits" 8
    (Machine.Occupancy.of_pressures occ ~vgpr:1 ~sgpr:96)

let test_sgpr_mapping () =
  (* 800 SGPRs, granularity 16: 80 -> 10 waves, 96 -> 8 (800/96=8.3). *)
  Alcotest.(check int) "80 sgprs -> 10" 10 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Sgpr 80);
  Alcotest.(check int) "96 sgprs -> 8" 8 (Machine.Occupancy.of_class_pressure occ Ir.Reg.Sgpr 96)

let test_target_constants () =
  let t = Machine.Target.vega20 in
  Alcotest.(check int) "total SIMDs" 240 (Machine.Target.total_simds t);
  Alcotest.(check int) "wavefront size" 64 t.Machine.Target.wavefront_size;
  Alcotest.(check int) "vgpr budget" 256 (Machine.Target.reg_budget t Ir.Reg.Vgpr);
  Alcotest.(check int) "sgpr granularity" 16 (Machine.Target.granularity t Ir.Reg.Sgpr)

let test_issue_model () =
  Alcotest.(check int) "single issue width" 1
    (Machine.Issue_model.issue_width Machine.Issue_model.single_issue);
  Alcotest.(check int) "slots per cycle" 1
    (Machine.Issue_model.slots_per_cycle Machine.Issue_model.single_issue Ir.Opcode.Valu);
  Alcotest.check_raises "rejects non-positive width"
    (Invalid_argument "Issue_model.make: non-positive width") (fun () ->
      ignore (Machine.Issue_model.make ~issue_width:0))

let test_occupancy_rejects_negative () =
  Alcotest.check_raises "negative pressure"
    (Invalid_argument "Occupancy.of_class_pressure: negative pressure") (fun () ->
      ignore (Machine.Occupancy.of_class_pressure occ Ir.Reg.Vgpr (-1)))

let suite =
  [
    Alcotest.test_case "paper occupancy mapping" `Quick test_paper_mapping;
    Alcotest.test_case "paper APRP buckets" `Quick test_aprp_paper_values;
    Alcotest.test_case "max_pressure_for inverse" `Quick test_max_pressure_inverse;
    Alcotest.test_case "of_pressures is min" `Quick test_of_pressures_is_min;
    Alcotest.test_case "sgpr mapping" `Quick test_sgpr_mapping;
    Alcotest.test_case "target constants" `Quick test_target_constants;
    Alcotest.test_case "issue model" `Quick test_issue_model;
    Alcotest.test_case "occupancy domain" `Quick test_occupancy_rejects_negative;
  ]
  @ Tu.qtests
      [
        prop_aprp_idempotent;
        prop_aprp_monotone;
        prop_aprp_preserves_occupancy;
        prop_occupancy_antitone;
      ]
