(* 62 usable bits per word keeps all arithmetic within OCaml's tagged
   63-bit ints on 64-bit platforms with a margin for shifts. *)
let bits_per_word = 62

type t = { words : int array; capacity : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  let n = (capacity + bits_per_word - 1) / bits_per_word in
  { words = Array.make (max n 1) 0; capacity }

let capacity t = t.capacity

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let same_cap a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into ~into s =
  same_cap into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter_into ~into s =
  same_cap into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land s.words.(i)
  done

let diff_into ~into s =
  same_cap into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot s.words.(i)
  done

let inter_cardinal a b =
  same_cap a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  same_cap a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t
