type kind = Critical_path | Last_use_count | Source_order

let all = [ Critical_path; Last_use_count; Source_order ]

let to_string = function
  | Critical_path -> "critical-path"
  | Last_use_count -> "last-use-count"
  | Source_order -> "source-order"

type ctx = { graph : Ddg.Graph.t; cp : Ddg.Critpath.t; rp : Rp_tracker.t }

let make_ctx ?cp graph rp =
  (* Critical-path distances depend only on the graph: a colony computes
     them once and shares them across its lanes via [?cp]. *)
  let cp = match cp with Some cp -> cp | None -> Ddg.Critpath.compute graph in
  { graph; cp; rp }

let score kind ctx i =
  match kind with
  | Critical_path -> float_of_int (Ddg.Critpath.backward ctx.cp i)
  | Last_use_count ->
      (* Primary: live ranges closed minus opened; secondary: distance to
         the leaves so ties still make progress along long chains. *)
      let net = Rp_tracker.closes_minus_opens ctx.rp i in
      (float_of_int net *. 1024.0) +. float_of_int (Ddg.Critpath.backward ctx.cp i)
  | Source_order -> float_of_int (ctx.graph.Ddg.Graph.n - i)

(* [Float.max 0.0 v] for the shifted scores below: every operand comes
   from [float_of_int], so NaN and -0.0 never arise and the branch is
   value-identical — but it inlines (same module), where the stdlib
   call would box its arguments and result in builds without
   cross-module inlining. *)
let[@inline] pos v = if v > 0.0 then v else 0.0

let eta kind ctx i =
  (* Scores can be negative (LUC); shift into a strictly positive range
     with a floor so no candidate gets probability zero. *)
  let s = score kind ctx i in
  1.0 +. (pos (s +. 4096.0) /. 512.0)

(* Same transform, applied to a whole candidate slice into a caller
   scratch buffer. The kind dispatch happens once outside the loop; each
   branch repeats [eta]'s exact float expression so the filled values are
   bit-identical to per-candidate [eta] calls (the ACO selection is
   byte-reproducible across the list- and array-backed ants). *)
let fill_eta kind ctx ~cand ~n ~out =
  match kind with
  | Critical_path ->
      for k = 0 to n - 1 do
        let s = float_of_int (Ddg.Critpath.backward ctx.cp cand.(k)) in
        out.(k) <- 1.0 +. (pos (s +. 4096.0) /. 512.0)
      done
  | Last_use_count ->
      for k = 0 to n - 1 do
        let i = cand.(k) in
        let net = Rp_tracker.closes_minus_opens ctx.rp i in
        let s =
          (float_of_int net *. 1024.0) +. float_of_int (Ddg.Critpath.backward ctx.cp i)
        in
        out.(k) <- 1.0 +. (pos (s +. 4096.0) /. 512.0)
      done
  | Source_order ->
      let n_instrs = ctx.graph.Ddg.Graph.n in
      for k = 0 to n - 1 do
        let s = float_of_int (n_instrs - cand.(k)) in
        out.(k) <- 1.0 +. (pos (s +. 4096.0) /. 512.0)
      done

(* [fill_eta] for the unboxed data plane: identical expressions, stores
   into a [Support.Fmat] row slice (raw float64 stores, no boxing) at
   flat offset [base]. The LUC row of the ant's score matrix is filled
   through this. *)
let fill_eta_mat kind ctx ~cand ~n ~mat ~base =
  (* Raw float64 stores through the matrix's concrete bigarray: the
     primitive specializes on the static type at this call site, so the
     stores stay unboxed even when cross-module inlining is off
     ([-opaque] dev builds). *)
  let d = mat.Support.Fmat.data in
  match kind with
  | Critical_path ->
      for k = 0 to n - 1 do
        let s = float_of_int (Ddg.Critpath.backward ctx.cp cand.(k)) in
        Bigarray.Array1.unsafe_set d (base + k)
          (1.0 +. (pos (s +. 4096.0) /. 512.0))
      done
  | Last_use_count ->
      for k = 0 to n - 1 do
        let i = cand.(k) in
        let net = Rp_tracker.closes_minus_opens ctx.rp i in
        let s =
          (float_of_int net *. 1024.0) +. float_of_int (Ddg.Critpath.backward ctx.cp i)
        in
        Bigarray.Array1.unsafe_set d (base + k)
          (1.0 +. (pos (s +. 4096.0) /. 512.0))
      done
  | Source_order ->
      let n_instrs = ctx.graph.Ddg.Graph.n in
      for k = 0 to n - 1 do
        let s = float_of_int (n_instrs - cand.(k)) in
        Bigarray.Array1.unsafe_set d (base + k)
          (1.0 +. (pos (s +. 4096.0) /. 512.0))
      done

let best kind ctx = function
  | [] -> invalid_arg "Heuristic.best: empty candidate list"
  | c :: rest ->
      let better i j =
        let si = score kind ctx i and sj = score kind ctx j in
        if si > sj then i else if sj > si then j else min i j
      in
      List.fold_left better c rest
