(** Stand-in for AMD's production scheduler
    (GCNMaxOccupancySchedStrategy, reference [65] of the paper).

    A greedy, latency-aware list scheduler that keeps occupancy as the
    primary objective: among the ready instructions it keeps those whose
    scheduling preserves the best achievable occupancy (predicted through
    the incremental RP tracker) and picks the one with the highest
    critical-path priority. This is the baseline every experiment
    compares against ("base LLVM" / "AMD scheduler" in Tables 2, 5 and
    Figure 4). *)

val run : Machine.Occupancy.t -> Ddg.Graph.t -> Schedule.t
(** Schedule the region. The result always validates with latencies. *)

val run_with_cost : Machine.Occupancy.t -> Ddg.Graph.t -> Schedule.t * Cost.t
