(** Kernel-level wall-clock assembly.

    The cooperative kernel of Section IV-B alternates three stages per
    iteration — parallel schedule construction, winner reduction,
    pheromone update — separated by grid-wide synchronizations. This
    module turns per-wavefront construction times into an iteration wall
    time (wavefronts are assigned round-robin to the target's SIMD units;
    a SIMD executes its wavefronts back to back) and adds the reduction,
    table-update and synchronization costs; and it assembles whole-pass
    times from per-iteration times plus setup/teardown. *)

val construction_time_ns : Config.t -> wavefront_times:float array -> float
(** Wall time of the construction stage: max over SIMD units of the sum
    of the times of the wavefronts assigned to it. *)

val reduction_wall_ops : threads:int -> int
(** Serialized rounds of the tree reduction: [O(log2 threads)] with a
    per-round constant. *)

val update_wall_ops : n:int -> threads:int -> int
(** Pheromone decay + deposit, columns divided across threads. *)

val iteration_time_ns : Config.t -> n:int -> wavefront_times:float array -> float
(** Construction + reduction + update + two grid syncs. *)

val watchdog_clamp : deadline_ns:float -> float -> float * bool
(** [watchdog_clamp ~deadline_ns t] is [(t, false)] when the iteration
    finished within the per-iteration deadline, and
    [(deadline_ns, true)] when the watchdog fired: the iteration is
    charged exactly the deadline and the caller must discard its
    result. An infinite deadline never fires. *)

val trace_iteration :
  Obs.Trace.t -> Config.t -> n:int -> track:int -> ts:float -> construction_ns:float -> unit
(** Record one iteration's stage budget on [track] of the flight
    recorder: construct / sync / reduce / sync / update spans starting at
    simulated time [ts], with the same cost terms {!iteration_time_ns}
    charges. A no-op on a disabled recorder. *)

val pass_time_ns :
  Config.t -> n:int -> ready_ub:int -> iteration_times:float list -> float
(** One ACO invocation: launch overhead + memory setup + the iterations +
    teardown (Section IV-B's full kernel life cycle). *)

val pass_time_ns_buf :
  Config.t -> n:int -> ready_ub:int -> times:float array -> count:int -> float
(** {!pass_time_ns} over the first [count] entries of a reused buffer. *)
