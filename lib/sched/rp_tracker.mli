(** Incremental register-pressure tracking during schedule construction.

    RP computation follows Section II-A: a register becomes live when its
    defining instruction is scheduled and dies when its last use is
    scheduled, except that region live-in registers are live from cycle 0
    and live-out registers never die inside the region. The tracker
    maintains the current and peak pressure per register class in O(defs
    + uses) per scheduled instruction; the test suite cross-checks it
    against a naive whole-profile recomputation. *)

type t

val create : Ddg.Graph.t -> t
(** Fresh tracker for the region of the graph; live-in registers are
    already counted. *)

val reset : t -> unit
(** Return to the initial state (ants reuse trackers across iterations to
    mirror the paper's no-dynamic-allocation rule). *)

val copy : t -> t

val schedule : t -> int -> unit
(** Account for issuing the given instruction. Each instruction must be
    scheduled at most once per [reset] (unchecked; the schedulers
    guarantee it). *)

val current : t -> Ir.Reg.cls -> int
val peak : t -> Ir.Reg.cls -> int

val peak_if_scheduled : t -> int -> Ir.Reg.cls -> int
(** Peak pressure the class would have right after scheduling the
    instruction, without mutating the tracker (used by greedy tie-breaks
    and the optional-stall heuristic). *)

val delta_if_scheduled : t -> int -> Ir.Reg.cls -> int
(** Net change to the *current* pressure: defs opening live ranges minus
    uses closing them. *)

val fits_within : t -> int -> target_vgpr:int -> target_sgpr:int -> bool
(** Would scheduling the instruction keep both class peaks within the
    given targets? Single pass over its Def/Use sets (the pass-2 hot
    path). *)

val closes_count : t -> int -> int
(** Number of live ranges (any class) the instruction would close — the
    Last-Use-Count heuristic's key (Section IV-A / reference [61]). *)

val opens_count : t -> int -> int
(** Live ranges (any class) the instruction would open. *)

val naive_peaks : Ddg.Graph.t -> int array -> (Ir.Reg.cls -> int)
(** Reference implementation: peak pressures of a complete instruction
    order computed from scratch. Used by tests and as documentation of
    the liveness rules. *)
