(* The compile service as a long-lived daemon. See serve.mli for the
   contract; the shape of the code follows the life of a request:

     parse_request --> handle (admit / shed / answer control)
                   --> process (deadline + retry/backoff compile loop)
                   --> reply through [on_reply]

   The loop is deliberately single-threaded and transport-free: all
   compile time is *simulated* nanoseconds from the cost model, so
   admission, backoff and deadline decisions are exactly reproducible in
   tests and drills. The pump that owns the bytes (stdio/socket in
   bin/gpuaco, a plain loop in tests) decides when to read frames and
   when to call [process]. *)

type config = {
  compile : Compile.config;
  queue_capacity : int;
  max_in_flight : int;
  shed_threshold : float;
  max_retries : int;
  backoff_base_ns : float;
  deadline_slack : float;
  memo_capacity : int;
  state_dir : string option;
  frame_limit : int;
  quality_ledger : string option;
}

let default_config compile =
  {
    compile;
    queue_capacity = 64;
    max_in_flight = 4;
    shed_threshold = 0.75;
    max_retries = 2;
    backoff_base_ns = 50_000.0;
    deadline_slack = 4.0;
    memo_capacity = 512;
    state_dir = None;
    frame_limit = Support.Frame.default_limit;
    quality_ledger = None;
  }

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

type proto_error =
  | Bad_frame of string
  | Bad_request of string
  | Bad_region of Ir.Parse.error
  | Unknown_shape of string
  | Unknown_backend of string
  | Shutting_down

let proto_error_code = function
  | Bad_frame _ -> "bad-frame"
  | Bad_request _ -> "bad-request"
  | Bad_region _ -> "bad-region"
  | Unknown_shape _ -> "unknown-shape"
  | Unknown_backend _ -> "unknown-backend"
  | Shutting_down -> "shutting-down"

let proto_error_message = function
  | Bad_frame what -> what
  | Bad_request what -> what
  | Bad_region e -> Ir.Parse.error_to_string e
  | Unknown_shape s ->
      Printf.sprintf "unknown shape %S (known: %s)" s
        (String.concat ", " Workload.Shapes.spec_names)
  | Unknown_backend b -> Printf.sprintf "backend %S is not registered" b
  | Shutting_down -> "service is draining; request refused"

type source =
  | Generated of { shape : string; size : int; seed : int }
  | Inline of Ir.Region.t

type request = {
  req_id : string;
  req_client : string option;
  source : source;
  fault_rate : float option;
  fault_seed : int option;
  budget_ms : float option;
  backend : Engine.Dispatch.policy option;
}

type command =
  | Compile of request
  | Ping of string
  | Stats of string
  | Metrics_dump of string
  | Watch of string
  | Shutdown of string

let known_keys =
  [
    "op"; "id"; "client"; "shape"; "size"; "seed"; "fault-rate"; "fault-seed";
    "budget-ms"; "backend";
  ]

(* every compile-only key, for rejecting them on control commands *)
let compile_keys =
  [ "client"; "shape"; "size"; "seed"; "fault-rate"; "fault-seed"; "budget-ms"; "backend" ]

exception Err of proto_error

let parse_request payload =
  let header, body =
    match String.index_opt payload '\n' with
    | None -> (payload, "")
    | Some i ->
        ( String.sub payload 0 i,
          String.sub payload (i + 1) (String.length payload - i - 1) )
  in
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim header))
  in
  (* best-effort id so even a rejected request gets a correlated reply *)
  let best_id =
    List.fold_left
      (fun acc tok ->
        match String.index_opt tok '=' with
        | Some i when String.sub tok 0 i = "id" ->
            String.sub tok (i + 1) (String.length tok - i - 1)
        | _ -> acc)
      "-" tokens
  in
  let bad fmt = Printf.ksprintf (fun m -> raise (Err (Bad_request m))) fmt in
  try
    let kv =
      List.map
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> bad "token %S is not key=value" tok
          | Some i ->
              (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
        tokens
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k known_keys) then bad "unknown key %S" k;
        if List.length (List.filter (fun (k', _) -> String.equal k k') kv) > 1 then
          bad "duplicate key %S" k)
      kv;
    let get k = List.assoc_opt k kv in
    let get_int k =
      Option.map
        (fun v ->
          match int_of_string_opt v with
          | Some n -> n
          | None -> bad "%s=%S is not an integer" k v)
        (get k)
    in
    let get_float k =
      Option.map
        (fun v ->
          match float_of_string_opt v with
          | Some f when Float.is_nan f -> bad "%s=%S is not a number" k v
          | Some f -> f
          | None -> bad "%s=%S is not a number" k v)
        (get k)
    in
    let id = Option.value (get "id") ~default:"-" in
    let op = Option.value (get "op") ~default:"compile" in
    let body_trim = String.trim body in
    let control mk =
      List.iter
        (fun k -> if get k <> None then bad "%s= is only valid with op=compile" k)
        compile_keys;
      if body_trim <> "" then bad "op=%s takes no region text" op;
      Ok (mk id)
    in
    match op with
    | "ping" -> control (fun id -> Ping id)
    | "stats" -> control (fun id -> Stats id)
    | "metrics" -> control (fun id -> Metrics_dump id)
    | "watch" -> control (fun id -> Watch id)
    | "shutdown" -> control (fun id -> Shutdown id)
    | "compile" ->
        let source =
          match (get "shape", body_trim) with
          | Some _, b when b <> "" -> bad "both shape= and inline region text given"
          | Some shape, _ ->
              if not (List.mem shape Workload.Shapes.spec_names) then
                raise (Err (Unknown_shape shape));
              let size = Option.value (get_int "size") ~default:50 in
              if size < 2 || size > 2048 then bad "size=%d out of range (2..2048)" size;
              let seed = Option.value (get_int "seed") ~default:1 in
              Generated { shape; size; seed }
          | None, "" -> bad "no source: give shape= or inline region text"
          | None, _ -> (
              List.iter
                (fun k ->
                  if get k <> None then bad "%s= is only valid with shape=" k)
                [ "size"; "seed" ];
              match Ir.Parse.region_of_string body with
              | Ok region -> Inline region
              | Error e -> raise (Err (Bad_region e)))
        in
        let fault_rate =
          Option.map
            (fun r ->
              if r < 0.0 || r > 1.0 then bad "fault-rate=%g out of range [0,1]" r
              else r)
            (get_float "fault-rate")
        in
        let budget_ms =
          Option.map
            (fun b -> if b < 0.0 then bad "budget-ms=%g is negative" b else b)
            (get_float "budget-ms")
        in
        let backend =
          match get "backend" with
          | None -> None
          | Some spec ->
              let policy =
                try Engine.Dispatch.of_string spec
                with Invalid_argument m -> bad "backend: %s" m
              in
              Compile.ensure_backends ();
              List.iter
                (fun b ->
                  if not (Engine.Registry.mem b) then raise (Err (Unknown_backend b)))
                (Engine.Dispatch.backend_names policy);
              Some policy
        in
        Ok
          (Compile
             {
               req_id = id;
               req_client = get "client";
               source;
               fault_rate;
               fault_seed = get_int "fault-seed";
               budget_ms;
               backend;
             })
    | other -> bad "unknown op %S" other
  with Err e -> Error (best_id, e)

type compile_reply = {
  rep_id : string;
  rep_region : string;
  rep_outcome : Robust.degradation;
  rep_cost : Sched.Cost.t;
  rep_order : int array;
  rep_digest : string;
  rep_attempts : int;
  rep_retries : int;
  rep_latency_ns : float;
  rep_memo : [ `Hit | `Miss | `Shed ];
}

type reply =
  | Compiled of compile_reply
  | Rejected of { rej_id : string; error : proto_error }
  | Pong of { png_id : string }
  | Stats_reply of { sts_id : string; body : (string * string) list }
  | Metrics_reply of { met_id : string; body : string }
  | Watch_reply of { wat_id : string; body : (string * string) list }
  | Drained of { served : int; rejected : int; tally : Robust.tally }

let render_reply = function
  | Compiled r ->
      let rp = r.rep_cost.Sched.Cost.rp in
      Printf.sprintf
        "ok id=%s region=%s outcome=%s occupancy=%d vgpr=%d sgpr=%d length=%d \
         attempts=%d retries=%d memo=%s latency-ns=%.0f digest=%s order=%s"
        r.rep_id r.rep_region
        (Robust.degradation_label r.rep_outcome)
        rp.Sched.Cost.occupancy rp.Sched.Cost.aprp_vgpr rp.Sched.Cost.aprp_sgpr
        r.rep_cost.Sched.Cost.length r.rep_attempts r.rep_retries
        (match r.rep_memo with `Hit -> "hit" | `Miss -> "miss" | `Shed -> "shed")
        r.rep_latency_ns r.rep_digest
        (String.concat "," (List.map string_of_int (Array.to_list r.rep_order)))
  | Rejected { rej_id; error } ->
      Printf.sprintf "err id=%s code=%s msg=%s" rej_id (proto_error_code error)
        (proto_error_message error)
  | Pong { png_id } -> Printf.sprintf "pong id=%s" png_id
  | Stats_reply { sts_id; body } ->
      Printf.sprintf "stats id=%s %s" sts_id
        (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) body))
  | Metrics_reply { met_id; body } ->
      (* multi-line: the header names the reply, the Prometheus text
         exposition follows verbatim *)
      Printf.sprintf "metrics id=%s\n%s" met_id body
  | Watch_reply { wat_id; body } ->
      Printf.sprintf "watch id=%s %s" wat_id
        (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) body))
  | Drained { served; rejected; tally } ->
      Printf.sprintf
        "bye served=%d rejected=%d regions=%d clean=%d retried=%d \
         budget-exceeded=%d faulted-fallback=%d shed=%d total-retries=%d"
        served rejected tally.Robust.regions tally.Robust.clean
        tally.Robust.retried tally.Robust.budget_exceeded
        tally.Robust.faulted_fallback tally.Robust.shed_overload
        tally.Robust.total_retries

(* ------------------------------------------------------------------ *)
(* Budget arithmetic                                                   *)
(* ------------------------------------------------------------------ *)

let budget_of_ns ns =
  if ns = infinity || ns <= 0.0 then Engine.Types.Unlimited
  else Engine.Types.Time_ns ns

let deadline_of_budget gpu ~slack budget =
  let slack = Float.max 1.0 slack in
  match budget with
  | Engine.Types.Unlimited -> infinity
  | Engine.Types.Time_ns ns -> slack *. ns
  | Engine.Types.Work w -> slack *. Gpusim.Cpu_model.pass_time_ns gpu ~work:w

(* ------------------------------------------------------------------ *)
(* The service                                                         *)
(* ------------------------------------------------------------------ *)

type memo_entry = {
  memo_outcome : Robust.degradation;
  memo_cost : Sched.Cost.t;
  memo_order : int array;
  memo_digest : string;
  memo_retries : int;
  memo_latency_ns : float;
}

type t = {
  cfg : config;
  metrics : Obs.Metrics.t;
  log : Obs.Log.t;
  pool : Support.Domain_pool.t option;
  on_reply : reply -> unit;
  cache : Analysis.t;
  memo : (string, memo_entry) Hashtbl.t;
  memo_use : (string, int) Hashtbl.t;
  mutable memo_tick : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  (* fingerprint -> canonical wire text, for persistence *)
  seen_regions : (string, string) Hashtbl.t;
  queue : (request * Ir.Region.t * string) Queue.t;
  mutable state : [ `Serving | `Draining | `Drained ];
  mutable in_flight : int;  (** misses computing in the current batch *)
  mutable received : int;
  mutable served : int;
  mutable rejected : int;
  mutable shed : int;
  mutable tally : Robust.tally;
  mutable persist_info : string;  (** provenance: cold / warm(...) / failed(...) *)
}

let config t = t.cfg
let state t = t.state
let queue_depth t = Queue.length t.queue
let in_flight t = t.in_flight
let received t = t.received
let served t = t.served
let rejected t = t.rejected
let tally t = t.tally
let analysis_stats t = Analysis.stats t.cache
let memo_stats t = (t.memo_hits, t.memo_misses, Hashtbl.length t.memo)

let shed_point t =
  let cap = max 1 t.cfg.queue_capacity in
  let p = int_of_float (ceil (Float.max 0.0 (Float.min 1.0 t.cfg.shed_threshold) *. float_of_int cap)) in
  max 1 (min cap p)

(* ---- persistence ------------------------------------------------- *)

let persist_version = 1
let regions_path dir = Filename.concat dir "analysis.blob"
let memo_path dir = Filename.concat dir "memo.blob"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let persist t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> (
      try
        mkdir_p dir;
        let regions =
          Hashtbl.fold (fun _ wire acc -> wire :: acc) t.seen_regions []
        in
        Support.Blobfile.save ~kind:"serve-analysis" ~version:persist_version
          (regions_path dir)
          (Marshal.to_string (regions : string list) []);
        let memo = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.memo [] in
        Support.Blobfile.save ~kind:"serve-memo" ~version:persist_version
          (memo_path dir)
          (Marshal.to_string (memo : (string * memo_entry) list) []);
        Obs.Metrics.incr t.metrics "serve.persist.saved"
      with Sys_error _ -> Obs.Metrics.incr t.metrics "serve.persist.save_failed")

let record_region t (rc : Engine.Region_ctx.t) region =
  let cap = (Analysis.stats t.cache).Analysis.capacity in
  if
    cap > 0
    && (not (Hashtbl.mem t.seen_regions rc.Engine.Region_ctx.fingerprint))
    && Hashtbl.length t.seen_regions < cap
  then
    Hashtbl.replace t.seen_regions rc.Engine.Region_ctx.fingerprint
      (Ir.Parse.region_to_wire region)

(* Reload both cache levels. Decoding is defensive end to end: Blobfile
   verifies kind/version/length/checksum, Marshal is wrapped, and every
   region re-parses through the validating text parser — a stale,
   truncated or corrupt file downgrades to a cold start plus a metric,
   never an exception. *)
let load_state t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir ->
      let failed what =
        Obs.Metrics.incr t.metrics "serve.persist.load_failed";
        t.persist_info <- "failed(" ^ what ^ ")"
      in
      let regions_loaded = ref 0 and memo_loaded = ref 0 in
      (match
         Support.Blobfile.load ~kind:"serve-analysis" ~version:persist_version
           (regions_path dir)
       with
      | Error Support.Blobfile.Missing -> ()
      | Error e -> failed (Support.Blobfile.error_to_string e)
      | Ok payload -> (
          match
            try Some (Marshal.from_string payload 0 : string list)
            with _ -> None
          with
          | None -> failed "analysis payload undecodable"
          | Some wires ->
              List.iter
                (fun wire ->
                  match Ir.Parse.region_of_string wire with
                  | Ok region ->
                      let rc =
                        Analysis.get t.cache t.cfg.compile.Compile.occ region
                      in
                      record_region t rc region;
                      incr regions_loaded
                  | Error _ ->
                      Obs.Metrics.incr t.metrics "serve.persist.load_failed")
                wires));
      (match
         Support.Blobfile.load ~kind:"serve-memo" ~version:persist_version
           (memo_path dir)
       with
      | Error Support.Blobfile.Missing -> ()
      | Error e -> failed (Support.Blobfile.error_to_string e)
      | Ok payload -> (
          match
            try Some (Marshal.from_string payload 0 : (string * memo_entry) list)
            with _ -> None
          with
          | None -> failed "memo payload undecodable"
          | Some entries ->
              List.iter
                (fun (k, e) ->
                  if
                    t.cfg.memo_capacity > 0
                    && Hashtbl.length t.memo < t.cfg.memo_capacity
                  then begin
                    Hashtbl.replace t.memo k e;
                    t.memo_tick <- t.memo_tick + 1;
                    Hashtbl.replace t.memo_use k t.memo_tick;
                    incr memo_loaded
                  end)
                entries));
      Obs.Metrics.add t.metrics "serve.persist.regions_loaded" !regions_loaded;
      Obs.Metrics.add t.metrics "serve.persist.memo_loaded" !memo_loaded;
      if !regions_loaded > 0 || !memo_loaded > 0 then
        t.persist_info <-
          Printf.sprintf "warm(%d-regions,%d-memo)" !regions_loaded !memo_loaded

let create ?(metrics = Obs.Metrics.null) ?(log = Obs.Log.null) ?pool
    ?(on_reply = fun _ -> ()) cfg =
  Compile.ensure_backends ();
  let t =
    {
      cfg;
      metrics;
      log;
      pool;
      on_reply;
      cache = Analysis.create ~metrics ();
      memo = Hashtbl.create 64;
      memo_use = Hashtbl.create 64;
      memo_tick = 0;
      memo_hits = 0;
      memo_misses = 0;
      seen_regions = Hashtbl.create 64;
      queue = Queue.create ();
      state = `Serving;
      in_flight = 0;
      received = 0;
      served = 0;
      rejected = 0;
      shed = 0;
      tally = Robust.empty_tally;
      persist_info = "cold";
    }
  in
  load_state t;
  if Obs.Log.enabled log then
    Obs.Log.info log "serve.start"
      [
        ("persist", Obs.Log.Str t.persist_info);
        ("queue_capacity", Obs.Log.Int cfg.queue_capacity);
        ("max_in_flight", Obs.Log.Int cfg.max_in_flight);
        ("pooled", Obs.Log.Bool (pool <> None));
      ];
  t

(* ---- memo -------------------------------------------------------- *)

(* The memo key must pin everything that can change the reply: the
   region's structure (fingerprint), the region *name* (it is part of
   the report and hence the digest), and the whole effective compile
   configuration — a duplicate request with a different budget or
   backend must miss. Marshal is structural, so equal values give equal
   keys across process restarts (the memo persists). *)
let memo_key (cfg : Compile.config) ~name fingerprint =
  let payload =
    Marshal.to_string
      ( name,
        cfg.Compile.occ,
        cfg.Compile.gpu,
        cfg.Compile.params,
        cfg.Compile.filters,
        cfg.Compile.robust,
        cfg.Compile.dispatch,
        cfg.Compile.seq_seed,
        cfg.Compile.par_seed,
        cfg.Compile.run_sequential )
      []
  in
  fingerprint ^ "#" ^ Digest.to_hex (Digest.string payload)

let memo_find t key =
  match Hashtbl.find_opt t.memo key with
  | None -> None
  | Some e ->
      t.memo_tick <- t.memo_tick + 1;
      Hashtbl.replace t.memo_use key t.memo_tick;
      Some e

let memo_store t key entry =
  if t.cfg.memo_capacity > 0 then begin
    if
      (not (Hashtbl.mem t.memo key))
      && Hashtbl.length t.memo >= t.cfg.memo_capacity
    then begin
      let victim =
        Hashtbl.fold
          (fun k tick acc ->
            match acc with
            | Some (_, best) when best <= tick -> acc
            | _ -> Some (k, tick))
          t.memo_use None
      in
      match victim with
      | Some (k, _) ->
          Hashtbl.remove t.memo k;
          Hashtbl.remove t.memo_use k;
          Obs.Metrics.incr t.metrics "serve.memo.evictions"
      | None -> ()
    end;
    Hashtbl.replace t.memo key entry;
    t.memo_tick <- t.memo_tick + 1;
    Hashtbl.replace t.memo_use key t.memo_tick;
    Obs.Metrics.set t.metrics "serve.memo.entries"
      (float_of_int (Hashtbl.length t.memo))
  end

(* ---- replies ----------------------------------------------------- *)

let send t reply =
  (match reply with
  | Compiled r ->
      t.served <- t.served + 1;
      Obs.Metrics.observe t.metrics "serve.latency_ns" r.rep_latency_ns
  | Rejected _ ->
      t.rejected <- t.rejected + 1;
      Obs.Metrics.incr t.metrics "serve.malformed"
  | Pong _ | Stats_reply _ | Metrics_reply _ | Watch_reply _ | Drained _ -> ());
  Obs.Metrics.incr t.metrics "serve.replies";
  t.on_reply reply

let reject t id error =
  if Obs.Log.enabled t.log then
    Obs.Log.warn t.log "serve.reject"
      [
        ("req", Obs.Log.Str id);
        ("code", Obs.Log.Str (proto_error_code error));
        ("msg", Obs.Log.Str (proto_error_message error));
      ];
  send t (Rejected { rej_id = id; error })

(* ---- the compile path -------------------------------------------- *)

let effective_config t (req : request) =
  let c = t.cfg.compile in
  let gpu =
    match req.fault_rate with
    | Some rate ->
        let seed =
          Option.value req.fault_seed ~default:c.Compile.gpu.Gpusim.Config.fault_seed
        in
        Gpusim.Config.with_faults ~seed c.Compile.gpu
          (Gpusim.Config.uniform_faults rate)
    | None -> (
        match req.fault_seed with
        | Some seed ->
            Gpusim.Config.with_faults ~seed c.Compile.gpu
              c.Compile.gpu.Gpusim.Config.faults
        | None -> c.Compile.gpu)
  in
  let robust =
    match req.budget_ms with
    | Some ms ->
        { c.Compile.robust with Robust.compile_budget_ns = Robust.budgets_of_ms ms }
    | None -> c.Compile.robust
  in
  let dispatch = Option.value req.backend ~default:c.Compile.dispatch in
  { c with Compile.gpu; robust; dispatch }

(* [a] beats [b]: least degraded first, then the usual cost order. *)
let better_report (a : Compile.region_report) (b : Compile.region_report) =
  let sa = Robust.severity a.Compile.degradation
  and sb = Robust.severity b.Compile.degradation in
  if sa <> sb then sa < sb
  else Sched.Cost.better_rp_then_length a.Compile.aco_cost b.Compile.aco_cost

let hit_reply t (req : request) name (e : memo_entry) =
  t.memo_hits <- t.memo_hits + 1;
  Obs.Metrics.incr t.metrics "serve.memo.hits";
  t.tally <- Robust.tally_add t.tally e.memo_outcome;
  Robust.observe Obs.Trace.null t.metrics ~region:name e.memo_outcome;
  Compiled
    {
      rep_id = req.req_id;
      rep_region = name;
      rep_outcome = e.memo_outcome;
      rep_cost = e.memo_cost;
      rep_order = e.memo_order;
      rep_digest = e.memo_digest;
      rep_attempts = 0;
      rep_retries = e.memo_retries;
      (* a hit costs no simulated compile time; the recorded latency
         is what the original compile spent *)
      rep_latency_ns = 0.0;
      rep_memo = `Hit;
    }

(* The attempt loop of a memo miss. Deadline-bounded: each retry reseeds
   the fault stream (attempt 0 is the identity reseed, so a fault-free
   serve compile is bit-for-bit the direct compile) and charges
   exponential backoff against the deadline before it may run.

   Deterministic in its inputs and touching only [t.metrics] (its
   registry carries its own mutex) and the domain-safe analysis cache —
   the batched pump runs several of these on the domain pool at once. *)
let compute_miss t ?(log = Obs.Log.null) (cfg : Compile.config) rc name region =
  let n = Ir.Region.size region in
  let base = Robust.budget_for cfg.Compile.robust ~n in
  let deadline =
    deadline_of_budget cfg.Compile.gpu ~slack:t.cfg.deadline_slack
      (budget_of_ns base)
  in
  let rec go attempt spent best =
    let budget_ns = Float.max 0.0 (Float.min base (deadline -. spent)) in
    let cfg_a =
      { cfg with Compile.gpu = Gpusim.Config.reseed_faults cfg.Compile.gpu ~salt:attempt }
    in
    let report =
      Compile.run_region ~metrics:t.metrics ~log ~ctx:rc ~budget_ns cfg_a ~name
        region
    in
    let p = Compile.product_run report in
    let spent =
      spent +. p.Compile.run_pass1_time_ns +. p.Compile.run_pass2_time_ns
    in
    let best =
      match best with
      | Some b when not (better_report report b) -> b
      | _ -> report
    in
    let attempts = attempt + 1 in
    if Robust.severity report.Compile.degradation = 0 then (best, attempts, spent)
    else if attempt >= t.cfg.max_retries then (best, attempts, spent)
    else begin
      let backoff = t.cfg.backoff_base_ns *. Float.pow 2.0 (float_of_int attempt) in
      if spent +. backoff >= deadline then begin
        Obs.Metrics.incr t.metrics "serve.deadline_exceeded";
        (best, attempts, spent)
      end
      else begin
        Obs.Metrics.incr t.metrics "serve.retries";
        go (attempt + 1) (spent +. backoff) (Some best)
      end
    end
  in
  go 0 0.0 None

(* Sequential epilogue of a miss: counters, memo, tally, quality
   ledger, reply. The ledger append runs on the caller (never a pool
   domain), and a failing write degrades to a metric — the reply is
   never blocked on telemetry. *)
let miss_reply t (req : request) name key (best, attempts, spent) =
  t.memo_misses <- t.memo_misses + 1;
  Obs.Metrics.incr t.metrics "serve.memo.misses";
  (match t.cfg.quality_ledger with
  | None -> ()
  | Some file -> (
      try
        Quality.append ~file [ Quality.of_region best ];
        Obs.Metrics.incr t.metrics "serve.quality.recorded"
      with Sys_error _ -> Obs.Metrics.incr t.metrics "serve.quality.write_failed"));
  let digest = Report_digest.digest_region best in
  memo_store t key
    {
      memo_outcome = best.Compile.degradation;
      memo_cost = best.Compile.aco_cost;
      memo_order = best.Compile.aco_order;
      memo_digest = digest;
      memo_retries = best.Compile.retries;
      memo_latency_ns = spent;
    };
  t.tally <- Robust.tally_add t.tally best.Compile.degradation;
  Compiled
    {
      rep_id = req.req_id;
      rep_region = name;
      rep_outcome = best.Compile.degradation;
      rep_cost = best.Compile.aco_cost;
      rep_order = best.Compile.aco_order;
      rep_digest = digest;
      rep_attempts = attempts;
      rep_retries = best.Compile.retries;
      rep_latency_ns = spent;
      rep_memo = `Miss;
    }

(* Shedding answers from analysis alone: the Critical-Path schedule is
   already in the region context, so the reply costs no ACO work at
   all — the always-available floor the service degrades to. *)
let shed_reply t (req : request) region name =
  let cfg = effective_config t req in
  let rc = Analysis.get t.cache cfg.Compile.occ region in
  record_region t rc region;
  t.shed <- t.shed + 1;
  Obs.Metrics.incr t.metrics "serve.shed_overload";
  t.tally <- Robust.tally_add t.tally Robust.Shed_overload;
  if Obs.Log.enabled t.log then
    Obs.Log.warn t.log "serve.shed"
      [
        ("req", Obs.Log.Str req.req_id);
        ("region", Obs.Log.Str name);
        ("queue_depth", Obs.Log.Int (Queue.length t.queue));
      ];
  Robust.observe Obs.Trace.null t.metrics ~region:name Robust.Shed_overload;
  Compiled
    {
      rep_id = req.req_id;
      rep_region = name;
      rep_outcome = Robust.Shed_overload;
      rep_cost = rc.Engine.Region_ctx.cp_cost;
      rep_order = Sched.Schedule.order rc.Engine.Region_ctx.cp_schedule;
      rep_digest = "-";
      rep_attempts = 0;
      rep_retries = 0;
      rep_latency_ns = 0.0;
      rep_memo = `Shed;
    }

(* ---- admission --------------------------------------------------- *)

let stats_body t =
  let astats = Analysis.stats t.cache in
  let y = t.tally in
  [
    ("state",
      match t.state with
      | `Serving -> "serving"
      | `Draining -> "draining"
      | `Drained -> "drained");
    ("queue-depth", string_of_int (Queue.length t.queue));
    ("shed-point", string_of_int (shed_point t));
    ("received", string_of_int t.received);
    ("served", string_of_int t.served);
    ("rejected", string_of_int t.rejected);
    ("shed", string_of_int t.shed);
    ("regions", string_of_int y.Robust.regions);
    ("clean", string_of_int y.Robust.clean);
    ("retried", string_of_int y.Robust.retried);
    ("budget-exceeded", string_of_int y.Robust.budget_exceeded);
    ("faulted-fallback", string_of_int y.Robust.faulted_fallback);
    ("shed-overload", string_of_int y.Robust.shed_overload);
    ("total-retries", string_of_int y.Robust.total_retries);
    ("memo-hits", string_of_int t.memo_hits);
    ("memo-misses", string_of_int t.memo_misses);
    ("memo-entries", string_of_int (Hashtbl.length t.memo));
    ("analysis-hits", string_of_int astats.Analysis.hits);
    ("analysis-misses", string_of_int astats.Analysis.misses);
    ("persist", t.persist_info);
  ]

(* The [op=watch] body: everything [stats] says plus the operational
   signals a live dashboard wants — in-flight work, pool occupancy,
   steal traffic, hit rates and latency quantiles. Quantiles come from
   the [serve.latency_ns] histogram's bucket ladder, so they cost a
   16-entry scan, not a recorded-sample sort; with a disabled metrics
   registry the metric-derived fields read 0 and the body still
   renders. *)
let watch_body t =
  let metric name = Obs.Metrics.get t.metrics name in
  let lastv name =
    match metric name with Some m -> Obs.Metrics.last m | None -> 0.0
  in
  let valv name =
    match metric name with Some m -> Obs.Metrics.value m | None -> 0.0
  in
  let pctl q =
    match metric "serve.latency_ns" with
    | Some m -> Obs.Metrics.percentile m q
    | None -> 0.0
  in
  let rate hits misses =
    let total = hits + misses in
    if total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int hits /. float_of_int total)
  in
  let astats = Analysis.stats t.cache in
  stats_body t
  @ [
      ("in-flight", string_of_int t.in_flight);
      ("pool-busy", Printf.sprintf "%.0f" (lastv "serve.pool.busy"));
      ("pool-idle", Printf.sprintf "%.0f" (lastv "serve.pool.idle"));
      ("steals", Printf.sprintf "%.0f" (valv "compile.steal.count"));
      ("deadline-exceeded", Printf.sprintf "%.0f" (valv "serve.deadline_exceeded"));
      ("memo-hit-rate", rate t.memo_hits t.memo_misses);
      ("analysis-hit-rate", rate astats.Analysis.hits astats.Analysis.misses);
      ("latency-p50-ns", Printf.sprintf "%.0f" (pctl 0.5));
      ("latency-p99-ns", Printf.sprintf "%.0f" (pctl 0.99));
    ]

let gauge_queue t =
  Obs.Metrics.set t.metrics "serve.queue_depth"
    (float_of_int (Queue.length t.queue))

let region_of_source = function
  | Inline region -> Ok (region, region.Ir.Region.name)
  | Generated { shape; size; seed } -> (
      match Workload.Shapes.of_spec ~name:shape ~size ~seed with
      | Some region -> Ok (region, shape)
      | None -> Error (Unknown_shape shape))

(* Batched pump over the domain pool. Three phases per batch:

     1. pop (in order) and classify: memo hit / first-in-batch miss /
        in-batch duplicate of a miss. Classification probes the memo
        without bumping its LRU clock — the bump happens in phase 3, in
        pop order, exactly where the sequential pump would have bumped.
     2. run the distinct misses' attempt loops on the pool. Each is
        deterministic in its inputs, so which domain runs it cannot
        change its reply.
     3. reply in pop order: hits and duplicates go through the memo
        (an in-batch duplicate replies [memo=hit], as it would have
        sequentially — the first occurrence stored its entry in this
        same phase); computed misses store, tally, reply. A memo entry
        evicted between probe and phase 3 downgrades to an inline
        sequential compute — correctness over throughput on that rare
        path. *)
let process_batch t pool ~limit =
  let items = ref [] in
  let n = ref 0 in
  while (limit < 0 || !n < limit) && not (Queue.is_empty t.queue) do
    let req, region, name = Queue.pop t.queue in
    gauge_queue t;
    let cfg = effective_config t req in
    let rc = Analysis.get t.cache cfg.Compile.occ region in
    record_region t rc region;
    let key = memo_key cfg ~name rc.Engine.Region_ctx.fingerprint in
    items := (req, region, name, cfg, rc, key) :: !items;
    incr n
  done;
  let items = Array.of_list (List.rev !items) in
  let ni = Array.length items in
  let seen = Hashtbl.create 16 in
  let classes =
    Array.map
      (fun (_, _, _, _, _, key) ->
        if Hashtbl.mem t.memo key then `Hit
        else if t.cfg.memo_capacity > 0 && Hashtbl.mem seen key then `Dup
        else begin
          Hashtbl.replace seen key ();
          `Compute
        end)
      items
  in
  let todo =
    Array.of_list
      (List.filter (fun i -> classes.(i) = `Compute) (List.init ni (fun i -> i)))
  in
  let results = Array.make ni None in
  (* Per-request child logger: the request id rides on every entry the
     compile emits, from admission through pool worker to backend pass. *)
  let req_log (req : request) =
    if Obs.Log.enabled t.log then
      Obs.Log.with_fields t.log [ ("req", Obs.Log.Str req.req_id) ]
    else Obs.Log.null
  in
  let compute i =
    let req, region, name, cfg, rc, _ = items.(i) in
    results.(i) <- Some (compute_miss t ~log:(req_log req) cfg rc name region)
  in
  t.in_flight <- Array.length todo;
  Obs.Metrics.set t.metrics "serve.in_flight" (float_of_int t.in_flight);
  (match pool with
  | Some pool when Array.length todo > 1 ->
      let lanes = Support.Domain_pool.size pool + 1 in
      let workers = min lanes (Array.length todo) in
      Obs.Metrics.set t.metrics "serve.pool.busy" (float_of_int workers);
      Obs.Metrics.set t.metrics "serve.pool.idle" (float_of_int (lanes - workers));
      let claim = Atomic.make 0 in
      Support.Domain_pool.run pool ~workers (fun _ ->
          let rec loop () =
            let j = Atomic.fetch_and_add claim 1 in
            if j < Array.length todo then begin
              compute todo.(j);
              loop ()
            end
          in
          loop ());
      Obs.Metrics.set t.metrics "serve.pool.busy" 0.0;
      Obs.Metrics.set t.metrics "serve.pool.idle" (float_of_int lanes)
  | _ -> Array.iter compute todo);
  t.in_flight <- 0;
  Obs.Metrics.set t.metrics "serve.in_flight" 0.0;
  Array.iteri
    (fun i (req, region, name, cfg, rc, key) ->
      let reply =
        match classes.(i) with
        | `Compute -> (
            match results.(i) with
            | Some r -> miss_reply t req name key r
            | None ->
                miss_reply t req name key
                  (compute_miss t ~log:(req_log req) cfg rc name region))
        | `Hit | `Dup -> (
            match memo_find t key with
            | Some e -> hit_reply t req name e
            | None ->
                miss_reply t req name key
                  (compute_miss t ~log:(req_log req) cfg rc name region))
      in
      send t reply)
    items;
  ni

let process t = process_batch t t.pool ~limit:t.cfg.max_in_flight

let drain t =
  match t.state with
  | `Drained -> ()
  | `Serving | `Draining ->
      t.state <- `Draining;
      (* finish everything in flight, ignoring the per-pump cap *)
      while not (Queue.is_empty t.queue) do
        ignore (process_batch t t.pool ~limit:(-1))
      done;
      persist t;
      t.state <- `Drained;
      Obs.Metrics.incr t.metrics "serve.drained";
      if Obs.Log.enabled t.log then
        Obs.Log.info t.log "serve.drain"
          [
            ("served", Obs.Log.Int t.served);
            ("rejected", Obs.Log.Int t.rejected);
            ("shed", Obs.Log.Int t.shed);
          ];
      send t (Drained { served = t.served; rejected = t.rejected; tally = t.tally })

let handle t ?(client = "anon") payload =
  t.received <- t.received + 1;
  Obs.Metrics.incr t.metrics "serve.requests";
  match parse_request payload with
  | Error (id, error) ->
      Obs.Metrics.incr t.metrics ("serve.client." ^ client ^ ".requests");
      reject t id error
  | Ok cmd -> (
      let client =
        match cmd with
        | Compile { req_client = Some c; _ } -> c
        | _ -> client
      in
      Obs.Metrics.incr t.metrics ("serve.client." ^ client ^ ".requests");
      match cmd with
      (* the control plane stays responsive while draining; only new
         compile work is refused *)
      | Ping id -> send t (Pong { png_id = id })
      | Stats id -> send t (Stats_reply { sts_id = id; body = stats_body t })
      | Metrics_dump id ->
          let body =
            if Obs.Metrics.enabled t.metrics then Obs.Metrics.to_prometheus t.metrics
            else "# metrics disabled\n"
          in
          send t (Metrics_reply { met_id = id; body })
      | Watch id -> send t (Watch_reply { wat_id = id; body = watch_body t })
      | Shutdown _ ->
          (* the Drained reply acknowledges the shutdown *)
          drain t
      | Compile req when t.state <> `Serving -> reject t req.req_id Shutting_down
      | Compile req -> (
          match region_of_source req.source with
          | Error error -> reject t req.req_id error
          | Ok (region, name) ->
              if Queue.length t.queue >= shed_point t then
                send t (shed_reply t req region name)
              else begin
                Queue.push (req, region, name) t.queue;
                Obs.Metrics.incr t.metrics "serve.admitted";
                if Obs.Log.enabled t.log then
                  Obs.Log.debug t.log "serve.admit"
                    [
                      ("req", Obs.Log.Str req.req_id);
                      ("region", Obs.Log.Str name);
                      ("queue_depth", Obs.Log.Int (Queue.length t.queue));
                    ];
                gauge_queue t
              end))

let handle_frame_error t ?(client = "anon") err =
  t.received <- t.received + 1;
  Obs.Metrics.incr t.metrics "serve.requests";
  Obs.Metrics.incr t.metrics ("serve.client." ^ client ^ ".requests");
  reject t "-" (Bad_frame (Support.Frame.error_to_string err))
