(** Guiding heuristics for list scheduling and for ACO's biased
    selection.

    The paper's search is guided by classic priority heuristics
    (Section IV-A): the Critical-Path heuristic (an aggressive ILP
    heuristic) and the Last-Use-Count heuristic (an RP-reduction
    heuristic, reference [61]); [Source_order] reproduces the original
    program order and serves as a neutral control. Section V-B assigns
    *different* heuristics to different wavefronts to diversify
    exploration without intra-wavefront divergence. *)

type kind = Critical_path | Last_use_count | Source_order

val all : kind list
val to_string : kind -> string

type ctx = { graph : Ddg.Graph.t; cp : Ddg.Critpath.t; rp : Rp_tracker.t }
(** Evaluation context; [rp] must reflect the construction state at the
    moment of the query. *)

val make_ctx : ?cp:Ddg.Critpath.t -> Ddg.Graph.t -> Rp_tracker.t -> ctx
(** [cp] (computed when omitted) lets a colony share one critical-path
    analysis across all its lanes' contexts. *)

val score : kind -> ctx -> int -> float
(** [score k ctx i]: priority of ready instruction [i]; higher is
    better. Deterministic given the context. *)

val eta : kind -> ctx -> int -> float
(** Strictly positive attractiveness value for ACO's selection formula,
    a monotone transform of [score]. *)

val fill_eta : kind -> ctx -> cand:int array -> n:int -> out:float array -> unit
(** [fill_eta kind ctx ~cand ~n ~out] stores [eta kind ctx cand.(k)] in
    [out.(k)] for [0 <= k < n], bit-identical to per-candidate {!eta}
    calls but with the kind dispatch hoisted out of the loop and no
    allocation — the ACO selection hot path over a candidate slice. *)

val fill_eta_mat :
  kind -> ctx -> cand:int array -> n:int -> mat:Support.Fmat.t -> base:int -> unit
(** {!fill_eta} into a {!Support.Fmat} slice: stores
    [eta kind ctx cand.(k)] at flat index [base + k] with raw unboxed
    float64 stores. Bit-identical values to {!fill_eta}. *)

val best : kind -> ctx -> int list -> int
(** Highest-scoring instruction of a non-empty candidate list (ties to
    the lower instruction id, matching the deterministic baseline). *)
