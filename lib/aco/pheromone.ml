(* The pheromone table, stored as an unboxed [Support.Fmat]: rows are
   the (n+1) sources (row 0 is the virtual start node), columns the n
   destinations, and the row stride is cache-line aligned so one
   selection step streams a single row. All arithmetic below runs over
   the matrix in row-major order of the *real* columns, which is exactly
   the iteration order of the historical flat [(n+1)*n] float array —
   every sum and every update sequence produces bit-identical doubles. *)

module A1 = Bigarray.Array1

(* All loops below go through [A1.unsafe_get]/[A1.unsafe_set] on the
   matrix's raw [Support.Fmat.mat] (projected from the private record)
   rather than [Fmat.get]/[Fmat.set]: the bigarray primitives specialize
   on the concrete element type at the call site, so the accesses stay
   unboxed even under [-opaque] builds where cross-module [@inline] is
   off. Indices and iteration order are unchanged. *)

type t = { n : int; mat : Support.Fmat.t }

let create ~n ~initial =
  if n <= 0 then invalid_arg "Pheromone.create";
  let mat = Support.Fmat.create ~rows:(n + 1) ~cols:n in
  Support.Fmat.fill mat initial;
  { n; mat }

let size t = t.n

let check t src dst =
  if dst < 0 || dst >= t.n || src < -1 || src >= t.n then invalid_arg "Pheromone: out of range"

let get t ~src ~dst =
  check t src dst;
  A1.unsafe_get t.mat.Support.Fmat.data (Support.Fmat.row_base t.mat (src + 1) + dst)

(* Hot-path row accessors: the selection loop reads one row (fixed [src],
   many [dst]) per step, so the range check runs once at row selection
   and the per-candidate read is a single unboxed load. [dst] values are
   instruction ids supplied by the ready list, which are in range by
   construction; the checked [get] remains for everything else. *)
let row_base t ~src =
  if src < -1 || src >= t.n then invalid_arg "Pheromone: out of range";
  Support.Fmat.row_base t.mat (src + 1)

let mat t = t.mat

let[@inline] row_get mat ~base ~dst =
  A1.unsafe_get mat.Support.Fmat.data (base + dst)

(* Snapshot of the real [(n+1) x n] cells in the historical flat layout;
   diagnostics and tests only (the hot path reads {!mat} directly). *)
let cells t =
  let n = t.n in
  let mat = t.mat in
  let d = mat.Support.Fmat.data in
  Array.init ((n + 1) * n) (fun k ->
      A1.unsafe_get d (Support.Fmat.row_base mat (k / n) + (k mod n)))

let decay t retention =
  let d = t.mat.Support.Fmat.data in
  let stride = t.mat.Support.Fmat.stride in
  for row = 0 to t.n do
    let base = row * stride in
    for dst = 0 to t.n - 1 do
      A1.unsafe_set d (base + dst) (A1.unsafe_get d (base + dst) *. retention)
    done
  done

let deposit t ~src ~dst amount =
  check t src dst;
  let d = t.mat.Support.Fmat.data in
  let i = Support.Fmat.row_base t.mat (src + 1) + dst in
  A1.unsafe_set d i (A1.unsafe_get d i +. amount)

let deposit_path t order amount =
  (* Validate once: every entry of [order] addresses column [order.(k)]
     of the row after its predecessor; one range sweep replaces a checked
     [index] per link. *)
  let n = t.n in
  for k = 0 to Array.length order - 1 do
    let i = Array.unsafe_get order k in
    if i < 0 || i >= n then invalid_arg "Pheromone: out of range"
  done;
  let d = t.mat.Support.Fmat.data in
  let stride = t.mat.Support.Fmat.stride in
  let prev = ref (-1) in
  for k = 0 to Array.length order - 1 do
    let i = Array.unsafe_get order k in
    let idx = ((!prev + 1) * stride) + i in
    A1.unsafe_set d idx (A1.unsafe_get d idx +. amount);
    prev := i
  done

let deposit_path_scaled t order ~deposit ~cost =
  (* The division lives here, in the callee, so the scaled amount never
     crosses a call boundary: it stays an unboxed double from the divide
     through the last add. Passing the quotient as an argument instead
     would box one float per deposit — the last allocation the colony
     loops used to make. *)
  deposit_path t order (deposit /. float_of_int (1 + cost))

let reset t ~initial = Support.Fmat.fill t.mat initial

let clamp t ~lo ~hi =
  let d = t.mat.Support.Fmat.data in
  let stride = t.mat.Support.Fmat.stride in
  for row = 0 to t.n do
    let base = row * stride in
    for dst = 0 to t.n - 1 do
      let v = A1.unsafe_get d (base + dst) in
      if v < lo then A1.unsafe_set d (base + dst) lo
      else if v > hi then A1.unsafe_set d (base + dst) hi
    done
  done

let total t =
  let d = t.mat.Support.Fmat.data in
  let stride = t.mat.Support.Fmat.stride in
  let acc = ref 0.0 in
  for row = 0 to t.n do
    let base = row * stride in
    for dst = 0 to t.n - 1 do
      acc := !acc +. A1.unsafe_get d (base + dst)
    done
  done;
  !acc

(* Mean normalized Shannon entropy of the rows: 1.0 is a uniform table
   (pure exploration), 0.0 a table whose rows each concentrate on one
   link (converged). Diagnostics only — never on the search path. *)
let row_entropy t =
  let n = t.n in
  if n <= 1 then 0.0
  else begin
    let d = t.mat.Support.Fmat.data in
    let stride = t.mat.Support.Fmat.stride in
    let log_n = log (float_of_int n) in
    let acc = ref 0.0 in
    for src = -1 to n - 1 do
      let base = (src + 1) * stride in
      let sum = ref 0.0 in
      for dst = 0 to n - 1 do
        sum := !sum +. A1.unsafe_get d (base + dst)
      done;
      if !sum > 0.0 then begin
        let h = ref 0.0 in
        for dst = 0 to n - 1 do
          let p = A1.unsafe_get d (base + dst) /. !sum in
          if p > 0.0 then h := !h -. (p *. log p)
        done;
        acc := !acc +. (!h /. log_n)
      end
    done;
    !acc /. float_of_int (n + 1)
  end
