(** The pheromone table.

    An [(n+1) x n] matrix: entry [(i, j)] is the pheromone on the link
    "schedule [j] right after [i]"; the extra row is the virtual start
    node for the first selection. At the end of each iteration the whole
    table decays and the links of the iteration winner receive a deposit
    (Section IV-A).

    Storage is an unboxed {!Support.Fmat} — one cache-line-aligned row
    per source — so the selection loop reads raw doubles with no boxing
    and no bounds checks. All bulk operations iterate the real cells in
    the same row-major order as the historical flat array, so sums and
    update sequences are bit-identical to it. *)

type t

val create : n:int -> initial:float -> t

val size : t -> int
(** Number of instructions [n]. *)

val get : t -> src:int -> dst:int -> float
(** [src = -1] addresses the virtual start row. Range-checked; tests and
    cold paths use this. *)

val row_base : t -> src:int -> int
(** Flat base index of row [src] into {!mat}, with the range check done
    once here instead of per lookup ([src = -1] addresses the virtual
    start row). The selection loop reads one row per step, so it hoists
    this out of its candidate scan. *)

val mat : t -> Support.Fmat.t
(** The backing matrix; read entry [dst] of a row with {!row_get}. *)

val row_get : Support.Fmat.t -> base:int -> dst:int -> float
(** [row_get mat ~base ~dst] with [base] from {!row_base} is
    [get t ~src ~dst]. Unchecked: [dst] must be a valid instruction id
    ([0 <= dst < size t]), which holds for ready-list entries by
    construction. *)

val cells : t -> float array
(** Snapshot of the table as the historical flat row-major [(n+1)*n]
    array (entry [((src+1)*n)+dst]). Allocates a fresh copy on every
    call — diagnostics and tests only. *)

val decay : t -> float -> unit
(** Multiply every entry by the retention factor. *)

val deposit : t -> src:int -> dst:int -> float -> unit
(** Add to one entry ([src = -1] allowed). *)

val deposit_path : t -> int array -> float -> unit
(** Deposit along consecutive links of an instruction order, including
    the virtual start link. *)

val deposit_path_scaled : t -> int array -> deposit:float -> cost:int -> unit
(** [deposit_path t order (deposit /. float_of_int (1 + cost))], with
    the division done inside the callee so the scaled amount never
    crosses a call boundary as a boxed float. The colony deposit paths
    use this; it is arithmetically identical to the explicit form. *)

val reset : t -> initial:float -> unit

val clamp : t -> lo:float -> hi:float -> unit
(** Clamp every entry into [[lo, hi]] — the MAX-MIN Ant System trail
    bounds. Allocation-free. *)

val total : t -> float
(** Sum of all entries (diagnostics / tests). *)

val row_entropy : t -> float
(** Mean normalized Shannon entropy across rows: 1.0 for a uniform table
    (pure exploration), approaching 0.0 as each row concentrates on one
    link (converged). Diagnostics only. *)
