(** The optional-stall heuristic of pass 2 (Section IV-C).

    When the ready list is empty a stall is mandatory. When it is not,
    scheduling a stall can still pay off if every ready instruction would
    push the peak pressure past the pass-2 target while a semi-ready
    instruction — one that will be unblocked by waiting — could avoid
    that. The heuristic weighs how the ready and semi-ready instructions
    would impact PRP and damps the stall probability as more optional
    stalls accumulate. *)

type decision =
  | Schedule_from of int list
      (** schedule one of these (ready instructions that fit the target) *)
  | Optional_stall
  | Forced_breach
      (** no ready instruction fits and waiting cannot help: the ant must
          either breach the target (and die) or — when no semi-ready
          instruction exists — there is nothing to wait for *)

val classify :
  rng:Support.Rng.t ->
  allow_optional:bool ->
  base_probability:float ->
  rp:Sched.Rp_tracker.t ->
  target_vgpr:int ->
  target_sgpr:int ->
  ready:int list ->
  has_semi_ready:bool ->
  optional_stalls_so_far:int ->
  decision
(** Decide the ant's move at a cycle with a non-empty ready list.
    [target_*] are APRP targets from pass 1. When [allow_optional] is
    false the ant never stalls voluntarily (the divergence optimization
    that restricts optional stalls to a fraction of wavefronts,
    Section V-B). *)

type slice_decision =
  | Fits of int
      (** the first [m] entries of [cand] (compacted in place, ready
          order preserved) fit the target; schedule one of them *)
  | Stall
  | Breach

val classify_slice :
  rng:Support.Rng.t ->
  allow_optional:bool ->
  base_probability:float ->
  rp:Sched.Rp_tracker.t ->
  target_vgpr:int ->
  target_sgpr:int ->
  cand:int array ->
  n_cand:int ->
  has_semi_ready:bool ->
  optional_stalls_so_far:int ->
  slice_decision
(** Allocation-free {!classify} over the candidate slice
    [cand.(0..n_cand-1)], which it filters in place. Identical decision
    and RNG consumption to {!classify} on the same candidates. *)
