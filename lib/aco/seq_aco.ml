type pass_stats = Engine.Types.pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;
  time_ns : float;
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;
  single_path_ops : int;
  lockstep_steps : int;
  ant_steps : int;
  selections : int;
  best_costs : int array;
  minor_words : float;
  retries : int;
  aborted_budget : bool;
  aborted_faults : bool;
  scored_candidates : int;
  pruned_candidates : int;
  fault_counts : Engine.Types.fault_counts;
}

let no_pass = Engine.Types.no_pass

type result = Engine.Types.result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type state = {
  params : Params.t;
  rng : Support.Rng.t;
  ants : Ant.t array;
  arena : Support.Arena.t;
  fmat : Support.Fmat.t;
  pheromone : Pheromone.t;
  policy : Pheromone_policy.t;
  termination : int;
  metrics : Obs.Metrics.t;
  rp_scalar_of_ant : Ant.t -> int;
  pass2_cost_of_ant : Ant.t -> int;
      (* schedule length, plus the priced spill traffic of the ant's
         peaks under a spill objective *)
  pass2_extra_of_initial : Sched.Schedule.t -> int;
      (* same spill term for the pass-2 initial schedule, so initial and
         ant costs stay comparable (always 0 under the cliff) *)
}

(* The sequential colony meters abstract work units, never wall time, so
   its budget currency is [Work]; the pipeline converts nanoseconds to
   work through its CPU cost model before handing a budget down. *)
let work_of_budget = function
  | Engine.Types.Unlimited -> max_int
  | Engine.Types.Work w -> w
  | Engine.Types.Time_ns _ ->
      invalid_arg "Seq_aco: nanosecond budgets require a time-model backend"

let prepare ~policy_spec ~(objective : Sched.Objective.t option) ~prune
    (ctx : Engine.Backend.ctx) (rc : Engine.Region_ctx.t) =
  let setup = rc.Engine.Region_ctx.setup in
  let graph = setup.Setup.graph in
  let occ = setup.Setup.occ in
  let n = graph.Ddg.Graph.n in
  let params = ctx.Engine.Backend.params in
  let rng = Support.Rng.create ctx.Engine.Backend.seed in
  (* The region context's analyses and one SoA arena back the whole
     colony; nothing region-derived is recomputed here. *)
  let shared = Ant.shared_of_region_ctx rc in
  let ints, floats = Ant.arena_demand shared in
  let fmat_rows, fmat_cols = Ant.fmat_demand shared in
  let lanes = params.Params.ants_per_iteration in
  let arena = Support.Arena.take ~ints:(lanes * ints) ~floats:(lanes * floats) in
  let fmat = Support.Fmat.take ~rows:(lanes * fmat_rows) ~cols:fmat_cols in
  let ants =
    Array.init lanes (fun lane ->
        let ant =
          Ant.create ~shared ~arena ~fmat:(fmat, lane * fmat_rows) graph params
        in
        if prune then Ant.set_prune ant true;
        ant)
  in
  let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
  let policy =
    Pheromone_policy.make policy_spec ~params ~n ~metrics:ctx.Engine.Backend.metrics
  in
  let obj = match objective with Some o -> o | None -> Sched.Objective.Cliff in
  let rp_scalar_of_ant ant =
    let v, s = Ant.rp_peaks ant in
    Sched.Objective.rp_scalar obj (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
  in
  let pass2_cost_of_ant, pass2_extra_of_initial =
    match obj with
    | Sched.Objective.Cliff -> (Ant.length, fun _ -> 0)
    | Sched.Objective.Spill m ->
        ( (fun ant ->
            let v, s = Ant.rp_peaks ant in
            Ant.length ant + Sched.Objective.spill_cycles obj ~vgpr:v ~sgpr:s),
          fun schedule ->
            let tracker = Sched.Rp_tracker.create graph in
            Array.iter
              (fun i -> Sched.Rp_tracker.schedule tracker i)
              (Sched.Schedule.order schedule);
            let ev, es =
              Sched.Rp_tracker.peak_excess tracker ~target_vgpr:m.Sched.Objective.allow_vgpr
                ~target_sgpr:m.Sched.Objective.allow_sgpr
            in
            (ev * m.Sched.Objective.vgpr_spill_cycles)
            + (es * m.Sched.Objective.sgpr_spill_cycles) )
  in
  {
    params;
    rng;
    ants;
    arena;
    fmat;
    pheromone;
    policy;
    termination = Pheromone_policy.patience policy;
    metrics = ctx.Engine.Backend.metrics;
    rp_scalar_of_ant;
    pass2_cost_of_ant;
    pass2_extra_of_initial;
  }

let run_order_pass st (req : Engine.Backend.order_request) =
  let order, _, stats =
    Colony.run_pass ~params:st.params ~rng:st.rng ~ants:st.ants ~pheromone:st.pheromone
      ~policy:st.policy ~mode:Ant.Rp_pass ~cost_of_ant:st.rp_scalar_of_ant
      ~artifact_of_ant:Ant.order ~allow_optional_stalls:true
      ~budget_work:(work_of_budget req.Engine.Backend.o_budget)
      ~metrics:st.metrics ~pass_label:req.Engine.Backend.o_label
      ~initial_cost:req.Engine.Backend.o_initial_cost
      ~initial_order:req.Engine.Backend.o_initial_order
      ~initial_artifact:req.Engine.Backend.o_initial_order
      ~lb_cost:req.Engine.Backend.o_lb_cost ~termination:st.termination
  in
  (order, stats)

let run_schedule_pass st (req : Engine.Backend.schedule_request) =
  let schedule, _, stats =
    Colony.run_pass ~params:st.params ~rng:st.rng ~ants:st.ants ~pheromone:st.pheromone
      ~policy:st.policy
      ~mode:
        (Ant.Ilp_pass
           {
             target_vgpr = req.Engine.Backend.s_target_vgpr;
             target_sgpr = req.Engine.Backend.s_target_sgpr;
           })
      ~cost_of_ant:st.pass2_cost_of_ant
      ~artifact_of_ant:(fun ant ->
        match Ant.schedule ant with
        | Some s -> s
        | None -> invalid_arg "Seq_aco: finished ant produced invalid schedule")
      ~allow_optional_stalls:true
      ~budget_work:(work_of_budget req.Engine.Backend.s_budget)
      ~metrics:st.metrics ~pass_label:req.Engine.Backend.s_label
      ~initial_cost:
        (req.Engine.Backend.s_initial_length
        + st.pass2_extra_of_initial req.Engine.Backend.s_initial)
      ~initial_order:(Sched.Schedule.order req.Engine.Backend.s_initial)
      ~initial_artifact:req.Engine.Backend.s_initial
      ~lb_cost:req.Engine.Backend.s_length_lb ~termination:st.termination
  in
  (schedule, stats)

(* Two_pass runs teardown even on raise; returning the arena here lets
   the next region job on this domain reuse the backing arrays. The
   ants' slices are dead by now — results were extracted during the
   passes. *)
let teardown st =
  Support.Arena.give st.arena;
  Support.Fmat.give st.fmat

let make_backend ~name:backend_name ~policy:policy_spec ?objective ?(prune = false) () :
    Engine.Backend.t =
  (module struct
    let name = backend_name

    let caps =
      { Engine.Types.rp_pass = true; faults = false; trace = false; time_model = false; prune }

    let objective = objective

    type nonrec state = state

    let prepare ctx rc = prepare ~policy_spec ~objective ~prune ctx rc
    let run_order_pass = run_order_pass
    let run_schedule_pass = run_schedule_pass
    let teardown = teardown
  end : Engine.Backend.S)

let backend : Engine.Backend.t = make_backend ~name:"seq" ~policy:Pheromone_policy.As ()

(* Same colony, pruning armed: min-register lower bounds skip candidates
   that provably cannot fit the pass-2 RP target. Sound-only — identical
   schedules and RNG streams to "seq"; only work and the candidate
   meters differ (asserted by the prune-gate bench). *)
let prune_backend : Engine.Backend.t =
  make_backend ~name:"seq-prune" ~policy:Pheromone_policy.As ~prune:true ()
let mmas_backend : Engine.Backend.t = make_backend ~name:"mmas" ~policy:Pheromone_policy.Mmas ()

let mmas_spill_backend spill_model : Engine.Backend.t =
  make_backend ~name:"mmas-spill" ~policy:Pheromone_policy.Mmas
    ~objective:(Sched.Objective.Spill spill_model) ()

let register () = Engine.Registry.register backend

let run_from_setup ?(params = Params.default) ?(seed = 1) ?(budget_work = max_int)
    ?(metrics = Obs.Metrics.null) ?(label = "") (setup : Setup.t) =
  Engine.Two_pass.run backend
    {
      Engine.Backend.params;
      seed;
      budget =
        (if budget_work = max_int then Engine.Types.Unlimited
         else Engine.Types.Work budget_work);
      trace = Obs.Trace.null;
      metrics;
      label;
      ext = [];
    }
    (Engine.Region_ctx.of_setup setup)

let run ?params ?seed occ graph = run_from_setup ?params ?seed (Setup.prepare occ graph)
