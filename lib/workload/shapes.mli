(** Generators of rocPRIM-shaped scheduling regions.

    The paper evaluates on the rocPRIM benchmarks — reusable GPU
    primitives (reductions, scans, sorts, histograms, transforms) whose
    kernels the scheduler sees only as regions with Def/Use sets,
    latencies and register classes. Each generator below reproduces the
    dependence structure of one primitive family, with the structural
    features that make scheduling interesting:

    - {!reduction}: wide load fan-in into a balanced combine tree —
      ILP-rich, low pressure;
    - {!scan}: a serial prefix chain with LDS traffic — latency-bound;
    - {!transform}: independently unrolled load/compute/store lanes —
      the classic pressure/latency tension (deep interleaving hides load
      latency but keeps many values live);
    - {!stencil}: loads shared by overlapping windows — breadth-first
      orders keep every load live (greedy heuristics fall into this
      trap; the paper's 300% occupancy win comes from such regions);
    - {!matmul_tile}: persistent accumulators with streamed operands —
      inherent pressure floor with a schedulable margin around the
      occupancy buckets;
    - {!histogram}: serialized LDS read-modify-write with hoistable
      loads;
    - {!sort_pass}: compare/exchange stages mixing vector, scalar and
      LDS work;
    - {!scalar_setup}: small scalar prologues (the bulk of real regions,
      almost always already optimal).

    All generators are deterministic in the provided generator state. *)

val reduction : Support.Rng.t -> items:int -> Ir.Region.t
val scan : Support.Rng.t -> items:int -> Ir.Region.t
val transform : Support.Rng.t -> unroll:int -> chain:int -> Ir.Region.t
val stencil : Support.Rng.t -> outputs:int -> radius:int -> Ir.Region.t
val matmul_tile : Support.Rng.t -> m:int -> k:int -> Ir.Region.t
val histogram : Support.Rng.t -> items:int -> Ir.Region.t
val sort_pass : Support.Rng.t -> items:int -> Ir.Region.t
val scalar_setup : Support.Rng.t -> count:int -> Ir.Region.t

val gather_compute : Support.Rng.t -> lanes:int -> chain:int -> Ir.Region.t
(** A handful of independent load-compute-store lanes. The RP-minimizing
    order keeps one load in flight (long stalls once latencies are
    padded), the ILP-optimal order overlaps all of them — the small
    pass-2 regions with a large gap to the length lower bound that
    dominate Table 3.b's [1-49] column. *)

val wide_accum : Support.Rng.t -> accumulators:int -> rounds:int -> Ir.Region.t
(** Unrolled multi-accumulator reduction: [accumulators] running sums
    stay live across [rounds] of streamed loads, giving an inherent
    pressure floor near the occupancy boundaries — the mid-sized pass-1
    regions of Table 1 (average size ~68). *)

val spec_names : string list
(** Family names accepted by {!of_spec}, in presentation order. *)

val of_spec : name:string -> size:int -> seed:int -> Ir.Region.t option
(** One region by family name with a single size dial — the generator
    spec behind [gpuaco compile --shape] and the serve protocol's
    [shape=] requests. Each family maps [size] onto its own structural
    parameters (items, unroll, tile edge, ...) so the dial means "about
    this many instructions worth of work" everywhere. Deterministic in
    [seed]; [None] for an unknown family name. *)
