(** Aggregation of compile results into the paper's tables and figures.

    Every function synthesizes the requested cycle-threshold setting from
    the ungated compile (see {!Compile}); the headline numbers use the
    paper's tuned filter settings. Counts follow the paper's conventions:
    regions are counted per benchmark build (kernels shared by several
    benchmarks are scheduled once per benchmark, as template
    instantiation does), occupancy is aggregated at kernel level, and
    schedule length at region level. *)

type table1 = {
  num_benchmarks : int;
  num_kernels : int;
  num_regions : int;
  pass1_regions : int;
  pass2_regions : int;
  avg_pass1_size : float;
  avg_pass2_size : float;
  max_pass1_size : int;
  max_pass2_size : int;
}

val table1 : Filters.config -> Compile.suite_report -> table1

type table2 = {
  t2_pass1_regions : int;
  t2_pass2_regions : int;
  overall_occupancy_increase_pct : float;
  max_occupancy_increase_pct : float;
  overall_length_reduction_pct : float;
  max_length_reduction_pct : float;
}

val table2 : Filters.config -> Compile.suite_report -> table2

type speedup_row = {
  category : int;
  processed : int;
  comparable : int;  (** equal iteration counts in both algorithms *)
  geomean : float;
  max_speedup : float;
  min_speedup : float;
}

val table3 : pass:[ `One | `Two ] -> Filters.config -> Compile.suite_report -> speedup_row list
(** One row per size category ([1-49], [50-99], [>=100]); categories with
    no comparable regions report zeros. *)

val speedups :
  pass:[ `One | `Two ] -> Filters.config -> Compile.suite_report -> (int * float) list
(** Per-comparable-region [(category, speedup)] pairs — the data behind
    the Figure 2/3 distributions. *)

type fig4 = {
  rows : (string * float) list;  (** significant benchmarks, best first *)
  geomean_improvement_pct : float;  (** over the significant improvements *)
  improved_ge_5pct : int;
  improved_ge_10pct : int;
  max_regression_pct : float;  (** most negative speedup over all benchmarks *)
}

val fig4 : Filters.config -> Compile.suite_report -> fig4
(** Only scheduling-sensitive benchmarks are considered (Section VI-A);
    a difference is significant at 1% or more. *)

type table7_row = {
  threshold : int;
  imps_ge_3 : int;
  imps_ge_5 : int;
  imps_ge_10 : int;
  regs_ge_3 : int;
  regs_ge_5 : int;
  regs_ge_10 : int;
  max_regression : float;
}

val table7 : thresholds:int list -> Compile.suite_report -> table7_row list

val sensitive_benchmarks : Compile.suite_report -> Workload.Suite.benchmark list

type degradation_row = {
  d_backend : string;  (** backend whose runs this row tallies *)
  d_category : int;  (** {!Aco.Params.size_category}, or [-1] for the total row *)
  d_tally : Robust.tally;
  d_faults : Gpusim.Faults.counts;
}

val degradation_backends : Compile.suite_report -> string list
(** Backends that ran anywhere in the compile, first-encounter order
    (product backends lead, ride-along baselines follow). *)

val degradation_table : Compile.suite_report -> degradation_row list
(** Degradation statistics of the fault-tolerant driver, one row per
    region size category {e per backend} over the compiled kernels (each
    kernel compiled once). Every backend is attributed its own run's
    ledger entry — a region where the parallel backend degraded but the
    sequential baseline finished clean tallies under ["par"] only. With
    faults off and budgets unbounded every run tallies as clean. *)

val degradation_total : Compile.suite_report -> degradation_row list
(** One all-categories total row ([d_category = -1]) per backend. *)

type perf_row = {
  p_category : int;  (** {!Aco.Params.size_category}, or [-1] for the total row *)
  p_regions : int;
  p_lockstep_steps : int;  (** wavefront-level lockstep rounds, both passes *)
  p_ant_steps : int;  (** individual ant construction steps, both passes *)
  p_selections : int;  (** steps that ran the pheromone selection loop *)
  p_scored_candidates : int;
      (** pass-2 candidates whose RP fit was evaluated, both passes
          summed (pass 1 contributes 0) *)
  p_pruned_candidates : int;
      (** candidates dismissed by the min-register lower bounds without
          a fit evaluation; nonzero only under a pruning-capable
          backend *)
  p_minor_words : float;  (** OCaml minor-heap words allocated by the passes *)
  p_words_per_ant_step : float;  (** [p_minor_words / p_ant_steps]; 0 when no steps *)
}

val perf_table : Compile.suite_report -> perf_row list
(** Allocation-discipline counters of the parallel (GPU-model) passes,
    one row per size category over the compiled kernels. The batched
    arena keeps [p_words_per_ant_step] near zero: the construct-schedule
    inner loop allocates nothing, so the residual is per-iteration
    bookkeeping amortized over the steps. *)

val perf_total : Compile.suite_report -> perf_row

type convergence_row = {
  c_region : string;
  c_backend : string;  (** backend name, e.g. ["par"], ["seq"], ["weighted"] *)
  c_pass : string;  (** ["pass1"] or ["pass2"] *)
  c_iterations : int;
      (** attempted iterations — the engine-wide convention: every
          started iteration counts, including faulted ones that were
          retried (see {!Engine.Types.pass_stats.best_costs}) *)
  c_retries : int;  (** faulted iterations that were retried within the pass *)
  c_initial : int;  (** cost of the pass's initial (heuristic) schedule *)
  c_final : int;  (** best cost when the pass stopped *)
  c_first_improvement : int;
      (** iteration of the first strict improvement, 0 when the pass never
          beat its initial schedule *)
  c_series : int array;  (** the full per-iteration best-cost series *)
}

val convergence_rows_of_region : Compile.region_report -> convergence_row list
(** One row per backend run and pass that ran, in the report's run order
    (empty series are dropped — a pass that was never invoked contributes
    nothing). *)

val convergence_table : Compile.suite_report -> convergence_row list
(** Convergence telemetry over the compiled kernels, region by region:
    the per-iteration best-cost series of both drivers' passes. *)

val render_convergence : convergence_row list -> string
(** ASCII table: one line per pass with the series compacted into
    plateaus (["33>31(x2)>30(x5)"] = improved at iteration 1, again at 3,
    then five unchanged iterations). *)

val convergence_csv : convergence_row list -> string
(** Long-format CSV ([region,backend,pass,iteration,best_cost]) for
    external plotting. *)
