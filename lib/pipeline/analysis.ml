(* Content-addressed cache of region-analysis contexts.

   The key is the region's structural fingerprint (instruction kinds,
   latencies, register defs/uses and live-outs — names excluded, see
   [Engine.Region_ctx.fingerprint_of_region]) salted with the occupancy
   model, so two regions that compile identically share one analysis no
   matter which kernel they came from.

   A miss computes the context *outside* the mutex through a per-key
   once-cell: the first requester installs a [Computing] entry under the
   lock, releases it, runs the analysis, then fills the cell and wakes
   any waiters. Concurrent requesters of the same key find the cell and
   block on the condition variable instead of re-analysing — the compile
   service's invariant of exactly one analysis per distinct region
   holds, but domains analysing *different* regions no longer serialize
   on the cache mutex (they used to: misses computed under the lock). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  computed : int;
  entries : int;
  capacity : int;
}

type cell = Computing | Ready of Engine.Region_ctx.t | Failed of exn

type entry = { mutable e_cell : cell; mutable e_used : int }

type t = {
  capacity : int;
  metrics : Obs.Metrics.t;
  lock : Mutex.t;
  cond : Condition.t;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable computed : int;
}

let default_capacity = 512

let create ?(metrics = Obs.Metrics.null) ?(capacity = default_capacity) () =
  {
    capacity = max 0 capacity;
    metrics;
    lock = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    computed = 0;
  }

let disabled () = create ~capacity:0 ()

let caching t = t.capacity > 0

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Occupancy is part of the analysis (heuristic costs, RP bounds), so it
   salts the key; [Occupancy.t] is plain data, so Marshal is a faithful
   rendering. *)
let key_of occ region =
  let fingerprint = Engine.Region_ctx.fingerprint_of_region region in
  (Digest.to_hex (Digest.string (Marshal.to_string occ [])) ^ ":" ^ fingerprint, fingerprint)

(* Lock held. Linear scan over the table: capacities are small (hundreds)
   and eviction only happens on a miss that also ran a full analysis.
   [Computing] entries are never victims — evicting one would let a
   racing requester re-analyse the same region and break the
   once-per-distinct-region invariant (waiters also hold the entry). *)
let evict_if_full t =
  if Hashtbl.length t.tbl >= t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match e.e_cell with
          | Computing -> acc
          | Ready _ | Failed _ -> (
              match acc with
              | Some (_, best) when best <= e.e_used -> acc
              | _ -> Some (k, e.e_used)))
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.incr t.metrics "analysis.cache.evictions"
    | None -> ()
  end

(* Lock held (released around nothing — counters only). *)
let count_miss t =
  t.misses <- t.misses + 1;
  t.computed <- t.computed + 1;
  Obs.Metrics.incr t.metrics "analysis.cache.misses";
  Obs.Metrics.incr t.metrics "analysis.cache.computed"

let get t occ region =
  let key, fingerprint = key_of occ region in
  if t.capacity = 0 then begin
    (* metering-only: count under the lock, analyse outside it *)
    locked t (fun () ->
        t.tick <- t.tick + 1;
        count_miss t);
    Engine.Region_ctx.of_region ~fingerprint occ region
  end
  else begin
    Mutex.lock t.lock;
    t.tick <- t.tick + 1;
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        (* hit — possibly on a cell still computing: wait, don't
           re-analyse. Waiting counts as a hit (no analysis ran). *)
        e.e_used <- t.tick;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr t.metrics "analysis.cache.hits";
        let rec await () =
          match e.e_cell with
          | Ready rc ->
              Mutex.unlock t.lock;
              rc
          | Failed exn ->
              Mutex.unlock t.lock;
              raise exn
          | Computing ->
              Condition.wait t.cond t.lock;
              await ()
        in
        await ()
    | None ->
        count_miss t;
        evict_if_full t;
        let e = { e_cell = Computing; e_used = t.tick } in
        Hashtbl.add t.tbl key e;
        Mutex.unlock t.lock;
        (* the expensive part, outside the lock *)
        (match Engine.Region_ctx.of_region ~fingerprint occ region with
        | rc ->
            Mutex.lock t.lock;
            e.e_cell <- Ready rc;
            Condition.broadcast t.cond;
            Mutex.unlock t.lock;
            rc
        | exception exn ->
            (* waiters see [Failed] through their entry reference; the
               table forgets the key so a later request may retry *)
            Mutex.lock t.lock;
            e.e_cell <- Failed exn;
            Hashtbl.remove t.tbl key;
            Condition.broadcast t.cond;
            Mutex.unlock t.lock;
            raise exn)
  end

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        computed = t.computed;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "analysis cache: %d hits, %d misses (%.0f%% hit rate), %d computed, %d evicted, \
     %d/%d entries"
    s.hits s.misses
    (100.0 *. hit_rate s)
    s.computed s.evictions s.entries s.capacity
