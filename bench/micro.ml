(* Bechamel micro-benchmarks of the core operations: the data the cost
   models abstract over. One Test.make per primitive. *)

open Bechamel
open Toolkit

let region = lazy (Workload.Shapes.transform (Support.Rng.create 9) ~unroll:16 ~chain:4)
let graph = lazy (Ddg.Graph.build (Lazy.force region))

let test_ddg_build =
  Test.make ~name:"ddg_build"
    (Staged.stage (fun () -> ignore (Ddg.Graph.build (Lazy.force region))))

let test_closure =
  Test.make ~name:"transitive_closure"
    (Staged.stage (fun () -> ignore (Ddg.Closure.compute (Lazy.force graph))))

let test_critpath =
  Test.make ~name:"critical_path"
    (Staged.stage (fun () -> ignore (Ddg.Critpath.compute (Lazy.force graph))))

let test_rp_tracking =
  Test.make ~name:"rp_tracking"
    (Staged.stage (fun () ->
         let g = Lazy.force graph in
         let t = Sched.Rp_tracker.create g in
         Array.iter (Sched.Rp_tracker.schedule t) (Ddg.Topo.order g)))

let test_list_schedule =
  Test.make ~name:"list_schedule_cp"
    (Staged.stage (fun () ->
         ignore (Sched.List_scheduler.run (Lazy.force graph) Sched.Heuristic.Critical_path)))

let test_one_ant =
  Test.make ~name:"one_ant_pass2"
    (Staged.stage
       (let g = Lazy.force graph in
        let params = Aco.Params.default in
        let ant = Aco.Ant.create g params in
        let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
        let rng = Support.Rng.create 4 in
        fun () ->
          Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:Sched.Heuristic.Critical_path
            ~allow_optional_stalls:true
            (Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 });
          Aco.Ant.run_to_completion ant ~pheromone))

let test_wavefront_iteration =
  Test.make ~name:"wavefront_iteration"
    (Staged.stage
       (let g = Lazy.force graph in
        let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 1 } in
        let w =
          Gpusim.Wavefront.create config g Aco.Params.default
            ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
        in
        let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
        let rng = Support.Rng.create 4 in
        fun () ->
          ignore
            (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone)))

let tests =
  Test.make_grouped ~name:"core"
    [
      test_ddg_build;
      test_closure;
      test_critpath;
      test_rp_tracking;
      test_list_schedule;
      test_one_ant;
      test_wavefront_iteration;
    ]

let run () =
  print_endline "Micro-benchmarks (bechamel, monotonic clock):";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
      in
      Printf.printf "  %-28s %12.0f ns/run\n" name ns)
    (List.sort (fun (a, _) (b, _) -> compare a b) rows);
  print_newline ()
