let nonempty name = function [] -> invalid_arg ("Stats." ^ name ^ ": empty") | xs -> xs

let mean xs =
  let xs = nonempty "mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = nonempty "geomean" xs in
  let sum_logs =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc +. log x)
      0.0 xs
  in
  exp (sum_logs /. float_of_int (List.length xs))

let sorted xs = List.sort compare (nonempty "sorted" xs)

let median xs =
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let percentile p xs =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)

let stddev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let coeff_of_variation xs =
  let m = mean xs in
  if m = 0.0 then invalid_arg "Stats.coeff_of_variation: zero mean";
  stddev xs /. m

let min_max xs =
  let xs = nonempty "min_max" xs in
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (List.hd xs, List.hd xs) xs

type histogram = { bucket_edges : float array; counts : int array; total : int }

let histogram ~edges xs =
  let n = Array.length edges in
  if n < 2 then invalid_arg "Stats.histogram: need at least 2 edges";
  let counts = Array.make (n - 1) 0 in
  let place x =
    (* Clamp out-of-range values into the boundary buckets so every
       observation is visible in the figure. *)
    let rec find i =
      if i >= n - 2 then n - 2
      else if x < edges.(i + 1) then i
      else find (i + 1)
    in
    let i = if x < edges.(0) then 0 else find 0 in
    counts.(i) <- counts.(i) + 1
  in
  List.iter place xs;
  { bucket_edges = edges; counts; total = List.length xs }

let render_histogram ?(width = 50) ~title ~label h =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let maxc = Array.fold_left max 1 h.counts in
  let label_width =
    Array.to_list h.counts
    |> List.mapi (fun i _ -> String.length (label i))
    |> List.fold_left max 0
  in
  Array.iteri
    (fun i c ->
      let bar_len = c * width / maxc in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s | %s %d\n" label_width (label i)
           (String.make bar_len '#') c))
    h.counts;
  Buffer.contents buf
