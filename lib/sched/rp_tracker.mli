(** Incremental register-pressure tracking during schedule construction.

    RP computation follows Section II-A: a register becomes live when its
    defining instruction is scheduled and dies when its last use is
    scheduled, except that region live-in registers are live from cycle 0
    and live-out registers never die inside the region. The tracker
    maintains the current and peak pressure per register class in O(defs
    + uses) per scheduled instruction; the test suite cross-checks it
    against a naive whole-profile recomputation. *)

type t

type layout
(** The immutable, region-wide part of a tracker: interned register ids,
    per-instruction Def/Use id arrays, total use counts and boundary
    liveness. Shared by every ant scheduling the same region, so the
    interning hash pass runs once per colony instead of once per lane. *)

val layout_of_graph : ?closure:Ddg.Closure.t -> Ddg.Graph.t -> layout
(** Build the layout, including the sound candidate-pruning tables: the
    min-delta bounds (certain opens minus potential closes per
    instruction and class) are always computed from the region alone;
    the static Chen-style per-instruction minimum-pressure bounds
    ({!Ddg.Lower_bounds.min_reg_lb}) additionally need the transitive
    closure and are all-zero — trivially sound, never pruning — when
    [closure] is absent. A closure is never computed here, so the
    engine's analysis-count accounting is unaffected. *)

val int_demand : layout -> int
(** Arena ints one tracker's mutable state needs (for exact
    pre-sizing). *)

val create_in : Support.Arena.t -> layout -> t
(** Tracker whose mutable state lives in the given arena (the batched
    SoA colony allocation); live-in registers are already counted.
    Raises [Invalid_argument] when the arena lacks [int_demand layout]
    ints. *)

val create : Ddg.Graph.t -> t
(** Fresh stand-alone tracker for the region of the graph (private
    layout and backing); live-in registers are already counted. *)

val reset : t -> unit
(** Return to the initial state (ants reuse trackers across iterations to
    mirror the paper's no-dynamic-allocation rule). *)

val copy : t -> t

val schedule : t -> int -> unit
(** Account for issuing the given instruction. Each instruction must be
    scheduled at most once per [reset] (unchecked; the schedulers
    guarantee it). *)

val current : t -> Ir.Reg.cls -> int
val peak : t -> Ir.Reg.cls -> int

val peak_excess : t -> target_vgpr:int -> target_sgpr:int -> int * int
(** Per-class peak pressure above the given targets (clamped at 0) —
    the raw-register excess a spill-aware objective prices
    (see {!Objective}). *)

val peak_if_scheduled : t -> int -> Ir.Reg.cls -> int
(** Peak pressure the class would have right after scheduling the
    instruction, without mutating the tracker (used by greedy tie-breaks
    and the optional-stall heuristic). *)

val delta_if_scheduled : t -> int -> Ir.Reg.cls -> int
(** Net change to the *current* pressure: defs opening live ranges minus
    uses closing them. *)

val fits_within : t -> int -> target_vgpr:int -> target_sgpr:int -> bool
(** Would scheduling the instruction keep both class peaks within the
    given targets? Single pass over its Def/Use sets (the pass-2 hot
    path), with a scan-free fast path when even the def-count upper
    bound fits. *)

val filter_fits_prefix :
  t -> cand:int array -> n_cand:int -> target_vgpr:int -> target_sgpr:int -> int
(** Stable in-place filter of [cand.(0..n_cand-1)]: compacts the
    candidates for which {!fits_within} holds into the prefix (ready
    order preserved) and returns their count. Branchless mask-and-select
    compaction on the hot path. With pruning armed ({!set_prune}),
    candidates whose layout lower bounds already prove they cannot fit
    skip the per-register effects scan; the returned prefix and count
    are identical either way — pruning only removes provably-dead
    work. *)

val set_prune : t -> bool -> unit
(** Arm or disarm lower-bound candidate pruning in
    {!filter_fits_prefix}. Off by default; prefix contents and counts
    are unaffected either way (soundness), only the evaluation work and
    the {!scored_candidates}/{!pruned_candidates} meters change. *)

val prune_enabled : t -> bool

val scored_candidates : t -> int
(** Cumulative count of candidates whose fit decision was actually
    evaluated (fast defs-bound or full effects scan) in
    {!filter_fits_prefix} since the tracker was created. Not cleared by
    {!reset}: it meters work, not schedule state — drivers snapshot it
    around a pass. *)

val pruned_candidates : t -> int
(** Cumulative count of candidates dismissed by the lower-bound prune
    before any fit evaluation. Zero unless {!set_prune} armed it. *)

val closes_count : t -> int -> int
(** Number of live ranges (any class) the instruction would close — the
    Last-Use-Count heuristic's key (Section IV-A / reference [61]). *)

val opens_count : t -> int -> int
(** Live ranges (any class) the instruction would open. *)

val closes_minus_opens : t -> int -> int
(** [closes_count t i - opens_count t i] in a single effects pass — the
    Last-Use-Count heuristic's key on the selection hot path. *)

val naive_peaks : Ddg.Graph.t -> int array -> (Ir.Reg.cls -> int)
(** Reference implementation: peak pressures of a complete instruction
    order computed from scratch. Used by tests and as documentation of
    the liveness rules. *)
