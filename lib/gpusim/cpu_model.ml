let pass_time_ns (config : Config.t) ~work = float_of_int work *. config.cpu_ns_per_op

let seconds ns = ns /. 1e9
