(** Greedy latency-aware list scheduling under a hard register-pressure
    ceiling.

    Pass 2 needs an input schedule that meets the pass-1 RP target; the
    latency-padded pass-1 order always does, but it serializes
    aggressively. This scheduler builds a second, usually much shorter,
    candidate: Critical-Path greedy restricted to instructions whose
    scheduling keeps both class peaks within the target, stalling when
    nothing fits but something is in flight. It fails (returns [None])
    when it corners itself — the padded order then remains the input. *)

val run :
  Ddg.Graph.t -> target_vgpr:int -> target_sgpr:int -> Schedule.t option
(** [run g ~target_vgpr ~target_sgpr] is a latency-valid schedule whose
    VGPR/SGPR peaks do not exceed the targets, or [None] when the greedy
    search reaches a state with no fitting ready instruction and nothing
    semi-ready to wait for. *)
