(* Re-export: the parameter record moved into the engine layer so the
   orchestrator and the backends agree on one definition; [Aco.Params]
   keeps the historical path (and the type equality) alive. *)
include Engine.Params
