type pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;
  improved : bool;
  hit_lower_bound : bool;
  aborted_budget : bool;
  best_costs : int array;
  minor_words : float;
}

let no_pass =
  {
    invoked = false;
    iterations = 0;
    ants_simulated = 0;
    work = 0;
    improved = false;
    hit_lower_bound = false;
    aborted_budget = false;
    best_costs = [||];
    minor_words = 0.0;
  }

type result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

(* One ACO pass: iterate ants until the lower bound is reached or
   [termination] improvement-free iterations pass. Generic in the cost
   (RP scalar in pass 1, length in pass 2) and in the artifact kept for
   the best solution (order in pass 1, schedule in pass 2). *)
let run_pass (type a) ~params ~rng ~ants ~pheromone ~mode ~(cost_of_ant : Ant.t -> int)
    ~(artifact_of_ant : Ant.t -> a) ~budget_work ~metrics ~pass_label ~initial_cost
    ~(initial_order : int array) ~(initial_artifact : a) ~lb_cost ~termination =
  let open Params in
  Pheromone.reset pheromone ~initial:params.initial_pheromone;
  (* The initial (heuristic) schedule is the global best at the start:
     bias the table toward it. *)
  Pheromone.deposit_path pheromone initial_order (params.deposit /. float_of_int (1 + initial_cost));
  (* Telemetry scratch sits before the minor-words snapshot so the
     reported allocation stays byte-identical with metering off. *)
  let metering = Obs.Metrics.enabled metrics in
  let m_best = if metering then pass_label ^ ".best_cost" else "" in
  let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
  (* Convergence series: entry 0 is the initial cost, entry [k] the best
     cost after the [k]th iteration. *)
  let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
  let bc_len = ref 1 in
  let minor_before = Support.Perfcount.minor_words () in
  let best_cost = ref initial_cost in
  let best = ref initial_artifact in
  let improved = ref false in
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  let ants_total = ref 0 in
  let n = Pheromone.size pheromone in
  (* The compile budget is expressed in abstract work units — the same
     currency {!Ant.work} charges — so the sequential driver stays free
     of any wall-clock notion; the pipeline converts nanoseconds to work
     via its CPU cost model. *)
  while
    !best_cost > lb_cost && !no_improve < termination && !iterations < params.max_iterations
    && !work < budget_work
  do
    incr iterations;
    let iter_best_cost = ref max_int in
    let iter_best = ref None in
    Array.iter
      (fun ant ->
        Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:params.heuristic
          ~allow_optional_stalls:true mode;
        Ant.run_to_completion ant ~pheromone;
        ants_total := !ants_total + 1;
        work := !work + Ant.work ant;
        if Ant.status ant = Ant.Finished then begin
          let c = cost_of_ant ant in
          if c < !iter_best_cost then begin
            iter_best_cost := c;
            iter_best := Some (Ant.order ant, artifact_of_ant ant)
          end
        end)
      ants;
    (* Table upkeep: full decay plus the winner deposit. *)
    work := !work + (((n + 1) * n) / 8) + n;
    Pheromone.decay pheromone params.decay;
    (match !iter_best with
    | Some (order, art) ->
        Pheromone.deposit_path pheromone order
          (params.deposit /. float_of_int (1 + !iter_best_cost));
        if !iter_best_cost < !best_cost then begin
          best_cost := !iter_best_cost;
          best := art;
          improved := true;
          no_improve := 0
        end
        else incr no_improve
    | None -> incr no_improve);
    bc_buf.(!bc_len) <- !best_cost;
    incr bc_len;
    if metering then begin
      Obs.Metrics.push metrics m_best (float_of_int !best_cost);
      Obs.Metrics.push metrics m_entropy (Pheromone.row_entropy pheromone)
    end
  done;
  (* [minor_delta] first: the series copy must stay outside the measured
     window so the stat is byte-identical with metering off. *)
  let minor_delta = Support.Perfcount.minor_words () -. minor_before in
  let best_costs = Array.sub bc_buf 0 !bc_len in
  ( !best,
    !best_cost,
    {
      invoked = true;
      iterations = !iterations;
      ants_simulated = !ants_total;
      work = !work;
      improved = !improved;
      hit_lower_bound = !best_cost <= lb_cost;
      aborted_budget = budget_work < max_int && !work >= budget_work;
      best_costs;
      minor_words = minor_delta;
    } )

let run_from_setup ?(params = Params.default) ?(seed = 1) ?(budget_work = max_int)
    ?(metrics = Obs.Metrics.null) ?(label = "") (setup : Setup.t) =
  let graph = setup.graph in
  let occ = setup.occ in
  let n = graph.Ddg.Graph.n in
  let rng = Support.Rng.create seed in
  (* One set of region analyses and one SoA arena back the whole colony. *)
  let shared = Ant.prepare_shared graph in
  let ints, floats = Ant.arena_demand shared in
  let lanes = params.Params.ants_per_iteration in
  let arena = Support.Arena.create ~ints:(lanes * ints) ~floats:(lanes * floats) in
  let ants = Array.init lanes (fun _ -> Ant.create ~shared ~arena graph params) in
  let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
  let termination = Params.termination_condition n in
  let rp_scalar_of_ant ant =
    let v, s = Ant.rp_peaks ant in
    Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
  in
  (* Pass 1: minimize RP, latencies ignored. *)
  let best_order, _, pass1 =
    if setup.pass1_needed then
      run_pass ~params ~rng ~ants ~pheromone ~mode:Ant.Rp_pass ~cost_of_ant:rp_scalar_of_ant
        ~artifact_of_ant:Ant.order ~budget_work ~metrics ~pass_label:(label ^ "pass1")
        ~initial_cost:(Sched.Cost.rp_scalar setup.pass1_initial_rp)
        ~initial_order:setup.pass1_initial_order ~initial_artifact:setup.pass1_initial_order
        ~lb_cost:(Sched.Cost.rp_scalar setup.rp_lb) ~termination
    else (setup.pass1_initial_order, Sched.Cost.rp_scalar setup.pass1_initial_rp, no_pass)
  in
  let rp_target = Setup.rp_of_order occ graph best_order in
  let target_vgpr, target_sgpr = Setup.targets_of_rp rp_target in
  (* Pass 2: minimize length under the pass-1 RP target. *)
  let initial_schedule = Setup.pass2_initial setup ~best_pass1_order:best_order in
  let initial_length = Sched.Schedule.length initial_schedule in
  (* Pass 2 inherits whatever budget pass 1 left unspent. *)
  let budget2_work =
    if budget_work = max_int then max_int else max 0 (budget_work - pass1.work)
  in
  let schedule, _, pass2 =
    if initial_length - setup.length_lb >= max 1 params.Params.pass2_cycle_threshold then
      run_pass ~params ~rng ~ants ~pheromone
        ~mode:(Ant.Ilp_pass { target_vgpr; target_sgpr })
        ~cost_of_ant:Ant.length ~budget_work:budget2_work ~metrics
        ~pass_label:(label ^ "pass2")
        ~artifact_of_ant:(fun ant ->
          match Ant.schedule ant with
          | Some s -> s
          | None -> invalid_arg "Seq_aco: finished ant produced invalid schedule")
        ~initial_cost:initial_length
        ~initial_order:(Sched.Schedule.order initial_schedule)
        ~initial_artifact:initial_schedule ~lb_cost:setup.length_lb ~termination
    else (initial_schedule, initial_length, no_pass)
  in
  {
    schedule;
    cost = Sched.Cost.of_schedule occ schedule;
    heuristic_schedule = setup.amd_schedule;
    heuristic_cost = setup.amd_cost;
    rp_target;
    pass2_initial = initial_schedule;
    pass1;
    pass2;
  }

let run ?params ?seed occ graph = run_from_setup ?params ?seed (Setup.prepare occ graph)
