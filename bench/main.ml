(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), then runs the
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # everything, bench scale
     dune exec bench/main.exe -- table3 fig4  # selected experiments
     dune exec bench/main.exe -- --small      # quick run on the test scale
     dune exec bench/main.exe -- micro        # micro-benchmarks only *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let small = List.mem "--small" args in
  let no_seq = List.mem "--no-seq" args in
  let wanted = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let want name = wanted = [] || List.mem name wanted in
  let table_names = List.map fst Tables.all in
  let needs_compile = List.exists want table_names in
  if needs_compile then begin
    let scale = if small then Workload.Suite.test_scale else Workload.Suite.bench_scale in
    let suite = Workload.Suite.generate scale in
    let stats = Workload.Suite.stats suite in
    Printf.eprintf "# suite: %d benchmarks, %d kernels, %d regions (max size %d)\n%!"
      stats.Workload.Suite.num_benchmarks stats.Workload.Suite.num_kernels
      stats.Workload.Suite.num_regions stats.Workload.Suite.max_region_size;
    let config =
      let c = Pipeline.Compile.make_config ~gpu:Gpusim.Config.bench () in
      if no_seq then { c with Pipeline.Compile.run_sequential = false } else c
    in
    let t0 = Unix.gettimeofday () in
    let done_kernels = ref 0 in
    let report =
      Pipeline.Compile.run_suite
        ~progress:(fun k ->
          incr done_kernels;
          Printf.eprintf "# [%d/%d] %s (%.0fs)\n%!" !done_kernels
            stats.Workload.Suite.num_kernels k
            (Unix.gettimeofday () -. t0))
        config suite
    in
    Printf.eprintf "# compiled in %.1fs\n%!" (Unix.gettimeofday () -. t0);
    let ctx = { Tables.report; filters = Pipeline.Filters.default; config } in
    List.iter (fun (name, print) -> if want name then print ctx) Tables.all
  end;
  if want "micro" then Micro.run ()
