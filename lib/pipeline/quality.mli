(** Schedule-quality telemetry: one ledger record per compiled region —
    schedule length against the dependence-height lower bound, achieved
    occupancy against the backend's register-pressure target, and
    convergence shape (iterations-to-best out of iterations run) —
    appended as JSONL and summarized over a corpus by [gpuaco report].

    Records are derived from the {!Compile.region_report} alone;
    writing the ledger never recomputes or perturbs a compile. The
    ledger file is append-only, one JSON object per line, so a daemon
    streams into it across requests and malformed lines (a torn write)
    are skipped on load rather than poisoning the corpus. *)

type record = {
  q_region : string;
  q_n : int;  (** region size in instructions *)
  q_backend : string;  (** the product backend *)
  q_rung : string;  (** {!Robust.degradation_label} of the product run *)
  q_length : int;  (** product schedule length, cycles *)
  q_length_lb : int;  (** dependence-height lower bound *)
  q_gap : int;  (** [length - length_lb] *)
  q_occupancy : int;
  q_occ_target : int;  (** what the backend aimed for *)
  q_aprp_vgpr : int;
  q_aprp_sgpr : int;
  q_iterations : int;  (** product run, both passes *)
  q_iters_to_best : int;
      (** index where the convergence series first reached its final
          best — iterations after this idled (stagnation) *)
  q_improved : bool;  (** ACO beat the AMD heuristic *)
}

val iters_to_best : int array -> int
(** First index of the minimum of a best-so-far series; [0] for an
    empty series. *)

val of_region : Compile.region_report -> record

val of_report : Compile.suite_report -> record list
(** Every region of the suite, in suite order. *)

(** {2 Ledger file} *)

val to_json_line : record -> string
(** One record as a single-line JSON object (no trailing newline). *)

val of_json_line : string -> record option
(** Inverse of {!to_json_line}; [None] on malformed or foreign lines. *)

val append : file:string -> record list -> unit
(** Append records to the ledger, creating it if missing. *)

val load : file:string -> record list
(** Read a ledger back, skipping malformed lines. Raises [Sys_error]
    if the file cannot be opened. *)

(** {2 Summary} *)

type summary = {
  s_count : int;
  s_clean : int;
  s_at_lb : int;  (** regions whose schedule met the lower bound *)
  s_mean_gap : float;
  s_mean_gap_ratio : float;  (** mean gap/lb over records with lb > 0 *)
  s_max_gap : int;
  s_max_gap_region : string;
  s_occ_met : int;  (** regions at or above their occupancy target *)
  s_mean_iterations : float;
  s_mean_iters_to_best : float;
  s_improved : int;
}

val summarize : record list -> summary

val summarize_by_backend : record list -> (string * summary) list
(** One summary per product backend appearing in the corpus, sorted by
    backend name — how a race's wins are distributed. *)

val render_summary : ?top:int -> record list -> string
(** Human-readable corpus summary, with the [top] (default 5) worst
    regions by gap. When the corpus mixes backends (a race or auto
    policy), a per-backend section splits the gap distribution and
    occupancy hit rate. *)
