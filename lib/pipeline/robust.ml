type config = {
  compile_budget_ns : float array;
  iteration_deadline_ns : float;
  max_retries : int;
}

let default =
  {
    compile_budget_ns = [| infinity; infinity; infinity |];
    iteration_deadline_ns = infinity;
    max_retries = 2;
  }

let budgets_of_ms ms =
  let ms = Float.max 0.0 ms in
  [| ms *. 1e6; 2.0 *. ms *. 1e6; 4.0 *. ms *. 1e6 |]

let budget_for t ~n =
  let k = Array.length t.compile_budget_ns in
  if k = 0 then infinity
  else t.compile_budget_ns.(min (Aco.Params.size_category n) (k - 1))

let budget_work_of_ns (gpu : Gpusim.Config.t) ns =
  if ns = infinity then max_int
  else max 0 (int_of_float (Float.min (ns /. gpu.Gpusim.Config.cpu_ns_per_op) 1e15))

type degradation =
  | Clean
  | Retried of int
  | Budget_exceeded
  | Faulted_fallback
  | Shed_overload

let degradation_label = function
  | Clean -> "clean"
  | Retried k -> Printf.sprintf "retried(%d)" k
  | Budget_exceeded -> "budget"
  | Faulted_fallback -> "fallback"
  | Shed_overload -> "shed"

let severity = function
  | Clean -> 0
  | Retried _ -> 1
  | Budget_exceeded -> 2
  | Faulted_fallback -> 3
  | Shed_overload -> 4

(* Classification priority (most severe wins): the driver replaced the
   ACO product with the heuristic schedule, or a pass exhausted its
   retries > a pass ran out of compile budget > faulted iterations were
   retried but the region recovered > nothing happened. *)
let classify ~fell_back ~aborted_faults ~aborted_budget ~retries =
  if fell_back || aborted_faults then Faulted_fallback
  else if aborted_budget then Budget_exceeded
  else if retries > 0 then Retried retries
  else Clean

(* Ledger → flight recorder: one instant on the driver track per
   degraded region plus a stable-named counter per rung (the [Retried]
   payload goes in the event arg, not the metric name, so series stay
   mergeable across runs), and — when a logger is threaded in — one
   warn entry per degraded region so the operational stream carries the
   ladder too. *)
let observe ?(log = Obs.Log.null) trace metrics ~region d =
  if Obs.Trace.enabled trace && severity d > 0 then
    Obs.Trace.instant_arg trace ~track:0
      ~name:("degraded: " ^ region)
      ~ts:(Obs.Trace.now trace) ~key:"severity"
      ~value:(float_of_int (severity d));
  if Obs.Log.enabled log && severity d > 0 then
    Obs.Log.warn log "region.degraded"
      [
        ("region", Obs.Log.Str region);
        ("rung", Obs.Log.Str (degradation_label d));
        ("severity", Obs.Log.Int (severity d));
      ];
  if Obs.Metrics.enabled metrics then
    Obs.Metrics.incr metrics
      (match d with
      | Clean -> "regions.clean"
      | Retried _ -> "regions.retried"
      | Budget_exceeded -> "regions.budget_exceeded"
      | Faulted_fallback -> "regions.faulted_fallback"
      | Shed_overload -> "regions.shed_overload")

type tally = {
  regions : int;
  clean : int;
  retried : int;
  budget_exceeded : int;
  faulted_fallback : int;
  shed_overload : int;
  total_retries : int;
}

let empty_tally =
  {
    regions = 0;
    clean = 0;
    retried = 0;
    budget_exceeded = 0;
    faulted_fallback = 0;
    shed_overload = 0;
    total_retries = 0;
  }

let tally_add t d =
  let t = { t with regions = t.regions + 1 } in
  match d with
  | Clean -> { t with clean = t.clean + 1 }
  | Retried k -> { t with retried = t.retried + 1; total_retries = t.total_retries + k }
  | Budget_exceeded -> { t with budget_exceeded = t.budget_exceeded + 1 }
  | Faulted_fallback -> { t with faulted_fallback = t.faulted_fallback + 1 }
  | Shed_overload -> { t with shed_overload = t.shed_overload + 1 }

let tally_of_list ds = List.fold_left tally_add empty_tally ds
