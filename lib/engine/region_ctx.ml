(* The immutable analysis bundle of one scheduling region: everything a
   backend or the compile pipeline derives from the region alone, computed
   once and shared by every consumer — the two-pass orchestrator, each
   backend of a dispatch race, the ride-along sequential baseline, and
   the report synthesis. Nothing here is mutated after construction, so a
   value can be shared freely across domains and cached by content. *)

type t = {
  setup : Setup.t;
  closure : Ddg.Closure.t;
  critpath : Ddg.Critpath.t;
  ready_ub : int;
  rp_layout : Sched.Rp_tracker.layout;
  cp_schedule : Sched.Schedule.t;
  cp_cost : Sched.Cost.t;
  fingerprint : string;
}

let graph t = t.setup.Setup.graph
let occ t = t.setup.Setup.occ
let size t = (graph t).Ddg.Graph.n

(* --- content addressing --------------------------------------------------- *)

(* Structural codes; instruction and region *names* are deliberately
   excluded — two regions that differ only in labels schedule
   identically, so they must share one cache entry. *)
let kind_code = function
  | Ir.Opcode.Valu -> 0
  | Ir.Opcode.Valu_trans -> 1
  | Ir.Opcode.Salu -> 2
  | Ir.Opcode.Vmem_load -> 3
  | Ir.Opcode.Vmem_store -> 4
  | Ir.Opcode.Smem_load -> 5
  | Ir.Opcode.Lds -> 6
  | Ir.Opcode.Branch -> 7
  | Ir.Opcode.Export -> 8

let add_reg buf (r : Ir.Reg.t) =
  Buffer.add_char buf (match r.Ir.Reg.cls with Ir.Reg.Vgpr -> 'v' | Ir.Reg.Sgpr -> 's');
  Buffer.add_string buf (string_of_int r.Ir.Reg.id)

let fingerprint_of_region (region : Ir.Region.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (string_of_int (Ir.Region.size region));
  Array.iter
    (fun (i : Ir.Instr.t) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int (kind_code i.Ir.Instr.kind));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int i.Ir.Instr.latency);
      Buffer.add_char buf 'd';
      List.iter (add_reg buf) i.Ir.Instr.defs;
      Buffer.add_char buf 'u';
      List.iter (add_reg buf) i.Ir.Instr.uses)
    region.Ir.Region.instrs;
  Buffer.add_char buf 'o';
  List.iter (add_reg buf) region.Ir.Region.live_out;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- construction --------------------------------------------------------- *)

let of_setup ?fingerprint (setup : Setup.t) =
  let graph = setup.Setup.graph in
  let closure = Ddg.Closure.compute graph in
  let cp_schedule = Sched.List_scheduler.run graph Sched.Heuristic.Critical_path in
  {
    setup;
    closure;
    critpath = Ddg.Critpath.compute graph;
    ready_ub = Ddg.Closure.ready_list_upper_bound closure;
    (* [~closure] arms the layout's min-register lower-bound tables, so
       any pruning-capable backend fed from this context prunes for
       real; without it the tables are zero and pruning is a no-op. *)
    rp_layout = Sched.Rp_tracker.layout_of_graph ~closure graph;
    cp_schedule;
    cp_cost = Sched.Cost.of_schedule setup.Setup.occ cp_schedule;
    fingerprint =
      (match fingerprint with
      | Some f -> f
      | None -> fingerprint_of_region graph.Ddg.Graph.region);
  }

let of_graph ?fingerprint occ graph = of_setup ?fingerprint (Setup.prepare occ graph)

let of_region ?fingerprint occ region = of_graph ?fingerprint occ (Ddg.Graph.build region)
