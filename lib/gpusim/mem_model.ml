let step_transactions (config : Config.t) ~reads_per_lane =
  match reads_per_lane with
  | [] -> 0
  | _ :: _ ->
      if config.opts.Config.coalesced_layout then List.fold_left max 0 reads_per_lane
      else List.fold_left ( + ) 0 reads_per_lane

let step_transactions_acc (config : Config.t) ~active ~reads_max ~reads_sum =
  if active = 0 then 0
  else if config.opts.Config.coalesced_layout then reads_max
  else reads_sum

let words_per_thread (config : Config.t) ~n ~ready_ub =
  let ready = if config.opts.Config.tight_ready_ub then ready_ub else n in
  (* schedule slots (with stall margin) + ready array + pending array +
     per-register liveness state (bounded by 2n defs) + misc scalars. *)
  (2 * n) + ready + ready + (2 * n) + 16

let structures_per_thread = 5
(* schedule, ready, pending, RP state, scalars — each a separate
   allocation + copy in unbatched mode. *)

let setup_time_ns (config : Config.t) ~n ~ready_ub =
  let threads = Config.threads config in
  let words = words_per_thread config ~n ~ready_ub * threads in
  let pheromone_words = (n + 1) * n in
  let copy = float_of_int (words + pheromone_words) *. config.copy_ns_per_word in
  let calls =
    if config.opts.Config.batched_alloc then 2.0 (* one alloc + one copy *)
    else float_of_int (structures_per_thread * threads / 64 * 2)
    (* per-structure calls; the driver batches within a block's worth *)
  in
  copy +. (calls *. config.alloc_call_ns)

let teardown_time_ns (config : Config.t) ~n =
  let calls = if config.opts.Config.batched_alloc then 2.0 else 8.0 in
  (float_of_int (2 * n) *. config.copy_ns_per_word) +. (calls *. config.alloc_call_ns)

(* Spill pricing for the spill-aware RP objective (RegDem,
   arXiv 1907.02894), derived from the same machine description the
   simulator runs on. Modeling choices:
   - the target occupancy is 80% of the target's wave limit — high
     enough that pressure matters, low enough that the allowances are
     not degenerate;
   - a spilled VGPR costs a store + reload round trip, so two memory
     transactions amortized over a wavefront, expressed in GPU op
     cycles ([2 * mem_transaction_ns / gpu_ns_per_op], at least 1);
   - SGPR spills go through scalar memory, which the model prices at
     half the vector cost (again at least 1). *)
let spill_model (config : Config.t) : Sched.Objective.spill_model =
  let occ = Machine.Occupancy.create config.target in
  let target_occupancy = max 1 (Machine.Occupancy.max_waves occ * 8 / 10) in
  let allow cls =
    Machine.Occupancy.max_pressure_for occ cls ~occupancy:target_occupancy
  in
  let round_trip = 2.0 *. config.mem_transaction_ns /. config.gpu_ns_per_op in
  let vgpr_spill_cycles = max 1 (int_of_float (ceil round_trip)) in
  let sgpr_spill_cycles = max 1 (vgpr_spill_cycles / 2) in
  {
    Sched.Objective.target_occupancy;
    allow_vgpr = allow Ir.Reg.Vgpr;
    allow_sgpr = allow Ir.Reg.Sgpr;
    vgpr_spill_cycles;
    sgpr_spill_cycles;
  }
