(** The pluggable execution substrate of the two-pass engine.

    A backend owns {e how} a colony searches — on the host CPU, on the
    simulated GPU, with which cost formulation — while {!Two_pass} owns
    {e what} is searched: pass sequencing, lower-bound gating, the RP
    target handoff and budget threading. A backend is prepared once per
    region, asked to run up to two passes, then torn down. *)

type ext = ..
(** Open extension point for backend-specific configuration carried by
    {!ctx}. Each backend declares its own constructors (the GPU-model
    backend adds its launch geometry, fault injector and watchdog; the
    weighted backend its RP weight) and scans [ctx.ext] in [prepare];
    unknown constructors are ignored, so contexts compose. *)

type ctx = {
  params : Params.t;
  seed : int;  (** root of the backend's deterministic RNG stream *)
  budget : Types.budget;  (** whole-region budget, both passes *)
  trace : Obs.Trace.t;  (** null unless the backend has {!Types.caps.trace} *)
  metrics : Obs.Metrics.t;
  label : string;  (** recorder prefix, ["<region>.<backend>."] *)
  ext : ext list;  (** backend-specific extras, see {!ext} *)
}

val null_ctx : ctx
(** Default params, seed 1, unlimited budget, disabled recorders. *)

type order_request = {
  o_label : string;  (** metric prefix of this pass *)
  o_budget : Types.budget;
  o_initial_cost : int;  (** RP scalar of [o_initial_order] *)
  o_initial_order : int array;
  o_lb_cost : int;  (** RP-scalar lower bound ending the search *)
}
(** Pass 1: minimize the RP scalar over instruction orders. *)

type schedule_request = {
  s_label : string;
  s_budget : Types.budget;  (** whatever pass 1 left unspent *)
  s_target_vgpr : int;  (** APRP ceiling from the pass-1 winner *)
  s_target_sgpr : int;
  s_initial : Sched.Schedule.t;  (** the latency-padded pass-1 winner *)
  s_initial_length : int;
  s_length_lb : int;
}
(** Pass 2: minimize schedule length under the pass-1 RP target. *)

module type S = sig
  val name : string
  (** Registry key, also the CLI spelling and the report column. *)

  val caps : Types.caps

  val objective : Sched.Objective.t option
  (** RP term of the two-pass objective this backend optimizes; [None]
      means the engine default ({!Sched.Objective.Cliff}, the paper's
      occupancy cliff). {!Two_pass} derives the pass-1 costs and the
      pass-2 RP-target handoff from it, so a spill-aware backend races
      fairly against cliff backends — each optimizes its own objective
      and the pipeline compares the shipped schedules. *)

  type state
  (** Per-region working set (colony, arenas, pheromone table, RNG),
      built once and shared by both passes — RNG continuity across the
      passes is part of the byte-identity contract. *)

  val prepare : ctx -> Region_ctx.t -> state
  (** Build the working set from the shared region-analysis context.
      Backends must consume the context's precomputed analyses
      (closure bound, critical path, RP layout) rather than re-deriving
      them — a race of N backends does the analysis work once. *)

  val run_order_pass : state -> order_request -> int array * Types.pass_stats
  val run_schedule_pass : state -> schedule_request -> Sched.Schedule.t * Types.pass_stats

  val teardown : state -> unit
  (** Called exactly once, also when a pass raised. *)
end

type t = (module S)

val name : t -> string
val caps : t -> Types.caps
val objective : t -> Sched.Objective.t option
