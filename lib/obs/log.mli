(** Structured operational logger: leveled events with typed fields,
    kept in a bounded ring and rendered as JSONL.

    Where {!Trace} answers "where did the time go" on a timeline,
    [Log] answers "what happened to request X" as a queryable event
    stream: admission, shedding, retries, degradations, backend picks
    — each entry one JSON object per line with a wall-clock timestamp.

    The zero-cost discipline matches the tracer: {!null} never
    allocates, never locks, never reads the clock — every call is a
    single branch on an immutable bool, so a run without logging is
    byte-identical to one where the hooks were never compiled in. An
    enabled logger appends under a mutex and may be shared across
    domains; when the ring fills, the oldest entries are overwritten
    ({!dropped} reports the loss).

    Ambient context (request ids, worker indices) threads through
    {!with_fields}: the child shares the parent's ring but stamps its
    bound fields onto every entry it logs. *)

type level = Debug | Info | Warn | Error

val severity : level -> int
(** [Debug] 0 … [Error] 3. *)

val level_label : level -> string
val level_of_string : string -> level option

type field = Str of string | Int of int | Float of float | Bool of bool

type entry = {
  e_ts : float;  (** Unix seconds *)
  e_level : level;
  e_event : string;
  e_fields : (string * field) list;
}

type t

val null : t
(** The disabled logger; shared, never records. *)

val create : ?capacity:int -> ?level:level -> unit -> t
(** An enabled logger holding the last [capacity] (default 4096,
    minimum 16) entries at or above [level] (default [Debug]). *)

val enabled : t -> bool
val capacity : t -> int

val recorded : t -> int
(** Entries ever accepted, including any since overwritten. *)

val dropped : t -> int
(** Entries lost to ring wrap-around. *)

val level : t -> level

val with_fields : t -> (string * field) list -> t
(** A child logger sharing this ring and level whose bound fields are
    prepended to every entry it logs. Children nest; on the disabled
    logger this is the identity (no allocation). *)

val log : t -> level -> string -> (string * field) list -> unit
(** [log t lvl event fields] appends one entry, if [lvl] clears the
    logger's level. Field keys should avoid [ts]/[lvl]/[evt] (the
    envelope keys). *)

val debug : t -> string -> (string * field) list -> unit
val info : t -> string -> (string * field) list -> unit
val warn : t -> string -> (string * field) list -> unit
val error : t -> string -> (string * field) list -> unit

val entries : t -> entry list
(** Surviving entries, oldest first (snapshot under the lock). *)

val entry_json : entry -> string
(** One entry as a single-line JSON object:
    [{"ts":…,"lvl":…,"evt":…,<fields>}]. *)

val to_jsonl : t -> string
(** All surviving entries, one JSON object per line. *)

val write_jsonl : t -> string -> unit
