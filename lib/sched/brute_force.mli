(** Exact reference solutions for tiny regions.

    The test suite uses these exponential solvers to certify the rest of
    the stack: the register-pressure lower bound must sit at or below
    the exact optimum, every heuristic at or above it, and the ACO
    search should reach it on small instances (the paper's termination
    test compares against a lower bound precisely because the exact
    optimum is unreachable at scale). *)

val min_peak_pressure : Ddg.Graph.t -> Ir.Reg.cls -> int
(** Exact minimum over all dependence-respecting instruction orders of
    the peak register pressure of the given class (latencies ignored, as
    in pass 1). Subset dynamic programming, O(2^n * n); raises
    [Invalid_argument] for regions larger than 20 instructions. *)

val min_schedule_length : Ddg.Graph.t -> int
(** Exact minimum latency-respecting schedule length (single-issue,
    stalls allowed, RP ignored). Depth-first branch-and-bound with the
    critical-path bound; raises [Invalid_argument] for regions larger
    than 12 instructions. *)
