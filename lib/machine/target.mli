(** Target-GPU description.

    The default target mirrors the paper's AMD Radeon VII (Vega 20):
    60 compute units, 4 SIMD units per CU, 64-thread wavefronts, at most
    10 resident wavefronts per SIMD, 256 VGPRs per SIMD lane allocated in
    granules of 4, and 800 SGPRs per SIMD in granules of 16. These
    numbers drive both the occupancy model (what the *compiled code* can
    achieve) and the GPU simulator (where the *scheduler itself* runs). *)

type t = {
  name : string;
  num_cus : int;
  simds_per_cu : int;
  wavefront_size : int;
  max_waves_per_simd : int;
  vgprs_per_simd : int;
  vgpr_granularity : int;
  sgprs_per_simd : int;
  sgpr_granularity : int;
  clock_ghz : float;
}

val vega20 : t
(** The paper's Radeon VII configuration. *)

val total_simds : t -> int
(** [num_cus * simds_per_cu]. *)

val reg_budget : t -> Ir.Reg.cls -> int
(** Register file size per SIMD for a class. *)

val granularity : t -> Ir.Reg.cls -> int
