let schedule_length g =
  let cp = Critpath.compute g in
  max (Critpath.critical_path_length cp + 1) (Graph.size g)

let count_cls cls regs =
  List.length (List.filter (fun (r : Ir.Reg.t) -> Ir.Reg.cls_equal r.cls cls) regs)

let register_pressure (g : Graph.t) cls =
  let region = g.region in
  let live_in = count_cls cls (Ir.Region.live_in region) in
  let live_out = count_cls cls (region : Ir.Region.t).live_out in
  let max_defs =
    Array.fold_left
      (fun acc (i : Ir.Instr.t) -> max acc (count_cls cls i.defs))
      0 (region : Ir.Region.t).instrs
  in
  max live_in (max live_out max_defs)
