type t = {
  name : string;
  num_cus : int;
  simds_per_cu : int;
  wavefront_size : int;
  max_waves_per_simd : int;
  vgprs_per_simd : int;
  vgpr_granularity : int;
  sgprs_per_simd : int;
  sgpr_granularity : int;
  clock_ghz : float;
}

let vega20 =
  {
    name = "gfx906 (Vega 20, Radeon VII)";
    num_cus = 60;
    simds_per_cu = 4;
    wavefront_size = 64;
    max_waves_per_simd = 10;
    vgprs_per_simd = 256;
    vgpr_granularity = 4;
    sgprs_per_simd = 800;
    sgpr_granularity = 16;
    clock_ghz = 1.8;
  }

let total_simds t = t.num_cus * t.simds_per_cu

let reg_budget t = function
  | Ir.Reg.Vgpr -> t.vgprs_per_simd
  | Ir.Reg.Sgpr -> t.sgprs_per_simd

let granularity t = function
  | Ir.Reg.Vgpr -> t.vgpr_granularity
  | Ir.Reg.Sgpr -> t.sgpr_granularity
