(** Metrics registry: named counters, gauges, histogram summaries and
    append-only series, registered on first use, exported as JSON or CSV.

    {!null} is the disabled registry: every operation on it is a single
    branch on an immutable bool, so instrumentation guarded by it adds
    no allocation and no writes.

    An enabled registry is domain-safe: every mutation and registry read
    takes an internal mutex, so the executor's domain workers may share
    one registry. The disabled registry never touches the mutex. *)

type t

val create : unit -> t
val null : t
val enabled : t -> bool

val incr : t -> string -> unit
(** Bump a counter by one. *)

val add : t -> string -> int -> unit
(** Bump a counter by [n]. *)

val set : t -> string -> float -> unit
(** Set a gauge (min/max/mean of the sets are kept too). *)

val observe : t -> string -> float -> unit
(** Feed a histogram: count/sum/min/max/mean plus a fixed log-scale
    bucket ladder (powers of 4, +Inf overflow) for quantile estimates
    and Prometheus exposition. *)

val push : t -> string -> float -> unit
(** Append to a series: like {!observe} but the individual values are
    kept in order and exported (convergence curves). *)

val merge_into : t -> into:t -> unit
(** Fold every metric of the source registry into [into]: counters add;
    gauges combine count/sum/min/max with the source's last winning
    when it saw any; histograms combine count/sum/min/max/buckets
    {e commutatively} (the merged last is the max over non-empty
    shards, so the result is independent of worker join order); series
    append their points. The executor's per-domain shards merge through
    this at join — the source must be quiescent; only [into]'s mutex is
    taken. No-op when either registry is disabled. *)

(** {2 Reading back} *)

type metric
type kind = Counter | Gauge | Histogram | Series

val names : t -> string list
(** Registration order. *)

val get : t -> string -> metric option
val kind_of : metric -> kind
val count : metric -> int
val sum : metric -> float
val last : metric -> float
val mean : metric -> float

val value : metric -> float
(** The headline value: total for counters, last for gauges, sum
    otherwise. *)

val series : metric -> float array
(** The recorded points of a series (empty for other kinds). *)

val buckets : metric -> (float * int) array
(** Histogram buckets as [(upper_bound, cumulative_count)] pairs,
    final bound [infinity]; the cumulative counts are monotone
    non-decreasing and end at {!count}. Empty for other kinds. *)

val percentile : metric -> float -> float
(** [percentile m q] for [q] in [0, 1]: a bucket-resolution quantile
    estimate (conservative to one log-scale bucket), clamped into
    [[min, max]]. [0.] for empty or non-histogram metrics. *)

(** {2 Export} *)

val to_csv : t -> string
(** One summary row per metric
    ([metric,kind,index,value,count,sum,min,max,mean]) followed by one
    [point] row per series element. *)

val to_json : t -> string

val to_prometheus : t -> string
(** Prometheus text exposition: each metric becomes a
    [gpuaco_]-prefixed family ([# TYPE] line then samples) in
    registration order. Counters expose their total, gauges their last
    value, histograms cumulative [_bucket{le="…"}] lines plus [_sum]
    and [_count]. The per-client admission counters
    ([serve.client.<c>.requests]) collapse into one
    [gpuaco_serve_client_requests] family with the client as an
    escaped label value. Series are omitted (no Prometheus shape). *)

val write_csv : t -> string -> unit
val write_json : t -> string -> unit
