(* xoshiro256++ with the four 64-bit state words stored by bit pattern in
   a flat float array: float-array loads and stores compile to unboxed
   moves and [Int64.bits_of_float]/[float_of_bits] are no-op bit casts,
   so — with the hot draws inlined — advancing the generator allocates
   nothing. A mutable int64 record would box every state store (and the
   selection loop of the ACO ant draws on every step). The emitted
   stream is bit-identical to the textbook int64 formulation. *)

type t = float array

(* splitmix64: expands a 64-bit seed into well-distributed words; the
   recommended way to seed xoshiro. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed_word w =
  let st = ref w in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  [|
    Int64.float_of_bits s0;
    Int64.float_of_bits s1;
    Int64.float_of_bits s2;
    Int64.float_of_bits s3;
  |]

let create seed = of_seed_word (Int64.of_int seed)

let[@inline] rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step. *)
let[@inline] int64 (t : t) =
  let s0 = Int64.bits_of_float (Array.unsafe_get t 0) in
  let s1 = Int64.bits_of_float (Array.unsafe_get t 1) in
  let s2 = Int64.bits_of_float (Array.unsafe_get t 2) in
  let s3 = Int64.bits_of_float (Array.unsafe_get t 3) in
  let result = Int64.add (rotl (Int64.add s0 s3) 23) s0 in
  let tmp = Int64.shift_left s1 17 in
  let s2 = Int64.logxor s2 s0 in
  let s3 = Int64.logxor s3 s1 in
  let s1 = Int64.logxor s1 s2 in
  let s0 = Int64.logxor s0 s3 in
  let s2 = Int64.logxor s2 tmp in
  let s3 = rotl s3 45 in
  Array.unsafe_set t 0 (Int64.float_of_bits s0);
  Array.unsafe_set t 1 (Int64.float_of_bits s1);
  Array.unsafe_set t 2 (Int64.float_of_bits s2);
  Array.unsafe_set t 3 (Int64.float_of_bits s3);
  result

let copy (t : t) = Array.copy t

let split t = of_seed_word (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let[@inline] float t =
  (* 53 high bits -> [0,1). *)
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let[@inline] bool t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
