(** Flight recorder for the simulated GPU: a preallocated ring buffer of
    spans and instant events keyed to {e simulated} nanoseconds.

    The drivers thread one recorder through a compile; each record call
    is a handful of array writes into the ring (plus a one-time intern
    per distinct name). A full ring wraps and overwrites the oldest
    events — recording never allocates per event and never fails —
    and {!dropped} reports the loss. {!to_chrome_json} renders the
    surviving events as a Chrome trace-event timeline (one [tid] per
    track, balanced [B]/[E] span pairs, [i] instants) that opens in
    Perfetto or [chrome://tracing].

    {!null} is the disabled recorder: every call on it is a single
    branch on an immutable bool — no allocation, no writes — so an
    uninstrumented run is byte-identical, including its allocation
    counters. *)

type t

val create : ?capacity:int -> ?wall_origin:float -> unit -> t
(** An enabled recorder holding the last [capacity] (default 65536,
    minimum 16) events. [wall_origin] is the wall-clock zero in Unix
    seconds (default: creation time); worker rings that merge into a
    parent recorder must share the parent's {!wall_origin} so their
    wall-clock timestamps land on one axis. *)

val null : t
(** The disabled recorder; shared, never records. *)

val enabled : t -> bool
val capacity : t -> int

val recorded : t -> int
(** Events ever recorded, including any since overwritten. *)

val dropped : t -> int
(** Events lost to ring wrap-around ([max 0 (recorded - capacity)]). *)

(** {2 Simulated clock}

    The recorder carries a cursor in simulated nanoseconds so that
    sequential passes and regions stack on one timeline. The cursor is
    bookkeeping for instrumentation sites; record calls take explicit
    timestamps. Stored in a one-element float array so updates do not
    box. *)

val now : t -> float
val set_now : t -> float -> unit
val advance : t -> float -> unit

(** {2 Wall clock}

    Tracks numbered at or above {!wall_track_base} carry {e monotonic
    wall-clock} nanoseconds instead of simulated nanoseconds: real
    worker utilization, steal stalls and merge cost, which the
    simulated timeline cannot show. The two clock families never share
    a track, and export places wall tracks under their own process id
    so per-track lint invariants (monotone, balanced) hold within each
    clock. *)

val wall_track_base : int
(** First wall-clock track id (1024). *)

val wall_origin : t -> float
(** The recorder's wall-clock zero, Unix seconds. *)

val wall_now : t -> float
(** Wall-clock ns elapsed since {!wall_origin}. The disabled recorder
    returns [0.] without reading the system clock. *)

(** {2 Recording} *)

val name_track : t -> int -> string -> unit
(** Label a track (rendered as a Chrome thread name). First label wins. *)

val span : t -> track:int -> name:string -> ts:float -> dur:float -> unit
(** A complete span: [ts] start and [dur] length, both simulated ns.
    Spans on one track must nest or tile; partial overlap is clamped at
    export. *)

val span_arg :
  t -> track:int -> name:string -> ts:float -> dur:float -> key:string -> value:float -> unit
(** As {!span} with one numeric argument. *)

val instant : t -> track:int -> name:string -> ts:float -> unit
val instant_arg : t -> track:int -> name:string -> ts:float -> key:string -> value:float -> unit

(** {2 Merging}

    The multi-domain executor gives each worker a private ring on its
    own simulated clock and merges at join: for every job it remembers
    the worker's {!recorded} count and {!now} before and after, then
    replays the slices in job order with a per-slice shift. *)

val append_range : t -> into:t -> first:int -> last:int -> dt:float -> unit
(** Replay the source events numbered [first] (inclusive) to [last]
    (exclusive) — indices as counted by {!recorded} — into [into],
    shifting every timestamp by [dt]. Track labels are carried over
    (first label wins). Events already lost to the source ring's
    wrap-around are skipped, as are wall-clock events (their absolute
    timestamps must not be shifted — use {!append_wall}). No-op when
    either recorder is disabled. *)

val append_wall : t -> into:t -> unit
(** Replay every surviving wall-clock event (track >=
    {!wall_track_base}) into [into] unshifted — both recorders must
    share a {!wall_origin}. Complements {!append_range}, which carries
    only the simulated tracks. *)

(** {2 Reading back} *)

type event = {
  e_kind : [ `Span | `Instant ];
  e_name : string;
  e_track : int;
  e_ts : float;
  e_dur : float;  (** 0 for instants *)
  e_arg : (string * float) option;
}

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Over surviving events, oldest first. *)

val events : t -> event list

val span_totals : t -> (string * float * int) list
(** [(name, total duration ns, count)] per span name, longest first —
    the phase breakdown of where simulated time went. *)

val instant_counts : t -> (string * int) list

(** {2 Export} *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON: metadata thread names, then the events
    sorted by timestamp with balanced, properly nested [B]/[E] pairs
    per track. Timestamps are emitted in microseconds (the trace-event
    unit) at nanosecond resolution. *)

val write_chrome_json : t -> string -> unit
