type t = {
  graph : Ddg.Graph.t;
  index : (Ir.Reg.t, int) Hashtbl.t;  (* register -> dense id (construction only) *)
  cls : Ir.Reg.cls array;  (* dense id -> class *)
  (* per-instruction dense register ids, precomputed so the hot path never
     hashes *)
  use_ids : int array array;
  def_ids : int array array;
  total_uses : int array;
  live_out : bool array;
  live_in : bool array;
  (* mutable state *)
  remaining : int array;
  live : bool array;
  current : int array;  (* indexed by class rank *)
  peak : int array;
}

let rank = function Ir.Reg.Vgpr -> 0 | Ir.Reg.Sgpr -> 1

let create (graph : Ddg.Graph.t) =
  let region = graph.region in
  let instrs = (region : Ir.Region.t).instrs in
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let intern r =
    match Hashtbl.find_opt index r with
    | Some i -> i
    | None ->
        let i = !next in
        Hashtbl.add index r i;
        incr next;
        i
  in
  let use_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.uses)) instrs
  in
  let def_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.defs)) instrs
  in
  List.iter (fun r -> ignore (intern r)) (region : Ir.Region.t).live_out;
  List.iter (fun r -> ignore (intern r)) (Ir.Region.live_in region);
  let nregs = max !next 1 in
  let cls = Array.make nregs Ir.Reg.Vgpr in
  Hashtbl.iter (fun (r : Ir.Reg.t) i -> cls.(i) <- r.cls) index;
  let total_uses = Array.make nregs 0 in
  Array.iter (Array.iter (fun i -> total_uses.(i) <- total_uses.(i) + 1)) use_ids;
  let live_out = Array.make nregs false in
  List.iter (fun r -> live_out.(Hashtbl.find index r) <- true) (region : Ir.Region.t).live_out;
  let live_in = Array.make nregs false in
  List.iter (fun r -> live_in.(Hashtbl.find index r) <- true) (Ir.Region.live_in region);
  let t =
    {
      graph;
      index;
      cls;
      use_ids;
      def_ids;
      total_uses;
      live_out;
      live_in;
      remaining = Array.copy total_uses;
      live = Array.make nregs false;
      current = Array.make 2 0;
      peak = Array.make 2 0;
    }
  in
  Array.iteri
    (fun i li ->
      if li then begin
        t.live.(i) <- true;
        let c = rank t.cls.(i) in
        t.current.(c) <- t.current.(c) + 1
      end)
    live_in;
  t.peak.(0) <- t.current.(0);
  t.peak.(1) <- t.current.(1);
  t

let reset t =
  Array.blit t.total_uses 0 t.remaining 0 (Array.length t.total_uses);
  Array.fill t.current 0 2 0;
  Array.iteri
    (fun i li ->
      t.live.(i) <- li;
      if li then begin
        let c = rank t.cls.(i) in
        t.current.(c) <- t.current.(c) + 1
      end)
    t.live_in;
  t.peak.(0) <- t.current.(0);
  t.peak.(1) <- t.current.(1)

let copy t =
  {
    t with
    remaining = Array.copy t.remaining;
    live = Array.copy t.live;
    current = Array.copy t.current;
    peak = Array.copy t.peak;
  }

let schedule t i =
  let uses = t.use_ids.(i) and defs = t.def_ids.(i) in
  Array.iter
    (fun ui ->
      t.remaining.(ui) <- t.remaining.(ui) - 1;
      if t.remaining.(ui) = 0 && (not t.live_out.(ui)) && t.live.(ui) then begin
        t.live.(ui) <- false;
        let c = rank t.cls.(ui) in
        t.current.(c) <- t.current.(c) - 1
      end)
    uses;
  Array.iter
    (fun di ->
      if not t.live.(di) then begin
        t.live.(di) <- true;
        let c = rank t.cls.(di) in
        t.current.(c) <- t.current.(c) + 1
      end)
    defs;
  if t.current.(0) > t.peak.(0) then t.peak.(0) <- t.current.(0);
  if t.current.(1) > t.peak.(1) then t.peak.(1) <- t.current.(1);
  (* A def with no remaining uses and not live-out dies immediately after
     being counted at this instruction's point. *)
  Array.iter
    (fun di ->
      if t.remaining.(di) = 0 && (not t.live_out.(di)) && t.live.(di) then begin
        t.live.(di) <- false;
        let c = rank t.cls.(di) in
        t.current.(c) <- t.current.(c) - 1
      end)
    defs

let current t cls = t.current.(rank cls)
let peak t cls = t.peak.(rank cls)

(* One-pass, allocation-free analysis of scheduling [i]: per class, the
   live ranges it would close and open. Duplicate uses of one register in
   the same instruction are counted by multiplicity with a quadratic scan
   (Def/Use sets are tiny). Results land in [scratch]. *)
let scratch = Array.make 4 0 (* closed_v; opened_v; closed_s; opened_s *)

let compute_effects t i =
  Array.fill scratch 0 4 0;
  let uses = t.use_ids.(i) and defs = t.def_ids.(i) in
  let n_uses = Array.length uses in
  for k = 0 to n_uses - 1 do
    let ui = uses.(k) in
    (* multiplicity of ui among uses.(0..k) *)
    let mult = ref 0 in
    for j = 0 to k do
      if uses.(j) = ui then incr mult
    done;
    if t.remaining.(ui) = !mult && (not t.live_out.(ui)) && t.live.(ui) then begin
      (* this occurrence is the last outstanding use *)
      let last_occurrence = ref true in
      for j = k + 1 to n_uses - 1 do
        if uses.(j) = ui then last_occurrence := false
      done;
      if !last_occurrence then
        let c = rank t.cls.(ui) in
        scratch.(2 * c) <- scratch.(2 * c) + 1
    end
  done;
  Array.iter
    (fun di ->
      if not t.live.(di) then begin
        (* already-opened within this instruction? defs are unique *)
        let c = rank t.cls.(di) in
        scratch.((2 * c) + 1) <- scratch.((2 * c) + 1) + 1
      end)
    defs

let delta_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  scratch.((2 * c) + 1) - scratch.(2 * c)

let peak_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  max t.peak.(c) (t.current.(c) - scratch.(2 * c) + scratch.((2 * c) + 1))

let fits_within t i ~target_vgpr ~target_sgpr =
  compute_effects t i;
  let v = max t.peak.(0) (t.current.(0) - scratch.(0) + scratch.(1)) in
  let s = max t.peak.(1) (t.current.(1) - scratch.(2) + scratch.(3)) in
  v <= target_vgpr && s <= target_sgpr

let closes_count t i =
  compute_effects t i;
  scratch.(0) + scratch.(2)

let opens_count t i =
  compute_effects t i;
  scratch.(1) + scratch.(3)

(* Independent reference implementation over live-range intervals; assumes
   single-definition registers (all generated workloads are SSA-like).
   A register is live at point p (the point just after the instruction at
   position p; p = -1 is region entry) iff it was born at or before p and
   either is live-out, or still has a use after p, or is a dead def born
   exactly at p. *)
let naive_peaks (graph : Ddg.Graph.t) order =
  let region = graph.region in
  let pos = Array.make graph.n 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  let births : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let deaths : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let has_uses : (Ir.Reg.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (ins : Ir.Instr.t) ->
      let p = pos.(ins.id) in
      List.iter
        (fun d ->
          match Hashtbl.find_opt births d with
          | Some b -> if p < b then Hashtbl.replace births d p
          | None -> Hashtbl.add births d p)
        ins.defs;
      List.iter
        (fun u ->
          Hashtbl.replace has_uses u ();
          match Hashtbl.find_opt deaths u with
          | Some dth -> if p > dth then Hashtbl.replace deaths u p
          | None -> Hashtbl.add deaths u p)
        ins.uses)
    (region : Ir.Region.t).instrs;
  let live_out r = Ir.Region.is_live_out region r in
  let all_regs =
    Hashtbl.fold (fun r _ acc -> r :: acc) has_uses []
    |> List.append (Hashtbl.fold (fun r _ acc -> r :: acc) births [])
    |> List.sort_uniq Ir.Reg.compare
  in
  let live_at r p =
    let birth = Option.value (Hashtbl.find_opt births r) ~default:(-1) in
    if birth > p then false
    else if live_out r then true
    else
      match Hashtbl.find_opt deaths r with
      | Some d -> d > p
      | None -> p = birth (* dead def: live only at its own point *)
  in
  let peaks = [| 0; 0 |] in
  for p = -1 to Array.length order - 1 do
    let counts = [| 0; 0 |] in
    List.iter
      (fun (r : Ir.Reg.t) -> if live_at r p then counts.(rank r.cls) <- counts.(rank r.cls) + 1)
      all_regs;
    peaks.(0) <- max peaks.(0) counts.(0);
    peaks.(1) <- max peaks.(1) counts.(1)
  done;
  fun cls -> peaks.(rank cls)
