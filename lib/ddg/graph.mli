(** Data dependence graphs (DDGs).

    A node is an instruction of the region, an edge a dependence, and an
    edge label a latency (Figure 1.a of the paper). Edges are derived
    from the original program order:

    - flow (def -> use) edges carry the producer's result latency;
    - anti (use -> redef) edges carry latency 0;
    - output (def -> redef) edges carry latency 1;
    - conservative memory-ordering edges keep stores ordered with stores
      and with surrounding loads of the same memory kind;
    - the region terminator (branch), when present, depends on every
      other instruction.

    Parallel edges are merged keeping the maximum latency, so the graph
    is a DAG with at most one edge per ordered pair. *)

type dep_kind = Flow | Anti | Output | Mem | Ctrl

type edge = { src : int; dst : int; latency : int; kind : dep_kind }

type t = private {
  region : Ir.Region.t;
  n : int;
  succs : (int * int) array array;
      (** [succs.(i)] lists [(j, latency)] for each edge [i -> j]. *)
  preds : (int * int) array array;
  edges : edge array;
}

val build : Ir.Region.t -> t
(** Construct the DDG of a region. *)

val size : t -> int
val num_preds : t -> int -> int
val num_succs : t -> int -> int

val roots : t -> int list
(** Nodes with no predecessors, ascending. *)

val leaves : t -> int list

val latency_between : t -> int -> int -> int option
(** [latency_between g i j] is the label of edge [i -> j] if present. *)

val instr : t -> int -> Ir.Instr.t

val to_dot : t -> string
(** Graphviz rendering (for debugging / the examples). *)
