type config = {
  occ : Machine.Occupancy.t;
  gpu : Gpusim.Config.t;
  params : Aco.Params.t;
  filters : Filters.config;
  seq_seed : int;
  par_seed : int;
  run_sequential : bool;
}

let make_config ?(gpu = Gpusim.Config.bench) ?(filters = Filters.default) () =
  let params =
    {
      Aco.Params.default with
      Aco.Params.ants_per_iteration = Gpusim.Config.threads gpu;
      (* Run the ILP pass ungated; Report applies [filters.cycle_threshold]
         by synthesis. *)
      pass2_cycle_threshold = 1;
    }
  in
  { occ = Machine.Occupancy.default; gpu; params; filters; seq_seed = 101; par_seed = 202; run_sequential = true }

type region_report = {
  region_name : string;
  n : int;
  size_category : int;
  length_lb : int;
  heuristic_cost : Sched.Cost.t;
  heuristic_order : int array;
  cp_cost : Sched.Cost.t;
  pass1_invoked : bool;
  pass2_invoked : bool;
  pass2_gap : int;
  aco_cost : Sched.Cost.t;
  aco_order : int array;
  pass1_only_cost : Sched.Cost.t;
  pass1_only_order : int array;
  seq_pass1 : Aco.Seq_aco.pass_stats option;
  seq_pass2 : Aco.Seq_aco.pass_stats option;
  par_pass1 : Gpusim.Par_aco.pass_stats;
  par_pass2 : Gpusim.Par_aco.pass_stats;
  seq_pass1_time_ns : float;
  seq_pass2_time_ns : float;
  par_pass1_time_ns : float;
  par_pass2_time_ns : float;
}

type kernel_report = { kernel : Workload.Suite.kernel; regions : region_report list }

type suite_report = {
  suite : Workload.Suite.t;
  compile_config : config;
  kernels : kernel_report list;
}

let run_region config ~name region =
  let graph = Ddg.Graph.build region in
  let setup = Aco.Setup.prepare config.occ graph in
  let par = Gpusim.Par_aco.run_from_setup ~params:config.params ~seed:config.par_seed config.gpu setup in
  let seq =
    if config.run_sequential then
      Some (Aco.Seq_aco.run_from_setup ~params:config.params ~seed:config.seq_seed setup)
    else None
  in
  let cp_schedule = Sched.List_scheduler.run graph Sched.Heuristic.Critical_path in
  let pass2_initial_cost = Sched.Cost.of_schedule config.occ par.Gpusim.Par_aco.pass2_initial in
  let seq_time stats =
    match stats with
    | Some (s : Aco.Seq_aco.pass_stats) ->
        Gpusim.Cpu_model.pass_time_ns config.gpu ~work:s.Aco.Seq_aco.work
    | None -> 0.0
  in
  {
    region_name = name;
    n = Ir.Region.size region;
    size_category = Aco.Params.size_category (Ir.Region.size region);
    length_lb = setup.Aco.Setup.length_lb;
    heuristic_cost = setup.Aco.Setup.amd_cost;
    heuristic_order = Sched.Schedule.order setup.Aco.Setup.amd_schedule;
    cp_cost = Sched.Cost.of_schedule config.occ cp_schedule;
    pass1_invoked = par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.invoked;
    pass2_invoked = par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.invoked;
    pass2_gap = setup.Aco.Setup.amd_cost.Sched.Cost.length - setup.Aco.Setup.length_lb;
    aco_cost = par.Gpusim.Par_aco.cost;
    aco_order = Sched.Schedule.order par.Gpusim.Par_aco.schedule;
    pass1_only_cost = pass2_initial_cost;
    pass1_only_order = Sched.Schedule.order par.Gpusim.Par_aco.pass2_initial;
    seq_pass1 = Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass1) seq;
    seq_pass2 = Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass2) seq;
    par_pass1 = par.Gpusim.Par_aco.pass1;
    par_pass2 = par.Gpusim.Par_aco.pass2;
    seq_pass1_time_ns = seq_time (Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass1) seq);
    seq_pass2_time_ns = seq_time (Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass2) seq);
    par_pass1_time_ns = par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.time_ns;
    par_pass2_time_ns = par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns;
  }

let run_suite ?(progress = fun _ -> ()) config (suite : Workload.Suite.t) =
  let kernels =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        progress k.Workload.Suite.kernel_name;
        let regions =
          List.mapi
            (fun i region ->
              let name = Printf.sprintf "%s/r%d" k.Workload.Suite.kernel_name i in
              run_region config ~name region)
            k.Workload.Suite.regions
        in
        { kernel = k; regions })
      suite.Workload.Suite.kernels
  in
  { suite; compile_config = config; kernels }

let hot_region (kr : kernel_report) = List.nth kr.regions kr.kernel.Workload.Suite.hot_index

let find_kernel (report : suite_report) (b : Workload.Suite.benchmark) =
  List.find
    (fun (kr : kernel_report) ->
      String.equal kr.kernel.Workload.Suite.kernel_name
        b.Workload.Suite.kernel.Workload.Suite.kernel_name)
    report.kernels
