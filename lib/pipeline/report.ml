type table1 = {
  num_benchmarks : int;
  num_kernels : int;
  num_regions : int;
  pass1_regions : int;
  pass2_regions : int;
  avg_pass1_size : float;
  avg_pass2_size : float;
  max_pass1_size : int;
  max_pass2_size : int;
}

let sensitive_benchmarks (report : Compile.suite_report) =
  List.filter (Perf_model.sensitive report) report.Compile.suite.Workload.Suite.benchmarks

(* Regions seen by the build: one occurrence per benchmark instance, as a
   template-instantiating build schedules shared kernels repeatedly. *)
let instance_regions report benchmarks =
  List.concat_map
    (fun b -> (Compile.find_kernel report b).Compile.regions)
    benchmarks

let region_kept (filters : Filters.config) (r : Compile.region_report) =
  r.Compile.pass2_gap >= filters.Filters.cycle_threshold

let pass1_kept filters (r : Compile.region_report) =
  r.Compile.pass1_invoked && region_kept filters r

let pass2_kept filters (r : Compile.region_report) =
  r.Compile.pass2_invoked && region_kept filters r

let table1 filters report =
  let benchmarks = sensitive_benchmarks report in
  let regions = instance_regions report benchmarks in
  let unique_kernels =
    List.sort_uniq String.compare
      (List.map
         (fun (b : Workload.Suite.benchmark) -> b.Workload.Suite.kernel.Workload.Suite.kernel_name)
         benchmarks)
  in
  let p1 = List.filter (pass1_kept filters) regions in
  let p2 = List.filter (pass2_kept filters) regions in
  let sizes rs = List.map (fun (r : Compile.region_report) -> r.Compile.n) rs in
  let avg = function
    | [] -> 0.0
    | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  {
    num_benchmarks = List.length benchmarks;
    num_kernels = List.length unique_kernels;
    num_regions = List.length regions;
    pass1_regions = List.length p1;
    pass2_regions = List.length p2;
    avg_pass1_size = avg (sizes p1);
    avg_pass2_size = avg (sizes p2);
    max_pass1_size = List.fold_left max 0 (sizes p1);
    max_pass2_size = List.fold_left max 0 (sizes p2);
  }

type table2 = {
  t2_pass1_regions : int;
  t2_pass2_regions : int;
  overall_occupancy_increase_pct : float;
  max_occupancy_increase_pct : float;
  overall_length_reduction_pct : float;
  max_length_reduction_pct : float;
}

let table2 filters report =
  let benchmarks = sensitive_benchmarks report in
  let regions = instance_regions report benchmarks in
  let p1 = List.filter (pass1_kept filters) regions in
  let p2 = List.filter (pass2_kept filters) regions in
  (* Occupancy is a kernel-level property; aggregate over the kernels of
     the included benchmarks (each kernel once). *)
  let kernel_reports =
    List.sort_uniq
      (fun (a : Compile.kernel_report) b ->
        String.compare a.Compile.kernel.Workload.Suite.kernel_name
          b.Compile.kernel.Workload.Suite.kernel_name)
      (List.map (Compile.find_kernel report) benchmarks)
  in
  let occ_pairs =
    List.map
      (fun kr ->
        ( Perf_model.kernel_occupancy Perf_model.Heuristic kr,
          Perf_model.kernel_occupancy (Perf_model.Final filters) kr ))
      kernel_reports
  in
  let sum_h = List.fold_left (fun acc (h, _) -> acc + h) 0 occ_pairs in
  let sum_f = List.fold_left (fun acc (_, f) -> acc + f) 0 occ_pairs in
  let max_occ_pct =
    List.fold_left
      (fun acc (h, f) -> Float.max acc (float_of_int (f - h) /. float_of_int h *. 100.0))
      0.0 occ_pairs
  in
  (* Length is a region-level property over ACO-processed regions. *)
  let processed = List.sort_uniq compare (p1 @ p2) in
  let len_pairs =
    List.map
      (fun (r : Compile.region_report) ->
        ( r.Compile.heuristic_cost.Sched.Cost.length,
          (Perf_model.final_for filters r).Perf_model.cost.Sched.Cost.length ))
      processed
  in
  let sum_lh = List.fold_left (fun acc (h, _) -> acc + h) 0 len_pairs in
  let sum_lf = List.fold_left (fun acc (_, f) -> acc + f) 0 len_pairs in
  let max_len_pct =
    List.fold_left
      (fun acc (h, f) -> Float.max acc (float_of_int (h - f) /. float_of_int h *. 100.0))
      0.0 len_pairs
  in
  {
    t2_pass1_regions = List.length p1;
    t2_pass2_regions = List.length p2;
    overall_occupancy_increase_pct =
      float_of_int (sum_f - sum_h) /. float_of_int (max sum_h 1) *. 100.0;
    max_occupancy_increase_pct = max_occ_pct;
    overall_length_reduction_pct =
      float_of_int (sum_lh - sum_lf) /. float_of_int (max sum_lh 1) *. 100.0;
    max_length_reduction_pct = max_len_pct;
  }

type speedup_row = {
  category : int;
  processed : int;
  comparable : int;
  geomean : float;
  max_speedup : float;
  min_speedup : float;
}

let region_speedup ~pass (r : Compile.region_report) =
  match pass with
  | `One -> (
      match Compile.seq_pass1 r with
      | Some s
        when s.Aco.Seq_aco.invoked && r.Compile.pass1_invoked
             && s.Aco.Seq_aco.iterations = (Compile.par_pass1 r).Gpusim.Par_aco.iterations
             && Compile.par_pass1_time_ns r > 0.0 ->
          Some (Compile.seq_pass1_time_ns r /. Compile.par_pass1_time_ns r)
      | Some _ | None -> None)
  | `Two -> (
      match Compile.seq_pass2 r with
      | Some s
        when s.Aco.Seq_aco.invoked && r.Compile.pass2_invoked
             && s.Aco.Seq_aco.iterations = (Compile.par_pass2 r).Gpusim.Par_aco.iterations
             && Compile.par_pass2_time_ns r > 0.0 ->
          Some (Compile.seq_pass2_time_ns r /. Compile.par_pass2_time_ns r)
      | Some _ | None -> None)

let processed_for_pass ~pass filters (r : Compile.region_report) =
  match pass with `One -> pass1_kept filters r | `Two -> pass2_kept filters r

let speedups ~pass filters report =
  let benchmarks = sensitive_benchmarks report in
  let regions = instance_regions report benchmarks in
  List.filter_map
    (fun (r : Compile.region_report) ->
      if processed_for_pass ~pass filters r then
        Option.map (fun s -> (r.Compile.size_category, s)) (region_speedup ~pass r)
      else None)
    regions

let table3 ~pass filters report =
  let benchmarks = sensitive_benchmarks report in
  let regions = instance_regions report benchmarks in
  List.map
    (fun category ->
      let in_cat =
        List.filter (fun (r : Compile.region_report) -> r.Compile.size_category = category) regions
      in
      let processed = List.filter (processed_for_pass ~pass filters) in_cat in
      let ratios = List.filter_map (region_speedup ~pass) processed in
      match ratios with
      | [] ->
          {
            category;
            processed = List.length processed;
            comparable = 0;
            geomean = 0.0;
            max_speedup = 0.0;
            min_speedup = 0.0;
          }
      | _ :: _ ->
          let lo, hi = Support.Stats.min_max ratios in
          {
            category;
            processed = List.length processed;
            comparable = List.length ratios;
            geomean = Support.Stats.geomean ratios;
            max_speedup = hi;
            min_speedup = lo;
          })
    [ 0; 1; 2 ]

type fig4 = {
  rows : (string * float) list;
  geomean_improvement_pct : float;
  improved_ge_5pct : int;
  improved_ge_10pct : int;
  max_regression_pct : float;
}

let fig4 filters report =
  let benchmarks = sensitive_benchmarks report in
  let all =
    List.map
      (fun (b : Workload.Suite.benchmark) ->
        (b.Workload.Suite.bench_name, Perf_model.speedup_pct filters report b))
      benchmarks
  in
  let significant =
    List.filter (fun (_, pct) -> Float.abs pct >= 1.0) all
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let improvements = List.filter (fun (_, pct) -> pct >= 1.0) significant in
  let geo =
    match improvements with
    | [] -> 0.0
    | _ :: _ ->
        (Support.Stats.geomean (List.map (fun (_, pct) -> 1.0 +. (pct /. 100.0)) improvements)
        -. 1.0)
        *. 100.0
  in
  let max_reg =
    List.fold_left (fun acc (_, pct) -> Float.max acc (-.pct)) 0.0 all
  in
  {
    rows = significant;
    geomean_improvement_pct = geo;
    improved_ge_5pct = List.length (List.filter (fun (_, p) -> p >= 5.0) all);
    improved_ge_10pct = List.length (List.filter (fun (_, p) -> p >= 10.0) all);
    max_regression_pct = max_reg;
  }

type table7_row = {
  threshold : int;
  imps_ge_3 : int;
  imps_ge_5 : int;
  imps_ge_10 : int;
  regs_ge_3 : int;
  regs_ge_5 : int;
  regs_ge_10 : int;
  max_regression : float;
}

let table7 ~thresholds report =
  let benchmarks = sensitive_benchmarks report in
  List.map
    (fun threshold ->
      let filters = { Filters.default with Filters.cycle_threshold = threshold } in
      let pcts = List.map (Perf_model.speedup_pct filters report) benchmarks in
      let count p = List.length (List.filter p pcts) in
      {
        threshold;
        imps_ge_3 = count (fun x -> x >= 3.0);
        imps_ge_5 = count (fun x -> x >= 5.0);
        imps_ge_10 = count (fun x -> x >= 10.0);
        regs_ge_3 = count (fun x -> x <= -3.0);
        regs_ge_5 = count (fun x -> x <= -5.0);
        regs_ge_10 = count (fun x -> x <= -10.0);
        max_regression = List.fold_left (fun acc x -> Float.max acc (-.x)) 0.0 pcts;
      })
    thresholds

type degradation_row = {
  d_backend : string;
  d_category : int;
  d_tally : Robust.tally;
  d_faults : Gpusim.Faults.counts;
}

(* The ledger is about the compile itself, so it aggregates over compiled
   kernels (each compiled once), not per-benchmark instances. *)
let compiled_regions (report : Compile.suite_report) =
  List.concat_map (fun (kr : Compile.kernel_report) -> kr.Compile.regions) report.Compile.kernels

(* Backends in first-encounter order over the compiled regions, so the
   dispatch's product backends lead and ride-along baselines follow. *)
let degradation_backends (report : Compile.suite_report) =
  List.fold_left
    (fun acc (r : Compile.region_report) ->
      List.fold_left
        (fun acc (run : Compile.backend_run) ->
          if List.mem run.Compile.backend acc then acc else acc @ [ run.Compile.backend ])
        acc r.Compile.runs)
    [] (compiled_regions report)

(* Each backend is attributed its own run's ledger entry: a region where
   the parallel backend degraded but the sequential baseline finished
   clean tallies under "par" only. *)
let degradation_row_of ~backend regions cat =
  let runs =
    List.filter_map (fun (r : Compile.region_report) -> Compile.find_run r backend) regions
  in
  {
    d_backend = backend;
    d_category = cat;
    d_tally =
      Robust.tally_of_list
        (List.map (fun (run : Compile.backend_run) -> run.Compile.run_degradation) runs);
    d_faults =
      List.fold_left
        (fun acc (run : Compile.backend_run) ->
          Gpusim.Faults.add acc run.Compile.run_fault_counts)
        Gpusim.Faults.zero runs;
  }

let degradation_table report =
  let regions = compiled_regions report in
  List.concat_map
    (fun backend ->
      List.map
        (fun cat ->
          degradation_row_of ~backend
            (List.filter
               (fun (r : Compile.region_report) -> r.Compile.size_category = cat)
               regions)
            cat)
        [ 0; 1; 2 ])
    (degradation_backends report)

let degradation_total report =
  let regions = compiled_regions report in
  List.map
    (fun backend -> degradation_row_of ~backend regions (-1))
    (degradation_backends report)

type perf_row = {
  p_category : int;
  p_regions : int;
  p_lockstep_steps : int;
  p_ant_steps : int;
  p_selections : int;
  p_scored_candidates : int;
  p_pruned_candidates : int;
  p_minor_words : float;
  p_words_per_ant_step : float;
}

(* Allocation-discipline counters of the parallel driver, both passes
   summed: how many construction steps the colonies executed and how
   much OCaml minor-heap allocation they cost. The arena refactor's
   budget is minor words per ant step. *)
let perf_row_of regions cat =
  let add f =
    List.fold_left
      (fun acc (r : Compile.region_report) ->
        acc + f (Compile.par_pass1 r) + f (Compile.par_pass2 r))
      0 regions
  in
  let addf f =
    List.fold_left
      (fun acc (r : Compile.region_report) ->
        acc +. f (Compile.par_pass1 r) +. f (Compile.par_pass2 r))
      0.0 regions
  in
  let steps = add (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.ant_steps) in
  let words = addf (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.minor_words) in
  {
    p_category = cat;
    p_regions = List.length regions;
    p_lockstep_steps =
      add (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.lockstep_steps);
    p_ant_steps = steps;
    p_selections = add (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.selections);
    p_scored_candidates =
      add (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.scored_candidates);
    p_pruned_candidates =
      add (fun (p : Gpusim.Par_aco.pass_stats) -> p.Gpusim.Par_aco.pruned_candidates);
    p_minor_words = words;
    p_words_per_ant_step = (if steps = 0 then 0.0 else words /. float_of_int steps);
  }

let perf_table report =
  let regions = compiled_regions report in
  List.map
    (fun cat ->
      perf_row_of
        (List.filter (fun (r : Compile.region_report) -> r.Compile.size_category = cat) regions)
        cat)
    [ 0; 1; 2 ]

let perf_total report = perf_row_of (compiled_regions report) (-1)

(* --- convergence telemetry ---------------------------------------------- *)

type convergence_row = {
  c_region : string;
  c_backend : string;
  c_pass : string;
  c_iterations : int;
  c_retries : int;
  c_initial : int;
  c_final : int;
  c_first_improvement : int;
  c_series : int array;
}

let convergence_row ~region ~backend ~pass ~retries (series : int array) =
  let len = Array.length series in
  if len = 0 then None
  else begin
    let first = ref 0 in
    (try
       for k = 1 to len - 1 do
         if series.(k) < series.(0) then begin
           first := k;
           raise Exit
         end
       done
     with Exit -> ());
    Some
      {
        c_region = region;
        c_backend = backend;
        c_pass = pass;
        c_iterations = len - 1;
        c_retries = retries;
        c_initial = series.(0);
        c_final = series.(len - 1);
        c_first_improvement = !first;
        c_series = series;
      }
  end

let convergence_rows_of_region (r : Compile.region_report) =
  let name = r.Compile.region_name in
  List.concat_map
    (fun (run : Compile.backend_run) ->
      let of_pass pass (p : Engine.Types.pass_stats) =
        convergence_row ~region:name ~backend:run.Compile.backend ~pass
          ~retries:p.Engine.Types.retries p.Engine.Types.best_costs
      in
      List.filter_map Fun.id
        [
          of_pass "pass1" run.Compile.result.Engine.Types.pass1;
          of_pass "pass2" run.Compile.result.Engine.Types.pass2;
        ])
    r.Compile.runs

let convergence_table report =
  List.concat_map convergence_rows_of_region (compiled_regions report)

(* Compact rendering of a cost series: distinct plateaus joined by ">",
   each as cost(xrepeat), so "33>31(x2)>30(x5)" reads as one improvement
   at iteration 1 and another at 3 that held for the last five. *)
let series_to_string (series : int array) =
  let buf = Buffer.create 64 in
  let n = Array.length series in
  let i = ref 0 in
  while !i < n do
    let v = series.(!i) in
    let j = ref !i in
    while !j + 1 < n && series.(!j + 1) = v do
      incr j
    done;
    if !i > 0 then Buffer.add_char buf '>';
    Buffer.add_string buf (string_of_int v);
    let run = !j - !i + 1 in
    if run > 1 then Buffer.add_string buf (Printf.sprintf "(x%d)" run);
    i := !j + 1
  done;
  Buffer.contents buf

let render_convergence rows =
  let improvement r =
    if r.c_initial = 0 then 0.0
    else float_of_int (r.c_initial - r.c_final) /. float_of_int r.c_initial *. 100.0
  in
  Support.Tablefmt.render ~title:"Convergence (best cost per iteration)"
    ~header:
      [ "region"; "backend"; "pass"; "iters"; "retries"; "initial"; "final"; "gain";
        "first imp"; "series" ]
    ~aligns:
      Support.Tablefmt.[ Left; Left; Left; Right; Right; Right; Right; Right; Right; Left ]
    (List.map
       (fun r ->
         [
           r.c_region;
           r.c_backend;
           r.c_pass;
           string_of_int r.c_iterations;
           string_of_int r.c_retries;
           string_of_int r.c_initial;
           string_of_int r.c_final;
           Support.Tablefmt.pctf (improvement r);
           (if r.c_first_improvement = 0 then "-" else string_of_int r.c_first_improvement);
           series_to_string r.c_series;
         ])
       rows)

let convergence_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "region,backend,pass,iteration,best_cost\n";
  List.iter
    (fun r ->
      Array.iteri
        (fun k v ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%s,%d,%d\n" r.c_region r.c_backend r.c_pass k v))
        r.c_series)
    rows;
  Buffer.contents buf
