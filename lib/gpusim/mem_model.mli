(** Memory cost model: coalescing, allocation and transfer
    (Section V-A).

    Per-ant data lives in 2D arrays, one column per thread. With the
    coalesced (SoA) layout the 64 lanes of a wavefront touching their
    k-th entries hit consecutive addresses, so a step costs one
    transaction per *entry depth* reached — the maximum entry count over
    the lanes. With the naive (AoS / row-per-thread) layout each lane's
    entries are strided apart and every access is its own transaction —
    the sum over lanes. This asymmetry is the source of the large
    improvements of Table 4.a.

    Allocation and transfer: in batched mode all structures are
    consolidated into one allocation and one copy per direction; in
    unbatched mode every structure of every thread costs a separate
    driver call. The ready-list upper bound from the transitive closure
    ([tight_ready_ub]) shrinks the dominant per-thread array. *)

val step_transactions : Config.t -> reads_per_lane:int list -> int
(** Transactions charged for one lockstep step given each active lane's
    access count. *)

val step_transactions_acc : Config.t -> active:int -> reads_max:int -> reads_sum:int -> int
(** Accumulator form of {!step_transactions} for the allocation-free
    lockstep loop: [active] is the number of lanes that stepped,
    [reads_max]/[reads_sum] the maximum and sum of their access counts.
    Equal to [step_transactions] on the corresponding list. *)

val words_per_thread : Config.t -> n:int -> ready_ub:int -> int
(** Device words of per-thread state: schedule slots, ready array, RP
    tracker state. [ready_ub] is used when [tight_ready_ub] is on,
    otherwise [n]. *)

val setup_time_ns : Config.t -> n:int -> ready_ub:int -> float
(** Allocation + host-to-device copy time for one ACO invocation
    (kernel launch overhead excluded — see
    {!Kernel_sim}). *)

val teardown_time_ns : Config.t -> n:int -> float
(** Device-to-host copy of the winning schedule + frees. *)

val spill_model : Config.t -> Sched.Objective.spill_model
(** Spill pricing for {!Sched.Objective.Spill}, derived from the machine
    configuration: allowances are the per-class pressure limits at 80%
    of the target's wave limit, a spilled VGPR charges a store+reload
    round trip in GPU op cycles, and SGPR spills cost half that (scalar
    memory path). *)
