type config = {
  occ : Machine.Occupancy.t;
  gpu : Gpusim.Config.t;
  params : Aco.Params.t;
  filters : Filters.config;
  robust : Robust.config;
  dispatch : Engine.Dispatch.policy;
  seq_seed : int;
  par_seed : int;
  run_sequential : bool;
}

(* The product backends ship with the pipeline; anything else (bench
   probes, test stubs) registers itself before compiling. Idempotent, so
   calling it once per region is free. The spill-aware MMAS variant
   prices excess pressure with the bench machine's memory model — the
   same configuration the GPU-model backend simulates. *)
let ensure_backends () =
  Aco.Seq_aco.register ();
  Gpusim.Par_aco.register ();
  Aco.Weighted_aco.register ();
  Engine.Registry.register Aco.Seq_aco.prune_backend;
  Engine.Registry.register Aco.Seq_aco.mmas_backend;
  Engine.Registry.register
    (Aco.Seq_aco.mmas_spill_backend (Gpusim.Mem_model.spill_model Gpusim.Config.bench))

let make_config ?(gpu = Gpusim.Config.bench) ?(filters = Filters.default)
    ?(robust = Robust.default) ?fault_rate ?fault_seed ?compile_budget_ms ?max_retries
    ?(dispatch = Engine.Dispatch.default) () =
  let params =
    {
      Aco.Params.default with
      Aco.Params.ants_per_iteration = Gpusim.Config.threads gpu;
      (* Run the ILP pass ungated; Report applies [filters.cycle_threshold]
         by synthesis. *)
      pass2_cycle_threshold = 1;
    }
  in
  let gpu =
    match fault_rate with
    | Some rate ->
        Gpusim.Config.with_faults ?seed:fault_seed gpu (Gpusim.Config.uniform_faults rate)
    | None -> (
        match fault_seed with
        | Some seed -> { gpu with Gpusim.Config.fault_seed = seed }
        | None -> gpu)
  in
  let robust =
    match compile_budget_ms with
    | Some ms -> { robust with Robust.compile_budget_ns = Robust.budgets_of_ms ms }
    | None -> robust
  in
  let robust =
    match max_retries with
    | Some k -> { robust with Robust.max_retries = max 0 k }
    | None -> robust
  in
  {
    occ = Machine.Occupancy.default;
    gpu;
    params;
    filters;
    robust;
    dispatch;
    seq_seed = 101;
    par_seed = 202;
    run_sequential = true;
  }

type backend_run = {
  backend : string;
  caps : Engine.Types.caps;
  result : Engine.Types.result;
  run_pass1_time_ns : float;
  run_pass2_time_ns : float;
  run_degradation : Robust.degradation;
  run_retries : int;
  run_fault_counts : Engine.Types.fault_counts;
}

type region_report = {
  region_name : string;
  n : int;
  size_category : int;
  length_lb : int;
  heuristic_cost : Sched.Cost.t;
  heuristic_order : int array;
  cp_cost : Sched.Cost.t;
  pass1_invoked : bool;
  pass2_invoked : bool;
  pass2_gap : int;
  aco_cost : Sched.Cost.t;
  aco_order : int array;
  pass1_only_cost : Sched.Cost.t;
  pass1_only_order : int array;
  product_backend : string;
  runs : backend_run list;
  degradation : Robust.degradation;
  retries : int;
  fault_counts : Gpusim.Faults.counts;
}

type kernel_report = { kernel : Workload.Suite.kernel; regions : region_report list }

type suite_report = {
  suite : Workload.Suite.t;
  compile_config : config;
  kernels : kernel_report list;
}

(* --- per-backend compat accessors --------------------------------------- *)

let find_run r name = List.find_opt (fun run -> String.equal run.backend name) r.runs

let product_run r =
  match find_run r r.product_backend with
  | Some run -> run
  | None -> invalid_arg "Compile.product_run: report lost its product run"

let seq_pass1 r = Option.map (fun run -> run.result.Engine.Types.pass1) (find_run r "seq")
let seq_pass2 r = Option.map (fun run -> run.result.Engine.Types.pass2) (find_run r "seq")

let par_pass1 r =
  match find_run r "par" with
  | Some run -> run.result.Engine.Types.pass1
  | None -> Engine.Types.no_pass

let par_pass2 r =
  match find_run r "par" with
  | Some run -> run.result.Engine.Types.pass2
  | None -> Engine.Types.no_pass

let run_time_ns ~pass r name =
  match find_run r name with
  | Some run -> ( match pass with `One -> run.run_pass1_time_ns | `Two -> run.run_pass2_time_ns)
  | None -> 0.0

let seq_pass1_time_ns r = run_time_ns ~pass:`One r "seq"
let seq_pass2_time_ns r = run_time_ns ~pass:`Two r "seq"
let par_pass1_time_ns r = run_time_ns ~pass:`One r "par"
let par_pass2_time_ns r = run_time_ns ~pass:`Two r "par"

(* Worst-case product: the AMD heuristic schedule dressed up as an ACO
   result. This is what the driver ships when a backend itself trapped —
   the schedule is valid by construction, so compilation always
   completes. *)
let heuristic_fallback (setup : Aco.Setup.t) : Engine.Types.result =
  {
    Engine.Types.schedule = setup.Aco.Setup.amd_schedule;
    cost = setup.Aco.Setup.amd_cost;
    heuristic_schedule = setup.Aco.Setup.amd_schedule;
    heuristic_cost = setup.Aco.Setup.amd_cost;
    rp_target = setup.Aco.Setup.amd_cost.Sched.Cost.rp;
    pass2_initial = setup.Aco.Setup.amd_schedule;
    pass1 = Engine.Types.no_pass;
    pass2 = Engine.Types.no_pass;
  }

(* Compile one region with one backend: resolve it, pick its budget
   currency from its capabilities, trap exceptions into the heuristic
   fallback, guard the emitted schedule, and classify the run's ledger
   entry. Returns the run and whether the backend trapped. *)
let run_backend ?(trace = Obs.Trace.null) ?(metrics = Obs.Metrics.null) config ~name
    ~budget_ns (rc : Engine.Region_ctx.t) bname =
  let setup = rc.Engine.Region_ctx.setup in
  let backend = Engine.Registry.find_exn bname in
  let caps = Engine.Backend.caps backend in
  let budget =
    if caps.Engine.Types.time_model then
      if budget_ns = infinity then Engine.Types.Unlimited else Engine.Types.Time_ns budget_ns
    else
      let w = Robust.budget_work_of_ns config.gpu budget_ns in
      if w = max_int then Engine.Types.Unlimited else Engine.Types.Work w
  in
  let ctx =
    {
      Engine.Backend.params = config.params;
      seed =
        (* The CPU two-pass colonies (seq and the MMAS variants) share
           the sequential seed so policy comparisons start from the same
           stream; everything else keeps the parallel seed. *)
        (match bname with
        | "seq" | "mmas" | "mmas-spill" -> config.seq_seed
        | _ -> config.par_seed);
      budget;
      trace = (if caps.Engine.Types.trace then trace else Obs.Trace.null);
      metrics;
      label = name ^ "." ^ bname ^ ".";
      ext =
        [
          Gpusim.Par_aco.Gpu_config config.gpu;
          Gpusim.Par_aco.Watchdog
            {
              iteration_deadline_ns = config.robust.Robust.iteration_deadline_ns;
              max_retries = config.robust.Robust.max_retries;
            };
        ];
    }
  in
  let result, trapped =
    match Engine.Two_pass.run backend ctx rc with
    | r -> (r, false)
    | exception _ -> (heuristic_fallback setup, true)
  in
  (* Last line of defence: whatever the backend went through above, the
     run emits a schedule that validates. *)
  let guarded_schedule, guard_fired =
    Sched.Schedule.guard result.Engine.Types.schedule ~latency_aware:true
      ~fallback:setup.Aco.Setup.amd_schedule
  in
  let result =
    if guard_fired then
      { result with Engine.Types.schedule = guarded_schedule; cost = setup.Aco.Setup.amd_cost }
    else result
  in
  let pass1 = result.Engine.Types.pass1 and pass2 = result.Engine.Types.pass2 in
  let retries = pass1.Engine.Types.retries + pass2.Engine.Types.retries in
  let degradation =
    Robust.classify
      ~fell_back:(trapped || guard_fired)
      ~aborted_faults:(pass1.Engine.Types.aborted_faults || pass2.Engine.Types.aborted_faults)
      ~aborted_budget:(pass1.Engine.Types.aborted_budget || pass2.Engine.Types.aborted_budget)
      ~retries
  in
  let time_of (stats : Engine.Types.pass_stats) =
    if caps.Engine.Types.time_model then stats.Engine.Types.time_ns
    else Gpusim.Cpu_model.pass_time_ns config.gpu ~work:stats.Engine.Types.work
  in
  ( {
      backend = bname;
      caps;
      result;
      run_pass1_time_ns = time_of pass1;
      run_pass2_time_ns = time_of pass2;
      run_degradation = degradation;
      run_retries = retries;
      run_fault_counts =
        Engine.Types.fault_counts_add pass1.Engine.Types.fault_counts
          pass2.Engine.Types.fault_counts;
    },
    trapped )

(* Portfolio selection: best RP (occupancy first) then shortest length;
   the earlier candidate wins ties, so a single-backend dispatch is the
   identity. *)
let pick_product = function
  | [] -> invalid_arg "Compile.run_region: dispatch produced no backends"
  | first :: rest ->
      List.fold_left
        (fun acc run ->
          if
            Sched.Cost.better_rp_then_length run.result.Engine.Types.cost
              acc.result.Engine.Types.cost
          then run
          else acc)
        first rest

let run_region ?(trace = Obs.Trace.null) ?(metrics = Obs.Metrics.null)
    ?(log = Obs.Log.null) ?ctx ?budget_ns config ~name region =
  ensure_backends ();
  (* The analysis context is computed here exactly once (or arrives
     precomputed from the executor's cache); every backend the dispatch
     races consumes it instead of re-deriving region analyses. *)
  let rc =
    match ctx with
    | Some rc -> rc
    | None -> Engine.Region_ctx.of_region config.occ region
  in
  let setup = rc.Engine.Region_ctx.setup in
  let graph = setup.Aco.Setup.graph in
  let n = graph.Ddg.Graph.n in
  let budget_ns =
    match budget_ns with Some b -> b | None -> Robust.budget_for config.robust ~n
  in
  let region_t0 = Obs.Trace.now trace in
  let candidates = Engine.Dispatch.candidates config.dispatch ~n in
  let runs =
    List.map
      (fun bname -> fst (run_backend ~trace ~metrics config ~name ~budget_ns rc bname))
      candidates
  in
  let product = pick_product runs in
  (* The pass-level set_now calls left the trace clock at the end of the
     traced backends' compiles, so the region span covers their passes. *)
  if Obs.Trace.enabled trace then
    Obs.Trace.span_arg trace ~track:0 ~name:("region " ^ name) ~ts:region_t0
      ~dur:(Obs.Trace.now trace -. region_t0)
      ~key:"n"
      ~value:(float_of_int graph.Ddg.Graph.n);
  if Obs.Log.enabled log then begin
    (* One entry per raced candidate (the backend passes the request id
       threads down to), then the region verdict. *)
    List.iter2
      (fun bname (run : backend_run) ->
        Obs.Log.debug log "compile.backend"
          [
            ("region", Obs.Log.Str name);
            ("backend", Obs.Log.Str bname);
            ("rung", Obs.Log.Str (Robust.degradation_label run.run_degradation));
            ("pass1_ns", Obs.Log.Float run.run_pass1_time_ns);
            ("pass2_ns", Obs.Log.Float run.run_pass2_time_ns);
            ("length", Obs.Log.Int run.result.Engine.Types.cost.Sched.Cost.length);
          ])
      candidates runs;
    Obs.Log.info log "compile.region"
      [
        ("region", Obs.Log.Str name);
        ("n", Obs.Log.Int n);
        ("backend", Obs.Log.Str product.backend);
        ("rung", Obs.Log.Str (Robust.degradation_label product.run_degradation));
        ("length", Obs.Log.Int product.result.Engine.Types.cost.Sched.Cost.length);
        ("length_lb", Obs.Log.Int setup.Aco.Setup.length_lb);
      ]
  end;
  Robust.observe ~log trace metrics ~region:name product.run_degradation;
  (* The CPU timing baseline of Tables 3.a/3.b rides along unless the
     dispatch already ran it as a product candidate. A baseline that
     traps is dropped (the product does not depend on it). *)
  let runs =
    if config.run_sequential && not (List.mem "seq" candidates) then
      match run_backend ~metrics config ~name ~budget_ns rc "seq" with
      | run, false ->
          (* The baseline must start from the same shared context as the
             product candidates — identical heuristic schedule, identical
             lower bounds — or the Tables 3.a/3.b comparison is not
             apples-to-apples. The context hand-off makes this structural;
             the assert keeps it that way. *)
          assert (run.result.Engine.Types.heuristic_cost = setup.Aco.Setup.amd_cost);
          runs @ [ run ]
      | _, true -> runs
      | exception _ -> runs
    else runs
  in
  let presult = product.result in
  let pass2_initial_cost =
    Sched.Cost.of_schedule config.occ presult.Engine.Types.pass2_initial
  in
  {
    region_name = name;
    n = Ir.Region.size region;
    size_category = Aco.Params.size_category (Ir.Region.size region);
    length_lb = setup.Aco.Setup.length_lb;
    heuristic_cost = setup.Aco.Setup.amd_cost;
    heuristic_order = Sched.Schedule.order setup.Aco.Setup.amd_schedule;
    cp_cost = rc.Engine.Region_ctx.cp_cost;
    pass1_invoked = presult.Engine.Types.pass1.Engine.Types.invoked;
    pass2_invoked = presult.Engine.Types.pass2.Engine.Types.invoked;
    pass2_gap = setup.Aco.Setup.amd_cost.Sched.Cost.length - setup.Aco.Setup.length_lb;
    aco_cost = presult.Engine.Types.cost;
    aco_order = Sched.Schedule.order presult.Engine.Types.schedule;
    pass1_only_cost = pass2_initial_cost;
    pass1_only_order = Sched.Schedule.order presult.Engine.Types.pass2_initial;
    product_backend = product.backend;
    runs;
    degradation = product.run_degradation;
    retries = product.run_retries;
    fault_counts = product.run_fault_counts;
  }

let run_suite ?(progress = fun _ -> ()) ?(trace = Obs.Trace.null)
    ?(metrics = Obs.Metrics.null) ?(log = Obs.Log.null) ?cache config
    (suite : Workload.Suite.t) =
  let ctx_of region =
    Option.map (fun cache -> Analysis.get cache config.occ region) cache
  in
  let kernels =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        progress k.Workload.Suite.kernel_name;
        let regions =
          List.mapi
            (fun i region ->
              let name = Printf.sprintf "%s/r%d" k.Workload.Suite.kernel_name i in
              run_region ~trace ~metrics ~log ?ctx:(ctx_of region) config ~name region)
            k.Workload.Suite.regions
        in
        { kernel = k; regions })
      suite.Workload.Suite.kernels
  in
  { suite; compile_config = config; kernels }

(* [hot_index] comes from workload metadata; an out-of-range index must
   not crash the reporting path, so clamp it into the region list. *)
let hot_region (kr : kernel_report) =
  match kr.regions with
  | [] -> invalid_arg "Compile.hot_region: kernel has no regions"
  | regions ->
      let i = kr.kernel.Workload.Suite.hot_index in
      List.nth regions (max 0 (min (List.length regions - 1) i))

let find_kernel (report : suite_report) (b : Workload.Suite.benchmark) =
  List.find
    (fun (kr : kernel_report) ->
      String.equal kr.kernel.Workload.Suite.kernel_name
        b.Workload.Suite.kernel.Workload.Suite.kernel_name)
    report.kernels
