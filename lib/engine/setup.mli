(** Shared preparation for the two-pass search, used by every engine
    backend (the sequential driver [Aco.Seq_aco], the GPU-parallel
    driver [Gpusim.Par_aco], and anything else in [Registry]).

    Mirrors the compile flow of Section VI-A: the region is first
    scheduled by the AMD heuristic; lower bounds decide whether each ACO
    pass is worth invoking; pass 2 receives the best pass-1 RP as its
    target and the latency-padded pass-1 winner as its initial
    schedule. *)

type t = {
  graph : Ddg.Graph.t;
  occ : Machine.Occupancy.t;
  amd_schedule : Sched.Schedule.t;
  amd_cost : Sched.Cost.t;
  pass1_initial_order : int array;
      (** better (by RP) of the AMD order and the Last-Use-Count order *)
  pass1_initial_rp : Sched.Cost.rp;
  rp_lb : Sched.Cost.rp;  (** lower bound on any schedule's RP cost *)
  length_lb : int;  (** lower bound on any schedule's length *)
  pass1_needed : bool;  (** initial RP is above the bound *)
}

val prepare : Machine.Occupancy.t -> Ddg.Graph.t -> t

val rp_of_order : Machine.Occupancy.t -> Ddg.Graph.t -> int array -> Sched.Cost.rp
(** RP cost of an instruction order (stalls never change liveness, so an
    order determines the RP cost of every schedule with that order). *)

val targets_of_rp : Sched.Cost.rp -> int * int
(** Per-class APRP ceilings [(vgpr, sgpr)] that pass-2 ants must not
    exceed. *)

val pass2_initial : t -> best_pass1_order:int array -> Sched.Schedule.t
(** Latency-pad the pass-1 winner — the input schedule of pass 2. *)
