(** Deterministic, seeded fault injection for the simulated GPU.

    Stochastic GPU search must tolerate stragglers and corrupted colony
    state (Skinderowicz's GPU MAX-MIN Ant System makes the same point for
    parallel ACO at large); this module models the four fault classes the
    robust driver defends against:

    - {b transient lane faults} — a bit flip corrupts an ant's
      next-instruction choice; the lane's candidate schedule can no
      longer be trusted and is quarantined for the iteration;
    - {b wavefront hangs} — a whole wavefront stops making progress and
      is recovered by the watchdog after a fixed detection penalty;
    - {b dropped reduction messages} — the tree reduction's winner
      message is lost, so the iteration yields no winner;
    - {b memory-transaction errors} — a transaction fails and the step's
      transactions are replayed, costing extra simulated time.

    The injector draws from its own RNG stream, seeded independently of
    every ant ({!Config.t.fault_seed}); faults are replayable from the
    seed, and zero-rate classes consume no randomness at all, so a
    configuration with {!Config.no_faults} is byte-identical to one
    without the fault model. *)

type counts = Engine.Types.fault_counts = {
  lane_faults : int;
  wavefront_hangs : int;
  reduction_drops : int;
  mem_faults : int;
}
(** Equal to the engine's {!Engine.Types.fault_counts}, so every
    backend's pass stats carry the same tally type. *)

val zero : counts
val add : counts -> counts -> counts
val sub : counts -> counts -> counts
val total : counts -> int
val counts_to_string : counts -> string

type t
(** Injector state: rates, private RNG, tallies of injected faults. *)

val create : ?seed:int -> Config.fault_rates -> t

val disabled : t
(** Shared zero-rate injector: never fires, never draws, never counts. *)

val enabled : t -> bool

val counts : t -> counts
(** Faults injected so far (monotone; snapshot-and-{!sub} for per-pass
    tallies). *)

val lane_fault : t -> bool
(** One per-lane per-iteration trial; [true] means this lane takes a
    transient fault this iteration. Counted when fired. *)

val wavefront_hang : t -> bool
val reduction_drop : t -> bool
val mem_fault : t -> bool

val pick : t -> int -> int
(** Uniform draw in [\[0, bound)] from the injector's stream (used to
    place a lane fault at a random construction step). *)

val hang_penalty_ns : float
(** Simulated time charged for a hung wavefront: one watchdog polling
    interval between the hang and its recovery. *)

val retry_backoff_ns : float
(** Base of the exponential backoff charged to simulated time when a
    faulted iteration is retried with a reseeded RNG. *)
