(* Fault drill: compile one region under an escalating fault storm and
   watch the degradation ledger step down — Clean while the colony
   absorbs quarantined lanes, Retried once whole iterations start
   failing, and Faulted_fallback when the retry allowance is exhausted
   and the driver ships its best-so-far (or the AMD heuristic).

   The schedule column demonstrates the driver's contract: every row,
   whatever the fault rate, emits a schedule that validates.

   Run with: dune exec examples/fault_drill.exe *)

let () =
  let rng = Support.Rng.create 7 in
  let region = Workload.Shapes.matmul_tile rng ~m:16 ~k:4 in
  let base = Pipeline.Compile.make_config () in
  Printf.printf "region: %d instructions\n\n" (Ir.Region.size region);
  Printf.printf "%-11s %-12s %8s %8s %-16s %s\n" "fault rate" "ledger" "retries" "faults"
    "cost (occ/len)" "valid";
  List.iter
    (fun rate ->
      let config =
        {
          base with
          Pipeline.Compile.gpu =
            Gpusim.Config.with_faults base.Pipeline.Compile.gpu
              (Gpusim.Config.uniform_faults rate);
          run_sequential = false;
        }
      in
      let r = Pipeline.Compile.run_region config ~name:"drill" region in
      let schedule_ok =
        (* Reconstruct the emitted order and re-validate it end to end. *)
        match
          Sched.Schedule.of_slots
            (Ddg.Graph.build region)
            ~latency_aware:false
            (Array.to_list
               (Array.map (fun i -> Sched.Schedule.Instr i) r.Pipeline.Compile.aco_order))
        with
        | Ok _ -> "yes"
        | Error _ -> "NO"
      in
      Printf.printf "%-11.2f %-12s %8d %8d %-16s %s\n" rate
        (Pipeline.Robust.degradation_label r.Pipeline.Compile.degradation)
        r.Pipeline.Compile.retries
        (Gpusim.Faults.total r.Pipeline.Compile.fault_counts)
        (Printf.sprintf "occ=%d len=%d"
           r.Pipeline.Compile.aco_cost.Sched.Cost.rp.Sched.Cost.occupancy
           r.Pipeline.Compile.aco_cost.Sched.Cost.length)
        schedule_ok)
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]
