(** Instructions: an opcode kind plus Def and Use register sets.

    The Def set is the registers an instruction writes and the Use set the
    registers it reads (Section II-A). The scheduler never looks at
    operand semantics beyond these sets and the latency. *)

type t = private {
  id : int;  (** index in the region's original program order *)
  name : string;
  kind : Opcode.kind;
  defs : Reg.t list;
  uses : Reg.t list;
  latency : int;
}

val make :
  id:int ->
  ?name:string ->
  ?latency:int ->
  kind:Opcode.kind ->
  defs:Reg.t list ->
  uses:Reg.t list ->
  unit ->
  t
(** [make ~id ~kind ~defs ~uses ()] builds an instruction; [latency]
    defaults to [Opcode.default_latency kind], [name] to the opcode
    mnemonic. Raises [Invalid_argument] on negative latency or duplicate
    registers within the Def set. *)

val with_id : t -> int -> t
(** Same instruction renumbered (used when regions are sliced). *)

val defs_of_cls : t -> Reg.cls -> Reg.t list
val uses_of_cls : t -> Reg.cls -> Reg.t list

val to_string : t -> string
(** E.g. ["%5: v_load v3 <- v1 v2"]. *)

val pp : Format.formatter -> t -> unit
