type t = {
  ints : int array;
  floats : float array;
  mutable int_used : int;
  mutable float_used : int;
}

let create ~ints ~floats =
  if ints < 0 || floats < 0 then invalid_arg "Arena.create: negative capacity";
  {
    ints = Array.make (max ints 1) 0;
    floats = Array.make (max floats 1) 0.0;
    int_used = 0;
    float_used = 0;
  }

let alloc_ints t n =
  if n < 0 then invalid_arg "Arena.alloc_ints: negative size";
  let base = t.int_used in
  if base + n > Array.length t.ints then invalid_arg "Arena.alloc_ints: capacity exceeded";
  t.int_used <- base + n;
  base

let alloc_floats t n =
  if n < 0 then invalid_arg "Arena.alloc_floats: negative size";
  let base = t.float_used in
  if base + n > Array.length t.floats then invalid_arg "Arena.alloc_floats: capacity exceeded";
  t.float_used <- base + n;
  base

let ints t = t.ints
let floats t = t.floats
let int_capacity t = Array.length t.ints
let float_capacity t = Array.length t.floats
let int_used t = t.int_used
let float_used t = t.float_used

let words t =
  (* One OCaml word per int; float arrays store unboxed doubles (one word
     each on 64-bit). Headers are ignored — this is a capacity stat, not
     a heap census. *)
  Array.length t.ints + Array.length t.floats
