type result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_cost : Sched.Cost.t;
  iterations : int;
  work : int;
}

let scalar occ ~rp_weight ~length ~peaks:(v, s) =
  length + (rp_weight * Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s))

let run ?(params = Params.default) ?(seed = 1) ?(rp_weight = 1) occ graph =
  let n = graph.Ddg.Graph.n in
  let rng = Support.Rng.create seed in
  let ants = Array.init params.Params.ants_per_iteration (fun _ -> Ant.create graph params) in
  let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
  let termination = Params.termination_condition n in
  (* Unconstrained ants: a target at the register-file size never
     breaches, so no ant dies and no optional stall is inserted. *)
  let mode = Ant.Ilp_pass { target_vgpr = 100000; target_sgpr = 100000 } in
  let amd = Sched.Amd_scheduler.run occ graph in
  let amd_cost = Sched.Cost.of_schedule occ amd in
  let cost_of schedule_len peaks = scalar occ ~rp_weight ~length:schedule_len ~peaks in
  let lb =
    scalar occ ~rp_weight ~length:(Ddg.Lower_bounds.schedule_length graph)
      ~peaks:
        ( Ddg.Lower_bounds.register_pressure graph Ir.Reg.Vgpr,
          Ddg.Lower_bounds.register_pressure graph Ir.Reg.Sgpr )
  in
  let best = ref amd in
  let best_cost =
    ref
      (cost_of (Sched.Schedule.length amd)
         (let p = Sched.Rp_tracker.naive_peaks graph (Sched.Schedule.order amd) in
          (p Ir.Reg.Vgpr, p Ir.Reg.Sgpr)))
  in
  Pheromone.deposit_path pheromone (Sched.Schedule.order amd)
    (params.Params.deposit /. float_of_int (1 + !best_cost));
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  while !best_cost > lb && !no_improve < termination && !iterations < params.Params.max_iterations do
    incr iterations;
    let iter_best_cost = ref max_int in
    let iter_best = ref None in
    Array.iter
      (fun ant ->
        Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:params.Params.heuristic
          ~allow_optional_stalls:false mode;
        Ant.run_to_completion ant ~pheromone;
        work := !work + Ant.work ant;
        if Ant.status ant = Ant.Finished then begin
          let c = cost_of (Ant.length ant) (Ant.rp_peaks ant) in
          if c < !iter_best_cost then begin
            iter_best_cost := c;
            iter_best := Some ant
          end
        end)
      ants;
    work := !work + (((n + 1) * n) / 8) + n;
    Pheromone.decay pheromone params.Params.decay;
    match !iter_best with
    | Some ant ->
        Pheromone.deposit_path pheromone (Ant.order ant)
          (params.Params.deposit /. float_of_int (1 + !iter_best_cost));
        if !iter_best_cost < !best_cost then begin
          best_cost := !iter_best_cost;
          (match Ant.schedule ant with Some s -> best := s | None -> ());
          no_improve := 0
        end
        else incr no_improve
    | None -> incr no_improve
  done;
  {
    schedule = !best;
    cost = Sched.Cost.of_schedule occ !best;
    heuristic_cost = amd_cost;
    iterations = !iterations;
    work = !work;
  }
