(* Metrics registry: named counters, gauges, histogram summaries and
   append-only series, with JSON and CSV export.

   Metrics are registered on first use; the registry keeps insertion
   order for stable export. The disabled registry [null] turns every
   operation into a branch on an immutable bool, so instrumentation
   sites guarded by [enabled] cost nothing when metrics are off. *)

type kind = Counter | Gauge | Histogram | Series

let kind_label = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Series -> "series"

(* Histogram bucket upper bounds: powers of 4 from 1 — a fixed
   log-scale ladder wide enough for nanosecond latencies (4^15 ≈ 1.07e9
   ns ≈ 1 s) with a +Inf overflow bucket at the end. Static bounds keep
   [observe] allocation-free and make shard merge an elementwise add. *)
let bucket_bounds =
  Array.init 16 (fun i -> Float.of_int (1 lsl (2 * i)))

let n_buckets = Array.length bucket_bounds + 1 (* + overflow *)

type metric = {
  m_name : string;
  m_kind : kind;
  mutable m_count : int;
  mutable m_sum : float;
  mutable m_min : float;
  mutable m_max : float;
  mutable m_last : float;
  mutable m_series : float array;
  mutable m_len : int;
  m_buckets : int array; (* per-bucket counts; [||] unless Histogram *)
}

type t = {
  on : bool;
  lock : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

let create () = { on = true; lock = Mutex.create (); tbl = Hashtbl.create 64; order = [] }
let null = { on = false; lock = Mutex.create (); tbl = Hashtbl.create 1; order = [] }
let[@inline] enabled t = t.on

(* Every mutation and registry read takes [t.lock], so one registry can
   be shared by the executor's domain workers. Write paths branch on
   [t.on] before locking, so the disabled registry stays a no-op that
   never touches the mutex. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t name kind =
  match Hashtbl.find_opt t.tbl name with
  | Some m ->
      if m.m_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_label m.m_kind)
             (kind_label kind));
      m
  | None ->
      let m =
        {
          m_name = name;
          m_kind = kind;
          m_count = 0;
          m_sum = 0.0;
          m_min = infinity;
          m_max = neg_infinity;
          m_last = 0.0;
          m_series = (if kind = Series then Array.make 16 0.0 else [||]);
          m_len = 0;
          m_buckets = (if kind = Histogram then Array.make n_buckets 0 else [||]);
        }
      in
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let update m v =
  m.m_count <- m.m_count + 1;
  m.m_sum <- m.m_sum +. v;
  if v < m.m_min then m.m_min <- v;
  if v > m.m_max then m.m_max <- v;
  m.m_last <- v

let add t name by =
  if t.on then
    locked t (fun () ->
        let m = find t name Counter in
        m.m_count <- m.m_count + 1;
        m.m_sum <- m.m_sum +. float_of_int by)

let incr t name = add t name 1

let set t name v = if t.on then locked t (fun () -> update (find t name Gauge) v)

let bucket_index v =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n then n else if v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe t name v =
  if t.on then
    locked t (fun () ->
        let m = find t name Histogram in
        update m v;
        let i = bucket_index v in
        m.m_buckets.(i) <- m.m_buckets.(i) + 1)

let push t name v =
  if t.on then
    locked t (fun () ->
        let m = find t name Series in
        if m.m_len = Array.length m.m_series then begin
          let grown = Array.make (2 * m.m_len) 0.0 in
          Array.blit m.m_series 0 grown 0 m.m_len;
          m.m_series <- grown
        end;
        m.m_series.(m.m_len) <- v;
        m.m_len <- m.m_len + 1;
        update m v)

(* Shard merge for the executor: each worker domain accumulates into a
   private registry (no contention), and the shards fold into the
   caller's registry at join — the only point that takes the
   destination's mutex. The source must be quiescent (its workers
   joined); only [into]'s lock is taken, so there is no lock-order
   hazard. Metrics registered in both keep [into]'s position; new names
   append in the source's registration order. *)
let merge_into src ~into =
  if src.on && into.on then
    locked into (fun () ->
        List.iter
          (fun name ->
            let sm = Hashtbl.find src.tbl name in
            let m = find into name sm.m_kind in
            match sm.m_kind with
            | Counter ->
                m.m_count <- m.m_count + sm.m_count;
                m.m_sum <- m.m_sum +. sm.m_sum
            | Gauge ->
                m.m_count <- m.m_count + sm.m_count;
                m.m_sum <- m.m_sum +. sm.m_sum;
                if sm.m_min < m.m_min then m.m_min <- sm.m_min;
                if sm.m_max > m.m_max then m.m_max <- sm.m_max;
                if sm.m_count > 0 then m.m_last <- sm.m_last
            | Histogram ->
                (* Commutative across shard join order: count/sum/min/max
                   and the bucket counts are symmetric folds, and [m_last]
                   — meaningless as "most recent" once shards join in
                   arbitrary order — is defined as the max over non-empty
                   shards' lasts. Before the split from the Gauge branch,
                   merged m_last depended on which worker joined last. *)
                let had = m.m_count > 0 in
                m.m_count <- m.m_count + sm.m_count;
                m.m_sum <- m.m_sum +. sm.m_sum;
                if sm.m_min < m.m_min then m.m_min <- sm.m_min;
                if sm.m_max > m.m_max then m.m_max <- sm.m_max;
                if sm.m_count > 0 then
                  m.m_last <- (if had then Float.max m.m_last sm.m_last else sm.m_last);
                Array.iteri
                  (fun i n -> m.m_buckets.(i) <- m.m_buckets.(i) + n)
                  sm.m_buckets
            | Series ->
                let need = m.m_len + sm.m_len in
                if need > Array.length m.m_series then begin
                  let grown = Array.make (max need (2 * max 1 m.m_len)) 0.0 in
                  Array.blit m.m_series 0 grown 0 m.m_len;
                  m.m_series <- grown
                end;
                Array.blit sm.m_series 0 m.m_series m.m_len sm.m_len;
                m.m_len <- need;
                for i = 0 to sm.m_len - 1 do
                  update m sm.m_series.(i)
                done)
          (List.rev src.order))

let names t = locked t (fun () -> List.rev t.order)

let get t name = locked t (fun () -> Hashtbl.find_opt t.tbl name)

let kind_of m = m.m_kind
let count m = m.m_count
let sum m = m.m_sum
let last m = m.m_last
let series m = Array.sub m.m_series 0 m.m_len

let value m =
  match m.m_kind with Counter -> m.m_sum | Gauge -> m.m_last | Histogram | Series -> m.m_sum

let mean m = if m.m_count = 0 then 0.0 else m.m_sum /. float_of_int m.m_count

let buckets m =
  if m.m_kind <> Histogram then [||]
  else begin
    let cum = ref 0 in
    Array.init n_buckets (fun i ->
        cum := !cum + m.m_buckets.(i);
        ( (if i < Array.length bucket_bounds then bucket_bounds.(i) else infinity),
          !cum ))
  end

(* Bucket-resolution quantile estimate: the upper bound of the first
   bucket whose cumulative count reaches q·count, clamped into
   [min, max]. Log-scale buckets give a conservative (rounded-up)
   answer good to a factor of 4 — enough for a live latency table. *)
let percentile m q =
  if m.m_kind <> Histogram || m.m_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int m.m_count))) in
    let n = Array.length bucket_bounds in
    let rec go i cum =
      if i >= n_buckets then m.m_max
      else
        let cum = cum + m.m_buckets.(i) in
        if cum >= target then
          if i >= n then m.m_max else Float.min bucket_bounds.(i) m.m_max
        else go (i + 1) cum
    in
    Float.max m.m_min (go 0 0)
  end

let fl v =
  if Float.is_nan v || Float.abs v = infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "metric,kind,index,value,count,sum,min,max,mean\n";
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      let vmin = if m.m_count = 0 then 0.0 else m.m_min in
      let vmax = if m.m_count = 0 then 0.0 else m.m_max in
      let summary =
        Printf.sprintf "%s,%s,,%s,%d,%s,%s,%s,%s\n" m.m_name (kind_label m.m_kind)
          (fl (value m)) m.m_count (fl m.m_sum) (fl vmin) (fl vmax) (fl (mean m))
      in
      Buffer.add_string buf summary;
      if m.m_kind = Series then
        for i = 0 to m.m_len - 1 do
          Buffer.add_string buf
            (Printf.sprintf "%s,point,%d,%s,,,,,\n" m.m_name i (fl m.m_series.(i)))
        done)
    (names t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  let first = ref true in
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\": {\"kind\": \"%s\", \"count\": %d, \"sum\": %s"
           (json_escape m.m_name) (kind_label m.m_kind) m.m_count (fl m.m_sum));
      if m.m_count > 0 then
        Buffer.add_string buf
          (Printf.sprintf ", \"min\": %s, \"max\": %s, \"mean\": %s, \"last\": %s" (fl m.m_min)
             (fl m.m_max) (fl (mean m)) (fl m.m_last));
      if m.m_kind = Series then begin
        Buffer.add_string buf ", \"values\": [";
        for i = 0 to m.m_len - 1 do
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (fl m.m_series.(i))
        done;
        Buffer.add_string buf "]"
      end;
      Buffer.add_string buf "}")
    (names t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* --- Prometheus text exposition ----------------------------------------- *)

(* Metric names mangle to [gpuaco_<name>] with every character outside
   [A-Za-z0-9_] replaced by '_'. The per-client admission counters
   ([serve.client.<c>.requests]) collapse into one family with the
   client as a label — client names arrive off the wire, so label
   values are escaped per the exposition format (backslash, quote,
   newline). Series metrics are omitted: a growing vector has no
   Prometheus sample shape; they stay in the CSV/JSON exports. *)

let prom_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "gpuaco_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [serve.client.<c>.requests] -> family + client label; everything
   else is its own unlabeled family. *)
let prom_family name =
  let pre = "serve.client." and suf = ".requests" in
  let lp = String.length pre and ls = String.length suf and ln = String.length name in
  if
    ln > lp + ls
    && String.equal (String.sub name 0 lp) pre
    && String.equal (String.sub name (ln - ls) ls) suf
  then ("gpuaco_serve_client_requests", Some ("client", String.sub name lp (ln - lp - ls)))
  else (prom_name name, None)

let prom_labels = function
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_escape v)) kvs)
      ^ "}"

let to_prometheus t =
  locked t (fun () ->
      (* Group samples by family, first-touch order, so all samples of
         one family are contiguous as the exposition format requires. *)
      let fams = Hashtbl.create 16 in
      let order = ref [] in
      let family fam ty =
        match Hashtbl.find_opt fams fam with
        | Some lines -> lines
        | None ->
            let lines = ref [ Printf.sprintf "# TYPE %s %s" fam ty ] in
            Hashtbl.add fams fam lines;
            order := fam :: !order;
            lines
      in
      List.iter
        (fun name ->
          let m = Hashtbl.find t.tbl name in
          let fam, client = prom_family m.m_name in
          let lbl extra =
            prom_labels ((match client with Some kv -> [ kv ] | None -> []) @ extra)
          in
          match m.m_kind with
          | Counter ->
              let lines = family fam "counter" in
              lines := Printf.sprintf "%s%s %s" fam (lbl []) (fl m.m_sum) :: !lines
          | Gauge ->
              let lines = family fam "gauge" in
              let v = if m.m_count = 0 then 0.0 else m.m_last in
              lines := Printf.sprintf "%s%s %s" fam (lbl []) (fl v) :: !lines
          | Histogram ->
              let lines = family fam "histogram" in
              let cum = ref 0 in
              Array.iteri
                (fun i n ->
                  cum := !cum + n;
                  let le =
                    if i < Array.length bucket_bounds then fl bucket_bounds.(i)
                    else "+Inf"
                  in
                  lines :=
                    Printf.sprintf "%s_bucket%s %d" fam (lbl [ ("le", le) ]) !cum
                    :: !lines)
                m.m_buckets;
              lines := Printf.sprintf "%s_sum%s %s" fam (lbl []) (fl m.m_sum) :: !lines;
              lines := Printf.sprintf "%s_count%s %d" fam (lbl []) m.m_count :: !lines
          | Series -> ())
        (List.rev t.order);
      let buf = Buffer.create 4096 in
      List.iter
        (fun fam ->
          List.iter
            (fun line ->
              Buffer.add_string buf line;
              Buffer.add_char buf '\n')
            (List.rev !(Hashtbl.find fams fam)))
        (List.rev !order);
      Buffer.contents buf)

let write_csv t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let write_json t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))
