(* Schedule-quality telemetry: distill each compiled region's report
   into one ledger record — how close the schedule came to the
   critical-path lower bound, whether register pressure met the
   occupancy target, and how fast the colony converged — appended as
   JSONL so a daemon can stream it and `gpuaco report` can summarize a
   corpus after the fact.

   The record is derived from the region report alone (no recompute):
   the gap is the product schedule's length over the region's
   dependence-height lower bound, the occupancy columns compare the
   achieved APRP-derived occupancy against the target the backend was
   aiming for, and iterations-to-best is the index where the product
   backend's best_costs convergence series first reached its final
   value — Skinderowicz's stagnation signal: a large iterations/
   iters_to_best ratio means the colony idled after converging. *)

type record = {
  q_region : string;
  q_n : int;
  q_backend : string;
  q_rung : string; (* degradation ladder label *)
  q_length : int;
  q_length_lb : int;
  q_gap : int; (* length - length_lb, >= 0 unless degraded *)
  q_occupancy : int;
  q_occ_target : int;
  q_aprp_vgpr : int;
  q_aprp_sgpr : int;
  q_iterations : int; (* both passes of the product run *)
  q_iters_to_best : int;
  q_improved : bool;
}

(* First index where the convergence series reaches its minimum — the
   series records best-so-far per iteration, so this is the iteration
   after which the colony stopped improving. *)
let iters_to_best series =
  let n = Array.length series in
  if n = 0 then 0
  else begin
    let best = ref series.(0) and at = ref 0 in
    for i = 1 to n - 1 do
      if series.(i) < !best then begin
        best := series.(i);
        at := i
      end
    done;
    !at
  end

let of_region (r : Compile.region_report) =
  let product = Compile.product_run r in
  let pres = product.Compile.result in
  let pass1 = pres.Engine.Types.pass1 and pass2 = pres.Engine.Types.pass2 in
  let series =
    if pass2.Engine.Types.invoked && Array.length pass2.Engine.Types.best_costs > 0 then
      pass2.Engine.Types.best_costs
    else pass1.Engine.Types.best_costs
  in
  let cost = r.Compile.aco_cost in
  let rp = cost.Sched.Cost.rp in
  {
    q_region = r.Compile.region_name;
    q_n = r.Compile.n;
    q_backend = r.Compile.product_backend;
    q_rung = Robust.degradation_label r.Compile.degradation;
    q_length = cost.Sched.Cost.length;
    q_length_lb = r.Compile.length_lb;
    q_gap = cost.Sched.Cost.length - r.Compile.length_lb;
    q_occupancy = rp.Sched.Cost.occupancy;
    q_occ_target = pres.Engine.Types.rp_target.Sched.Cost.occupancy;
    q_aprp_vgpr = rp.Sched.Cost.aprp_vgpr;
    q_aprp_sgpr = rp.Sched.Cost.aprp_sgpr;
    q_iterations = pass1.Engine.Types.iterations + pass2.Engine.Types.iterations;
    q_iters_to_best = iters_to_best series;
    q_improved = pass1.Engine.Types.improved || pass2.Engine.Types.improved;
  }

let of_report (report : Compile.suite_report) =
  List.concat_map
    (fun (kr : Compile.kernel_report) -> List.map of_region kr.Compile.regions)
    report.Compile.kernels

(* --- JSONL ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_line q =
  Printf.sprintf
    "{\"region\":\"%s\",\"n\":%d,\"backend\":\"%s\",\"rung\":\"%s\",\"length\":%d,\"length_lb\":%d,\"gap\":%d,\"occupancy\":%d,\"occ_target\":%d,\"aprp_vgpr\":%d,\"aprp_sgpr\":%d,\"iterations\":%d,\"iters_to_best\":%d,\"improved\":%s}"
    (json_escape q.q_region) q.q_n (json_escape q.q_backend) (json_escape q.q_rung)
    q.q_length q.q_length_lb q.q_gap q.q_occupancy q.q_occ_target q.q_aprp_vgpr
    q.q_aprp_sgpr q.q_iterations q.q_iters_to_best
    (if q.q_improved then "true" else "false")

(* Reuses the lint's JSON parser — the repo's one JSON reader. *)
let of_json_line line =
  match Obs.Trace_check.parse_json line with
  | exception Obs.Trace_check.Parse_error _ -> None
  | Obs.Trace_check.Obj fields ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Obs.Trace_check.Str s) -> Some s
        | _ -> None
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Obs.Trace_check.Num v) -> Some (int_of_float v)
        | _ -> None
      in
      let boolean k =
        match List.assoc_opt k fields with
        | Some (Obs.Trace_check.Bool b) -> Some b
        | _ -> None
      in
      let ( let* ) = Option.bind in
      let* q_region = str "region" in
      let* q_n = num "n" in
      let* q_backend = str "backend" in
      let* q_rung = str "rung" in
      let* q_length = num "length" in
      let* q_length_lb = num "length_lb" in
      let* q_gap = num "gap" in
      let* q_occupancy = num "occupancy" in
      let* q_occ_target = num "occ_target" in
      let* q_aprp_vgpr = num "aprp_vgpr" in
      let* q_aprp_sgpr = num "aprp_sgpr" in
      let* q_iterations = num "iterations" in
      let* q_iters_to_best = num "iters_to_best" in
      let* q_improved = boolean "improved" in
      Some
        {
          q_region;
          q_n;
          q_backend;
          q_rung;
          q_length;
          q_length_lb;
          q_gap;
          q_occupancy;
          q_occ_target;
          q_aprp_vgpr;
          q_aprp_sgpr;
          q_iterations;
          q_iters_to_best;
          q_improved;
        }
  | _ -> None

let append ~file records =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun q ->
          output_string oc (to_json_line q);
          output_char oc '\n')
        records)

let load ~file =
  let ic = open_in file in
  let records = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match of_json_line line with
            | Some q -> records := q :: !records
            | None -> () (* malformed lines skip; the ledger is append-only *)
        done;
        assert false
      with End_of_file -> List.rev !records)

(* --- Summary -------------------------------------------------------------- *)

type summary = {
  s_count : int;
  s_clean : int; (* rung = clean *)
  s_at_lb : int; (* gap = 0 *)
  s_mean_gap : float;
  s_mean_gap_ratio : float; (* gap / lb over records with lb > 0 *)
  s_max_gap : int;
  s_max_gap_region : string;
  s_occ_met : int; (* occupancy >= target *)
  s_mean_iterations : float;
  s_mean_iters_to_best : float;
  s_improved : int;
}

let summarize records =
  let count = List.length records in
  let fold f init = List.fold_left f init records in
  let clean = fold (fun a q -> if String.equal q.q_rung "clean" then a + 1 else a) 0 in
  let at_lb = fold (fun a q -> if q.q_gap <= 0 then a + 1 else a) 0 in
  let gap_sum = fold (fun a q -> a + q.q_gap) 0 in
  let ratio_sum, ratio_n =
    fold
      (fun (s, n) q ->
        if q.q_length_lb > 0 then
          (s +. (float_of_int q.q_gap /. float_of_int q.q_length_lb), n + 1)
        else (s, n))
      (0.0, 0)
  in
  let max_gap, max_gap_region =
    fold
      (fun ((g, _) as acc) q -> if q.q_gap > g then (q.q_gap, q.q_region) else acc)
      (min_int, "-")
  in
  let occ_met = fold (fun a q -> if q.q_occupancy >= q.q_occ_target then a + 1 else a) 0 in
  let iter_sum = fold (fun a q -> a + q.q_iterations) 0 in
  let itb_sum = fold (fun a q -> a + q.q_iters_to_best) 0 in
  let improved = fold (fun a q -> if q.q_improved then a + 1 else a) 0 in
  let mean v = if count = 0 then 0.0 else float_of_int v /. float_of_int count in
  {
    s_count = count;
    s_clean = clean;
    s_at_lb = at_lb;
    s_mean_gap = mean gap_sum;
    s_mean_gap_ratio = (if ratio_n = 0 then 0.0 else ratio_sum /. float_of_int ratio_n);
    s_max_gap = (if count = 0 then 0 else max_gap);
    s_max_gap_region = max_gap_region;
    s_occ_met = occ_met;
    s_mean_iterations = mean iter_sum;
    s_mean_iters_to_best = mean itb_sum;
    s_improved = improved;
  }

let summarize_by_backend records =
  let names = List.sort_uniq String.compare (List.map (fun q -> q.q_backend) records) in
  List.map
    (fun b -> (b, summarize (List.filter (fun q -> String.equal q.q_backend b) records)))
    names

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(* Gap distribution buckets: at-bound, near (1-2 cycles), moderate
   (3-5), far (6+). Coarse on purpose — the split is for spotting a
   backend that ships systematically worse tails, not for plotting. *)
let gap_buckets records =
  let buckets = [| 0; 0; 0; 0 |] in
  List.iter
    (fun q ->
      let k =
        if q.q_gap <= 0 then 0 else if q.q_gap <= 2 then 1 else if q.q_gap <= 5 then 2 else 3
      in
      buckets.(k) <- buckets.(k) + 1)
    records;
  buckets

let render_summary ?(top = 5) records =
  let s = summarize records in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "SCHEDULE QUALITY — %d region(s)" s.s_count;
  if s.s_count > 0 then begin
    line "  clean compiles        %6d  (%.0f%%)" s.s_clean (pct s.s_clean s.s_count);
    line "  at length lower bound %6d  (%.0f%%)" s.s_at_lb (pct s.s_at_lb s.s_count);
    line "  mean gap              %8.1f cycles  (%.1f%% of lower bound)" s.s_mean_gap
      (100.0 *. s.s_mean_gap_ratio);
    line "  worst gap             %6d  (%s)" s.s_max_gap s.s_max_gap_region;
    line "  occupancy target met  %6d  (%.0f%%)" s.s_occ_met (pct s.s_occ_met s.s_count);
    line "  ACO improved on AMD   %6d  (%.0f%%)" s.s_improved
      (pct s.s_improved s.s_count);
    line "  mean iterations       %8.1f  (%.1f to best — %.0f%% of the budget idles)"
      s.s_mean_iterations s.s_mean_iters_to_best
      (if s.s_mean_iterations > 0.0 then
         100.0
         *. (1.0 -. (s.s_mean_iters_to_best /. Float.max 1.0 s.s_mean_iterations))
       else 0.0);
    let worst =
      List.filteri
        (fun i _ -> i < top)
        (List.stable_sort (fun a b -> compare b.q_gap a.q_gap) records)
    in
    if worst <> [] && top > 0 then begin
      line "  worst regions by gap:";
      List.iter
        (fun q ->
          line "    %-28s n=%-4d gap=%-5d occ %d/%d  %s via %s" q.q_region q.q_n
            q.q_gap q.q_occupancy q.q_occ_target q.q_rung q.q_backend)
        worst
    end;
    (* Per-backend split: only worth printing when the corpus actually
       mixes backends (a race or an auto policy). *)
    let by_backend = summarize_by_backend records in
    if List.length by_backend > 1 then begin
      line "  per backend:";
      List.iter
        (fun (b, bs) ->
          let rs = List.filter (fun q -> String.equal q.q_backend b) records in
          let bk = gap_buckets rs in
          line
            "    %-10s %5d region(s)  gap[0]=%d [1-2]=%d [3-5]=%d [6+]=%d  occ met \
             %.0f%%  mean gap %.1f"
            b bs.s_count bk.(0) bk.(1) bk.(2) bk.(3)
            (pct bs.s_occ_met bs.s_count)
            bs.s_mean_gap)
        by_backend
    end
  end;
  Buffer.contents buf
