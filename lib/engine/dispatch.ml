type policy =
  | Fixed of string
  | Size_threshold of { small : string; large : string; threshold : int }
  | Race of string list

let default = Fixed "par"

let candidates policy ~n =
  match policy with
  | Fixed b -> [ b ]
  | Size_threshold { small; large; threshold } -> [ (if n < threshold then small else large) ]
  | Race bs -> bs

let split_on_comma s = String.split_on_char ',' s |> List.map String.trim

exception Duplicate_backend of string

(* A duplicated name in a race list is always a user mistake — the second
   run would burn a full compile to produce a byte-identical schedule —
   so reject it with a typed error the CLI can render. *)
let check_distinct bs =
  ignore
    (List.fold_left
       (fun seen b ->
         if List.mem b seen then raise (Duplicate_backend b) else b :: seen)
       [] bs)

let of_string ?(auto_threshold = 50) s =
  match String.trim s with
  | "" -> invalid_arg "Engine.Dispatch.of_string: empty backend spec"
  | "auto" -> Size_threshold { small = "seq"; large = "par"; threshold = auto_threshold }
  | s when String.contains s ',' -> (
      match List.filter (fun b -> b <> "") (split_on_comma s) with
      | [] -> invalid_arg "Engine.Dispatch.of_string: empty backend race"
      | [ b ] -> Fixed b
      | bs ->
          check_distinct bs;
          Race bs)
  | s -> Fixed s

let to_string = function
  | Fixed b -> b
  | Size_threshold { small; large; threshold } ->
      Printf.sprintf "auto(<%d:%s,>=%d:%s)" threshold small threshold large
  | Race bs -> String.concat "," bs

let backend_names = function
  | Fixed b -> [ b ]
  | Size_threshold { small; large; _ } -> if small = large then [ small ] else [ small; large ]
  | Race bs -> List.sort_uniq String.compare bs
