(** One simulated wavefront: 64 ants advancing in lockstep
    (Section IV-B maps one ant to one GPU thread; a block is one
    wavefront so no intra-block synchronization is needed).

    Each lockstep step asks every active ant for one construction step,
    charges the divergence-serialized compute cost and the coalescing-
    dependent memory transactions, and honours the wavefront-level
    optimizations: a single exploration coin per step, optional stalls
    only in designated wavefronts, early termination once a lane
    finishes, and a per-wavefront guiding heuristic. *)

type t

val create :
  Config.t ->
  Ddg.Graph.t ->
  Aco.Params.t ->
  heuristic:Sched.Heuristic.kind ->
  allow_optional_stalls:bool ->
  t
(** Allocate the wavefront's ants (state is reused across iterations). *)

val lanes : t -> int

type outcome = {
  time_ns : float;  (** simulated lockstep construction time *)
  work : int;  (** total abstract work of all lanes (CPU-model currency) *)
  serialized_ops : int;  (** compute ops after divergence serialization *)
  single_path_ops : int;  (** compute ops had every step been uniform *)
  steps : int;  (** lockstep steps executed *)
  finished : Aco.Ant.t list;
      (** lanes that completed a schedule, in lane order; their state is
          valid until the next [run_iteration] on this wavefront *)
  hung : bool;
      (** the wavefront hung (injected fault) and was recovered by the
          watchdog; [finished] is empty and [time_ns] is the watchdog
          detection penalty *)
  quarantined : int;
      (** lanes killed by injected transient faults this iteration *)
  mem_faults : int;  (** memory-transaction replays injected this iteration *)
}

val run_iteration :
  ?faults:Faults.t ->
  t ->
  rng:Support.Rng.t ->
  mode:Aco.Ant.mode ->
  pheromone:Aco.Pheromone.t ->
  outcome
(** Construct one candidate schedule per lane. [rng] seeds the lanes
    (each lane receives an independent split, as each GPU thread
    receives a distinct seed). [faults] (default {!Faults.disabled})
    may hang the whole wavefront, quarantine individual lanes
    mid-construction, or replay a step's memory transactions; it never
    touches [rng], so a disabled injector leaves the construction
    byte-identical. *)
