(** The sequential two-pass ACO scheduler of Shobaki et al. (reference
    [11] of the paper) — the CPU baseline that the GPU parallelization is
    measured against in Tables 3.a/3.b and 5, re-expressed as the
    ["seq"] backend of the {!Engine} layer.

    Pass 1 searches for a minimum-RP order while ignoring latencies;
    pass 2 treats the best pass-1 RP as a constraint and searches for the
    shortest latency-feasible schedule (Section IV-A). Each pass stops
    when its lower bound is reached or after
    [Params.termination_condition] improvement-free iterations. The pass
    sequencing itself lives in {!Engine.Two_pass}; this module supplies
    the CPU colony it drives. *)

type pass_stats = Engine.Types.pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;  (** abstract work units (see {!Ant.work}) plus table upkeep *)
  time_ns : float;  (** always 0: the CPU colony has no time model *)
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;  (** always 0 (GPU-model counters) *)
  single_path_ops : int;
  lockstep_steps : int;
  ant_steps : int;
  selections : int;
  best_costs : int array;
      (** convergence series: entry 0 is the initial cost, entry [k] the
          best cost after the [k]th attempted iteration (this colony
          never retries, so attempted = completed) *)
  minor_words : float;  (** host minor-heap words allocated during the pass *)
  retries : int;  (** always 0: no fault model *)
  aborted_budget : bool;
      (** the pass exhausted its work budget and kept its best-so-far *)
  aborted_faults : bool;  (** always false *)
  scored_candidates : int;
      (** pass-2 candidates whose RP fit was evaluated (tracker-meter
          delta across the pass); 0 in pass 1 *)
  pruned_candidates : int;
      (** candidates dismissed by the min-register lower bounds; nonzero
          only for the pruning backend *)
  fault_counts : Engine.Types.fault_counts;  (** always zero *)
}
(** The engine's unified statistics record (see {!Engine.Types}); the
    equality keeps historical [r.Aco.Seq_aco.pass1.work]-style accesses
    compiling. *)

val no_pass : pass_stats
(** Stats of a pass that never ran. *)

type result = Engine.Types.result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

val make_backend :
  name:string ->
  policy:Pheromone_policy.spec ->
  ?objective:Sched.Objective.t ->
  ?prune:bool ->
  unit ->
  Engine.Backend.t
(** A CPU-colony backend with the given registry name, pheromone policy,
    (optional) RP objective and (optional, default off) lower-bound
    candidate pruning. {!backend}, {!prune_backend}, {!mmas_backend} and
    {!mmas_spill_backend} are the instantiations the product registers;
    the constructor is exposed so tests and experiments can build
    others. Under a spill objective, pass 2 runs unconstrained (the
    targets are {!Sched.Objective.no_target}) and its cost is schedule
    length plus the priced spill traffic of each ant's peaks. *)

val backend : Engine.Backend.t
(** The ["seq"] backend: RP pass, no faults, no trace, no time model,
    vanilla Ant System pheromone, cliff objective. Its budget currency
    is [Work]; handing it a [Time_ns] budget raises
    [Invalid_argument]. *)

val prune_backend : Engine.Backend.t
(** ["seq-prune"]: {!backend} with min-register candidate pruning armed
    ({!Ant.set_prune}). Sound-only, so its schedules and RNG streams are
    byte-identical to ["seq"]'s; it reports nonzero [pruned_candidates]
    and fewer [scored_candidates]. *)

val mmas_backend : Engine.Backend.t
(** ["mmas"]: the same colony under the MAX-MIN Ant System policy
    (see {!Pheromone_policy}) and the cliff objective. *)

val mmas_spill_backend : Sched.Objective.spill_model -> Engine.Backend.t
(** ["mmas-spill"]: MMAS policy plus the spill-aware RP objective. The
    spill model comes from the caller (the pipeline derives one from
    its machine configuration via [Gpusim.Mem_model.spill_model]). *)

val register : unit -> unit
(** Install {!backend} in {!Engine.Registry} (idempotent). *)

val run : ?params:Params.t -> ?seed:int -> Machine.Occupancy.t -> Ddg.Graph.t -> result
(** Schedule a region. Deterministic for a fixed seed. *)

val run_from_setup :
  ?params:Params.t ->
  ?seed:int ->
  ?budget_work:int ->
  ?metrics:Obs.Metrics.t ->
  ?label:string ->
  Setup.t ->
  result
(** Same, reusing an already-prepared {!Setup.t} (the pipeline prepares
    one setup and feeds it to every backend so they race from identical
    starting points).

    [budget_work] (default unlimited) is a compile budget in abstract
    work units shared across both passes: a pass that exhausts it stops
    after the current iteration, keeps its best-so-far, and reports
    [aborted_budget]. The pipeline converts its nanosecond budget to
    work units through its CPU cost model.

    [metrics] (default {!Obs.Metrics.null}) records per-iteration
    best-cost and pheromone-entropy series named ["<label>passN.*"]; a
    disabled registry is a true no-op — schedules, RNG streams and the
    reported [minor_words] stay byte-identical. *)
