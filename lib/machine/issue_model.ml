type t = { issue_width : int }

let make ~issue_width =
  if issue_width <= 0 then invalid_arg "Issue_model.make: non-positive width";
  { issue_width }

let single_issue = make ~issue_width:1

let issue_width t = t.issue_width

let slots_per_cycle t (_ : Ir.Opcode.kind) = t.issue_width
