(** The compile service as a long-lived daemon: admission, deadlines,
    shedding, and crash-safe caches.

    {!Compile.run_region} is a one-shot driver; this module wraps it in
    the request loop a production scheduling service needs. Requests
    arrive as framed payloads ({!Support.Frame}) carrying either a
    generator spec ([shape=transform size=60 seed=7]) or inline region
    text ({!Ir.Parse}); every frame — well-formed or hostile — is
    answered exactly once, with a typed error reply when it cannot be
    served. The loop is transport-agnostic and single-threaded: a pump
    (stdio or a Unix socket in [bin/gpuaco], a driving loop in tests and
    drills) feeds {!handle} and calls {!process} to make compile
    progress, and replies leave through the [on_reply] callback.

    Robustness machinery, all deterministic because compile time is
    simulated:

    - {b Admission}: a bounded queue ([queue_capacity]); {!process}
      compiles at most [max_in_flight] queued requests per pump call.
    - {b Shedding}: past [shed_threshold] of queue capacity a compile
      request is not queued at all — it is answered immediately with the
      Critical-Path schedule from the region's analysis context, ledgered
      as {!Robust.Shed_overload}. The service degrades, never stalls.
    - {b Deadlines and retry}: each request's budget becomes an
      {!Engine.Types.budget}; the request deadline is that budget times
      [deadline_slack]. A degraded attempt (faults, budget exhaustion)
      is retried up to [max_retries] times with exponential backoff and
      a per-attempt reseeded fault stream
      ({!Gpusim.Config.reseed_faults}); backoff is charged against the
      deadline, and the best attempt by (severity, cost) ships.
    - {b Memoisation}: a second-level schedule memo over the PR-5
      analysis cache, keyed on (structural fingerprint, request name,
      effective compile configuration). A hit replays the recorded
      reply — including the report digest — without touching ACO.
    - {b Persistence}: with a [state_dir], {!drain} (and {!persist})
      writes both cache levels through {!Support.Blobfile} (checksummed,
      atomically renamed). {!create} reloads them; a missing, corrupt,
      truncated or version-skewed file counts a metric and starts cold —
      it never raises.
    - {b Drain}: {!drain} finishes every queued request, refuses new
      ones with a typed [shutting-down] reply, persists state and emits
      a final [bye] reply with the full degradation tally.

    Every decision is counted in {!Obs.Metrics} under [serve.*]:
    admissions, sheds, retries, deadline hits, memo traffic, per-client
    request counters, a queue-depth gauge and a simulated-latency
    histogram. *)

(** {1 Configuration} *)

type config = {
  compile : Compile.config;  (** base per-request compile configuration *)
  queue_capacity : int;  (** admission queue bound (min 1) *)
  max_in_flight : int;  (** compiles per {!process} pump (min 1) *)
  shed_threshold : float;
      (** fraction of [queue_capacity] past which compile requests are
          shed to the Critical-Path schedule (clamped to [0,1]) *)
  max_retries : int;
      (** serve-level re-attempts after a degraded first attempt; [0]
          ships the first attempt unconditionally *)
  backoff_base_ns : float;
      (** backoff before retry [k] is [backoff_base_ns * 2^k] simulated
          nanoseconds, charged against the request deadline *)
  deadline_slack : float;
      (** request deadline = slack × the per-attempt budget (≥ 1.0);
          retries stop when the next attempt cannot fit *)
  memo_capacity : int;  (** schedule-memo entries (LRU; 0 disables) *)
  state_dir : string option;  (** persistence directory; [None] = off *)
  frame_limit : int;  (** max accepted frame payload, bytes *)
  quality_ledger : string option;
      (** JSONL file that every computed miss appends a
          {!Quality.record} to; [None] = off. Writes are append-only on
          the reply path (never on a pool domain) and a failing write
          counts [serve.quality.write_failed] instead of raising. *)
}

val default_config : Compile.config -> config
(** Queue of 64, 4 in flight, shed at 75%, 2 retries from a 50µs base
    backoff, slack 4.0, 512 memo entries, no persistence, no quality
    ledger, {!Support.Frame.default_limit}. *)

(** {1 Protocol} *)

type proto_error =
  | Bad_frame of string  (** transport framing violation (rendered) *)
  | Bad_request of string  (** malformed or contradictory header line *)
  | Bad_region of Ir.Parse.error  (** inline region text failed to parse *)
  | Unknown_shape of string  (** generator family not in {!Workload.Shapes.spec_names} *)
  | Unknown_backend of string  (** dispatch names a backend the registry lacks *)
  | Shutting_down  (** the service is draining; request refused *)

val proto_error_code : proto_error -> string
(** Stable machine-readable code: [bad-frame], [bad-request],
    [bad-region], [unknown-shape], [unknown-backend], [shutting-down]. *)

val proto_error_message : proto_error -> string

type source =
  | Generated of { shape : string; size : int; seed : int }
  | Inline of Ir.Region.t

type request = {
  req_id : string;  (** opaque id echoed in the reply; ["-"] if absent *)
  req_client : string option;  (** [client=] override of the transport's name *)
  source : source;
  fault_rate : float option;  (** installs {!Gpusim.Config.uniform_faults} *)
  fault_seed : int option;
  budget_ms : float option;  (** installs {!Robust.budgets_of_ms} *)
  backend : Engine.Dispatch.policy option;
}

type command =
  | Compile of request
  | Ping of string  (** liveness probe (id) *)
  | Stats of string  (** service counters snapshot (id) *)
  | Metrics_dump of string
      (** Prometheus text exposition of the live registry (id) *)
  | Watch of string
      (** operational snapshot for dashboards: stats plus in-flight,
          pool occupancy, hit rates and latency quantiles (id) *)
  | Shutdown of string  (** begin drain (id) *)

val parse_request : string -> (command, string * proto_error) result
(** Parse one frame payload. The first line is space-separated
    [key=value] tokens ([op], [id], [client], [shape], [size], [seed],
    [fault-rate], [fault-seed], [budget-ms], [backend]); any following
    lines are inline region text. Validation is strict — unknown keys,
    duplicate keys, unparseable values, a missing source or both sources
    at once are all typed errors, never exceptions. The [string] in the
    error is the best-effort request id for the error reply. *)

type compile_reply = {
  rep_id : string;
  rep_region : string;  (** region name the reply describes *)
  rep_outcome : Robust.degradation;
  rep_cost : Sched.Cost.t;
  rep_order : int array;  (** the shipped schedule's instruction order *)
  rep_digest : string;
      (** {!Report_digest.digest_region} of the shipped report — byte
          comparable against a direct compile; ["-"] for shed replies
          (no report was produced) *)
  rep_attempts : int;  (** serve-level attempts spent (0 for memo/shed) *)
  rep_retries : int;  (** in-driver faulted-iteration retries of the shipped run *)
  rep_latency_ns : float;  (** simulated: compile time + backoff *)
  rep_memo : [ `Hit | `Miss | `Shed ];
}

type reply =
  | Compiled of compile_reply
  | Rejected of { rej_id : string; error : proto_error }
  | Pong of { png_id : string }
  | Stats_reply of { sts_id : string; body : (string * string) list }
  | Metrics_reply of { met_id : string; body : string }
      (** [body] is {!Obs.Metrics.to_prometheus} of the live registry *)
  | Watch_reply of { wat_id : string; body : (string * string) list }
  | Drained of { served : int; rejected : int; tally : Robust.tally }

val render_reply : reply -> string
(** One line, [key=value] tokens, first token the reply kind ([ok],
    [err], [pong], [stats], [watch], [bye]); an [err] reply's [msg=] is
    last and runs to end of line. The one multi-line exception is
    [metrics]: a [metrics id=…] header line followed by the Prometheus
    text exposition verbatim. *)

(** {1 Budget arithmetic} (exposed for tests) *)

val budget_of_ns : float -> Engine.Types.budget
(** [Time_ns], or [Unlimited] for an infinite/non-positive-free budget. *)

val deadline_of_budget :
  Gpusim.Config.t -> slack:float -> Engine.Types.budget -> float
(** The request deadline in simulated nanoseconds: [slack] times the
    budget converted to time — [Time_ns] directly, [Work] through
    {!Gpusim.Cpu_model.pass_time_ns}, [Unlimited] is [infinity]. *)

(** {1 The service} *)

type t

val create :
  ?metrics:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?pool:Support.Domain_pool.t ->
  ?on_reply:(reply -> unit) ->
  config ->
  t
(** A fresh service. With a [state_dir], previously persisted analysis
    regions and memo entries are reloaded (failures count
    [serve.persist.load_failed] and start cold). [on_reply] receives
    every reply, in order; default ignores them.

    [log] (default disabled) receives the service's structured event
    stream: [serve.start], [serve.admit] (debug), [serve.shed] /
    [serve.reject] (warn), [serve.drain], plus every compile-layer
    entry. Each computed miss runs under a child logger that stamps the
    request id on its entries ({!Obs.Log.with_fields}), so one request
    is grep-able from admission through pool worker to backend pass;
    the shared ring is mutex-protected, so pooled batches may log
    concurrently.

    With a [pool], each {!process} batch runs its distinct memo misses
    in parallel on the pool's domains (the pool persists across batches
    and requests — typically {!Support.Domain_pool.global}), while
    admission, memoisation and replies stay sequential in pop order;
    replies are identical to the poolless service because each miss's
    attempt loop is deterministic in its inputs. The gauges
    [serve.pool.busy] / [serve.pool.idle] report occupancy around each
    compute phase. Without a [pool], misses compute inline on the
    caller. *)

val config : t -> config

val handle : t -> ?client:string -> string -> unit
(** Admit one frame payload from [client] (default ["anon"]): parse,
    answer control commands immediately, reject malformed requests with
    a typed error reply, shed past the pressure threshold, otherwise
    enqueue. Every call produces exactly one reply — now, or when
    {!process} reaches the queued request. *)

val handle_frame_error : t -> ?client:string -> Support.Frame.error -> unit
(** The transport saw a framing violation; replies [err code=bad-frame].
    Framing errors are fatal to a connection but not to the service. *)

val process : t -> int
(** Compile up to [max_in_flight] queued requests (one batch, parallel
    across distinct misses when the service has a pool); the pump calls
    this between reads. Returns the number compiled. Replies go out in
    pop order; an in-batch duplicate of a miss replies [memo=hit], just
    as it would have sequentially. *)

val drain : t -> unit
(** Finish every queued request (ignoring [max_in_flight]), persist
    state, emit the final [bye] reply and refuse all later requests.
    Idempotent. *)

val persist : t -> unit
(** Write both cache levels to [state_dir] now (no-op without one).
    {!drain} calls this; long-lived pumps may checkpoint earlier. *)

(** {1 Introspection} *)

val state : t -> [ `Serving | `Draining | `Drained ]
val queue_depth : t -> int

val in_flight : t -> int
(** Distinct memo misses computing in the current {!process} batch
    (0 between batches — the pump is single-threaded, so a concurrent
    reader only sees a nonzero value through {!watch_body} taken by a
    control command that interleaves with a batch). *)

val shed_point : t -> int
(** Queue depth at which shedding starts. *)

val received : t -> int
(** Frames seen, including malformed ones. *)

val served : t -> int
(** Compile replies sent (memo, shed and compiled). *)

val rejected : t -> int
(** Error replies sent. *)

val tally : t -> Robust.tally
(** Ledger over every compile reply. *)

val analysis_stats : t -> Analysis.stats

val memo_stats : t -> int * int * int
(** (hits, misses, resident entries). *)

val stats_body : t -> (string * string) list
(** The [op=stats] reply body: state, queue depth, counters, tally,
    cache traffic, persistence provenance. *)

val watch_body : t -> (string * string) list
(** The [op=watch] reply body: {!stats_body} plus in-flight, pool
    busy/idle, steal count, deadline hits, memo/analysis hit rates and
    p50/p99 simulated latency from the [serve.latency_ns] histogram's
    bucket ladder. Metric-derived fields read 0 (and rates ["-"]) when
    the registry is disabled. *)
