(** Robustness policy of the fault-tolerant compile driver.

    The driver's contract is graceful degradation: {!Compile.run_region}
    always emits a valid schedule, and when faults, watchdogs, or compile
    budgets get in the way it steps down — first retrying faulted
    iterations, then keeping a pass's best-so-far, and in the worst case
    shipping the AMD heuristic schedule. This module holds the knobs
    (per-category budgets, the iteration watchdog deadline, the retry
    allowance) and the degradation ledger that records which rung every
    region ended on. *)

type config = {
  compile_budget_ns : float array;
      (** per-region compile budget in simulated nanoseconds, indexed by
          {!Aco.Params.size_category} (out-of-range categories clamp to
          the last entry; an empty array means unbounded) *)
  iteration_deadline_ns : float;  (** watchdog deadline per ACO iteration *)
  max_retries : int;
      (** consecutive faulted iterations tolerated per pass before it
          degrades to its best-so-far *)
}

val default : config
(** Unbounded budgets, no iteration deadline, 2 retries — the fault-free
    pipeline behaves exactly as before. *)

val budgets_of_ms : float -> float array
(** [budgets_of_ms ms] grants small regions [ms] milliseconds, medium
    regions [2*ms] and large regions [4*ms] (budget scales with the
    category because so does iteration cost). *)

val budget_for : config -> n:int -> float
(** Budget in nanoseconds for a region of [n] instructions. *)

val budget_work_of_ns : Gpusim.Config.t -> float -> int
(** Convert a nanosecond budget into the sequential driver's abstract
    work units via the CPU cost model ([max_int] for an infinite
    budget). *)

type degradation =
  | Clean  (** no faults, no budget pressure; full ACO product *)
  | Retried of int
      (** [Retried k]: [k] faulted iterations were re-run (with reseeded
          RNG and backoff) but the region recovered and shipped the ACO
          product *)
  | Budget_exceeded
      (** a pass ran out of compile budget; the best-so-far schedule
          shipped *)
  | Faulted_fallback
      (** retries were exhausted, the final schedule failed validation,
          or the driver trapped an exception; the emitted schedule is
          the pass's best-so-far or the AMD heuristic *)
  | Shed_overload
      (** the compile service shed the request under admission pressure:
          ACO was never attempted and the Critical-Path schedule from
          the region's analysis context shipped (see [Serve]) *)

val degradation_label : degradation -> string

val severity : degradation -> int
(** [Clean] = 0 rising to [Faulted_fallback] = 3 and [Shed_overload] =
    4 (shedding skips ACO entirely, the deepest planned degradation). *)

val classify :
  fell_back:bool -> aborted_faults:bool -> aborted_budget:bool -> retries:int -> degradation
(** Fold a region's raw robustness signals into its ledger entry, most
    severe signal first. *)

val observe :
  ?log:Obs.Log.t -> Obs.Trace.t -> Obs.Metrics.t -> region:string -> degradation -> unit
(** Record a region's ledger entry on the flight recorder (an instant on
    the driver track when the region degraded, with the severity as its
    argument), bump the matching ["regions.*"] counter, and — when [log]
    is given — emit a [region.degraded] warn entry. A no-op on disabled
    recorders. *)

type tally = {
  regions : int;
  clean : int;
  retried : int;  (** regions that recovered via retries *)
  budget_exceeded : int;
  faulted_fallback : int;
  shed_overload : int;  (** requests answered with the heuristic under load *)
  total_retries : int;  (** summed retry counts over retried regions *)
}

val empty_tally : tally
val tally_add : tally -> degradation -> tally
val tally_of_list : degradation list -> tally
