type time_row = {
  category : int;
  pass1_overall_pct : float;
  pass1_max_pct : float;
  pass2_overall_pct : float;
  pass2_max_pct : float;
}

(* Pair each compiled region report with its IR region. *)
let eligible_regions (report : Compile.suite_report) =
  List.concat_map
    (fun (kr : Compile.kernel_report) ->
      List.map2
        (fun region rr -> (region, rr))
        kr.Compile.kernel.Workload.Suite.regions kr.Compile.regions)
    report.Compile.kernels

let improvement_pct ~slow ~fast = (slow -. fast) /. fast *. 100.0

let compare_opts (config : Compile.config) report ~baseline ~optimized =
  let gpu_base = Gpusim.Config.with_opts config.Compile.gpu baseline in
  let gpu_opt = Gpusim.Config.with_opts config.Compile.gpu optimized in
  (* accumulators.(cat) = (p1 slow, p1 fast, p1 max, p2 slow, p2 fast, p2 max) *)
  let acc = Array.make 3 (0.0, 0.0, 0.0, 0.0, 0.0, 0.0) in
  List.iter
    (fun (region, (rr : Compile.region_report)) ->
      if rr.Compile.pass1_invoked || rr.Compile.pass2_invoked then begin
        let graph = Ddg.Graph.build region in
        let setup = Aco.Setup.prepare config.Compile.occ graph in
        let rb =
          Gpusim.Par_aco.run_from_setup ~params:config.Compile.params ~seed:config.Compile.par_seed
            gpu_base setup
        in
        let ro =
          Gpusim.Par_aco.run_from_setup ~params:config.Compile.params ~seed:config.Compile.par_seed
            gpu_opt setup
        in
        let cat = rr.Compile.size_category in
        let s1, f1, m1, s2, f2, m2 = acc.(cat) in
        let s1, f1, m1 =
          if rr.Compile.pass1_invoked then
            let slow = rb.Gpusim.Par_aco.pass1.Gpusim.Par_aco.time_ns in
            let fast = ro.Gpusim.Par_aco.pass1.Gpusim.Par_aco.time_ns in
            (s1 +. slow, f1 +. fast, Float.max m1 (improvement_pct ~slow ~fast))
          else (s1, f1, m1)
        in
        let s2, f2, m2 =
          if rr.Compile.pass2_invoked then
            let slow = rb.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns in
            let fast = ro.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns in
            (s2 +. slow, f2 +. fast, Float.max m2 (improvement_pct ~slow ~fast))
          else (s2, f2, m2)
        in
        acc.(cat) <- (s1, f1, m1, s2, f2, m2)
      end)
    (eligible_regions report);
  List.map
    (fun category ->
      let s1, f1, m1, s2, f2, m2 = acc.(category) in
      {
        category;
        pass1_overall_pct = (if f1 > 0.0 then improvement_pct ~slow:s1 ~fast:f1 else 0.0);
        pass1_max_pct = m1;
        pass2_overall_pct = (if f2 > 0.0 then improvement_pct ~slow:s2 ~fast:f2 else 0.0);
        pass2_max_pct = m2;
      })
    [ 0; 1; 2 ]

type stall_row = {
  fraction : float;
  aco_time_increase_pct : float;
  length_improvement_pct : float;
  max_length_improvement_pct : float;
}

let stall_fraction_sweep (config : Compile.config) report ~fractions ~min_region_size =
  let targets =
    List.filter
      (fun ((_ : Ir.Region.t), (rr : Compile.region_report)) ->
        rr.Compile.n >= min_region_size && rr.Compile.pass2_invoked)
      (eligible_regions report)
  in
  let run fraction =
    let opts = { config.Compile.gpu.Gpusim.Config.opts with Gpusim.Config.optional_stall_fraction = fraction } in
    let gpu = Gpusim.Config.with_opts config.Compile.gpu opts in
    List.map
      (fun (region, (_ : Compile.region_report)) ->
        let graph = Ddg.Graph.build region in
        let setup = Aco.Setup.prepare config.Compile.occ graph in
        let r =
          Gpusim.Par_aco.run_from_setup ~params:config.Compile.params ~seed:config.Compile.par_seed
            gpu setup
        in
        ( r.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns,
          float_of_int r.Gpusim.Par_aco.cost.Sched.Cost.length ))
      targets
  in
  let base = run 0.0 in
  let base_time = List.fold_left (fun acc (t, _) -> acc +. t) 0.0 base in
  let base_len = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 base in
  List.map
    (fun fraction ->
      let rs = run fraction in
      let time = List.fold_left (fun acc (t, _) -> acc +. t) 0.0 rs in
      let len = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 rs in
      let max_len_pct =
        List.fold_left2
          (fun acc (_, l0) (_, lf) -> Float.max acc ((l0 -. lf) /. l0 *. 100.0))
          0.0 base rs
      in
      {
        fraction;
        aco_time_increase_pct = (if base_time > 0.0 then (time -. base_time) /. base_time *. 100.0 else 0.0);
        length_improvement_pct = (if base_len > 0.0 then (base_len -. len) /. base_len *. 100.0 else 0.0);
        max_length_improvement_pct = max_len_pct;
      })
    fractions

type ready_limit_row = {
  limiting : string;
  time_change_pct : float;
  quality_change_pct : float;
}

let ready_limit_experiment (config : Compile.config) report =
  let targets =
    List.filter
      (fun ((_ : Ir.Region.t), (rr : Compile.region_report)) -> rr.Compile.pass1_invoked)
      (eligible_regions report)
  in
  let run mode =
    let opts = { config.Compile.gpu.Gpusim.Config.opts with Gpusim.Config.ready_list_limiting = mode } in
    let gpu = Gpusim.Config.with_opts config.Compile.gpu opts in
    List.fold_left
      (fun (time, len) (region, (_ : Compile.region_report)) ->
        let graph = Ddg.Graph.build region in
        let setup = Aco.Setup.prepare config.Compile.occ graph in
        let r =
          Gpusim.Par_aco.run_from_setup ~params:config.Compile.params ~seed:config.Compile.par_seed
            gpu setup
        in
        ( time +. Gpusim.Par_aco.total_time_ns r,
          len +. float_of_int r.Gpusim.Par_aco.cost.Sched.Cost.length ))
      (0.0, 0.0) targets
  in
  let t0, l0 = run `Off in
  List.map
    (fun (name, mode) ->
      let t, l = run mode in
      {
        limiting = name;
        time_change_pct = (if t0 > 0.0 then (t -. t0) /. t0 *. 100.0 else 0.0);
        quality_change_pct = (if l0 > 0.0 then (l -. l0) /. l0 *. 100.0 else 0.0);
      })
    [ ("min", `Min); ("mid", `Mid) ]

type objective_row = {
  objective : string;
  kernels_at_better_occupancy : int;
  total_occupancy : int;
  total_length : int;
}

let objective_comparison (config : Compile.config) report =
  let targets =
    List.filter
      (fun ((_ : Ir.Region.t), (rr : Compile.region_report)) ->
        rr.Compile.pass1_invoked || rr.Compile.pass2_invoked)
      (eligible_regions report)
  in
  let outcomes =
    List.map
      (fun (region, (_ : Compile.region_report)) ->
        let graph = Ddg.Graph.build region in
        let two =
          Aco.Seq_aco.run ~params:config.Compile.params ~seed:config.Compile.seq_seed
            config.Compile.occ graph
        in
        let weighted =
          Aco.Weighted_aco.run ~params:config.Compile.params ~seed:config.Compile.seq_seed
            config.Compile.occ graph
        in
        (two.Aco.Seq_aco.cost, weighted.Aco.Weighted_aco.cost))
      targets
  in
  let row name pick other =
    {
      objective = name;
      kernels_at_better_occupancy =
        List.length
          (List.filter
             (fun pair ->
               (pick pair).Sched.Cost.rp.Sched.Cost.occupancy
               > (other pair).Sched.Cost.rp.Sched.Cost.occupancy)
             outcomes);
      total_occupancy =
        List.fold_left (fun acc pair -> acc + (pick pair).Sched.Cost.rp.Sched.Cost.occupancy) 0 outcomes;
      total_length =
        List.fold_left (fun acc pair -> acc + (pick pair).Sched.Cost.length) 0 outcomes;
    }
  in
  [ row "two-pass" fst snd; row "weighted-sum" snd fst ]
