type config = {
  occ : Machine.Occupancy.t;
  gpu : Gpusim.Config.t;
  params : Aco.Params.t;
  filters : Filters.config;
  robust : Robust.config;
  seq_seed : int;
  par_seed : int;
  run_sequential : bool;
}

let make_config ?(gpu = Gpusim.Config.bench) ?(filters = Filters.default)
    ?(robust = Robust.default) ?fault_rate ?fault_seed ?compile_budget_ms ?max_retries () =
  let params =
    {
      Aco.Params.default with
      Aco.Params.ants_per_iteration = Gpusim.Config.threads gpu;
      (* Run the ILP pass ungated; Report applies [filters.cycle_threshold]
         by synthesis. *)
      pass2_cycle_threshold = 1;
    }
  in
  let gpu =
    match fault_rate with
    | Some rate ->
        Gpusim.Config.with_faults ?seed:fault_seed gpu (Gpusim.Config.uniform_faults rate)
    | None -> (
        match fault_seed with
        | Some seed -> { gpu with Gpusim.Config.fault_seed = seed }
        | None -> gpu)
  in
  let robust =
    match compile_budget_ms with
    | Some ms -> { robust with Robust.compile_budget_ns = Robust.budgets_of_ms ms }
    | None -> robust
  in
  let robust =
    match max_retries with
    | Some k -> { robust with Robust.max_retries = max 0 k }
    | None -> robust
  in
  {
    occ = Machine.Occupancy.default;
    gpu;
    params;
    filters;
    robust;
    seq_seed = 101;
    par_seed = 202;
    run_sequential = true;
  }

type region_report = {
  region_name : string;
  n : int;
  size_category : int;
  length_lb : int;
  heuristic_cost : Sched.Cost.t;
  heuristic_order : int array;
  cp_cost : Sched.Cost.t;
  pass1_invoked : bool;
  pass2_invoked : bool;
  pass2_gap : int;
  aco_cost : Sched.Cost.t;
  aco_order : int array;
  pass1_only_cost : Sched.Cost.t;
  pass1_only_order : int array;
  seq_pass1 : Aco.Seq_aco.pass_stats option;
  seq_pass2 : Aco.Seq_aco.pass_stats option;
  par_pass1 : Gpusim.Par_aco.pass_stats;
  par_pass2 : Gpusim.Par_aco.pass_stats;
  seq_pass1_time_ns : float;
  seq_pass2_time_ns : float;
  par_pass1_time_ns : float;
  par_pass2_time_ns : float;
  degradation : Robust.degradation;
  retries : int;
  fault_counts : Gpusim.Faults.counts;
}

type kernel_report = { kernel : Workload.Suite.kernel; regions : region_report list }

type suite_report = {
  suite : Workload.Suite.t;
  compile_config : config;
  kernels : kernel_report list;
}

(* Worst-case product: the AMD heuristic schedule dressed up as an ACO
   result. This is what the driver ships when the parallel driver itself
   trapped — the schedule is valid by construction, so compilation always
   completes. *)
let heuristic_fallback (setup : Aco.Setup.t) : Gpusim.Par_aco.result =
  {
    Gpusim.Par_aco.schedule = setup.Aco.Setup.amd_schedule;
    cost = setup.Aco.Setup.amd_cost;
    heuristic_schedule = setup.Aco.Setup.amd_schedule;
    heuristic_cost = setup.Aco.Setup.amd_cost;
    rp_target = setup.Aco.Setup.amd_cost.Sched.Cost.rp;
    pass2_initial = setup.Aco.Setup.amd_schedule;
    pass1 = Gpusim.Par_aco.no_pass;
    pass2 = Gpusim.Par_aco.no_pass;
  }

let run_region ?(trace = Obs.Trace.null) ?(metrics = Obs.Metrics.null) config ~name region =
  let graph = Ddg.Graph.build region in
  let setup = Aco.Setup.prepare config.occ graph in
  let budget_ns = Robust.budget_for config.robust ~n:graph.Ddg.Graph.n in
  let region_t0 = Obs.Trace.now trace in
  let par, par_trapped =
    match
      Gpusim.Par_aco.run_from_setup ~params:config.params ~seed:config.par_seed
        ~budget_ns ~iteration_deadline_ns:config.robust.Robust.iteration_deadline_ns
        ~max_retries:config.robust.Robust.max_retries ~trace ~metrics
        ~label:(name ^ ".par.") config.gpu setup
    with
    | par -> (par, false)
    | exception _ -> (heuristic_fallback setup, true)
  in
  (* Last line of defence: whatever the driver went through above, the
     region emits a schedule that validates. *)
  let guarded_schedule, guard_fired =
    Sched.Schedule.guard par.Gpusim.Par_aco.schedule ~latency_aware:true
      ~fallback:setup.Aco.Setup.amd_schedule
  in
  let par =
    if guard_fired then
      { par with Gpusim.Par_aco.schedule = guarded_schedule; cost = setup.Aco.Setup.amd_cost }
    else par
  in
  let degradation =
    Robust.classify
      ~fell_back:(par_trapped || guard_fired)
      ~aborted_faults:
        (par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.aborted_faults
        || par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.aborted_faults)
      ~aborted_budget:
        (par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.aborted_budget
        || par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.aborted_budget)
      ~retries:(Gpusim.Par_aco.total_retries par)
  in
  (* The pass-level set_now calls left the trace clock at the end of the
     parallel compile, so the region span covers both its passes. *)
  if Obs.Trace.enabled trace then
    Obs.Trace.span_arg trace ~track:0 ~name:("region " ^ name) ~ts:region_t0
      ~dur:(Obs.Trace.now trace -. region_t0)
      ~key:"n"
      ~value:(float_of_int graph.Ddg.Graph.n);
  Robust.observe trace metrics ~region:name degradation;
  let seq =
    if config.run_sequential then
      let budget_work = Robust.budget_work_of_ns config.gpu budget_ns in
      match
        Aco.Seq_aco.run_from_setup ~params:config.params ~seed:config.seq_seed ~budget_work
          ~metrics ~label:(name ^ ".seq.") setup
      with
      | r -> Some r
      | exception _ -> None
    else None
  in
  let cp_schedule = Sched.List_scheduler.run graph Sched.Heuristic.Critical_path in
  let pass2_initial_cost = Sched.Cost.of_schedule config.occ par.Gpusim.Par_aco.pass2_initial in
  let seq_time stats =
    match stats with
    | Some (s : Aco.Seq_aco.pass_stats) ->
        Gpusim.Cpu_model.pass_time_ns config.gpu ~work:s.Aco.Seq_aco.work
    | None -> 0.0
  in
  {
    region_name = name;
    n = Ir.Region.size region;
    size_category = Aco.Params.size_category (Ir.Region.size region);
    length_lb = setup.Aco.Setup.length_lb;
    heuristic_cost = setup.Aco.Setup.amd_cost;
    heuristic_order = Sched.Schedule.order setup.Aco.Setup.amd_schedule;
    cp_cost = Sched.Cost.of_schedule config.occ cp_schedule;
    pass1_invoked = par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.invoked;
    pass2_invoked = par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.invoked;
    pass2_gap = setup.Aco.Setup.amd_cost.Sched.Cost.length - setup.Aco.Setup.length_lb;
    aco_cost = par.Gpusim.Par_aco.cost;
    aco_order = Sched.Schedule.order par.Gpusim.Par_aco.schedule;
    pass1_only_cost = pass2_initial_cost;
    pass1_only_order = Sched.Schedule.order par.Gpusim.Par_aco.pass2_initial;
    seq_pass1 = Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass1) seq;
    seq_pass2 = Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass2) seq;
    par_pass1 = par.Gpusim.Par_aco.pass1;
    par_pass2 = par.Gpusim.Par_aco.pass2;
    seq_pass1_time_ns = seq_time (Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass1) seq);
    seq_pass2_time_ns = seq_time (Option.map (fun (r : Aco.Seq_aco.result) -> r.Aco.Seq_aco.pass2) seq);
    par_pass1_time_ns = par.Gpusim.Par_aco.pass1.Gpusim.Par_aco.time_ns;
    par_pass2_time_ns = par.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns;
    degradation;
    retries = Gpusim.Par_aco.total_retries par;
    fault_counts = Gpusim.Par_aco.total_faults par;
  }

let run_suite ?(progress = fun _ -> ()) ?(trace = Obs.Trace.null)
    ?(metrics = Obs.Metrics.null) config (suite : Workload.Suite.t) =
  let kernels =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        progress k.Workload.Suite.kernel_name;
        let regions =
          List.mapi
            (fun i region ->
              let name = Printf.sprintf "%s/r%d" k.Workload.Suite.kernel_name i in
              run_region ~trace ~metrics config ~name region)
            k.Workload.Suite.regions
        in
        { kernel = k; regions })
      suite.Workload.Suite.kernels
  in
  { suite; compile_config = config; kernels }

(* [hot_index] comes from workload metadata; an out-of-range index must
   not crash the reporting path, so clamp it into the region list. *)
let hot_region (kr : kernel_report) =
  match kr.regions with
  | [] -> invalid_arg "Compile.hot_region: kernel has no regions"
  | regions ->
      let i = kr.kernel.Workload.Suite.hot_index in
      List.nth regions (max 0 (min (List.length regions - 1) i))

let find_kernel (report : suite_report) (b : Workload.Suite.benchmark) =
  List.find
    (fun (kr : kernel_report) ->
      String.equal kr.kernel.Workload.Suite.kernel_name
        b.Workload.Suite.kernel.Workload.Suite.kernel_name)
    report.kernels
