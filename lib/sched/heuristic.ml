type kind = Critical_path | Last_use_count | Source_order

let all = [ Critical_path; Last_use_count; Source_order ]

let to_string = function
  | Critical_path -> "critical-path"
  | Last_use_count -> "last-use-count"
  | Source_order -> "source-order"

type ctx = { graph : Ddg.Graph.t; cp : Ddg.Critpath.t; rp : Rp_tracker.t }

let make_ctx graph rp = { graph; cp = Ddg.Critpath.compute graph; rp }

let score kind ctx i =
  match kind with
  | Critical_path -> float_of_int (Ddg.Critpath.backward ctx.cp i)
  | Last_use_count ->
      (* Primary: live ranges closed minus opened; secondary: distance to
         the leaves so ties still make progress along long chains. *)
      let closes = Rp_tracker.closes_count ctx.rp i in
      let opens = Rp_tracker.opens_count ctx.rp i in
      (float_of_int (closes - opens) *. 1024.0) +. float_of_int (Ddg.Critpath.backward ctx.cp i)
  | Source_order -> float_of_int (ctx.graph.Ddg.Graph.n - i)

let eta kind ctx i =
  (* Scores can be negative (LUC); shift into a strictly positive range
     with a floor so no candidate gets probability zero. *)
  let s = score kind ctx i in
  1.0 +. Float.max 0.0 (s +. 4096.0) /. 512.0

let best kind ctx = function
  | [] -> invalid_arg "Heuristic.best: empty candidate list"
  | c :: rest ->
      let better i j =
        let si = score kind ctx i and sj = score kind ctx j in
        if si > sj then i else if sj > si then j else min i j
      in
      List.fold_left better c rest
