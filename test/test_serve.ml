(* The compile service as a daemon: framing, the request protocol,
   admission and shedding, deadline-bounded retry, the schedule memo and
   crash-safe persistence. The serve loop's whole contract is "every
   frame answered exactly once, degraded but never wrong", so most tests
   drive a real service instance and assert on the replies. *)

let compile_cfg ?fault_rate ?fault_seed ?compile_budget_ms () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ?fault_rate ?fault_seed
       ?compile_budget_ms ())
    with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
    run_sequential = false;
  }

let serve_cfg ?(queue = 64) ?(inflight = 4) ?(shed = 0.75) ?(retries = 2)
    ?(slack = 4.0) ?state_dir compile =
  {
    (Pipeline.Serve.default_config compile) with
    Pipeline.Serve.queue_capacity = queue;
    max_in_flight = inflight;
    shed_threshold = shed;
    max_retries = retries;
    deadline_slack = slack;
    state_dir;
  }

(* A service plus its reply log, in arrival order. *)
let mk ?metrics cfg =
  let replies = ref [] in
  let srv =
    Pipeline.Serve.create ?metrics ~on_reply:(fun r -> replies := r :: !replies) cfg
  in
  (srv, fun () -> List.rev !replies)

let counter metrics name =
  match Obs.Metrics.get metrics name with
  | Some m -> Obs.Metrics.count m
  | None -> 0

let compiled replies =
  List.filter_map
    (function Pipeline.Serve.Compiled c -> Some c | _ -> None)
    replies

let rejections replies =
  List.filter_map
    (function
      | Pipeline.Serve.Rejected { rej_id; error } -> Some (rej_id, error) | _ -> None)
    replies

let spec_req ?(id = "t0") ?(extra = "") shape size seed =
  Printf.sprintf "op=compile id=%s shape=%s size=%d seed=%d%s" id shape size seed
    extra

let tmp_name prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f

(* --- framing ------------------------------------------------------------- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 300 'q'; "two\nlines" ] in
  let file = Filename.temp_file "frame" ".bin" in
  let oc = open_out_bin file in
  List.iter (Support.Frame.write oc) payloads;
  close_out oc;
  let ic = open_in_bin file in
  List.iter
    (fun expected ->
      match Support.Frame.read ic with
      | Ok (Some got) -> Alcotest.(check string) "payload" expected got
      | Ok None -> Alcotest.fail "premature EOF"
      | Error e -> Alcotest.failf "framing error: %s" (Support.Frame.error_to_string e))
    payloads;
  (match Support.Frame.read ic with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected clean EOF at the frame boundary");
  close_in ic;
  Sys.remove file

let test_frame_truncation_and_limit () =
  let frame = Support.Frame.encode "hello world" in
  (* cut mid-payload: a typed Truncated, not an exception or a hang *)
  let cut = String.sub frame 0 (String.length frame - 4) in
  let file = Filename.temp_file "frame" ".bin" in
  let oc = open_out_bin file in
  output_string oc cut;
  close_out oc;
  let ic = open_in_bin file in
  (match Support.Frame.read ic with
  | Error (Support.Frame.Truncated _) -> ()
  | _ -> Alcotest.fail "expected Truncated on a cut stream");
  close_in ic;
  Sys.remove file;
  (* the same cut through the pure decoder is Need_more (a buffer could
     still grow), while a whole-stream decode calls it truncation *)
  (match Support.Frame.decode cut ~pos:0 with
  | Error `Need_more -> ()
  | _ -> Alcotest.fail "expected Need_more on a partial buffer");
  (match Support.Frame.decode_all cut with
  | [], Some (Support.Frame.Truncated _) -> ()
  | _ -> Alcotest.fail "expected decode_all to report the dangling prefix");
  (* an advertised length beyond the limit is refused before allocation *)
  match Support.Frame.decode ~limit:4 frame ~pos:0 with
  | Error (`Error (Support.Frame.Oversized { length = 11; limit = 4 })) -> ()
  | _ -> Alcotest.fail "expected Oversized against a 4-byte limit"

(* --- blob files ---------------------------------------------------------- *)

let test_blobfile_roundtrip_and_rejection () =
  let path = tmp_name "blob" in
  (match Support.Blobfile.load ~kind:"k" ~version:1 path with
  | Error Support.Blobfile.Missing -> ()
  | _ -> Alcotest.fail "expected Missing before any save");
  let payload = "binary\x00payload\nwith newlines" in
  Support.Blobfile.save ~kind:"k" ~version:1 path payload;
  (match Support.Blobfile.load ~kind:"k" ~version:1 path with
  | Ok got -> Alcotest.(check string) "payload survives" payload got
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Support.Blobfile.error_to_string e));
  (match Support.Blobfile.load ~kind:"other" ~version:1 path with
  | Error (Support.Blobfile.Wrong_kind _) -> ()
  | _ -> Alcotest.fail "expected Wrong_kind");
  (match Support.Blobfile.load ~kind:"k" ~version:2 path with
  | Error (Support.Blobfile.Version_skew { expected = 2; got = 1 }) -> ()
  | _ -> Alcotest.fail "expected Version_skew");
  (* flip one payload bit: the checksum must catch it *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let mangled = Bytes.of_string raw in
  let last = Bytes.length mangled - 1 in
  Bytes.set mangled last (Char.chr (Char.code (Bytes.get mangled last) lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc mangled);
  (match Support.Blobfile.load ~kind:"k" ~version:1 path with
  | Error (Support.Blobfile.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected Corrupt on a flipped bit");
  (* truncate inside the payload *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw - 5)));
  (match Support.Blobfile.load ~kind:"k" ~version:1 path with
  | Error (Support.Blobfile.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected Corrupt on truncation");
  Sys.remove path

(* --- protocol parsing ---------------------------------------------------- *)

let test_parse_commands () =
  (match Pipeline.Serve.parse_request "op=ping id=p1" with
  | Ok (Pipeline.Serve.Ping "p1") -> ()
  | _ -> Alcotest.fail "ping");
  (match Pipeline.Serve.parse_request "op=stats" with
  | Ok (Pipeline.Serve.Stats "-") -> ()
  | _ -> Alcotest.fail "stats defaults its id to -");
  (match Pipeline.Serve.parse_request "op=shutdown id=z" with
  | Ok (Pipeline.Serve.Shutdown "z") -> ()
  | _ -> Alcotest.fail "shutdown");
  (match Pipeline.Serve.parse_request "op=metrics id=m1" with
  | Ok (Pipeline.Serve.Metrics_dump "m1") -> ()
  | _ -> Alcotest.fail "metrics");
  (match Pipeline.Serve.parse_request "op=watch" with
  | Ok (Pipeline.Serve.Watch "-") -> ()
  | _ -> Alcotest.fail "watch defaults its id to -");
  match
    Pipeline.Serve.parse_request
      "op=compile id=c1 shape=transform size=24 seed=3 fault-rate=0.25 budget-ms=2 \
       backend=par"
  with
  | Ok (Pipeline.Serve.Compile r) ->
      Alcotest.(check string) "id" "c1" r.Pipeline.Serve.req_id;
      (match r.Pipeline.Serve.source with
      | Pipeline.Serve.Generated { shape = "transform"; size = 24; seed = 3 } -> ()
      | _ -> Alcotest.fail "generated source");
      Alcotest.(check (option (float 1e-9))) "fault rate" (Some 0.25)
        r.Pipeline.Serve.fault_rate;
      Alcotest.(check (option (float 1e-9))) "budget" (Some 2.0)
        r.Pipeline.Serve.budget_ms
  | _ -> Alcotest.fail "well-formed compile spec"

let test_parse_typed_errors () =
  let code payload =
    match Pipeline.Serve.parse_request payload with
    | Error (_, e) -> Pipeline.Serve.proto_error_code e
    | Ok _ -> Alcotest.failf "accepted hostile payload %S" payload
  in
  Alcotest.(check string) "unknown key" "bad-request" (code "op=compile id=x blorp=1");
  Alcotest.(check string) "duplicate key" "bad-request"
    (code "op=compile id=x id=y shape=scan size=8 seed=1");
  Alcotest.(check string) "no source" "bad-request" (code "op=compile id=x");
  Alcotest.(check string) "both sources" "bad-request"
    (code "op=compile id=x shape=scan size=8 seed=1\nregion r (1 instrs)");
  Alcotest.(check string) "bad value" "bad-request"
    (code "op=compile id=x shape=scan size=banana seed=1");
  Alcotest.(check string) "unknown backend" "unknown-backend"
    (code "op=compile id=x shape=scan size=8 seed=1 backend=nonesuch");
  Alcotest.(check string) "inline region parse error" "bad-region"
    (code "op=compile id=x\nregion broken (1 instrs)\n  %0: not_an_opcode v0 <-");
  (* the error reply still carries the id that could be salvaged *)
  match Pipeline.Serve.parse_request "op=compile id=salvaged blorp=1" with
  | Error (id, _) -> Alcotest.(check string) "salvaged id" "salvaged" id
  | Ok _ -> Alcotest.fail "accepted"

(* --- serve/memo behaviour ------------------------------------------------- *)

let test_serve_and_memo_hit () =
  let srv, replies = mk (serve_cfg (compile_cfg ())) in
  Pipeline.Serve.handle srv (spec_req ~id:"a" "transform" 24 3);
  Pipeline.Serve.handle srv (spec_req ~id:"b" "transform" 24 3);
  ignore (Pipeline.Serve.process srv);
  match compiled (replies ()) with
  | [ first; second ] ->
      Alcotest.(check string) "ids" "a" first.Pipeline.Serve.rep_id;
      (match first.Pipeline.Serve.rep_memo with
      | `Miss -> ()
      | _ -> Alcotest.fail "first compile must miss");
      (match second.Pipeline.Serve.rep_memo with
      | `Hit -> ()
      | _ -> Alcotest.fail "identical request must hit the memo");
      Alcotest.(check string) "replayed digest" first.Pipeline.Serve.rep_digest
        second.Pipeline.Serve.rep_digest;
      Alcotest.(check (float 0.0)) "a hit costs no simulated time" 0.0
        second.Pipeline.Serve.rep_latency_ns;
      let hits, misses, entries = Pipeline.Serve.memo_stats srv in
      Alcotest.(check (list int)) "memo traffic" [ 1; 1; 1 ] [ hits; misses; entries ]
  | rs -> Alcotest.failf "expected 2 compile replies, got %d" (List.length rs)

let test_pool_replies_match_sequential () =
  (* The pooled batch path must be reply-for-reply identical to the
     sequential service: same order, same digests, same memo verdicts —
     including in-batch duplicates, which reply memo=hit either way. *)
  let run pool =
    let replies = ref [] in
    let srv =
      Pipeline.Serve.create ?pool
        ~on_reply:(fun r -> replies := Pipeline.Serve.render_reply r :: !replies)
        (serve_cfg ~inflight:8 (compile_cfg ()))
    in
    List.iteri
      (fun i (shape, size, seed) ->
        Pipeline.Serve.handle srv
          (spec_req ~id:(Printf.sprintf "r%d" i) shape size seed))
      [
        ("transform", 30, 1);
        ("reduction", 24, 2);
        ("transform", 30, 1);
        ("scan", 20, 3);
        ("transform", 30, 1);
      ];
    ignore (Pipeline.Serve.process srv);
    List.rev !replies
  in
  let sequential = run None in
  let pool = Support.Domain_pool.create ~size:3 () in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Support.Domain_pool.shutdown pool)
      (fun () -> run (Some pool))
  in
  Alcotest.(check bool) "got replies" true (List.length sequential > 0);
  Alcotest.(check (list string)) "pooled replies byte-identical to sequential"
    sequential pooled

let test_retry_zero_ships_first_attempt () =
  (* max_retries = 0: even a heavily degraded attempt ships as-is *)
  let metrics = Obs.Metrics.create () in
  let srv, replies =
    mk ~metrics (serve_cfg ~retries:0 (compile_cfg ~fault_rate:0.9 ~fault_seed:5 ()))
  in
  Pipeline.Serve.handle srv (spec_req "stencil" 20 7);
  ignore (Pipeline.Serve.process srv);
  match compiled (replies ()) with
  | [ r ] ->
      Alcotest.(check int) "exactly one attempt" 1 r.Pipeline.Serve.rep_attempts;
      Alcotest.(check int) "no serve retries counted" 0 (counter metrics "serve.retries")
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

let test_deadline_expires_mid_retry () =
  (* A tight budget with slack 1.0 leaves no room for backoff: after a
     degraded first attempt the retry cannot fit the deadline, the
     deadline_exceeded counter ticks, and the best attempt still ships
     a valid order. *)
  let metrics = Obs.Metrics.create () in
  let srv, replies =
    mk ~metrics
      (serve_cfg ~retries:5 ~slack:1.0
         (compile_cfg ~fault_rate:1.0 ~fault_seed:3 ~compile_budget_ms:0.01 ()))
  in
  Pipeline.Serve.handle srv (spec_req "scan" 20 2);
  ignore (Pipeline.Serve.process srv);
  match compiled (replies ()) with
  | [ r ] ->
      Alcotest.(check bool) "deadline was hit" true
        (counter metrics "serve.deadline_exceeded" >= 1);
      Alcotest.(check bool) "fewer attempts than the allowance" true
        (r.Pipeline.Serve.rep_attempts < 6);
      (match Pipeline.Robust.severity r.Pipeline.Serve.rep_outcome with
      | 0 -> Alcotest.fail "a fault-storm compile cannot be clean"
      | _ -> ());
      let region =
        match Workload.Shapes.of_spec ~name:"scan" ~size:20 ~seed:2 with
        | Some r -> r
        | None -> Alcotest.fail "scan shape missing"
      in
      (match
         Sched.Schedule.of_order (Ddg.Graph.build region) r.Pipeline.Serve.rep_order
       with
      | Ok _ -> ()
      | Error v ->
          Alcotest.failf "shipped order invalid: %s"
            (Sched.Schedule.violation_to_string v))
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

let test_shed_past_threshold () =
  let metrics = Obs.Metrics.create () in
  let srv, replies = mk ~metrics (serve_cfg ~queue:4 ~shed:0.5 (compile_cfg ())) in
  Alcotest.(check int) "shed point" 2 (Pipeline.Serve.shed_point srv);
  for i = 0 to 5 do
    Pipeline.Serve.handle srv (spec_req ~id:(Printf.sprintf "s%d" i) "gather" 16 i)
  done;
  (* the first shed_point requests queued; the rest were answered at
     admission with the Critical-Path schedule *)
  let shed, queued =
    List.partition
      (fun (r : Pipeline.Serve.compile_reply) -> r.Pipeline.Serve.rep_memo = `Shed)
      (compiled (replies ()))
  in
  Alcotest.(check int) "requests past the threshold shed" 4 (List.length shed);
  Alcotest.(check int) "nothing compiled yet" 0 (List.length queued);
  List.iter
    (fun (r : Pipeline.Serve.compile_reply) ->
      Alcotest.(check string) "shed replies carry no digest" "-"
        r.Pipeline.Serve.rep_digest;
      (match r.Pipeline.Serve.rep_outcome with
      | Pipeline.Robust.Shed_overload -> ()
      | _ -> Alcotest.fail "shed reply must ledger as Shed_overload");
      let i = int_of_string (String.sub r.Pipeline.Serve.rep_id 1 1) in
      let region = Option.get (Workload.Shapes.of_spec ~name:"gather" ~size:16 ~seed:i) in
      match
        Sched.Schedule.of_order (Ddg.Graph.build region) r.Pipeline.Serve.rep_order
      with
      | Ok _ -> ()
      | Error v ->
          Alcotest.failf "shed order invalid: %s" (Sched.Schedule.violation_to_string v))
    shed;
  Pipeline.Serve.drain srv;
  let tally = Pipeline.Serve.tally srv in
  Alcotest.(check int) "ledger sheds" 4 tally.Pipeline.Robust.shed_overload;
  Alcotest.(check int) "metric sheds" 4 (counter metrics "serve.shed_overload");
  Alcotest.(check int) "every request answered" 6
    (List.length (compiled (replies ())))

let test_drain_refuses_then_stays_quiet () =
  let srv, replies = mk (serve_cfg (compile_cfg ())) in
  Pipeline.Serve.handle srv (spec_req "reduction" 16 1);
  Pipeline.Serve.drain srv;
  (match Pipeline.Serve.state srv with
  | `Drained -> ()
  | _ -> Alcotest.fail "drain must finish the queue and land in Drained");
  (* a late compile is refused with a typed reply; liveness probes
     still answer so a client can see the state *)
  Pipeline.Serve.handle srv (spec_req ~id:"late" "reduction" 16 1);
  Pipeline.Serve.handle srv "op=ping id=still-here";
  Pipeline.Serve.drain srv;
  let rs = replies () in
  (match rejections rs with
  | [ ("late", Pipeline.Serve.Shutting_down) ] -> ()
  | _ -> Alcotest.fail "late request must be refused as shutting-down");
  let byes =
    List.length
      (List.filter (function Pipeline.Serve.Drained _ -> true | _ -> false) rs)
  in
  Alcotest.(check int) "drain is idempotent: one bye" 1 byes;
  Alcotest.(check int) "queued request was served before the bye" 1
    (List.length (compiled rs));
  match List.filter (function Pipeline.Serve.Pong _ -> true | _ -> false) rs with
  | [ Pipeline.Serve.Pong { png_id = "still-here" } ] -> ()
  | _ -> Alcotest.fail "ping must answer even after drain"

(* --- persistence --------------------------------------------------------- *)

let with_state_dir f =
  let dir = Filename.temp_file "serve_state" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_persistence_roundtrip () =
  with_state_dir (fun dir ->
      let cfg = serve_cfg ~state_dir:dir (compile_cfg ()) in
      let srv1, replies1 = mk cfg in
      Pipeline.Serve.handle srv1 (spec_req "matmul" 18 4);
      ignore (Pipeline.Serve.process srv1);
      Pipeline.Serve.drain srv1;
      let original =
        match compiled (replies1 ()) with
        | [ r ] -> r
        | _ -> Alcotest.fail "expected one reply"
      in
      (* a fresh process over the same state dir serves the same request
         from the reloaded memo, digest included *)
      let metrics = Obs.Metrics.create () in
      let srv2, replies2 = mk ~metrics cfg in
      Alcotest.(check bool) "memo entries reloaded" true
        (counter metrics "serve.persist.memo_loaded" >= 1);
      Pipeline.Serve.handle srv2 (spec_req "matmul" 18 4);
      ignore (Pipeline.Serve.process srv2);
      match compiled (replies2 ()) with
      | [ r ] ->
          (match r.Pipeline.Serve.rep_memo with
          | `Hit -> ()
          | _ -> Alcotest.fail "warm restart must hit the persisted memo");
          Alcotest.(check string) "digest survives the restart"
            original.Pipeline.Serve.rep_digest r.Pipeline.Serve.rep_digest
      | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs))

let test_persistence_corruption_starts_cold () =
  with_state_dir (fun dir ->
      let cfg = serve_cfg ~state_dir:dir (compile_cfg ()) in
      let srv1, _ = mk cfg in
      Pipeline.Serve.handle srv1 (spec_req "histogram" 16 9);
      ignore (Pipeline.Serve.process srv1);
      Pipeline.Serve.drain srv1;
      (* truncate one blob and version-skew the other: a restart must
         count the failures and start cold, never raise *)
      let memo = Filename.concat dir "memo.blob" in
      let raw = In_channel.with_open_bin memo In_channel.input_all in
      Out_channel.with_open_bin memo (fun oc ->
          Out_channel.output_string oc (String.sub raw 0 (String.length raw / 2)));
      Support.Blobfile.save ~kind:"serve-analysis" ~version:999
        (Filename.concat dir "analysis.blob")
        "stale payload from some future build";
      let metrics = Obs.Metrics.create () in
      let srv2, replies2 = mk ~metrics cfg in
      Alcotest.(check bool) "failures counted" true
        (counter metrics "serve.persist.load_failed" >= 2);
      Pipeline.Serve.handle srv2 (spec_req "histogram" 16 9);
      ignore (Pipeline.Serve.process srv2);
      match compiled (replies2 ()) with
      | [ r ] -> (
          match r.Pipeline.Serve.rep_memo with
          | `Miss -> ()
          | _ -> Alcotest.fail "corrupt state must mean a cold compile")
      | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs))

(* --- observability verbs and the quality ledger --------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_and_watch_verbs () =
  let metrics = Obs.Metrics.create () in
  let srv, replies = mk ~metrics (serve_cfg (compile_cfg ())) in
  Pipeline.Serve.handle srv (spec_req ~id:"c1" "transform" 20 5);
  ignore (Pipeline.Serve.process srv);
  Pipeline.Serve.handle srv "op=metrics id=m1";
  Pipeline.Serve.handle srv "op=watch id=w1";
  let metrics_replies, watch_replies =
    List.fold_left
      (fun (ms, ws) -> function
        | Pipeline.Serve.Metrics_reply _ as r -> (r :: ms, ws)
        | Pipeline.Serve.Watch_reply _ as r -> (ms, r :: ws)
        | _ -> (ms, ws))
      ([], []) (replies ())
  in
  (match metrics_replies with
  | [ Pipeline.Serve.Metrics_reply { met_id; body } as r ] ->
      Alcotest.(check string) "metrics id echoed" "m1" met_id;
      Alcotest.(check bool) "body is the prometheus exposition" true
        (contains body "# TYPE gpuaco_serve_requests counter");
      let rendered = Pipeline.Serve.render_reply r in
      Alcotest.(check bool) "render is the multi-line exception" true
        (String.length rendered > String.length "metrics id=m1\n"
        && String.sub rendered 0 14 = "metrics id=m1\n")
  | rs -> Alcotest.failf "expected 1 metrics reply, got %d" (List.length rs));
  (match watch_replies with
  | [ Pipeline.Serve.Watch_reply { wat_id; body } as r ] ->
      Alcotest.(check string) "watch id echoed" "w1" wat_id;
      List.iter
        (fun key ->
          if not (List.mem_assoc key body) then
            Alcotest.failf "watch body lacks %s" key)
        [
          "state"; "in-flight"; "memo-hit-rate"; "analysis-hit-rate";
          "latency-p50-ns"; "latency-p99-ns"; "deadline-exceeded"; "steals";
        ];
      Alcotest.(check string) "in-flight is 0 between batches" "0"
        (List.assoc "in-flight" body);
      (* one computed miss fed the latency histogram, so the quantiles
         are live numbers, not placeholders *)
      Alcotest.(check bool) "p50 positive" true
        (float_of_string (List.assoc "latency-p50-ns" body) > 0.0);
      let rendered = Pipeline.Serve.render_reply r in
      Alcotest.(check bool) "watch renders one line" true
        (String.sub rendered 0 12 = "watch id=w1 "
        && not (String.contains rendered '\n'))
  | rs -> Alcotest.failf "expected 1 watch reply, got %d" (List.length rs));
  (* a registry-less service still answers, with the disabled marker *)
  let srv2, replies2 = mk (serve_cfg (compile_cfg ())) in
  Pipeline.Serve.handle srv2 "op=metrics id=m2";
  match
    List.filter_map
      (function Pipeline.Serve.Metrics_reply { body; _ } -> Some body | _ -> None)
      (replies2 ())
  with
  | [ body ] ->
      Alcotest.(check string) "disabled registry" "# metrics disabled\n" body
  | rs -> Alcotest.failf "expected 1 metrics reply, got %d" (List.length rs)

let test_quality_ledger_appends () =
  let file = tmp_name "ledger" in
  let cfg =
    { (serve_cfg (compile_cfg ())) with Pipeline.Serve.quality_ledger = Some file }
  in
  let metrics = Obs.Metrics.create () in
  let srv, replies = mk ~metrics cfg in
  Pipeline.Serve.handle srv (spec_req ~id:"a" "transform" 20 5);
  Pipeline.Serve.handle srv (spec_req ~id:"b" "scan" 16 2);
  (* a memo duplicate replays the reply without recomputing — it must
     not append a second ledger record for the same compile *)
  Pipeline.Serve.handle srv (spec_req ~id:"c" "transform" 20 5);
  ignore (Pipeline.Serve.process srv);
  Alcotest.(check int) "three compile replies" 3 (List.length (compiled (replies ())));
  let records = Pipeline.Quality.load ~file in
  Alcotest.(check int) "one record per computed miss" 2 (List.length records);
  Alcotest.(check int) "writes counted" 2
    (counter metrics "serve.quality.recorded");
  List.iter
    (fun (r : Pipeline.Quality.record) ->
      Alcotest.(check bool) "length at or above the lower bound" true (r.Pipeline.Quality.q_gap >= 0);
      Alcotest.(check bool) "iterations ran" true (r.Pipeline.Quality.q_iterations > 0);
      Alcotest.(check bool) "best reached within the run" true
        (r.Pipeline.Quality.q_iters_to_best <= r.Pipeline.Quality.q_iterations))
    records;
  Sys.remove file

let test_serve_log_threads_request_ids () =
  let log = Obs.Log.create () in
  let replies = ref [] in
  let srv =
    Pipeline.Serve.create ~log
      ~on_reply:(fun r -> replies := r :: !replies)
      (serve_cfg (compile_cfg ()))
  in
  Pipeline.Serve.handle srv (spec_req ~id:"rq7" "transform" 20 5);
  ignore (Pipeline.Serve.process srv);
  Pipeline.Serve.drain srv;
  let events = List.map (fun e -> e.Obs.Log.e_event) (Obs.Log.entries log) in
  List.iter
    (fun ev ->
      if not (List.mem ev events) then
        Alcotest.failf "log lacks a %s entry (got: %s)" ev (String.concat ", " events))
    [ "serve.start"; "serve.admit"; "serve.drain" ];
  (* the compile-layer entries of the miss carry the request id stamped
     by the child logger *)
  let stamped =
    List.filter
      (fun e ->
        List.exists
          (fun (k, v) -> k = "req" && v = Obs.Log.Str "rq7")
          e.Obs.Log.e_fields)
      (Obs.Log.entries log)
  in
  Alcotest.(check bool) "request id threads through the compile" true
    (List.length stamped >= 1)

(* --- property: serving changes nothing ------------------------------------ *)

(* At fault rate zero a served reply is byte-identical — same report
   digest — to a direct Compile.run_region of the same region. Both
   sides run uninstrumented: the digest covers the passes' GC counters,
   so identity requires identical instrumentation (see DESIGN.md). *)
let prop_zero_fault_serve_is_direct =
  QCheck.Test.make ~count:15
    ~name:"zero-fault serve reply is byte-identical to a direct compile"
    (Tu.arb_region ~max_size:25 ())
    (fun region ->
      let compile = compile_cfg () in
      let srv, replies = mk (serve_cfg compile) in
      Pipeline.Serve.handle srv
        ("op=compile id=p\n" ^ Ir.Parse.region_to_wire region);
      ignore (Pipeline.Serve.process srv);
      match compiled (replies ()) with
      | [ r ] ->
          let direct =
            Pipeline.Compile.run_region compile
              ~name:region.Ir.Region.name region
          in
          String.equal r.Pipeline.Serve.rep_digest
            (Pipeline.Report_digest.digest_region direct)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame truncation and limit" `Quick
      test_frame_truncation_and_limit;
    Alcotest.test_case "blobfile roundtrip and rejection" `Quick
      test_blobfile_roundtrip_and_rejection;
    Alcotest.test_case "protocol: commands parse" `Quick test_parse_commands;
    Alcotest.test_case "protocol: hostile payloads are typed errors" `Quick
      test_parse_typed_errors;
    Alcotest.test_case "serve + memo hit replays the digest" `Quick
      test_serve_and_memo_hit;
    Alcotest.test_case "pooled batch replies match sequential byte-for-byte" `Quick
      test_pool_replies_match_sequential;
    Alcotest.test_case "max_retries=0 ships the first attempt" `Quick
      test_retry_zero_ships_first_attempt;
    Alcotest.test_case "deadline expires mid-retry" `Quick
      test_deadline_expires_mid_retry;
    Alcotest.test_case "overload sheds to the Critical-Path schedule" `Quick
      test_shed_past_threshold;
    Alcotest.test_case "drain refuses late work, answers probes" `Quick
      test_drain_refuses_then_stays_quiet;
    Alcotest.test_case "persistence roundtrip across restart" `Quick
      test_persistence_roundtrip;
    Alcotest.test_case "corrupt/skewed state starts cold" `Quick
      test_persistence_corruption_starts_cold;
    Alcotest.test_case "metrics and watch verbs" `Quick test_metrics_and_watch_verbs;
    Alcotest.test_case "quality ledger appends per computed miss" `Quick
      test_quality_ledger_appends;
    Alcotest.test_case "log threads request ids through the compile" `Quick
      test_serve_log_threads_request_ids;
  ]
  @ Tu.qtests [ prop_zero_fault_serve_is_direct ]
