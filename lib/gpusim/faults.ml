(* The tally record lives in the engine layer (every backend's pass
   stats carry one); the equality keeps field accesses and literals in
   this library compiling unchanged. *)
type counts = Engine.Types.fault_counts = {
  lane_faults : int;
  wavefront_hangs : int;
  reduction_drops : int;
  mem_faults : int;
}

let zero = Engine.Types.fault_counts_zero

let add a b =
  {
    lane_faults = a.lane_faults + b.lane_faults;
    wavefront_hangs = a.wavefront_hangs + b.wavefront_hangs;
    reduction_drops = a.reduction_drops + b.reduction_drops;
    mem_faults = a.mem_faults + b.mem_faults;
  }

let sub a b =
  {
    lane_faults = a.lane_faults - b.lane_faults;
    wavefront_hangs = a.wavefront_hangs - b.wavefront_hangs;
    reduction_drops = a.reduction_drops - b.reduction_drops;
    mem_faults = a.mem_faults - b.mem_faults;
  }

let total c = c.lane_faults + c.wavefront_hangs + c.reduction_drops + c.mem_faults

let counts_to_string c =
  Printf.sprintf "lane:%d hang:%d drop:%d mem:%d" c.lane_faults c.wavefront_hangs
    c.reduction_drops c.mem_faults

type t = {
  rates : Config.fault_rates;
  rng : Support.Rng.t;
  mutable injected : counts;
}

let create ?(seed = 0) (rates : Config.fault_rates) =
  { rates; rng = Support.Rng.create seed; injected = zero }

(* The disabled injector never draws and never counts, so sharing one
   global value is safe. *)
let disabled = create Config.no_faults

let enabled t = Config.faults_enabled t.rates

let counts t = t.injected

(* Each fire test draws from the injector's private stream only when its
   class is armed: a zero-rate class costs nothing and — crucially —
   consumes no randomness, so runs with all rates zero are byte-identical
   to runs without the fault model. *)
let fire t rate bump =
  rate > 0.0
  && Support.Rng.bool t.rng rate
  &&
  (t.injected <- bump t.injected;
   true)

let lane_fault t =
  fire t t.rates.Config.lane_fault_rate (fun c -> { c with lane_faults = c.lane_faults + 1 })

let wavefront_hang t =
  fire t t.rates.Config.wavefront_hang_rate (fun c ->
      { c with wavefront_hangs = c.wavefront_hangs + 1 })

let reduction_drop t =
  fire t t.rates.Config.reduction_drop_rate (fun c ->
      { c with reduction_drops = c.reduction_drops + 1 })

let mem_fault t =
  fire t t.rates.Config.mem_fault_rate (fun c -> { c with mem_faults = c.mem_faults + 1 })

let pick t bound = if bound <= 0 then 0 else Support.Rng.int t.rng bound

(* Simulated time between a wavefront hanging and the watchdog noticing
   and recovering it — one watchdog polling interval. *)
let hang_penalty_ns = 50_000.0

(* Base of the exponential retry backoff charged to simulated time when a
   faulted iteration is re-run with a reseeded RNG. *)
let retry_backoff_ns = 10_000.0
