(* Name-keyed backend table. All operations take one mutex so
   registration and lookup are safe from concurrent domain workers (the
   executor's region jobs call [Pipeline.Compile.ensure_backends] and
   [find_exn] from every domain). The lock is uncontended outside the
   executor and never held across backend code. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let table : (string, Backend.t) Hashtbl.t = Hashtbl.create 8

(* Registration order, kept separately so [names] lists backends in the
   order they were installed (re-registering a name keeps its slot). *)
let order : string list ref = ref []

let register (b : Backend.t) =
  let name = Backend.name b in
  locked (fun () ->
      if not (Hashtbl.mem table name) then order := !order @ [ name ];
      Hashtbl.replace table name b)

let find name = locked (fun () -> Hashtbl.find_opt table name)

let find_exn name =
  match find name with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Engine.Registry: unknown backend %S (registered: %s)" name
           (String.concat ", " (locked (fun () -> !order))))

let names () = locked (fun () -> !order)
let mem name = locked (fun () -> Hashtbl.mem table name)
