(* The batched-arena refactor's safety net.

   1. Unit tests of [Support.Arena] (bump offsets, exact capacities,
      exhaustion).
   2. qcheck differential: the arena-backed [Aco.Ant] stepped through
      [step_hot] must be byte-identical to [Ant_ref] (the original
      list-based implementation) on random regions — same events, same
      RNG consumption, same constructed order — across both passes,
      heuristics, forced exploration modes, ready-list limits and
      mid-construction kills.
   3. qcheck differential at the wavefront level: a reference lockstep
      loop built from [Ant_ref] and the retained list-level cost models
      must reproduce [Gpusim.Wavefront.run_iteration] exactly, including
      under nonzero injected-fault rates (twin [Faults] instances with
      equal seeds replay the same fault stream). *)

let arena_offsets () =
  let a = Support.Arena.create ~ints:10 ~floats:4 in
  Alcotest.(check int) "first int base" 0 (Support.Arena.alloc_ints a 6);
  Alcotest.(check int) "second int base" 6 (Support.Arena.alloc_ints a 4);
  Alcotest.(check int) "ints used" 10 (Support.Arena.int_used a);
  Alcotest.(check int) "first float base" 0 (Support.Arena.alloc_floats a 4);
  Alcotest.(check int) "floats used" 4 (Support.Arena.float_used a);
  Alcotest.(check int) "int capacity" 10 (Support.Arena.int_capacity a);
  Alcotest.(check int) "float capacity" 4 (Support.Arena.float_capacity a);
  Alcotest.(check bool) "zero-filled ints" true
    (Array.for_all (fun x -> x = 0) (Support.Arena.ints a));
  Alcotest.(check bool) "zero-filled floats" true
    (Array.for_all (fun x -> x = 0.0) (Support.Arena.floats a))

let arena_exhaustion () =
  let a = Support.Arena.create ~ints:4 ~floats:2 in
  let _ = Support.Arena.alloc_ints a 3 in
  Alcotest.(check bool) "int overflow raises" true
    (try
       ignore (Support.Arena.alloc_ints a 2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "float overflow raises" true
    (try
       ignore (Support.Arena.alloc_floats a 3);
       false
     with Invalid_argument _ -> true);
  (* a fitting request still succeeds after a refused one *)
  Alcotest.(check int) "remaining int" 3 (Support.Arena.alloc_ints a 1)

(* --- single-ant differential -------------------------------------------- *)

let rank_name = function
  | 0 -> "exploit"
  | 1 -> "explore"
  | 2 -> "mandatory-stall"
  | 3 -> "optional-stall"
  | _ -> "death"

(* Step the arena ant and the reference ant in lockstep with twin RNGs
   and assert every observable agrees. [kill_at] kills both mid-flight
   (the wavefront quarantine path); [initial] = 0.0 exercises the
   degenerate roulette. *)
let lockstep_compare ?(initial = 1.0) ?kill_at ~force_explore ~ready_limit ~mode ~heuristic
    graph params seed =
  let shared = Aco.Ant.prepare_shared graph in
  let ints, floats = Aco.Ant.arena_demand shared in
  let arena = Support.Arena.create ~ints ~floats in
  let ant = Aco.Ant.create ~shared ~arena graph params in
  let ant_ref = Ant_ref.create graph params in
  let n = graph.Ddg.Graph.n in
  let pheromone = Aco.Pheromone.create ~n ~initial in
  (* a non-uniform trail so the wheel has structure *)
  if initial > 0.0 then Aco.Pheromone.deposit_path pheromone (Ddg.Topo.order graph) 0.75;
  let rng_a = Support.Rng.create seed and rng_b = Support.Rng.create seed in
  Aco.Ant.start ant ~rng:rng_a ~heuristic ~allow_optional_stalls:true mode;
  Ant_ref.start ant_ref ~rng:rng_b ~heuristic ~allow_optional_stalls:true mode;
  let steps = ref 0 in
  while Aco.Ant.status ant = Aco.Ant.Active do
    incr steps;
    if kill_at = Some !steps then begin
      Aco.Ant.kill ant;
      Ant_ref.kill ant_ref
    end
    else begin
      let fe = match force_explore with None -> -1 | Some true -> 1 | Some false -> 0 in
      let rl = match ready_limit with None -> 0 | Some k -> k in
      Aco.Ant.step_hot ant ~pheromone ~force_explore:fe ~ready_limit:rl;
      let ev = Ant_ref.step ?force_explore ?ready_limit ant_ref ~pheromone in
      let rank = Aco.Ant.last_rank ant and ref_rank = Ant_ref.rank_of_op ev.Ant_ref.op in
      if rank <> ref_rank then
        Alcotest.failf "step %d: rank %s (arena) vs %s (ref)" !steps (rank_name rank)
          (rank_name ref_rank);
      Alcotest.(check int) "ready_scanned" ev.Ant_ref.ready_scanned (Aco.Ant.last_scanned ant);
      Alcotest.(check int) "succs_updated" ev.Ant_ref.succs_updated (Aco.Ant.last_succs ant)
    end;
    Alcotest.(check bool) "status agrees" true
      (Aco.Ant.status ant = Ant_ref.status ant_ref);
    Alcotest.(check int) "ready_count agrees" (Ant_ref.ready_count ant_ref)
      (Aco.Ant.ready_count ant)
  done;
  Alcotest.(check bool) "final status agrees" true
    (Aco.Ant.status ant = Ant_ref.status ant_ref);
  Alcotest.(check (array int)) "order" (Ant_ref.order ant_ref) (Aco.Ant.order ant);
  Alcotest.(check int) "length" (Ant_ref.length ant_ref) (Aco.Ant.length ant);
  Alcotest.(check int) "optional stalls" (Ant_ref.optional_stalls ant_ref)
    (Aco.Ant.optional_stalls ant);
  Alcotest.(check int) "work" (Ant_ref.work ant_ref) (Aco.Ant.work ant);
  let pv, ps = Aco.Ant.rp_peaks ant and rv, rs = Ant_ref.rp_peaks ant_ref in
  Alcotest.(check (pair int int)) "rp peaks" (rv, rs) (pv, ps);
  (* the two RNGs must have consumed the same number of draws *)
  Alcotest.(check int64) "rng stream position" (Support.Rng.int64 rng_b)
    (Support.Rng.int64 rng_a)

let tight_targets graph =
  (* targets at the heuristic schedule's peaks force the stall/death
     machinery to fire on most regions *)
  let s = Sched.List_scheduler.run graph Sched.Heuristic.Critical_path in
  let peaks = Sched.Rp_tracker.naive_peaks graph (Sched.Schedule.order s) in
  Aco.Ant.Ilp_pass
    { target_vgpr = max 1 (peaks Ir.Reg.Vgpr - 1); target_sgpr = max 1 (peaks Ir.Reg.Sgpr) }

let ant_differential =
  QCheck.Test.make ~count:25 ~name:"arena ant byte-identical to seed reference"
    (QCheck.pair (Tu.arb_graph ~max_size:30 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let modes =
        [
          Aco.Ant.Rp_pass;
          Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 };
          tight_targets graph;
        ]
      in
      let heuristics =
        [ Sched.Heuristic.Critical_path; Sched.Heuristic.Last_use_count;
          Sched.Heuristic.Source_order ]
      in
      List.iter
        (fun mode ->
          List.iter
            (fun heuristic ->
              lockstep_compare ~force_explore:None ~ready_limit:None ~mode ~heuristic graph
                params seed;
              lockstep_compare ~force_explore:(Some true) ~ready_limit:(Some 2) ~mode
                ~heuristic graph params (seed + 1);
              lockstep_compare ~force_explore:(Some false) ~ready_limit:None ~mode ~heuristic
                graph params (seed + 2);
              lockstep_compare ~kill_at:(1 + (seed mod 11)) ~force_explore:None
                ~ready_limit:None ~mode ~heuristic graph params (seed + 3))
            heuristics)
        modes;
      (* degenerate roulette: zero trail everywhere, always explore *)
      lockstep_compare ~initial:0.0 ~force_explore:(Some true) ~ready_limit:None
        ~mode:Aco.Ant.Rp_pass ~heuristic:Sched.Heuristic.Critical_path graph params seed;
      true)

(* --- wavefront-level differential --------------------------------------- *)

type ref_outcome = {
  r_time_ns : float;
  r_work : int;
  r_serialized : int;
  r_single : int;
  r_steps : int;
  r_ant_steps : int;
  r_selections : int;
  r_orders : int array list;
  r_hung : bool;
  r_quarantined : int;
  r_mem_faults : int;
}

(* Reference lockstep loop: [Gpusim.Wavefront.run_iteration] re-derived
   from [Ant_ref] and the list-level cost models, consuming [rng] and
   [faults] in exactly the production order (hang coin, lane seed
   splits, fault schedule, one exploration coin per step, one mem-fault
   coin per step with transactions). *)
let ref_run_iteration config ~faults ~ants ~rng ~mode ~pheromone ~heuristic =
  let opts = config.Gpusim.Config.opts in
  if Gpusim.Faults.enabled faults && Gpusim.Faults.wavefront_hang faults then
    {
      r_time_ns = Gpusim.Faults.hang_penalty_ns;
      r_work = 0;
      r_serialized = 0;
      r_single = 0;
      r_steps = 0;
      r_ant_steps = 0;
      r_selections = 0;
      r_orders = [];
      r_hung = true;
      r_quarantined = 0;
      r_mem_faults = 0;
    }
  else begin
    Array.iter
      (fun a ->
        Ant_ref.start a ~rng:(Support.Rng.split rng) ~heuristic ~allow_optional_stalls:true
          mode)
      ants;
    let lanes = Array.length ants in
    let faults_on = Gpusim.Faults.enabled faults in
    let fault_at = Array.make lanes (-1) in
    if faults_on then begin
      let n = Aco.Pheromone.size pheromone in
      for i = 0 to lanes - 1 do
        fault_at.(i) <-
          (if Gpusim.Faults.lane_fault faults then
             1 + Gpusim.Faults.pick faults (max 1 n)
           else -1)
      done
    end;
    let quarantined = ref 0 and mem_faults = ref 0 in
    let time = ref 0.0 and serialized = ref 0 and single = ref 0 in
    let steps = ref 0 and ant_steps = ref 0 and selections = ref 0 in
    let any_active () =
      Array.exists (fun a -> Ant_ref.status a = Aco.Ant.Active) ants
    in
    while any_active () do
      incr steps;
      if faults_on then
        Array.iteri
          (fun i a ->
            if fault_at.(i) = !steps && Ant_ref.status a = Aco.Ant.Active then begin
              Ant_ref.kill a;
              incr quarantined
            end)
          ants;
      let force_explore =
        if opts.Gpusim.Config.wavefront_level_explore then
          Some (not (Support.Rng.bool rng Tu.test_params.Aco.Params.q0))
        else None
      in
      let ready_limit =
        match opts.Gpusim.Config.ready_list_limiting with
        | `Off -> None
        | (`Min | `Mid) as m ->
            let mn = ref max_int and mx = ref 0 in
            Array.iter
              (fun a ->
                if Ant_ref.status a = Aco.Ant.Active then begin
                  let c = Ant_ref.ready_count a in
                  if c < !mn then mn := c;
                  if c > !mx then mx := c
                end)
              ants;
            if !mn = max_int then None
            else Some (max 1 (match m with `Min -> !mn | `Mid -> (!mn + !mx + 1) / 2))
      in
      let events = ref [] in
      Array.iter
        (fun a ->
          if Ant_ref.status a = Aco.Ant.Active then begin
            let ev = Ant_ref.step ?force_explore ?ready_limit a ~pheromone in
            if Ant_ref.rank_of_op ev.Ant_ref.op <= 1 then incr selections;
            events :=
              {
                Aco.Ant.op =
                  (match ev.Ant_ref.op with
                  | Ant_ref.Selected { instr; explored } ->
                      Aco.Ant.Selected { instr; explored }
                  | Ant_ref.Mandatory_stall -> Aco.Ant.Mandatory_stall
                  | Ant_ref.Optional_stall -> Aco.Ant.Optional_stall
                  | Ant_ref.Died -> Aco.Ant.Died);
                ready_scanned = ev.Ant_ref.ready_scanned;
                succs_updated = ev.Ant_ref.succs_updated;
              }
              :: !events
          end)
        ants;
      let events = List.rev !events in
      ant_steps := !ant_steps + List.length events;
      let charge = Gpusim.Divergence.step_charge events in
      let transactions =
        Gpusim.Mem_model.step_transactions config
          ~reads_per_lane:(List.map Gpusim.Divergence.lane_reads events)
      in
      let transactions =
        if faults_on && transactions > 0 && Gpusim.Faults.mem_fault faults then begin
          incr mem_faults;
          2 * transactions
        end
        else transactions
      in
      time :=
        !time
        +. (float_of_int charge.Gpusim.Divergence.serialized_ops
           *. config.Gpusim.Config.gpu_ns_per_op)
        +. (float_of_int transactions *. config.Gpusim.Config.mem_transaction_ns);
      serialized := !serialized + charge.Gpusim.Divergence.serialized_ops;
      single := !single + charge.Gpusim.Divergence.max_single_path_ops;
      if
        opts.Gpusim.Config.early_wavefront_termination
        && Array.exists (fun a -> Ant_ref.status a = Aco.Ant.Finished) ants
      then
        Array.iter
          (fun a -> if Ant_ref.status a = Aco.Ant.Active then Ant_ref.kill a)
          ants
    done;
    let work = Array.fold_left (fun acc a -> acc + Ant_ref.work a) 0 ants in
    let orders =
      Array.fold_left
        (fun acc a -> if Ant_ref.status a = Aco.Ant.Finished then Ant_ref.order a :: acc else acc)
        [] ants
      |> List.rev
    in
    {
      r_time_ns = !time;
      r_work = work;
      r_serialized = !serialized;
      r_single = !single;
      r_steps = !steps;
      r_ant_steps = !ant_steps;
      r_selections = !selections;
      r_orders = orders;
      r_hung = false;
      r_quarantined = !quarantined;
      r_mem_faults = !mem_faults;
    }
  end

let wavefront_differential =
  QCheck.Test.make ~count:12 ~name:"wavefront iteration matches reference loop (with faults)"
    (QCheck.pair (Tu.arb_graph ~max_size:25 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let config = Tu.test_gpu in
      let w =
        Gpusim.Wavefront.create config graph params
          ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
      in
      let lanes = Gpusim.Wavefront.lanes w in
      let ref_ants = Array.init lanes (fun _ -> Ant_ref.create graph params) in
      let pheromone = Aco.Pheromone.create ~n:graph.Ddg.Graph.n ~initial:1.0 in
      Aco.Pheromone.deposit_path pheromone (Ddg.Topo.order graph) 0.5;
      List.iter
        (fun (fault_rate, mode) ->
          let mk_faults () =
            if fault_rate = 0.0 then Gpusim.Faults.disabled
            else
              Gpusim.Faults.create ~seed:(seed + 17)
                (Gpusim.Config.uniform_faults fault_rate)
          in
          let rng_a = Support.Rng.create seed and rng_b = Support.Rng.create seed in
          let o =
            Gpusim.Wavefront.run_iteration ~faults:(mk_faults ()) w ~rng:rng_a ~mode
              ~pheromone
          in
          let r =
            ref_run_iteration config ~faults:(mk_faults ()) ~ants:ref_ants ~rng:rng_b
              ~mode ~pheromone ~heuristic:Sched.Heuristic.Critical_path
          in
          Alcotest.(check bool) "hung" r.r_hung o.Gpusim.Wavefront.hung;
          Alcotest.(check int) "steps" r.r_steps o.Gpusim.Wavefront.steps;
          Alcotest.(check int) "ant_steps" r.r_ant_steps o.Gpusim.Wavefront.ant_steps;
          Alcotest.(check int) "selections" r.r_selections o.Gpusim.Wavefront.selections;
          Alcotest.(check int) "serialized" r.r_serialized
            o.Gpusim.Wavefront.serialized_ops;
          Alcotest.(check int) "single-path" r.r_single
            o.Gpusim.Wavefront.single_path_ops;
          Alcotest.(check int) "work" r.r_work o.Gpusim.Wavefront.work;
          Alcotest.(check int) "quarantined" r.r_quarantined
            o.Gpusim.Wavefront.quarantined;
          Alcotest.(check int) "mem faults" r.r_mem_faults o.Gpusim.Wavefront.mem_faults;
          Alcotest.(check (float 0.0)) "time bit-identical" r.r_time_ns
            o.Gpusim.Wavefront.time_ns;
          let orders = List.map Aco.Ant.order o.Gpusim.Wavefront.finished in
          Alcotest.(check (list (array int))) "finished orders" r.r_orders orders)
        [
          (0.0, Aco.Ant.Rp_pass);
          (0.0, Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 });
          (0.15, Aco.Ant.Rp_pass);
          (0.15, tight_targets graph);
        ];
      true)

let wavefront_determinism =
  QCheck.Test.make ~count:10 ~name:"wavefront iteration deterministic under faults"
    (QCheck.pair (Tu.arb_graph ~max_size:25 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let config = Tu.test_gpu in
      let run () =
        let w =
          Gpusim.Wavefront.create config graph params
            ~heuristic:Sched.Heuristic.Last_use_count ~allow_optional_stalls:true
        in
        let faults =
          Gpusim.Faults.create ~seed:(seed + 5) (Gpusim.Config.uniform_faults 0.2)
        in
        let rng = Support.Rng.create seed in
        let pheromone = Aco.Pheromone.create ~n:graph.Ddg.Graph.n ~initial:1.0 in
        let o = Gpusim.Wavefront.run_iteration ~faults w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone in
        ( o.Gpusim.Wavefront.time_ns,
          o.Gpusim.Wavefront.steps,
          o.Gpusim.Wavefront.quarantined,
          o.Gpusim.Wavefront.mem_faults,
          List.map Aco.Ant.order o.Gpusim.Wavefront.finished )
      in
      run () = run ())

let suite =
  [
    ("arena offsets", `Quick, arena_offsets);
    ("arena exhaustion", `Quick, arena_exhaustion);
  ]
  @ Tu.qtests [ ant_differential; wavefront_differential; wavefront_determinism ]
