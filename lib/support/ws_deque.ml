(* Fixed-population Chase-Lev work-stealing deque over int items.

   The executor's use is deliberately narrower than a general deque: the
   whole population is loaded at [create] and nothing is ever pushed
   afterwards, so there is no growth path and no bottom-publication race
   on the buffer — the buffer is immutable once workers start. The only
   contended state is the two cursors:

     top    — advanced by thieves (CAS) and by the owner when it races a
              thief for the last element
     bottom — decremented by the owner only

   OCaml atomics are sequentially consistent, so the classic Chase-Lev
   fence discipline is implied rather than spelled out. The owner pops
   from the bottom (the high indices) and thieves steal from the top
   (the low indices); the executor loads each deque in ascending job
   size, so the owner always works on its biggest remaining job while
   thieves relieve it of its smallest — dynamic LPT, the antidote to one
   giant region stalling a statically chunked domain. *)

type t = { buf : int array; top : int Atomic.t; bottom : int Atomic.t }

type steal = Stolen of int | Lost | Empty

let create items =
  { buf = Array.copy items; top = Atomic.make 0; bottom = Atomic.make (Array.length items) }

let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let take t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* deque was already empty; undo the decrement *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then Some t.buf.(b)
  else begin
    (* last element: race any thief for it through [top] *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some t.buf.(b) else None
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b <= tp then Empty
  else
    let x = t.buf.(tp) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Stolen x else Lost
