(* The batched-arena refactor's safety net.

   1. Unit tests of [Support.Arena] (bump offsets, exact capacities,
      exhaustion).
   2. qcheck differential: the arena-backed [Aco.Ant] stepped through
      [step_hot] must be byte-identical to [Ant_ref] (the original
      list-based implementation) on random regions — same events, same
      RNG consumption, same constructed order — across both passes,
      heuristics, forced exploration modes, ready-list limits and
      mid-construction kills.
   3. qcheck differential at the wavefront level: a reference lockstep
      loop built from [Ant_ref] and the retained list-level cost models
      must reproduce [Gpusim.Wavefront.run_iteration] exactly, including
      under nonzero injected-fault rates (twin [Faults] instances with
      equal seeds replay the same fault stream). *)

let arena_offsets () =
  let a = Support.Arena.create ~ints:10 ~floats:4 in
  Alcotest.(check int) "first int base" 0 (Support.Arena.alloc_ints a 6);
  Alcotest.(check int) "second int base" 6 (Support.Arena.alloc_ints a 4);
  Alcotest.(check int) "ints used" 10 (Support.Arena.int_used a);
  Alcotest.(check int) "first float base" 0 (Support.Arena.alloc_floats a 4);
  Alcotest.(check int) "floats used" 4 (Support.Arena.float_used a);
  Alcotest.(check int) "int capacity" 10 (Support.Arena.int_capacity a);
  Alcotest.(check int) "float capacity" 4 (Support.Arena.float_capacity a);
  Alcotest.(check bool) "zero-filled ints" true
    (Array.for_all (fun x -> x = 0) (Support.Arena.ints a));
  Alcotest.(check bool) "zero-filled floats" true
    (Array.for_all (fun x -> x = 0.0) (Support.Arena.floats a))

let arena_exhaustion () =
  let a = Support.Arena.create ~ints:4 ~floats:2 in
  let _ = Support.Arena.alloc_ints a 3 in
  Alcotest.(check bool) "int overflow raises" true
    (try
       ignore (Support.Arena.alloc_ints a 2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "float overflow raises" true
    (try
       ignore (Support.Arena.alloc_floats a 3);
       false
     with Invalid_argument _ -> true);
  (* a fitting request still succeeds after a refused one *)
  Alcotest.(check int) "remaining int" 3 (Support.Arena.alloc_ints a 1)

(* --- single-ant differential -------------------------------------------- *)

let rank_name = function
  | 0 -> "exploit"
  | 1 -> "explore"
  | 2 -> "mandatory-stall"
  | 3 -> "optional-stall"
  | _ -> "death"

(* Step the arena ant and the reference ant in lockstep with twin RNGs
   and assert every observable agrees. [kill_at] kills both mid-flight
   (the wavefront quarantine path); [initial] = 0.0 exercises the
   degenerate roulette. *)
let lockstep_compare ?(initial = 1.0) ?kill_at ~force_explore ~ready_limit ~mode ~heuristic
    graph params seed =
  let shared = Aco.Ant.prepare_shared graph in
  let ints, floats = Aco.Ant.arena_demand shared in
  let arena = Support.Arena.create ~ints ~floats in
  let ant = Aco.Ant.create ~shared ~arena graph params in
  let ant_ref = Ant_ref.create graph params in
  let n = graph.Ddg.Graph.n in
  let pheromone = Aco.Pheromone.create ~n ~initial in
  (* a non-uniform trail so the wheel has structure *)
  if initial > 0.0 then Aco.Pheromone.deposit_path pheromone (Ddg.Topo.order graph) 0.75;
  let rng_a = Support.Rng.create seed and rng_b = Support.Rng.create seed in
  Aco.Ant.start ant ~rng:rng_a ~heuristic ~allow_optional_stalls:true mode;
  Ant_ref.start ant_ref ~rng:rng_b ~heuristic ~allow_optional_stalls:true mode;
  let steps = ref 0 in
  while Aco.Ant.status ant = Aco.Ant.Active do
    incr steps;
    if kill_at = Some !steps then begin
      Aco.Ant.kill ant;
      Ant_ref.kill ant_ref
    end
    else begin
      let fe = match force_explore with None -> -1 | Some true -> 1 | Some false -> 0 in
      let rl = match ready_limit with None -> 0 | Some k -> k in
      Aco.Ant.step_hot ant ~pheromone ~force_explore:fe ~ready_limit:rl;
      let ev = Ant_ref.step ?force_explore ?ready_limit ant_ref ~pheromone in
      let rank = Aco.Ant.last_rank ant and ref_rank = Ant_ref.rank_of_op ev.Ant_ref.op in
      if rank <> ref_rank then
        Alcotest.failf "step %d: rank %s (arena) vs %s (ref)" !steps (rank_name rank)
          (rank_name ref_rank);
      Alcotest.(check int) "ready_scanned" ev.Ant_ref.ready_scanned (Aco.Ant.last_scanned ant);
      Alcotest.(check int) "succs_updated" ev.Ant_ref.succs_updated (Aco.Ant.last_succs ant)
    end;
    Alcotest.(check bool) "status agrees" true
      (Aco.Ant.status ant = Ant_ref.status ant_ref);
    Alcotest.(check int) "ready_count agrees" (Ant_ref.ready_count ant_ref)
      (Aco.Ant.ready_count ant)
  done;
  Alcotest.(check bool) "final status agrees" true
    (Aco.Ant.status ant = Ant_ref.status ant_ref);
  Alcotest.(check (array int)) "order" (Ant_ref.order ant_ref) (Aco.Ant.order ant);
  Alcotest.(check int) "length" (Ant_ref.length ant_ref) (Aco.Ant.length ant);
  Alcotest.(check int) "optional stalls" (Ant_ref.optional_stalls ant_ref)
    (Aco.Ant.optional_stalls ant);
  Alcotest.(check int) "work" (Ant_ref.work ant_ref) (Aco.Ant.work ant);
  let pv, ps = Aco.Ant.rp_peaks ant and rv, rs = Ant_ref.rp_peaks ant_ref in
  Alcotest.(check (pair int int)) "rp peaks" (rv, rs) (pv, ps);
  (* the two RNGs must have consumed the same number of draws *)
  Alcotest.(check int64) "rng stream position" (Support.Rng.int64 rng_b)
    (Support.Rng.int64 rng_a)

let tight_targets graph =
  (* targets at the heuristic schedule's peaks force the stall/death
     machinery to fire on most regions *)
  let s = Sched.List_scheduler.run graph Sched.Heuristic.Critical_path in
  let peaks = Sched.Rp_tracker.naive_peaks graph (Sched.Schedule.order s) in
  Aco.Ant.Ilp_pass
    { target_vgpr = max 1 (peaks Ir.Reg.Vgpr - 1); target_sgpr = max 1 (peaks Ir.Reg.Sgpr) }

let ant_differential =
  QCheck.Test.make ~count:25 ~name:"arena ant byte-identical to seed reference"
    (QCheck.pair (Tu.arb_graph ~max_size:30 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let modes =
        [
          Aco.Ant.Rp_pass;
          Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 };
          tight_targets graph;
        ]
      in
      let heuristics =
        [ Sched.Heuristic.Critical_path; Sched.Heuristic.Last_use_count;
          Sched.Heuristic.Source_order ]
      in
      List.iter
        (fun mode ->
          List.iter
            (fun heuristic ->
              lockstep_compare ~force_explore:None ~ready_limit:None ~mode ~heuristic graph
                params seed;
              lockstep_compare ~force_explore:(Some true) ~ready_limit:(Some 2) ~mode
                ~heuristic graph params (seed + 1);
              lockstep_compare ~force_explore:(Some false) ~ready_limit:None ~mode ~heuristic
                graph params (seed + 2);
              lockstep_compare ~kill_at:(1 + (seed mod 11)) ~force_explore:None
                ~ready_limit:None ~mode ~heuristic graph params (seed + 3))
            heuristics)
        modes;
      (* degenerate roulette: zero trail everywhere, always explore *)
      lockstep_compare ~initial:0.0 ~force_explore:(Some true) ~ready_limit:None
        ~mode:Aco.Ant.Rp_pass ~heuristic:Sched.Heuristic.Critical_path graph params seed;
      true)

(* --- wavefront-level differential --------------------------------------- *)

type ref_outcome = {
  r_time_ns : float;
  r_work : int;
  r_serialized : int;
  r_single : int;
  r_steps : int;
  r_ant_steps : int;
  r_selections : int;
  r_orders : int array list;
  r_hung : bool;
  r_quarantined : int;
  r_mem_faults : int;
}

(* Reference lockstep loop: [Gpusim.Wavefront.run_iteration] re-derived
   from [Ant_ref] and the list-level cost models, consuming [rng] and
   [faults] in exactly the production order (hang coin, lane seed
   splits, fault schedule, one exploration coin per step, one mem-fault
   coin per step with transactions). *)
let ref_run_iteration config ~faults ~ants ~rng ~mode ~pheromone ~heuristic =
  let opts = config.Gpusim.Config.opts in
  if Gpusim.Faults.enabled faults && Gpusim.Faults.wavefront_hang faults then
    {
      r_time_ns = Gpusim.Faults.hang_penalty_ns;
      r_work = 0;
      r_serialized = 0;
      r_single = 0;
      r_steps = 0;
      r_ant_steps = 0;
      r_selections = 0;
      r_orders = [];
      r_hung = true;
      r_quarantined = 0;
      r_mem_faults = 0;
    }
  else begin
    Array.iter
      (fun a ->
        Ant_ref.start a ~rng:(Support.Rng.split rng) ~heuristic ~allow_optional_stalls:true
          mode)
      ants;
    let lanes = Array.length ants in
    let faults_on = Gpusim.Faults.enabled faults in
    let fault_at = Array.make lanes (-1) in
    if faults_on then begin
      let n = Aco.Pheromone.size pheromone in
      for i = 0 to lanes - 1 do
        fault_at.(i) <-
          (if Gpusim.Faults.lane_fault faults then
             1 + Gpusim.Faults.pick faults (max 1 n)
           else -1)
      done
    end;
    let quarantined = ref 0 and mem_faults = ref 0 in
    let time = ref 0.0 and serialized = ref 0 and single = ref 0 in
    let steps = ref 0 and ant_steps = ref 0 and selections = ref 0 in
    let any_active () =
      Array.exists (fun a -> Ant_ref.status a = Aco.Ant.Active) ants
    in
    while any_active () do
      incr steps;
      if faults_on then
        Array.iteri
          (fun i a ->
            if fault_at.(i) = !steps && Ant_ref.status a = Aco.Ant.Active then begin
              Ant_ref.kill a;
              incr quarantined
            end)
          ants;
      let force_explore =
        if opts.Gpusim.Config.wavefront_level_explore then
          Some (not (Support.Rng.bool rng Tu.test_params.Aco.Params.q0))
        else None
      in
      let ready_limit =
        match opts.Gpusim.Config.ready_list_limiting with
        | `Off -> None
        | (`Min | `Mid) as m ->
            let mn = ref max_int and mx = ref 0 in
            Array.iter
              (fun a ->
                if Ant_ref.status a = Aco.Ant.Active then begin
                  let c = Ant_ref.ready_count a in
                  if c < !mn then mn := c;
                  if c > !mx then mx := c
                end)
              ants;
            if !mn = max_int then None
            else Some (max 1 (match m with `Min -> !mn | `Mid -> (!mn + !mx + 1) / 2))
      in
      let events = ref [] in
      Array.iter
        (fun a ->
          if Ant_ref.status a = Aco.Ant.Active then begin
            let ev = Ant_ref.step ?force_explore ?ready_limit a ~pheromone in
            if Ant_ref.rank_of_op ev.Ant_ref.op <= 1 then incr selections;
            events :=
              {
                Aco.Ant.op =
                  (match ev.Ant_ref.op with
                  | Ant_ref.Selected { instr; explored } ->
                      Aco.Ant.Selected { instr; explored }
                  | Ant_ref.Mandatory_stall -> Aco.Ant.Mandatory_stall
                  | Ant_ref.Optional_stall -> Aco.Ant.Optional_stall
                  | Ant_ref.Died -> Aco.Ant.Died);
                ready_scanned = ev.Ant_ref.ready_scanned;
                succs_updated = ev.Ant_ref.succs_updated;
              }
              :: !events
          end)
        ants;
      let events = List.rev !events in
      ant_steps := !ant_steps + List.length events;
      let charge = Gpusim.Divergence.step_charge events in
      let transactions =
        Gpusim.Mem_model.step_transactions config
          ~reads_per_lane:(List.map Gpusim.Divergence.lane_reads events)
      in
      let transactions =
        if faults_on && transactions > 0 && Gpusim.Faults.mem_fault faults then begin
          incr mem_faults;
          2 * transactions
        end
        else transactions
      in
      time :=
        !time
        +. (float_of_int charge.Gpusim.Divergence.serialized_ops
           *. config.Gpusim.Config.gpu_ns_per_op)
        +. (float_of_int transactions *. config.Gpusim.Config.mem_transaction_ns);
      serialized := !serialized + charge.Gpusim.Divergence.serialized_ops;
      single := !single + charge.Gpusim.Divergence.max_single_path_ops;
      if
        opts.Gpusim.Config.early_wavefront_termination
        && Array.exists (fun a -> Ant_ref.status a = Aco.Ant.Finished) ants
      then
        Array.iter
          (fun a -> if Ant_ref.status a = Aco.Ant.Active then Ant_ref.kill a)
          ants
    done;
    let work = Array.fold_left (fun acc a -> acc + Ant_ref.work a) 0 ants in
    let orders =
      Array.fold_left
        (fun acc a -> if Ant_ref.status a = Aco.Ant.Finished then Ant_ref.order a :: acc else acc)
        [] ants
      |> List.rev
    in
    {
      r_time_ns = !time;
      r_work = work;
      r_serialized = !serialized;
      r_single = !single;
      r_steps = !steps;
      r_ant_steps = !ant_steps;
      r_selections = !selections;
      r_orders = orders;
      r_hung = false;
      r_quarantined = !quarantined;
      r_mem_faults = !mem_faults;
    }
  end

let wavefront_differential =
  QCheck.Test.make ~count:12 ~name:"wavefront iteration matches reference loop (with faults)"
    (QCheck.pair (Tu.arb_graph ~max_size:25 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let config = Tu.test_gpu in
      let w =
        Gpusim.Wavefront.create config graph params
          ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
      in
      let lanes = Gpusim.Wavefront.lanes w in
      let ref_ants = Array.init lanes (fun _ -> Ant_ref.create graph params) in
      let pheromone = Aco.Pheromone.create ~n:graph.Ddg.Graph.n ~initial:1.0 in
      Aco.Pheromone.deposit_path pheromone (Ddg.Topo.order graph) 0.5;
      List.iter
        (fun (fault_rate, mode) ->
          let mk_faults () =
            if fault_rate = 0.0 then Gpusim.Faults.disabled
            else
              Gpusim.Faults.create ~seed:(seed + 17)
                (Gpusim.Config.uniform_faults fault_rate)
          in
          let rng_a = Support.Rng.create seed and rng_b = Support.Rng.create seed in
          let o =
            Gpusim.Wavefront.run_iteration ~faults:(mk_faults ()) w ~rng:rng_a ~mode
              ~pheromone
          in
          let r =
            ref_run_iteration config ~faults:(mk_faults ()) ~ants:ref_ants ~rng:rng_b
              ~mode ~pheromone ~heuristic:Sched.Heuristic.Critical_path
          in
          Alcotest.(check bool) "hung" r.r_hung o.Gpusim.Wavefront.hung;
          Alcotest.(check int) "steps" r.r_steps o.Gpusim.Wavefront.steps;
          Alcotest.(check int) "ant_steps" r.r_ant_steps o.Gpusim.Wavefront.ant_steps;
          Alcotest.(check int) "selections" r.r_selections o.Gpusim.Wavefront.selections;
          Alcotest.(check int) "serialized" r.r_serialized
            o.Gpusim.Wavefront.serialized_ops;
          Alcotest.(check int) "single-path" r.r_single
            o.Gpusim.Wavefront.single_path_ops;
          Alcotest.(check int) "work" r.r_work o.Gpusim.Wavefront.work;
          Alcotest.(check int) "quarantined" r.r_quarantined
            o.Gpusim.Wavefront.quarantined;
          Alcotest.(check int) "mem faults" r.r_mem_faults o.Gpusim.Wavefront.mem_faults;
          Alcotest.(check (float 0.0)) "time bit-identical" r.r_time_ns
            o.Gpusim.Wavefront.time_ns;
          let orders = List.map Aco.Ant.order o.Gpusim.Wavefront.finished in
          Alcotest.(check (list (array int))) "finished orders" r.r_orders orders)
        [
          (0.0, Aco.Ant.Rp_pass);
          (0.0, Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 });
          (0.15, Aco.Ant.Rp_pass);
          (0.15, tight_targets graph);
        ];
      true)

let wavefront_determinism =
  QCheck.Test.make ~count:10 ~name:"wavefront iteration deterministic under faults"
    (QCheck.pair (Tu.arb_graph ~max_size:25 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let config = Tu.test_gpu in
      let run () =
        let w =
          Gpusim.Wavefront.create config graph params
            ~heuristic:Sched.Heuristic.Last_use_count ~allow_optional_stalls:true
        in
        let faults =
          Gpusim.Faults.create ~seed:(seed + 5) (Gpusim.Config.uniform_faults 0.2)
        in
        let rng = Support.Rng.create seed in
        let pheromone = Aco.Pheromone.create ~n:graph.Ddg.Graph.n ~initial:1.0 in
        let o = Gpusim.Wavefront.run_iteration ~faults w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone in
        ( o.Gpusim.Wavefront.time_ns,
          o.Gpusim.Wavefront.steps,
          o.Gpusim.Wavefront.quarantined,
          o.Gpusim.Wavefront.mem_faults,
          List.map Aco.Ant.order o.Gpusim.Wavefront.finished )
      in
      run () = run ())

(* --- Fmat: the unboxed score-matrix layer ------------------------------- *)

let fmat_layout () =
  let m = Support.Fmat.create ~rows:3 ~cols:5 in
  Alcotest.(check int) "rows" 3 (Support.Fmat.rows m);
  Alcotest.(check int) "cols" 5 (Support.Fmat.cols m);
  Alcotest.(check int) "stride rounds to a cache line" 8 (Support.Fmat.stride m);
  Alcotest.(check int) "stride at boundary" 8 (Support.Fmat.stride_of_cols 8);
  Alcotest.(check int) "stride past boundary" 16 (Support.Fmat.stride_of_cols 9);
  Alcotest.(check int) "row base" 16 (Support.Fmat.row_base m 2);
  Support.Fmat.set m (Support.Fmat.row_base m 1 + 4) 2.5;
  Alcotest.(check (float 0.0)) "get/set roundtrip" 2.5 (Support.Fmat.row_get m 1 4);
  (* the hot-path idiom: raw bigarray access through the concrete type
     must see exactly what the accessors wrote *)
  Alcotest.(check (float 0.0)) "raw data view agrees" 2.5
    (Bigarray.Array1.get m.Support.Fmat.data ((1 * Support.Fmat.stride m) + 4));
  Support.Fmat.fill m 1.0;
  Alcotest.(check (float 0.0)) "fill reaches real cells" 1.0 (Support.Fmat.row_get m 2 4);
  Alcotest.(check (float 0.0)) "padding stays zero after fill" 0.0
    (Support.Fmat.get m (Support.Fmat.row_base m 0 + 7));
  Support.Fmat.clear m;
  Alcotest.(check bool) "clear zeroes everything" true
    (Array.for_all (Array.for_all (fun v -> v = 0.0)) (Support.Fmat.to_array m))

let fmat_pool () =
  let m = Support.Fmat.take ~rows:2 ~cols:3 in
  Support.Fmat.set m (Support.Fmat.row_base m 1 + 2) 9.0;
  Support.Fmat.give m;
  let reuses_before = Support.Fmat.reuses () in
  let m2 = Support.Fmat.take ~rows:2 ~cols:3 in
  Alcotest.(check bool) "same-shape take reuses the pooled store" true
    (Support.Fmat.reuses () > reuses_before);
  (* re-zeroed on give: a pooled matrix is indistinguishable from fresh *)
  Alcotest.(check bool) "pooled matrix comes back zeroed" true
    (Array.for_all (Array.for_all (fun v -> v = 0.0)) (Support.Fmat.to_array m2));
  Support.Fmat.give m2

(* --- candidate pruning: byte-identity and soundness --------------------- *)

(* Run a prune-off and a prune-on ant through whole constructions with
   twin RNGs and evolving (but identical) trails. Pruning must be
   invisible to everything except the candidate meters: same orders,
   statuses, peaks, stalls, work and — the strictest check — the same
   number of RNG draws. *)
let prune_lockstep ~mode ~heuristic graph params seed =
  let closure = Ddg.Closure.compute graph in
  let layout = Sched.Rp_tracker.layout_of_graph ~closure graph in
  let shared = Aco.Ant.prepare_shared ~layout graph in
  let ant_off = Aco.Ant.create ~shared graph params in
  let ant_on = Aco.Ant.create ~shared graph params in
  Aco.Ant.set_prune ant_on true;
  Alcotest.(check bool) "prune armed" true (Aco.Ant.prune_enabled ant_on);
  let n = graph.Ddg.Graph.n in
  let ph_off = Aco.Pheromone.create ~n ~initial:1.0 in
  let ph_on = Aco.Pheromone.create ~n ~initial:1.0 in
  let rng_off = Support.Rng.create seed and rng_on = Support.Rng.create seed in
  for _ = 1 to 4 do
    Aco.Ant.start ant_off ~rng:rng_off ~heuristic ~allow_optional_stalls:true mode;
    Aco.Ant.run_to_completion ant_off ~pheromone:ph_off;
    Aco.Ant.start ant_on ~rng:rng_on ~heuristic ~allow_optional_stalls:true mode;
    Aco.Ant.run_to_completion ant_on ~pheromone:ph_on;
    Alcotest.(check bool) "status agrees" true
      (Aco.Ant.status ant_off = Aco.Ant.status ant_on);
    Alcotest.(check (array int)) "order" (Aco.Ant.order ant_off) (Aco.Ant.order ant_on);
    Alcotest.(check int) "length" (Aco.Ant.length ant_off) (Aco.Ant.length ant_on);
    Alcotest.(check int) "work" (Aco.Ant.work ant_off) (Aco.Ant.work ant_on);
    Alcotest.(check int) "optional stalls" (Aco.Ant.optional_stalls ant_off)
      (Aco.Ant.optional_stalls ant_on);
    let pv, ps = Aco.Ant.rp_peaks ant_off and qv, qs = Aco.Ant.rp_peaks ant_on in
    Alcotest.(check (pair int int)) "rp peaks" (pv, ps) (qv, qs);
    (* evolve both trails identically so later constructions walk a
       structured wheel, not the uniform initial one *)
    if Aco.Ant.status ant_off = Aco.Ant.Finished then begin
      Aco.Pheromone.deposit_path ph_off (Aco.Ant.order ant_off) 0.4;
      Aco.Pheromone.deposit_path ph_on (Aco.Ant.order ant_on) 0.4
    end
  done;
  Alcotest.(check int64) "rng stream position" (Support.Rng.int64 rng_on)
    (Support.Rng.int64 rng_off);
  Alcotest.(check int) "disarmed ant never prunes" 0 (Aco.Ant.pruned_candidates ant_off);
  (* every candidate is either fit-evaluated or pruned, never both,
     never dropped: scored(off) = scored(on) + pruned(on) *)
  Alcotest.(check int) "meter conservation"
    (Aco.Ant.scored_candidates ant_off)
    (Aco.Ant.scored_candidates ant_on + Aco.Ant.pruned_candidates ant_on)

let prune_differential =
  QCheck.Test.make ~count:25 ~name:"lower-bound pruning is schedule- and RNG-invariant"
    (QCheck.pair (Tu.arb_graph ~max_size:30 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let params = Tu.test_params in
      let modes =
        [
          Aco.Ant.Rp_pass;
          Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 };
          tight_targets graph;
        ]
      in
      List.iter
        (fun mode ->
          List.iter
            (fun heuristic -> prune_lockstep ~mode ~heuristic graph params seed)
            [ Sched.Heuristic.Critical_path; Sched.Heuristic.Last_use_count ])
        modes;
      true)

(* The Chen per-instruction bound must hold at the issue point of every
   instruction in *any* valid schedule. The issue-point pressure is the
   tracker's transient — current plus the instruction's opens minus its
   closes, *before* dead-on-arrival defs are dropped — which is exactly
   [current + delta_if_scheduled] read before scheduling, and exactly
   the quantity [fits_within]/[filter_fits_prefix] compare against a
   target (so this is the soundness statement the pruner relies on).
   Replay random topological orders and check every issue against the
   table. On tiny graphs, cross-check against exhaustive search: the
   best achievable peak can never undercut the largest per-instruction
   bound. *)
let min_lb_soundness =
  QCheck.Test.make ~count:40 ~name:"chen min-reg lower bound sound on random orders"
    (QCheck.pair (Tu.arb_graph ~max_size:14 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let n = graph.Ddg.Graph.n in
      let closure = Ddg.Closure.compute graph in
      let lbv = Ddg.Lower_bounds.min_reg_lb closure graph Ir.Reg.Vgpr in
      let lbs = Ddg.Lower_bounds.min_reg_lb closure graph Ir.Reg.Sgpr in
      let rng = Support.Rng.create seed in
      for _ = 1 to 8 do
        let ready = Sched.Ready_list.create ~latency_aware:false graph in
        let t = Sched.Rp_tracker.create graph in
        for _ = 1 to n do
          let k = Support.Rng.int rng (Sched.Ready_list.ready_count ready) in
          let i = Sched.Ready_list.ready ready k in
          let issue_v =
            Sched.Rp_tracker.current t Ir.Reg.Vgpr
            + Sched.Rp_tracker.delta_if_scheduled t i Ir.Reg.Vgpr
          in
          let issue_s =
            Sched.Rp_tracker.current t Ir.Reg.Sgpr
            + Sched.Rp_tracker.delta_if_scheduled t i Ir.Reg.Sgpr
          in
          if issue_v < lbv.(i) then
            Alcotest.failf "vgpr bound %d exceeds issue-point pressure %d at instr %d"
              lbv.(i) issue_v i;
          if issue_s < lbs.(i) then
            Alcotest.failf "sgpr bound %d exceeds issue-point pressure %d at instr %d"
              lbs.(i) issue_s i;
          Sched.Ready_list.schedule ready i;
          Sched.Rp_tracker.schedule t i
        done
      done;
      if n <= 12 then begin
        let maxa a = Array.fold_left max 0 a in
        let bfv = Sched.Brute_force.min_peak_pressure graph Ir.Reg.Vgpr in
        let bfs = Sched.Brute_force.min_peak_pressure graph Ir.Reg.Sgpr in
        if bfv < maxa lbv then
          Alcotest.failf "vgpr: brute-force min peak %d < max per-instr bound %d" bfv
            (maxa lbv);
        if bfs < maxa lbs then
          Alcotest.failf "sgpr: brute-force min peak %d < max per-instr bound %d" bfs
            (maxa lbs)
      end;
      true)

(* The tracker-level statement of soundness, independent of any ant:
   [filter_fits_prefix] with pruning armed must keep exactly the same
   candidate prefix as the unpruned scan, for any tracker state and any
   target — the bounds may only skip work, never change the answer. *)
let prune_filter_sound =
  QCheck.Test.make ~count:40 ~name:"pruned fit filter keeps the exact unpruned prefix"
    (QCheck.pair (Tu.arb_graph ~max_size:20 ()) QCheck.small_int)
    (fun (graph, seed) ->
      let n = graph.Ddg.Graph.n in
      let closure = Ddg.Closure.compute graph in
      let layout = Sched.Rp_tracker.layout_of_graph ~closure graph in
      let make () =
        let arena =
          Support.Arena.create ~ints:(Sched.Rp_tracker.int_demand layout) ~floats:0
        in
        Sched.Rp_tracker.create_in arena layout
      in
      let t_off = make () and t_on = make () in
      Sched.Rp_tracker.set_prune t_on true;
      let rng = Support.Rng.create seed in
      let ready = Sched.Ready_list.create ~latency_aware:false graph in
      let cand_off = Array.make n 0 and cand_on = Array.make n 0 in
      (* a mix of loose and punishing targets, revisited every step *)
      let targets = [| (256, 800); (4, 4); (1, 1); (7, 2) |] in
      for _ = 1 to n do
        let m = Sched.Ready_list.ready_count ready in
        Sched.Ready_list.blit_ready ready cand_off m;
        Array.blit cand_off 0 cand_on 0 m;
        let tv, ts = targets.(Support.Rng.int rng (Array.length targets)) in
        let m_off =
          Sched.Rp_tracker.filter_fits_prefix t_off ~cand:cand_off ~n_cand:m
            ~target_vgpr:tv ~target_sgpr:ts
        in
        let m_on =
          Sched.Rp_tracker.filter_fits_prefix t_on ~cand:cand_on ~n_cand:m ~target_vgpr:tv
            ~target_sgpr:ts
        in
        Alcotest.(check int) "kept count" m_off m_on;
        Alcotest.(check (array int)) "kept prefix"
          (Array.sub cand_off 0 m_off) (Array.sub cand_on 0 m_on);
        (* advance both trackers along the same random topological order *)
        let i = Sched.Ready_list.ready ready (Support.Rng.int rng m) in
        Sched.Ready_list.schedule ready i;
        Sched.Rp_tracker.schedule t_off i;
        Sched.Rp_tracker.schedule t_on i
      done;
      Alcotest.(check int) "meter conservation"
        (Sched.Rp_tracker.scored_candidates t_off)
        (Sched.Rp_tracker.scored_candidates t_on
        + Sched.Rp_tracker.pruned_candidates t_on);
      true)

let suite =
  [
    ("arena offsets", `Quick, arena_offsets);
    ("arena exhaustion", `Quick, arena_exhaustion);
    ("fmat layout", `Quick, fmat_layout);
    ("fmat pool", `Quick, fmat_pool);
  ]
  @ Tu.qtests
      [
        ant_differential;
        wavefront_differential;
        wavefront_determinism;
        prune_differential;
        min_lb_soundness;
        prune_filter_sound;
      ]
