(* Divergence lab: run the parallel ACO scheduler on the simulated GPU
   under different Section V optimization settings and compare the
   simulated scheduling times.

   Run with: dune exec examples/divergence_lab.exe *)

let run name opts setup params =
  let config = Gpusim.Config.with_opts { Gpusim.Config.bench with num_wavefronts = 4 } opts in
  let r = Gpusim.Par_aco.run_from_setup ~params ~seed:11 config setup in
  let p2 = r.Gpusim.Par_aco.pass2 in
  Printf.printf "  %-28s %8.2f ms total  (pass 2: %d iterations, divergence overhead %+.0f%%)\n"
    name
    (Gpusim.Par_aco.total_time_ns r /. 1e6)
    p2.Gpusim.Par_aco.iterations
    (if p2.Gpusim.Par_aco.single_path_ops > 0 then
       float_of_int (p2.Gpusim.Par_aco.serialized_ops - p2.Gpusim.Par_aco.single_path_ops)
       /. float_of_int p2.Gpusim.Par_aco.single_path_ops *. 100.0
     else 0.0)

let () =
  let occ = Machine.Occupancy.default in
  let region = Workload.Shapes.transform (Support.Rng.create 8) ~unroll:16 ~chain:4 in
  Printf.printf "region: %d instructions (unrolled transform)\n" (Ir.Region.size region);
  let graph = Ddg.Graph.build region in
  let setup = Aco.Setup.prepare occ graph in
  let params =
    { Aco.Params.default with Aco.Params.ants_per_iteration = 4 * 64 }
  in
  print_endline "configurations:";
  run "all optimizations (paper)" Gpusim.Config.opts_paper setup params;
  run "no memory optimizations" Gpusim.Config.opts_no_memory setup params;
  run "no divergence optimizations" Gpusim.Config.opts_no_divergence setup params;
  run "only 75% stall wavefronts"
    { Gpusim.Config.opts_paper with Gpusim.Config.optional_stall_fraction = 0.75 }
    setup params;
  print_newline ();
  print_endline
    "The memory layout dominates (Table 4.a of the paper); the divergence";
  print_endline
    "optimizations matter most in pass 2 where schedule lengths differ (Table 4.b)."
