(** Minor-allocation counters for the hot-loop perf instrumentation.

    [Gc.minor_words] is a monotone counter of words allocated on the
    minor heap; deltas around a region of code measure its allocation
    rate with no sampling noise. The drivers wrap each ACO pass in a
    span and surface the delta in their pass stats, and the bench
    harness asserts a per-ant-step ceiling from the same numbers. *)

val minor_words : unit -> float
(** Words allocated on the minor heap since program start. *)

val span : (unit -> 'a) -> 'a * float
(** [span f] runs [f] and returns its result with the minor words it
    allocated. *)

type t
(** An accumulating counter (for spans that start and stop across
    function boundaries). *)

val create : unit -> t
val start : t -> unit
val stop : t -> unit
(** Raises [Invalid_argument] when not started. *)

val total : t -> float
val reset : t -> unit
