(* gpuaco: command-line front end for the GPU-ACO instruction scheduler.

   Subcommands:
     schedule  generate a kernel shape and schedule it with a chosen scheduler
     compile   run a shape through the fault-tolerant compile driver
     trace     flight-record a compile and export/inspect the recording
     dot       print the DDG of a shape in Graphviz format
     stats     generate the benchmark suite and print its statistics *)

open Cmdliner

let occ = Machine.Occupancy.default

(* --- shared shape argument --------------------------------------------- *)

let shape_names =
  [
    "reduction"; "scan"; "transform"; "stencil"; "matmul"; "histogram"; "sort";
    "gather"; "wide-accum"; "scalar";
  ]

let build_shape name ~size ~seed =
  let rng = Support.Rng.create seed in
  let s = max 2 size in
  match name with
  | "reduction" -> Workload.Shapes.reduction rng ~items:s
  | "scan" -> Workload.Shapes.scan rng ~items:s
  | "transform" -> Workload.Shapes.transform rng ~unroll:(max 2 (s / 5)) ~chain:4
  | "stencil" -> Workload.Shapes.stencil rng ~outputs:(max 2 (s / 9)) ~radius:4
  | "matmul" -> Workload.Shapes.matmul_tile rng ~m:(max 2 (s / 8)) ~k:4
  | "histogram" -> Workload.Shapes.histogram rng ~items:(max 2 (s / 5))
  | "sort" -> Workload.Shapes.sort_pass rng ~items:(max 2 (s / 8))
  | "gather" -> Workload.Shapes.gather_compute rng ~lanes:(max 2 (s / 4)) ~chain:2
  | "wide-accum" -> Workload.Shapes.wide_accum rng ~accumulators:(max 2 (s / 3)) ~rounds:s
  | "scalar" -> Workload.Shapes.scalar_setup rng ~count:s
  | other -> invalid_arg ("unknown shape: " ^ other)

let shape_arg =
  let doc =
    "Kernel shape to generate: " ^ String.concat ", " shape_names ^ "."
  in
  Arg.(value & opt string "transform" & info [ "shape" ] ~docv:"SHAPE" ~doc)

let size_arg =
  let doc = "Approximate region size parameter." in
  Arg.(value & opt int 60 & info [ "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (all components are deterministic in it)." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- schedule ----------------------------------------------------------- *)

let scheduler_arg =
  let doc =
    "Scheduler: amd, cp, luc, aco (sequential two-pass), par-aco (on the simulated \
     GPU), weighted (single-pass weighted-sum ACO)."
  in
  Arg.(value & opt string "aco" & info [ "scheduler" ] ~docv:"S" ~doc)

let verbose_arg =
  let doc = "Print the full schedule, not just its cost." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let run_schedule shape size seed scheduler verbose =
  let region = build_shape shape ~size ~seed in
  let graph = Ddg.Graph.build region in
  Printf.printf "region %s: %d instructions, length LB %d\n" shape (Ir.Region.size region)
    (Ddg.Lower_bounds.schedule_length graph);
  let finish name (schedule : Sched.Schedule.t) =
    let cost = Sched.Cost.of_schedule occ schedule in
    Printf.printf "%s: %s\n" name (Sched.Cost.to_string cost);
    if verbose then print_string (Sched.Schedule.to_string schedule)
  in
  match scheduler with
  | "amd" ->
      finish "amd" (Sched.Amd_scheduler.run occ graph);
      0
  | "cp" ->
      finish "cp" (Sched.List_scheduler.run graph Sched.Heuristic.Critical_path);
      0
  | "luc" ->
      finish "luc" (Sched.List_scheduler.run graph Sched.Heuristic.Last_use_count);
      0
  | "aco" ->
      let r = Aco.Seq_aco.run ~seed occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Aco.Seq_aco.heuristic_cost);
      Printf.printf "pass 1: %d iterations, pass 2: %d iterations\n"
        r.Aco.Seq_aco.pass1.Aco.Seq_aco.iterations r.Aco.Seq_aco.pass2.Aco.Seq_aco.iterations;
      finish "aco" r.Aco.Seq_aco.schedule;
      0
  | "par-aco" ->
      let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 4 } in
      let params =
        { Aco.Params.default with Aco.Params.ants_per_iteration = Gpusim.Config.threads config }
      in
      let r = Gpusim.Par_aco.run ~params ~seed config occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Gpusim.Par_aco.heuristic_cost);
      Printf.printf "simulated GPU time: %.3f ms\n" (Gpusim.Par_aco.total_time_ns r /. 1e6);
      finish "par-aco" r.Gpusim.Par_aco.schedule;
      0
  | "weighted" ->
      let r = Aco.Weighted_aco.run ~seed occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Aco.Weighted_aco.heuristic_cost);
      Printf.printf "%d iterations\n" r.Aco.Weighted_aco.iterations;
      finish "weighted" r.Aco.Weighted_aco.schedule;
      0
  | other ->
      Printf.eprintf "unknown scheduler %s\n" other;
      1

let schedule_cmd =
  let info = Cmd.info "schedule" ~doc:"Generate a kernel shape and schedule it." in
  Cmd.v info Term.(const run_schedule $ shape_arg $ size_arg $ seed_arg $ scheduler_arg $ verbose_arg)

(* --- compile ------------------------------------------------------------- *)

let fault_rate_arg =
  let doc =
    "Transient-fault rate in [0,1] injected into the simulated GPU (see \
     Gpusim.Config.uniform_faults for how it spreads over fault classes)."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault injector's private RNG stream." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc =
    "Per-region compile budget in simulated milliseconds for the smallest size \
     category (medium and large regions get 2x and 4x). Unset means unbounded."
  in
  Arg.(value & opt (some float) None & info [ "compile-budget-ms" ] ~docv:"MS" ~doc)

let retries_arg =
  let doc = "Consecutive faulted iterations tolerated per pass before degrading." in
  Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"K" ~doc)

let trace_out_arg =
  let doc =
    "Write a flight recording of the compile to $(docv) as Chrome trace-event JSON \
     (open in Perfetto or chrome://tracing). Timestamps are simulated nanoseconds."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics registry (fault counters, convergence series, occupancy \
     histograms) to $(docv): JSON when it ends in .json, CSV otherwise."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let convergence_arg =
  let doc = "Print the per-iteration best-cost convergence table." in
  Arg.(value & flag & info [ "convergence" ] ~doc)

let backend_arg =
  let doc =
    "Scheduler backend(s) compiling the region: a registered backend name (seq, par, \
     weighted), $(b,auto) (size-thresholded seq/par split, see \
     $(b,--auto-threshold)), or a comma-separated list raced against each other with \
     the best schedule shipping."
  in
  Arg.(value & opt string "par" & info [ "backend" ] ~docv:"B" ~doc)

let auto_threshold_arg =
  let doc =
    "Region size at which $(b,--backend=auto) switches from the sequential to the \
     parallel backend."
  in
  Arg.(value & opt int 50 & info [ "auto-threshold" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Number of OCaml domains compiling suite regions in parallel (with $(b,--suite)). \
     The report is identical for every value; a single region always compiles on one \
     domain."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Analysis-cache mode: $(b,on) shares region analyses between structurally \
     identical regions, $(b,off) recomputes them per region, $(b,stats) is $(b,on) \
     plus a hit/miss/eviction summary after the compile. The emitted schedules are \
     identical in every mode."
  in
  Arg.(
    value
    & opt (enum [ ("on", `On); ("off", `Off); ("stats", `Stats) ]) `On
    & info [ "cache" ] ~docv:"MODE" ~doc)

let suite_arg =
  let doc =
    "Compile the generated benchmark suite (at test scale, seeded by $(b,--seed)) \
     through the multi-domain executor instead of a single $(b,--shape) region."
  in
  Arg.(value & flag & info [ "suite" ] ~doc)

(* Exit status mirrors the degradation ledger so scripts can tell a clean
   compile from a degraded one without parsing the output. *)
let degradation_exit = function
  | Pipeline.Robust.Clean -> 0
  | Pipeline.Robust.Retried _ -> 10
  | Pipeline.Robust.Budget_exceeded -> 11
  | Pipeline.Robust.Faulted_fallback -> 12

let degradation_exits =
  Cmd.Exit.info 0 ~doc:"The region compiled clean: the full ACO product shipped."
  :: Cmd.Exit.info 10
       ~doc:
         "Degraded (recovered): faulted iterations were retried, but the region \
          recovered and the ACO product shipped."
  :: Cmd.Exit.info 11
       ~doc:
         "Degraded: a pass exhausted its compile budget and shipped its best-so-far \
          schedule."
  :: Cmd.Exit.info 12
       ~doc:
         "Degraded: retries were exhausted, validation failed, or the driver \
          trapped; a best-so-far or heuristic fallback schedule shipped."
  :: Cmd.Exit.defaults

let write_metrics metrics file =
  if Filename.check_suffix file ".json" then Obs.Metrics.write_json metrics file
  else Obs.Metrics.write_csv metrics file

let print_cache_stats cache =
  Format.printf "%a@." Pipeline.Analysis.pp_stats (Pipeline.Analysis.stats cache)

let run_compile_suite config ~seed ~jobs ~cache_mode metrics metrics_out =
  let scale = { Workload.Suite.test_scale with Workload.Suite.seed } in
  let suite = Workload.Suite.generate scale in
  let stats = Workload.Suite.stats suite in
  let cache =
    match cache_mode with
    | `Off -> Pipeline.Analysis.disabled ()
    | `On | `Stats -> Pipeline.Analysis.create ~metrics ()
  in
  let report = Pipeline.Executor.run_suite ~jobs ~metrics ~cache config suite in
  let regions =
    List.concat_map
      (fun (kr : Pipeline.Compile.kernel_report) -> kr.Pipeline.Compile.regions)
      report.Pipeline.Compile.kernels
  in
  Printf.printf "suite: %d kernels, %d regions compiled on %d domain%s\n"
    stats.Workload.Suite.num_kernels (List.length regions) (max 1 jobs)
    (if max 1 jobs = 1 then "" else "s");
  let tally =
    Pipeline.Robust.tally_of_list
      (List.map (fun (r : Pipeline.Compile.region_report) -> r.Pipeline.Compile.degradation) regions)
  in
  Printf.printf "ledger: %d clean, %d retried, %d budget-exceeded, %d fallback\n"
    tally.Pipeline.Robust.clean tally.Pipeline.Robust.retried
    tally.Pipeline.Robust.budget_exceeded tally.Pipeline.Robust.faulted_fallback;
  Printf.printf "report digest: %s\n" (Pipeline.Report_digest.digest report);
  if cache_mode = `Stats then print_cache_stats cache;
  (match metrics_out with
  | Some file ->
      write_metrics metrics file;
      Printf.printf "metrics: written to %s\n" file
  | None -> ());
  let worst =
    List.fold_left
      (fun acc (r : Pipeline.Compile.region_report) ->
        if
          Pipeline.Robust.severity r.Pipeline.Compile.degradation
          > Pipeline.Robust.severity acc
        then r.Pipeline.Compile.degradation
        else acc)
      Pipeline.Robust.Clean regions
  in
  degradation_exit worst

let run_compile shape size seed fault_rate fault_seed budget_ms max_retries backend
    auto_threshold jobs cache_mode suite trace_out metrics_out convergence =
  let dispatch = Engine.Dispatch.of_string ~auto_threshold backend in
  let config =
    Pipeline.Compile.make_config
      ~fault_rate:(Float.max 0.0 (Float.min 1.0 fault_rate))
      ?fault_seed ?compile_budget_ms:budget_ms ~max_retries ~dispatch ()
  in
  let config = { config with Pipeline.Compile.run_sequential = false } in
  let metrics =
    match metrics_out with Some _ -> Obs.Metrics.create () | None -> Obs.Metrics.null
  in
  if suite then run_compile_suite config ~seed ~jobs ~cache_mode metrics metrics_out
  else begin
  let region = build_shape shape ~size ~seed in
  let trace =
    match trace_out with Some _ -> Obs.Trace.create () | None -> Obs.Trace.null
  in
  let cache =
    match cache_mode with
    | `Off -> Pipeline.Analysis.disabled ()
    | `On | `Stats -> Pipeline.Analysis.create ~metrics ()
  in
  let ctx = Pipeline.Analysis.get cache config.Pipeline.Compile.occ region in
  let r = Pipeline.Compile.run_region ~trace ~metrics ~ctx config ~name:shape region in
  Printf.printf "region %s: %d instructions (size category %s)\n" shape r.Pipeline.Compile.n
    (Aco.Params.size_category_label r.Pipeline.Compile.size_category);
  Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Pipeline.Compile.heuristic_cost);
  Printf.printf "aco:       %s\n" (Sched.Cost.to_string r.Pipeline.Compile.aco_cost);
  Printf.printf "backend: %s%s\n" r.Pipeline.Compile.product_backend
    (match r.Pipeline.Compile.runs with
    | [ _ ] -> ""
    | runs ->
        " (of " ^ String.concat "," (List.map (fun b -> b.Pipeline.Compile.backend) runs) ^ ")");
  Printf.printf "degradation: %s\n"
    (Pipeline.Robust.degradation_label r.Pipeline.Compile.degradation);
  Printf.printf "retries: %d\n" r.Pipeline.Compile.retries;
  Printf.printf "faults injected: %s\n"
    (Gpusim.Faults.counts_to_string r.Pipeline.Compile.fault_counts);
  let product = Pipeline.Compile.product_run r in
  Printf.printf "simulated compile time: %.3f ms\n"
    ((product.Pipeline.Compile.run_pass1_time_ns +. product.Pipeline.Compile.run_pass2_time_ns)
    /. 1e6);
  let p1 = product.Pipeline.Compile.result.Engine.Types.pass1
  and p2 = product.Pipeline.Compile.result.Engine.Types.pass2 in
  let steps = p1.Engine.Types.ant_steps + p2.Engine.Types.ant_steps in
  let words = p1.Engine.Types.minor_words +. p2.Engine.Types.minor_words in
  Printf.printf "perf: %d lockstep steps, %d ant steps, %d selections\n"
    (p1.Engine.Types.lockstep_steps + p2.Engine.Types.lockstep_steps)
    steps
    (p1.Engine.Types.selections + p2.Engine.Types.selections);
  Printf.printf "perf: %.0f minor words allocated (%.1f per ant step)\n" words
    (if steps = 0 then 0.0 else words /. float_of_int steps);
  if convergence then
    print_string
      (Pipeline.Report.render_convergence (Pipeline.Report.convergence_rows_of_region r));
  if cache_mode = `Stats then print_cache_stats cache;
  (match trace_out with
  | Some file ->
      Obs.Trace.write_chrome_json trace file;
      Printf.printf "trace: %d events written to %s (%d dropped)\n"
        (min (Obs.Trace.recorded trace) (Obs.Trace.capacity trace))
        file (Obs.Trace.dropped trace)
  | None -> ());
  (match metrics_out with
  | Some file ->
      write_metrics metrics file;
      Printf.printf "metrics: written to %s\n" file
  | None -> ());
  degradation_exit r.Pipeline.Compile.degradation
  end

let compile_cmd =
  let info =
    Cmd.info "compile"
      ~doc:
        "Compile a shape through the fault-tolerant driver and report its \
         degradation-ledger entry. The exit status encodes that entry (see EXIT \
         STATUS)."
      ~exits:degradation_exits
  in
  Cmd.v info
    Term.(
      const run_compile $ shape_arg $ size_arg $ seed_arg $ fault_rate_arg $ fault_seed_arg
      $ budget_arg $ retries_arg $ backend_arg $ auto_threshold_arg $ jobs_arg $ cache_arg
      $ suite_arg $ trace_out_arg $ metrics_out_arg $ convergence_arg)

(* --- trace --------------------------------------------------------------- *)

let trace_file_arg =
  let doc = "Output file for the Chrome trace-event JSON recording." in
  Arg.(value & opt string "gpuaco-trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let lint_arg =
  let doc =
    "Instead of recording, validate an existing trace-event JSON file: well-formed \
     JSON, known phases, monotone timestamps per track, balanced B/E pairs."
  in
  Arg.(value & opt (some string) None & info [ "lint" ] ~docv:"FILE" ~doc)

let trace_seq_arg =
  let doc = "Also run the sequential (CPU-baseline) driver so its convergence series are recorded." in
  Arg.(value & flag & info [ "seq" ] ~doc)

let run_trace shape size seed fault_rate fault_seed budget_ms max_retries out metrics_out
    seq lint =
  match lint with
  | Some file ->
      let rep = Obs.Trace_check.lint_file file in
      print_string (Obs.Trace_check.report_to_string rep);
      if Obs.Trace_check.ok rep then 0 else 1
  | None ->
      let region = build_shape shape ~size ~seed in
      let config =
        Pipeline.Compile.make_config
          ~fault_rate:(Float.max 0.0 (Float.min 1.0 fault_rate))
          ?fault_seed ?compile_budget_ms:budget_ms ~max_retries ()
      in
      let config = { config with Pipeline.Compile.run_sequential = seq } in
      let trace = Obs.Trace.create () in
      let metrics = Obs.Metrics.create () in
      let r = Pipeline.Compile.run_region ~trace ~metrics config ~name:shape region in
      Printf.printf "region %s: %d instructions, degradation %s\n" shape
        r.Pipeline.Compile.n
        (Pipeline.Robust.degradation_label r.Pipeline.Compile.degradation);
      let product = Pipeline.Compile.product_run r in
      Printf.printf "simulated compile time: %.3f ms\n"
        ((product.Pipeline.Compile.run_pass1_time_ns
         +. product.Pipeline.Compile.run_pass2_time_ns)
        /. 1e6);
      Printf.printf "flight recorder: %d events recorded, %d dropped (capacity %d)\n"
        (Obs.Trace.recorded trace) (Obs.Trace.dropped trace) (Obs.Trace.capacity trace);
      print_string "\nwhere simulated time goes (span totals):\n";
      List.iteri
        (fun i (name, total_ns, n) ->
          if i < 12 then
            Printf.printf "  %-18s %10.3f ms  x%d\n" name (total_ns /. 1e6) n)
        (Obs.Trace.span_totals trace);
      (match Obs.Trace.instant_counts trace with
      | [] -> ()
      | instants ->
          print_string "\nevents:\n";
          List.iter (fun (name, n) -> Printf.printf "  %-24s x%d\n" name n) instants);
      print_newline ();
      print_string
        (Pipeline.Report.render_convergence (Pipeline.Report.convergence_rows_of_region r));
      Obs.Trace.write_chrome_json trace out;
      Printf.printf "\ntrace written to %s (open in Perfetto or chrome://tracing)\n" out;
      (match metrics_out with
      | Some file ->
          write_metrics metrics file;
          Printf.printf "metrics written to %s\n" file
      | None -> ());
      (* Self-check: the recording we just produced must lint clean. *)
      let rep = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json trace) in
      if Obs.Trace_check.ok rep then 0
      else begin
        print_string (Obs.Trace_check.report_to_string rep);
        1
      end

let trace_cmd =
  let info =
    Cmd.info "trace"
      ~doc:
        "Compile a shape with the flight recorder on and export the recording as \
         Chrome trace-event JSON, with a span/instant/convergence summary; or lint \
         an existing recording with $(b,--lint)."
  in
  Cmd.v info
    Term.(
      const run_trace $ shape_arg $ size_arg $ seed_arg $ fault_rate_arg $ fault_seed_arg
      $ budget_arg $ retries_arg $ trace_file_arg $ metrics_out_arg $ trace_seq_arg
      $ lint_arg)

(* --- dot ----------------------------------------------------------------- *)

let run_dot shape size seed =
  let region = build_shape shape ~size ~seed in
  print_string (Ddg.Graph.to_dot (Ddg.Graph.build region));
  0

let dot_cmd =
  let info = Cmd.info "dot" ~doc:"Print a shape's data dependence graph in Graphviz format." in
  Cmd.v info Term.(const run_dot $ shape_arg $ size_arg $ seed_arg)

(* --- stats --------------------------------------------------------------- *)

let run_stats seed =
  let scale = { Workload.Suite.bench_scale with Workload.Suite.seed } in
  let suite = Workload.Suite.generate scale in
  let stats = Workload.Suite.stats suite in
  Printf.printf "benchmarks: %d\nkernels: %d\nregions: %d\nmax region size: %d\navg region size: %.1f\n"
    stats.Workload.Suite.num_benchmarks stats.Workload.Suite.num_kernels
    stats.Workload.Suite.num_regions stats.Workload.Suite.max_region_size
    stats.Workload.Suite.avg_region_size;
  0

let stats_cmd =
  let info = Cmd.info "stats" ~doc:"Generate the rocPRIM-like suite and print its statistics." in
  Cmd.v info Term.(const run_stats $ seed_arg)

let () =
  let info = Cmd.info "gpuaco" ~doc:"ACO instruction scheduling for the GPU on the (simulated) GPU." in
  exit (Cmd.eval' (Cmd.group info [ schedule_cmd; compile_cmd; trace_cmd; dot_cmd; stats_cmd ]))
