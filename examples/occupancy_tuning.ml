(* Occupancy tuning: the paper's headline scenario. A register-hungry
   tiled kernel where the greedy max-occupancy heuristic strands
   occupancy below what a global search achieves, and where the
   post-scheduling filter protects against ACO's length blow-ups.

   Run with: dune exec examples/occupancy_tuning.exe *)

let describe tag (cost : Sched.Cost.t) =
  Printf.printf "  %-14s occupancy %2d waves/SIMD, APRP %3d VGPRs, %4d cycles\n" tag
    cost.Sched.Cost.rp.Sched.Cost.occupancy cost.Sched.Cost.rp.Sched.Cost.aprp_vgpr
    cost.Sched.Cost.length

let () =
  let occ = Machine.Occupancy.default in
  let rng = Support.Rng.create 5 in
  List.iter
    (fun (name, region) ->
      let graph = Ddg.Graph.build region in
      Printf.printf "%s (%d instructions)\n" name (Ir.Region.size region);
      let _, amd_cost = Sched.Amd_scheduler.run_with_cost occ graph in
      describe "AMD baseline" amd_cost;
      let r = Aco.Seq_aco.run ~seed:7 occ graph in
      describe "two-pass ACO" r.Aco.Seq_aco.cost;
      let filters = Pipeline.Filters.default in
      (match Pipeline.Filters.post_schedule filters ~heuristic:amd_cost ~aco:r.Aco.Seq_aco.cost with
      | Pipeline.Filters.Keep_aco ->
          print_endline "  post-scheduling filter: ACO schedule shipped"
      | Pipeline.Filters.Revert_to_heuristic ->
          print_endline
            "  post-scheduling filter: reverted to the heuristic (occupancy gain not worth the cycles)");
      print_newline ())
    [
      ("stencil 20x4 (shared-load web)", Workload.Shapes.stencil (Support.Rng.split rng) ~outputs:20 ~radius:4);
      ("gemm tile m=20 k=4 (persistent accumulators)", Workload.Shapes.matmul_tile (Support.Rng.split rng) ~m:20 ~k:4);
      ("gemm tile m=26 k=3 (very tight registers)", Workload.Shapes.matmul_tile (Support.Rng.split rng) ~m:26 ~k:3);
    ]
