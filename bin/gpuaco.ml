(* gpuaco: command-line front end for the GPU-ACO instruction scheduler.

   Subcommands:
     schedule  generate a kernel shape and schedule it with a chosen scheduler
     compile   run a shape through the fault-tolerant compile driver
     trace     flight-record a compile and export/inspect the recording
     dot       print the DDG of a shape in Graphviz format
     stats     generate the benchmark suite and print its statistics *)

open Cmdliner

let occ = Machine.Occupancy.default

(* --- shared shape argument --------------------------------------------- *)

let shape_names = Workload.Shapes.spec_names

let build_shape name ~size ~seed =
  match Workload.Shapes.of_spec ~name ~size ~seed with
  | Some region -> region
  | None -> invalid_arg ("unknown shape: " ^ name)

let shape_arg =
  let doc =
    "Kernel shape to generate: " ^ String.concat ", " shape_names ^ "."
  in
  Arg.(value & opt string "transform" & info [ "shape" ] ~docv:"SHAPE" ~doc)

let size_arg =
  let doc = "Approximate region size parameter." in
  Arg.(value & opt int 60 & info [ "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (all components are deterministic in it)." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- schedule ----------------------------------------------------------- *)

let scheduler_arg =
  let doc =
    "Scheduler: amd, cp, luc, aco (sequential two-pass), par-aco (on the simulated \
     GPU), weighted (single-pass weighted-sum ACO)."
  in
  Arg.(value & opt string "aco" & info [ "scheduler" ] ~docv:"S" ~doc)

let verbose_arg =
  let doc = "Print the full schedule, not just its cost." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let run_schedule shape size seed scheduler verbose =
  let region = build_shape shape ~size ~seed in
  let graph = Ddg.Graph.build region in
  Printf.printf "region %s: %d instructions, length LB %d\n" shape (Ir.Region.size region)
    (Ddg.Lower_bounds.schedule_length graph);
  let finish name (schedule : Sched.Schedule.t) =
    let cost = Sched.Cost.of_schedule occ schedule in
    Printf.printf "%s: %s\n" name (Sched.Cost.to_string cost);
    if verbose then print_string (Sched.Schedule.to_string schedule)
  in
  match scheduler with
  | "amd" ->
      finish "amd" (Sched.Amd_scheduler.run occ graph);
      0
  | "cp" ->
      finish "cp" (Sched.List_scheduler.run graph Sched.Heuristic.Critical_path);
      0
  | "luc" ->
      finish "luc" (Sched.List_scheduler.run graph Sched.Heuristic.Last_use_count);
      0
  | "aco" ->
      let r = Aco.Seq_aco.run ~seed occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Aco.Seq_aco.heuristic_cost);
      Printf.printf "pass 1: %d iterations, pass 2: %d iterations\n"
        r.Aco.Seq_aco.pass1.Aco.Seq_aco.iterations r.Aco.Seq_aco.pass2.Aco.Seq_aco.iterations;
      finish "aco" r.Aco.Seq_aco.schedule;
      0
  | "par-aco" ->
      let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 4 } in
      let params =
        { Aco.Params.default with Aco.Params.ants_per_iteration = Gpusim.Config.threads config }
      in
      let r = Gpusim.Par_aco.run ~params ~seed config occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Gpusim.Par_aco.heuristic_cost);
      Printf.printf "simulated GPU time: %.3f ms\n" (Gpusim.Par_aco.total_time_ns r /. 1e6);
      finish "par-aco" r.Gpusim.Par_aco.schedule;
      0
  | "weighted" ->
      let r = Aco.Weighted_aco.run ~seed occ graph in
      Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Aco.Weighted_aco.heuristic_cost);
      Printf.printf "%d iterations\n" r.Aco.Weighted_aco.iterations;
      finish "weighted" r.Aco.Weighted_aco.schedule;
      0
  | other ->
      Printf.eprintf "unknown scheduler %s\n" other;
      1

let schedule_cmd =
  let info = Cmd.info "schedule" ~doc:"Generate a kernel shape and schedule it." in
  Cmd.v info Term.(const run_schedule $ shape_arg $ size_arg $ seed_arg $ scheduler_arg $ verbose_arg)

(* --- compile ------------------------------------------------------------- *)

let fault_rate_arg =
  let doc =
    "Transient-fault rate in [0,1] injected into the simulated GPU (see \
     Gpusim.Config.uniform_faults for how it spreads over fault classes)."
  in
  Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"RATE" ~doc)

let fault_seed_arg =
  let doc = "Seed of the fault injector's private RNG stream." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let budget_arg =
  let doc =
    "Per-region compile budget in simulated milliseconds for the smallest size \
     category (medium and large regions get 2x and 4x). Unset means unbounded."
  in
  Arg.(value & opt (some float) None & info [ "compile-budget-ms" ] ~docv:"MS" ~doc)

let retries_arg =
  let doc = "Consecutive faulted iterations tolerated per pass before degrading." in
  Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"K" ~doc)

let trace_out_arg =
  let doc =
    "Write a flight recording of the compile to $(docv) as Chrome trace-event JSON \
     (open in Perfetto or chrome://tracing). Timestamps are simulated nanoseconds."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics registry (fault counters, convergence series, occupancy \
     histograms) to $(docv): JSON when it ends in .json, CSV otherwise."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let log_out_arg =
  let doc =
    "Write the structured event log (leveled JSONL, ring-buffered) to $(docv). \
     Compiles emit per-backend and per-region entries; the serve daemon adds \
     admission, shed, reject and drain events with request ids."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let quality_ledger_arg =
  let doc =
    "Append one schedule-quality record per compiled region (JSONL: length vs \
     lower bound, occupancy vs target, iterations-to-best) to $(docv). Summarize \
     a ledger with $(b,gpuaco report)."
  in
  Arg.(value & opt (some string) None & info [ "quality-ledger" ] ~docv:"FILE" ~doc)

let convergence_arg =
  let doc = "Print the per-iteration best-cost convergence table." in
  Arg.(value & flag & info [ "convergence" ] ~doc)

let backend_arg =
  let doc =
    "Scheduler backend(s) compiling the region: a registered backend name (seq, par, \
     weighted, mmas, mmas-spill), $(b,auto) (size-thresholded seq/par split, see \
     $(b,--auto-threshold)), or a comma-separated list (no duplicates) raced against \
     each other with the best schedule shipping."
  in
  Arg.(value & opt string "par" & info [ "backend" ] ~docv:"B" ~doc)

let auto_threshold_arg =
  let doc =
    "Region size at which $(b,--backend=auto) switches from the sequential to the \
     parallel backend."
  in
  Arg.(value & opt int 50 & info [ "auto-threshold" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Number of workers compiling suite regions in parallel (with $(b,--suite)), on a \
     persistent domain pool with work stealing. The report is identical for every \
     value; a single region always compiles on one domain. $(b,--trace) works at any \
     jobs count: each worker records into a private ring and the rings merge on the \
     simulated timeline at join."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Analysis-cache mode: $(b,on) shares region analyses between structurally \
     identical regions, $(b,off) recomputes them per region, $(b,stats) is $(b,on) \
     plus a hit/miss/eviction summary after the compile. The emitted schedules are \
     identical in every mode."
  in
  Arg.(
    value
    & opt (enum [ ("on", `On); ("off", `Off); ("stats", `Stats) ]) `On
    & info [ "cache" ] ~docv:"MODE" ~doc)

let suite_arg =
  let doc =
    "Compile the generated benchmark suite (at test scale, seeded by $(b,--seed)) \
     through the multi-domain executor instead of a single $(b,--shape) region."
  in
  Arg.(value & flag & info [ "suite" ] ~doc)

(* Exit status mirrors the degradation ledger so scripts can tell a clean
   compile from a degraded one without parsing the output. *)
let degradation_exit = function
  | Pipeline.Robust.Clean -> 0
  | Pipeline.Robust.Retried _ -> 10
  | Pipeline.Robust.Budget_exceeded -> 11
  | Pipeline.Robust.Faulted_fallback -> 12
  | Pipeline.Robust.Shed_overload -> 13

let degradation_exits =
  Cmd.Exit.info 0 ~doc:"The region compiled clean: the full ACO product shipped."
  :: Cmd.Exit.info 10
       ~doc:
         "Degraded (recovered): faulted iterations were retried, but the region \
          recovered and the ACO product shipped."
  :: Cmd.Exit.info 11
       ~doc:
         "Degraded: a pass exhausted its compile budget and shipped its best-so-far \
          schedule."
  :: Cmd.Exit.info 12
       ~doc:
         "Degraded: retries were exhausted, validation failed, or the driver \
          trapped; a best-so-far or heuristic fallback schedule shipped."
  :: Cmd.Exit.info 13
       ~doc:
         "Shed: the serve loop answered with the Critical-Path schedule under \
          admission pressure, skipping ACO entirely (never emitted by a direct \
          compile)."
  :: Cmd.Exit.defaults

let write_metrics metrics file =
  if Filename.check_suffix file ".json" then Obs.Metrics.write_json metrics file
  else Obs.Metrics.write_csv metrics file

let write_log ?(err = false) log file =
  Obs.Log.write_jsonl log file;
  let note =
    Printf.sprintf "log: %d entries written to %s (%d dropped)\n"
      (min (Obs.Log.recorded log) (Obs.Log.capacity log))
      file (Obs.Log.dropped log)
  in
  if err then (output_string stderr note; flush stderr) else print_string note

let print_cache_stats cache =
  Format.printf "%a@." Pipeline.Analysis.pp_stats (Pipeline.Analysis.stats cache)

(* With logging on, the domain pool's lifecycle is observed too: worker
   spawn/acquire/release events land in the same ring as the serve and
   compile entries. The observer is process-global, so it is installed
   around the pooled phase and removed on the way out. *)
let with_pool_observer log f =
  if Obs.Log.enabled log then begin
    Support.Domain_pool.set_observer
      (Some
         (fun e ->
           match e with
           | Support.Domain_pool.Spawned i ->
               Obs.Log.info log "pool.spawned" [ ("worker", Obs.Log.Int i) ]
           | Support.Domain_pool.Acquired i ->
               Obs.Log.debug log "pool.acquired" [ ("worker", Obs.Log.Int i) ]
           | Support.Domain_pool.Released i ->
               Obs.Log.debug log "pool.released" [ ("worker", Obs.Log.Int i) ]));
    Fun.protect ~finally:(fun () -> Support.Domain_pool.set_observer None) f
  end
  else f ()

let run_compile_suite config ~seed ~jobs ~cache_mode metrics metrics_out trace_out log
    log_out quality_ledger =
  let scale = { Workload.Suite.test_scale with Workload.Suite.seed } in
  let suite = Workload.Suite.generate scale in
  let stats = Workload.Suite.stats suite in
  let cache =
    match cache_mode with
    | `Off -> Pipeline.Analysis.disabled ()
    | `On | `Stats -> Pipeline.Analysis.create ~metrics ()
  in
  let trace =
    match trace_out with Some _ -> Obs.Trace.create () | None -> Obs.Trace.null
  in
  let report =
    with_pool_observer log (fun () ->
        Pipeline.Executor.run_suite ~jobs ~trace ~metrics ~log ~cache config suite)
  in
  let regions =
    List.concat_map
      (fun (kr : Pipeline.Compile.kernel_report) -> kr.Pipeline.Compile.regions)
      report.Pipeline.Compile.kernels
  in
  Printf.printf "suite: %d kernels, %d regions compiled on %d domain%s\n"
    stats.Workload.Suite.num_kernels (List.length regions) (max 1 jobs)
    (if max 1 jobs = 1 then "" else "s");
  let tally =
    Pipeline.Robust.tally_of_list
      (List.map (fun (r : Pipeline.Compile.region_report) -> r.Pipeline.Compile.degradation) regions)
  in
  Printf.printf "ledger: %d clean, %d retried, %d budget-exceeded, %d fallback, %d shed\n"
    tally.Pipeline.Robust.clean tally.Pipeline.Robust.retried
    tally.Pipeline.Robust.budget_exceeded tally.Pipeline.Robust.faulted_fallback
    tally.Pipeline.Robust.shed_overload;
  Printf.printf "report digest: %s\n" (Pipeline.Report_digest.digest report);
  if cache_mode = `Stats then print_cache_stats cache;
  (match trace_out with
  | Some file ->
      Obs.Trace.write_chrome_json trace file;
      Printf.printf "trace: %d events written to %s (%d dropped)\n"
        (min (Obs.Trace.recorded trace) (Obs.Trace.capacity trace))
        file (Obs.Trace.dropped trace)
  | None -> ());
  (match metrics_out with
  | Some file ->
      write_metrics metrics file;
      Printf.printf "metrics: written to %s\n" file
  | None -> ());
  (match log_out with Some file -> write_log log file | None -> ());
  (match quality_ledger with
  | Some file ->
      let records = Pipeline.Quality.of_report report in
      Pipeline.Quality.append ~file records;
      Printf.printf "quality: %d record(s) appended to %s\n" (List.length records)
        file
  | None -> ());
  let worst =
    List.fold_left
      (fun acc (r : Pipeline.Compile.region_report) ->
        if
          Pipeline.Robust.severity r.Pipeline.Compile.degradation
          > Pipeline.Robust.severity acc
        then r.Pipeline.Compile.degradation
        else acc)
      Pipeline.Robust.Clean regions
  in
  degradation_exit worst

let run_compile shape size seed fault_rate fault_seed budget_ms max_retries backend
    auto_threshold jobs cache_mode suite trace_out metrics_out log_out quality_ledger
    convergence =
  match Engine.Dispatch.of_string ~auto_threshold backend with
  | exception Engine.Dispatch.Duplicate_backend b ->
      Printf.eprintf
        "gpuaco compile: backend %S appears twice in the race list %S — racing a \
         deterministic backend against itself only reproduces its own schedule\n"
        b backend;
      2
  | dispatch ->
  let config =
    Pipeline.Compile.make_config
      ~fault_rate:(Float.max 0.0 (Float.min 1.0 fault_rate))
      ?fault_seed ?compile_budget_ms:budget_ms ~max_retries ~dispatch ()
  in
  let config = { config with Pipeline.Compile.run_sequential = false } in
  let metrics =
    match metrics_out with Some _ -> Obs.Metrics.create () | None -> Obs.Metrics.null
  in
  let log = match log_out with Some _ -> Obs.Log.create () | None -> Obs.Log.null in
  if suite then
    run_compile_suite config ~seed ~jobs ~cache_mode metrics metrics_out trace_out log
      log_out quality_ledger
  else begin
  let region = build_shape shape ~size ~seed in
  let trace =
    match trace_out with Some _ -> Obs.Trace.create () | None -> Obs.Trace.null
  in
  let cache =
    match cache_mode with
    | `Off -> Pipeline.Analysis.disabled ()
    | `On | `Stats -> Pipeline.Analysis.create ~metrics ()
  in
  let ctx = Pipeline.Analysis.get cache config.Pipeline.Compile.occ region in
  let r =
    Pipeline.Compile.run_region ~trace ~metrics ~log ~ctx config ~name:shape region
  in
  Printf.printf "region %s: %d instructions (size category %s)\n" shape r.Pipeline.Compile.n
    (Aco.Params.size_category_label r.Pipeline.Compile.size_category);
  Printf.printf "heuristic: %s\n" (Sched.Cost.to_string r.Pipeline.Compile.heuristic_cost);
  Printf.printf "aco:       %s\n" (Sched.Cost.to_string r.Pipeline.Compile.aco_cost);
  Printf.printf "backend: %s%s\n" r.Pipeline.Compile.product_backend
    (match r.Pipeline.Compile.runs with
    | [ _ ] -> ""
    | runs ->
        " (of " ^ String.concat "," (List.map (fun b -> b.Pipeline.Compile.backend) runs) ^ ")");
  Printf.printf "degradation: %s\n"
    (Pipeline.Robust.degradation_label r.Pipeline.Compile.degradation);
  Printf.printf "retries: %d\n" r.Pipeline.Compile.retries;
  Printf.printf "faults injected: %s\n"
    (Gpusim.Faults.counts_to_string r.Pipeline.Compile.fault_counts);
  let product = Pipeline.Compile.product_run r in
  Printf.printf "simulated compile time: %.3f ms\n"
    ((product.Pipeline.Compile.run_pass1_time_ns +. product.Pipeline.Compile.run_pass2_time_ns)
    /. 1e6);
  let p1 = product.Pipeline.Compile.result.Engine.Types.pass1
  and p2 = product.Pipeline.Compile.result.Engine.Types.pass2 in
  let steps = p1.Engine.Types.ant_steps + p2.Engine.Types.ant_steps in
  let words = p1.Engine.Types.minor_words +. p2.Engine.Types.minor_words in
  Printf.printf "perf: %d lockstep steps, %d ant steps, %d selections\n"
    (p1.Engine.Types.lockstep_steps + p2.Engine.Types.lockstep_steps)
    steps
    (p1.Engine.Types.selections + p2.Engine.Types.selections);
  Printf.printf "perf: %.0f minor words allocated (%.1f per ant step)\n" words
    (if steps = 0 then 0.0 else words /. float_of_int steps);
  let scored = p1.Engine.Types.scored_candidates + p2.Engine.Types.scored_candidates
  and pruned = p1.Engine.Types.pruned_candidates + p2.Engine.Types.pruned_candidates in
  Printf.printf "perf: %d candidates scored, %d pruned by lower bounds (%.1f%%)\n" scored
    pruned
    (if scored + pruned = 0 then 0.0
     else 100.0 *. float_of_int pruned /. float_of_int (scored + pruned));
  if convergence then
    print_string
      (Pipeline.Report.render_convergence (Pipeline.Report.convergence_rows_of_region r));
  if cache_mode = `Stats then print_cache_stats cache;
  (match trace_out with
  | Some file ->
      Obs.Trace.write_chrome_json trace file;
      Printf.printf "trace: %d events written to %s (%d dropped)\n"
        (min (Obs.Trace.recorded trace) (Obs.Trace.capacity trace))
        file (Obs.Trace.dropped trace)
  | None -> ());
  (match metrics_out with
  | Some file ->
      write_metrics metrics file;
      Printf.printf "metrics: written to %s\n" file
  | None -> ());
  (match log_out with Some file -> write_log log file | None -> ());
  (match quality_ledger with
  | Some file ->
      Pipeline.Quality.append ~file [ Pipeline.Quality.of_region r ];
      Printf.printf "quality: 1 record appended to %s\n" file
  | None -> ());
  degradation_exit r.Pipeline.Compile.degradation
  end

let compile_cmd =
  let info =
    Cmd.info "compile"
      ~doc:
        "Compile a shape through the fault-tolerant driver and report its \
         degradation-ledger entry. The exit status encodes that entry (see EXIT \
         STATUS)."
      ~exits:degradation_exits
  in
  Cmd.v info
    Term.(
      const run_compile $ shape_arg $ size_arg $ seed_arg $ fault_rate_arg $ fault_seed_arg
      $ budget_arg $ retries_arg $ backend_arg $ auto_threshold_arg $ jobs_arg $ cache_arg
      $ suite_arg $ trace_out_arg $ metrics_out_arg $ log_out_arg $ quality_ledger_arg
      $ convergence_arg)

(* --- serve --------------------------------------------------------------- *)

let socket_arg =
  let doc =
    "Serve over a Unix domain socket bound at $(docv) instead of stdin/stdout. \
     Connections are served one at a time; the daemon runs until a shutdown \
     request or signal drains it."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_capacity_arg =
  let doc = "Admission queue capacity (compile requests waiting to run)." in
  Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let in_flight_arg =
  let doc = "Compile requests processed per pump of the request loop." in
  Arg.(value & opt int 4 & info [ "max-in-flight" ] ~docv:"N" ~doc)

let shed_threshold_arg =
  let doc =
    "Fraction of queue capacity past which compile requests are shed: answered \
     immediately with the Critical-Path schedule (ledger entry \
     $(i,shed-overload), no ACO work) instead of being queued."
  in
  Arg.(value & opt float 0.75 & info [ "shed-threshold" ] ~docv:"F" ~doc)

let serve_retries_arg =
  let doc =
    "Serve-level re-attempts after a degraded compile (faults, budget). Each \
     retry backs off exponentially and reseeds the fault stream; 0 ships the \
     first attempt unconditionally."
  in
  Arg.(value & opt int 2 & info [ "serve-retries" ] ~docv:"K" ~doc)

let backoff_arg =
  let doc = "Base retry backoff in simulated nanoseconds (doubles per retry)." in
  Arg.(value & opt float 50_000.0 & info [ "backoff-ns" ] ~docv:"NS" ~doc)

let slack_arg =
  let doc =
    "Request deadline as a multiple of the per-attempt compile budget; retries \
     stop when the next attempt cannot finish before it."
  in
  Arg.(value & opt float 4.0 & info [ "deadline-slack" ] ~docv:"F" ~doc)

let memo_capacity_arg =
  let doc = "Schedule-memo entries kept (LRU). 0 disables memoisation." in
  Arg.(value & opt int 512 & info [ "memo-capacity" ] ~docv:"N" ~doc)

let state_dir_arg =
  let doc =
    "Persist the analysis cache and schedule memo to $(docv) on drain and reload \
     them on start. Corrupt, truncated or version-skewed files start cold (with a \
     metric), never crash."
  in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let pump_batch_arg =
  let doc =
    "Frames read before each processing pump. 1 compiles request-by-request; \
     larger batches let the admission queue fill, exercising shedding."
  in
  Arg.(value & opt int 1 & info [ "pump-batch" ] ~docv:"N" ~doc)

let encode_arg =
  let doc =
    "Helper, repeatable: frame $(docv) as a length-prefixed request on stdout and \
     exit (the sequence $(b,\\\\n) becomes a newline, for inline region text). \
     Pipe the output into a running $(b,gpuaco serve)."
  in
  Arg.(value & opt_all string [] & info [ "encode" ] ~docv:"REQ" ~doc)

let decode_arg =
  let doc =
    "Helper: read length-prefixed reply frames from stdin and print one payload \
     per line."
  in
  Arg.(value & flag & info [ "decode" ] ~doc)

let serve_exits =
  Cmd.Exit.info 0
    ~doc:
      "Clean drain: every received frame was answered (some possibly degraded, \
       shed, or rejected with a typed error) and state was persisted."
  :: Cmd.Exit.info 14
       ~doc:
         "Transport failure: the socket could not be bound, or a stream helper \
          hit a framing error."
  :: Cmd.Exit.defaults

let unescape s =
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + 1 < n && s.[!i] = '\\' && s.[!i + 1] = 'n' then begin
      Buffer.add_char b '\n';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Pump one framed byte stream into the service: read frames, admit them,
   compile every [batch] frames. A framing error is fatal to the stream
   (the length prefix is gone) but answered first; EOF flushes the queue
   so every admitted request is replied to before the stream closes. *)
let pump_channel srv ~client ~batch ic =
  let limit = (Pipeline.Serve.config srv).Pipeline.Serve.frame_limit in
  let rec loop pending =
    if Pipeline.Serve.state srv = `Drained then ()
    else
      match Support.Frame.read ~limit ic with
      | Ok (Some payload) ->
          Pipeline.Serve.handle srv ~client payload;
          let pending = pending + 1 in
          if pending >= max 1 batch then begin
            ignore (Pipeline.Serve.process srv);
            loop 0
          end
          else loop pending
      | Ok None -> ()
      | Error e -> Pipeline.Serve.handle_frame_error srv ~client e
  in
  loop 0;
  (* stream over: answer everything this stream queued *)
  while Pipeline.Serve.process srv > 0 do
    ()
  done

let graceful_signals () =
  let quit = Sys.Signal_handle (fun _ -> raise Exit) in
  (try Sys.set_signal Sys.sigint quit with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm quit with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let serve_stdio cfg metrics log ~batch =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  (* if the reader goes away mid-reply, keep draining silently — the
     service still owes its queue a graceful finish and its state a
     persist *)
  let broken = ref false in
  let on_reply reply =
    if not !broken then
      try
        Support.Frame.write stdout (Pipeline.Serve.render_reply reply);
        flush stdout
      with Sys_error _ -> broken := true
  in
  let srv =
    Pipeline.Serve.create ~metrics ~log ~pool:(Support.Domain_pool.global ())
      ~on_reply cfg
  in
  graceful_signals ();
  with_pool_observer log (fun () ->
      (try pump_channel srv ~client:"stdio" ~batch stdin with Exit -> ());
      Pipeline.Serve.drain srv);
  0

let serve_socket path cfg metrics log ~batch =
  match
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 16;
    sock
  with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "gpuaco serve: cannot bind %s: %s\n" path (Unix.error_message e);
      14
  | sock ->
      let current_out = ref None in
      let on_reply reply =
        match !current_out with
        | None -> ()
        | Some oc -> (
            try
              Support.Frame.write oc (Pipeline.Serve.render_reply reply);
              flush oc
            with Sys_error _ -> current_out := None)
      in
      let srv =
        Pipeline.Serve.create ~metrics ~log ~pool:(Support.Domain_pool.global ())
          ~on_reply cfg
      in
      graceful_signals ();
      Printf.eprintf "gpuaco serve: listening on %s\n%!" path;
      let conn = ref 0 in
      with_pool_observer log (fun () ->
          (try
             while Pipeline.Serve.state srv <> `Drained do
               match Unix.accept sock with
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | fd, _ ->
                   incr conn;
                   let client = Printf.sprintf "conn-%d" !conn in
                   let ic = Unix.in_channel_of_descr fd in
                   current_out := Some (Unix.out_channel_of_descr fd);
                   (try pump_channel srv ~client ~batch ic
                    with Sys_error _ -> () (* peer went away mid-frame *));
                   current_out := None;
                   (try Unix.close fd with Unix.Unix_error _ -> ())
             done
           with Exit -> ());
          Pipeline.Serve.drain srv);
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      0

let run_serve socket_path queue_capacity max_in_flight shed_threshold serve_retries
    backoff_ns slack memo_capacity state_dir pump_batch fault_rate fault_seed budget_ms
    max_retries metrics_out log_out quality_ledger encode decode =
  if encode <> [] then begin
    set_binary_mode_out stdout true;
    List.iter (fun req -> Support.Frame.write stdout (unescape req)) encode;
    flush stdout;
    0
  end
  else if decode then begin
    set_binary_mode_in stdin true;
    let rec loop () =
      match Support.Frame.read stdin with
      | Ok None -> 0
      | Ok (Some payload) ->
          print_endline payload;
          loop ()
      | Error e ->
          Printf.eprintf "gpuaco serve --decode: %s\n" (Support.Frame.error_to_string e);
          14
    in
    loop ()
  end
  else begin
    let compile =
      Pipeline.Compile.make_config
        ~fault_rate:(Float.max 0.0 (Float.min 1.0 fault_rate))
        ?fault_seed ?compile_budget_ms:budget_ms ~max_retries ()
    in
    let compile = { compile with Pipeline.Compile.run_sequential = false } in
    let cfg =
      {
        (Pipeline.Serve.default_config compile) with
        Pipeline.Serve.queue_capacity = max 1 queue_capacity;
        max_in_flight = max 1 max_in_flight;
        shed_threshold;
        max_retries = max 0 serve_retries;
        backoff_base_ns = Float.max 0.0 backoff_ns;
        deadline_slack = slack;
        memo_capacity = max 0 memo_capacity;
        state_dir;
        quality_ledger;
      }
    in
    (* The daemon's registry is always live — the [metrics] and [watch]
       protocol verbs read it on demand; --metrics additionally dumps it
       to a file on exit. *)
    let metrics = Obs.Metrics.create () in
    let log =
      match log_out with Some _ -> Obs.Log.create () | None -> Obs.Log.null
    in
    let code =
      match socket_path with
      | None -> serve_stdio cfg metrics log ~batch:pump_batch
      | Some path -> serve_socket path cfg metrics log ~batch:pump_batch
    in
    (match metrics_out with Some file -> write_metrics metrics file | None -> ());
    (* the framed reply stream owns stdout in stdio mode *)
    (match log_out with Some file -> write_log ~err:true log file | None -> ());
    code
  end

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the compile service as a long-lived daemon: length-prefixed compile \
         requests (generator spec or inline region text) arrive over stdin/stdout \
         or a Unix socket, pass bounded admission (overload is shed to the \
         Critical-Path schedule), compile under per-request deadlines with \
         retry/backoff, and are answered with typed, digest-stamped replies. \
         $(b,--encode)/$(b,--decode) are client helpers for scripting."
      ~exits:serve_exits
  in
  Cmd.v info
    Term.(
      const run_serve $ socket_arg $ queue_capacity_arg $ in_flight_arg
      $ shed_threshold_arg $ serve_retries_arg $ backoff_arg $ slack_arg
      $ memo_capacity_arg $ state_dir_arg $ pump_batch_arg $ fault_rate_arg
      $ fault_seed_arg $ budget_arg $ retries_arg $ metrics_out_arg $ log_out_arg
      $ quality_ledger_arg $ encode_arg $ decode_arg)

(* --- socket clients: request, live stats -------------------------------- *)

(* One connection, one exchange: write every request frame, shut down the
   send side (the daemon's pump reads to EOF), collect every reply frame.
   The daemon serves connections one at a time, so a fresh connection per
   poll is also the natural isolation unit. *)
let client_exchange path reqs =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (path ^ ": " ^ Unix.error_message e)
      | () ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              match
                let oc = Unix.out_channel_of_descr fd in
                let ic = Unix.in_channel_of_descr fd in
                List.iter (fun r -> Support.Frame.write oc r) reqs;
                flush oc;
                Unix.shutdown fd Unix.SHUTDOWN_SEND;
                let rec collect acc =
                  match Support.Frame.read ic with
                  | Ok None -> Ok (List.rev acc)
                  | Ok (Some payload) -> collect (payload :: acc)
                  | Error e -> Error (Support.Frame.error_to_string e)
                in
                collect []
              with
              | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
              | exception Sys_error m -> Error m
              | r -> r))

let client_socket_arg =
  let doc = "Unix socket of a running $(b,gpuaco serve --socket) daemon." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let request_args =
  let doc =
    "Request payload(s), one frame each (the sequence $(b,\\\\n) becomes a \
     newline, for inline region text)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"REQ" ~doc)

let run_request socket_path reqs =
  match socket_path with
  | None ->
      Printf.eprintf "gpuaco request: --socket PATH is required\n";
      2
  | Some path -> (
      match client_exchange path (List.map unescape reqs) with
      | Error m ->
          Printf.eprintf "gpuaco request: %s\n" m;
          14
      | Ok replies ->
          List.iter print_endline replies;
          0)

let request_cmd =
  let info =
    Cmd.info "request"
      ~doc:
        "Send request frames to a running $(b,gpuaco serve --socket) daemon over \
         one connection and print each reply payload (one per line; the \
         $(b,metrics) reply is multi-line). Exits 14 on transport failure."
      ~exits:serve_exits
  in
  Cmd.v info Term.(const run_request $ client_socket_arg $ request_args)

(* --- report -------------------------------------------------------------- *)

let ledger_arg =
  let doc = "Quality-ledger JSONL file to summarize (see $(b,--quality-ledger))." in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let top_arg =
  let doc = "How many worst-gap regions to list." in
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)

let run_report ledger top =
  match ledger with
  | None ->
      Printf.eprintf "gpuaco report: --ledger FILE is required\n";
      2
  | Some file -> (
      match Pipeline.Quality.load ~file with
      | exception Sys_error m ->
          Printf.eprintf "gpuaco report: %s\n" m;
          1
      | records ->
          print_string (Pipeline.Quality.render_summary ~top records);
          0)

let report_cmd =
  let info =
    Cmd.info "report"
      ~doc:
        "Summarize a schedule-quality ledger (written by $(b,gpuaco compile \
         --quality-ledger) or a serving daemon): schedule-length gap to the lower \
         bound, occupancy-target hit rate, convergence shape, and the worst \
         regions by gap."
  in
  Cmd.v info Term.(const run_report $ ledger_arg $ top_arg)

(* --- trace --------------------------------------------------------------- *)

let trace_file_arg =
  let doc = "Output file for the Chrome trace-event JSON recording." in
  Arg.(value & opt string "gpuaco-trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let lint_arg =
  let doc =
    "Instead of recording, validate an existing trace-event JSON file: well-formed \
     JSON, known phases, monotone timestamps per track, balanced B/E pairs."
  in
  Arg.(value & opt (some string) None & info [ "lint" ] ~docv:"FILE" ~doc)

let trace_seq_arg =
  let doc = "Also run the sequential (CPU-baseline) driver so its convergence series are recorded." in
  Arg.(value & flag & info [ "seq" ] ~doc)

let run_trace shape size seed fault_rate fault_seed budget_ms max_retries out metrics_out
    seq lint =
  match lint with
  | Some file ->
      let rep = Obs.Trace_check.lint_file file in
      print_string (Obs.Trace_check.report_to_string rep);
      if Obs.Trace_check.ok rep then 0 else 1
  | None ->
      let region = build_shape shape ~size ~seed in
      let config =
        Pipeline.Compile.make_config
          ~fault_rate:(Float.max 0.0 (Float.min 1.0 fault_rate))
          ?fault_seed ?compile_budget_ms:budget_ms ~max_retries ()
      in
      let config = { config with Pipeline.Compile.run_sequential = seq } in
      let trace = Obs.Trace.create () in
      let metrics = Obs.Metrics.create () in
      let r = Pipeline.Compile.run_region ~trace ~metrics config ~name:shape region in
      Printf.printf "region %s: %d instructions, degradation %s\n" shape
        r.Pipeline.Compile.n
        (Pipeline.Robust.degradation_label r.Pipeline.Compile.degradation);
      let product = Pipeline.Compile.product_run r in
      Printf.printf "simulated compile time: %.3f ms\n"
        ((product.Pipeline.Compile.run_pass1_time_ns
         +. product.Pipeline.Compile.run_pass2_time_ns)
        /. 1e6);
      Printf.printf "flight recorder: %d events recorded, %d dropped (capacity %d)\n"
        (Obs.Trace.recorded trace) (Obs.Trace.dropped trace) (Obs.Trace.capacity trace);
      print_string "\nwhere simulated time goes (span totals):\n";
      List.iteri
        (fun i (name, total_ns, n) ->
          if i < 12 then
            Printf.printf "  %-18s %10.3f ms  x%d\n" name (total_ns /. 1e6) n)
        (Obs.Trace.span_totals trace);
      (match Obs.Trace.instant_counts trace with
      | [] -> ()
      | instants ->
          print_string "\nevents:\n";
          List.iter (fun (name, n) -> Printf.printf "  %-24s x%d\n" name n) instants);
      print_newline ();
      print_string
        (Pipeline.Report.render_convergence (Pipeline.Report.convergence_rows_of_region r));
      Obs.Trace.write_chrome_json trace out;
      Printf.printf "\ntrace written to %s (open in Perfetto or chrome://tracing)\n" out;
      (match metrics_out with
      | Some file ->
          write_metrics metrics file;
          Printf.printf "metrics written to %s\n" file
      | None -> ());
      (* Self-check: the recording we just produced must lint clean. *)
      let rep = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json trace) in
      if Obs.Trace_check.ok rep then 0
      else begin
        print_string (Obs.Trace_check.report_to_string rep);
        1
      end

let trace_cmd =
  let info =
    Cmd.info "trace"
      ~doc:
        "Compile a shape with the flight recorder on and export the recording as \
         Chrome trace-event JSON, with a span/instant/convergence summary; or lint \
         an existing recording with $(b,--lint)."
  in
  Cmd.v info
    Term.(
      const run_trace $ shape_arg $ size_arg $ seed_arg $ fault_rate_arg $ fault_seed_arg
      $ budget_arg $ retries_arg $ trace_file_arg $ metrics_out_arg $ trace_seq_arg
      $ lint_arg)

(* --- dot ----------------------------------------------------------------- *)

let run_dot shape size seed =
  let region = build_shape shape ~size ~seed in
  print_string (Ddg.Graph.to_dot (Ddg.Graph.build region));
  0

let dot_cmd =
  let info = Cmd.info "dot" ~doc:"Print a shape's data dependence graph in Graphviz format." in
  Cmd.v info Term.(const run_dot $ shape_arg $ size_arg $ seed_arg)

(* --- stats --------------------------------------------------------------- *)

let once_arg =
  let doc = "Render one snapshot and exit (for scripts and CI)." in
  Arg.(value & flag & info [ "once" ] ~doc)

let interval_arg =
  let doc = "Seconds between polls of the daemon (clamped to 0.2s minimum)." in
  Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)

(* The watch reply is one line of [key=value] tokens after the
   [watch id=…] head; split it back into an assoc list for rendering. *)
let parse_watch_reply line =
  match String.split_on_char ' ' line with
  | _kind :: rest ->
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i ->
              Some
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
          | None -> None)
        rest
  | [] -> []

let render_watch kv =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let v key = Option.value (List.assoc_opt key kv) ~default:"-" in
  line "GPUACO DAEMON  [%s]  persist=%s" (v "state") (v "persist");
  line "";
  line "  admission      queue %s (shed at %s)   in-flight %s" (v "queue-depth")
    (v "shed-point") (v "in-flight");
  line "  traffic        received %-6s served %-6s rejected %-6s shed %s"
    (v "received") (v "served") (v "rejected") (v "shed");
  line "  ledger         clean %-6s retried %-6s budget %-6s fallback %-6s shed %s"
    (v "clean") (v "retried") (v "budget-exceeded") (v "faulted-fallback")
    (v "shed-overload");
  line "  caches         memo %s (%s entries)   analysis %s" (v "memo-hit-rate")
    (v "memo-entries") (v "analysis-hit-rate");
  line "  latency        p50 %s ns   p99 %s ns   deadline-exceeded %s"
    (v "latency-p50-ns") (v "latency-p99-ns") (v "deadline-exceeded");
  line "  pool           busy %s   idle %s   steals %s" (v "pool-busy")
    (v "pool-idle") (v "steals");
  Buffer.contents buf

let run_stats_daemon path ~once ~interval =
  graceful_signals ();
  let rec loop () =
    match client_exchange path [ "op=watch id=stats" ] with
    | Error m ->
        Printf.eprintf "gpuaco stats: %s\n" m;
        14
    | Ok replies -> (
        let watch =
          List.find_opt
            (fun l -> String.length l >= 6 && String.sub l 0 6 = "watch ")
            replies
        in
        match watch with
        | None ->
            Printf.eprintf "gpuaco stats: daemon sent no watch reply\n";
            14
        | Some line ->
            if not once then print_string "\027[2J\027[H";
            print_string (render_watch (parse_watch_reply line));
            flush stdout;
            if once then 0
            else begin
              (try Unix.sleepf (Float.max 0.2 interval)
               with Unix.Unix_error _ -> ());
              loop ()
            end)
  in
  (try loop () with Exit -> 0)

let run_stats seed socket_path once interval =
  match socket_path with
  | Some path -> run_stats_daemon path ~once ~interval
  | None ->
      let scale = { Workload.Suite.bench_scale with Workload.Suite.seed } in
      let suite = Workload.Suite.generate scale in
      let stats = Workload.Suite.stats suite in
      Printf.printf
        "benchmarks: %d\nkernels: %d\nregions: %d\nmax region size: %d\navg region size: %.1f\n"
        stats.Workload.Suite.num_benchmarks stats.Workload.Suite.num_kernels
        stats.Workload.Suite.num_regions stats.Workload.Suite.max_region_size
        stats.Workload.Suite.avg_region_size;
      0

let stats_cmd =
  let info =
    Cmd.info "stats"
      ~doc:
        "Without $(b,--socket): generate the rocPRIM-like suite and print its \
         statistics. With $(b,--socket): poll a running $(b,gpuaco serve) daemon's \
         $(b,watch) verb and render a live refreshing operational table (queue \
         depth, in-flight, shed, hit rates, latency quantiles, pool occupancy); \
         $(b,--once) prints a single snapshot. Exits 14 on transport failure."
      ~exits:serve_exits
  in
  Cmd.v info Term.(const run_stats $ seed_arg $ client_socket_arg $ once_arg $ interval_arg)

let () =
  let info = Cmd.info "gpuaco" ~doc:"ACO instruction scheduling for the GPU on the (simulated) GPU." in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            schedule_cmd; compile_cmd; serve_cmd; request_cmd; report_cmd; trace_cmd;
            dot_cmd; stats_cmd;
          ]))
