(* Checksummed, versioned blob files with atomic replacement.

   Header line: "gpuaco-blob <kind> <version> <length> <md5hex>\n"
   followed by exactly [length] payload bytes. Every way a file can be
   wrong — absent, foreign, stale, short, corrupt — maps to a typed
   error; [load] raises nothing. *)

type error =
  | Missing
  | Bad_header of string
  | Wrong_kind of { expected : string; got : string }
  | Version_skew of { expected : int; got : int }
  | Corrupt of string

let error_to_string = function
  | Missing -> "no such file"
  | Bad_header s -> "bad header: " ^ s
  | Wrong_kind { expected; got } ->
      Printf.sprintf "wrong kind: expected %s, got %s" expected got
  | Version_skew { expected; got } ->
      Printf.sprintf "version skew: expected %d, got %d" expected got
  | Corrupt s -> "corrupt payload: " ^ s

let magic = "gpuaco-blob"

let check_kind kind =
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\r' then
        invalid_arg "Blobfile: kind must be a single token")
    kind

let save ~kind ~version path payload =
  check_kind kind;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %s %d %d %s\n" magic kind version (String.length payload)
        (Digest.to_hex (Digest.string payload));
      output_string oc payload);
  (* Atomic on POSIX: readers see the old blob or the new one, never a
     half-written file — the crash-safety half of the contract. *)
  Sys.rename tmp path

let load ~kind ~version path =
  check_kind kind;
  if not (Sys.file_exists path) then Error Missing
  else
    match open_in_bin path with
    | exception Sys_error e -> Error (Bad_header e)
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> Error (Bad_header "empty file")
            | header -> (
                match String.split_on_char ' ' (String.trim header) with
                | [ m; k; v; len; md5 ] when String.equal m magic -> (
                    match (int_of_string_opt v, int_of_string_opt len) with
                    | None, _ | _, None -> Error (Bad_header "non-numeric fields")
                    | Some v, Some len ->
                        if not (String.equal k kind) then
                          Error (Wrong_kind { expected = kind; got = k })
                        else if v <> version then
                          Error (Version_skew { expected = version; got = v })
                        else if len < 0 then Error (Bad_header "negative length")
                        else
                          let buf = Bytes.create len in
                          let rec fill off =
                            if off >= len then Ok ()
                            else
                              match input ic buf off (len - off) with
                              | 0 -> Error off
                              | k -> fill (off + k)
                              | exception End_of_file -> Error off
                          in
                          (match fill 0 with
                          | Error got ->
                              Error
                                (Corrupt
                                   (Printf.sprintf "truncated: %d of %d bytes" got len))
                          | Ok () ->
                              let payload = Bytes.unsafe_to_string buf in
                              let got_md5 = Digest.to_hex (Digest.string payload) in
                              if String.equal got_md5 md5 then Ok payload
                              else Error (Corrupt "checksum mismatch")))
                | _ -> Error (Bad_header "not a gpuaco blob")))
