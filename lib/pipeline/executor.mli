(** The execute layer: fan a suite's regions over OCaml domains.

    Scheduling regions are independent compilation problems, so the
    suite flattens into indexed jobs, each carrying everything its
    outcome depends on — name, source region, size-class budget, backend
    seeds, and (through the shared {!Analysis} cache) its analysis
    context. Jobs are claimed from an atomic counter by [jobs] domains
    and the reports merged back by index, which makes the suite report
    canonically identical ({!Report_digest}) to a sequential
    {!Compile.run_suite} for every jobs count.

    The flight-recorder ring buffer is single-writer, so an enabled
    [trace] with [jobs > 1] is refused with [Invalid_argument] — loudly,
    where it used to be silently dropped. [metrics] stays on at any jobs
    count — the registry is mutex-protected — but the {e registration
    order} of metric names then depends on scheduling, so exports may
    list the same values in a different order across runs. *)

type job = {
  j_index : int;  (** merge key: position in suite order *)
  j_kernel : int;  (** index into [suite.kernels] *)
  j_name : string;  (** ["<kernel>/r<i>"], as in sequential compiles *)
  j_region : Ir.Region.t;
  j_budget_ns : float;  (** {!Robust.budget_for} of the region's size class *)
  j_seq_seed : int;
  j_par_seed : int;
}

val jobs_of_suite : Compile.config -> Workload.Suite.t -> job array
(** The suite flattened in suite order ([j_index] = array index). *)

val run_job :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?cache:Analysis.t ->
  Compile.config ->
  job ->
  Compile.region_report
(** Compile one job — {!Compile.run_region} on the job's own name,
    budget and seeds, with the analysis context drawn from [cache] when
    one is shared. *)

val run_suite :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?cache:Analysis.t ->
  Compile.config ->
  Workload.Suite.t ->
  Compile.suite_report
(** Compile the whole suite on [jobs] domains (default 1; values below 1
    clamp to 1). [progress] fires once per kernel at merge time, in
    suite order. The report is canonically identical to
    [Compile.run_suite] with the same configuration, for any [jobs] and
    any [cache] setting.
    @raise Invalid_argument
      when [jobs > 1] and [trace] is enabled (the recorder is
      single-writer). *)
