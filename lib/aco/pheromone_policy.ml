(* Pluggable pheromone-update rules. The colony drivers ([Colony],
   [Gpusim.Par_aco], the weighted standalone loop) call exactly three
   hooks per pass — [init] once before the iteration loop, [update] once
   per completed iteration, [evaporate] for iterations whose winner was
   lost to a fault — and otherwise never touch the table. That boundary
   is what lets MAX-MIN Ant System slot in without the drivers changing.

   Byte-identity discipline: [As] must reproduce the historical inline
   code exactly — same [Pheromone] calls in the same order, same float
   expressions, and the same allocation count inside the drivers'
   measured minor-words windows. The policy record and everything it
   captures are allocated in [make] (backend [prepare] time, outside any
   window); per-iteration [update] passes only immediates (an int cost,
   an existing array), so the only allocation either policy shares with
   the historical code is the boxed deposit amount. The qcheck
   differentials in [test/test_engine.ml] and the policy suite enforce
   this. *)

type spec = As | Mmas

let spec_to_string = function As -> "as" | Mmas -> "mmas"

type t = {
  spec : spec;
  init : Pheromone.t -> initial_order:int array -> initial_cost:int -> unit;
      (* reset the table and bias it toward the initial (heuristic)
         solution; for MMAS also anchor best-so-far and apply the trail
         bounds *)
  update : Pheromone.t -> winner_order:int array -> winner_cost:int -> unit;
      (* one completed iteration: evaporate, deposit, clamp, detect
         stagnation. [winner_cost = max_int] (with [no_order]) encodes a
         winner-less iteration. *)
  evaporate : Pheromone.t -> unit;
      (* a faulted iteration: simulated time passed, so the table still
         evaporates, but no deposit and no stagnation bookkeeping *)
  patience : int;
      (* improvement-free iterations the driver should tolerate before
         terminating a pass; MMAS needs room for its restarts to fire *)
  restarts : unit -> int;  (* stagnation restarts fired so far (MMAS) *)
}

(* Shared winner-less sentinel order: never read (a [max_int] cost is
   never a strict improvement and never deposited), so one empty array
   serves every driver without allocating in the loop. *)
let no_order : int array = [||]

let patience t = t.patience
let spec t = t.spec
let restarts t = t.restarts ()

(* MMAS schedule: give the colony [mmas_max_restarts] chances to escape
   a stagnated table. The per-restart stagnation limit extends the
   vanilla termination allowance by two iterations (a restarted table
   needs at least one full iteration to re-anchor), and the driver-side
   patience covers all restart windows; [Params.max_iterations] still
   caps the pass. *)
let mmas_max_restarts = 2
let mmas_stagnation_limit ~n = Params.termination_condition n + 2
let mmas_patience ~n = (mmas_max_restarts + 1) * mmas_stagnation_limit ~n

let make_as ~(params : Params.t) ~n =
  let initial = params.Params.initial_pheromone in
  let decay = params.Params.decay in
  let deposit = params.Params.deposit in
  {
    spec = As;
    init =
      (fun pheromone ~initial_order ~initial_cost ->
        Pheromone.reset pheromone ~initial;
        Pheromone.deposit_path_scaled pheromone initial_order ~deposit ~cost:initial_cost);
    update =
      (fun pheromone ~winner_order ~winner_cost ->
        Pheromone.decay pheromone decay;
        if winner_cost < max_int then
          Pheromone.deposit_path_scaled pheromone winner_order ~deposit ~cost:winner_cost);
    evaporate = (fun pheromone -> Pheromone.decay pheromone decay);
    patience = Params.termination_condition n;
    restarts = (fun () -> 0);
  }

(* MAX-MIN Ant System (Skinderowicz, arXiv 2003.11902): only the
   best-so-far solution deposits, the trail is clamped into
   [tau_min, tau_max] derived from the best cost, and a colony that
   stagnates for [mmas_stagnation_limit] iterations restarts from a
   uniform table at [tau_max]. A restart reseeds the deposit anchor
   (best-so-far cost and order), never the RNG stream — replays stay
   deterministic and the driver's own global best is untouched.

   State lives in flat arrays so MMAS iterations stay cheap: float
   stores into [bounds] and int stores into [counters] do not box. *)
let make_mmas ~(params : Params.t) ~n ~metrics =
  let initial = params.Params.initial_pheromone in
  let decay = params.Params.decay in
  let deposit = params.Params.deposit in
  (* Evaporation rate: [Params.decay] is a retention factor. *)
  let rho = 1.0 -. decay in
  let rho = if rho > 0.0 then rho else 1.0 in
  let stagnation_limit = mmas_stagnation_limit ~n in
  let best_order = Array.make n 0 in
  (* bounds.(0) = tau_min, bounds.(1) = tau_max *)
  let bounds = [| 0.0; 1.0 |] in
  (* counters: 0 = best-so-far cost (max_int = no anchor), 1 = stagnant
     iterations, 2 = restarts fired this pass, 3 = restarts fired ever *)
  let counters = [| max_int; 0; 0; 0 |] in
  let set_bounds cost =
    let tau_max = deposit /. float_of_int (1 + cost) /. rho in
    bounds.(1) <- tau_max;
    bounds.(0) <- tau_max /. float_of_int (2 * max 1 n)
  in
  let anchor order cost =
    Array.blit order 0 best_order 0 (Array.length order);
    counters.(0) <- cost;
    counters.(1) <- 0;
    set_bounds cost
  in
  {
    spec = Mmas;
    init =
      (fun pheromone ~initial_order ~initial_cost ->
        Pheromone.reset pheromone ~initial;
        Pheromone.deposit_path_scaled pheromone initial_order ~deposit ~cost:initial_cost;
        anchor initial_order initial_cost;
        counters.(2) <- 0;
        Pheromone.clamp pheromone ~lo:bounds.(0) ~hi:bounds.(1));
    update =
      (fun pheromone ~winner_order ~winner_cost ->
        Pheromone.decay pheromone decay;
        if winner_cost < counters.(0) then anchor winner_order winner_cost
        else counters.(1) <- counters.(1) + 1;
        (* Best-so-far-only deposit: the iteration winner influences the
           trail only by becoming the anchor. *)
        if counters.(0) < max_int then
          Pheromone.deposit_path_scaled pheromone best_order ~deposit ~cost:counters.(0);
        Pheromone.clamp pheromone ~lo:bounds.(0) ~hi:bounds.(1);
        if counters.(1) >= stagnation_limit && counters.(2) < mmas_max_restarts
        then begin
          (* Restart: uniform table at tau_max, anchor forgotten so the
             next winner re-seeds it. The RNG stream is deliberately not
             touched (see DESIGN.md). *)
          Pheromone.reset pheromone ~initial:bounds.(1);
          counters.(0) <- max_int;
          counters.(1) <- 0;
          counters.(2) <- counters.(2) + 1;
          counters.(3) <- counters.(3) + 1;
          Obs.Metrics.incr metrics "aco.mmas.restarts"
        end);
    evaporate =
      (fun pheromone ->
        Pheromone.decay pheromone decay;
        Pheromone.clamp pheromone ~lo:bounds.(0) ~hi:bounds.(1));
    patience = mmas_patience ~n;
    restarts = (fun () -> counters.(3));
  }

let make spec ~params ~n ~metrics =
  match spec with As -> make_as ~params ~n | Mmas -> make_mmas ~params ~n ~metrics
