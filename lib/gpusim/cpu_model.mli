(** Host-CPU time model for the sequential ACO baseline.

    The sequential algorithm performs the same abstract work units as the
    ants report ({!Aco.Ant.work} plus pheromone-table upkeep, already
    folded into [Seq_aco] pass stats); on the CPU every unit costs
    [cpu_ns_per_op] with no launch, copy, or divergence charges. *)

val pass_time_ns : Config.t -> work:int -> float

val seconds : float -> float
(** Nanoseconds to seconds. *)
