type t = {
  graph : Ddg.Graph.t;
  occ : Machine.Occupancy.t;
  amd_schedule : Sched.Schedule.t;
  amd_cost : Sched.Cost.t;
  pass1_initial_order : int array;
  pass1_initial_rp : Sched.Cost.rp;
  rp_lb : Sched.Cost.rp;
  length_lb : int;
  pass1_needed : bool;
}

let rp_of_order occ graph order =
  let tracker = Sched.Rp_tracker.create graph in
  Array.iter (fun i -> Sched.Rp_tracker.schedule tracker i) order;
  Sched.Cost.rp_of_tracker occ tracker

let targets_of_rp (rp : Sched.Cost.rp) = (rp.aprp_vgpr, rp.aprp_sgpr)

let prepare occ graph =
  let amd_schedule = Sched.Amd_scheduler.run occ graph in
  let amd_cost = Sched.Cost.of_schedule occ amd_schedule in
  let amd_order = Sched.Schedule.order amd_schedule in
  let luc_order = Sched.List_scheduler.run_order graph Sched.Heuristic.Last_use_count in
  let amd_rp = rp_of_order occ graph amd_order in
  let luc_rp = rp_of_order occ graph luc_order in
  let pass1_initial_order, pass1_initial_rp =
    if Sched.Cost.compare_rp luc_rp amd_rp < 0 then (luc_order, luc_rp) else (amd_order, amd_rp)
  in
  let rp_lb =
    Sched.Cost.rp_of_peaks occ
      ~vgpr:(Ddg.Lower_bounds.register_pressure graph Ir.Reg.Vgpr)
      ~sgpr:(Ddg.Lower_bounds.register_pressure graph Ir.Reg.Sgpr)
  in
  let length_lb = Ddg.Lower_bounds.schedule_length graph in
  {
    graph;
    occ;
    amd_schedule;
    amd_cost;
    pass1_initial_order;
    pass1_initial_rp;
    rp_lb;
    length_lb;
    pass1_needed = Sched.Cost.compare_rp pass1_initial_rp rp_lb > 0;
  }

(* Pass 2's input: stalls added to the best-RP order of pass 1
   (Section IV-C), improved upon when the RP-constrained greedy scheduler
   finds a shorter schedule that meets the same target. Both candidates
   respect the pass-1 RP outcome, so either is a sound fallback when
   pass 2 is filtered out or finds no improvement. *)
let pass2_initial t ~best_pass1_order =
  let padded = Sched.Schedule.latency_pad t.graph best_pass1_order in
  let target_vgpr, target_sgpr = targets_of_rp (rp_of_order t.occ t.graph best_pass1_order) in
  match Sched.Constrained_scheduler.run t.graph ~target_vgpr ~target_sgpr with
  | Some greedy when Sched.Schedule.length greedy < Sched.Schedule.length padded -> greedy
  | Some _ | None -> padded
