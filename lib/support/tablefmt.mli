(** Plain-text table rendering for the benchmark harness.

    Every table in the paper's evaluation section is re-emitted by
    [bench/main.exe] through this module so that the reproduction output
    is directly comparable with the paper's rows. *)

type align = Left | Right

val render :
  ?aligns:align list ->
  title:string ->
  header:string list ->
  string list list ->
  string
(** [render ~title ~header rows] draws an ASCII table. Columns default to
    left alignment for the first column and right for the rest; pass
    [?aligns] to override (shorter lists are padded with [Right]). *)

val pct : float -> string
(** Format a ratio-as-percentage with two decimals, e.g. [pct 0.0552] is
    ["5.52%"]. *)

val pctf : float -> string
(** Format an already-in-percent float, e.g. [pctf 5.52] is ["5.52%"]. *)

val f2 : float -> string
(** Two-decimal float. *)

val int : int -> string
(** Integer with thousands separators, e.g. ["181,883"]. *)
