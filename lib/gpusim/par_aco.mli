(** The GPU-parallel ACO scheduler (Sections IV-B and V) running on the
    simulated GPU.

    One ant per thread, one wavefront per block; per iteration all
    wavefronts construct schedules in lockstep, a tree reduction selects
    the iteration winner, and the pheromone table is updated in parallel.
    The algorithm itself is exact — it produces real schedules that must
    validate — while its wall time is charged by {!Kernel_sim},
    {!Divergence} and {!Mem_model} under the configuration's
    optimization toggles. *)

type pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;  (** total abstract work units of all ants *)
  time_ns : float;  (** simulated GPU wall time of the pass *)
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;  (** divergence-serialized compute ops *)
  single_path_ops : int;  (** the no-divergence floor for the same steps *)
}

val no_pass : pass_stats

type result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
      (** pass 2's input schedule (the latency-padded pass-1 winner) *)
  pass1 : pass_stats;
  pass2 : pass_stats;
}

val run :
  ?params:Aco.Params.t -> ?seed:int -> Config.t -> Machine.Occupancy.t -> Ddg.Graph.t -> result

val run_from_setup : ?params:Aco.Params.t -> ?seed:int -> Config.t -> Aco.Setup.t -> result
(** As {!run} but from a prepared {!Aco.Setup.t}, so the pipeline can
    race the sequential and parallel drivers from identical inputs. *)

val total_time_ns : result -> float
(** GPU time across both passes. *)
