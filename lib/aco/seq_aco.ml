type pass_stats = Engine.Types.pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;
  time_ns : float;
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;
  single_path_ops : int;
  lockstep_steps : int;
  ant_steps : int;
  selections : int;
  best_costs : int array;
  minor_words : float;
  retries : int;
  aborted_budget : bool;
  aborted_faults : bool;
  fault_counts : Engine.Types.fault_counts;
}

let no_pass = Engine.Types.no_pass

type result = Engine.Types.result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type state = {
  params : Params.t;
  rng : Support.Rng.t;
  ants : Ant.t array;
  arena : Support.Arena.t;
  pheromone : Pheromone.t;
  termination : int;
  metrics : Obs.Metrics.t;
  rp_scalar_of_ant : Ant.t -> int;
}

(* The sequential colony meters abstract work units, never wall time, so
   its budget currency is [Work]; the pipeline converts nanoseconds to
   work through its CPU cost model before handing a budget down. *)
let work_of_budget = function
  | Engine.Types.Unlimited -> max_int
  | Engine.Types.Work w -> w
  | Engine.Types.Time_ns _ ->
      invalid_arg "Seq_aco: nanosecond budgets require a time-model backend"

module Backend_impl = struct
  let name = "seq"

  let caps =
    { Engine.Types.rp_pass = true; faults = false; trace = false; time_model = false }

  type nonrec state = state

  let prepare (ctx : Engine.Backend.ctx) (rc : Engine.Region_ctx.t) =
    let setup = rc.Engine.Region_ctx.setup in
    let graph = setup.Setup.graph in
    let occ = setup.Setup.occ in
    let n = graph.Ddg.Graph.n in
    let params = ctx.Engine.Backend.params in
    let rng = Support.Rng.create ctx.Engine.Backend.seed in
    (* The region context's analyses and one SoA arena back the whole
       colony; nothing region-derived is recomputed here. *)
    let shared = Ant.shared_of_region_ctx rc in
    let ints, floats = Ant.arena_demand shared in
    let lanes = params.Params.ants_per_iteration in
    let arena = Support.Arena.take ~ints:(lanes * ints) ~floats:(lanes * floats) in
    let ants = Array.init lanes (fun _ -> Ant.create ~shared ~arena graph params) in
    let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
    let termination = Params.termination_condition n in
    let rp_scalar_of_ant ant =
      let v, s = Ant.rp_peaks ant in
      Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
    in
    {
      params;
      rng;
      ants;
      arena;
      pheromone;
      termination;
      metrics = ctx.Engine.Backend.metrics;
      rp_scalar_of_ant;
    }

  let run_order_pass st (req : Engine.Backend.order_request) =
    let order, _, stats =
      Colony.run_pass ~params:st.params ~rng:st.rng ~ants:st.ants ~pheromone:st.pheromone
        ~mode:Ant.Rp_pass ~cost_of_ant:st.rp_scalar_of_ant ~artifact_of_ant:Ant.order
        ~allow_optional_stalls:true
        ~budget_work:(work_of_budget req.Engine.Backend.o_budget)
        ~metrics:st.metrics ~pass_label:req.Engine.Backend.o_label
        ~initial_cost:req.Engine.Backend.o_initial_cost
        ~initial_order:req.Engine.Backend.o_initial_order
        ~initial_artifact:req.Engine.Backend.o_initial_order
        ~lb_cost:req.Engine.Backend.o_lb_cost ~termination:st.termination
    in
    (order, stats)

  let run_schedule_pass st (req : Engine.Backend.schedule_request) =
    let schedule, _, stats =
      Colony.run_pass ~params:st.params ~rng:st.rng ~ants:st.ants ~pheromone:st.pheromone
        ~mode:
          (Ant.Ilp_pass
             {
               target_vgpr = req.Engine.Backend.s_target_vgpr;
               target_sgpr = req.Engine.Backend.s_target_sgpr;
             })
        ~cost_of_ant:Ant.length
        ~artifact_of_ant:(fun ant ->
          match Ant.schedule ant with
          | Some s -> s
          | None -> invalid_arg "Seq_aco: finished ant produced invalid schedule")
        ~allow_optional_stalls:true
        ~budget_work:(work_of_budget req.Engine.Backend.s_budget)
        ~metrics:st.metrics ~pass_label:req.Engine.Backend.s_label
        ~initial_cost:req.Engine.Backend.s_initial_length
        ~initial_order:(Sched.Schedule.order req.Engine.Backend.s_initial)
        ~initial_artifact:req.Engine.Backend.s_initial
        ~lb_cost:req.Engine.Backend.s_length_lb ~termination:st.termination
    in
    (schedule, stats)

  (* Two_pass runs teardown even on raise; returning the arena here lets
     the next region job on this domain reuse the backing arrays. The
     ants' slices are dead by now — results were extracted during the
     passes. *)
  let teardown st = Support.Arena.give st.arena
end

let backend : Engine.Backend.t = (module Backend_impl)
let register () = Engine.Registry.register backend

let run_from_setup ?(params = Params.default) ?(seed = 1) ?(budget_work = max_int)
    ?(metrics = Obs.Metrics.null) ?(label = "") (setup : Setup.t) =
  Engine.Two_pass.run backend
    {
      Engine.Backend.params;
      seed;
      budget =
        (if budget_work = max_int then Engine.Types.Unlimited
         else Engine.Types.Work budget_work);
      trace = Obs.Trace.null;
      metrics;
      label;
      ext = [];
    }
    (Engine.Region_ctx.of_setup setup)

let run ?params ?seed occ graph = run_from_setup ?params ?seed (Setup.prepare occ graph)
