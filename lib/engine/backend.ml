type ext = ..

type ctx = {
  params : Params.t;
  seed : int;
  budget : Types.budget;
  trace : Obs.Trace.t;
  metrics : Obs.Metrics.t;
  label : string;
  ext : ext list;
}

let null_ctx =
  {
    params = Params.default;
    seed = 1;
    budget = Types.Unlimited;
    trace = Obs.Trace.null;
    metrics = Obs.Metrics.null;
    label = "";
    ext = [];
  }

type order_request = {
  o_label : string;
  o_budget : Types.budget;
  o_initial_cost : int;
  o_initial_order : int array;
  o_lb_cost : int;
}

type schedule_request = {
  s_label : string;
  s_budget : Types.budget;
  s_target_vgpr : int;
  s_target_sgpr : int;
  s_initial : Sched.Schedule.t;
  s_initial_length : int;
  s_length_lb : int;
}

module type S = sig
  val name : string
  val caps : Types.caps
  val objective : Sched.Objective.t option

  type state

  val prepare : ctx -> Region_ctx.t -> state
  val run_order_pass : state -> order_request -> int array * Types.pass_stats
  val run_schedule_pass : state -> schedule_request -> Sched.Schedule.t * Types.pass_stats
  val teardown : state -> unit
end

type t = (module S)

let name (module B : S) = B.name
let caps (module B : S) = B.caps
let objective (module B : S) = B.objective
