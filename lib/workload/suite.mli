(** The rocPRIM-like benchmark suite facsimile.

    The paper's evaluation compiles 341 scheduling-sensitive rocPRIM
    benchmarks built on 269 kernels with 181,883 scheduling regions
    (Table 1). This module generates a scaled-down suite with the same
    anatomy: a pool of kernels — each one hot region from a primitive
    family ({!Shapes}) plus many small prologue/epilogue regions — and
    benchmarks that invoke those kernels (some kernels shared by several
    benchmarks, as in rocPRIM) with their own workload parameters.

    Scaling knobs keep a laptop reproduction tractable; DESIGN.md records
    the correspondence. Generation is deterministic in the seed. *)

type kernel = {
  kernel_name : string;
  regions : Ir.Region.t list;
  hot_index : int;  (** index of the hot (loop-body) region in [regions] *)
  mem_ratio : float;  (** 0..1: fraction of runtime that is memory traffic *)
}

type benchmark = {
  bench_name : string;
  kernel : kernel;
  items : int;  (** work items per launch — execution weight of the hot region *)
  bytes_per_item : float;  (** throughput denominator (GB/s reporting) *)
}

type t = { kernels : kernel list; benchmarks : benchmark list }

type scale = {
  seed : int;
  num_kernels : int;
  extra_benchmarks : int;  (** benchmarks beyond one-per-kernel, on shared kernels *)
  size_factor : float;  (** multiplies hot-region size parameters *)
  small_regions_min : int;
  small_regions_max : int;
  include_giant : bool;  (** add one very large region (the Table 1 tail) *)
}

val test_scale : scale
(** Small: unit/property tests. *)

val bench_scale : scale
(** The scale used by [bench/main.exe] to regenerate the paper's tables. *)

val generate : scale -> t

val skewed : ?seed:int -> ?giants:int -> ?tiny:int -> unit -> t
(** A deliberately unbalanced compile workload: [giants] (default 3)
    growing matmul-tile regions next to [tiny] (default 48) small ones,
    one region per kernel, no benchmarks. The adversarial input for the
    executor's work stealing — a static deal strands whoever drew the
    giants — and the shape the scaling benchmark sweeps. Deterministic
    in [seed] (default 4242). *)

val replicate : copies:int -> t -> t
(** The suite with every kernel listed [copies] times (copy 0 keeps the
    original names, later copies get a ["~dup<c>"] suffix), sharing the
    same region values — a duplicate-heavy compile workload, the way
    template instantiation repeats structurally identical regions across
    a real suite. Every replica region is a guaranteed analysis-cache
    hit. Benchmarks are untouched (replication multiplies compile work,
    not execution work); [copies <= 1] is the identity. *)

type stats = {
  num_benchmarks : int;
  num_kernels : int;
  num_regions : int;
  max_region_size : int;
  avg_region_size : float;
}

val stats : t -> stats

val all_regions : t -> Ir.Region.t list
(** Every region of every kernel, each exactly once (kernels shared by
    several benchmarks are not repeated). *)
