type dep_kind = Flow | Anti | Output | Mem | Ctrl

type edge = { src : int; dst : int; latency : int; kind : dep_kind }

type t = {
  region : Ir.Region.t;
  n : int;
  succs : (int * int) array array;
  preds : (int * int) array array;
  edges : edge array;
}

(* Memory classification: scalar (constant) loads are exempt from
   ordering — they read read-only memory. An LDS instruction with defs is
   a read, without defs a write. *)
let mem_access (i : Ir.Instr.t) =
  match i.kind with
  | Ir.Opcode.Vmem_load -> `Read
  | Ir.Opcode.Vmem_store -> `Write
  | Ir.Opcode.Lds -> if i.defs = [] then `Write else `Read
  | Ir.Opcode.Smem_load | Ir.Opcode.Valu | Ir.Opcode.Valu_trans | Ir.Opcode.Salu
  | Ir.Opcode.Branch | Ir.Opcode.Export ->
      `None

let build region =
  let instrs = (region : Ir.Region.t).instrs in
  let n = Array.length instrs in
  (* (src, dst) -> (latency, kind); keep max latency on merge. *)
  let table : (int * int, int * dep_kind) Hashtbl.t = Hashtbl.create (4 * n) in
  let add_edge src dst latency kind =
    if src <> dst then
      match Hashtbl.find_opt table (src, dst) with
      | Some (l, k) -> if latency > l then Hashtbl.replace table (src, dst) (latency, k)
      | None -> Hashtbl.add table (src, dst) (latency, kind)
  in
  let last_def : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let users : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  let last_store = ref (-1) in
  let loads_since_store = ref [] in
  Array.iteri
    (fun i (ins : Ir.Instr.t) ->
      List.iter
        (fun u ->
          (match Hashtbl.find_opt last_def u with
          | Some d -> add_edge d i (instrs.(d)).latency Flow
          | None -> ());
          let us = Option.value (Hashtbl.find_opt users u) ~default:[] in
          Hashtbl.replace users u (i :: us))
        ins.uses;
      List.iter
        (fun d ->
          (match Hashtbl.find_opt last_def d with
          | Some j -> add_edge j i 1 Output
          | None -> ());
          (match Hashtbl.find_opt users d with
          | Some us -> List.iter (fun k -> add_edge k i 0 Anti) us
          | None -> ());
          Hashtbl.replace last_def d i;
          Hashtbl.replace users d [])
        ins.defs;
      (match mem_access ins with
      | `Write ->
          if !last_store >= 0 then add_edge !last_store i 1 Mem;
          List.iter (fun l -> add_edge l i 0 Mem) !loads_since_store;
          last_store := i;
          loads_since_store := []
      | `Read ->
          if !last_store >= 0 then add_edge !last_store i 1 Mem;
          loads_since_store := i :: !loads_since_store
      | `None -> ());
      if Ir.Opcode.equal ins.kind Ir.Opcode.Branch then
        for j = 0 to i - 1 do
          add_edge j i 1 Ctrl
        done)
    instrs;
  let edges =
    Hashtbl.fold
      (fun (src, dst) (latency, kind) acc -> { src; dst; latency; kind } :: acc)
      table []
    |> List.sort (fun a b ->
           let c = Int.compare a.src b.src in
           if c <> 0 then c else Int.compare a.dst b.dst)
    |> Array.of_list
  in
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  Array.iter
    (fun e ->
      succ_lists.(e.src) <- (e.dst, e.latency) :: succ_lists.(e.src);
      pred_lists.(e.dst) <- (e.src, e.latency) :: pred_lists.(e.dst))
    edges;
  let to_sorted_array l =
    let a = Array.of_list l in
    Array.sort (fun (x, _) (y, _) -> Int.compare x y) a;
    a
  in
  {
    region;
    n;
    succs = Array.map to_sorted_array succ_lists;
    preds = Array.map to_sorted_array pred_lists;
    edges;
  }

let size t = t.n
let num_preds t i = Array.length t.preds.(i)
let num_succs t i = Array.length t.succs.(i)

let roots t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if num_preds t i = 0 then acc := i :: !acc
  done;
  !acc

let leaves t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if num_succs t i = 0 then acc := i :: !acc
  done;
  !acc

let latency_between t i j =
  let rec find k =
    if k >= Array.length t.succs.(i) then None
    else
      let dst, lat = t.succs.(i).(k) in
      if dst = j then Some lat else find (k + 1)
  in
  find 0

let instr t i = (t.region : Ir.Region.t).instrs.(i)

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph ddg {\n";
  for i = 0 to t.n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" i (Ir.Instr.to_string (instr t i)))
  done;
  Array.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" e.src e.dst e.latency))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
