module B = Ir.Builder

(* Shared preamble: kernel-argument pointer in an SGPR plus a lane
   address in a VGPR — present in virtually every real region. *)
let preamble b =
  let base = B.sload b ~name:"s_load_args" ~addr:[] () in
  let lane = B.valu b ~name:"v_lane_addr" [] in
  let addr = B.valu b ~name:"v_addr" [ lane ] in
  (base, addr)

(* Some vector ALU op, occasionally transcendental. *)
let vop rng b uses =
  if Support.Rng.bool rng 0.15 then B.valu_trans b ~name:"v_rcp" uses
  else B.valu b ~name:"v_fma" uses

let reduction rng ~items =
  let b = B.create ~name:"reduction" in
  let base, addr = preamble b in
  let loads = List.init items (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  let rec tree = function
    | [] -> invalid_arg "Shapes.reduction: items must be positive"
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | x :: y :: rest -> vop rng b [ x; y ] :: pair rest
          | leftover -> leftover
        in
        tree (pair xs)
  in
  let total = tree loads in
  B.vstore b ~data:[ total ] ~addr:[ base; addr ] ();
  B.finish b

let scan rng ~items =
  let b = B.create ~name:"scan" in
  let base, addr = preamble b in
  let first = B.vload b ~addr:[ base; addr ] () in
  let running = ref first in
  for i = 1 to items - 1 do
    let x = B.vload b ~addr:[ base; addr ] () in
    running := vop rng b [ !running; x ];
    (* Periodic LDS exchange of the running prefix, as in block scans. *)
    if i mod 4 = 0 then begin
      B.lds_write b ~data:[ !running ] ~addr:[ addr ] ();
      let back = B.lds_read b ~addr:[ addr ] () in
      running := B.valu b [ !running; back ]
    end
  done;
  B.vstore b ~data:[ !running ] ~addr:[ base; addr ] ();
  B.finish b

let transform rng ~unroll ~chain =
  let b = B.create ~name:"transform" in
  let base, addr = preamble b in
  let scale = B.vload b ~name:"v_load_scale" ~addr:[ base ] () in
  (* Source order hoists every load to the top: the scheduler decides how
     deep to re-interleave (latency hiding vs pressure). *)
  let loads = List.init unroll (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  let outs =
    List.map
      (fun x ->
        let rec go v k = if k = 0 then v else go (vop rng b [ v; scale ]) (k - 1) in
        go x chain)
      loads
  in
  List.iter (fun r -> B.vstore b ~data:[ r ] ~addr:[ base; addr ] ()) outs;
  B.finish b

let stencil rng ~outputs ~radius =
  let b = B.create ~name:"stencil" in
  let base, addr = preamble b in
  let width = outputs + (2 * radius) in
  let loads = Array.init width (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  for j = 0 to outputs - 1 do
    let acc = ref loads.(j) in
    for d = 1 to 2 * radius do
      acc := vop rng b [ !acc; loads.(j + d) ]
    done;
    B.vstore b ~data:[ !acc ] ~addr:[ base; addr ] ()
  done;
  B.finish b

let matmul_tile rng ~m ~k =
  let b = B.create ~name:"matmul_tile" in
  let base, addr = preamble b in
  let accs = Array.init m (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  for _t = 0 to k - 1 do
    let shared = B.vload b ~name:"v_load_b" ~addr:[ base; addr ] () in
    for j = 0 to m - 1 do
      let a = B.vload b ~name:"v_load_a" ~addr:[ base; addr ] () in
      accs.(j) <- vop rng b [ accs.(j); a; shared ]
    done
  done;
  Array.iter (fun acc -> B.vstore b ~data:[ acc ] ~addr:[ base; addr ] ()) accs;
  B.finish b

let histogram rng ~items =
  let b = B.create ~name:"histogram" in
  let base, addr = preamble b in
  for _i = 0 to items - 1 do
    let v = B.vload b ~addr:[ base; addr ] () in
    let bin = vop rng b [ v ] in
    let old = B.lds_read b ~addr:[ bin ] () in
    let sum = B.valu b [ old; v ] in
    B.lds_write b ~data:[ sum ] ~addr:[ bin ] ()
  done;
  B.finish b

let sort_pass rng ~items =
  let b = B.create ~name:"sort_pass" in
  let base, addr = preamble b in
  let keys = Array.init items (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  (* One bitonic-like compare/exchange stage with a couple of strides. *)
  let stride = ref (max 1 (items / 2)) in
  while !stride >= 1 do
    let s = !stride in
    for i = 0 to items - 1 - s do
      if i land s = 0 then begin
        let lo = keys.(i) and hi = keys.(i + s) in
        let cmp = B.salu b ~name:"v_cmp_vcc" [ lo; hi ] in
        keys.(i) <- B.valu b ~name:"v_min" [ lo; hi; cmp ];
        keys.(i + s) <- vop rng b [ lo; hi; cmp ]
      end
    done;
    stride := s / 2
  done;
  Array.iter (fun kkey -> B.vstore b ~data:[ kkey ] ~addr:[ base; addr ] ()) keys;
  B.finish b

let scalar_setup rng ~count =
  let b = B.create ~name:"scalar_setup" in
  let s = ref (B.sload b ~addr:[] ()) in
  for _i = 1 to count - 1 do
    s := (if Support.Rng.bool rng 0.3 then B.sload b ~addr:[ !s ] () else B.salu b [ !s ])
  done;
  B.mark_live_out b !s;
  B.finish b

let gather_compute rng ~lanes ~chain =
  let b = B.create ~name:"gather_compute" in
  let base, addr = preamble b in
  let outs =
    List.init lanes (fun _ ->
        let x = B.vload b ~addr:[ base; addr ] () in
        let rec go v k = if k = 0 then v else go (vop rng b [ v ]) (k - 1) in
        go x chain)
  in
  List.iter (fun r -> B.vstore b ~data:[ r ] ~addr:[ base; addr ] ()) outs;
  B.finish b

let wide_accum rng ~accumulators ~rounds =
  let b = B.create ~name:"wide_accum" in
  let base, addr = preamble b in
  let accs = Array.init accumulators (fun _ -> B.vload b ~addr:[ base; addr ] ()) in
  for t = 0 to rounds - 1 do
    let x = B.vload b ~addr:[ base; addr ] () in
    let j = t mod accumulators in
    accs.(j) <- vop rng b [ accs.(j); x ]
  done;
  (* tree-combine the accumulators *)
  let rec tree = function
    | [] -> invalid_arg "Shapes.wide_accum"
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | x :: y :: rest -> B.valu b [ x; y ] :: pair rest
          | leftover -> leftover
        in
        tree (pair xs)
  in
  let total = tree (Array.to_list accs) in
  B.vstore b ~data:[ total ] ~addr:[ base; addr ] ();
  B.finish b

(* The generator-spec surface: one family name plus a single size dial,
   mapped onto each family's structural parameters. [gpuaco compile
   --shape] and the serve protocol's [shape=] requests share this
   mapping, so a served generator request reproduces exactly the region
   a direct CLI compile of the same spec would schedule. *)

let spec_names =
  [
    "reduction"; "scan"; "transform"; "stencil"; "matmul"; "histogram"; "sort";
    "gather"; "wide-accum"; "scalar";
  ]

let of_spec ~name ~size ~seed =
  let rng = Support.Rng.create seed in
  let s = max 2 size in
  match name with
  | "reduction" -> Some (reduction rng ~items:s)
  | "scan" -> Some (scan rng ~items:s)
  | "transform" -> Some (transform rng ~unroll:(max 2 (s / 5)) ~chain:4)
  | "stencil" -> Some (stencil rng ~outputs:(max 2 (s / 9)) ~radius:4)
  | "matmul" -> Some (matmul_tile rng ~m:(max 2 (s / 8)) ~k:4)
  | "histogram" -> Some (histogram rng ~items:(max 2 (s / 5)))
  | "sort" -> Some (sort_pass rng ~items:(max 2 (s / 8)))
  | "gather" -> Some (gather_compute rng ~lanes:(max 2 (s / 4)) ~chain:2)
  | "wide-accum" -> Some (wide_accum rng ~accumulators:(max 2 (s / 3)) ~rounds:s)
  | "scalar" -> Some (scalar_setup rng ~count:s)
  | _ -> None
