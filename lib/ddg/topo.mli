(** Topological utilities over the DDG.

    The DDG is acyclic by construction (edges always point forward in the
    original program order), but the schedulers and the transitive closure
    need explicit topological orders and order validation. *)

val order : Graph.t -> int array
(** A topological order of the nodes (Kahn's algorithm, ties broken by
    original program order, so the result is deterministic). *)

val is_topological : Graph.t -> int array -> bool
(** [is_topological g o] checks that [o] is a permutation of the nodes in
    which every edge goes from an earlier to a later position. *)

val reverse_order : Graph.t -> int array
(** [order] reversed (children before parents). *)
