(** One sequential ACO pass over a prepared colony — the CPU execution
    substrate shared by the [seq] and [weighted] backends. The GPU-model
    backend has its own lockstep loop in [Gpusim.Par_aco]. *)

val run_pass :
  params:Params.t ->
  rng:Support.Rng.t ->
  ants:Ant.t array ->
  pheromone:Pheromone.t ->
  policy:Pheromone_policy.t ->
  mode:Ant.mode ->
  cost_of_ant:(Ant.t -> int) ->
  artifact_of_ant:(Ant.t -> 'a) ->
  allow_optional_stalls:bool ->
  budget_work:int ->
  metrics:Obs.Metrics.t ->
  pass_label:string ->
  initial_cost:int ->
  initial_order:int array ->
  initial_artifact:'a ->
  lb_cost:int ->
  termination:int ->
  'a * int * Engine.Types.pass_stats
(** Returns (best artifact, its cost, stats). The stats fill only the
    fields a CPU colony can measure — work units, iteration counts, the
    convergence series and minor words; the GPU-only fields stay at
    {!Engine.Types.no_pass}'s zeros. [budget_work] is a compile budget
    in abstract work units; a pass that exhausts it stops after the
    current iteration, keeps its best-so-far, and reports
    [aborted_budget].

    [policy] owns every pheromone write (see {!Pheromone_policy});
    callers normally pass [Pheromone_policy.patience policy] as
    [termination] so the loop allowance matches the policy's restart
    schedule. *)
