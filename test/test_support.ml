let test_rng_determinism () =
  let a = Support.Rng.create 42 and b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Support.Rng.int64 a) (Support.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Support.Rng.create 1 and b = Support.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Support.Rng.int64 a) (Support.Rng.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_bounds () =
  let rng = Support.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Support.Rng.float rng in
    Alcotest.(check bool) "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let parent = Support.Rng.create 3 in
  let c1 = Support.Rng.split parent in
  let c2 = Support.Rng.split parent in
  Alcotest.(check bool) "children differ" false
    (Int64.equal (Support.Rng.int64 c1) (Support.Rng.int64 c2))

let test_rng_copy () =
  let a = Support.Rng.create 9 in
  ignore (Support.Rng.int64 a);
  let b = Support.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Support.Rng.int64 a) (Support.Rng.int64 b)

let test_rng_shuffle_permutation () =
  let rng = Support.Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Support.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_bitset_basic () =
  let s = Support.Bitset.create 200 in
  Alcotest.(check bool) "empty" true (Support.Bitset.is_empty s);
  Support.Bitset.add s 0;
  Support.Bitset.add s 63;
  Support.Bitset.add s 199;
  Alcotest.(check int) "cardinal" 3 (Support.Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Support.Bitset.mem s 63);
  Alcotest.(check bool) "not mem 100" false (Support.Bitset.mem s 100);
  Support.Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Support.Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 199 ] (Support.Bitset.to_list s)

let test_bitset_out_of_range () =
  let s = Support.Bitset.create 10 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Support.Bitset.add s 10)

let bitset_of_list n l = Support.Bitset.of_list n l

let prop_bitset_union =
  QCheck.Test.make ~name:"bitset union = list union" ~count:200
    QCheck.(pair (small_list (int_bound 99)) (small_list (int_bound 99)))
    (fun (xs, ys) ->
      let a = bitset_of_list 100 xs and b = bitset_of_list 100 ys in
      Support.Bitset.union_into ~into:a b;
      Support.Bitset.to_list a = List.sort_uniq compare (xs @ ys))

let prop_bitset_inter =
  QCheck.Test.make ~name:"inter_cardinal = list intersection size" ~count:200
    QCheck.(pair (small_list (int_bound 99)) (small_list (int_bound 99)))
    (fun (xs, ys) ->
      let a = bitset_of_list 100 xs and b = bitset_of_list 100 ys in
      let expected =
        List.length (List.filter (fun x -> List.mem x (List.sort_uniq compare ys))
                       (List.sort_uniq compare xs))
      in
      Support.Bitset.inter_cardinal a b = expected)

let prop_bitset_diff_subset =
  QCheck.Test.make ~name:"diff is subset of original" ~count:200
    QCheck.(pair (small_list (int_bound 99)) (small_list (int_bound 99)))
    (fun (xs, ys) ->
      let a = bitset_of_list 100 xs and b = bitset_of_list 100 ys in
      let d = Support.Bitset.copy a in
      Support.Bitset.diff_into ~into:d b;
      Support.Bitset.subset d a)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Support.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Support.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Support.Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Support.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Support.Stats.percentile 0.0 [ 2.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p100 is max" 3.0 (Support.Stats.percentile 1.0 [ 2.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Support.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_cv () =
  Alcotest.(check (float 1e-9)) "cv of constants" 0.0
    (Support.Stats.coeff_of_variation [ 5.0; 5.0; 5.0 ])

let test_stats_empty () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Support.Stats.mean []))

let test_stats_geomean_nonpositive () =
  Alcotest.check_raises "geomean rejects zero"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Support.Stats.geomean [ 1.0; 0.0 ]))

let test_histogram () =
  let h = Support.Stats.histogram ~edges:[| 0.0; 1.0; 2.0; 3.0 |] [ 0.5; 1.5; 1.9; 2.5; -1.0; 9.0 ] in
  Alcotest.(check (array int)) "counts with clamping" [| 2; 2; 2 |] h.Support.Stats.counts;
  Alcotest.(check int) "total" 6 h.Support.Stats.total;
  let rendered =
    Support.Stats.render_histogram ~title:"t" ~label:(fun i -> string_of_int i) h
  in
  Alcotest.(check bool) "has bars" true (String.length rendered > 10)

let prop_stats_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.01 100.0))
    (fun xs -> Support.Stats.geomean xs <= Support.Stats.mean xs +. 1e-9)

let test_pqueue_drains_sorted () =
  let q = Support.Pqueue.create ~cmp:Int.compare in
  List.iter (Support.Pqueue.push q) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  let rec drain acc =
    match Support.Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "max-heap order" [ 9; 6; 5; 4; 3; 2; 1; 1 ] (drain [])

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let q = Support.Pqueue.create ~cmp:Int.compare in
      List.iter (Support.Pqueue.push q) xs;
      let rec drain acc =
        match Support.Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort (fun a b -> compare b a) xs)

let test_pqueue_peek_clear () =
  let q = Support.Pqueue.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "peek empty" None (Support.Pqueue.peek q);
  Support.Pqueue.push q 5;
  Support.Pqueue.push q 7;
  Alcotest.(check (option int)) "peek max" (Some 7) (Support.Pqueue.peek q);
  Alcotest.(check int) "length" 2 (Support.Pqueue.length q);
  Support.Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Support.Pqueue.is_empty q)

exception Probe_failed

let test_perfcount_span_exception_safe () =
  let c = Support.Perfcount.create () in
  (* a raising measured function must still accumulate its delta and
     re-raise the original exception *)
  Alcotest.check_raises "re-raises" Probe_failed (fun () ->
      ignore
        (Support.Perfcount.span ~into:c (fun () ->
             ignore (Sys.opaque_identity (Array.make 256 0.0));
             raise Probe_failed)));
  Alcotest.(check bool) "delta accumulated before the raise" true
    (Support.Perfcount.total c >= 256.0);
  (* the counter remains usable: a closed span keeps accumulating *)
  let before = Support.Perfcount.total c in
  let (), d =
    Support.Perfcount.span ~into:c (fun () ->
        ignore (Sys.opaque_identity (Array.make 128 0.0)))
  in
  Alcotest.(check bool) "span returns its own delta" true (d >= 128.0);
  Alcotest.(check (float 1e-9)) "into accumulates the same delta" (before +. d)
    (Support.Perfcount.total c)

let test_perfcount_stop_without_start () =
  let c = Support.Perfcount.create () in
  (* stop on a never-started counter is a no-op, not an error *)
  Support.Perfcount.stop c;
  Alcotest.(check (float 0.0)) "nothing counted" 0.0 (Support.Perfcount.total c);
  (* reset closes any open window; a following stop must also be a no-op *)
  Support.Perfcount.start c;
  ignore (Sys.opaque_identity (Array.make 64 0.0));
  Support.Perfcount.reset c;
  Support.Perfcount.stop c;
  Alcotest.(check (float 0.0)) "reset discards the open window" 0.0
    (Support.Perfcount.total c);
  (* double stop after a real window counts the window exactly once *)
  Support.Perfcount.start c;
  ignore (Sys.opaque_identity (Array.make 64 0.0));
  Support.Perfcount.stop c;
  let t = Support.Perfcount.total c in
  Support.Perfcount.stop c;
  Alcotest.(check (float 1e-9)) "second stop adds nothing" t (Support.Perfcount.total c)

let test_pool_observer () =
  (* the process-global observer sees the pool's lifecycle: lazy spawns
     first, then one acquire/release pair per run, with the worker
     count. The callback runs on whichever domain fires the event, so
     collection is mutex-guarded. *)
  let events = ref [] in
  let lock = Mutex.create () in
  Support.Domain_pool.set_observer
    (Some
       (fun e ->
         Mutex.lock lock;
         events := e :: !events;
         Mutex.unlock lock));
  let pool = Support.Domain_pool.create ~size:2 () in
  Fun.protect
    ~finally:(fun () ->
      Support.Domain_pool.set_observer None;
      Support.Domain_pool.shutdown pool)
    (fun () ->
      Support.Domain_pool.run pool ~workers:3 (fun _ -> ());
      Support.Domain_pool.run pool ~workers:3 (fun _ -> ());
      let seen = List.rev !events in
      let count p = List.length (List.filter p seen) in
      Alcotest.(check int) "helpers spawned once, lazily" 2
        (count (function Support.Domain_pool.Spawned _ -> true | _ -> false));
      Alcotest.(check int) "one acquire per run" 2
        (count (function Support.Domain_pool.Acquired 3 -> true | _ -> false));
      Alcotest.(check int) "one release per run" 2
        (count (function Support.Domain_pool.Released 3 -> true | _ -> false));
      (* spawning precedes the first release (workers exist by the time
         the run finishes) *)
      (match seen with
      | Support.Domain_pool.Acquired _ :: _ | Support.Domain_pool.Spawned _ :: _ -> ()
      | _ -> Alcotest.fail "first event is neither acquire nor spawn");
      (* a cleared observer costs nothing and sees nothing *)
      Support.Domain_pool.set_observer None;
      let before = List.length !events in
      Support.Domain_pool.run pool ~workers:3 (fun _ -> ());
      Alcotest.(check int) "cleared observer sees nothing" before
        (List.length !events))

let test_tablefmt () =
  let s =
    Support.Tablefmt.render ~title:"T" ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check string) "pct" "5.52%" (Support.Tablefmt.pct 0.0552);
  Alcotest.(check string) "pctf" "12.30%" (Support.Tablefmt.pctf 12.3);
  Alcotest.(check string) "thousands" "181,883" (Support.Tablefmt.int 181883);
  Alcotest.(check string) "negative thousands" "-1,234" (Support.Tablefmt.int (-1234))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset range check" `Quick test_bitset_out_of_range;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats cv" `Quick test_stats_cv;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats geomean domain" `Quick test_stats_geomean_nonpositive;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "pqueue drain" `Quick test_pqueue_drains_sorted;
    Alcotest.test_case "pqueue peek/clear" `Quick test_pqueue_peek_clear;
    Alcotest.test_case "perfcount span exception-safe" `Quick
      test_perfcount_span_exception_safe;
    Alcotest.test_case "perfcount stop is total" `Quick test_perfcount_stop_without_start;
    Alcotest.test_case "domain pool lifecycle observer" `Quick test_pool_observer;
    Alcotest.test_case "tablefmt" `Quick test_tablefmt;
  ]
  @ Tu.qtests
      [
        prop_bitset_union;
        prop_bitset_inter;
        prop_bitset_diff_subset;
        prop_stats_geomean_le_mean;
        prop_pqueue_sorted;
      ]
