(** Metrics registry: named counters, gauges, histogram summaries and
    append-only series, registered on first use, exported as JSON or CSV.

    {!null} is the disabled registry: every operation on it is a single
    branch on an immutable bool, so instrumentation guarded by it adds
    no allocation and no writes.

    An enabled registry is domain-safe: every mutation and registry read
    takes an internal mutex, so the executor's domain workers may share
    one registry. The disabled registry never touches the mutex. *)

type t

val create : unit -> t
val null : t
val enabled : t -> bool

val incr : t -> string -> unit
(** Bump a counter by one. *)

val add : t -> string -> int -> unit
(** Bump a counter by [n]. *)

val set : t -> string -> float -> unit
(** Set a gauge (min/max/mean of the sets are kept too). *)

val observe : t -> string -> float -> unit
(** Feed a histogram summary (count/sum/min/max/mean). *)

val push : t -> string -> float -> unit
(** Append to a series: like {!observe} but the individual values are
    kept in order and exported (convergence curves). *)

val merge_into : t -> into:t -> unit
(** Fold every metric of the source registry into [into]: counters add,
    gauges and histograms combine count/sum/min/max (the source's last
    value wins when it saw any), series append their points. The
    executor's per-domain shards merge through this at join — the source
    must be quiescent; only [into]'s mutex is taken. No-op when either
    registry is disabled. *)

(** {2 Reading back} *)

type metric
type kind = Counter | Gauge | Histogram | Series

val names : t -> string list
(** Registration order. *)

val get : t -> string -> metric option
val kind_of : metric -> kind
val count : metric -> int
val sum : metric -> float
val last : metric -> float
val mean : metric -> float

val value : metric -> float
(** The headline value: total for counters, last for gauges, sum
    otherwise. *)

val series : metric -> float array
(** The recorded points of a series (empty for other kinds). *)

(** {2 Export} *)

val to_csv : t -> string
(** One summary row per metric
    ([metric,kind,index,value,count,sum,min,max,mean]) followed by one
    [point] row per series element. *)

val to_json : t -> string
val write_csv : t -> string -> unit
val write_json : t -> string -> unit
