let minor_words = Gc.minor_words

type t = { mutable started : float; mutable total : float }

let create () = { started = nan; total = 0.0 }

let start t = t.started <- Gc.minor_words ()

let stop t =
  if not (Float.is_nan t.started) then begin
    t.total <- t.total +. (Gc.minor_words () -. t.started);
    t.started <- nan
  end

let span ?into f =
  let before = Gc.minor_words () in
  let finish () =
    let delta = Gc.minor_words () -. before in
    (match into with None -> () | Some c -> c.total <- c.total +. delta);
    delta
  in
  match f () with
  | result -> (result, finish ())
  | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (finish () : float);
      Printexc.raise_with_backtrace exn bt

let total t = t.total

let reset t =
  t.started <- nan;
  t.total <- 0.0
