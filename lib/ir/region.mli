(** Scheduling regions.

    In LLVM a scheduling region is a basic block or part of one
    (Section VI-A). A region is a sequence of instructions in original
    program order together with the set of registers live past its exit.
    Uses of registers never defined inside the region are live-in. *)

type t = private {
  name : string;
  instrs : Instr.t array;  (** [instrs.(i).id = i] *)
  live_out : Reg.t list;
}

type error =
  | Empty_region
  | Bad_id of { expected : int; got : int }
  | Use_after_exit of Reg.t
      (** a [live_out] register is never defined in the region and never
          live-in (it could not be live at exit) — indicates a generator bug *)

val error_to_string : error -> string

val create : name:string -> ?live_out:Reg.t list -> Instr.t list -> (t, error) result
(** Validates ids are consecutive from 0 and that [live_out] registers are
    either defined in the region or live-in through it. *)

val create_exn : name:string -> ?live_out:Reg.t list -> Instr.t list -> t
(** [create] or raises [Invalid_argument] with the rendered error. *)

val size : t -> int
(** Number of instructions. *)

val live_in : t -> Reg.t list
(** Registers used before any region-local definition, deduplicated, in
    first-use order. *)

val is_live_out : t -> Reg.t -> bool

val instr : t -> int -> Instr.t
(** [instr r i] is the instruction with id [i]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
