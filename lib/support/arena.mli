(** Batched bump-pointer arena for colony state.

    The paper's GPU implementation consolidates all per-ant device
    structures into one allocation per kernel invocation (Section V-A,
    batched allocation); the host-side analogue here is a pair of flat
    backing arrays — one for ints, one for unboxed floats — carved into
    segments by a bump pointer. Each consumer receives a base offset and
    indexes the shared backing array directly, so a whole wavefront's
    state is two heap objects instead of hundreds.

    Capacities are exact: consumers compute their demand up front (the
    ready-list upper bound from {!Ddg.Closure} sizes the scratch
    segments) and the arena never grows, so base offsets stay valid for
    the arena's lifetime. Exceeding a capacity raises
    [Invalid_argument]. *)

type t

val create : ints:int -> floats:int -> t
(** Fresh arena with the given capacities (in elements). Zero-filled. *)

val alloc_ints : t -> int -> int
(** [alloc_ints t n] reserves [n] ints and returns the base offset into
    [ints t]. Raises [Invalid_argument] when the capacity is exceeded. *)

val alloc_floats : t -> int -> int
(** Same for the float backing array. *)

val ints : t -> int array
(** The shared int backing array. Consumers should capture it once. *)

val floats : t -> float array
(** The shared float backing array (unboxed element storage). *)

val int_capacity : t -> int
val float_capacity : t -> int
val int_used : t -> int
val float_used : t -> int

val words : t -> int
(** Total backing-store size in words — the batched-allocation
    footprint surfaced by the perf counters. *)

(** {2 Per-domain arena pool}

    Backends create their colony arena in [prepare] and drop it in
    [teardown] — one multi-kilobyte allocation pair per region job under
    the executor. {!take}/{!give} route those through a small
    domain-local free list so consecutive jobs on one domain reuse the
    backing arrays. {!give} {!reset}s the arena (bump pointers rewound,
    used prefixes zero-filled), so a reused arena is indistinguishable
    from a fresh one; its capacities may exceed the request. *)

val reset : t -> unit
(** Rewind both bump pointers and zero-fill the previously used
    prefixes, restoring the as-created state. Existing base offsets
    become dangling — only call between consumers. *)

val take : ints:int -> floats:int -> t
(** A zeroed arena with {e at least} the given capacities: a pooled one
    when this domain's free list has a fit, else a fresh allocation. *)

val give : t -> unit
(** Reset the arena and park it on this domain's free list (bounded; the
    smallest resident is dropped on overflow). The caller must not touch
    the arena afterwards. *)

val takes : unit -> int
(** Process-wide {!take} count (all domains). *)

val reuses : unit -> int
(** Process-wide count of {!take}s served from a free list — the
    observable for "arenas are pooled, not re-created". *)
