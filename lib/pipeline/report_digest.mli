(** Canonical encoding of a {!Compile.suite_report}, for determinism
    gates.

    The compile service promises the same report whether the analysis
    cache is on or off and however many executor domains compile it.
    Schedules embed their graph, and a cache hit aliases the graph of
    the first structurally-equal region seen (names may differ, output
    never does), so the promise is stated over this canonical encoding:
    every semantically meaningful field — schedule slots and cycles,
    costs, the full pass statistics including allocation counters and
    convergence series, degradation ledger entries, retry and fault
    tallies — spelled out positionally, graph identities omitted.

    The qcheck differentials and the CI cache gate compare {!digest}
    values. *)

val render : Compile.suite_report -> string
(** The canonical encoding itself (stable across runs and processes;
    floats are rendered in hex notation, so no precision is lost). *)

val digest : Compile.suite_report -> string
(** MD5 of {!render}, hex-encoded. *)

val render_region : Compile.region_report -> string
(** Canonical encoding of one region report — the same encoding a suite
    render embeds. The serve loop stamps every reply with its digest, so
    a served compile can be byte-compared against a direct
    [Compile.run_region] of the same request. *)

val digest_region : Compile.region_report -> string
(** MD5 of {!render_region}, hex-encoded. *)
