(** The alternative cost formulation the paper decided against.

    Section II-A: prior work solved RP-aware scheduling either by
    minimizing a weighted sum of schedule length and RP cost (references
    [8], [9]) or with the two-pass approach; the two-pass approach "was
    found to work better on the GPU" and is what the paper (and
    {!Seq_aco}) uses. This module implements the weighted-sum
    single-pass search so the design choice can be measured rather than
    taken on faith — the bench harness compares the two on the suite's
    ACO-eligible regions. *)

type result = {
  schedule : Sched.Schedule.t;  (** latency-valid *)
  cost : Sched.Cost.t;
  heuristic_cost : Sched.Cost.t;  (** the AMD baseline *)
  iterations : int;
  work : int;
}

val run :
  ?params:Params.t ->
  ?seed:int ->
  ?rp_weight:int ->
  Machine.Occupancy.t ->
  Ddg.Graph.t ->
  result
(** Minimize [length + rp_weight * rp_scalar] with unconstrained
    latency-aware ants in a single pass. [rp_weight] defaults to 1 (the
    RP scalar already dominates through its occupancy term). *)

type Engine.Backend.ext += Rp_weight of int
(** Context extension overriding the backend's RP weight (default 1). *)

val backend : Engine.Backend.t
(** The ["weighted"] backend: no RP pass (the engine skips straight to
    the schedule pass), no faults, no trace, no time model. The pass
    runs the weighted-sum search and ignores the request's RP targets —
    its [best_costs] series carries weighted costs, not lengths. *)

val register : unit -> unit
(** Install {!backend} in {!Engine.Registry} (idempotent). *)
