type final_choice = {
  cost : Sched.Cost.t;
  order : int array;
  reverted : bool;
  aco_ran : bool;
}

let final_for (filters : Filters.config) (r : Compile.region_report) =
  (* The cycle-threshold filter is a region-level gate: an unpromising
     region (small heuristic gap to the bound) never invokes ACO. *)
  let region_kept = r.Compile.pass2_gap >= filters.Filters.cycle_threshold in
  let aco_ran = region_kept && (r.Compile.pass1_invoked || r.Compile.pass2_invoked) in
  if not aco_ran then
    { cost = r.Compile.heuristic_cost; order = r.Compile.heuristic_order; reverted = false; aco_ran }
  else
    let candidate_cost, candidate_order =
      if r.Compile.pass2_invoked then (r.Compile.aco_cost, r.Compile.aco_order)
      else (r.Compile.pass1_only_cost, r.Compile.pass1_only_order)
    in
    match Filters.post_schedule filters ~heuristic:r.Compile.heuristic_cost ~aco:candidate_cost with
    | Filters.Keep_aco -> { cost = candidate_cost; order = candidate_order; reverted = false; aco_ran }
    | Filters.Revert_to_heuristic ->
        { cost = r.Compile.heuristic_cost; order = r.Compile.heuristic_order; reverted = true; aco_ran }

type view = Heuristic | Cp | Final of Filters.config

let region_cost view (r : Compile.region_report) =
  match view with
  | Heuristic -> r.Compile.heuristic_cost
  | Cp -> r.Compile.cp_cost
  | Final filters -> (final_for filters r).cost

let kernel_occupancy view (kr : Compile.kernel_report) =
  List.fold_left
    (fun acc r -> min acc (region_cost view r).Sched.Cost.rp.Sched.Cost.occupancy)
    10 kr.Compile.regions

(* Deterministic hash of an instruction order, via splitmix64 folding. *)
let order_hash order =
  let state = ref 0x2545F4914F6CDD1DL in
  Array.iter
    (fun i ->
      let open Int64 in
      state := add (mul !state 6364136223846793005L) (of_int ((2 * i) + 1)))
    order;
  let z = Int64.logxor !state (Int64.shift_right_logical !state 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

(* Normalized permutation distance: average displacement of instructions
   between two orders, scaled so "shuffled beyond recognition" ~ 1. *)
let reldist a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then 0.0
  else begin
    let pos = Array.make n 0 in
    Array.iteri (fun p i -> pos.(i) <- p) a;
    let total = ref 0 in
    Array.iteri (fun p i -> total := !total + abs (pos.(i) - p)) b;
    Float.min 1.0 (3.0 *. float_of_int !total /. float_of_int (n * n))
  end

(* The un-modeled factor: magnitude grows with the distance from the
   heuristic order; sign biased toward harm (you rarely get lucky with
   effects you did not model). *)
let unmodeled_factor ~heuristic_order ~order =
  let d = reldist heuristic_order order in
  if d = 0.0 then 0.0
  else
    let u = order_hash order in
    d *. ((u *. 0.33) -. 0.25)

let find_kernel_report (report : Compile.suite_report) (b : Workload.Suite.benchmark) =
  List.find
    (fun (kr : Compile.kernel_report) ->
      String.equal kr.Compile.kernel.Workload.Suite.kernel_name
        b.Workload.Suite.kernel.Workload.Suite.kernel_name)
    report.Compile.kernels

(* Memory latency is fully hidden once enough wavefronts are resident;
   beyond the saturation point extra occupancy no longer buys time. *)
let occupancy_saturation = 9.0

let benchmark_time view (report : Compile.suite_report) (b : Workload.Suite.benchmark) =
  let kr = find_kernel_report report b in
  let hot = Compile.hot_region kr in
  let cost = region_cost view hot in
  let occ = kernel_occupancy view kr in
  let mem_ratio = kr.Compile.kernel.Workload.Suite.mem_ratio in
  let hot_heuristic_len = float_of_int hot.Compile.heuristic_cost.Sched.Cost.length in
  let hiding = Float.min 1.0 (float_of_int occ /. occupancy_saturation) in
  let small_overhead =
    List.fold_left
      (fun acc (r : Compile.region_report) ->
        acc +. (0.01 *. float_of_int (region_cost view r).Sched.Cost.length))
      0.0 kr.Compile.regions
  in
  let raw =
    (float_of_int cost.Sched.Cost.length *. (1.0 -. mem_ratio))
    +. (mem_ratio *. hot_heuristic_len /. hiding)
    +. small_overhead
  in
  let noise =
    match view with
    | Final filters ->
        unmodeled_factor ~heuristic_order:hot.Compile.heuristic_order
          ~order:(final_for filters hot).order
    | Heuristic | Cp -> 0.0
  in
  raw *. (1.0 +. noise)

let benchmark_throughput view report b =
  b.Workload.Suite.bytes_per_item /. benchmark_time view report b

let speedup_pct filters report b =
  let t_base = benchmark_time Heuristic report b in
  let t_aco = benchmark_time (Final filters) report b in
  (t_base -. t_aco) /. t_aco *. 100.0

let sensitive report b =
  let times =
    [
      benchmark_time Heuristic report b;
      benchmark_time Cp report b;
      benchmark_time (Final Filters.default) report b;
    ]
  in
  (* The paper's criterion is 3% CV over measured (hardware-noisy)
     runtimes; our modeled times have no measurement jitter, so the same
     discriminative power sits at a lower bar. *)
  Support.Stats.coeff_of_variation times >= 0.02
