(* Fault-tolerant compile driver: fault injection, watchdogs, compile
   budgets and graceful degradation to the heuristic schedule. *)

let compile_cfg ?robust ?fault_rate ?fault_seed ?compile_budget_ms ?max_retries () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ?robust ?fault_rate ?fault_seed
       ?compile_budget_ms ?max_retries ())
    with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
    run_sequential = false;
  }

let check_order_valid region (r : Pipeline.Compile.region_report) =
  let graph = Ddg.Graph.build region in
  match Sched.Schedule.of_order graph r.Pipeline.Compile.aco_order with
  | Ok _ -> true
  | Error v ->
      Alcotest.failf "emitted order invalid: %s" (Sched.Schedule.violation_to_string v)

(* --- fault injector ------------------------------------------------------ *)

let test_faults_deterministic () =
  let rates = Gpusim.Config.uniform_faults 0.3 in
  let run () =
    let f = Gpusim.Faults.create ~seed:42 rates in
    List.init 200 (fun i ->
        if i mod 3 = 0 then Gpusim.Faults.lane_fault f
        else if i mod 3 = 1 then Gpusim.Faults.mem_fault f
        else Gpusim.Faults.reduction_drop f)
  in
  Alcotest.(check (list bool)) "same seed, same fault pattern" (run ()) (run ())

let test_faults_disabled_never_fire () =
  let f = Gpusim.Faults.disabled in
  for _ = 1 to 100 do
    Alcotest.(check bool) "lane" false (Gpusim.Faults.lane_fault f);
    Alcotest.(check bool) "hang" false (Gpusim.Faults.wavefront_hang f);
    Alcotest.(check bool) "drop" false (Gpusim.Faults.reduction_drop f);
    Alcotest.(check bool) "mem" false (Gpusim.Faults.mem_fault f)
  done;
  Alcotest.(check int) "nothing counted" 0 (Gpusim.Faults.total (Gpusim.Faults.counts f))

let test_zero_rates_draw_nothing () =
  (* A zero-rate class must not consume randomness: with every class at
     zero the injector's stream is untouched, which is what keeps
     fault-free runs byte-identical. *)
  let f = Gpusim.Faults.create ~seed:7 Gpusim.Config.no_faults in
  for _ = 1 to 50 do
    ignore (Gpusim.Faults.lane_fault f);
    ignore (Gpusim.Faults.wavefront_hang f)
  done;
  let g = Gpusim.Faults.create ~seed:7 (Gpusim.Config.uniform_faults 1.0) in
  let f_next = Gpusim.Faults.pick f 1000 and g_next = Gpusim.Faults.pick g 1000 in
  Alcotest.(check int) "stream position unchanged by zero-rate tests" g_next f_next

(* --- watchdog + schedule guard ------------------------------------------- *)

let test_watchdog_clamp () =
  Alcotest.(check (pair (float 0.0) bool))
    "under deadline" (5.0, false)
    (Gpusim.Kernel_sim.watchdog_clamp ~deadline_ns:10.0 5.0);
  Alcotest.(check (pair (float 0.0) bool))
    "over deadline clamps" (10.0, true)
    (Gpusim.Kernel_sim.watchdog_clamp ~deadline_ns:10.0 25.0);
  Alcotest.(check (pair (float 0.0) bool))
    "infinite deadline never fires" (1e12, false)
    (Gpusim.Kernel_sim.watchdog_clamp ~deadline_ns:infinity 1e12)

let test_schedule_guard () =
  let graph = Ddg.Graph.build (Tu.diamond_region ()) in
  let order = Array.init graph.Ddg.Graph.n (fun i -> i) in
  let padded = Sched.Schedule.latency_pad graph order in
  let kept, fired = Sched.Schedule.guard padded ~latency_aware:true ~fallback:padded in
  Alcotest.(check bool) "valid schedule kept" false fired;
  Alcotest.(check bool) "same schedule" true (kept == padded);
  (* The stall-free source order violates load latencies, so the
     latency-aware guard must reject it and hand back the fallback. *)
  let unpadded = Result.get_ok (Sched.Schedule.of_order graph order) in
  let kept, fired = Sched.Schedule.guard unpadded ~latency_aware:true ~fallback:padded in
  Alcotest.(check bool) "latency-invalid schedule replaced" true fired;
  Alcotest.(check bool) "fallback returned" true (kept == padded)

(* --- hot_region regression ----------------------------------------------- *)

let test_hot_region_clamps () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:6 ~chain:4 in
  let rr = Pipeline.Compile.run_region (compile_cfg ()) ~name:"only" region in
  let kernel =
    {
      Workload.Suite.kernel_name = "k";
      regions = [ region ];
      hot_index = 5;
      (* out of range: metadata bug must not crash reporting *)
      mem_ratio = 0.5;
    }
  in
  let kr = { Pipeline.Compile.kernel; regions = [ rr ] } in
  let hot = Pipeline.Compile.hot_region kr in
  Alcotest.(check string) "clamps to last region" "only" hot.Pipeline.Compile.region_name;
  let kernel_neg = { kernel with Workload.Suite.hot_index = -3 } in
  let hot = Pipeline.Compile.hot_region { kr with Pipeline.Compile.kernel = kernel_neg } in
  Alcotest.(check string) "clamps negative to first" "only" hot.Pipeline.Compile.region_name

(* --- degradation ledger -------------------------------------------------- *)

let test_budget_exceeded_keeps_valid_schedule () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let r = Pipeline.Compile.run_region (compile_cfg ~compile_budget_ms:0.0 ()) ~name:"t" region in
  Alcotest.(check bool) "ledger says budget" true
    (r.Pipeline.Compile.degradation = Pipeline.Robust.Budget_exceeded);
  Alcotest.(check bool) "schedule still valid" true (check_order_valid region r)

let test_hang_storm_degrades_to_fallback () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let gpu =
    Gpusim.Config.with_faults Tu.test_gpu
      { Gpusim.Config.no_faults with Gpusim.Config.wavefront_hang_rate = 1.0 }
  in
  let cfg = { (compile_cfg ()) with Pipeline.Compile.gpu } in
  let r = Pipeline.Compile.run_region cfg ~name:"t" region in
  Alcotest.(check bool) "ledger says fallback" true
    (r.Pipeline.Compile.degradation = Pipeline.Robust.Faulted_fallback);
  Alcotest.(check bool) "retries were attempted" true (r.Pipeline.Compile.retries > 0);
  Alcotest.(check bool) "schedule still valid" true (check_order_valid region r)

let test_iteration_deadline_degrades () =
  (* A 1 ns per-iteration deadline fires the watchdog on every iteration
     even with faults off; the driver must degrade, not loop or crash. *)
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let robust =
    { Pipeline.Robust.default with Pipeline.Robust.iteration_deadline_ns = 1.0 }
  in
  let r = Pipeline.Compile.run_region (compile_cfg ~robust ()) ~name:"t" region in
  Alcotest.(check bool) "ledger says fallback" true
    (r.Pipeline.Compile.degradation = Pipeline.Robust.Faulted_fallback);
  Alcotest.(check bool) "schedule still valid" true (check_order_valid region r)

let test_classify_priority () =
  let c = Pipeline.Robust.classify in
  Alcotest.(check bool) "clean" true
    (c ~fell_back:false ~aborted_faults:false ~aborted_budget:false ~retries:0
    = Pipeline.Robust.Clean);
  Alcotest.(check bool) "retried" true
    (c ~fell_back:false ~aborted_faults:false ~aborted_budget:false ~retries:2
    = Pipeline.Robust.Retried 2);
  Alcotest.(check bool) "budget beats retried" true
    (c ~fell_back:false ~aborted_faults:false ~aborted_budget:true ~retries:2
    = Pipeline.Robust.Budget_exceeded);
  Alcotest.(check bool) "fallback beats budget" true
    (c ~fell_back:true ~aborted_faults:false ~aborted_budget:true ~retries:2
    = Pipeline.Robust.Faulted_fallback);
  Alcotest.(check bool) "retry exhaustion is fallback" true
    (c ~fell_back:false ~aborted_faults:true ~aborted_budget:false ~retries:2
    = Pipeline.Robust.Faulted_fallback)

let test_tally () =
  let t =
    Pipeline.Robust.tally_of_list
      [
        Pipeline.Robust.Clean;
        Pipeline.Robust.Retried 2;
        Pipeline.Robust.Retried 1;
        Pipeline.Robust.Budget_exceeded;
        Pipeline.Robust.Faulted_fallback;
      ]
  in
  Alcotest.(check int) "regions" 5 t.Pipeline.Robust.regions;
  Alcotest.(check int) "clean" 1 t.Pipeline.Robust.clean;
  Alcotest.(check int) "retried" 2 t.Pipeline.Robust.retried;
  Alcotest.(check int) "budget" 1 t.Pipeline.Robust.budget_exceeded;
  Alcotest.(check int) "fallback" 1 t.Pipeline.Robust.faulted_fallback;
  Alcotest.(check int) "total retries" 3 t.Pipeline.Robust.total_retries

(* --- sequential budget ---------------------------------------------------- *)

let test_seq_budget_abort () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let setup = Aco.Setup.prepare Tu.occ (Ddg.Graph.build region) in
  let r = Aco.Seq_aco.run_from_setup ~params:Tu.test_params ~seed:5 ~budget_work:0 setup in
  Alcotest.(check bool) "pass1 aborted on budget" true
    (r.Aco.Seq_aco.pass1.Aco.Seq_aco.aborted_budget
    || not r.Aco.Seq_aco.pass1.Aco.Seq_aco.invoked);
  Alcotest.(check int) "no search work spent" 0
    (r.Aco.Seq_aco.pass1.Aco.Seq_aco.work + r.Aco.Seq_aco.pass2.Aco.Seq_aco.work);
  ignore (Tu.check_valid r.Aco.Seq_aco.schedule)

let test_seq_unbudgeted_unchanged () =
  let region = Workload.Shapes.transform (Support.Rng.create 9) ~unroll:8 ~chain:3 in
  let setup = Aco.Setup.prepare Tu.occ (Ddg.Graph.build region) in
  let a = Aco.Seq_aco.run_from_setup ~params:Tu.test_params ~seed:5 setup in
  let b = Aco.Seq_aco.run_from_setup ~params:Tu.test_params ~seed:5 ~budget_work:max_int setup in
  Alcotest.(check (array int)) "explicit infinite budget is a no-op"
    (Sched.Schedule.order a.Aco.Seq_aco.schedule)
    (Sched.Schedule.order b.Aco.Seq_aco.schedule);
  Alcotest.(check bool) "not flagged" false
    (b.Aco.Seq_aco.pass1.Aco.Seq_aco.aborted_budget
    || b.Aco.Seq_aco.pass2.Aco.Seq_aco.aborted_budget)

(* --- properties ----------------------------------------------------------- *)

(* (a) Whatever the fault rate, the emitted schedule is valid and the
   ledger entry is consistent with the retry count. *)
let prop_any_rate_valid_schedule =
  QCheck.Test.make ~count:30 ~name:"compile under any fault rate emits a valid schedule"
    (QCheck.pair (Tu.arb_region ~max_size:30 ()) (QCheck.float_bound_inclusive 1.0))
    (fun (region, rate) ->
      let r = Pipeline.Compile.run_region (compile_cfg ~fault_rate:rate ()) ~name:"q" region in
      check_order_valid region r
      && (match r.Pipeline.Compile.degradation with
         | Pipeline.Robust.Retried k -> k = r.Pipeline.Compile.retries && k > 0
         | Pipeline.Robust.Clean -> r.Pipeline.Compile.retries = 0
         | Pipeline.Robust.Budget_exceeded | Pipeline.Robust.Faulted_fallback -> true
         (* the compile driver itself never sheds — only the serve loop does *)
         | Pipeline.Robust.Shed_overload -> false)
      && (rate > 0.0
         || Gpusim.Faults.total r.Pipeline.Compile.fault_counts = 0))

(* (b) After the revert filter the product is never worse than the
   heuristic fallback: occupancy never drops, and any length penalty
   stays within the filter's slack (at equal occupancy) or cap (at an
   occupancy gain). *)
let prop_final_never_worse_than_heuristic =
  QCheck.Test.make ~count:30 ~name:"post-filter product never worse than heuristic"
    (QCheck.pair (Tu.arb_region ~max_size:30 ()) (QCheck.float_bound_inclusive 1.0))
    (fun (region, rate) ->
      let r = Pipeline.Compile.run_region (compile_cfg ~fault_rate:rate ()) ~name:"q" region in
      let filters = Pipeline.Filters.default in
      let final = Pipeline.Perf_model.final_for filters r in
      let h = r.Pipeline.Compile.heuristic_cost in
      let f = final.Pipeline.Perf_model.cost in
      let occ c = c.Sched.Cost.rp.Sched.Cost.occupancy in
      occ f >= occ h
      &&
      if occ f = occ h then
        f.Sched.Cost.length
        <= h.Sched.Cost.length + filters.Pipeline.Filters.equal_occupancy_length_slack
      else
        f.Sched.Cost.length
        <= h.Sched.Cost.length + filters.Pipeline.Filters.revert_length_penalty)

(* (c) Fault rate zero with unbounded budget is byte-identical to a
   config that never heard of the fault model. *)
let prop_zero_rate_byte_identical =
  QCheck.Test.make ~count:20 ~name:"zero fault rate + infinite budget is byte-identical"
    (Tu.arb_region ~max_size:30 ())
    (fun region ->
      let plain = Pipeline.Compile.run_region (compile_cfg ()) ~name:"q" region in
      let armed =
        Pipeline.Compile.run_region
          (compile_cfg ~fault_rate:0.0 ~fault_seed:12345 ~max_retries:9 ())
          ~name:"q" region
      in
      plain.Pipeline.Compile.aco_order = armed.Pipeline.Compile.aco_order
      && plain.Pipeline.Compile.pass1_only_order = armed.Pipeline.Compile.pass1_only_order
      && plain.Pipeline.Compile.degradation = Pipeline.Robust.Clean
      && armed.Pipeline.Compile.degradation = Pipeline.Robust.Clean)

let suite =
  [
    Alcotest.test_case "fault injector is deterministic" `Quick test_faults_deterministic;
    Alcotest.test_case "disabled injector never fires" `Quick test_faults_disabled_never_fire;
    Alcotest.test_case "zero-rate classes draw nothing" `Quick test_zero_rates_draw_nothing;
    Alcotest.test_case "watchdog clamp" `Quick test_watchdog_clamp;
    Alcotest.test_case "schedule guard" `Quick test_schedule_guard;
    Alcotest.test_case "hot_region clamps bad hot_index" `Quick test_hot_region_clamps;
    Alcotest.test_case "zero budget degrades to Budget_exceeded" `Quick
      test_budget_exceeded_keeps_valid_schedule;
    Alcotest.test_case "hang storm degrades to Faulted_fallback" `Quick
      test_hang_storm_degrades_to_fallback;
    Alcotest.test_case "iteration deadline degrades gracefully" `Quick
      test_iteration_deadline_degrades;
    Alcotest.test_case "ledger classification priority" `Quick test_classify_priority;
    Alcotest.test_case "ledger tally" `Quick test_tally;
    Alcotest.test_case "sequential budget abort" `Quick test_seq_budget_abort;
    Alcotest.test_case "sequential unbudgeted unchanged" `Quick test_seq_unbudgeted_unchanged;
  ]
  @ Tu.qtests
      [
        prop_any_rate_valid_schedule;
        prop_final_never_worse_than_heuristic;
        prop_zero_rate_byte_identical;
      ]
