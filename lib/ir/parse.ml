(* Parser for the textual region format (see the mli for the grammar).

   Hand-rolled over String.split: the grammar is line-oriented with
   space-separated tokens, and a recursive-descent pass that threads the
   line number gives precise typed errors without a lexer dependency. *)

type error = { line : int; what : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.what

let err line fmt = Printf.ksprintf (fun what -> Error { line; what }) fmt

let tokens line =
  List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))

let parse_reg ~line tok =
  let cls_of = function
    | 'v' -> Some Reg.Vgpr
    | 's' -> Some Reg.Sgpr
    | _ -> None
  in
  if String.length tok < 2 then err line "bad register %S" tok
  else
    match
      (cls_of tok.[0], int_of_string_opt (String.sub tok 1 (String.length tok - 1)))
    with
    | Some cls, Some id when id >= 0 -> Ok { Reg.cls; id }
    | _ -> err line "bad register %S (expected v<n> or s<n>)" tok

let parse_regs ~line toks =
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ as e -> e
      | Ok rs -> ( match parse_reg ~line tok with Ok r -> Ok (r :: rs) | Error e -> Error e))
    (Ok []) toks
  |> Result.map List.rev

(* "%<id>:" with the trailing colon attached to the token. *)
let parse_id ~line tok =
  let n = String.length tok in
  if n < 3 || tok.[0] <> '%' || tok.[n - 1] <> ':' then
    err line "bad instruction id %S (expected %%<n>:)" tok
  else
    match int_of_string_opt (String.sub tok 1 (n - 2)) with
    | Some id when id >= 0 -> Ok id
    | _ -> err line "bad instruction id %S" tok

(* "<mnemonic>" or "<mnemonic>@<latency>". *)
let parse_op ~line tok =
  let mnemonic, latency =
    match String.index_opt tok '@' with
    | None -> (tok, Ok None)
    | Some i -> (
        let lat = String.sub tok (i + 1) (String.length tok - i - 1) in
        ( String.sub tok 0 i,
          match int_of_string_opt lat with
          | Some l when l >= 0 -> Ok (Some l)
          | _ -> err line "bad latency %S" lat ))
  in
  match (Opcode.of_string mnemonic, latency) with
  | _, (Error _ as e) -> e
  | None, _ -> err line "unknown opcode %S" mnemonic
  | Some kind, Ok lat -> Ok (kind, lat)

let parse_instr ~line ~expected_id toks =
  match toks with
  | id_tok :: op_tok :: rest -> (
      match (parse_id ~line id_tok, parse_op ~line op_tok) with
      | Error e, _ | _, Error e -> Error e
      | Ok id, Ok (kind, latency) ->
          if id <> expected_id then
            err line "instruction id %%%d out of order (expected %%%d)" id expected_id
          else
            let defs_toks, uses_toks =
              match
                List.fold_left
                  (fun (before, after, seen) tok ->
                    if tok = "<-" then
                      if seen then (before, after, seen) else (before, after, true)
                    else if seen then (before, tok :: after, seen)
                    else (tok :: before, after, seen))
                  ([], [], false) rest
              with
              | before, after, true -> (List.rev before, List.rev after)
              | before, _, false -> ([], List.rev before)
            in
            (match (parse_regs ~line defs_toks, parse_regs ~line uses_toks) with
            | Error e, _ | _, Error e -> Error e
            | Ok defs, Ok uses -> (
                match Instr.make ~id ?latency ~kind ~defs ~uses () with
                | i -> Ok i
                | exception Invalid_argument m -> err line "%s" m)))
  | _ -> err line "short instruction line"

let region_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno instrs live_out name = function
    | [] -> (
        match
          Region.create ~name:(Option.value name ~default:"wire") ~live_out
            (List.rev instrs)
        with
        | Ok r -> Ok r
        | Error e -> err lineno "%s" (Region.error_to_string e))
    | line :: rest -> (
        let lineno = lineno + 1 in
        match tokens line with
        | [] -> go lineno instrs live_out name rest
        | hash :: _ when String.length hash > 0 && hash.[0] = '#' ->
            go lineno instrs live_out name rest
        | "region" :: rname :: _ ->
            if instrs <> [] then err lineno "header after instructions"
            else go lineno instrs live_out (Some rname) rest
        | "live-out:" :: regs -> (
            match parse_regs ~line:lineno regs with
            | Ok rs -> go lineno instrs (live_out @ rs) name rest
            | Error e -> Error e)
        | toks -> (
            match parse_instr ~line:lineno ~expected_id:(List.length instrs) toks with
            | Ok i -> go lineno (i :: instrs) live_out name rest
            | Error e -> Error e))
  in
  go 0 [] [] None lines

let region_to_wire (r : Region.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "region %s (%d instrs)\n" r.Region.name (Region.size r));
  Array.iter
    (fun (i : Instr.t) ->
      let regs rs = String.concat " " (List.map Reg.to_string rs) in
      let lhs = if i.Instr.defs = [] then "" else regs i.Instr.defs ^ " <- " in
      Buffer.add_string buf
        (Printf.sprintf "  %%%d: %s@%d %s%s\n" i.Instr.id
           (Opcode.to_string i.Instr.kind)
           i.Instr.latency lhs (regs i.Instr.uses)))
    r.Region.instrs;
  if r.Region.live_out <> [] then
    Buffer.add_string buf
      ("  live-out: " ^ String.concat " " (List.map Reg.to_string r.Region.live_out) ^ "\n");
  Buffer.contents buf
