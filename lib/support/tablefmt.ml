type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~title ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a ->
        let a = if List.length a > ncols then List.filteri (fun i _ -> i < ncols) a else a in
        a @ List.init (ncols - List.length a) (fun _ -> Right)
    | None -> Left :: List.init (ncols - 1) (fun _ -> Right)
  in
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = match List.nth_opt row c with Some s -> s | None -> "" in
          pad (List.nth aligns c) w cell)
        widths
    in
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_char buf '\n'
  in
  render_row header;
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let pct x = Printf.sprintf "%.2f%%" (x *. 100.0)
let pctf x = Printf.sprintf "%.2f%%" x
let f2 x = Printf.sprintf "%.2f" x

let int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
