(** Backend registry: backends register themselves by name, the
    pipeline and the CLI resolve names to backends.

    Registration is explicit and idempotent — each backend module
    exposes a [register] function the pipeline calls at configuration
    time; re-registering a name replaces the backend but keeps its
    position in {!names}.

    Every operation is mutex-protected, so concurrent registration and
    lookup from executor domain workers are safe: registering the same
    backend from several domains at once still yields one entry in one
    position. *)

val register : Backend.t -> unit
val find : string -> Backend.t option
val find_exn : string -> Backend.t
(** @raise Invalid_argument naming the unknown backend and the
    registered alternatives. *)

val mem : string -> bool
val names : unit -> string list
(** Registered names, in registration order. *)
