type t = {
  name : string;
  mutable rev_instrs : Instr.t list;
  mutable next_id : int;
  mutable next_vgpr : int;
  mutable next_sgpr : int;
  mutable live_out : Reg.t list;
}

let create ~name =
  { name; rev_instrs = []; next_id = 0; next_vgpr = 0; next_sgpr = 0; live_out = [] }

let fresh_vgpr t =
  let r = Reg.vgpr t.next_vgpr in
  t.next_vgpr <- t.next_vgpr + 1;
  r

let fresh_sgpr t =
  let r = Reg.sgpr t.next_sgpr in
  t.next_sgpr <- t.next_sgpr + 1;
  r

let emit t ?name ?latency kind ~defs ~uses =
  let i = Instr.make ~id:t.next_id ?name ?latency ~kind ~defs ~uses () in
  t.rev_instrs <- i :: t.rev_instrs;
  t.next_id <- t.next_id + 1

let def_op t ?name kind uses fresh =
  let d = fresh t in
  emit t ?name kind ~defs:[ d ] ~uses;
  d

let valu t ?name uses = def_op t ?name Opcode.Valu uses fresh_vgpr
let valu_trans t ?name uses = def_op t ?name Opcode.Valu_trans uses fresh_vgpr
let salu t ?name uses = def_op t ?name Opcode.Salu uses fresh_sgpr
let vload t ?name ~addr () = def_op t ?name Opcode.Vmem_load addr fresh_vgpr
let sload t ?name ~addr () = def_op t ?name Opcode.Smem_load addr fresh_sgpr
let lds_read t ?name ~addr () = def_op t ?name Opcode.Lds addr fresh_vgpr

let vstore t ?name ~data ~addr () = emit t ?name Opcode.Vmem_store ~defs:[] ~uses:(data @ addr)
let lds_write t ?name ~data ~addr () = emit t ?name Opcode.Lds ~defs:[] ~uses:(data @ addr)
let export t values = emit t Opcode.Export ~defs:[] ~uses:values

let mark_live_out t r =
  if not (List.exists (Reg.equal r) t.live_out) then t.live_out <- r :: t.live_out

let size t = t.next_id

let finish t =
  Region.create_exn ~name:t.name ~live_out:(List.rev t.live_out) (List.rev t.rev_instrs)
