(* Structured operational logger: a leveled, mutex-protected ring of
   events rendered as JSONL.

   The discipline is the tracer's (trace.ml): the disabled logger
   [null] makes every call a single branch on an immutable bool — no
   allocation, no timestamp syscall, no lock — so an uninstrumented run
   is byte-identical including its allocation counters. The enabled
   logger appends into a bounded ring under a mutex (workers on
   different domains share one ring), overwriting the oldest entries
   when full; [dropped] reports the loss.

   Request ids and other ambient context thread through [with_fields]:
   a child logger shares the parent's ring and level but stamps every
   entry with its bound fields, so the serve loop binds [req] once at
   admission and the binding survives through the pool worker into the
   backend passes. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_label = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field = Str of string | Int of int | Float of float | Bool of bool

type entry = {
  e_ts : float; (* Unix seconds *)
  e_level : level;
  e_event : string;
  e_fields : (string * field) list;
}

type core = {
  lock : Mutex.t;
  cap : int;
  ring : entry option array; (* indexed count mod cap *)
  mutable count : int; (* entries ever logged (monotone) *)
  min_level : level;
}

type t = {
  on : bool;
  core : core;
  bound : (string * field) list; (* outermost binding first *)
}

let null =
  {
    on = false;
    core =
      { lock = Mutex.create (); cap = 0; ring = [||]; count = 0; min_level = Error };
    bound = [];
  }

let create ?(capacity = 4096) ?(level = Debug) () =
  let cap = max 16 capacity in
  {
    on = true;
    core =
      {
        lock = Mutex.create ();
        cap;
        ring = Array.make cap None;
        count = 0;
        min_level = level;
      };
    bound = [];
  }

let[@inline] enabled t = t.on
let capacity t = t.core.cap
let recorded t = t.core.count
let dropped t = max 0 (t.core.count - t.core.cap)
let level t = t.core.min_level

let with_fields t fields =
  if not t.on then t else { t with bound = t.bound @ fields }

let log t lvl event fields =
  if t.on && severity lvl >= severity t.core.min_level then begin
    let e =
      { e_ts = Unix.gettimeofday (); e_level = lvl; e_event = event;
        e_fields = t.bound @ fields }
    in
    let c = t.core in
    Mutex.lock c.lock;
    c.ring.(c.count mod c.cap) <- Some e;
    c.count <- c.count + 1;
    Mutex.unlock c.lock
  end

let debug t event fields = log t Debug event fields
let info t event fields = log t Info event fields
let warn t event fields = log t Warn event fields
let error t event fields = log t Error event fields

(* Surviving entries oldest first. Snapshot under the lock so a reader
   on one domain does not tear a writer on another. *)
let entries t =
  if not t.on then []
  else begin
    let c = t.core in
    Mutex.lock c.lock;
    let first = max 0 (c.count - c.cap) in
    let out = ref [] in
    for j = c.count - 1 downto first do
      match c.ring.(j mod c.cap) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    Mutex.unlock c.lock;
    !out
  end

(* --- JSONL rendering ---------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let field_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.6g" v
  | Bool b -> if b then "true" else "false"

let entry_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":%.6f,\"lvl\":\"%s\",\"evt\":\"%s\"" e.e_ts
       (level_label e.e_level) (json_escape e.e_event));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (json_escape k) (field_json v)))
    e.e_fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_json e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let write_jsonl t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))
