type rp = { aprp_vgpr : int; aprp_sgpr : int; occupancy : int }

let rp_of_peaks occ ~vgpr ~sgpr =
  {
    aprp_vgpr = Machine.Occupancy.aprp occ Ir.Reg.Vgpr vgpr;
    aprp_sgpr = Machine.Occupancy.aprp occ Ir.Reg.Sgpr sgpr;
    occupancy = Machine.Occupancy.of_pressures occ ~vgpr ~sgpr;
  }

let rp_of_tracker occ tracker =
  rp_of_peaks occ ~vgpr:(Rp_tracker.peak tracker Ir.Reg.Vgpr)
    ~sgpr:(Rp_tracker.peak tracker Ir.Reg.Sgpr)

let compare_rp a b =
  (* Higher occupancy first, then smaller APRP sum. *)
  let c = Int.compare b.occupancy a.occupancy in
  if c <> 0 then c
  else Int.compare (a.aprp_vgpr + a.aprp_sgpr) (b.aprp_vgpr + b.aprp_sgpr)

(* The scalar must order identically to [compare_rp]: occupancy dominates
   and APRP sums are bounded by the register-file sizes (256 + 800). *)
let rp_scalar r = ((10 - r.occupancy) * 4096) + r.aprp_vgpr + r.aprp_sgpr

type t = { rp : rp; length : int }

let of_schedule occ schedule =
  let tracker = Rp_tracker.create (schedule : Schedule.t).graph in
  Array.iter (fun i -> Rp_tracker.schedule tracker i) (Schedule.order schedule);
  { rp = rp_of_tracker occ tracker; length = Schedule.length schedule }

let better_rp_then_length a b =
  let c = compare_rp a.rp b.rp in
  c < 0 || (c = 0 && a.length < b.length)

let rp_to_string r =
  Printf.sprintf "occ=%d aprp(v)=%d aprp(s)=%d" r.occupancy r.aprp_vgpr r.aprp_sgpr

let to_string t = Printf.sprintf "%s len=%d" (rp_to_string t.rp) t.length
