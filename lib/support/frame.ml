(* Length-prefixed frames: 4-byte big-endian payload length + payload.

   The size limit is enforced on the *header*, before any payload
   allocation, so a stream advertising a 2 GiB frame costs four bytes of
   reading and one typed error, not an out-of-memory. *)

type error =
  | Truncated of { expected : int; got : int }
  | Oversized of { length : int; limit : int }

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated frame: expected %d bytes, stream ended after %d" expected
        got
  | Oversized { length; limit } ->
      Printf.sprintf "oversized frame: %d bytes advertised, limit %d" length limit

let default_limit = 1 lsl 20
let header_size = 4

let put_header b len =
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff))

let get_header s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode payload =
  let len = String.length payload in
  let b = Bytes.create (header_size + len) in
  put_header b len;
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

let write oc payload =
  let b = Bytes.create header_size in
  put_header b (String.length payload);
  output_bytes oc b;
  output_string oc payload

(* Read exactly [n] bytes; short reads report how far they got so the
   error message can say where the stream died. *)
let really_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Ok (Bytes.unsafe_to_string b)
    else
      match input ic b off (n - off) with
      | 0 -> Error off
      | k -> go (off + k)
      | exception End_of_file -> Error off
  in
  go 0

let read ?(limit = default_limit) ic =
  match really_read ic header_size with
  | Error 0 -> Ok None (* clean EOF at a frame boundary *)
  | Error got -> Error (Truncated { expected = header_size; got })
  | Ok header -> (
      let len = get_header header 0 in
      if len > limit then Error (Oversized { length = len; limit })
      else
        match really_read ic len with
        | Ok payload -> Ok (Some payload)
        | Error got -> Error (Truncated { expected = len; got }))

let decode ?(limit = default_limit) buf ~pos =
  let avail = String.length buf - pos in
  if avail < header_size then Error `Need_more
  else
    let len = get_header buf pos in
    if len > limit then Error (`Error (Oversized { length = len; limit }))
    else if avail - header_size < len then Error `Need_more
    else Ok (String.sub buf (pos + header_size) len, pos + header_size + len)

let decode_all ?limit buf =
  let rec go acc pos =
    if pos = String.length buf then (List.rev acc, None)
    else
      match decode ?limit buf ~pos with
      | Ok (payload, next) -> go (payload :: acc) next
      | Error `Need_more ->
          ( List.rev acc,
            Some (Truncated { expected = header_size; got = String.length buf - pos }) )
      | Error (`Error e) -> (List.rev acc, Some e)
  in
  go [] 0
