(* Metrics registry: named counters, gauges, histogram summaries and
   append-only series, with JSON and CSV export.

   Metrics are registered on first use; the registry keeps insertion
   order for stable export. The disabled registry [null] turns every
   operation into a branch on an immutable bool, so instrumentation
   sites guarded by [enabled] cost nothing when metrics are off. *)

type kind = Counter | Gauge | Histogram | Series

let kind_label = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Series -> "series"

type metric = {
  m_name : string;
  m_kind : kind;
  mutable m_count : int;
  mutable m_sum : float;
  mutable m_min : float;
  mutable m_max : float;
  mutable m_last : float;
  mutable m_series : float array;
  mutable m_len : int;
}

type t = {
  on : bool;
  lock : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

let create () = { on = true; lock = Mutex.create (); tbl = Hashtbl.create 64; order = [] }
let null = { on = false; lock = Mutex.create (); tbl = Hashtbl.create 1; order = [] }
let[@inline] enabled t = t.on

(* Every mutation and registry read takes [t.lock], so one registry can
   be shared by the executor's domain workers. Write paths branch on
   [t.on] before locking, so the disabled registry stays a no-op that
   never touches the mutex. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t name kind =
  match Hashtbl.find_opt t.tbl name with
  | Some m ->
      if m.m_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_label m.m_kind)
             (kind_label kind));
      m
  | None ->
      let m =
        {
          m_name = name;
          m_kind = kind;
          m_count = 0;
          m_sum = 0.0;
          m_min = infinity;
          m_max = neg_infinity;
          m_last = 0.0;
          m_series = (if kind = Series then Array.make 16 0.0 else [||]);
          m_len = 0;
        }
      in
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let update m v =
  m.m_count <- m.m_count + 1;
  m.m_sum <- m.m_sum +. v;
  if v < m.m_min then m.m_min <- v;
  if v > m.m_max then m.m_max <- v;
  m.m_last <- v

let add t name by =
  if t.on then
    locked t (fun () ->
        let m = find t name Counter in
        m.m_count <- m.m_count + 1;
        m.m_sum <- m.m_sum +. float_of_int by)

let incr t name = add t name 1

let set t name v = if t.on then locked t (fun () -> update (find t name Gauge) v)

let observe t name v = if t.on then locked t (fun () -> update (find t name Histogram) v)

let push t name v =
  if t.on then
    locked t (fun () ->
        let m = find t name Series in
        if m.m_len = Array.length m.m_series then begin
          let grown = Array.make (2 * m.m_len) 0.0 in
          Array.blit m.m_series 0 grown 0 m.m_len;
          m.m_series <- grown
        end;
        m.m_series.(m.m_len) <- v;
        m.m_len <- m.m_len + 1;
        update m v)

(* Shard merge for the executor: each worker domain accumulates into a
   private registry (no contention), and the shards fold into the
   caller's registry at join — the only point that takes the
   destination's mutex. The source must be quiescent (its workers
   joined); only [into]'s lock is taken, so there is no lock-order
   hazard. Metrics registered in both keep [into]'s position; new names
   append in the source's registration order. *)
let merge_into src ~into =
  if src.on && into.on then
    locked into (fun () ->
        List.iter
          (fun name ->
            let sm = Hashtbl.find src.tbl name in
            let m = find into name sm.m_kind in
            match sm.m_kind with
            | Counter ->
                m.m_count <- m.m_count + sm.m_count;
                m.m_sum <- m.m_sum +. sm.m_sum
            | Gauge | Histogram ->
                m.m_count <- m.m_count + sm.m_count;
                m.m_sum <- m.m_sum +. sm.m_sum;
                if sm.m_min < m.m_min then m.m_min <- sm.m_min;
                if sm.m_max > m.m_max then m.m_max <- sm.m_max;
                if sm.m_count > 0 then m.m_last <- sm.m_last
            | Series ->
                let need = m.m_len + sm.m_len in
                if need > Array.length m.m_series then begin
                  let grown = Array.make (max need (2 * max 1 m.m_len)) 0.0 in
                  Array.blit m.m_series 0 grown 0 m.m_len;
                  m.m_series <- grown
                end;
                Array.blit sm.m_series 0 m.m_series m.m_len sm.m_len;
                m.m_len <- need;
                for i = 0 to sm.m_len - 1 do
                  update m sm.m_series.(i)
                done)
          (List.rev src.order))

let names t = locked t (fun () -> List.rev t.order)

let get t name = locked t (fun () -> Hashtbl.find_opt t.tbl name)

let kind_of m = m.m_kind
let count m = m.m_count
let sum m = m.m_sum
let last m = m.m_last
let series m = Array.sub m.m_series 0 m.m_len

let value m =
  match m.m_kind with Counter -> m.m_sum | Gauge -> m.m_last | Histogram | Series -> m.m_sum

let mean m = if m.m_count = 0 then 0.0 else m.m_sum /. float_of_int m.m_count

let fl v =
  if Float.is_nan v || Float.abs v = infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "metric,kind,index,value,count,sum,min,max,mean\n";
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      let vmin = if m.m_count = 0 then 0.0 else m.m_min in
      let vmax = if m.m_count = 0 then 0.0 else m.m_max in
      let summary =
        Printf.sprintf "%s,%s,,%s,%d,%s,%s,%s,%s\n" m.m_name (kind_label m.m_kind)
          (fl (value m)) m.m_count (fl m.m_sum) (fl vmin) (fl vmax) (fl (mean m))
      in
      Buffer.add_string buf summary;
      if m.m_kind = Series then
        for i = 0 to m.m_len - 1 do
          Buffer.add_string buf
            (Printf.sprintf "%s,point,%d,%s,,,,,\n" m.m_name i (fl m.m_series.(i)))
        done)
    (names t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  let first = ref true in
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\": {\"kind\": \"%s\", \"count\": %d, \"sum\": %s"
           (json_escape m.m_name) (kind_label m.m_kind) m.m_count (fl m.m_sum));
      if m.m_count > 0 then
        Buffer.add_string buf
          (Printf.sprintf ", \"min\": %s, \"max\": %s, \"mean\": %s, \"last\": %s" (fl m.m_min)
             (fl m.m_max) (fl (mean m)) (fl m.m_last));
      if m.m_kind = Series then begin
        Buffer.add_string buf ", \"values\": [";
        for i = 0 to m.m_len - 1 do
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (fl m.m_series.(i))
        done;
        Buffer.add_string buf "]"
      end;
      Buffer.add_string buf "}")
    (names t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_csv t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let write_json t file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))
