let mk_cost ~occ ~len =
  {
    Sched.Cost.rp = { Sched.Cost.aprp_vgpr = 24; aprp_sgpr = 80; occupancy = occ };
    length = len;
  }

let test_post_filter_decision_table () =
  let f = Pipeline.Filters.default in
  let check name expected heuristic aco =
    Alcotest.(check bool) name
      (expected = `Revert)
      (Pipeline.Filters.post_schedule f ~heuristic ~aco = Pipeline.Filters.Revert_to_heuristic)
  in
  check "occupancy loss reverts" `Revert (mk_cost ~occ:9 ~len:100) (mk_cost ~occ:8 ~len:90);
  check "clear length regression reverts" `Revert (mk_cost ~occ:9 ~len:100) (mk_cost ~occ:9 ~len:110);
  check "within-slack tie keeps" `Keep (mk_cost ~occ:9 ~len:100) (mk_cost ~occ:9 ~len:102);
  check "equal occ shorter keeps" `Keep (mk_cost ~occ:9 ~len:100) (mk_cost ~occ:9 ~len:90);
  check "small occ gain huge penalty reverts" `Revert (mk_cost ~occ:5 ~len:100)
    (mk_cost ~occ:8 ~len:200);
  check "small occ gain small penalty keeps" `Keep (mk_cost ~occ:5 ~len:100)
    (mk_cost ~occ:8 ~len:150);
  check "occupancy gain within the cap keeps" `Keep (mk_cost ~occ:5 ~len:100)
    (mk_cost ~occ:9 ~len:160);
  check "huge penalty reverts even at a big gain" `Revert (mk_cost ~occ:5 ~len:100)
    (mk_cost ~occ:9 ~len:400)

let compile_cfg () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ()) with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
  }

let test_run_region_coherent () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let r = Pipeline.Compile.run_region (compile_cfg ()) ~name:"t" region in
  Alcotest.(check int) "size recorded" (Ir.Region.size region) r.Pipeline.Compile.n;
  Alcotest.(check bool) "lb below heuristic" true
    (r.Pipeline.Compile.length_lb <= r.Pipeline.Compile.heuristic_cost.Sched.Cost.length);
  Alcotest.(check bool) "gap consistent" true
    (r.Pipeline.Compile.pass2_gap
    = r.Pipeline.Compile.pass1_only_cost.Sched.Cost.length - r.Pipeline.Compile.length_lb);
  Alcotest.(check int) "orders complete" r.Pipeline.Compile.n
    (Array.length r.Pipeline.Compile.aco_order)

let test_final_for_threshold_synthesis () =
  let region = Workload.Shapes.transform (Support.Rng.create 3) ~unroll:10 ~chain:4 in
  let r = Pipeline.Compile.run_region (compile_cfg ()) ~name:"t" region in
  (* With an absurd threshold pass 2 is always gated. *)
  let gated =
    Pipeline.Perf_model.final_for
      { Pipeline.Filters.default with Pipeline.Filters.cycle_threshold = 100000 }
      r
  in
  if r.Pipeline.Compile.pass1_invoked then
    Alcotest.(check bool) "gated final is pass1-only or heuristic" true
      (gated.Pipeline.Perf_model.cost = r.Pipeline.Compile.pass1_only_cost
      || gated.Pipeline.Perf_model.reverted)
  else
    Alcotest.(check bool) "no ACO -> heuristic" true
      (gated.Pipeline.Perf_model.cost = r.Pipeline.Compile.heuristic_cost);
  (* With threshold 1 the recorded ACO product is eligible. *)
  let open_ = Pipeline.Perf_model.final_for Pipeline.Filters.no_filtering r in
  if r.Pipeline.Compile.pass2_invoked && r.Pipeline.Compile.pass2_gap >= 1 then
    Alcotest.(check bool) "ungated final is the ACO product" true
      (open_.Pipeline.Perf_model.cost = r.Pipeline.Compile.aco_cost
      || open_.Pipeline.Perf_model.reverted)

let suite_report =
  lazy
    (let suite = Workload.Suite.generate Workload.Suite.test_scale in
     Pipeline.Compile.run_suite (compile_cfg ()) suite)

let test_suite_report_shape () =
  let report = Lazy.force suite_report in
  Alcotest.(check int) "one report per kernel"
    (List.length report.Pipeline.Compile.suite.Workload.Suite.kernels)
    (List.length report.Pipeline.Compile.kernels);
  List.iter
    (fun (kr : Pipeline.Compile.kernel_report) ->
      Alcotest.(check int) "one region report per region"
        (List.length kr.Pipeline.Compile.kernel.Workload.Suite.regions)
        (List.length kr.Pipeline.Compile.regions))
    report.Pipeline.Compile.kernels

let test_timing_totals_monotone () =
  let report = Lazy.force suite_report in
  let t = Pipeline.Timing.compile_totals ~threshold:21 report in
  Alcotest.(check bool) "seq >= base" true (t.Pipeline.Timing.seq_ns >= t.Pipeline.Timing.base_ns);
  Alcotest.(check bool) "par >= base" true (t.Pipeline.Timing.par_ns >= t.Pipeline.Timing.base_ns);
  let loose = Pipeline.Timing.compile_totals ~threshold:1 report in
  Alcotest.(check bool) "lower threshold means more ACO time" true
    (loose.Pipeline.Timing.seq_ns >= t.Pipeline.Timing.seq_ns);
  Alcotest.(check (float 1e-6)) "pct of base is zero" 0.0
    (Pipeline.Timing.pct_increase t.Pipeline.Timing.base_ns t.Pipeline.Timing.base_ns)

let test_perf_model_views () =
  let report = Lazy.force suite_report in
  List.iter
    (fun b ->
      let th = Pipeline.Perf_model.benchmark_time Pipeline.Perf_model.Heuristic report b in
      let tf =
        Pipeline.Perf_model.benchmark_time
          (Pipeline.Perf_model.Final Pipeline.Filters.default)
          report b
      in
      Alcotest.(check bool) "times positive" true (th > 0.0 && tf > 0.0);
      Alcotest.(check bool) "throughput consistent" true
        (Pipeline.Perf_model.benchmark_throughput Pipeline.Perf_model.Heuristic report b
        = b.Workload.Suite.bytes_per_item /. th))
    report.Pipeline.Compile.suite.Workload.Suite.benchmarks

let test_report_tables_coherent () =
  let report = Lazy.force suite_report in
  let f = Pipeline.Filters.default in
  let t1 = Pipeline.Report.table1 f report in
  Alcotest.(check bool) "pass counts within region count" true
    (t1.Pipeline.Report.pass1_regions <= t1.Pipeline.Report.num_regions
    && t1.Pipeline.Report.pass2_regions <= t1.Pipeline.Report.num_regions);
  let rows = Pipeline.Report.table3 ~pass:`Two f report in
  Alcotest.(check int) "three size categories" 3 (List.length rows);
  List.iter
    (fun (r : Pipeline.Report.speedup_row) ->
      Alcotest.(check bool) "comparable <= processed" true
        (r.Pipeline.Report.comparable <= r.Pipeline.Report.processed);
      if r.Pipeline.Report.comparable > 0 then
        (* 1 ulp of slack: geomean of a singleton round-trips through exp/log *)
        Alcotest.(check bool) "min <= geo <= max" true
          (r.Pipeline.Report.min_speedup <= r.Pipeline.Report.geomean *. (1.0 +. 1e-12)
          && r.Pipeline.Report.geomean <= r.Pipeline.Report.max_speedup *. (1.0 +. 1e-12)))
    rows;
  let t7 = Pipeline.Report.table7 ~thresholds:[ 1; 21 ] report in
  List.iter
    (fun (r : Pipeline.Report.table7_row) ->
      Alcotest.(check bool) "imps monotone" true
        (r.Pipeline.Report.imps_ge_3 >= r.Pipeline.Report.imps_ge_5
        && r.Pipeline.Report.imps_ge_5 >= r.Pipeline.Report.imps_ge_10);
      Alcotest.(check bool) "regs monotone" true
        (r.Pipeline.Report.regs_ge_3 >= r.Pipeline.Report.regs_ge_5
        && r.Pipeline.Report.regs_ge_5 >= r.Pipeline.Report.regs_ge_10))
    t7

let test_fig4_significance () =
  let report = Lazy.force suite_report in
  let f4 = Pipeline.Report.fig4 Pipeline.Filters.default report in
  List.iter
    (fun (_, pct) ->
      Alcotest.(check bool) "rows are significant" true (Float.abs pct >= 1.0))
    f4.Pipeline.Report.rows;
  Alcotest.(check bool) "counts within sensitive set" true
    (f4.Pipeline.Report.improved_ge_10pct <= f4.Pipeline.Report.improved_ge_5pct)

let test_reldist () =
  let id = [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  let rev = [| 7; 6; 5; 4; 3; 2; 1; 0 |] in
  Alcotest.(check (float 1e-9)) "identical orders" 0.0 (Pipeline.Perf_model.reldist id id);
  let d = Pipeline.Perf_model.reldist id rev in
  Alcotest.(check bool) "reversal is far" true (d > 0.5);
  Alcotest.(check bool) "bounded by one" true (d <= 1.0);
  let near = [| 1; 0; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check bool) "one swap is close" true
    (Pipeline.Perf_model.reldist id near < 0.1)

let test_ablation_smoke () =
  (* One hand-built "suite": a single pressure kernel, so the ablations
     have at least one eligible region and every code path executes. *)
  let rng = Support.Rng.create 12 in
  let hot = Workload.Shapes.wide_accum rng ~accumulators:20 ~rounds:24 in
  let kernel =
    {
      Workload.Suite.kernel_name = "ablation_kernel";
      regions = [ hot ];
      hot_index = 0;
      mem_ratio = 0.5;
    }
  in
  let config = compile_cfg () in
  let kr =
    {
      Pipeline.Compile.kernel;
      regions = [ Pipeline.Compile.run_region config ~name:"hot" hot ];
    }
  in
  let report =
    {
      Pipeline.Compile.suite =
        {
          Workload.Suite.kernels = [ kernel ];
          benchmarks =
            [ { Workload.Suite.bench_name = "b"; kernel; items = 1024; bytes_per_item = 8.0 } ];
        };
      compile_config = config;
      kernels = [ kr ];
    }
  in
  let rows =
    Pipeline.Ablation.compare_opts config report ~baseline:Gpusim.Config.opts_no_memory
      ~optimized:Gpusim.Config.opts_paper
  in
  Alcotest.(check int) "three categories" 3 (List.length rows);
  Alcotest.(check bool) "memory optimizations help somewhere" true
    (List.exists
       (fun (r : Pipeline.Ablation.time_row) ->
         r.Pipeline.Ablation.pass1_overall_pct > 0.0 || r.Pipeline.Ablation.pass2_overall_pct > 0.0)
       rows);
  let stalls =
    Pipeline.Ablation.stall_fraction_sweep config report ~fractions:[ 0.25 ] ~min_region_size:1
  in
  Alcotest.(check int) "one stall row" 1 (List.length stalls);
  let limits = Pipeline.Ablation.ready_limit_experiment config report in
  Alcotest.(check int) "min and mid rows" 2 (List.length limits)

let suite =
  [
    Alcotest.test_case "post filter decision table" `Quick test_post_filter_decision_table;
    Alcotest.test_case "reldist" `Quick test_reldist;
    Alcotest.test_case "run_region coherent" `Quick test_run_region_coherent;
    Alcotest.test_case "threshold synthesis" `Quick test_final_for_threshold_synthesis;
    Alcotest.test_case "suite report shape" `Slow test_suite_report_shape;
    Alcotest.test_case "timing totals" `Slow test_timing_totals_monotone;
    Alcotest.test_case "perf model views" `Slow test_perf_model_views;
    Alcotest.test_case "report tables coherent" `Slow test_report_tables_coherent;
    Alcotest.test_case "fig4 significance" `Slow test_fig4_significance;
    Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
  ]
