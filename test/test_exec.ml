(* The execute layer of the compile service: registry domain-safety, the
   content-addressed analysis cache, ride-along baseline sourcing, and
   the canonical-identity differentials — the suite report must be the
   same whether the cache is on or off and whether one domain or four
   compile it, fault injection and tight budgets included. *)

let params = Tu.test_params
let gpu = Tu.test_gpu

(* --- registry under concurrent registration ------------------------------ *)

let test_registry_domains () =
  (* Hammer the registry from several domains at once: registrations and
     [ensure_backends] racing must neither crash nor corrupt the order
     list (re-registration keeps the first position, every name resolves
     afterwards). *)
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              Pipeline.Compile.ensure_backends ();
              ignore (Engine.Registry.find "par");
              ignore (Engine.Registry.names ());
              ignore (Engine.Registry.mem (if d mod 2 = 0 then "seq" else "weighted"))
            done))
  in
  Array.iter Domain.join domains;
  List.iter
    (fun b -> Alcotest.(check bool) (b ^ " registered") true (Engine.Registry.mem b))
    [ "seq"; "par"; "weighted" ];
  let names = Engine.Registry.names () in
  let sorted = List.sort_uniq String.compare names in
  Alcotest.(check int) "no duplicate registrations" (List.length sorted)
    (List.length names)

(* --- analysis cache ------------------------------------------------------ *)

(* Structurally equal region under fresh names: [random_region] is
   deterministic in the seed, so building it twice yields equal graphs
   whose instruction names differ only by builder counter state. *)
let test_cache_content_addressing () =
  let r1 = Tu.random_region ~max_size:25 11 in
  let r2 = Tu.random_region ~max_size:25 11 in
  let r3 = Tu.random_region ~max_size:25 12 in
  Alcotest.(check bool) "same structure, same fingerprint" true
    (Engine.Region_ctx.fingerprint_of_region r1
    = Engine.Region_ctx.fingerprint_of_region r2);
  Alcotest.(check bool) "different structure, different fingerprint" false
    (Engine.Region_ctx.fingerprint_of_region r1
    = Engine.Region_ctx.fingerprint_of_region r3);
  let cache = Pipeline.Analysis.create () in
  let c1 = Pipeline.Analysis.get cache Tu.occ r1 in
  let c2 = Pipeline.Analysis.get cache Tu.occ r2 in
  let _ = Pipeline.Analysis.get cache Tu.occ r3 in
  Alcotest.(check bool) "structural duplicate shares the context" true (c1 == c2);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "hits" 1 s.Pipeline.Analysis.hits;
  Alcotest.(check int) "misses" 2 s.Pipeline.Analysis.misses;
  Alcotest.(check int) "computed" 2 s.Pipeline.Analysis.computed;
  Alcotest.(check int) "entries" 2 s.Pipeline.Analysis.entries

let test_cache_lru_eviction () =
  let cache = Pipeline.Analysis.create ~capacity:2 () in
  let ra = Tu.random_region ~max_size:20 21 in
  let rb = Tu.random_region ~max_size:20 22 in
  let rc = Tu.random_region ~max_size:20 23 in
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  ignore (Pipeline.Analysis.get cache Tu.occ rb);
  (* touch [ra] so [rb] is the least recently used, then overflow *)
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  ignore (Pipeline.Analysis.get cache Tu.occ rc);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Pipeline.Analysis.evictions;
  Alcotest.(check int) "bounded residency" 2 s.Pipeline.Analysis.entries;
  (* [ra] survived (recently used), [rb] was evicted and recomputes *)
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  Alcotest.(check int) "victim is the LRU entry"
    (s.Pipeline.Analysis.computed)
    (Pipeline.Analysis.stats cache).Pipeline.Analysis.computed;
  ignore (Pipeline.Analysis.get cache Tu.occ rb);
  Alcotest.(check int) "evicted entry recomputes"
    (s.Pipeline.Analysis.computed + 1)
    (Pipeline.Analysis.stats cache).Pipeline.Analysis.computed

let test_cache_disabled () =
  let cache = Pipeline.Analysis.disabled () in
  Alcotest.(check bool) "not caching" false (Pipeline.Analysis.caching cache);
  let r = Tu.random_region ~max_size:20 31 in
  ignore (Pipeline.Analysis.get cache Tu.occ r);
  ignore (Pipeline.Analysis.get cache Tu.occ r);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "no hits without storage" 0 s.Pipeline.Analysis.hits;
  Alcotest.(check int) "every lookup computes" 2 s.Pipeline.Analysis.computed;
  Alcotest.(check int) "nothing retained" 0 s.Pipeline.Analysis.entries

let test_cache_computes_once () =
  (* The once-per-distinct-region invariant, measured in closure
     computations: a duplicate-heavy suite compiled under a race dispatch
     plus the ride-along baseline (four analysis consumers per region)
     must run one closure analysis per distinct region. *)
  let suite =
    Workload.Suite.replicate ~copies:2
      (Workload.Suite.generate
         { Workload.Suite.test_scale with Workload.Suite.num_kernels = 2 })
  in
  let distinct =
    let seen = Hashtbl.create 32 in
    List.iter
      (fun r -> Hashtbl.replace seen (Engine.Region_ctx.fingerprint_of_region r) ())
      (Workload.Suite.all_regions suite);
    Hashtbl.length seen
  in
  let config =
    {
      (Pipeline.Compile.make_config ~gpu
         ~dispatch:(Engine.Dispatch.Race [ "par"; "weighted" ])
         ())
      with
      Pipeline.Compile.params;
      run_sequential = true;
    }
  in
  let cache = Pipeline.Analysis.create () in
  let c0 = Ddg.Closure.compute_count () in
  ignore (Pipeline.Executor.run_suite ~jobs:1 ~cache config suite);
  Alcotest.(check int) "one closure analysis per distinct region" distinct
    (Ddg.Closure.compute_count () - c0);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "one cache computation per distinct region" distinct
    s.Pipeline.Analysis.computed;
  Alcotest.(check bool) "duplicate suite hits at least half the lookups" true
    (Pipeline.Analysis.hit_rate s >= 0.5)

(* --- ride-along baseline sourcing ---------------------------------------- *)

let test_ride_along_shares_context () =
  let region = Tu.random_region ~max_size:30 41 in
  let config =
    { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
  in
  let rc = Engine.Region_ctx.of_region config.Pipeline.Compile.occ region in
  let r = Pipeline.Compile.run_region ~ctx:rc config ~name:"ride" region in
  (* the ride-along sequential run started from the shared context's
     heuristic schedule: its recorded heuristic cost is the context's *)
  (match Pipeline.Compile.find_run r "seq" with
  | None -> Alcotest.fail "run_sequential did not add a seq baseline run"
  | Some run ->
      Alcotest.(check bool) "baseline heuristic cost comes from the shared context"
        true
        (run.Pipeline.Compile.result.Engine.Types.heuristic_cost
        = rc.Engine.Region_ctx.setup.Aco.Setup.amd_cost));
  Alcotest.(check bool) "report heuristic cost comes from the shared context" true
    (r.Pipeline.Compile.heuristic_cost = rc.Engine.Region_ctx.setup.Aco.Setup.amd_cost);
  Alcotest.(check bool) "CP sensitivity cost comes from the shared context" true
    (r.Pipeline.Compile.cp_cost = rc.Engine.Region_ctx.cp_cost)

(* --- canonical identity of the multi-domain executor --------------------- *)

let small_suite seed =
  Workload.Suite.generate
    { Workload.Suite.test_scale with Workload.Suite.seed; num_kernels = 2 }

let digest_of ~jobs ~cache config suite =
  Pipeline.Report_digest.digest (Pipeline.Executor.run_suite ~jobs ?cache config suite)

let exec_identity =
  QCheck.Test.make ~count:3
    ~name:"suite report is canonically identical across cache and domain count"
    QCheck.small_int
    (fun seed ->
      let suite = small_suite seed in
      let config =
        { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
      in
      let reference = digest_of ~jobs:1 ~cache:None config suite in
      let sequential =
        Pipeline.Report_digest.digest (Pipeline.Compile.run_suite config suite)
      in
      Alcotest.(check string) "executor jobs=1 = sequential run_suite" sequential
        reference;
      Alcotest.(check string) "cache on = cache off" reference
        (digest_of ~jobs:1 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
      Alcotest.(check string) "jobs=4 = jobs=1" reference
        (digest_of ~jobs:4 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
      true)

let exec_identity_faulted =
  QCheck.Test.make ~count:2
    ~name:"canonical identity holds under injected faults and tight budgets"
    QCheck.small_int
    (fun seed ->
      let suite = small_suite (seed + 1000) in
      List.iter
        (fun (fault_rate, budget_ms) ->
          let config =
            {
              (Pipeline.Compile.make_config ~gpu ~fault_rate
                 ~fault_seed:(seed + 7) ~compile_budget_ms:budget_ms ())
              with
              Pipeline.Compile.params;
            }
          in
          let reference = digest_of ~jobs:1 ~cache:None config suite in
          Alcotest.(check string)
            (Printf.sprintf "rate=%.1f budget=%.3fms: jobs=4 = jobs=1" fault_rate
               budget_ms)
            reference
            (digest_of ~jobs:4 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
          Alcotest.(check string)
            (Printf.sprintf "rate=%.1f budget=%.3fms: cache on = off" fault_rate
               budget_ms)
            reference
            (digest_of ~jobs:1 ~cache:(Some (Pipeline.Analysis.create ())) config suite))
        [ (0.5, 5.0); (0.9, 0.01) ];
      true)

let test_degradation_ledger_stable () =
  (* The degradation ledger (fault tallies and severities) is part of the
     digest, but assert it directly too: a faulted, tightly budgeted
     compile tallies identically whether one or four domains ran it. *)
  let suite = small_suite 77 in
  let config =
    {
      (Pipeline.Compile.make_config ~gpu ~fault_rate:0.7 ~fault_seed:3
         ~compile_budget_ms:0.05 ())
      with
      Pipeline.Compile.params;
    }
  in
  let tally report =
    Pipeline.Robust.tally_of_list
      (List.concat_map
         (fun (kr : Pipeline.Compile.kernel_report) ->
           List.map
             (fun (r : Pipeline.Compile.region_report) ->
               r.Pipeline.Compile.degradation)
             kr.Pipeline.Compile.regions)
         report.Pipeline.Compile.kernels)
  in
  let t1 = tally (Pipeline.Executor.run_suite ~jobs:1 config suite) in
  let t4 =
    tally
      (Pipeline.Executor.run_suite ~jobs:4
         ~cache:(Pipeline.Analysis.create ())
         config suite)
  in
  Alcotest.(check bool) "ledgers agree" true (t1 = t4)

(* --- work-stealing deque -------------------------------------------------- *)

let test_ws_deque () =
  let d = Support.Ws_deque.create [| 10; 20; 30 |] in
  Alcotest.(check int) "length" 3 (Support.Ws_deque.length d);
  Alcotest.(check (option int)) "owner pops the high end" (Some 30)
    (Support.Ws_deque.take d);
  (match Support.Ws_deque.steal d with
  | Support.Ws_deque.Stolen v -> Alcotest.(check int) "thief steals the low end" 10 v
  | _ -> Alcotest.fail "steal of a non-empty deque should succeed");
  Alcotest.(check (option int)) "owner keeps popping" (Some 20)
    (Support.Ws_deque.take d);
  Alcotest.(check (option int)) "drained" None (Support.Ws_deque.take d);
  match Support.Ws_deque.steal d with
  | Support.Ws_deque.Empty -> ()
  | _ -> Alcotest.fail "steal of a drained deque is Empty"

let test_ws_deque_race () =
  (* an owner and three thieves drain 2000 elements concurrently; the
     fixed-population deque must hand out each exactly once *)
  let n = 2000 in
  let d = Support.Ws_deque.create (Array.init n (fun i -> i)) in
  let thief () =
    let rec go acc =
      match Support.Ws_deque.steal d with
      | Support.Ws_deque.Stolen v -> go (v :: acc)
      | Support.Ws_deque.Lost -> go acc
      | Support.Ws_deque.Empty -> acc
    in
    go []
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn thief) in
  let rec own acc =
    match Support.Ws_deque.take d with Some v -> own (v :: acc) | None -> acc
  in
  let mine = own [] in
  let stolen = Array.fold_left (fun acc t -> Domain.join t @ acc) [] thieves in
  Alcotest.(check (list int)) "every element claimed exactly once"
    (List.init n Fun.id)
    (List.sort compare (mine @ stolen))

(* --- persistent domain pool ----------------------------------------------- *)

let test_pool_spawns_once () =
  let pool = Support.Domain_pool.create ~size:3 () in
  Alcotest.(check int) "lazy: nothing spawned at create" 0
    (Support.Domain_pool.spawned pool);
  let config =
    { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
  in
  let suite = Workload.Suite.skewed ~giants:1 ~tiny:6 () in
  let reference = digest_of ~jobs:1 ~cache:None config suite in
  Fun.protect
    ~finally:(fun () -> Support.Domain_pool.shutdown pool)
    (fun () ->
      ignore (Pipeline.Executor.run_suite ~jobs:4 ~pool config suite);
      let after_first = Support.Domain_pool.spawned pool in
      Alcotest.(check bool) "helpers spawned on first parallel run" true
        (after_first > 0 && after_first <= 3);
      for _ = 1 to 3 do
        Alcotest.(check string) "digest stable across pooled runs" reference
          (Pipeline.Report_digest.digest
             (Pipeline.Executor.run_suite ~jobs:4 ~pool config suite))
      done;
      Alcotest.(check int) "domains spawned once across consecutive suite runs"
        after_first
        (Support.Domain_pool.spawned pool))

(* --- metrics shard merging ------------------------------------------------ *)

let test_metrics_merge () =
  let into = Obs.Metrics.create () in
  let src = Obs.Metrics.create () in
  Obs.Metrics.add into "c" 2;
  Obs.Metrics.add src "c" 3;
  Obs.Metrics.set src "g" 2.5;
  Obs.Metrics.observe into "h" 1.0;
  Obs.Metrics.observe src "h" 3.0;
  Obs.Metrics.push into "s" 1.0;
  Obs.Metrics.push src "s" 2.0;
  Obs.Metrics.push src "s" 3.0;
  Obs.Metrics.merge_into src ~into;
  let m name = Option.get (Obs.Metrics.get into name) in
  Alcotest.(check int) "counter events add" 2 (Obs.Metrics.count (m "c"));
  Alcotest.(check (float 1e-9)) "counter totals add" 5.0 (Obs.Metrics.sum (m "c"));
  Alcotest.(check (float 1e-9)) "gauge carried over" 2.5 (Obs.Metrics.last (m "g"));
  Alcotest.(check int) "histogram counts add" 2 (Obs.Metrics.count (m "h"));
  Alcotest.(check (float 1e-9)) "histogram sums add" 4.0 (Obs.Metrics.sum (m "h"));
  Alcotest.(check int) "series appends" 3 (Obs.Metrics.count (m "s"));
  Alcotest.(check (array (float 1e-9))) "series points in order" [| 1.0; 2.0; 3.0 |]
    (Obs.Metrics.series (m "s"))

(* --- arena pooling -------------------------------------------------------- *)

let test_arena_pooling () =
  let config =
    { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
  in
  let suite = small_suite 5 in
  let r0 = Support.Arena.reuses () in
  ignore (Pipeline.Executor.run_suite ~jobs:1 config suite);
  Alcotest.(check bool) "arenas are pooled across region jobs, not re-created" true
    (Support.Arena.reuses () > r0)

(* --- skewed suites on a shared pool, under faults ------------------------- *)

let exec_identity_skewed =
  QCheck.Test.make ~count:2
    ~name:"skewed suites: canonical identity under faults on a shared pool"
    QCheck.small_int
    (fun seed ->
      let suite = Workload.Suite.skewed ~seed ~giants:1 ~tiny:8 () in
      let pool = Support.Domain_pool.create ~size:3 () in
      Fun.protect
        ~finally:(fun () -> Support.Domain_pool.shutdown pool)
        (fun () ->
          let config =
            {
              (Pipeline.Compile.make_config ~gpu ~fault_rate:0.6
                 ~fault_seed:(seed + 5) ~compile_budget_ms:0.05 ())
              with
              Pipeline.Compile.params;
            }
          in
          let reference = digest_of ~jobs:1 ~cache:None config suite in
          Alcotest.(check string) "jobs=4 on the pool = jobs=1" reference
            (Pipeline.Report_digest.digest
               (Pipeline.Executor.run_suite ~jobs:4 ~pool
                  ~cache:(Pipeline.Analysis.create ())
                  config suite)));
      true)

(* --- trace merge ---------------------------------------------------------- *)

let test_trace_merge () =
  (* A four-worker trace is the jobs=1 trace re-laid on the simulated
     timeline: same event population (counts per span name), and the
     merged document still passes the structural lint. Timestamps are
     not byte-compared — per-slice shifts round differently than the
     sequential clock walk. *)
  let suite = Workload.Suite.skewed ~giants:1 ~tiny:6 () in
  let config =
    { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
  in
  let t1 = Obs.Trace.create () in
  ignore
    (Pipeline.Executor.run_suite ~jobs:1 ~trace:t1
       ~cache:(Pipeline.Analysis.create ())
       config suite);
  let t4 = Obs.Trace.create () in
  let pool = Support.Domain_pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Support.Domain_pool.shutdown pool)
    (fun () ->
      ignore
        (Pipeline.Executor.run_suite ~jobs:4 ~pool ~trace:t4
           ~cache:(Pipeline.Analysis.create ())
           config suite));
  Alcotest.(check bool) "traced something" true (Obs.Trace.recorded t1 > 0);
  (* compare the simulated timeline only: a parallel run additionally
     lays down wall-clock worker tracks (>= wall_track_base) that a
     sequential run has no workers to produce *)
  let sim_events t =
    List.filter (fun e -> e.Obs.Trace.e_track < Obs.Trace.wall_track_base)
      (Obs.Trace.events t)
  in
  Alcotest.(check int) "same number of simulated events"
    (List.length (sim_events t1))
    (List.length (sim_events t4));
  Alcotest.(check bool) "parallel run lays down wall-clock tracks" true
    (List.exists (fun e -> e.Obs.Trace.e_track >= Obs.Trace.wall_track_base)
       (Obs.Trace.events t4));
  let counts t =
    let tally = Hashtbl.create 32 in
    List.iter
      (fun e ->
        if e.Obs.Trace.e_kind = `Span then
          Hashtbl.replace tally e.Obs.Trace.e_name
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally e.Obs.Trace.e_name)))
      (sim_events t);
    List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) tally [])
  in
  Alcotest.(check (list (pair string int))) "same span counts per name" (counts t1)
    (counts t4);
  List.iter
    (fun t ->
      let r = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json t) in
      if not (Obs.Trace_check.ok r) then
        Alcotest.failf "trace fails lint: %s" (Obs.Trace_check.report_to_string r))
    [ t1; t4 ];
  let r4 = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json t4) in
  Alcotest.(check bool) "lint sees the wall-clock process" true
    (r4.Obs.Trace_check.wall_tracks >= 1)

let suite =
  [
    ("registry survives concurrent registration", `Quick, test_registry_domains);
    ("work-stealing deque: owner and thief ends", `Quick, test_ws_deque);
    ("work-stealing deque: concurrent drain", `Quick, test_ws_deque_race);
    ("domain pool spawns once, reused across runs", `Quick, test_pool_spawns_once);
    ("metrics shards merge", `Quick, test_metrics_merge);
    ("arenas pool across region jobs", `Quick, test_arena_pooling);
    ("parallel trace merges onto the simulated timeline", `Quick, test_trace_merge);
    ("analysis cache is content-addressed", `Quick, test_cache_content_addressing);
    ("analysis cache evicts LRU at capacity", `Quick, test_cache_lru_eviction);
    ("capacity 0 meters without storing", `Quick, test_cache_disabled);
    ("analysis runs once per distinct region", `Quick, test_cache_computes_once);
    ("ride-along baseline shares the region context", `Quick,
     test_ride_along_shares_context);
    ("degradation ledger is domain-count independent", `Quick,
     test_degradation_ledger_stable);
  ]
  @ Tu.qtests [ exec_identity; exec_identity_faulted; exec_identity_skewed ]
