type decision = Schedule_from of int list | Optional_stall | Forced_breach

let fits rp ~target_vgpr ~target_sgpr i =
  Sched.Rp_tracker.fits_within rp i ~target_vgpr ~target_sgpr

let classify ~rng ~allow_optional ~base_probability ~rp ~target_vgpr ~target_sgpr ~ready
    ~has_semi_ready ~optional_stalls_so_far =
  let fitting = List.filter (fits rp ~target_vgpr ~target_sgpr) ready in
  match fitting with
  | [] ->
      (* Waiting is the only move that can keep the ant alive, but an ant
         in a no-optional-stall wavefront is not allowed to take it
         (Section V-B / Table 6: with 0% stalling wavefronts some regions
         cannot reach the target and the pass falls back to its input
         schedule). *)
      if allow_optional && has_semi_ready then Optional_stall else Forced_breach
  | _ :: _ ->
      (* Some candidates fit. Waiting can still be attractive when other
         candidates would breach and something is in flight: the fitting
         candidates may be the RP-hungry ones to defer. Probability is
         damped geometrically by the stalls already inserted. *)
      let some_breach = List.length fitting < List.length ready in
      if
        allow_optional && has_semi_ready && some_breach
        && Support.Rng.bool rng
             (base_probability *. (0.5 ** float_of_int optional_stalls_so_far))
      then Optional_stall
      else Schedule_from fitting

(* Array-slice variant of [classify] for the zero-allocation hot loop:
   the fitting candidates are compacted into the prefix of [cand] by a
   stable in-place filter (preserving ready order, hence the selection's
   byte-identity with the list version) and only their count is
   returned. Fit tests and the single optional-stall coin consume the
   RNG exactly as [classify] does. *)
type slice_decision = Fits of int | Stall | Breach

let classify_slice ~rng ~allow_optional ~base_probability ~rp ~target_vgpr ~target_sgpr ~cand
    ~n_cand ~has_semi_ready ~optional_stalls_so_far =
  let m = Sched.Rp_tracker.filter_fits_prefix rp ~cand ~n_cand ~target_vgpr ~target_sgpr in
  if m = 0 then if allow_optional && has_semi_ready then Stall else Breach
  else if
    allow_optional && has_semi_ready && m < n_cand
    && Support.Rng.bool rng (base_probability *. (0.5 ** float_of_int optional_stalls_so_far))
  then Stall
  else Fits m
