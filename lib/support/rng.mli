(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, so a single
    integer seed expands into a full 256-bit state. Every stochastic
    component of the reproduction (ant construction, workload generation,
    the un-modeled-noise term of the performance model) draws from an
    explicitly threaded [t], never from a global generator, which makes
    all experiments replayable from their seeds. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split rng] derives an independent generator from [rng], advancing
    [rng]. Used to give each ant / each region its own stream. *)

val copy : t -> t
(** [copy rng] duplicates the current state without advancing it. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** [float rng] is uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool rng p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** Fisher-Yates in-place shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)
