(** The compile-time and regression filters of Section VI-D.

    Two filters bound ACO's cost and its execution-time risk:
    - the *cycle-threshold filter* skips the ILP pass when the input
      schedule is within [cycle_threshold] cycles of the length lower
      bound (a small schedule-length win rarely survives un-modeled
      factors; Table 7 tunes the threshold to 21);
    - the *post-scheduling filter* compares the final ACO schedule with
      the heuristic schedule and reverts when ACO bought a small
      occupancy gain with a disproportionate length penalty
      (experimentally: occupancy +3 is not worth more than 63 cycles). *)

type config = {
  cycle_threshold : int;
      (** pass-2 gate. The paper tunes this to 21 on real-hardware
          latencies; our latency scale is compressed (Ir.Opcode), which
          shifts the tuned value to 10 — the bench harness sweeps the
          paper's full range in Table 7 *)
  revert_occupancy_gain : int;  (** 3 *)
  revert_length_penalty : int;  (** 63 *)
  equal_occupancy_length_slack : int;
      (** at equal occupancy, ship the ACO schedule unless it is more
          than this many cycles longer (differences this small are below
          the cost model's resolution) *)
}

val default : config
(** Tuned settings: threshold 10 (see above), revert rule 3 / 63. *)

val no_filtering : config
(** Threshold 1, revert disabled (for ablations). *)

type verdict = Keep_aco | Revert_to_heuristic

val post_schedule : config -> heuristic:Sched.Cost.t -> aco:Sched.Cost.t -> verdict
(** The post-scheduling selection: keep the ACO schedule when it is at
    least as good on occupancy and not worse on length at equal
    occupancy; revert on occupancy loss, on a pure length regression, or
    when the length penalty of an occupancy gain exceeds
    [revert_length_penalty] cycles (the paper's tuned rule: occupancy +3
    is not worth more than 63 cycles). *)
