type result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_cost : Sched.Cost.t;
  iterations : int;
  work : int;
}

type Engine.Backend.ext += Rp_weight of int

let scalar occ ~rp_weight ~length ~peaks:(v, s) =
  length + (rp_weight * Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s))

let run ?(params = Params.default) ?(seed = 1) ?(rp_weight = 1) occ graph =
  let n = graph.Ddg.Graph.n in
  let rng = Support.Rng.create seed in
  let ants = Array.init params.Params.ants_per_iteration (fun _ -> Ant.create graph params) in
  let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
  let policy = Pheromone_policy.make Pheromone_policy.As ~params ~n ~metrics:Obs.Metrics.null in
  let termination = Pheromone_policy.patience policy in
  (* Unconstrained ants: a target at the register-file size never
     breaches, so no ant dies and no optional stall is inserted. *)
  let no_target = Sched.Objective.no_target in
  let mode = Ant.Ilp_pass { target_vgpr = no_target; target_sgpr = no_target } in
  let amd = Sched.Amd_scheduler.run occ graph in
  let amd_cost = Sched.Cost.of_schedule occ amd in
  let cost_of schedule_len peaks = scalar occ ~rp_weight ~length:schedule_len ~peaks in
  let lb =
    scalar occ ~rp_weight ~length:(Ddg.Lower_bounds.schedule_length graph)
      ~peaks:
        ( Ddg.Lower_bounds.register_pressure graph Ir.Reg.Vgpr,
          Ddg.Lower_bounds.register_pressure graph Ir.Reg.Sgpr )
  in
  let best = ref amd in
  let best_cost =
    ref
      (cost_of (Sched.Schedule.length amd)
         (let p = Sched.Rp_tracker.naive_peaks graph (Sched.Schedule.order amd) in
          (p Ir.Reg.Vgpr, p Ir.Reg.Sgpr)))
  in
  policy.Pheromone_policy.init pheromone ~initial_order:(Sched.Schedule.order amd)
    ~initial_cost:!best_cost;
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  while !best_cost > lb && !no_improve < termination && !iterations < params.Params.max_iterations do
    incr iterations;
    let iter_best_cost = ref max_int in
    let iter_best = ref None in
    Array.iter
      (fun ant ->
        Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:params.Params.heuristic
          ~allow_optional_stalls:false mode;
        Ant.run_to_completion ant ~pheromone;
        work := !work + Ant.work ant;
        if Ant.status ant = Ant.Finished then begin
          let c = cost_of (Ant.length ant) (Ant.rp_peaks ant) in
          if c < !iter_best_cost then begin
            iter_best_cost := c;
            iter_best := Some ant
          end
        end)
      ants;
    work := !work + (((n + 1) * n) / 8) + n;
    match !iter_best with
    | Some ant ->
        policy.Pheromone_policy.update pheromone ~winner_order:(Ant.order ant)
          ~winner_cost:!iter_best_cost;
        if !iter_best_cost < !best_cost then begin
          best_cost := !iter_best_cost;
          (match Ant.schedule ant with Some s -> best := s | None -> ());
          no_improve := 0
        end
        else incr no_improve
    | None ->
        policy.Pheromone_policy.update pheromone ~winner_order:Pheromone_policy.no_order
          ~winner_cost:max_int;
        incr no_improve
  done;
  {
    schedule = !best;
    cost = Sched.Cost.of_schedule occ !best;
    heuristic_cost = amd_cost;
    iterations = !iterations;
    work = !work;
  }

(* --- the "weighted" engine backend -------------------------------------- *)

type state = {
  params : Params.t;
  rng : Support.Rng.t;
  ants : Ant.t array;
  arena : Support.Arena.t;
  pheromone : Pheromone.t;
  policy : Pheromone_policy.t;
  termination : int;
  metrics : Obs.Metrics.t;
  occ : Machine.Occupancy.t;
  graph : Ddg.Graph.t;
  rp_weight : int;
}

let work_of_budget = function
  | Engine.Types.Unlimited -> max_int
  | Engine.Types.Work w -> w
  | Engine.Types.Time_ns _ ->
      invalid_arg "Weighted_aco: nanosecond budgets require a time-model backend"

module Backend_impl = struct
  let name = "weighted"

  (* No RP pass: the weighted formulation folds RP into the single
     objective, so the engine goes straight to the schedule pass. *)
  let caps =
    {
      Engine.Types.rp_pass = false;
      faults = false;
      trace = false;
      time_model = false;
      prune = false;
    }

  (* Weighted-sum cost is an alternative cost formulation, not an RP
     objective the two-pass engine can thread: the engine never runs an
     RP pass for this backend, so the default (cliff) objective is
     declared and the weighting happens inside [run_schedule_pass]. *)
  let objective = None

  type nonrec state = state

  let prepare (ctx : Engine.Backend.ctx) (rc : Engine.Region_ctx.t) =
    let setup = rc.Engine.Region_ctx.setup in
    let graph = setup.Setup.graph in
    let n = graph.Ddg.Graph.n in
    let params = ctx.Engine.Backend.params in
    let rp_weight =
      List.fold_left
        (fun acc e -> match e with Rp_weight w -> w | _ -> acc)
        1 ctx.Engine.Backend.ext
    in
    let rng = Support.Rng.create ctx.Engine.Backend.seed in
    let shared = Ant.shared_of_region_ctx rc in
    let ints, floats = Ant.arena_demand shared in
    let lanes = params.Params.ants_per_iteration in
    let arena = Support.Arena.take ~ints:(lanes * ints) ~floats:(lanes * floats) in
    let ants = Array.init lanes (fun _ -> Ant.create ~shared ~arena graph params) in
    let pheromone = Pheromone.create ~n ~initial:params.Params.initial_pheromone in
    let policy =
      Pheromone_policy.make Pheromone_policy.As ~params ~n
        ~metrics:ctx.Engine.Backend.metrics
    in
    let termination = Pheromone_policy.patience policy in
    {
      params;
      rng;
      ants;
      arena;
      pheromone;
      policy;
      termination;
      metrics = ctx.Engine.Backend.metrics;
      occ = setup.Setup.occ;
      graph;
      rp_weight;
    }

  let run_order_pass _ (_ : Engine.Backend.order_request) =
    invalid_arg "Weighted_aco: the weighted backend has no RP pass"

  (* One weighted-sum pass. The RP target of the request is deliberately
     ignored: this formulation trades RP against length inside one
     objective instead of constraining it, which is exactly the design
     choice the paper measured and rejected (Section II-A). The reported
     [best_costs] series therefore carries weighted costs, not lengths. *)
  let run_schedule_pass st (req : Engine.Backend.schedule_request) =
    let cost_of_ant ant =
      scalar st.occ ~rp_weight:st.rp_weight ~length:(Ant.length ant)
        ~peaks:(Ant.rp_peaks ant)
    in
    let initial_cost =
      scalar st.occ ~rp_weight:st.rp_weight ~length:req.Engine.Backend.s_initial_length
        ~peaks:
          (let p =
             Sched.Rp_tracker.naive_peaks st.graph
               (Sched.Schedule.order req.Engine.Backend.s_initial)
           in
           (p Ir.Reg.Vgpr, p Ir.Reg.Sgpr))
    in
    let lb_cost =
      scalar st.occ ~rp_weight:st.rp_weight ~length:req.Engine.Backend.s_length_lb
        ~peaks:
          ( Ddg.Lower_bounds.register_pressure st.graph Ir.Reg.Vgpr,
            Ddg.Lower_bounds.register_pressure st.graph Ir.Reg.Sgpr )
    in
    let schedule, _, stats =
      Colony.run_pass ~params:st.params ~rng:st.rng ~ants:st.ants ~pheromone:st.pheromone
        ~policy:st.policy
        ~mode:
          (Ant.Ilp_pass
             {
               target_vgpr = Sched.Objective.no_target;
               target_sgpr = Sched.Objective.no_target;
             })
        ~cost_of_ant
        ~artifact_of_ant:(fun ant ->
          match Ant.schedule ant with
          | Some s -> s
          | None -> invalid_arg "Weighted_aco: finished ant produced invalid schedule")
        ~allow_optional_stalls:false
        ~budget_work:(work_of_budget req.Engine.Backend.s_budget)
        ~metrics:st.metrics ~pass_label:req.Engine.Backend.s_label ~initial_cost
        ~initial_order:(Sched.Schedule.order req.Engine.Backend.s_initial)
        ~initial_artifact:req.Engine.Backend.s_initial ~lb_cost ~termination:st.termination
    in
    (schedule, stats)

  let teardown st = Support.Arena.give st.arena
end

let backend : Engine.Backend.t = (module Backend_impl)
let register () = Engine.Registry.register backend
