(* bench check: the regression sentinel. Compares a fresh measurement
   of the cheap, stable gates against the committed BENCH_*.json history
   and exits nonzero on regression, so CI catches a performance slide in
   the same run that introduced it.

   Two tolerance classes, because the series are not equally noisy:

   - deterministic series (allocation per ant step — a count, not a
     time) must stay within DET_TOLERANCE of the committed value;
   - wall-clock series (ns per iteration, cycles per scheduled
     instruction, traced overhead) get WALL_TOLERANCE, generous enough
     that a cold CI container does not cry wolf but tight enough that a
     real algorithmic regression (the kind that costs an order of
     magnitude) still trips.

   Ceilings recorded in the history files (alloc ceiling, obs ceiling)
   are re-asserted against the fresh run too: the committed file is the
   contract, the fresh run the evidence. BENCH_compile.json is checked
   structurally — every row of a digest-stamped experiment must carry
   the same digest, or determinism broke. *)

let det_tolerance = 1.25
let wall_tolerance = 4.0

(* --- reading the committed history (Trace_check's JSON reader) ------- *)

let parse_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s = really_input_string ic (in_channel_length ic) in
      Obs.Trace_check.parse_json s)

let obj_field j key =
  match j with
  | Obs.Trace_check.Obj fields -> List.assoc_opt key fields
  | _ -> None

let num_field j key =
  match obj_field j key with Some (Obs.Trace_check.Num v) -> Some v | _ -> None

let str_field j key =
  match obj_field j key with Some (Obs.Trace_check.Str s) -> Some s | _ -> None

let list_field j key =
  match obj_field j key with Some (Obs.Trace_check.List l) -> Some l | _ -> None

(* --- the check ------------------------------------------------------- *)

type verdict = Ok_v | Regressed | Missing

let run () =
  let failures = ref 0 in
  let rows = ref [] in
  let record name ~committed ~fresh ~tolerance verdict =
    rows := (name, committed, fresh, tolerance, verdict) :: !rows;
    match verdict with Ok_v -> () | Regressed | Missing -> incr failures
  in
  (* A series regresses only in the slow/bigger direction; getting
     faster than history is not a failure. *)
  let check_series name ~committed ~fresh ~tolerance =
    let verdict =
      match committed with
      | None -> Missing
      | Some c when c > 0.0 && fresh > c *. tolerance -> Regressed
      | Some _ -> Ok_v
    in
    record name ~committed ~fresh ~tolerance verdict
  in

  (* Fresh measurements: the cheap deterministic gate plus the two
     wall-clock hot-loop gauges. *)
  let alloc_per_step, _, _ = Micro.alloc_gate () in
  let hot_per_step, hot_per_iter, _ = Micro.hot_loop () in
  let untraced_ns, traced_ns, overhead_pct = Micro.obs_overhead () in
  ignore untraced_ns;
  ignore traced_ns;

  (* BENCH_arena.json: allocation budget + hot-loop series. *)
  (match parse_file "BENCH_arena.json" with
  | exception Sys_error m ->
      Printf.eprintf "bench check: BENCH_arena.json unreadable: %s\n" m;
      incr failures
  | exception Obs.Trace_check.Parse_error m ->
      Printf.eprintf "bench check: BENCH_arena.json malformed: %s\n" m;
      incr failures
  | arena ->
      let gate = obj_field arena "alloc_gate" in
      let committed_alloc = Option.bind gate (fun g -> num_field g "minor_words_per_ant_step") in
      check_series "alloc/minor_words_per_ant_step" ~committed:committed_alloc
        ~fresh:alloc_per_step ~tolerance:det_tolerance;
      (* the ceiling in the file is the contract; re-assert it fresh *)
      (match Option.bind gate (fun g -> num_field g "ceiling") with
      | Some ceiling when alloc_per_step > ceiling ->
          record "alloc/ceiling" ~committed:(Some ceiling) ~fresh:alloc_per_step
            ~tolerance:1.0 Regressed
      | Some ceiling ->
          record "alloc/ceiling" ~committed:(Some ceiling) ~fresh:alloc_per_step
            ~tolerance:1.0 Ok_v
      | None -> record "alloc/ceiling" ~committed:None ~fresh:alloc_per_step ~tolerance:1.0 Missing);
      let hot = obj_field arena "hot_loop" in
      check_series "hot_loop/cycles_per_scheduled_instruction"
        ~committed:(Option.bind hot (fun h -> num_field h "cycles_per_scheduled_instruction"))
        ~fresh:hot_per_step ~tolerance:wall_tolerance;
      check_series "hot_loop/ns_per_iteration"
        ~committed:(Option.bind hot (fun h -> num_field h "ns_per_iteration"))
        ~fresh:hot_per_iter ~tolerance:wall_tolerance);

  (* BENCH_obs.json: the observability overhead contract. *)
  (match parse_file "BENCH_obs.json" with
  | exception Sys_error m ->
      Printf.eprintf "bench check: BENCH_obs.json unreadable: %s\n" m;
      incr failures
  | exception Obs.Trace_check.Parse_error m ->
      Printf.eprintf "bench check: BENCH_obs.json malformed: %s\n" m;
      incr failures
  | obs ->
      let wf = obj_field obs "wavefront_iteration" in
      let ceiling =
        match Option.bind wf (fun w -> num_field w "ceiling_pct") with
        | Some c -> c
        | None -> Micro.obs_ceiling_pct
      in
      let verdict = if overhead_pct > ceiling then Regressed else Ok_v in
      record "obs/overhead_pct" ~committed:(Some ceiling) ~fresh:overhead_pct
        ~tolerance:1.0 verdict);

  (* BENCH_compile.json: structural determinism — all rows of one
     digest-stamped experiment must agree on the digest. *)
  (match parse_file "BENCH_compile.json" with
  | exception Sys_error m ->
      Printf.eprintf "bench check: BENCH_compile.json unreadable: %s\n" m;
      incr failures
  | exception Obs.Trace_check.Parse_error m ->
      Printf.eprintf "bench check: BENCH_compile.json malformed: %s\n" m;
      incr failures
  | compile ->
      let digests key =
        match list_field compile key with
        | None -> []
        | Some rows -> List.filter_map (fun r -> str_field r "digest") rows
      in
      List.iter
        (fun key ->
          let ds = digests key in
          let distinct = List.sort_uniq compare ds in
          let ok = ds <> [] && List.length distinct = 1 in
          Printf.printf "  %-44s %s (%d row(s), %d digest(s))\n"
            ("compile/" ^ key ^ "-digest-identity")
            (if ok then "OK" else "FAIL")
            (List.length ds) (List.length distinct);
          if not ok then incr failures)
        [ "rows"; "scaling" ]);

  (* BENCH_backends.json: the MMAS-vs-AS convergence fixture. The
     committed file is always test-scale (see Tables.mmas_check_rows),
     so re-measuring it here is cheap and — fixed seeds, sequential
     colonies — deterministic; the series still get the deterministic
     tolerance rather than exact equality so an intentional retune is a
     one-file refresh, not a flag day. *)
  (match parse_file "BENCH_backends.json" with
  | exception Sys_error m ->
      Printf.eprintf "bench check: BENCH_backends.json unreadable: %s\n" m;
      incr failures
  | exception Obs.Trace_check.Parse_error m ->
      Printf.eprintf "bench check: BENCH_backends.json malformed: %s\n" m;
      incr failures
  | backends ->
      let summary = obj_field backends "summary" in
      let committed key = Option.bind summary (fun s -> num_field s key) in
      let rows = Tables.mmas_check_rows () in
      let s = Tables.summarize_mmas rows in
      check_series "backends/mmas_total_length"
        ~committed:(committed "mmas_total_length")
        ~fresh:(float_of_int s.Tables.ms_mmas_total_length)
        ~tolerance:det_tolerance;
      let ratio mmas seq = if seq > 0.0 then mmas /. seq else 1.0 in
      let committed_ratio =
        match (committed "mmas_total_length", committed "seq_total_length") with
        | Some m, Some q -> Some (ratio m q)
        | _ -> None
      in
      check_series "backends/mmas_vs_seq_length_ratio" ~committed:committed_ratio
        ~fresh:
          (ratio
             (float_of_int s.Tables.ms_mmas_total_length)
             (float_of_int s.Tables.ms_seq_total_length))
        ~tolerance:det_tolerance);

  (* The series table, committed vs fresh. *)
  print_endline "bench check: committed history vs fresh run";
  List.iter
    (fun (name, committed, fresh, tolerance, verdict) ->
      Printf.printf "  %-44s %12s %12.2f  (tol %.2fx)  %s\n" name
        (match committed with Some c -> Printf.sprintf "%.2f" c | None -> "missing")
        fresh tolerance
        (match verdict with
        | Ok_v -> "OK"
        | Regressed -> "REGRESSED"
        | Missing -> "MISSING"))
    (List.rev !rows);
  if !failures > 0 then begin
    Printf.eprintf "bench check: FAIL — %d regression(s) against committed history\n"
      !failures;
    1
  end
  else begin
    print_endline "bench check: OK";
    0
  end
