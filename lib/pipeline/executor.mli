(** The execute layer: fan a suite's regions over a persistent domain
    pool with work stealing.

    Scheduling regions are independent compilation problems, so the
    suite flattens into indexed jobs, each carrying everything its
    outcome depends on — name, source region, size-class budget, backend
    seeds, and (through the shared {!Analysis} cache) its analysis
    context. Job indices are dealt into per-worker deques in descending
    size order; each worker pops its own biggest job first and, when its
    deque runs dry, steals the smallest job from a neighbour — dynamic
    LPT without a central queue. The reports merge back by index, which
    makes the suite report canonically identical ({!Report_digest}) to a
    sequential {!Compile.run_suite} for every jobs count.

    Observability is sharded: each worker records into a private metrics
    registry and a private flight-recorder ring, both merged on the
    caller at join. Tracing therefore works at {e any} jobs count — the
    per-job ring slices replay in job-index order on the simulated
    timeline, reconstructing the sequential trace up to float rounding
    of the per-slice shifts. Merged-registry caveat: the {e registration
    order} of metric names follows first-touch across shards, so exports
    may list the same values in a different order than a sequential
    run. *)

type job = {
  j_index : int;  (** merge key: position in suite order *)
  j_kernel : int;  (** index into [suite.kernels] *)
  j_name : string;  (** ["<kernel>/r<i>"], as in sequential compiles *)
  j_region : Ir.Region.t;
  j_budget_ns : float;  (** {!Robust.budget_for} of the region's size class *)
  j_seq_seed : int;
  j_par_seed : int;
}

val jobs_of_suite : Compile.config -> Workload.Suite.t -> job array
(** The suite flattened in suite order ([j_index] = array index). *)

val run_job :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?cache:Analysis.t ->
  Compile.config ->
  job ->
  Compile.region_report
(** Compile one job — {!Compile.run_region} on the job's own name,
    budget and seeds, with the analysis context drawn from [cache] when
    one is shared. *)

val run_suite :
  ?jobs:int ->
  ?pool:Support.Domain_pool.t ->
  ?progress:(string -> unit) ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?cache:Analysis.t ->
  Compile.config ->
  Workload.Suite.t ->
  Compile.suite_report
(** Compile the whole suite on [jobs] workers (default 1; values below 1
    clamp to 1). [jobs = 1] compiles sequentially on the caller,
    recording straight into [trace] and [metrics]; [jobs > 1] runs on
    [pool] (default {!Support.Domain_pool.global}, spawned once per
    process and reused across calls), clamped to the pool's size plus
    the calling domain. [progress] fires once per kernel at merge time,
    in suite order. The report is canonically identical to
    [Compile.run_suite] with the same configuration, for any [jobs],
    [pool] and [cache] setting. When [metrics] is enabled, a parallel
    run also reports [compile.steal.count] and
    [compile.steal.empty_polls].

    [log] (default disabled) is shared across workers — the ring is
    mutex-protected — with each worker's entries stamped with its
    index. A traced parallel run additionally lays down {e wall-clock}
    tracks (one per worker plus one for the caller, ids from
    {!Obs.Trace.wall_track_base}): a span per job with real duration,
    steal instants, the steal sweep (its idle gaps are stall time), and
    the caller's [pool.run] / [merge] phases. Wall events merge
    unshifted via {!Obs.Trace.append_wall}; the simulated timeline is
    untouched. *)
