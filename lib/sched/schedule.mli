(** Instruction schedules.

    A schedule assigns a machine cycle to each instruction. Under the
    paper's single-issue model a schedule is a sequence of slots, one per
    cycle, each either an instruction or a stall; the cycle of an
    instruction is its slot index (Figure 1.b/1.c).

    Pass 1 of the two-pass approach ignores latencies, so its schedules
    are plain orders (no stalls) validated only against dependence
    ordering; pass 2 schedules must also respect latencies. *)

type slot = Stall | Instr of int

type t = private {
  graph : Ddg.Graph.t;
  slots : slot array;
  cycle_of : int array;  (** instruction id -> cycle (slot index) *)
}

type violation =
  | Missing of int  (** instruction never scheduled *)
  | Duplicated of int
  | Unknown_instr of int
  | Order_violation of { src : int; dst : int }
      (** dependence source scheduled at or after its destination *)
  | Latency_violation of { src : int; dst : int; need : int; got : int }

val violation_to_string : violation -> string

val of_slots : Ddg.Graph.t -> latency_aware:bool -> slot list -> (t, violation) result
(** Build and validate. With [latency_aware:false] only completeness and
    dependence order are checked; stalls are still permitted. *)

val of_order : Ddg.Graph.t -> int array -> (t, violation) result
(** Stall-free schedule from an instruction order (pass-1 form),
    validated with [latency_aware:false]. *)

val validate : t -> latency_aware:bool -> (unit, violation) result
(** Re-check an existing schedule (used by the test suite on every
    schedule any component produces). *)

val is_valid : t -> latency_aware:bool -> bool
(** [Result.is_ok (validate t ~latency_aware)]. *)

val guard : t -> latency_aware:bool -> fallback:t -> t * bool
(** [guard t ~latency_aware ~fallback] is [(t, false)] when [t]
    validates and [(fallback, true)] otherwise — the last line of
    defence a fault-tolerant driver places in front of schedule
    emission. The fallback is trusted (not re-validated). *)

val length : t -> int
(** Number of cycles (slots). *)

val num_stalls : t -> int

val order : t -> int array
(** Instruction ids in issue order, stalls skipped. *)

val cycle : t -> int -> int
(** Cycle of an instruction. *)

val latency_pad : Ddg.Graph.t -> int array -> t
(** [latency_pad g order] inserts the minimum stalls into [order] to make
    it latency-feasible — how pass 2 builds its initial schedule from the
    pass-1 winner (the leftmost schedule of Figure 1.c). The order must
    be a valid dependence order. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
