type t = {
  id : int;
  name : string;
  kind : Opcode.kind;
  defs : Reg.t list;
  uses : Reg.t list;
  latency : int;
}

let rec has_dup = function
  | [] -> false
  | r :: rest -> List.exists (Reg.equal r) rest || has_dup rest

let make ~id ?name ?latency ~kind ~defs ~uses () =
  let latency = match latency with Some l -> l | None -> Opcode.default_latency kind in
  if latency < 0 then invalid_arg "Instr.make: negative latency";
  if has_dup defs then invalid_arg "Instr.make: duplicate register in defs";
  let name = match name with Some n -> n | None -> Opcode.to_string kind in
  { id; name; kind; defs; uses; latency }

let with_id t id = { t with id }

let defs_of_cls t cls = List.filter (fun (r : Reg.t) -> Reg.cls_equal r.cls cls) t.defs
let uses_of_cls t cls = List.filter (fun (r : Reg.t) -> Reg.cls_equal r.cls cls) t.uses

let to_string t =
  let regs rs = String.concat " " (List.map Reg.to_string rs) in
  let lhs = if t.defs = [] then "" else regs t.defs ^ " <- " in
  Printf.sprintf "%%%d: %s %s%s" t.id t.name lhs (regs t.uses)

let pp fmt t = Format.pp_print_string fmt (to_string t)
