(* The engine layer: registry/dispatch/budget unit tests, the
   prepare-once contract of the pipeline, and the byte-identity
   differentials pinning the refactored backends to the frozen
   pre-engine drivers in Two_pass_ref. *)

module Ref = Two_pass_ref

let params = Tu.test_params
let gpu = Tu.test_gpu

(* --- registry ------------------------------------------------------------ *)

let test_registry () =
  Pipeline.Compile.ensure_backends ();
  List.iter
    (fun b -> Alcotest.(check bool) (b ^ " registered") true (Engine.Registry.mem b))
    [ "seq"; "par"; "weighted" ];
  Alcotest.(check string) "find_exn resolves" "par"
    (Engine.Backend.name (Engine.Registry.find_exn "par"));
  Alcotest.(check bool) "find on unknown" true (Engine.Registry.find "no-such" = None);
  (match Engine.Registry.find_exn "no-such" with
  | _ -> Alcotest.fail "find_exn accepted an unknown backend"
  | exception Invalid_argument _ -> ());
  (* Re-registration is idempotent: same names, same order. *)
  let before = Engine.Registry.names () in
  Pipeline.Compile.ensure_backends ();
  Alcotest.(check (list string)) "stable registration order" before (Engine.Registry.names ())

(* --- dispatch ------------------------------------------------------------ *)

let test_dispatch () =
  let open Engine.Dispatch in
  Alcotest.(check (list string)) "fixed" [ "par" ] (candidates default ~n:10);
  let auto = of_string ~auto_threshold:50 "auto" in
  Alcotest.(check (list string)) "auto small" [ "seq" ] (candidates auto ~n:49);
  Alcotest.(check (list string)) "auto large" [ "par" ] (candidates auto ~n:50);
  let auto9 = of_string ~auto_threshold:9 "auto" in
  Alcotest.(check (list string)) "auto threshold is configurable" [ "par" ]
    (candidates auto9 ~n:9);
  (match of_string "seq,par" with
  | Race [ "seq"; "par" ] -> ()
  | p -> Alcotest.failf "race parse: %s" (to_string p));
  (match of_string "par" with
  | Fixed "par" -> ()
  | p -> Alcotest.failf "fixed parse: %s" (to_string p));
  (match of_string "par," with
  | Fixed "par" -> ()
  | p -> Alcotest.failf "singleton race collapses: %s" (to_string p));
  (match of_string "" with
  | _ -> Alcotest.fail "empty spec accepted"
  | exception Invalid_argument _ -> ());
  (match of_string "seq,par,seq" with
  | _ -> Alcotest.fail "duplicate race entry accepted"
  | exception Duplicate_backend "seq" -> ());
  (match of_string "mmas, mmas" with
  | _ -> Alcotest.fail "duplicate race entry accepted after trimming"
  | exception Duplicate_backend "mmas" -> ());
  Alcotest.(check (list string)) "backend_names dedups" [ "par"; "seq" ]
    (backend_names (Race [ "seq"; "par"; "seq" ]))

(* --- budget arithmetic --------------------------------------------------- *)

let test_budget_minus () =
  let spent work time_ns = { Engine.Types.no_pass with Engine.Types.work; time_ns } in
  Alcotest.(check bool) "unlimited stays" true
    (Engine.Types.budget_minus Engine.Types.Unlimited (spent 1000 1e9) = Engine.Types.Unlimited);
  Alcotest.(check bool) "work deducts" true
    (Engine.Types.budget_minus (Engine.Types.Work 100) (spent 30 0.0) = Engine.Types.Work 70);
  Alcotest.(check bool) "work clamps at zero" true
    (Engine.Types.budget_minus (Engine.Types.Work 10) (spent 30 0.0) = Engine.Types.Work 0);
  Alcotest.(check bool) "time deducts" true
    (Engine.Types.budget_minus (Engine.Types.Time_ns 100.0) (spent 0 40.0)
    = Engine.Types.Time_ns 60.0);
  Alcotest.(check bool) "time clamps at zero" true
    (Engine.Types.budget_minus (Engine.Types.Time_ns 10.0) (spent 0 40.0)
    = Engine.Types.Time_ns 0.0)

(* --- prepare-once contract ----------------------------------------------- *)

(* A stub backend that counts [prepare] calls and ships the initial
   schedule untouched: run_suite must prepare each backend exactly once
   per compiled region — shared kernels are compiled once, not once per
   benchmark. *)
let prepare_count = ref 0

module Counting_backend = struct
  let name = "counting"
  let caps =
    {
      Engine.Types.rp_pass = false;
      faults = false;
      trace = false;
      time_model = false;
      prune = false;
    }
  let objective = None

  type state = unit

  let prepare _ctx (_ : Engine.Region_ctx.t) = incr prepare_count

  let run_order_pass () (_ : Engine.Backend.order_request) =
    invalid_arg "counting backend has no RP pass"

  let run_schedule_pass () (req : Engine.Backend.schedule_request) =
    (req.Engine.Backend.s_initial, { Engine.Types.no_pass with Engine.Types.invoked = true })

  let teardown () = ()
end

let test_prepare_once () =
  Engine.Registry.register (module Counting_backend : Engine.Backend.S);
  let suite = Workload.Suite.generate Workload.Suite.test_scale in
  let total_regions =
    List.fold_left
      (fun acc (k : Workload.Suite.kernel) -> acc + List.length k.Workload.Suite.regions)
      0 suite.Workload.Suite.kernels
  in
  let instances =
    List.length suite.Workload.Suite.benchmarks
  in
  Alcotest.(check bool) "suite shares kernels across benchmarks" true
    (instances > List.length suite.Workload.Suite.kernels);
  let config =
    {
      (Pipeline.Compile.make_config ~gpu ()) with
      Pipeline.Compile.params;
      dispatch = Engine.Dispatch.Fixed "counting";
      run_sequential = false;
    }
  in
  prepare_count := 0;
  let report = Pipeline.Compile.run_suite config suite in
  Alcotest.(check int) "one prepare per compiled region" total_regions !prepare_count;
  (* and the reports indeed carry the counting backend's runs *)
  List.iter
    (fun (kr : Pipeline.Compile.kernel_report) ->
      List.iter
        (fun (r : Pipeline.Compile.region_report) ->
          Alcotest.(check string) "product backend" "counting"
            r.Pipeline.Compile.product_backend)
        kr.Pipeline.Compile.regions)
    report.Pipeline.Compile.kernels

(* --- dispatch policies through the pipeline ------------------------------ *)

let small_compile_config dispatch =
  {
    (Pipeline.Compile.make_config ~gpu ()) with
    Pipeline.Compile.params;
    dispatch;
    run_sequential = false;
  }

let test_weighted_product () =
  let region = Tu.random_region ~max_size:30 7 in
  let r =
    Pipeline.Compile.run_region
      (small_compile_config (Engine.Dispatch.Fixed "weighted"))
      ~name:"w" region
  in
  Alcotest.(check string) "weighted wins its own dispatch" "weighted"
    r.Pipeline.Compile.product_backend;
  Alcotest.(check bool) "weighted skips the RP pass" false r.Pipeline.Compile.pass1_invoked;
  Alcotest.(check int) "one run" 1 (List.length r.Pipeline.Compile.runs);
  (* the guard holds: the shipped order reconstructs into a valid
     schedule (dependency order; [of_order] drops the stall padding) *)
  let graph = Ddg.Graph.build region in
  match Sched.Schedule.of_order graph r.Pipeline.Compile.aco_order with
  | Ok s -> ignore (Tu.check_valid ~latency_aware:false s)
  | Error v -> Alcotest.failf "invalid product: %s" (Sched.Schedule.violation_to_string v)

let test_auto_dispatch () =
  let region = Tu.random_region ~max_size:20 3 in
  let n = Ir.Region.size region in
  let below =
    Pipeline.Compile.run_region
      (small_compile_config (Engine.Dispatch.of_string ~auto_threshold:(n + 1) "auto"))
      ~name:"a" region
  in
  Alcotest.(check string) "below threshold -> seq" "seq" below.Pipeline.Compile.product_backend;
  let above =
    Pipeline.Compile.run_region
      (small_compile_config (Engine.Dispatch.of_string ~auto_threshold:n "auto"))
      ~name:"a" region
  in
  Alcotest.(check string) "at threshold -> par" "par" above.Pipeline.Compile.product_backend

let race_picks_best =
  QCheck.Test.make ~count:6 ~name:"race dispatch ships the best schedule of the portfolio"
    (Tu.arb_region ~max_size:30 ())
    (fun region ->
      let r =
        Pipeline.Compile.run_region
          (small_compile_config (Engine.Dispatch.Race [ "par"; "seq"; "weighted" ]))
          ~name:"race" region
      in
      Alcotest.(check int) "all candidates ran" 3 (List.length r.Pipeline.Compile.runs);
      let product = Pipeline.Compile.product_run r in
      List.iter
        (fun (run : Pipeline.Compile.backend_run) ->
          if
            Sched.Cost.better_rp_then_length run.Pipeline.Compile.result.Engine.Types.cost
              product.Pipeline.Compile.result.Engine.Types.cost
          then
            Alcotest.failf "run %s beats the product %s" run.Pipeline.Compile.backend
              r.Pipeline.Compile.product_backend)
        r.Pipeline.Compile.runs;
      true)

(* --- byte-identity differentials ----------------------------------------- *)

(* Warm up both code paths once so one-time lazy allocations (library
   initialization and the like) cannot land inside exactly one side's
   measured minor-words window. *)
let warmup =
  lazy
    (let graph = Ddg.Graph.build (Tu.diamond_region ()) in
     let setup = Aco.Setup.prepare Tu.occ graph in
     ignore (Ref.Seq_ref.run_from_setup ~params setup);
     ignore (Aco.Seq_aco.run_from_setup ~params setup);
     ignore (Ref.Par_ref.run_from_setup ~params gpu setup);
     ignore (Gpusim.Par_aco.run_from_setup ~params gpu setup))

let check_seq_stats label (g : Ref.Seq_ref.pass_stats) (e : Engine.Types.pass_stats) =
  let gt =
    ( ( g.Ref.Seq_ref.invoked,
        g.Ref.Seq_ref.iterations,
        g.Ref.Seq_ref.ants_simulated,
        g.Ref.Seq_ref.work,
        g.Ref.Seq_ref.improved ),
      ( g.Ref.Seq_ref.hit_lower_bound,
        g.Ref.Seq_ref.aborted_budget,
        Array.to_list g.Ref.Seq_ref.best_costs,
        g.Ref.Seq_ref.minor_words ) )
  in
  let et =
    ( ( e.Engine.Types.invoked,
        e.Engine.Types.iterations,
        e.Engine.Types.ants_simulated,
        e.Engine.Types.work,
        e.Engine.Types.improved ),
      ( e.Engine.Types.hit_lower_bound,
        e.Engine.Types.aborted_budget,
        Array.to_list e.Engine.Types.best_costs,
        e.Engine.Types.minor_words ) )
  in
  if gt <> et then
    Alcotest.failf
      "%s: pass stats diverged from the frozen driver (golden: it=%d ants=%d work=%d imp=%b \
       hit=%b ab=%b mw=%.0f bc=%d | engine: it=%d ants=%d work=%d imp=%b hit=%b ab=%b mw=%.0f \
       bc=%d)"
      label g.Ref.Seq_ref.iterations g.Ref.Seq_ref.ants_simulated g.Ref.Seq_ref.work
      g.Ref.Seq_ref.improved g.Ref.Seq_ref.hit_lower_bound g.Ref.Seq_ref.aborted_budget
      g.Ref.Seq_ref.minor_words
      (Array.length g.Ref.Seq_ref.best_costs)
      e.Engine.Types.iterations e.Engine.Types.ants_simulated e.Engine.Types.work
      e.Engine.Types.improved e.Engine.Types.hit_lower_bound e.Engine.Types.aborted_budget
      e.Engine.Types.minor_words
      (Array.length e.Engine.Types.best_costs);
  (* fields the sequential colony never touches stay at their defaults *)
  if
    e.Engine.Types.time_ns <> 0.0 || e.Engine.Types.retries <> 0
    || e.Engine.Types.aborted_faults
    || e.Engine.Types.fault_counts <> Engine.Types.fault_counts_zero
  then Alcotest.failf "%s: sequential pass carries parallel-only stats" label

let check_par_stats label (g : Ref.Par_ref.pass_stats) (e : Engine.Types.pass_stats) =
  let gt =
    ( ( g.Ref.Par_ref.invoked,
        g.Ref.Par_ref.iterations,
        g.Ref.Par_ref.ants_simulated,
        g.Ref.Par_ref.work,
        g.Ref.Par_ref.time_ns,
        g.Ref.Par_ref.improved ),
      ( g.Ref.Par_ref.hit_lower_bound,
        g.Ref.Par_ref.serialized_ops,
        g.Ref.Par_ref.single_path_ops,
        g.Ref.Par_ref.lockstep_steps,
        g.Ref.Par_ref.ant_steps,
        g.Ref.Par_ref.selections ),
      ( Array.to_list g.Ref.Par_ref.best_costs,
        g.Ref.Par_ref.minor_words,
        g.Ref.Par_ref.retries,
        g.Ref.Par_ref.aborted_budget,
        g.Ref.Par_ref.aborted_faults,
        g.Ref.Par_ref.fault_counts ) )
  in
  let et =
    ( ( e.Engine.Types.invoked,
        e.Engine.Types.iterations,
        e.Engine.Types.ants_simulated,
        e.Engine.Types.work,
        e.Engine.Types.time_ns,
        e.Engine.Types.improved ),
      ( e.Engine.Types.hit_lower_bound,
        e.Engine.Types.serialized_ops,
        e.Engine.Types.single_path_ops,
        e.Engine.Types.lockstep_steps,
        e.Engine.Types.ant_steps,
        e.Engine.Types.selections ),
      ( Array.to_list e.Engine.Types.best_costs,
        e.Engine.Types.minor_words,
        e.Engine.Types.retries,
        e.Engine.Types.aborted_budget,
        e.Engine.Types.aborted_faults,
        e.Engine.Types.fault_counts ) )
  in
  if gt <> et then Alcotest.failf "%s: pass stats diverged from the frozen driver" label

let seq_differential =
  QCheck.Test.make ~count:10
    ~name:"seq backend through the engine replays the frozen driver byte for byte"
    (QCheck.pair (Tu.arb_region ~max_size:40 ()) QCheck.small_int)
    (fun (region, seed) ->
      Lazy.force warmup;
      let graph = Ddg.Graph.build region in
      let setup = Aco.Setup.prepare Tu.occ graph in
      List.iter
        (fun budget_work ->
          let label = Printf.sprintf "seq seed=%d budget=%d" seed budget_work in
          let g = Ref.Seq_ref.run_from_setup ~params ~seed ~budget_work setup in
          let e = Aco.Seq_aco.run_from_setup ~params ~seed ~budget_work setup in
          if
            Sched.Schedule.order g.Ref.Seq_ref.schedule
            <> Sched.Schedule.order e.Engine.Types.schedule
          then Alcotest.failf "%s: schedules diverged" label;
          if g.Ref.Seq_ref.cost <> e.Engine.Types.cost then
            Alcotest.failf "%s: costs diverged" label;
          if g.Ref.Seq_ref.rp_target <> e.Engine.Types.rp_target then
            Alcotest.failf "%s: RP targets diverged" label;
          if
            Sched.Schedule.order g.Ref.Seq_ref.pass2_initial
            <> Sched.Schedule.order e.Engine.Types.pass2_initial
          then Alcotest.failf "%s: pass-2 seeds diverged" label;
          check_seq_stats (label ^ " pass1") g.Ref.Seq_ref.pass1 e.Engine.Types.pass1;
          check_seq_stats (label ^ " pass2") g.Ref.Seq_ref.pass2 e.Engine.Types.pass2)
        [ max_int; 40_000; 500 ];
      true)

let par_differential =
  QCheck.Test.make ~count:8
    ~name:"par backend through the engine replays the frozen driver byte for byte"
    (QCheck.pair (Tu.arb_region ~max_size:40 ()) QCheck.small_int)
    (fun (region, seed) ->
      Lazy.force warmup;
      let graph = Ddg.Graph.build region in
      let setup = Aco.Setup.prepare Tu.occ graph in
      List.iter
        (fun (fault_rate, budget_ns, iteration_deadline_ns, max_retries) ->
          let label =
            Printf.sprintf "par seed=%d rate=%.2f budget=%.0f" seed fault_rate budget_ns
          in
          let config =
            if fault_rate > 0.0 then
              Gpusim.Config.with_faults ~seed:(seed + 13) gpu
                (Gpusim.Config.uniform_faults fault_rate)
            else gpu
          in
          let g =
            Ref.Par_ref.run_from_setup ~params ~seed ~budget_ns ~iteration_deadline_ns
              ~max_retries config setup
          in
          let e =
            Gpusim.Par_aco.run_from_setup ~params ~seed ~budget_ns ~iteration_deadline_ns
              ~max_retries config setup
          in
          if
            Sched.Schedule.order g.Ref.Par_ref.schedule
            <> Sched.Schedule.order e.Engine.Types.schedule
          then Alcotest.failf "%s: schedules diverged" label;
          if g.Ref.Par_ref.cost <> e.Engine.Types.cost then
            Alcotest.failf "%s: costs diverged" label;
          if g.Ref.Par_ref.rp_target <> e.Engine.Types.rp_target then
            Alcotest.failf "%s: RP targets diverged" label;
          if
            Sched.Schedule.order g.Ref.Par_ref.pass2_initial
            <> Sched.Schedule.order e.Engine.Types.pass2_initial
          then Alcotest.failf "%s: pass-2 seeds diverged" label;
          check_par_stats (label ^ " pass1") g.Ref.Par_ref.pass1 e.Engine.Types.pass1;
          check_par_stats (label ^ " pass2") g.Ref.Par_ref.pass2 e.Engine.Types.pass2)
        [
          (0.0, infinity, infinity, 2);
          (0.2, infinity, infinity, 2);
          (0.5, 2e6, infinity, 1);
          (0.0, 1e5, infinity, 2);
          (0.9, infinity, 1e4, 3);
        ];
      true)

let suite =
  [
    ("backend registry", `Quick, test_registry);
    ("dispatch policies", `Quick, test_dispatch);
    ("budget arithmetic", `Quick, test_budget_minus);
    ("run_suite prepares each backend once per region", `Quick, test_prepare_once);
    ("weighted backend ships a valid product", `Quick, test_weighted_product);
    ("auto dispatch follows the size threshold", `Quick, test_auto_dispatch);
  ]
  @ Tu.qtests [ race_picks_best; seq_differential; par_differential ]
