(** Thread-divergence accounting (Section V-B).

    Wavefront lanes execute in lockstep: when lanes take different
    control paths in a step, the paths execute one after another while
    the lanes not on the current path idle. The simulator therefore
    charges one lockstep step as the *sum over distinct paths* of the
    most expensive lane on each path — one path costs its maximum, two
    paths cost the sum of their maxima, and so on.

    The paths are the operation kinds of {!Aco.Ant.step}: exploiting
    selection, exploring selection (a different formula, hence a
    different path — the motivation for wavefront-level unification),
    mandatory stall, optional stall, and death. *)

type path = Select_exploit | Select_explore | Mandatory_stall | Optional_stall | Death

val path_of_op : Aco.Ant.op -> path

val path_rank : path -> int
(** Dense rank 0..4 in declaration order; {!Aco.Ant.last_rank} reports
    the same encoding. *)

val op_cost : Aco.Ant.event -> int
(** Lane-local compute cost of one step: ready-list scan + successor
    updates + fixed selection arithmetic. *)

val lane_reads : Aco.Ant.event -> int
(** Lane-local memory accesses of one step (ready entries read, successor
    states touched, the schedule slot written). *)

val cost_of : ready_scanned:int -> succs_updated:int -> int
(** {!op_cost} from the raw step counters (no event record). *)

val reads_of : ready_scanned:int -> succs_updated:int -> int
(** {!lane_reads} from the raw step counters. *)

val serialized_of_maxima : int array -> int
(** Charge components from a 5-entry per-path-rank maxima array (the
    allocation-free accumulator the wavefront folds its lanes into; a
    path is present iff its entry is nonzero). Equal to
    [(step_charge events).serialized_ops] for the events the maxima
    summarize. *)

val distinct_paths_of_maxima : int array -> int
val max_single_of_maxima : int array -> int

type charge = {
  serialized_ops : int;  (** divergence-serialized compute cost *)
  distinct_paths : int;
  max_single_path_ops : int;  (** cost had all lanes shared one path *)
}

val step_charge : Aco.Ant.event list -> charge
(** Charge for one lockstep step over the active lanes' events. The empty
    list yields a zero charge. *)
