(* Re-export: region preparation moved into the engine layer (it is
   backend-agnostic); [Aco.Setup] keeps the historical path and type
   equality for existing callers. *)
include Engine.Setup
