(** Shared region-analysis context.

    Everything the compile service derives from a scheduling region
    alone — the DDG with its transitive closure, critical path, lower
    bounds and ready-list bound, the AMD-heuristic baseline, the
    register-pressure layout and the Critical-Path reference schedule —
    bundled into one immutable value that is computed once per distinct
    region and consumed by the orchestrator, by every backend of a
    dispatch race, and by the report layer.

    The bundle is content-addressed: {!fingerprint_of_region} hashes the
    region's instruction/latency/register structure (names excluded), so
    structurally identical regions share one context in
    [Pipeline.Analysis]'s cache. Values are immutable and safe to share
    across domains. *)

type t = {
  setup : Setup.t;
      (** heuristic baseline, pass-1 starting points, RP/length lower
          bounds and the pass-1 gating decision *)
  closure : Ddg.Closure.t;  (** transitive closure of the DDG *)
  critpath : Ddg.Critpath.t;  (** latency-weighted critical paths *)
  ready_ub : int;
      (** {!Ddg.Closure.ready_list_upper_bound} — sizes every per-ant
          scratch array and the simulated memory model *)
  rp_layout : Sched.Rp_tracker.layout;
      (** interned register layout backing every colony's RP trackers *)
  cp_schedule : Sched.Schedule.t;
      (** Critical-Path list schedule (the report's sensitivity check) *)
  cp_cost : Sched.Cost.t;
  fingerprint : string;  (** content address (hex digest) *)
}

val graph : t -> Ddg.Graph.t
val occ : t -> Machine.Occupancy.t
val size : t -> int

val fingerprint_of_region : Ir.Region.t -> string
(** Hash of the region's structure: instruction kinds, latencies, def/use
    register lists and live-out set, in order. Instruction and region
    names are excluded — label-only variants address the same context. *)

val of_setup : ?fingerprint:string -> Setup.t -> t
(** Derive the remaining analyses from an already-prepared setup.
    [fingerprint] avoids re-hashing when the caller (the analysis cache)
    already computed the content address. *)

val of_graph : ?fingerprint:string -> Machine.Occupancy.t -> Ddg.Graph.t -> t
val of_region : ?fingerprint:string -> Machine.Occupancy.t -> Ir.Region.t -> t
