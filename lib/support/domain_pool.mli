(** Persistent pool of worker domains.

    [Domain.spawn] costs hundreds of microseconds; paid per suite
    compile it erased the multi-domain executor's win. The pool spawns
    each helper domain once — lazily, on the first {!run} that needs
    it — and parks it on a condition variable between jobs, so fanning
    out costs two mutex handoffs per helper in steady state.

    The caller of {!run} acts as worker 0, so a pool of [size] helpers
    provides up to [size + 1] ways of parallelism. {!global} is the
    process-wide pool shared by suite compiles and the serve loop; it is
    shut down via [at_exit]. *)

type t

(** Pool lifecycle events for the process-global observer: a helper
    domain was spawned (by index), or a {!run} acquired / released the
    pool with [k] total workers. *)
type event = Spawned of int | Acquired of int | Released of int

val set_observer : (event -> unit) option -> unit
(** Install (or clear) the process-global lifecycle observer. Support
    sits below the observability layer, so logging is injected from
    above through this hook; the default [None] costs one atomic load
    per event. The callback runs on whichever domain triggered the
    event and must not call back into the pool ([Spawned] fires under
    the pool's spawn lock); exceptions it raises are swallowed. *)

val create : ?size:int -> unit -> t
(** A pool of up to [size] helper domains (default
    [Domain.recommended_domain_count () - 1]: helpers plus the calling
    domain saturate the cores, and never oversubscribe them — OCaml's
    stop-the-world minor collections make domains beyond cores a steep
    loss). Nothing is spawned until a {!run} needs it; [size = 0] makes
    every {!run} sequential. *)

val size : t -> int
(** Maximum helper count (the creation bound, not what is spawned). *)

val spawned : t -> int
(** Helper domains spawned so far — monotone over the pool's life; the
    observable for "domains are spawned once, not per compile". *)

val run : t -> workers:int -> (int -> unit) -> unit
(** [run t ~workers f] executes [f 0 .. f (workers - 1)], [f 0] on the
    calling domain and the rest on pool helpers, and returns when all
    have finished. If [workers] exceeds [size + 1], the overflow indices
    run on the caller after [f 0]. If any [f w] raises, the first
    failure is re-raised after every worker has stopped.

    Not reentrant: a worker function must not call [run] on its own
    pool. A nested or concurrent [run] detects the busy pool and runs
    every index on the caller — correct, just sequential. *)

val shutdown : t -> unit
(** Stop and join every spawned helper. The pool may be used again
    afterwards (helpers respawn lazily, counting into {!spawned}). *)

val global : unit -> t
(** The process-wide pool, created on first call with the default size
    and registered for [at_exit] shutdown. *)
