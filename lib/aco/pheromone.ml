type t = { n : int; cells : float array }

let create ~n ~initial =
  if n <= 0 then invalid_arg "Pheromone.create";
  { n; cells = Array.make ((n + 1) * n) initial }

let size t = t.n

let index t src dst =
  if dst < 0 || dst >= t.n || src < -1 || src >= t.n then invalid_arg "Pheromone: out of range";
  ((src + 1) * t.n) + dst

let get t ~src ~dst = t.cells.(index t src dst)

(* Hot-path row accessors: the selection loop reads one row (fixed [src],
   many [dst]) per step, so the range check runs once at row selection
   and the per-candidate read is a single indexed load. [dst] values are
   instruction ids supplied by the ready list, which are in range by
   construction; the checked [get] remains for everything else. *)
let row_base t ~src =
  if src < -1 || src >= t.n then invalid_arg "Pheromone: out of range";
  (src + 1) * t.n

let cells t = t.cells

let[@inline] row_get cells ~base ~dst = Array.unsafe_get cells (base + dst)

let decay t retention =
  for i = 0 to Array.length t.cells - 1 do
    t.cells.(i) <- t.cells.(i) *. retention
  done

let deposit t ~src ~dst amount =
  let i = index t src dst in
  t.cells.(i) <- t.cells.(i) +. amount

let deposit_path t order amount =
  (* Validate once: every entry of [order] addresses column [order.(k)]
     of the row after its predecessor; one range sweep replaces a checked
     [index] per link. *)
  let n = t.n in
  Array.iter (fun i -> if i < 0 || i >= n then invalid_arg "Pheromone: out of range") order;
  let cells = t.cells in
  let prev = ref (-1) in
  Array.iter
    (fun i ->
      let idx = ((!prev + 1) * n) + i in
      cells.(idx) <- cells.(idx) +. amount;
      prev := i)
    order

let reset t ~initial = Array.fill t.cells 0 (Array.length t.cells) initial

let clamp t ~lo ~hi =
  let cells = t.cells in
  for i = 0 to Array.length cells - 1 do
    let v = Array.unsafe_get cells i in
    if v < lo then Array.unsafe_set cells i lo
    else if v > hi then Array.unsafe_set cells i hi
  done

let total t = Array.fold_left ( +. ) 0.0 t.cells

(* Mean normalized Shannon entropy of the rows: 1.0 is a uniform table
   (pure exploration), 0.0 a table whose rows each concentrate on one
   link (converged). Diagnostics only — never on the search path. *)
let row_entropy t =
  let n = t.n in
  if n <= 1 then 0.0
  else begin
    let cells = t.cells in
    let log_n = log (float_of_int n) in
    let acc = ref 0.0 in
    for src = -1 to n - 1 do
      let base = (src + 1) * n in
      let sum = ref 0.0 in
      for dst = 0 to n - 1 do
        sum := !sum +. cells.(base + dst)
      done;
      if !sum > 0.0 then begin
        let h = ref 0.0 in
        for dst = 0 to n - 1 do
          let p = cells.(base + dst) /. !sum in
          if p > 0.0 then h := !h -. (p *. log p)
        done;
        acc := !acc +. (!h /. log_n)
      end
    done;
    !acc /. float_of_int (n + 1)
  end
