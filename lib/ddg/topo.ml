let order (g : Graph.t) =
  let n = g.n in
  let indeg = Array.init n (fun i -> Graph.num_preds g i) in
  (* Min-heap on node id keeps ties in original program order. *)
  let q = Support.Pqueue.create ~cmp:(fun a b -> Int.compare b a) in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Support.Pqueue.push q i
  done;
  let out = Array.make n 0 in
  let k = ref 0 in
  let rec drain () =
    match Support.Pqueue.pop q with
    | None -> ()
    | Some i ->
        out.(!k) <- i;
        incr k;
        Array.iter
          (fun (j, _) ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then Support.Pqueue.push q j)
          g.succs.(i);
        drain ()
  in
  drain ();
  assert (!k = n);
  out

let is_topological (g : Graph.t) o =
  let n = g.n in
  if Array.length o <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun p i -> if i < 0 || i >= n || pos.(i) >= 0 then ok := false else pos.(i) <- p)
      o;
    if !ok then
      Array.iter (fun (e : Graph.edge) -> if pos.(e.src) >= pos.(e.dst) then ok := false) g.edges;
    !ok
  end

let reverse_order g =
  let o = order g in
  let n = Array.length o in
  Array.init n (fun i -> o.(n - 1 - i))
