(* Flight-recorder safety net.

   1. Unit tests of the [Obs.Trace] ring (wrap-around accounting, span
      totals, the disabled recorder) and of the [Obs.Metrics] registry
      (kinds, headline values, CSV/JSON export).
   2. Round-trip: [Trace.to_chrome_json] must pass [Trace_check]'s lint
      (well-formed JSON, monotone timestamps, balanced B/E pairs), and
      the lint must reject malformed documents.
   3. The observability contract as a qcheck differential: compiling a
      random region with live recorders attached must be byte-identical
      to the uninstrumented compile — same schedules, same costs, same
      simulated times, same degradation ledger, same fault counts —
      across fault rates and compile budgets. Tracing may not perturb
      any RNG stream or cost model. *)

(* --- trace ring ---------------------------------------------------------- *)

let test_ring_wrap () =
  let t = Obs.Trace.create ~capacity:16 () in
  Alcotest.(check bool) "enabled" true (Obs.Trace.enabled t);
  Alcotest.(check int) "capacity" 16 (Obs.Trace.capacity t);
  for i = 0 to 39 do
    Obs.Trace.span t ~track:1 ~name:"s" ~ts:(float_of_int i) ~dur:1.0
  done;
  Alcotest.(check int) "recorded counts every event" 40 (Obs.Trace.recorded t);
  Alcotest.(check int) "dropped = recorded - capacity" 24 (Obs.Trace.dropped t);
  let evs = Obs.Trace.events t in
  Alcotest.(check int) "ring keeps the last capacity events" 16 (List.length evs);
  (* oldest first: the survivors are events 24..39 *)
  (match evs with
  | first :: _ -> Alcotest.(check (float 0.0)) "oldest survivor" 24.0 first.Obs.Trace.e_ts
  | [] -> Alcotest.fail "no events");
  let last = List.nth evs 15 in
  Alcotest.(check (float 0.0)) "newest survivor" 39.0 last.Obs.Trace.e_ts

let test_span_totals () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t ~track:0 ~name:"long" ~ts:0.0 ~dur:100.0;
  Obs.Trace.span t ~track:1 ~name:"short" ~ts:0.0 ~dur:3.0;
  Obs.Trace.span t ~track:1 ~name:"short" ~ts:5.0 ~dur:4.0;
  Obs.Trace.instant t ~track:1 ~name:"tick" ~ts:1.0;
  Obs.Trace.instant t ~track:1 ~name:"tick" ~ts:2.0;
  Obs.Trace.instant_arg t ~track:0 ~name:"boom" ~ts:3.0 ~key:"lane" ~value:4.0;
  Alcotest.(check (list (triple string (float 0.0) int)))
    "totals, longest first"
    [ ("long", 100.0, 1); ("short", 7.0, 2) ]
    (Obs.Trace.span_totals t);
  Alcotest.(check (list (pair string int)))
    "instant counts" [ ("boom", 1); ("tick", 2) ] (Obs.Trace.instant_counts t)

let test_null_recorders () =
  let t = Obs.Trace.null in
  Alcotest.(check bool) "trace disabled" false (Obs.Trace.enabled t);
  Obs.Trace.span t ~track:0 ~name:"s" ~ts:0.0 ~dur:1.0;
  Obs.Trace.instant t ~track:0 ~name:"i" ~ts:0.0;
  Obs.Trace.advance t 10.0;
  Alcotest.(check int) "null records nothing" 0 (Obs.Trace.recorded t);
  Alcotest.(check (float 0.0)) "null clock pinned" 0.0 (Obs.Trace.now t);
  let m = Obs.Metrics.null in
  Alcotest.(check bool) "metrics disabled" false (Obs.Metrics.enabled m);
  Obs.Metrics.incr m "c";
  Obs.Metrics.push m "s" 1.0;
  Alcotest.(check (list string)) "null registers nothing" [] (Obs.Metrics.names m)

let test_simulated_clock () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_now t 100.0;
  Obs.Trace.advance t 50.0;
  Alcotest.(check (float 0.0)) "cursor" 150.0 (Obs.Trace.now t)

(* --- chrome export round-trip -------------------------------------------- *)

let test_chrome_json_lints () =
  let t = Obs.Trace.create () in
  Obs.Trace.name_track t 0 "driver";
  Obs.Trace.name_track t 2 "wavefront 0";
  (* children recorded before their enclosing parent: the exporter must
     still emit properly nested B/E pairs *)
  Obs.Trace.span t ~track:2 ~name:"round" ~ts:0.0 ~dur:10.0;
  Obs.Trace.span t ~track:2 ~name:"round" ~ts:10.0 ~dur:10.0;
  Obs.Trace.span_arg t ~track:2 ~name:"iteration" ~ts:0.0 ~dur:20.0 ~key:"best"
    ~value:42.0;
  Obs.Trace.instant t ~track:2 ~name:"fault" ~ts:5.0;
  Obs.Trace.span t ~track:0 ~name:"region" ~ts:0.0 ~dur:25.0;
  let json = Obs.Trace.to_chrome_json t in
  let r = Obs.Trace_check.lint_string json in
  if not (Obs.Trace_check.ok r) then
    Alcotest.failf "lint failed:\n%s" (Obs.Trace_check.report_to_string r);
  Alcotest.(check int) "span count" 4 r.Obs.Trace_check.spans;
  Alcotest.(check int) "instant count" 1 r.Obs.Trace_check.instants;
  Alcotest.(check int) "track count" 2 r.Obs.Trace_check.tracks

let test_lint_rejects_malformed () =
  let bad s = not (Obs.Trace_check.ok (Obs.Trace_check.lint_string s)) in
  Alcotest.(check bool) "truncated JSON" true (bad "{\"traceEvents\": [");
  Alcotest.(check bool) "not a trace" true (bad "{\"foo\": 1}");
  Alcotest.(check bool) "unbalanced B" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":1}]");
  Alcotest.(check bool) "E without B" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":0,\"tid\":1}]");
  Alcotest.(check bool) "non-monotone ts" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":1},\n\
        {\"name\":\"b\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":1}]");
  (* a well-formed minimal trace passes *)
  Alcotest.(check bool) "minimal trace passes" false
    (bad
       "[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":1},\n\
        {\"name\":\"a\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":1}]")

(* --- metrics registry ----------------------------------------------------- *)

let test_metrics_kinds () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.add m "c" 4;
  Obs.Metrics.set m "g" 2.0;
  Obs.Metrics.set m "g" 7.0;
  Obs.Metrics.observe m "h" 1.0;
  Obs.Metrics.observe m "h" 3.0;
  Obs.Metrics.push m "s" 10.0;
  Obs.Metrics.push m "s" 8.0;
  Obs.Metrics.push m "s" 8.0;
  Alcotest.(check (list string)) "registration order" [ "c"; "g"; "h"; "s" ]
    (Obs.Metrics.names m);
  let get n = Option.get (Obs.Metrics.get m n) in
  Alcotest.(check bool) "counter kind" true (Obs.Metrics.kind_of (get "c") = Obs.Metrics.Counter);
  Alcotest.(check (float 0.0)) "counter value" 5.0 (Obs.Metrics.value (get "c"));
  Alcotest.(check bool) "gauge kind" true (Obs.Metrics.kind_of (get "g") = Obs.Metrics.Gauge);
  Alcotest.(check (float 0.0)) "gauge last" 7.0 (Obs.Metrics.value (get "g"));
  Alcotest.(check int) "histogram count" 2 (Obs.Metrics.count (get "h"));
  Alcotest.(check (float 0.0)) "histogram sum" 4.0 (Obs.Metrics.sum (get "h"));
  Alcotest.(check (float 0.0)) "histogram mean" 2.0 (Obs.Metrics.mean (get "h"));
  Alcotest.(check bool) "series kind" true (Obs.Metrics.kind_of (get "s") = Obs.Metrics.Series);
  Alcotest.(check (array (float 0.0))) "series points" [| 10.0; 8.0; 8.0 |]
    (Obs.Metrics.series (get "s"));
  Alcotest.(check (float 0.0)) "series last" 8.0 (Obs.Metrics.last (get "s"));
  Alcotest.(check (option string)) "unknown name" None
    (Option.map (fun _ -> "x") (Obs.Metrics.get m "nope"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_export () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "faults.total" 3;
  Obs.Metrics.push m "r0.best_cost" 33.0;
  Obs.Metrics.push m "r0.best_cost" 31.0;
  let csv = Obs.Metrics.to_csv m in
  Alcotest.(check bool) "csv header" true
    (contains csv "metric,kind,index,value,count,sum,min,max,mean");
  Alcotest.(check bool) "csv counter row" true (contains csv "faults.total,counter");
  Alcotest.(check bool) "csv point rows" true (contains csv "r0.best_cost,point,1,31");
  let json = Obs.Metrics.to_json m in
  (* the registry's JSON must itself be well-formed *)
  (match Obs.Trace_check.parse_json json with
  | Obs.Trace_check.Obj _ -> ()
  | _ -> Alcotest.fail "metrics JSON is not an object"
  | exception Obs.Trace_check.Parse_error e -> Alcotest.failf "metrics JSON: %s" e);
  Alcotest.(check bool) "json has series" true (contains json "r0.best_cost")

(* --- structured log ------------------------------------------------------- *)

let test_log_ring () =
  let l = Obs.Log.create ~capacity:16 ~level:Obs.Log.Info () in
  Alcotest.(check bool) "enabled" true (Obs.Log.enabled l);
  Alcotest.(check int) "capacity" 16 (Obs.Log.capacity l);
  Obs.Log.debug l "below.level" [];
  Alcotest.(check int) "debug filtered below Info" 0 (Obs.Log.recorded l);
  for i = 0 to 39 do
    Obs.Log.info l "tick" [ ("i", Obs.Log.Int i) ]
  done;
  Alcotest.(check int) "recorded counts every accepted entry" 40 (Obs.Log.recorded l);
  Alcotest.(check int) "dropped = recorded - capacity" 24 (Obs.Log.dropped l);
  let es = Obs.Log.entries l in
  Alcotest.(check int) "ring keeps the last capacity entries" 16 (List.length es);
  (match es with
  | first :: _ ->
      Alcotest.(check (list (pair string bool))) "oldest survivor is entry 24"
        [ ("i", true) ]
        (List.map (fun (k, f) -> (k, f = Obs.Log.Int 24)) first.Obs.Log.e_fields)
  | [] -> Alcotest.fail "no entries");
  let l2 = Obs.Log.create ~level:Obs.Log.Warn () in
  Obs.Log.info l2 "quiet" [];
  Obs.Log.warn l2 "loud" [];
  Obs.Log.error l2 "louder" [];
  Alcotest.(check (list string)) "level gate keeps warn and error"
    [ "loud"; "louder" ]
    (List.map (fun e -> e.Obs.Log.e_event) (Obs.Log.entries l2))

let test_log_child_fields () =
  let l = Obs.Log.create () in
  let child = Obs.Log.with_fields l [ ("req", Obs.Log.Str "r1") ] in
  let grandchild = Obs.Log.with_fields child [ ("worker", Obs.Log.Int 3) ] in
  Obs.Log.info l "plain" [];
  Obs.Log.info child "tagged" [ ("x", Obs.Log.Int 1) ];
  Obs.Log.info grandchild "nested" [];
  (* children share the parent's ring *)
  Alcotest.(check int) "one shared ring" 3 (Obs.Log.recorded l);
  let fields e = List.map fst e.Obs.Log.e_fields in
  (match Obs.Log.entries l with
  | [ plain; tagged; nested ] ->
      Alcotest.(check (list string)) "plain entry unstamped" [] (fields plain);
      Alcotest.(check (list string)) "child stamps bound fields first"
        [ "req"; "x" ] (fields tagged);
      Alcotest.(check (list string)) "children nest" [ "req"; "worker" ]
        (fields nested)
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
  (* on the disabled logger, with_fields is the identity: no allocation,
     nothing ever recorded *)
  let nullchild = Obs.Log.with_fields Obs.Log.null [ ("req", Obs.Log.Str "r") ] in
  Alcotest.(check bool) "null child disabled" false (Obs.Log.enabled nullchild);
  Obs.Log.error nullchild "boom" [];
  Alcotest.(check int) "null child records nothing" 0 (Obs.Log.recorded nullchild)

let test_log_jsonl () =
  let l = Obs.Log.create () in
  Obs.Log.info l "has \"quotes\" and \\slash"
    [
      ("s", Obs.Log.Str "line\nbreak");
      ("i", Obs.Log.Int (-4));
      ("f", Obs.Log.Float 2.5);
      ("b", Obs.Log.Bool true);
    ];
  Obs.Log.warn l "second" [];
  let lines =
    String.split_on_char '\n' (Obs.Log.to_jsonl l)
    |> List.filter (fun s -> s <> "")
  in
  Alcotest.(check int) "one line per entry" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Trace_check.parse_json line with
      | Obs.Trace_check.Obj fields ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k fields) then
                Alcotest.failf "entry lacks envelope key %s: %s" k line)
            [ "ts"; "lvl"; "evt" ]
      | _ -> Alcotest.failf "entry is not a JSON object: %s" line
      | exception Obs.Trace_check.Parse_error e ->
          Alcotest.failf "entry is not valid JSON (%s): %s" e line)
    lines;
  (match Obs.Trace_check.parse_json (List.hd lines) with
  | Obs.Trace_check.Obj fields ->
      Alcotest.(check bool) "escaped event round-trips" true
        (List.assoc "evt" fields = Obs.Trace_check.Str "has \"quotes\" and \\slash");
      Alcotest.(check bool) "escaped field round-trips" true
        (List.assoc "s" fields = Obs.Trace_check.Str "line\nbreak");
      Alcotest.(check bool) "bool field" true
        (List.assoc "b" fields = Obs.Trace_check.Bool true)
  | _ -> Alcotest.fail "not an object")

(* --- prometheus exposition ------------------------------------------------- *)

let test_prometheus () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "serve.requests" 7;
  Obs.Metrics.set m "serve.queue_depth" 3.0;
  List.iter (Obs.Metrics.observe m "serve.latency_ns") [ 1.0; 5.0; 17.0; 1e9 ];
  Obs.Metrics.push m "r0.best_cost" 31.0;
  (* client names carry arbitrary bytes; the label value must escape *)
  Obs.Metrics.incr m "serve.client.we\"ird\\conn.requests";
  Obs.Metrics.incr m "serve.client.we\"ird\\conn.requests";
  let text = Obs.Metrics.to_prometheus m in
  Alcotest.(check bool) "counter family" true
    (contains text "# TYPE gpuaco_serve_requests counter"
    && contains text "gpuaco_serve_requests 7");
  Alcotest.(check bool) "gauge family" true
    (contains text "# TYPE gpuaco_serve_queue_depth gauge"
    && contains text "gpuaco_serve_queue_depth 3");
  Alcotest.(check bool) "histogram sum and count" true
    (contains text "gpuaco_serve_latency_ns_count 4"
    && contains text "gpuaco_serve_latency_ns_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "client label escaped" true
    (contains text "gpuaco_serve_client_requests{client=\"we\\\"ird\\\\conn\"} 2");
  Alcotest.(check bool) "series omitted" false (contains text "best_cost");
  (* the bucket ladder invariant behind those lines: cumulative counts
     are monotone non-decreasing and end at count, final bound +Inf *)
  let h = Option.get (Obs.Metrics.get m "serve.latency_ns") in
  let buckets = Obs.Metrics.buckets h in
  Alcotest.(check bool) "ladder non-empty" true (Array.length buckets > 0);
  let last_bound, last_cum = buckets.(Array.length buckets - 1) in
  Alcotest.(check bool) "final bound is +Inf" true (last_bound = infinity);
  Alcotest.(check int) "cumulative ends at count" (Obs.Metrics.count h) last_cum;
  let prev = ref 0 in
  Array.iter
    (fun (_, c) ->
      if c < !prev then Alcotest.fail "cumulative counts decreased";
      prev := c)
    buckets;
  (* quantile estimates come off the same ladder, clamped into [min,max] *)
  Alcotest.(check bool) "p0 clamps to min" true (Obs.Metrics.percentile h 0.0 >= 1.0);
  Alcotest.(check bool) "p100 clamps to max" true
    (Obs.Metrics.percentile h 1.0 <= 1e9);
  Alcotest.(check bool) "median within range" true
    (let p = Obs.Metrics.percentile h 0.5 in
     p >= 1.0 && p <= 1e9)

let test_merge_commutative () =
  (* two shards observing the same histogram with different tails must
     merge to the same registry whichever joins first *)
  let shard seed =
    let m = Obs.Metrics.create () in
    Obs.Metrics.add m "jobs" (seed * 3);
    Obs.Metrics.set m "depth" (float_of_int seed);
    List.iter
      (Obs.Metrics.observe m "lat")
      (if seed = 1 then [ 2.0; 70.0; 4100.0 ] else [ 9.0; 300.0 ]);
    Obs.Metrics.push m "curve" (float_of_int (100 - seed));
    m
  in
  let joined order =
    let into = Obs.Metrics.create () in
    (* pre-register the names so first-touch order cannot differ *)
    Obs.Metrics.add into "jobs" 0;
    Obs.Metrics.set into "depth" 0.0;
    List.iter (fun s -> Obs.Metrics.merge_into (shard s) ~into) order;
    into
  in
  let ab = joined [ 1; 2 ] and ba = joined [ 2; 1 ] in
  let h m = Option.get (Obs.Metrics.get m "lat") in
  Alcotest.(check int) "count independent of join order" (Obs.Metrics.count (h ab))
    (Obs.Metrics.count (h ba));
  Alcotest.(check (float 0.0)) "sum independent of join order"
    (Obs.Metrics.sum (h ab)) (Obs.Metrics.sum (h ba));
  Alcotest.(check (float 0.0)) "last independent of join order"
    (Obs.Metrics.last (h ab)) (Obs.Metrics.last (h ba));
  Alcotest.(check bool) "bucket ladders identical" true
    (Obs.Metrics.buckets (h ab) = Obs.Metrics.buckets (h ba));
  Alcotest.(check (float 0.0)) "counters add" 9.0
    (Obs.Metrics.value (Option.get (Obs.Metrics.get ab "jobs")));
  (* quantiles read off the merged ladder agree too (gauges are
     deliberately latest-join-wins, so only the histogram family is
     held to commutativity) *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%.0f independent of join order" (q *. 100.0))
        (Obs.Metrics.percentile (h ab) q)
        (Obs.Metrics.percentile (h ba) q))
    [ 0.0; 0.5; 0.99; 1.0 ]

(* --- wall-clock tracks ----------------------------------------------------- *)

let test_wall_tracks () =
  let t = Obs.Trace.create ~wall_origin:1000.0 () in
  Obs.Trace.name_track t 0 "driver";
  Obs.Trace.name_track t Obs.Trace.wall_track_base "worker 0 (wall)";
  Obs.Trace.span t ~track:0 ~name:"region" ~ts:0.0 ~dur:50.0;
  Obs.Trace.span t ~track:Obs.Trace.wall_track_base ~name:"job" ~ts:10.0 ~dur:5.0;
  Obs.Trace.instant t ~track:Obs.Trace.wall_track_base ~name:"steal" ~ts:12.0;
  let r = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json t) in
  if not (Obs.Trace_check.ok r) then
    Alcotest.failf "wall-clock trace fails lint:\n%s" (Obs.Trace_check.report_to_string r);
  Alcotest.(check int) "two tracks" 2 r.Obs.Trace_check.tracks;
  Alcotest.(check int) "one wall track under its own pid" 1 r.Obs.Trace_check.wall_tracks;
  (* append_range carries only the simulated timeline, shifted *)
  let sim = Obs.Trace.create ~wall_origin:1000.0 () in
  Obs.Trace.append_range t ~into:sim ~first:0 ~last:(Obs.Trace.recorded t) ~dt:100.0;
  (match Obs.Trace.events sim with
  | [ e ] ->
      Alcotest.(check string) "simulated span carried" "region" e.Obs.Trace.e_name;
      Alcotest.(check (float 0.0)) "timestamp shifted" 100.0 e.Obs.Trace.e_ts
  | es -> Alcotest.failf "append_range carried %d events, expected 1" (List.length es));
  (* append_wall carries only the wall events, unshifted *)
  let wall = Obs.Trace.create ~wall_origin:1000.0 () in
  Obs.Trace.append_wall t ~into:wall;
  (match Obs.Trace.events wall with
  | [ s; i ] ->
      Alcotest.(check string) "wall span carried" "job" s.Obs.Trace.e_name;
      Alcotest.(check (float 0.0)) "wall timestamp unshifted" 10.0 s.Obs.Trace.e_ts;
      Alcotest.(check string) "wall instant carried" "steal" i.Obs.Trace.e_name
  | es -> Alcotest.failf "append_wall carried %d events, expected 2" (List.length es));
  (* the wall clock on a disabled recorder never reads the system clock *)
  Alcotest.(check (float 0.0)) "null wall_now pinned" 0.0
    (Obs.Trace.wall_now Obs.Trace.null)

(* --- the no-perturbation contract ----------------------------------------- *)

let compile_cfg ?fault_rate ?fault_seed ?compile_budget_ms () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ?fault_rate ?fault_seed
       ?compile_budget_ms ())
    with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
  }

(* The observables that must not move when the recorders attach. Host
   minor_words legitimately differs (the recorders themselves allocate),
   so it is excluded; everything the simulation computes is included. *)
let par_signature (p : Gpusim.Par_aco.pass_stats) =
  ( ( p.Gpusim.Par_aco.invoked,
      p.Gpusim.Par_aco.iterations,
      p.Gpusim.Par_aco.ants_simulated,
      p.Gpusim.Par_aco.work,
      p.Gpusim.Par_aco.time_ns ),
    ( p.Gpusim.Par_aco.serialized_ops,
      p.Gpusim.Par_aco.lockstep_steps,
      p.Gpusim.Par_aco.ant_steps,
      p.Gpusim.Par_aco.selections,
      p.Gpusim.Par_aco.retries ),
    ( p.Gpusim.Par_aco.aborted_budget,
      p.Gpusim.Par_aco.aborted_faults,
      Gpusim.Faults.total p.Gpusim.Par_aco.fault_counts,
      Array.to_list p.Gpusim.Par_aco.best_costs ) )

let region_signature (r : Pipeline.Compile.region_report) =
  ( ( Array.to_list r.Pipeline.Compile.aco_order,
      Array.to_list r.Pipeline.Compile.pass1_only_order,
      r.Pipeline.Compile.aco_cost,
      r.Pipeline.Compile.degradation,
      r.Pipeline.Compile.retries ),
    ( par_signature (Pipeline.Compile.par_pass1 r),
      par_signature (Pipeline.Compile.par_pass2 r),
      Pipeline.Compile.par_pass1_time_ns r,
      Pipeline.Compile.par_pass2_time_ns r,
      Gpusim.Faults.total r.Pipeline.Compile.fault_counts ),
    ( Option.map
        (fun (s : Aco.Seq_aco.pass_stats) -> Array.to_list s.Aco.Seq_aco.best_costs)
        (Pipeline.Compile.seq_pass1 r),
      Option.map
        (fun (s : Aco.Seq_aco.pass_stats) -> Array.to_list s.Aco.Seq_aco.best_costs)
        (Pipeline.Compile.seq_pass2 r),
      Pipeline.Compile.seq_pass1_time_ns r,
      Pipeline.Compile.seq_pass2_time_ns r ) )

let tracing_is_inert =
  QCheck.Test.make ~count:8 ~name:"live recorders never perturb the compile"
    (QCheck.pair (Tu.arb_region ~max_size:30 ()) QCheck.small_int)
    (fun (region, seed) ->
      List.iter
        (fun (fault_rate, compile_budget_ms) ->
          let cfg () =
            compile_cfg ?fault_rate ~fault_seed:(seed + 11) ?compile_budget_ms ()
          in
          let off = Pipeline.Compile.run_region (cfg ()) ~name:"r" region in
          let trace = Obs.Trace.create ~capacity:256 () (* force ring wrap too *) in
          let metrics = Obs.Metrics.create () in
          let log = Obs.Log.create ~capacity:64 () in
          let on =
            Pipeline.Compile.run_region ~trace ~metrics ~log (cfg ()) ~name:"r" region
          in
          if region_signature off <> region_signature on then
            Alcotest.failf
              "recorders perturbed the compile (fault_rate=%s budget=%s)"
              (match fault_rate with Some f -> string_of_float f | None -> "0")
              (match compile_budget_ms with Some b -> string_of_float b | None -> "inf");
          (* and the recording it produced must lint *)
          let r = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json trace) in
          if not (Obs.Trace_check.ok r) then
            Alcotest.failf "trace of the compile fails lint:\n%s"
              (Obs.Trace_check.report_to_string r);
          (* convergence series surfaced through the metrics registry
             agree with the driver's own record *)
          (match Obs.Metrics.get metrics "r.par.pass2.best_cost" with
          | Some m ->
              let pushed = Array.map int_of_float (Obs.Metrics.series m) in
              let stats = (Pipeline.Compile.par_pass2 on).Gpusim.Par_aco.best_costs in
              (* the registry sees one push per attempted iteration:
                 the series drops the initial-cost entry 0 *)
              Alcotest.(check (array int)) "metrics series matches pass stats"
                (Array.sub stats 1 (Array.length stats - 1))
                pushed
          | None -> ()))
        [ (None, None); (Some 0.2, Some 2.0); (Some 1.0, None); (None, Some 0.01) ];
      true)

(* The disabled-path contract, stated on report digests: a compile run
   with the null recorders explicitly passed must be byte-identical —
   same digest — to one where the hooks were never supplied at all.
   This is what lets production leave the instrumentation parameters in
   place and toggle observability by value. *)
let null_recorders_are_absent =
  QCheck.Test.make ~count:10 ~name:"null log/trace digest-identical to absent"
    (QCheck.pair (Tu.arb_region ~max_size:30 ()) QCheck.small_int)
    (fun (region, seed) ->
      let cfg () = compile_cfg ~fault_rate:0.3 ~fault_seed:(seed + 3) () in
      let absent = Pipeline.Compile.run_region (cfg ()) ~name:"r" region in
      let nulls =
        Pipeline.Compile.run_region ~trace:Obs.Trace.null ~metrics:Obs.Metrics.null
          ~log:Obs.Log.null (cfg ()) ~name:"r" region
      in
      Alcotest.(check string) "digest identical"
        (Pipeline.Report_digest.digest_region absent)
        (Pipeline.Report_digest.digest_region nulls);
      true)

let suite =
  [
    ("trace ring wrap", `Quick, test_ring_wrap);
    ("trace span totals", `Quick, test_span_totals);
    ("null recorders", `Quick, test_null_recorders);
    ("simulated clock", `Quick, test_simulated_clock);
    ("chrome export lints", `Quick, test_chrome_json_lints);
    ("lint rejects malformed", `Quick, test_lint_rejects_malformed);
    ("metrics kinds", `Quick, test_metrics_kinds);
    ("metrics export", `Quick, test_metrics_export);
    ("log ring and level gate", `Quick, test_log_ring);
    ("log child field stamping", `Quick, test_log_child_fields);
    ("log JSONL escaping round-trips", `Quick, test_log_jsonl);
    ("prometheus exposition", `Quick, test_prometheus);
    ("metrics merge is commutative", `Quick, test_merge_commutative);
    ("wall-clock tracks", `Quick, test_wall_tracks);
  ]
  @ Tu.qtests [ tracing_is_inert; null_recorders_are_absent ]
