type fault_counts = {
  lane_faults : int;
  wavefront_hangs : int;
  reduction_drops : int;
  mem_faults : int;
}

let fault_counts_zero =
  { lane_faults = 0; wavefront_hangs = 0; reduction_drops = 0; mem_faults = 0 }

let fault_counts_add a b =
  {
    lane_faults = a.lane_faults + b.lane_faults;
    wavefront_hangs = a.wavefront_hangs + b.wavefront_hangs;
    reduction_drops = a.reduction_drops + b.reduction_drops;
    mem_faults = a.mem_faults + b.mem_faults;
  }

let fault_counts_total c =
  c.lane_faults + c.wavefront_hangs + c.reduction_drops + c.mem_faults

type pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;
  time_ns : float;
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;
  single_path_ops : int;
  lockstep_steps : int;
  ant_steps : int;
  selections : int;
  best_costs : int array;
  minor_words : float;
  retries : int;
  aborted_budget : bool;
  aborted_faults : bool;
  scored_candidates : int;
  pruned_candidates : int;
  fault_counts : fault_counts;
}

let no_pass =
  {
    invoked = false;
    iterations = 0;
    ants_simulated = 0;
    work = 0;
    time_ns = 0.0;
    improved = false;
    hit_lower_bound = false;
    serialized_ops = 0;
    single_path_ops = 0;
    lockstep_steps = 0;
    ant_steps = 0;
    selections = 0;
    best_costs = [||];
    minor_words = 0.0;
    retries = 0;
    aborted_budget = false;
    aborted_faults = false;
    scored_candidates = 0;
    pruned_candidates = 0;
    fault_counts = fault_counts_zero;
  }

type result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type budget = Unlimited | Work of int | Time_ns of float

(* What a finished pass leaves for the next one: work-metered backends
   deduct abstract work units, time-modelled backends deduct simulated
   nanoseconds. Both clamp at zero so an overdrawn pass 1 starves pass 2
   rather than granting it a negative (wrapped) allowance. *)
let budget_minus budget (stats : pass_stats) =
  match budget with
  | Unlimited -> Unlimited
  | Work w -> Work (max 0 (w - stats.work))
  | Time_ns t -> Time_ns (Float.max 0.0 (t -. stats.time_ns))

type caps = { rp_pass : bool; faults : bool; trace : bool; time_model : bool; prune : bool }
