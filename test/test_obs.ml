(* Flight-recorder safety net.

   1. Unit tests of the [Obs.Trace] ring (wrap-around accounting, span
      totals, the disabled recorder) and of the [Obs.Metrics] registry
      (kinds, headline values, CSV/JSON export).
   2. Round-trip: [Trace.to_chrome_json] must pass [Trace_check]'s lint
      (well-formed JSON, monotone timestamps, balanced B/E pairs), and
      the lint must reject malformed documents.
   3. The observability contract as a qcheck differential: compiling a
      random region with live recorders attached must be byte-identical
      to the uninstrumented compile — same schedules, same costs, same
      simulated times, same degradation ledger, same fault counts —
      across fault rates and compile budgets. Tracing may not perturb
      any RNG stream or cost model. *)

(* --- trace ring ---------------------------------------------------------- *)

let test_ring_wrap () =
  let t = Obs.Trace.create ~capacity:16 () in
  Alcotest.(check bool) "enabled" true (Obs.Trace.enabled t);
  Alcotest.(check int) "capacity" 16 (Obs.Trace.capacity t);
  for i = 0 to 39 do
    Obs.Trace.span t ~track:1 ~name:"s" ~ts:(float_of_int i) ~dur:1.0
  done;
  Alcotest.(check int) "recorded counts every event" 40 (Obs.Trace.recorded t);
  Alcotest.(check int) "dropped = recorded - capacity" 24 (Obs.Trace.dropped t);
  let evs = Obs.Trace.events t in
  Alcotest.(check int) "ring keeps the last capacity events" 16 (List.length evs);
  (* oldest first: the survivors are events 24..39 *)
  (match evs with
  | first :: _ -> Alcotest.(check (float 0.0)) "oldest survivor" 24.0 first.Obs.Trace.e_ts
  | [] -> Alcotest.fail "no events");
  let last = List.nth evs 15 in
  Alcotest.(check (float 0.0)) "newest survivor" 39.0 last.Obs.Trace.e_ts

let test_span_totals () =
  let t = Obs.Trace.create () in
  Obs.Trace.span t ~track:0 ~name:"long" ~ts:0.0 ~dur:100.0;
  Obs.Trace.span t ~track:1 ~name:"short" ~ts:0.0 ~dur:3.0;
  Obs.Trace.span t ~track:1 ~name:"short" ~ts:5.0 ~dur:4.0;
  Obs.Trace.instant t ~track:1 ~name:"tick" ~ts:1.0;
  Obs.Trace.instant t ~track:1 ~name:"tick" ~ts:2.0;
  Obs.Trace.instant_arg t ~track:0 ~name:"boom" ~ts:3.0 ~key:"lane" ~value:4.0;
  Alcotest.(check (list (triple string (float 0.0) int)))
    "totals, longest first"
    [ ("long", 100.0, 1); ("short", 7.0, 2) ]
    (Obs.Trace.span_totals t);
  Alcotest.(check (list (pair string int)))
    "instant counts" [ ("boom", 1); ("tick", 2) ] (Obs.Trace.instant_counts t)

let test_null_recorders () =
  let t = Obs.Trace.null in
  Alcotest.(check bool) "trace disabled" false (Obs.Trace.enabled t);
  Obs.Trace.span t ~track:0 ~name:"s" ~ts:0.0 ~dur:1.0;
  Obs.Trace.instant t ~track:0 ~name:"i" ~ts:0.0;
  Obs.Trace.advance t 10.0;
  Alcotest.(check int) "null records nothing" 0 (Obs.Trace.recorded t);
  Alcotest.(check (float 0.0)) "null clock pinned" 0.0 (Obs.Trace.now t);
  let m = Obs.Metrics.null in
  Alcotest.(check bool) "metrics disabled" false (Obs.Metrics.enabled m);
  Obs.Metrics.incr m "c";
  Obs.Metrics.push m "s" 1.0;
  Alcotest.(check (list string)) "null registers nothing" [] (Obs.Metrics.names m)

let test_simulated_clock () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_now t 100.0;
  Obs.Trace.advance t 50.0;
  Alcotest.(check (float 0.0)) "cursor" 150.0 (Obs.Trace.now t)

(* --- chrome export round-trip -------------------------------------------- *)

let test_chrome_json_lints () =
  let t = Obs.Trace.create () in
  Obs.Trace.name_track t 0 "driver";
  Obs.Trace.name_track t 2 "wavefront 0";
  (* children recorded before their enclosing parent: the exporter must
     still emit properly nested B/E pairs *)
  Obs.Trace.span t ~track:2 ~name:"round" ~ts:0.0 ~dur:10.0;
  Obs.Trace.span t ~track:2 ~name:"round" ~ts:10.0 ~dur:10.0;
  Obs.Trace.span_arg t ~track:2 ~name:"iteration" ~ts:0.0 ~dur:20.0 ~key:"best"
    ~value:42.0;
  Obs.Trace.instant t ~track:2 ~name:"fault" ~ts:5.0;
  Obs.Trace.span t ~track:0 ~name:"region" ~ts:0.0 ~dur:25.0;
  let json = Obs.Trace.to_chrome_json t in
  let r = Obs.Trace_check.lint_string json in
  if not (Obs.Trace_check.ok r) then
    Alcotest.failf "lint failed:\n%s" (Obs.Trace_check.report_to_string r);
  Alcotest.(check int) "span count" 4 r.Obs.Trace_check.spans;
  Alcotest.(check int) "instant count" 1 r.Obs.Trace_check.instants;
  Alcotest.(check int) "track count" 2 r.Obs.Trace_check.tracks

let test_lint_rejects_malformed () =
  let bad s = not (Obs.Trace_check.ok (Obs.Trace_check.lint_string s)) in
  Alcotest.(check bool) "truncated JSON" true (bad "{\"traceEvents\": [");
  Alcotest.(check bool) "not a trace" true (bad "{\"foo\": 1}");
  Alcotest.(check bool) "unbalanced B" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":1}]");
  Alcotest.(check bool) "E without B" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":0,\"tid\":1}]");
  Alcotest.(check bool) "non-monotone ts" true
    (bad
       "[{\"name\":\"a\",\"ph\":\"i\",\"ts\":5,\"pid\":0,\"tid\":1},\n\
        {\"name\":\"b\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":1}]");
  (* a well-formed minimal trace passes *)
  Alcotest.(check bool) "minimal trace passes" false
    (bad
       "[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":0,\"tid\":1},\n\
        {\"name\":\"a\",\"ph\":\"E\",\"ts\":2,\"pid\":0,\"tid\":1}]")

(* --- metrics registry ----------------------------------------------------- *)

let test_metrics_kinds () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c";
  Obs.Metrics.add m "c" 4;
  Obs.Metrics.set m "g" 2.0;
  Obs.Metrics.set m "g" 7.0;
  Obs.Metrics.observe m "h" 1.0;
  Obs.Metrics.observe m "h" 3.0;
  Obs.Metrics.push m "s" 10.0;
  Obs.Metrics.push m "s" 8.0;
  Obs.Metrics.push m "s" 8.0;
  Alcotest.(check (list string)) "registration order" [ "c"; "g"; "h"; "s" ]
    (Obs.Metrics.names m);
  let get n = Option.get (Obs.Metrics.get m n) in
  Alcotest.(check bool) "counter kind" true (Obs.Metrics.kind_of (get "c") = Obs.Metrics.Counter);
  Alcotest.(check (float 0.0)) "counter value" 5.0 (Obs.Metrics.value (get "c"));
  Alcotest.(check bool) "gauge kind" true (Obs.Metrics.kind_of (get "g") = Obs.Metrics.Gauge);
  Alcotest.(check (float 0.0)) "gauge last" 7.0 (Obs.Metrics.value (get "g"));
  Alcotest.(check int) "histogram count" 2 (Obs.Metrics.count (get "h"));
  Alcotest.(check (float 0.0)) "histogram sum" 4.0 (Obs.Metrics.sum (get "h"));
  Alcotest.(check (float 0.0)) "histogram mean" 2.0 (Obs.Metrics.mean (get "h"));
  Alcotest.(check bool) "series kind" true (Obs.Metrics.kind_of (get "s") = Obs.Metrics.Series);
  Alcotest.(check (array (float 0.0))) "series points" [| 10.0; 8.0; 8.0 |]
    (Obs.Metrics.series (get "s"));
  Alcotest.(check (float 0.0)) "series last" 8.0 (Obs.Metrics.last (get "s"));
  Alcotest.(check (option string)) "unknown name" None
    (Option.map (fun _ -> "x") (Obs.Metrics.get m "nope"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_metrics_export () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "faults.total" 3;
  Obs.Metrics.push m "r0.best_cost" 33.0;
  Obs.Metrics.push m "r0.best_cost" 31.0;
  let csv = Obs.Metrics.to_csv m in
  Alcotest.(check bool) "csv header" true
    (contains csv "metric,kind,index,value,count,sum,min,max,mean");
  Alcotest.(check bool) "csv counter row" true (contains csv "faults.total,counter");
  Alcotest.(check bool) "csv point rows" true (contains csv "r0.best_cost,point,1,31");
  let json = Obs.Metrics.to_json m in
  (* the registry's JSON must itself be well-formed *)
  (match Obs.Trace_check.parse_json json with
  | Obs.Trace_check.Obj _ -> ()
  | _ -> Alcotest.fail "metrics JSON is not an object"
  | exception Obs.Trace_check.Parse_error e -> Alcotest.failf "metrics JSON: %s" e);
  Alcotest.(check bool) "json has series" true (contains json "r0.best_cost")

(* --- the no-perturbation contract ----------------------------------------- *)

let compile_cfg ?fault_rate ?fault_seed ?compile_budget_ms () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ?fault_rate ?fault_seed
       ?compile_budget_ms ())
    with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
  }

(* The observables that must not move when the recorders attach. Host
   minor_words legitimately differs (the recorders themselves allocate),
   so it is excluded; everything the simulation computes is included. *)
let par_signature (p : Gpusim.Par_aco.pass_stats) =
  ( ( p.Gpusim.Par_aco.invoked,
      p.Gpusim.Par_aco.iterations,
      p.Gpusim.Par_aco.ants_simulated,
      p.Gpusim.Par_aco.work,
      p.Gpusim.Par_aco.time_ns ),
    ( p.Gpusim.Par_aco.serialized_ops,
      p.Gpusim.Par_aco.lockstep_steps,
      p.Gpusim.Par_aco.ant_steps,
      p.Gpusim.Par_aco.selections,
      p.Gpusim.Par_aco.retries ),
    ( p.Gpusim.Par_aco.aborted_budget,
      p.Gpusim.Par_aco.aborted_faults,
      Gpusim.Faults.total p.Gpusim.Par_aco.fault_counts,
      Array.to_list p.Gpusim.Par_aco.best_costs ) )

let region_signature (r : Pipeline.Compile.region_report) =
  ( ( Array.to_list r.Pipeline.Compile.aco_order,
      Array.to_list r.Pipeline.Compile.pass1_only_order,
      r.Pipeline.Compile.aco_cost,
      r.Pipeline.Compile.degradation,
      r.Pipeline.Compile.retries ),
    ( par_signature (Pipeline.Compile.par_pass1 r),
      par_signature (Pipeline.Compile.par_pass2 r),
      Pipeline.Compile.par_pass1_time_ns r,
      Pipeline.Compile.par_pass2_time_ns r,
      Gpusim.Faults.total r.Pipeline.Compile.fault_counts ),
    ( Option.map
        (fun (s : Aco.Seq_aco.pass_stats) -> Array.to_list s.Aco.Seq_aco.best_costs)
        (Pipeline.Compile.seq_pass1 r),
      Option.map
        (fun (s : Aco.Seq_aco.pass_stats) -> Array.to_list s.Aco.Seq_aco.best_costs)
        (Pipeline.Compile.seq_pass2 r),
      Pipeline.Compile.seq_pass1_time_ns r,
      Pipeline.Compile.seq_pass2_time_ns r ) )

let tracing_is_inert =
  QCheck.Test.make ~count:8 ~name:"live recorders never perturb the compile"
    (QCheck.pair (Tu.arb_region ~max_size:30 ()) QCheck.small_int)
    (fun (region, seed) ->
      List.iter
        (fun (fault_rate, compile_budget_ms) ->
          let cfg () =
            compile_cfg ?fault_rate ~fault_seed:(seed + 11) ?compile_budget_ms ()
          in
          let off = Pipeline.Compile.run_region (cfg ()) ~name:"r" region in
          let trace = Obs.Trace.create ~capacity:256 () (* force ring wrap too *) in
          let metrics = Obs.Metrics.create () in
          let on = Pipeline.Compile.run_region ~trace ~metrics (cfg ()) ~name:"r" region in
          if region_signature off <> region_signature on then
            Alcotest.failf
              "recorders perturbed the compile (fault_rate=%s budget=%s)"
              (match fault_rate with Some f -> string_of_float f | None -> "0")
              (match compile_budget_ms with Some b -> string_of_float b | None -> "inf");
          (* and the recording it produced must lint *)
          let r = Obs.Trace_check.lint_string (Obs.Trace.to_chrome_json trace) in
          if not (Obs.Trace_check.ok r) then
            Alcotest.failf "trace of the compile fails lint:\n%s"
              (Obs.Trace_check.report_to_string r);
          (* convergence series surfaced through the metrics registry
             agree with the driver's own record *)
          (match Obs.Metrics.get metrics "r.par.pass2.best_cost" with
          | Some m ->
              let pushed = Array.map int_of_float (Obs.Metrics.series m) in
              let stats = (Pipeline.Compile.par_pass2 on).Gpusim.Par_aco.best_costs in
              (* the registry sees one push per attempted iteration:
                 the series drops the initial-cost entry 0 *)
              Alcotest.(check (array int)) "metrics series matches pass stats"
                (Array.sub stats 1 (Array.length stats - 1))
                pushed
          | None -> ()))
        [ (None, None); (Some 0.2, Some 2.0); (Some 1.0, None); (None, Some 0.01) ];
      true)

let suite =
  [
    ("trace ring wrap", `Quick, test_ring_wrap);
    ("trace span totals", `Quick, test_span_totals);
    ("null recorders", `Quick, test_null_recorders);
    ("simulated clock", `Quick, test_simulated_clock);
    ("chrome export lints", `Quick, test_chrome_json_lints);
    ("lint rejects malformed", `Quick, test_lint_rejects_malformed);
    ("metrics kinds", `Quick, test_metrics_kinds);
    ("metrics export", `Quick, test_metrics_export);
  ]
  @ Tu.qtests [ tracing_is_inert ]
