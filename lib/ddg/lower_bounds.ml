let schedule_length g =
  let cp = Critpath.compute g in
  max (Critpath.critical_path_length cp + 1) (Graph.size g)

let count_cls cls regs =
  List.length (List.filter (fun (r : Ir.Reg.t) -> Ir.Reg.cls_equal r.cls cls) regs)

let register_pressure (g : Graph.t) cls =
  let region = g.region in
  let live_in = count_cls cls (Ir.Region.live_in region) in
  let live_out = count_cls cls (region : Ir.Region.t).live_out in
  let max_defs =
    Array.fold_left
      (fun acc (i : Ir.Instr.t) -> max acc (count_cls cls i.defs))
      0 (region : Ir.Region.t).instrs
  in
  max live_in (max live_out max_defs)

(* Per-instruction min-register lower bound in the style of Chen et al.
   (arXiv 2303.06855): how many registers of the class are live at the
   point instruction [i] is issued, in *every* valid schedule. A register
   [r] is unavoidably live there iff

   - it is certainly born by then: [r] is live-in, or some definer of [r]
     is an ancestor of [i] in the DDG (ancestors precede [i] in any
     schedule) or [i] itself; and
   - it certainly has not died yet: [r] is live-out (never dies), or is
     defined by [i] (a def is counted at its own issue point even if it
     dies immediately), or some use of [r] is a strict descendant of [i]
     (descendants follow [i], so the use count cannot have reached zero).

   Both conditions are schedule-independent, so the bound is a pure
   region analysis; it is exactly a lower bound on the quantity
   [Sched.Rp_tracker.fits_within] compares against the RP target, which
   is what makes candidate pruning on it sound. *)
let min_reg_lb closure (g : Graph.t) cls =
  let region = g.region in
  let instrs = (region : Ir.Region.t).instrs in
  let n = g.n in
  (* definer / user instruction ids per register of the class *)
  let definers : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  let users : (Ir.Reg.t, int list) Hashtbl.t = Hashtbl.create 64 in
  let push tbl r i =
    if Ir.Reg.cls_equal (r : Ir.Reg.t).cls cls then
      Hashtbl.replace tbl r (i :: Option.value (Hashtbl.find_opt tbl r) ~default:[])
  in
  Array.iter
    (fun (ins : Ir.Instr.t) ->
      List.iter (fun r -> push definers r ins.id) ins.defs;
      List.iter (fun r -> push users r ins.id) ins.uses)
    instrs;
  let regs : Ir.Reg.t list =
    let seen = Hashtbl.create 64 in
    let add acc r =
      if Ir.Reg.cls_equal (r : Ir.Reg.t).cls cls && not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        r :: acc
      end
      else acc
    in
    let acc = List.fold_left add [] (Ir.Region.live_in region) in
    let acc = List.fold_left add acc (region : Ir.Region.t).live_out in
    Array.fold_left
      (fun acc (ins : Ir.Instr.t) -> List.fold_left add (List.fold_left add acc ins.defs) ins.uses)
      acc instrs
  in
  let live_in_set = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace live_in_set r ()) (Ir.Region.live_in region);
  let lb = Array.make n 0 in
  for i = 0 to n - 1 do
    let count = ref 0 in
    List.iter
      (fun r ->
        let defs = Option.value (Hashtbl.find_opt definers r) ~default:[] in
        let born =
          Hashtbl.mem live_in_set r
          || List.exists (fun d -> d = i || Closure.reaches closure d i) defs
        in
        if born then begin
          let held =
            Ir.Region.is_live_out region r
            || List.exists (fun d -> d = i) defs
            || List.exists
                 (fun u -> Closure.reaches closure i u)
                 (Option.value (Hashtbl.find_opt users r) ~default:[])
          in
          if held then incr count
        end)
      regs;
    lb.(i) <- !count
  done;
  lb
