let run ?(latency_aware = true) graph kind =
  let rl = Ready_list.create ~latency_aware graph in
  let rp = Rp_tracker.create graph in
  let ctx = Heuristic.make_ctx graph rp in
  let rev_slots = ref [] in
  while not (Ready_list.finished rl) do
    if Ready_list.ready_count rl > 0 then begin
      let i = Heuristic.best kind ctx (Ready_list.ready_list rl) in
      Ready_list.schedule rl i;
      Rp_tracker.schedule rp i;
      rev_slots := Schedule.Instr i :: !rev_slots
    end
    else begin
      Ready_list.stall rl;
      rev_slots := Schedule.Stall :: !rev_slots
    end
  done;
  match Schedule.of_slots graph ~latency_aware (List.rev !rev_slots) with
  | Ok s -> s
  | Error v -> failwith ("List_scheduler.run: invalid schedule: " ^ Schedule.violation_to_string v)

let run_order graph kind = Schedule.order (run ~latency_aware:false graph kind)
