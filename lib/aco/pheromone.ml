type t = { n : int; cells : float array }

let create ~n ~initial =
  if n <= 0 then invalid_arg "Pheromone.create";
  { n; cells = Array.make ((n + 1) * n) initial }

let size t = t.n

let index t src dst =
  if dst < 0 || dst >= t.n || src < -1 || src >= t.n then invalid_arg "Pheromone: out of range";
  ((src + 1) * t.n) + dst

let get t ~src ~dst = t.cells.(index t src dst)

let decay t retention =
  for i = 0 to Array.length t.cells - 1 do
    t.cells.(i) <- t.cells.(i) *. retention
  done

let deposit t ~src ~dst amount =
  let i = index t src dst in
  t.cells.(i) <- t.cells.(i) +. amount

let deposit_path t order amount =
  let prev = ref (-1) in
  Array.iter
    (fun i ->
      deposit t ~src:!prev ~dst:i amount;
      prev := i)
    order

let reset t ~initial = Array.fill t.cells 0 (Array.length t.cells) initial

let total t = Array.fold_left ( +. ) 0.0 t.cells
