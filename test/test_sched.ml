let diamond_graph () = Ddg.Graph.build (Tu.diamond_region ())

let test_schedule_of_order () =
  let g = diamond_graph () in
  match Sched.Schedule.of_order g [| 0; 1; 2; 3; 4; 5 |] with
  | Ok s ->
      Alcotest.(check int) "length" 6 (Sched.Schedule.length s);
      Alcotest.(check int) "no stalls" 0 (Sched.Schedule.num_stalls s);
      Alcotest.(check int) "cycle of 3" 3 (Sched.Schedule.cycle s 3)
  | Error v -> Alcotest.failf "unexpected: %s" (Sched.Schedule.violation_to_string v)

let expect_violation name slots pred =
  let g = diamond_graph () in
  match Sched.Schedule.of_slots g ~latency_aware:true slots with
  | Ok _ -> Alcotest.failf "%s: expected violation" name
  | Error v ->
      Alcotest.(check bool) (name ^ ": right violation kind") true (pred v)

let test_schedule_violations () =
  let i k = Sched.Schedule.Instr k in
  expect_violation "missing"
    [ i 0; i 1; i 2; i 3; i 4 ]
    (function Sched.Schedule.Missing 5 -> true | _ -> false);
  expect_violation "duplicate"
    [ i 0; i 1; i 2; i 3; i 4; i 5; i 5 ]
    (function Sched.Schedule.Duplicated 5 -> true | _ -> false);
  expect_violation "unknown"
    [ i 0; i 1; i 2; i 3; i 4; i 5; i 17 ]
    (function Sched.Schedule.Unknown_instr 17 -> true | _ -> false);
  expect_violation "order violation"
    [ i 1; i 0; i 2; i 3; i 4; i 5 ]
    (function Sched.Schedule.Order_violation _ -> true | _ -> false);
  (* dependences in order but latencies ignored -> latency violation *)
  expect_violation "latency violation"
    [ i 0; i 1; i 2; i 3; i 4; i 5 ]
    (function Sched.Schedule.Latency_violation _ -> true | _ -> false)

let test_latency_pad_minimal () =
  let g = diamond_graph () in
  let s = Sched.Schedule.latency_pad g [| 0; 1; 2; 3; 4; 5 |] in
  Alcotest.(check bool) "valid with latencies" true (Tu.check_valid ~latency_aware:true s);
  let sl = Ir.Opcode.default_latency Ir.Opcode.Smem_load in
  let vl = Ir.Opcode.default_latency Ir.Opcode.Vmem_load in
  (* s_load at 0, v_load at sl, valus at sl+vl and +1, join, store *)
  Alcotest.(check int) "padded length" (sl + vl + 4) (Sched.Schedule.length s);
  Alcotest.(check int) "stalls" (sl + vl + 4 - 6) (Sched.Schedule.num_stalls s);
  Alcotest.(check (array int)) "order preserved" [| 0; 1; 2; 3; 4; 5 |] (Sched.Schedule.order s)

let prop_latency_pad_valid =
  QCheck.Test.make ~name:"latency_pad always yields valid schedules" ~count:80
    (Tu.arb_graph ()) (fun g ->
      let order = Ddg.Topo.order g in
      let s = Sched.Schedule.latency_pad g order in
      Result.is_ok (Sched.Schedule.validate s ~latency_aware:true))

let prop_tracker_matches_naive =
  QCheck.Test.make ~name:"incremental RP = naive interval RP" ~count:80 (Tu.arb_graph ())
    (fun g ->
      let order = Ddg.Topo.order g in
      let t = Sched.Rp_tracker.create g in
      Array.iter (Sched.Rp_tracker.schedule t) order;
      let naive = Sched.Rp_tracker.naive_peaks g order in
      Sched.Rp_tracker.peak t Ir.Reg.Vgpr = naive Ir.Reg.Vgpr
      && Sched.Rp_tracker.peak t Ir.Reg.Sgpr = naive Ir.Reg.Sgpr)

let prop_tracker_predictions =
  QCheck.Test.make ~name:"peak_if_scheduled predicts the next step" ~count:80
    (Tu.arb_graph ()) (fun g ->
      let t = Sched.Rp_tracker.create g in
      let rl = Sched.Ready_list.create ~latency_aware:false g in
      let ok = ref true in
      while not (Sched.Ready_list.finished rl) do
        let i = Sched.Ready_list.ready rl 0 in
        let pv = Sched.Rp_tracker.peak_if_scheduled t i Ir.Reg.Vgpr in
        let ps = Sched.Rp_tracker.peak_if_scheduled t i Ir.Reg.Sgpr in
        let dv = Sched.Rp_tracker.delta_if_scheduled t i Ir.Reg.Vgpr in
        let cur_v = Sched.Rp_tracker.current t Ir.Reg.Vgpr in
        Sched.Rp_tracker.schedule t i;
        Sched.Ready_list.schedule rl i;
        if Sched.Rp_tracker.peak t Ir.Reg.Vgpr <> pv then ok := false;
        if Sched.Rp_tracker.peak t Ir.Reg.Sgpr <> ps then ok := false;
        (* current moves by delta, except immediate dead-def cleanup *)
        if Sched.Rp_tracker.current t Ir.Reg.Vgpr > cur_v + dv then ok := false
      done;
      !ok)

let prop_tracker_reset =
  QCheck.Test.make ~name:"reset restores the initial state" ~count:50 (Tu.arb_graph ())
    (fun g ->
      let t = Sched.Rp_tracker.create g in
      let v0 = Sched.Rp_tracker.current t Ir.Reg.Vgpr in
      Array.iter (Sched.Rp_tracker.schedule t) (Ddg.Topo.order g);
      Sched.Rp_tracker.reset t;
      Sched.Rp_tracker.current t Ir.Reg.Vgpr = v0
      && Sched.Rp_tracker.peak t Ir.Reg.Vgpr = v0)

let prop_fits_within_consistent =
  QCheck.Test.make ~name:"fits_within agrees with peak_if_scheduled" ~count:60
    (Tu.arb_graph ()) (fun g ->
      let t = Sched.Rp_tracker.create g in
      let rl = Sched.Ready_list.create ~latency_aware:false g in
      let ok = ref true in
      while not (Sched.Ready_list.finished rl) do
        let i = Sched.Ready_list.ready rl 0 in
        let pv = Sched.Rp_tracker.peak_if_scheduled t i Ir.Reg.Vgpr in
        let ps = Sched.Rp_tracker.peak_if_scheduled t i Ir.Reg.Sgpr in
        if
          Sched.Rp_tracker.fits_within t i ~target_vgpr:pv ~target_sgpr:ps = false
          || Sched.Rp_tracker.fits_within t i ~target_vgpr:(pv - 1) ~target_sgpr:ps
        then ok := false;
        Sched.Rp_tracker.schedule t i;
        Sched.Ready_list.schedule rl i
      done;
      !ok)

let test_ready_list_latency_promotion () =
  let g = diamond_graph () in
  let rl = Sched.Ready_list.create ~latency_aware:true g in
  let sl = Ir.Opcode.default_latency Ir.Opcode.Smem_load in
  Alcotest.(check (list int)) "only root ready" [ 0 ] (Sched.Ready_list.ready_list rl);
  Sched.Ready_list.schedule rl 0;
  (* v_load waits on the s_load latency *)
  Alcotest.(check int) "nothing ready yet" 0 (Sched.Ready_list.ready_count rl);
  Alcotest.(check (list (pair int int))) "semi-ready v_load" [ (1, sl) ]
    (Sched.Ready_list.semi_ready rl);
  Alcotest.(check (option int)) "next event" (Some sl) (Sched.Ready_list.min_semi_ready_cycle rl);
  for _ = 1 to sl - 1 do
    Sched.Ready_list.stall rl
  done;
  Alcotest.(check (list int)) "v_load promoted at its cycle" [ 1 ]
    (Sched.Ready_list.ready_list rl)

let test_ready_list_rejects_unready () =
  let g = diamond_graph () in
  let rl = Sched.Ready_list.create ~latency_aware:true g in
  Alcotest.check_raises "scheduling unready raises"
    (Invalid_argument "Ready_list: instruction is not ready") (fun () ->
      Sched.Ready_list.schedule rl 5)

let prop_list_scheduler_valid =
  QCheck.Test.make ~name:"list scheduler output validates (all heuristics)" ~count:60
    (Tu.arb_graph ()) (fun g ->
      List.for_all
        (fun h ->
          let lat = Sched.List_scheduler.run ~latency_aware:true g h in
          let ord = Sched.List_scheduler.run ~latency_aware:false g h in
          Result.is_ok (Sched.Schedule.validate lat ~latency_aware:true)
          && Result.is_ok (Sched.Schedule.validate ord ~latency_aware:false)
          && Sched.Schedule.num_stalls ord = 0)
        Sched.Heuristic.all)

let prop_amd_scheduler_valid =
  QCheck.Test.make ~name:"AMD baseline output validates" ~count:60 (Tu.arb_graph ())
    (fun g ->
      let s = Sched.Amd_scheduler.run Tu.occ g in
      Result.is_ok (Sched.Schedule.validate s ~latency_aware:true))

let test_heuristic_best_deterministic () =
  let g = diamond_graph () in
  let rp = Sched.Rp_tracker.create g in
  let ctx = Sched.Heuristic.make_ctx g rp in
  Alcotest.(check int) "tie goes to lower id" 2
    (Sched.Heuristic.best Sched.Heuristic.Critical_path ctx [ 3; 2 ]);
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Heuristic.best: empty candidate list") (fun () ->
      ignore (Sched.Heuristic.best Sched.Heuristic.Critical_path ctx []))

let prop_eta_positive =
  QCheck.Test.make ~name:"heuristic eta strictly positive" ~count:40 (Tu.arb_graph ())
    (fun g ->
      let rp = Sched.Rp_tracker.create g in
      let ctx = Sched.Heuristic.make_ctx g rp in
      List.for_all
        (fun h ->
          let ok = ref true in
          for i = 0 to g.Ddg.Graph.n - 1 do
            if Sched.Heuristic.eta h ctx i <= 0.0 then ok := false
          done;
          !ok)
        Sched.Heuristic.all)

let test_cost_ordering () =
  let a = Sched.Cost.rp_of_peaks Tu.occ ~vgpr:24 ~sgpr:10 in
  let b = Sched.Cost.rp_of_peaks Tu.occ ~vgpr:28 ~sgpr:10 in
  Alcotest.(check bool) "higher occupancy is better" true (Sched.Cost.compare_rp a b < 0);
  Alcotest.(check bool) "scalar agrees" true (Sched.Cost.rp_scalar a < Sched.Cost.rp_scalar b);
  let c1 = { Sched.Cost.rp = a; length = 10 } in
  let c2 = { Sched.Cost.rp = a; length = 12 } in
  Alcotest.(check bool) "length tie-break" true (Sched.Cost.better_rp_then_length c1 c2);
  Alcotest.(check bool) "not better than itself" false (Sched.Cost.better_rp_then_length c1 c1)

let prop_cost_scalar_consistent =
  QCheck.Test.make ~name:"rp_scalar orders like compare_rp" ~count:200
    QCheck.(pair (pair (int_range 0 128) (int_range 0 128)) (pair (int_range 0 128) (int_range 0 128)))
    (fun ((v1, s1), (v2, s2)) ->
      let a = Sched.Cost.rp_of_peaks Tu.occ ~vgpr:v1 ~sgpr:s1 in
      let b = Sched.Cost.rp_of_peaks Tu.occ ~vgpr:v2 ~sgpr:s2 in
      compare (Sched.Cost.rp_scalar a) (Sched.Cost.rp_scalar b) = Sched.Cost.compare_rp a b
      || Sched.Cost.compare_rp a b = 0)

let test_amd_beats_pressure_trap () =
  (* The stencil trap: breadth-first orders keep every load live. AMD's
     greedy should do no worse on occupancy than the pure CP schedule. *)
  let rng = Support.Rng.create 11 in
  let g = Ddg.Graph.build (Workload.Shapes.stencil rng ~outputs:16 ~radius:4) in
  let amd = Sched.Cost.of_schedule Tu.occ (Sched.Amd_scheduler.run Tu.occ g) in
  let cp =
    Sched.Cost.of_schedule Tu.occ (Sched.List_scheduler.run g Sched.Heuristic.Critical_path)
  in
  Alcotest.(check bool) "amd occ >= cp occ" true
    (amd.Sched.Cost.rp.Sched.Cost.occupancy >= cp.Sched.Cost.rp.Sched.Cost.occupancy)

let prop_constrained_scheduler_sound =
  QCheck.Test.make ~name:"constrained scheduler meets its targets" ~count:60
    (Tu.arb_graph ()) (fun g ->
      (* Target = the LUC order's peaks: always achievable. *)
      let luc = Sched.List_scheduler.run_order g Sched.Heuristic.Last_use_count in
      let peaks = Sched.Rp_tracker.naive_peaks g luc in
      let tv = peaks Ir.Reg.Vgpr and ts = peaks Ir.Reg.Sgpr in
      match Sched.Constrained_scheduler.run g ~target_vgpr:tv ~target_sgpr:ts with
      | None -> true (* greedy may corner itself; padding is the fallback *)
      | Some s ->
          let p = Sched.Rp_tracker.naive_peaks g (Sched.Schedule.order s) in
          Result.is_ok (Sched.Schedule.validate s ~latency_aware:true)
          && p Ir.Reg.Vgpr <= tv
          && p Ir.Reg.Sgpr <= ts)

let test_constrained_scheduler_infeasible () =
  let g = diamond_graph () in
  (* A zero-VGPR budget is unsatisfiable: the scheduler must give up, not
     loop or emit a violating schedule. *)
  Alcotest.(check bool) "returns None" true
    (Sched.Constrained_scheduler.run g ~target_vgpr:0 ~target_sgpr:0 = None)

let test_constrained_not_longer_than_padded () =
  let rng = Support.Rng.create 3 in
  let g = Ddg.Graph.build (Workload.Shapes.stencil rng ~outputs:16 ~radius:4) in
  let luc = Sched.List_scheduler.run_order g Sched.Heuristic.Last_use_count in
  let peaks = Sched.Rp_tracker.naive_peaks g luc in
  let padded = Sched.Schedule.latency_pad g luc in
  match
    Sched.Constrained_scheduler.run g ~target_vgpr:(peaks Ir.Reg.Vgpr)
      ~target_sgpr:(peaks Ir.Reg.Sgpr)
  with
  | Some s ->
      Alcotest.(check bool) "greedy beats naive padding here" true
        (Sched.Schedule.length s <= Sched.Schedule.length padded)
  | None -> Alcotest.fail "expected the constrained greedy to succeed"

let prop_brute_force_brackets =
  QCheck.Test.make ~name:"LB <= exact optimum <= every heuristic" ~count:40
    (Tu.arb_graph ~max_size:10 ()) (fun g ->
      let opt_peak = Sched.Brute_force.min_peak_pressure g Ir.Reg.Vgpr in
      let opt_len = Sched.Brute_force.min_schedule_length g in
      Ddg.Lower_bounds.register_pressure g Ir.Reg.Vgpr <= opt_peak
      && Ddg.Lower_bounds.schedule_length g <= opt_len
      && List.for_all
           (fun h ->
             let s = Sched.List_scheduler.run g h in
             Sched.Rp_tracker.naive_peaks g (Sched.Schedule.order s) Ir.Reg.Vgpr >= opt_peak
             && Sched.Schedule.length s >= opt_len)
           Sched.Heuristic.all)

let test_brute_force_diamond () =
  let g = diamond_graph () in
  (* the diamond needs at most 2 VGPRs live at once (a plus one of x/y,
     then x and y) and its optimal length equals the padded order *)
  Alcotest.(check int) "exact min peak" 2 (Sched.Brute_force.min_peak_pressure g Ir.Reg.Vgpr);
  let sl = Ir.Opcode.default_latency Ir.Opcode.Smem_load in
  let vl = Ir.Opcode.default_latency Ir.Opcode.Vmem_load in
  Alcotest.(check int) "exact min length" (sl + vl + 4) (Sched.Brute_force.min_schedule_length g)

let test_brute_force_rejects_large () =
  let g = Ddg.Graph.build (Workload.Shapes.reduction (Support.Rng.create 1) ~items:32) in
  Alcotest.check_raises "min_peak_pressure size guard"
    (Invalid_argument "Brute_force.min_peak_pressure: region too large") (fun () ->
      ignore (Sched.Brute_force.min_peak_pressure g Ir.Reg.Vgpr));
  Alcotest.check_raises "min_schedule_length size guard"
    (Invalid_argument "Brute_force.min_schedule_length: region too large") (fun () ->
      ignore (Sched.Brute_force.min_schedule_length g))


let suite =
  [
    Alcotest.test_case "schedule of order" `Quick test_schedule_of_order;
    Alcotest.test_case "schedule violations" `Quick test_schedule_violations;
    Alcotest.test_case "latency pad minimal" `Quick test_latency_pad_minimal;
    Alcotest.test_case "ready list promotion" `Quick test_ready_list_latency_promotion;
    Alcotest.test_case "ready list rejects unready" `Quick test_ready_list_rejects_unready;
    Alcotest.test_case "heuristic best" `Quick test_heuristic_best_deterministic;
    Alcotest.test_case "cost ordering" `Quick test_cost_ordering;
    Alcotest.test_case "amd vs pressure trap" `Quick test_amd_beats_pressure_trap;
    Alcotest.test_case "constrained scheduler infeasible" `Quick test_constrained_scheduler_infeasible;
    Alcotest.test_case "constrained beats padding" `Quick test_constrained_not_longer_than_padded;
    Alcotest.test_case "brute force diamond" `Quick test_brute_force_diamond;
    Alcotest.test_case "brute force size guards" `Quick test_brute_force_rejects_large;
  ]
  @ Tu.qtests
      [
        prop_latency_pad_valid;
        prop_tracker_matches_naive;
        prop_tracker_predictions;
        prop_tracker_reset;
        prop_fits_within_consistent;
        prop_list_scheduler_valid;
        prop_amd_scheduler_valid;
        prop_constrained_scheduler_sound;
        prop_brute_force_brackets;
        prop_eta_positive;
        prop_cost_scalar_consistent;
      ]
