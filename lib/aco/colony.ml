(* The sequential colony loop, shared by every CPU backend (the two-pass
   [Seq_aco] and the weighted-sum [Weighted_aco]): iterate ants until the
   lower bound is reached or [termination] improvement-free iterations
   pass. Generic in the cost (RP scalar in pass 1, length in pass 2, the
   weighted sum in the single-pass backend) and in the artifact kept for
   the best solution (order in pass 1, schedule in pass 2).

   The loop body is the byte-identity anchor of the engine refactor: it
   is the historical [Seq_aco.run_pass] verbatim (plus the
   [allow_optional_stalls] parameter the weighted colony sets to false,
   and the pheromone writes routed through [Pheromone_policy] — whose
   [As] policy reproduces the historical calls exactly), so RNG draws,
   work accounting and the measured minor-words window are exactly those
   of the pre-engine driver. *)
let run_pass (type a) ~params ~rng ~ants ~pheromone ~policy ~mode
    ~(cost_of_ant : Ant.t -> int) ~(artifact_of_ant : Ant.t -> a) ~allow_optional_stalls
    ~budget_work ~metrics ~pass_label ~initial_cost ~(initial_order : int array)
    ~(initial_artifact : a) ~lb_cost ~termination : a * int * Engine.Types.pass_stats =
  let open Params in
  (* The initial (heuristic) schedule is the global best at the start:
     the policy resets the table and biases it toward that solution. *)
  policy.Pheromone_policy.init pheromone ~initial_order ~initial_cost;
  (* Telemetry scratch sits before the minor-words snapshot so the
     reported allocation stays byte-identical with metering off. *)
  let metering = Obs.Metrics.enabled metrics in
  let m_best = if metering then pass_label ^ ".best_cost" else "" in
  let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
  (* Convergence series: entry 0 is the initial cost, entry [k] the best
     cost after the [k]th iteration. *)
  let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
  let bc_len = ref 1 in
  (* Pre-bind the ant launcher so the per-iteration closure below
     captures exactly the free variables the historical driver's did
     ([allow_optional_stalls] was a literal there, not a capture): the
     closure is allocated inside the measured window once per iteration,
     so an extra captured word would show up in [minor_words]. *)
  let start_ant ant ~rng mode =
    Ant.start ant ~rng ~heuristic:params.heuristic ~allow_optional_stalls mode
  in
  (* Candidate meters are cumulative on each ant's tracker; the pass
     reports deltas. Both sums sit outside the minor-words window. *)
  let sum_meters () =
    let scored = ref 0 and pruned = ref 0 in
    for k = 0 to Array.length ants - 1 do
      let ant = Array.unsafe_get ants k in
      scored := !scored + Ant.scored_candidates ant;
      pruned := !pruned + Ant.pruned_candidates ant
    done;
    (!scored, !pruned)
  in
  let scored_before, pruned_before = sum_meters () in
  let minor_before = Support.Perfcount.minor_words () in
  let best_cost = ref initial_cost in
  let best = ref initial_artifact in
  let improved = ref false in
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  let ants_total = ref 0 in
  let n = Pheromone.size pheromone in
  (* The compile budget is expressed in abstract work units — the same
     currency {!Ant.work} charges — so the sequential driver stays free
     of any wall-clock notion; the pipeline converts nanoseconds to work
     via its CPU cost model. *)
  while
    !best_cost > lb_cost && !no_improve < termination && !iterations < params.max_iterations
    && !work < budget_work
  do
    incr iterations;
    let iter_best_cost = ref max_int in
    let iter_best = ref None in
    Array.iter
      (fun ant ->
        start_ant ant ~rng:(Support.Rng.split rng) mode;
        Ant.run_to_completion ant ~pheromone;
        ants_total := !ants_total + 1;
        work := !work + Ant.work ant;
        if Ant.status ant = Ant.Finished then begin
          let c = cost_of_ant ant in
          if c < !iter_best_cost then begin
            iter_best_cost := c;
            iter_best := Some (Ant.order ant, artifact_of_ant ant)
          end
        end)
      ants;
    (* Table upkeep: the policy evaporates, deposits and (for MMAS)
       clamps / restarts; the driver keeps ownership of the global best
       and the termination counter. *)
    work := !work + (((n + 1) * n) / 8) + n;
    (match !iter_best with
    | Some (order, art) ->
        policy.Pheromone_policy.update pheromone ~winner_order:order
          ~winner_cost:!iter_best_cost;
        if !iter_best_cost < !best_cost then begin
          best_cost := !iter_best_cost;
          best := art;
          improved := true;
          no_improve := 0
        end
        else incr no_improve
    | None ->
        policy.Pheromone_policy.update pheromone
          ~winner_order:Pheromone_policy.no_order ~winner_cost:max_int;
        incr no_improve);
    bc_buf.(!bc_len) <- !best_cost;
    incr bc_len;
    if metering then begin
      Obs.Metrics.push metrics m_best (float_of_int !best_cost);
      Obs.Metrics.push metrics m_entropy (Pheromone.row_entropy pheromone)
    end
  done;
  (* [minor_delta] first: the series copy must stay outside the measured
     window so the stat is byte-identical with metering off. *)
  let minor_delta = Support.Perfcount.minor_words () -. minor_before in
  let scored_after, pruned_after = sum_meters () in
  let best_costs = Array.sub bc_buf 0 !bc_len in
  ( !best,
    !best_cost,
    {
      Engine.Types.no_pass with
      Engine.Types.invoked = true;
      iterations = !iterations;
      ants_simulated = !ants_total;
      work = !work;
      improved = !improved;
      hit_lower_bound = !best_cost <= lb_cost;
      aborted_budget = budget_work < max_int && !work >= budget_work;
      best_costs;
      minor_words = minor_delta;
      scored_candidates = scored_after - scored_before;
      pruned_candidates = pruned_after - pruned_before;
    } )
