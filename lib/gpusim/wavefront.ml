type t = {
  config : Config.t;
  ants : Aco.Ant.t array;
  params : Aco.Params.t;
  heuristic : Sched.Heuristic.kind;
  allow_optional : bool;
  arena_words : int;
  fault_at : int array;  (* per-lane injected fault step, -1 = none *)
  maxima : int array;  (* per-path-rank max op cost of one lockstep step *)
}

let create ?shared config graph params ~heuristic ~allow_optional_stalls =
  let lanes = config.Config.target.Machine.Target.wavefront_size in
  let shared = match shared with Some s -> s | None -> Aco.Ant.prepare_shared graph in
  let ints, floats = Aco.Ant.arena_demand shared in
  let arena = Support.Arena.create ~ints:(lanes * ints) ~floats:(lanes * floats) in
  {
    config;
    ants = Array.init lanes (fun _ -> Aco.Ant.create ~shared ~arena graph params);
    params;
    heuristic;
    allow_optional = allow_optional_stalls;
    arena_words = Support.Arena.words arena;
    fault_at = Array.make lanes (-1);
    maxima = Array.make 5 0;
  }

let lanes t = Array.length t.ants

let arena_words t = t.arena_words

type outcome = {
  time_ns : float;
  work : int;
  serialized_ops : int;
  single_path_ops : int;
  steps : int;
  ant_steps : int;
  selections : int;
  finished : Aco.Ant.t list;
  hung : bool;
  quarantined : int;
  mem_faults : int;
}

let hang_outcome =
  {
    time_ns = Faults.hang_penalty_ns;
    work = 0;
    serialized_ops = 0;
    single_path_ops = 0;
    steps = 0;
    ant_steps = 0;
    selections = 0;
    finished = [];
    hung = true;
    quarantined = 0;
    mem_faults = 0;
  }

let run_iteration ?(faults = Faults.disabled) t ~rng ~mode ~pheromone =
  let config = t.config in
  let opts = config.Config.opts in
  if Faults.enabled faults && Faults.wavefront_hang faults then hang_outcome
  else begin
  Array.iter
    (fun ant ->
      Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:t.heuristic
        ~allow_optional_stalls:t.allow_optional mode)
    t.ants;
  (* Transient lane faults are decided up front (one trial per lane per
     iteration) and strike at an injector-chosen construction step: the
     corrupted lane's candidate can no longer be trusted, so the lane is
     killed — quarantined for the iteration. Partial work is still
     charged: the fault does not refund the time already spent. *)
  let faults_on = Faults.enabled faults in
  if faults_on then begin
    let graph_n = Aco.Pheromone.size pheromone in
    for i = 0 to Array.length t.ants - 1 do
      t.fault_at.(i) <-
        (if Faults.lane_fault faults then 1 + Faults.pick faults (max 1 graph_n) else -1)
    done
  end;
  let quarantined = ref 0 in
  let mem_faults = ref 0 in
  let time = ref 0.0 in
  let serialized = ref 0 in
  let single = ref 0 in
  let steps = ref 0 in
  let ant_steps = ref 0 in
  let selections = ref 0 in
  let any_active () = Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Active) t.ants in
  while any_active () do
    incr steps;
    if faults_on then
      Array.iteri
        (fun i ant ->
          if t.fault_at.(i) = !steps && Aco.Ant.status ant = Aco.Ant.Active then begin
            Aco.Ant.kill ant;
            incr quarantined
          end)
        t.ants;
    let force_explore =
      if opts.Config.wavefront_level_explore then
        (* exploit on heads: [step] received [Some (not coin)] *)
        if Support.Rng.bool rng t.params.Aco.Params.q0 then 0 else 1
      else -1
    in
    let ready_limit =
      match opts.Config.ready_list_limiting with
      | `Off -> 0
      | (`Min | `Mid) as mode ->
          let mn = ref max_int and mx = ref 0 in
          Array.iter
            (fun ant ->
              if Aco.Ant.status ant = Aco.Ant.Active then begin
                let c = Aco.Ant.ready_count ant in
                if c < !mn then mn := c;
                if c > !mx then mx := c
              end)
            t.ants;
          if !mn = max_int then 0
          else max 1 (match mode with `Min -> !mn | `Mid -> (!mn + !mx + 1) / 2)
    in
    Array.fill t.maxima 0 5 0;
    let reads_max = ref 0 and reads_sum = ref 0 and stepped = ref 0 in
    Array.iter
      (fun ant ->
        if Aco.Ant.status ant = Aco.Ant.Active then begin
          Aco.Ant.step_hot ant ~pheromone ~force_explore ~ready_limit;
          let rank = Aco.Ant.last_rank ant in
          let sc = Aco.Ant.last_scanned ant and su = Aco.Ant.last_succs ant in
          let cost = Divergence.cost_of ~ready_scanned:sc ~succs_updated:su in
          if cost > t.maxima.(rank) then t.maxima.(rank) <- cost;
          let reads = Divergence.reads_of ~ready_scanned:sc ~succs_updated:su in
          if reads > !reads_max then reads_max := reads;
          reads_sum := !reads_sum + reads;
          if rank <= 1 then incr selections;
          incr stepped
        end)
      t.ants;
    ant_steps := !ant_steps + !stepped;
    let serialized_step = Divergence.serialized_of_maxima t.maxima in
    let transactions =
      Mem_model.step_transactions_acc config ~active:!stepped ~reads_max:!reads_max
        ~reads_sum:!reads_sum
    in
    (* A memory-transaction error forces a replay of the step's
       transactions: same data, double the time. *)
    let transactions =
      if faults_on && transactions > 0 && Faults.mem_fault faults then begin
        incr mem_faults;
        2 * transactions
      end
      else transactions
    in
    time :=
      !time
      +. (float_of_int serialized_step *. config.Config.gpu_ns_per_op)
      +. (float_of_int transactions *. config.Config.mem_transaction_ns);
    serialized := !serialized + serialized_step;
    single := !single + Divergence.max_single_of_maxima t.maxima;
    (* Early wavefront termination: a finisher used the fewest cycles any
       lane of this wavefront can still achieve, so the rest cannot win
       the iteration (Section V-B). *)
    if
      opts.Config.early_wavefront_termination
      && Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Finished) t.ants
    then
      Array.iter (fun a -> if Aco.Ant.status a = Aco.Ant.Active then Aco.Ant.kill a) t.ants
  done;
  let work = Array.fold_left (fun acc a -> acc + Aco.Ant.work a) 0 t.ants in
  let finished =
    Array.fold_left
      (fun acc a -> if Aco.Ant.status a = Aco.Ant.Finished then a :: acc else acc)
      [] t.ants
    |> List.rev
  in
  {
    time_ns = !time;
    work;
    serialized_ops = !serialized;
    single_path_ops = !single;
    steps = !steps;
    ant_steps = !ant_steps;
    selections = !selections;
    finished;
    hung = false;
    quarantined = !quarantined;
    mem_faults = !mem_faults;
  }
  end
