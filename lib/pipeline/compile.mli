(** The per-region and per-suite compile flow of Section VI-A.

    Every region is scheduled by the AMD heuristic; when the heuristic
    schedule is not provably optimal (its RP cost or length is above the
    lower bound), the ACO scheduler is invoked. Which ACO — a backend
    registered in {!Engine.Registry} — is chosen per region by the
    configured {!Engine.Dispatch} policy; the default compiles with the
    parallel GPU-model backend (the product compiler) and rides the
    sequential backend along from the same starting points (the timing
    baseline of Tables 3.a/3.b and 5).

    ACO is run *ungated* here while each region's gap — heuristic
    schedule length minus the length lower bound — is recorded.
    {!Report} then synthesizes the compiler's output for any
    cycle-threshold setting (the tuned default, and Table 7's sweep)
    without recompiling: a region whose gap is below the threshold is
    treated as never having invoked ACO at all (Section VI-F calls this
    "filtering out unpromising scheduling regions"). *)

type config = {
  occ : Machine.Occupancy.t;
  gpu : Gpusim.Config.t;
  params : Aco.Params.t;
  filters : Filters.config;
  robust : Robust.config;  (** budgets, watchdog deadline, retry allowance *)
  dispatch : Engine.Dispatch.policy;  (** which backend(s) compile each region *)
  seq_seed : int;
  par_seed : int;  (** seed for every non-["seq"] backend *)
  run_sequential : bool;
      (** also time the CPU baseline (skipped when the dispatch already
          runs ["seq"] as a product candidate) *)
}

val ensure_backends : unit -> unit
(** Register the product backends (["seq"], ["par"], ["weighted"]) in
    {!Engine.Registry}. Idempotent; {!run_region} calls it, so callers
    only need it to enumerate backends before compiling. *)

val make_config :
  ?gpu:Gpusim.Config.t ->
  ?filters:Filters.config ->
  ?robust:Robust.config ->
  ?fault_rate:float ->
  ?fault_seed:int ->
  ?compile_budget_ms:float ->
  ?max_retries:int ->
  ?dispatch:Engine.Dispatch.policy ->
  unit ->
  config
(** Consistent defaults: the sequential ant count equals the parallel
    thread count (the paper compares equal colonies), the ILP pass is
    ungated for later synthesis, and [dispatch] is
    {!Engine.Dispatch.default} (the parallel backend everywhere).

    Robustness knobs layer on top of [robust] (default {!Robust.default},
    i.e. fault-free and unbounded): [fault_rate] installs
    {!Gpusim.Config.uniform_faults} on [gpu] (seeded by [fault_seed]),
    [compile_budget_ms] installs {!Robust.budgets_of_ms}, and
    [max_retries] overrides the retry allowance. *)

type backend_run = {
  backend : string;  (** registry name *)
  caps : Engine.Types.caps;
  result : Engine.Types.result;  (** guarded: [result.schedule] is valid *)
  run_pass1_time_ns : float;
      (** simulated pass time — the backend's own clock when it has a
          time model, {!Gpusim.Cpu_model} over its work counter
          otherwise *)
  run_pass2_time_ns : float;
  run_degradation : Robust.degradation;  (** this run's own ledger entry *)
  run_retries : int;  (** faulted iterations re-run across both passes *)
  run_fault_counts : Engine.Types.fault_counts;
}

type region_report = {
  region_name : string;
  n : int;
  size_category : int;
  length_lb : int;
  heuristic_cost : Sched.Cost.t;
  heuristic_order : int array;
  cp_cost : Sched.Cost.t;  (** Critical-Path schedule (sensitivity check) *)
  pass1_invoked : bool;  (** of the product run *)
  pass2_invoked : bool;  (** of the product run *)
  pass2_gap : int;
      (** heuristic schedule length minus the length lower bound — the
          quantity the cycle-threshold filter gates ACO on (known before
          any ACO work is spent on the region) *)
  aco_cost : Sched.Cost.t;  (** the product backend's result, before filtering *)
  aco_order : int array;
  pass1_only_cost : Sched.Cost.t;  (** product if pass 2 were skipped *)
  pass1_only_order : int array;
  product_backend : string;
      (** the backend whose schedule ships — the dispatch winner *)
  runs : backend_run list;
      (** every backend that compiled this region, dispatch candidates
          first (in candidate order), then the ride-along sequential
          baseline when [run_sequential] added one *)
  degradation : Robust.degradation;  (** the product run's ledger entry *)
  retries : int;  (** of the product run *)
  fault_counts : Gpusim.Faults.counts;  (** of the product run *)
}

type kernel_report = {
  kernel : Workload.Suite.kernel;
  regions : region_report list;  (** in [kernel.regions] order *)
}

type suite_report = {
  suite : Workload.Suite.t;
  compile_config : config;
  kernels : kernel_report list;
}

(** {2 Per-backend accessors}

    [runs] is keyed by backend name; these wrap the common lookups. The
    [seq_*]/[par_*] accessors keep the shape of the pre-engine report:
    an absent ["par"] run reads as {!Engine.Types.no_pass} / [0.0], an
    absent ["seq"] run as [None] / [0.0]. *)

val find_run : region_report -> string -> backend_run option

val product_run : region_report -> backend_run
(** The run behind [product_backend] (always present). *)

val seq_pass1 : region_report -> Aco.Seq_aco.pass_stats option
val seq_pass2 : region_report -> Aco.Seq_aco.pass_stats option
val par_pass1 : region_report -> Gpusim.Par_aco.pass_stats
val par_pass2 : region_report -> Gpusim.Par_aco.pass_stats
val seq_pass1_time_ns : region_report -> float
val seq_pass2_time_ns : region_report -> float
val par_pass1_time_ns : region_report -> float
val par_pass2_time_ns : region_report -> float

val heuristic_fallback : Aco.Setup.t -> Engine.Types.result
(** The AMD heuristic schedule dressed up as an ACO result — what a
    backend that trapped is replaced by. *)

val run_region :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?ctx:Engine.Region_ctx.t ->
  ?budget_ns:float ->
  config ->
  name:string ->
  Ir.Region.t ->
  region_report
(** Total: always yields a report whose [aco_order] reconstructs into a
    valid schedule. Faults are retried, over-budget passes keep their
    best-so-far, and a backend that traps (or emits an invalid schedule)
    is replaced by the AMD heuristic schedule — the failure mode is
    recorded in the run's [run_degradation], never raised. When the
    dispatch races several backends, the product is the best cost
    (occupancy first, then length; the earlier candidate wins ties).

    [ctx] supplies the region's analysis context (from {!Analysis} or a
    prior {!Engine.Region_ctx.of_region}); without it one is computed
    here. Either way the analyses run once and every raced backend and
    the ride-along baseline consume the same context. [budget_ns]
    overrides the {!Robust.budget_for} size-class budget — the executor
    computes it on the job so a region's budget never depends on which
    domain compiles it.

    [trace] / [metrics] (default disabled, a true no-op) attach the
    flight recorder: the region becomes a span on the driver track
    enclosing the traced backends' passes, the product's degradation
    becomes an instant via {!Robust.observe}, and every backend's
    per-iteration series is recorded under a ["<name>.<backend>."]
    prefix.

    [log] (default disabled) emits one [compile.backend] debug entry
    per raced candidate and a [compile.region] info entry for the
    product; a caller that binds a request id via
    {!Obs.Log.with_fields} sees it stamped on every backend-pass
    entry. *)

val run_suite :
  ?progress:(string -> unit) ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?cache:Analysis.t ->
  config ->
  Workload.Suite.t ->
  suite_report
(** Compile every kernel of the suite (kernels shared between benchmarks
    are compiled once — and once per backend the dispatch runs).
    [progress] receives one message per kernel; [trace] / [metrics] are
    threaded to every {!run_region}. [cache] routes analysis contexts
    through the content-addressed {!Analysis} cache, so structurally
    repeated regions are analysed once; the report is unchanged by the
    cache (see {!Report_digest}). Sequential; {!Executor.run_suite} is
    the multi-domain entry point. *)

val hot_region : kernel_report -> region_report
(** The region backing the kernel's hot loop. Total for any [hot_index]:
    out-of-range indices clamp to the nearest region (raises
    [Invalid_argument] only for a kernel with no regions, which the
    workload generator never produces). *)

val find_kernel : suite_report -> Workload.Suite.benchmark -> kernel_report
(** Kernel report backing a benchmark (kernels are compiled once even
    when shared). *)
