type t = {
  graph : Ddg.Graph.t;
  latency_aware : bool;
  unsched_preds : int array;
  earliest : int array;  (* valid once unsched_preds reaches 0 *)
  sched_cycle : int array;  (* -1 if unscheduled *)
  ready : int array;  (* compact prefix of length ready_n *)
  pos_in_ready : int array;  (* -1 when not in ready *)
  mutable ready_n : int;
  mutable pending : (int * int) list;  (* (ready_cycle, instr), kept sorted *)
  mutable cycle : int;
  mutable scheduled_n : int;
}

let setup t =
  for i = 0 to t.graph.Ddg.Graph.n - 1 do
    t.unsched_preds.(i) <- Ddg.Graph.num_preds t.graph i;
    t.earliest.(i) <- 0;
    t.sched_cycle.(i) <- -1;
    t.pos_in_ready.(i) <- -1
  done;
  t.ready_n <- 0;
  t.pending <- [];
  t.cycle <- 0;
  t.scheduled_n <- 0;
  for i = 0 to t.graph.Ddg.Graph.n - 1 do
    if t.unsched_preds.(i) = 0 then begin
      t.ready.(t.ready_n) <- i;
      t.pos_in_ready.(i) <- t.ready_n;
      t.ready_n <- t.ready_n + 1
    end
  done

let create ?(latency_aware = true) (graph : Ddg.Graph.t) =
  let n = graph.n in
  let t =
    {
      graph;
      latency_aware;
      unsched_preds = Array.make n 0;
      earliest = Array.make n 0;
      sched_cycle = Array.make n (-1);
      ready = Array.make n 0;
      pos_in_ready = Array.make n (-1);
      ready_n = 0;
      pending = [];
      cycle = 0;
      scheduled_n = 0;
    }
  in
  setup t;
  t

let reset = setup

let current_cycle t = t.cycle
let ready_count t = t.ready_n
let ready t k = t.ready.(k)

let ready_list t =
  let rec loop k acc = if k < 0 then acc else loop (k - 1) (t.ready.(k) :: acc) in
  loop (t.ready_n - 1) []

let semi_ready t = List.map (fun (c, i) -> (i, c)) t.pending

let min_semi_ready_cycle t =
  match t.pending with [] -> None | (c, _) :: _ -> Some c

let push_ready t i =
  t.ready.(t.ready_n) <- i;
  t.pos_in_ready.(i) <- t.ready_n;
  t.ready_n <- t.ready_n + 1

let remove_ready t i =
  let p = t.pos_in_ready.(i) in
  if p < 0 then invalid_arg "Ready_list: instruction is not ready";
  let last = t.ready_n - 1 in
  let moved = t.ready.(last) in
  t.ready.(p) <- moved;
  t.pos_in_ready.(moved) <- p;
  t.ready_n <- last;
  t.pos_in_ready.(i) <- -1

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: rest as l -> if fst x <= fst y then x :: l else y :: insert_sorted x rest

let promote t =
  (* Move pending instructions whose ready cycle has arrived. *)
  let rec loop = function
    | (c, i) :: rest when c <= t.cycle ->
        push_ready t i;
        loop rest
    | rest -> t.pending <- rest
  in
  loop t.pending

let schedule t i =
  remove_ready t i;
  t.sched_cycle.(i) <- t.cycle;
  t.scheduled_n <- t.scheduled_n + 1;
  Array.iter
    (fun (j, lat) ->
      t.unsched_preds.(j) <- t.unsched_preds.(j) - 1;
      let lat = if t.latency_aware then max lat 1 else 1 in
      t.earliest.(j) <- max t.earliest.(j) (t.cycle + lat);
      if t.unsched_preds.(j) = 0 then
        (* Queue with its ready cycle; [promote] moves it across once the
           current cycle reaches that point. *)
        t.pending <- insert_sorted (t.earliest.(j), j) t.pending)
    t.graph.Ddg.Graph.succs.(i);
  t.cycle <- t.cycle + 1;
  promote t

let stall t =
  t.cycle <- t.cycle + 1;
  promote t

let scheduled_count t = t.scheduled_n
let finished t = t.scheduled_n = t.graph.Ddg.Graph.n
