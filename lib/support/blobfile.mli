(** Crash-safe on-disk blobs for the compile service's persisted state.

    A blob file is a one-line header — magic, [kind], [version], payload
    length and MD5 — followed by the raw payload. The contract is the
    robustness one: {!save} is atomic (write to a temp file in the same
    directory, then rename), and {!load} never raises on bad input — a
    missing file, a stale version, a foreign kind, a truncated payload
    or a flipped bit all come back as a typed error so the caller can
    count the event and start cold.

    The payload is opaque bytes; callers bring their own serialization
    (the serve loop uses [Marshal], which is exactly why the version
    field exists — any change to the marshaled types must bump it). *)

type error =
  | Missing  (** no file at the path *)
  | Bad_header of string  (** not a blob file, or a mangled header *)
  | Wrong_kind of { expected : string; got : string }
  | Version_skew of { expected : int; got : int }
      (** written by an older (or newer) build; the payload layout
          cannot be trusted *)
  | Corrupt of string  (** length or checksum mismatch — truncation or bit rot *)

val error_to_string : error -> string

val save : kind:string -> version:int -> string -> string -> unit
(** [save ~kind ~version path payload] writes atomically; the file is
    either the complete new blob or untouched. [kind] must be a single
    token (no spaces/newlines). Raises [Sys_error] only for real I/O
    failures (permissions, missing directory). *)

val load : kind:string -> version:int -> string -> (string, error) result
(** Read back a payload saved with the same [kind] and [version]. *)
