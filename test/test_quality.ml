(* Schedule-quality telemetry: ledger records derived from compiled
   regions, the JSONL round-trip, corruption tolerance on load, and the
   corpus summary `gpuaco report` renders. *)

let compile_cfg () =
  {
    (Pipeline.Compile.make_config ~gpu:Tu.test_gpu ())
    with
    Pipeline.Compile.params =
      {
        Tu.test_params with
        Aco.Params.ants_per_iteration = Gpusim.Config.threads Tu.test_gpu;
        pass2_cycle_threshold = 1;
      };
  }

let sample_record i =
  {
    Pipeline.Quality.q_region = Printf.sprintf "k%d/r0" i;
    q_n = 20 + i;
    q_backend = "par";
    q_rung = "clean";
    q_length = 40 + i;
    q_length_lb = 40;
    q_gap = i;
    q_occupancy = 8;
    q_occ_target = 10;
    q_aprp_vgpr = 64;
    q_aprp_sgpr = 32;
    q_iterations = 16;
    q_iters_to_best = 9;
    q_improved = i mod 2 = 0;
  }

let test_iters_to_best () =
  Alcotest.(check int) "empty series" 0 (Pipeline.Quality.iters_to_best [||]);
  Alcotest.(check int) "monotone descent ends at last improvement" 3
    (Pipeline.Quality.iters_to_best [| 9; 7; 7; 5; 5; 5 |]);
  Alcotest.(check int) "flat series converged immediately" 0
    (Pipeline.Quality.iters_to_best [| 4; 4; 4 |]);
  Alcotest.(check int) "first index of the minimum wins" 1
    (Pipeline.Quality.iters_to_best [| 8; 3; 6; 3 |])

let test_of_region () =
  let region = Tu.random_region ~max_size:25 17 in
  let report = Pipeline.Compile.run_region (compile_cfg ()) ~name:"q/r" region in
  let r = Pipeline.Quality.of_region report in
  Alcotest.(check string) "region name" "q/r" r.Pipeline.Quality.q_region;
  Alcotest.(check int) "size" (Ir.Region.size region) r.Pipeline.Quality.q_n;
  Alcotest.(check int) "gap is length - lb"
    (r.Pipeline.Quality.q_length - r.Pipeline.Quality.q_length_lb)
    r.Pipeline.Quality.q_gap;
  Alcotest.(check bool) "lower bound holds" true (r.Pipeline.Quality.q_gap >= 0);
  Alcotest.(check string) "rung from the ledger"
    (Pipeline.Robust.degradation_label report.Pipeline.Compile.degradation)
    r.Pipeline.Quality.q_rung;
  Alcotest.(check bool) "iterations positive" true
    (r.Pipeline.Quality.q_iterations > 0);
  Alcotest.(check bool) "iters_to_best within the run" true
    (r.Pipeline.Quality.q_iters_to_best >= 0
    && r.Pipeline.Quality.q_iters_to_best <= r.Pipeline.Quality.q_iterations)

let test_json_roundtrip () =
  List.iter
    (fun i ->
      let r = sample_record i in
      let line = Pipeline.Quality.to_json_line r in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Pipeline.Quality.of_json_line line with
      | Some r' -> Alcotest.(check bool) "round-trips" true (r = r')
      | None -> Alcotest.failf "round-trip failed on %s" line)
    [ 0; 1; 7 ];
  (* a region name with JSON-hostile bytes survives the trip *)
  let hostile = { (sample_record 0) with Pipeline.Quality.q_region = "k\"0\\r\n1" } in
  (match Pipeline.Quality.of_json_line (Pipeline.Quality.to_json_line hostile) with
  | Some r' ->
      Alcotest.(check string) "escaped name round-trips" "k\"0\\r\n1"
        r'.Pipeline.Quality.q_region
  | None -> Alcotest.fail "hostile name broke the round-trip");
  (* malformed and foreign lines are None, not exceptions *)
  List.iter
    (fun line ->
      match Pipeline.Quality.of_json_line line with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed line %S" line)
    [ ""; "{"; "not json"; "{\"region\": \"x\"}"; "[1,2,3]" ]

let test_ledger_load_skips_torn_lines () =
  let file = Filename.temp_file "quality" ".jsonl" in
  Pipeline.Quality.append ~file [ sample_record 1; sample_record 2 ];
  (* simulate a torn write mid-stream, then keep appending *)
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "{\"q_region\": \"torn";
  output_string oc "\n";
  close_out oc;
  Pipeline.Quality.append ~file [ sample_record 3 ];
  let records = Pipeline.Quality.load ~file in
  Alcotest.(check int) "torn line skipped, rest kept" 3 (List.length records);
  Alcotest.(check (list string)) "order preserved" [ "k1/r0"; "k2/r0"; "k3/r0" ]
    (List.map (fun r -> r.Pipeline.Quality.q_region) records);
  Sys.remove file

let test_summary () =
  let records = List.map sample_record [ 0; 1; 2; 3 ] in
  let s = Pipeline.Quality.summarize records in
  Alcotest.(check int) "count" 4 s.Pipeline.Quality.s_count;
  Alcotest.(check int) "all clean" 4 s.Pipeline.Quality.s_clean;
  Alcotest.(check int) "regions at the lower bound" 1 s.Pipeline.Quality.s_at_lb;
  Alcotest.(check (float 1e-9)) "mean gap" 1.5 s.Pipeline.Quality.s_mean_gap;
  Alcotest.(check int) "max gap" 3 s.Pipeline.Quality.s_max_gap;
  Alcotest.(check string) "max gap region" "k3/r0" s.Pipeline.Quality.s_max_gap_region;
  Alcotest.(check int) "occupancy target missed everywhere" 0
    s.Pipeline.Quality.s_occ_met;
  Alcotest.(check int) "improved half the corpus" 2 s.Pipeline.Quality.s_improved;
  let text = Pipeline.Quality.render_summary ~top:2 records in
  Alcotest.(check bool) "summary names the corpus size" true
    (String.length text > 0
    &&
    let contains needle =
      let nh = String.length text and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
      go 0
    in
    contains "4 region(s)" && contains "k3/r0");
  (* the empty corpus renders without dividing by zero *)
  let empty = Pipeline.Quality.summarize [] in
  Alcotest.(check int) "empty count" 0 empty.Pipeline.Quality.s_count;
  ignore (Pipeline.Quality.render_summary [])

let test_summary_by_backend () =
  let records =
    List.map sample_record [ 0; 1; 2 ]
    @ List.map
        (fun i -> { (sample_record i) with Pipeline.Quality.q_backend = "mmas" })
        [ 3; 4 ]
  in
  let by_backend = Pipeline.Quality.summarize_by_backend records in
  Alcotest.(check (list string))
    "one summary per backend, sorted" [ "mmas"; "par" ] (List.map fst by_backend);
  let counts = List.map (fun (_, s) -> s.Pipeline.Quality.s_count) by_backend in
  Alcotest.(check (list int)) "records split by backend" [ 2; 3 ] counts;
  let text = Pipeline.Quality.render_summary records in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mixed corpus renders the per-backend split" true
    (contains "per backend:" && contains "mmas" && contains "par");
  (* a single-backend corpus keeps the flat rendering *)
  let flat = Pipeline.Quality.render_summary (List.map sample_record [ 0; 1 ]) in
  let flat_contains needle =
    let nh = String.length flat and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub flat i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no split for one backend" false (flat_contains "per backend:")

let suite =
  [
    Alcotest.test_case "iters_to_best" `Quick test_iters_to_best;
    Alcotest.test_case "record derived from a compiled region" `Quick test_of_region;
    Alcotest.test_case "JSONL round-trip and malformed lines" `Quick
      test_json_roundtrip;
    Alcotest.test_case "ledger load skips torn lines" `Quick
      test_ledger_load_skips_torn_lines;
    Alcotest.test_case "corpus summary" `Quick test_summary;
    Alcotest.test_case "per-backend summary split" `Quick test_summary_by_backend;
  ]
