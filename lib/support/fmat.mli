(** Unboxed float64 matrices for the ant data plane.

    A row-major Bigarray with the row stride rounded up to a cache line
    (8 doubles), so rows never share a line. Hot loops address cells by
    flat index: bind [row_base t r] once, then [get]/[set] relative to
    it — both compile to raw unboxed float loads/stores with no bounds
    checks, so callers must stay within [0, rows t * stride t).

    Padding columns ([cols] to [stride - 1] of each row) always hold
    [0.0]; every operation here preserves that invariant. *)

type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { rows : int; cols : int; stride : int; data : mat }

val stride_of_cols : int -> int
(** Smallest multiple of 8 that is [>= cols] (one cache line = 8
    doubles). *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix with [stride = stride_of_cols cols]. *)

val rows : t -> int
val cols : t -> int
val stride : t -> int

val words : t -> int
(** Backing-store capacity in doubles (includes padding). *)

val row_base : t -> int -> int
(** [row_base t r] is the flat index of cell [(r, 0)]. Unchecked. *)

val get : t -> int -> float
(** Unchecked flat-index read; never boxes. *)

val set : t -> int -> float -> unit
(** Unchecked flat-index write; never boxes. *)

val row_get : t -> int -> int -> float
(** Checked [(row, col)] read, for cold paths. *)

val row_set : t -> int -> int -> float -> unit
(** Checked [(row, col)] write, for cold paths. *)

val fill : t -> float -> unit
(** Set every real cell; padding stays 0.0. *)

val clear : t -> unit
(** Zero the whole backing store, padding included. *)

val row_to_array : t -> int -> float array
(** Snapshot one row's real columns into a fresh boxed-free float array
    (diagnostics and tests). *)

val to_array : t -> float array array
(** Snapshot the real [rows x cols] contents (diagnostics and tests). *)

(** {1 Per-domain pool}

    Mirrors {!Arena}'s pool: [take] in [prepare], [give] in [teardown].
    The raw Bigarray is what gets reused; it is re-zeroed on [give], so
    a pooled matrix is indistinguishable from a fresh one. *)

val take : rows:int -> cols:int -> t
val give : t -> unit

val takes : unit -> int
(** Total [take] calls across all domains (diagnostics). *)

val reuses : unit -> int
(** How many [take]s were satisfied from a pool (diagnostics). *)
