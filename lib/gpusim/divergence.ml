type path = Select_exploit | Select_explore | Mandatory_stall | Optional_stall | Death

let path_of_op = function
  | Aco.Ant.Selected { explored = false; _ } -> Select_exploit
  | Aco.Ant.Selected { explored = true; _ } -> Select_explore
  | Aco.Ant.Mandatory_stall -> Mandatory_stall
  | Aco.Ant.Optional_stall -> Optional_stall
  | Aco.Ant.Died -> Death

let path_rank = function
  | Select_exploit -> 0
  | Select_explore -> 1
  | Mandatory_stall -> 2
  | Optional_stall -> 3
  | Death -> 4

let cost_of ~ready_scanned ~succs_updated = ready_scanned + succs_updated + 3

let reads_of ~ready_scanned ~succs_updated = ready_scanned + succs_updated + 1

let op_cost (e : Aco.Ant.event) = cost_of ~ready_scanned:e.ready_scanned ~succs_updated:e.succs_updated

let lane_reads (e : Aco.Ant.event) = reads_of ~ready_scanned:e.ready_scanned ~succs_updated:e.succs_updated

(* Accumulator form for the allocation-free lockstep loop: the wavefront
   folds each lane's step into a 5-entry per-path-rank maxima array (a
   path is present iff its maximum is nonzero — every op costs at least
   the fixed 3) and these fold the array into the charge components. *)

let serialized_of_maxima maxima =
  let acc = ref 0 in
  for r = 0 to Array.length maxima - 1 do
    acc := !acc + maxima.(r)
  done;
  !acc

let distinct_paths_of_maxima maxima =
  let acc = ref 0 in
  for r = 0 to Array.length maxima - 1 do
    if maxima.(r) > 0 then incr acc
  done;
  !acc

let max_single_of_maxima maxima =
  let acc = ref 0 in
  for r = 0 to Array.length maxima - 1 do
    if maxima.(r) > !acc then acc := maxima.(r)
  done;
  !acc

type charge = { serialized_ops : int; distinct_paths : int; max_single_path_ops : int }

let step_charge events =
  let maxima = Array.make 5 0 in
  let present = Array.make 5 false in
  List.iter
    (fun (e : Aco.Ant.event) ->
      let r = path_rank (path_of_op e.op) in
      present.(r) <- true;
      maxima.(r) <- max maxima.(r) (op_cost e))
    events;
  let serialized = ref 0 and paths = ref 0 and overall = ref 0 in
  Array.iteri
    (fun r p ->
      if p then begin
        serialized := !serialized + maxima.(r);
        incr paths;
        overall := max !overall maxima.(r)
      end)
    present;
  { serialized_ops = !serialized; distinct_paths = !paths; max_single_path_ops = !overall }
