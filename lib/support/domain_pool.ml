(* Persistent pool of worker domains.

   Domain.spawn costs hundreds of microseconds — paid per [run] it
   erased the multi-domain executor's whole win on suite-sized compiles
   (BENCH_compile.json showed --jobs 2 at 0.61x sequential). The pool
   spawns each helper domain once, lazily, and parks it on a condition
   variable between jobs, so the steady-state cost of fanning out is two
   mutex handoffs per helper.

   Protocol (per helper): the submitting domain stores a closure in
   [task] and signals; the helper runs it, clears [task] and signals
   back. [task = None] means idle. The caller of [run] is itself worker
   0, so a pool of size [s] yields up to [s + 1] ways of parallelism.

   [run] is not reentrant: a task must not call [run] on the pool that
   is running it. Nested or concurrent [run] calls detect the busy pool
   and degrade to running every worker function on the caller — safe,
   just sequential. *)

type helper = {
  m : Mutex.t;
  cv : Condition.t;
  mutable task : (unit -> unit) option;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

type t = {
  size : int;
  helpers : helper array;
  lock : Mutex.t; (* guards spawning, [spawned] and [busy] *)
  mutable spawned : int;
  mutable busy : bool;
}

(* Lifecycle observer: support sits below the observability layer in
   the dependency order, so the pool cannot log directly. A layer above
   (bin, via Obs.Log) installs a callback; the default is no callback
   and costs one atomic load per event. Events fire outside the pool's
   locks where possible — [Spawned] necessarily fires while the
   spawning lock is held, so observers must not call back into the
   pool. *)
type event = Spawned of int | Acquired of int | Released of int

let observer : (event -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer f

let notify e =
  match Atomic.get observer with Some f -> (try f e with _ -> ()) | None -> ()

(* Helpers default to the hardware: [recommended_domain_count - 1] plus
   the calling domain saturates the cores. Never more — OCaml's minor
   collections stop the world across every running domain, so
   oversubscribing domains beyond cores turns each GC into a cascade of
   context switches and loses badly (measured 0.4x on one core). A
   caller who wants oversubscription anyway can size a pool explicitly. *)
let default_size () = max 0 (Domain.recommended_domain_count () - 1)

let create ?size () =
  let size = max 0 (match size with Some s -> s | None -> default_size ()) in
  {
    size;
    helpers =
      Array.init size (fun _ ->
          {
            m = Mutex.create ();
            cv = Condition.create ();
            task = None;
            failure = None;
            stop = false;
            domain = None;
          });
    lock = Mutex.create ();
    spawned = 0;
    busy = false;
  }

let size t = t.size
let spawned t = Mutex.protect t.lock (fun () -> t.spawned)

let helper_loop h =
  let rec loop () =
    Mutex.lock h.m;
    while h.task = None && not h.stop do
      Condition.wait h.cv h.m
    done;
    if h.stop then Mutex.unlock h.m
    else begin
      let f = Option.get h.task in
      Mutex.unlock h.m;
      let failure = match f () with () -> None | exception e -> Some e in
      Mutex.lock h.m;
      h.failure <- failure;
      h.task <- None;
      Condition.broadcast h.cv;
      Mutex.unlock h.m;
      loop ()
    end
  in
  loop ()

(* Lock held by caller. *)
let ensure_spawned t k =
  for i = t.spawned to min k t.size - 1 do
    let h = t.helpers.(i) in
    h.domain <- Some (Domain.spawn (fun () -> helper_loop h));
    t.spawned <- i + 1;
    notify (Spawned i)
  done

let submit h f =
  Mutex.lock h.m;
  h.task <- Some f;
  h.failure <- None;
  Condition.broadcast h.cv;
  Mutex.unlock h.m

let await h =
  Mutex.lock h.m;
  while h.task <> None do
    Condition.wait h.cv h.m
  done;
  let failure = h.failure in
  h.failure <- None;
  Mutex.unlock h.m;
  failure

let run t ~workers f =
  let workers = max 1 workers in
  let acquired =
    workers > 1 && t.size > 0
    && Mutex.protect t.lock (fun () ->
           if t.busy then false
           else begin
             t.busy <- true;
             ensure_spawned t (workers - 1);
             true
           end)
  in
  if not acquired then
    (* size-0 pool, single worker, or a nested run: everything on the
       caller, in worker order — same results, no parallelism *)
    for w = 0 to workers - 1 do
      f w
    done
  else begin
    let k = min workers (t.size + 1) in
    notify (Acquired k);
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.lock (fun () -> t.busy <- false);
        notify (Released k))
      (fun () ->
        for w = 1 to k - 1 do
          submit t.helpers.(w - 1) (fun () -> f w)
        done;
        let failure = ref None in
        let on_caller w =
          if !failure = None then
            match f w with () -> () | exception e -> failure := Some e
        in
        on_caller 0;
        (* the clamp [k <= size + 1] can strand worker indices past the
           pool; run them on the caller so every index executes *)
        for w = k to workers - 1 do
          on_caller w
        done;
        for w = 1 to k - 1 do
          match await t.helpers.(w - 1) with
          | Some e when !failure = None -> failure := Some e
          | _ -> ()
        done;
        match !failure with Some e -> raise e | None -> ())
  end

let shutdown t =
  Mutex.protect t.lock (fun () ->
      for i = 0 to t.spawned - 1 do
        let h = t.helpers.(i) in
        Mutex.lock h.m;
        h.stop <- true;
        Condition.broadcast h.cv;
        Mutex.unlock h.m
      done;
      for i = 0 to t.spawned - 1 do
        let h = t.helpers.(i) in
        (match h.domain with Some d -> Domain.join d | None -> ());
        h.domain <- None
      done;
      t.spawned <- 0)

(* The process-wide pool: created on first use, shared by every suite
   compile and serve request, shut down at exit so domains do not
   outlive main. *)
let global_pool = ref None
let global_lock = Mutex.create ()

let global () =
  Mutex.protect global_lock (fun () ->
      match !global_pool with
      | Some p -> p
      | None ->
          let p = create () in
          global_pool := Some p;
          at_exit (fun () -> shutdown p);
          p)
