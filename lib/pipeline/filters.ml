type config = {
  cycle_threshold : int;
  revert_occupancy_gain : int;
  revert_length_penalty : int;
  equal_occupancy_length_slack : int;
}

let default =
  {
    cycle_threshold = 10;
    revert_occupancy_gain = 3;
    revert_length_penalty = 63;
    equal_occupancy_length_slack = 3;
  }

let no_filtering =
  {
    cycle_threshold = 1;
    revert_occupancy_gain = max_int;
    revert_length_penalty = max_int;
    equal_occupancy_length_slack = max_int;
  }

type verdict = Keep_aco | Revert_to_heuristic

let post_schedule config ~(heuristic : Sched.Cost.t) ~(aco : Sched.Cost.t) =
  let occ_gain = aco.rp.occupancy - heuristic.rp.occupancy in
  let length_penalty = aco.length - heuristic.length in
  if occ_gain < 0 then Revert_to_heuristic
  else if occ_gain = 0 then
    (* At equal occupancy the ACO schedule ships unless it is clearly
       longer: a few cycles are invisible to the cost model (and exactly
       where un-modeled factors live). *)
    if length_penalty > config.equal_occupancy_length_slack then Revert_to_heuristic
    else Keep_aco
  else if length_penalty > config.revert_length_penalty then
    (* The paper's tuned rule, read literally: even an occupancy gain of
       [revert_occupancy_gain] waves is not worth more than
       [revert_length_penalty] cycles. *)
    Revert_to_heuristic
  else Keep_aco
