(** ACO search parameters.

    Defaults follow the paper: decay factor 0.8 (Section IV-A),
    termination after 1/2/3 improvement-free iterations for regions of
    size [1-49]/[50-99]/[>=100] (Section VI-A), and an ACS-style
    selection rule balancing exploitation and exploration. *)

type t = {
  ants_per_iteration : int;
      (** ants simulated per iteration by the sequential algorithm; the
          parallel algorithm derives its count from the launch geometry *)
  alpha : float;  (** pheromone exponent in the selection formula *)
  beta : float;  (** heuristic exponent *)
  q0 : float;  (** probability of exploitation (argmax) vs exploration (roulette) *)
  decay : float;  (** pheromone retention per iteration, 0.8 *)
  initial_pheromone : float;
  deposit : float;  (** scale of the iteration winner's deposit *)
  max_iterations : int;  (** hard safety cap per pass *)
  heuristic : Sched.Heuristic.kind;  (** guiding heuristic *)
  stall_base_probability : float;
      (** optional-stall insertion probability before damping
          (Section IV-C's heuristic) *)
  pass2_cycle_threshold : int;
      (** invoke the ILP pass only when the input schedule is at least
          this many cycles above the length lower bound — the
          compile-time/regression filter of Section VI-D (the paper tunes
          it to 21 in Table 7; 1 disables the filter) *)
}

val default : t

val termination_condition : int -> int
(** [termination_condition region_size] is the number of consecutive
    improvement-free iterations after which a pass stops: 1, 2 or 3 by
    the paper's size categories. *)

val size_category : int -> int
(** 0 for [1-49], 1 for [50-99], 2 for [>= 100] — the region-size
    buckets used throughout the evaluation. *)

val size_category_label : int -> string
