type path = Select_exploit | Select_explore | Mandatory_stall | Optional_stall | Death

let path_of_op = function
  | Aco.Ant.Selected { explored = false; _ } -> Select_exploit
  | Aco.Ant.Selected { explored = true; _ } -> Select_explore
  | Aco.Ant.Mandatory_stall -> Mandatory_stall
  | Aco.Ant.Optional_stall -> Optional_stall
  | Aco.Ant.Died -> Death

let path_rank = function
  | Select_exploit -> 0
  | Select_explore -> 1
  | Mandatory_stall -> 2
  | Optional_stall -> 3
  | Death -> 4

let op_cost (e : Aco.Ant.event) = e.ready_scanned + e.succs_updated + 3

let lane_reads (e : Aco.Ant.event) = e.ready_scanned + e.succs_updated + 1

type charge = { serialized_ops : int; distinct_paths : int; max_single_path_ops : int }

let step_charge events =
  let maxima = Array.make 5 0 in
  let present = Array.make 5 false in
  List.iter
    (fun (e : Aco.Ant.event) ->
      let r = path_rank (path_of_op e.op) in
      present.(r) <- true;
      maxima.(r) <- max maxima.(r) (op_cost e))
    events;
  let serialized = ref 0 and paths = ref 0 and overall = ref 0 in
  Array.iteri
    (fun r p ->
      if p then begin
        serialized := !serialized + maxima.(r);
        incr paths;
        overall := max !overall maxima.(r)
      end)
    present;
  { serialized_ops = !serialized; distinct_paths = !paths; max_single_path_ops = !overall }
