(* Frozen pre-engine reference drivers, copied verbatim from the last
   revision in which Seq_aco and Par_aco carried their own two-pass
   orchestration (only module paths are qualified for the test tree).
   The engine differentials in Test_engine compare the refactored
   backends against these goldens field by field -- schedules, RNG
   streams, convergence series, fault tallies, minor-heap words -- so a
   byte-level behaviour change in the engine shows up as a test failure,
   not a silent drift. Do not modernize this file. *)

module Seq_ref = struct
  type pass_stats = {
    invoked : bool;
    iterations : int;
    ants_simulated : int;
    work : int;
    improved : bool;
    hit_lower_bound : bool;
    aborted_budget : bool;
    best_costs : int array;
    minor_words : float;
  }

  let no_pass =
    {
      invoked = false;
      iterations = 0;
      ants_simulated = 0;
      work = 0;
      improved = false;
      hit_lower_bound = false;
      aborted_budget = false;
      best_costs = [||];
      minor_words = 0.0;
    }

  type result = {
    schedule : Sched.Schedule.t;
    cost : Sched.Cost.t;
    heuristic_schedule : Sched.Schedule.t;
    heuristic_cost : Sched.Cost.t;
    rp_target : Sched.Cost.rp;
    pass2_initial : Sched.Schedule.t;
    pass1 : pass_stats;
    pass2 : pass_stats;
  }

  (* One ACO pass: iterate ants until the lower bound is reached or
     [termination] improvement-free iterations pass. Generic in the cost
     (RP scalar in pass 1, length in pass 2) and in the artifact kept for
     the best solution (order in pass 1, schedule in pass 2). *)
  let run_pass (type a) ~params ~rng ~ants ~pheromone ~mode ~(cost_of_ant : Aco.Ant.t -> int)
      ~(artifact_of_ant : Aco.Ant.t -> a) ~budget_work ~metrics ~pass_label ~initial_cost
      ~(initial_order : int array) ~(initial_artifact : a) ~lb_cost ~termination =
    let open Aco.Params in
    Aco.Pheromone.reset pheromone ~initial:params.initial_pheromone;
    (* The initial (heuristic) schedule is the global best at the start:
       bias the table toward it. *)
    Aco.Pheromone.deposit_path_scaled pheromone initial_order ~deposit:params.deposit ~cost:initial_cost;
    (* Telemetry scratch sits before the minor-words snapshot so the
       reported allocation stays byte-identical with metering off. *)
    let metering = Obs.Metrics.enabled metrics in
    let m_best = if metering then pass_label ^ ".best_cost" else "" in
    let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
    (* Convergence series: entry 0 is the initial cost, entry [k] the best
       cost after the [k]th iteration. *)
    let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
    let bc_len = ref 1 in
    let minor_before = Support.Perfcount.minor_words () in
    let best_cost = ref initial_cost in
    let best = ref initial_artifact in
    let improved = ref false in
    let iterations = ref 0 in
    let no_improve = ref 0 in
    let work = ref 0 in
    let ants_total = ref 0 in
    let n = Aco.Pheromone.size pheromone in
    (* The compile budget is expressed in abstract work units — the same
       currency {!Aco.Ant.work} charges — so the sequential driver stays free
       of any wall-clock notion; the pipeline converts nanoseconds to work
       via its CPU cost model. *)
    while
      !best_cost > lb_cost && !no_improve < termination && !iterations < params.max_iterations
      && !work < budget_work
    do
      incr iterations;
      let iter_best_cost = ref max_int in
      let iter_best = ref None in
      Array.iter
        (fun ant ->
          Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:params.heuristic
            ~allow_optional_stalls:true mode;
          Aco.Ant.run_to_completion ant ~pheromone;
          ants_total := !ants_total + 1;
          work := !work + Aco.Ant.work ant;
          if Aco.Ant.status ant = Aco.Ant.Finished then begin
            let c = cost_of_ant ant in
            if c < !iter_best_cost then begin
              iter_best_cost := c;
              iter_best := Some (Aco.Ant.order ant, artifact_of_ant ant)
            end
          end)
        ants;
      (* Table upkeep: full decay plus the winner deposit. *)
      work := !work + (((n + 1) * n) / 8) + n;
      Aco.Pheromone.decay pheromone params.decay;
      (match !iter_best with
      | Some (order, art) ->
          Aco.Pheromone.deposit_path_scaled pheromone order ~deposit:params.deposit
            ~cost:!iter_best_cost;
          if !iter_best_cost < !best_cost then begin
            best_cost := !iter_best_cost;
            best := art;
            improved := true;
            no_improve := 0
          end
          else incr no_improve
      | None -> incr no_improve);
      bc_buf.(!bc_len) <- !best_cost;
      incr bc_len;
      if metering then begin
        Obs.Metrics.push metrics m_best (float_of_int !best_cost);
        Obs.Metrics.push metrics m_entropy (Aco.Pheromone.row_entropy pheromone)
      end
    done;
    (* [minor_delta] first: the series copy must stay outside the measured
       window so the stat is byte-identical with metering off. *)
    let minor_delta = Support.Perfcount.minor_words () -. minor_before in
    let best_costs = Array.sub bc_buf 0 !bc_len in
    ( !best,
      !best_cost,
      {
        invoked = true;
        iterations = !iterations;
        ants_simulated = !ants_total;
        work = !work;
        improved = !improved;
        hit_lower_bound = !best_cost <= lb_cost;
        aborted_budget = budget_work < max_int && !work >= budget_work;
        best_costs;
        minor_words = minor_delta;
      } )

  let run_from_setup ?(params = Aco.Params.default) ?(seed = 1) ?(budget_work = max_int)
      ?(metrics = Obs.Metrics.null) ?(label = "") (setup : Aco.Setup.t) =
    let graph = setup.Aco.Setup.graph in
    let occ = setup.Aco.Setup.occ in
    let n = graph.Ddg.Graph.n in
    let rng = Support.Rng.create seed in
    (* One set of region analyses and one SoA arena back the whole colony. *)
    let shared = Aco.Ant.prepare_shared graph in
    let ints, floats = Aco.Ant.arena_demand shared in
    let lanes = params.Aco.Params.ants_per_iteration in
    let arena = Support.Arena.create ~ints:(lanes * ints) ~floats:(lanes * floats) in
    let ants = Array.init lanes (fun _ -> Aco.Ant.create ~shared ~arena graph params) in
    let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
    let termination = Aco.Params.termination_condition n in
    let rp_scalar_of_ant ant =
      let v, s = Aco.Ant.rp_peaks ant in
      Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
    in
    (* Pass 1: minimize RP, latencies ignored. *)
    let best_order, _, pass1 =
      if setup.Aco.Setup.pass1_needed then
        run_pass ~params ~rng ~ants ~pheromone ~mode:Aco.Ant.Rp_pass ~cost_of_ant:rp_scalar_of_ant
          ~artifact_of_ant:Aco.Ant.order ~budget_work ~metrics ~pass_label:(label ^ "pass1")
          ~initial_cost:(Sched.Cost.rp_scalar setup.Aco.Setup.pass1_initial_rp)
          ~initial_order:setup.Aco.Setup.pass1_initial_order ~initial_artifact:setup.Aco.Setup.pass1_initial_order
          ~lb_cost:(Sched.Cost.rp_scalar setup.Aco.Setup.rp_lb) ~termination
      else (setup.Aco.Setup.pass1_initial_order, Sched.Cost.rp_scalar setup.Aco.Setup.pass1_initial_rp, no_pass)
    in
    let rp_target = Aco.Setup.rp_of_order occ graph best_order in
    let target_vgpr, target_sgpr = Aco.Setup.targets_of_rp rp_target in
    (* Pass 2: minimize length under the pass-1 RP target. *)
    let initial_schedule = Aco.Setup.pass2_initial setup ~best_pass1_order:best_order in
    let initial_length = Sched.Schedule.length initial_schedule in
    (* Pass 2 inherits whatever budget pass 1 left unspent. *)
    let budget2_work =
      if budget_work = max_int then max_int else max 0 (budget_work - pass1.work)
    in
    let schedule, _, pass2 =
      if initial_length - setup.Aco.Setup.length_lb >= max 1 params.Aco.Params.pass2_cycle_threshold then
        run_pass ~params ~rng ~ants ~pheromone
          ~mode:(Aco.Ant.Ilp_pass { target_vgpr; target_sgpr })
          ~cost_of_ant:Aco.Ant.length ~budget_work:budget2_work ~metrics
          ~pass_label:(label ^ "pass2")
          ~artifact_of_ant:(fun ant ->
            match Aco.Ant.schedule ant with
            | Some s -> s
            | None -> invalid_arg "Seq_aco: finished ant produced invalid schedule")
          ~initial_cost:initial_length
          ~initial_order:(Sched.Schedule.order initial_schedule)
          ~initial_artifact:initial_schedule ~lb_cost:setup.Aco.Setup.length_lb ~termination
      else (initial_schedule, initial_length, no_pass)
    in
    {
      schedule;
      cost = Sched.Cost.of_schedule occ schedule;
      heuristic_schedule = setup.Aco.Setup.amd_schedule;
      heuristic_cost = setup.Aco.Setup.amd_cost;
      rp_target;
      pass2_initial = initial_schedule;
      pass1;
      pass2;
    }

  let run ?params ?seed occ graph = run_from_setup ?params ?seed (Aco.Setup.prepare occ graph)
end

module Par_ref = struct
  type pass_stats = {
    invoked : bool;
    iterations : int;
    ants_simulated : int;
    work : int;
    time_ns : float;
    improved : bool;
    hit_lower_bound : bool;
    serialized_ops : int;
    single_path_ops : int;
    lockstep_steps : int;
    ant_steps : int;
    selections : int;
    best_costs : int array;
    minor_words : float;
    retries : int;
    aborted_budget : bool;
    aborted_faults : bool;
    fault_counts : Gpusim.Faults.counts;
  }

  let no_pass =
    {
      invoked = false;
      iterations = 0;
      ants_simulated = 0;
      work = 0;
      time_ns = 0.0;
      improved = false;
      hit_lower_bound = false;
      serialized_ops = 0;
      single_path_ops = 0;
      lockstep_steps = 0;
      ant_steps = 0;
      selections = 0;
      best_costs = [||];
      minor_words = 0.0;
      retries = 0;
      aborted_budget = false;
      aborted_faults = false;
      fault_counts = Gpusim.Faults.zero;
    }

  type result = {
    schedule : Sched.Schedule.t;
    cost : Sched.Cost.t;
    heuristic_schedule : Sched.Schedule.t;
    heuristic_cost : Sched.Cost.t;
    rp_target : Sched.Cost.rp;
    pass2_initial : Sched.Schedule.t;
    pass1 : pass_stats;
    pass2 : pass_stats;
  }

  (* Wavefront role assignment (Section V-B): when per-wavefront heuristics
     are on, half the wavefronts use the aggressive Critical-Path
     heuristic and a quarter each use Last-Use-Count and source order. *)
  let heuristic_for (config : Gpusim.Config.t) params w =
    if config.Gpusim.Config.opts.Gpusim.Config.per_wavefront_heuristic then
      match w mod 4 with
      | 2 -> Sched.Heuristic.Last_use_count
      | 3 -> Sched.Heuristic.Source_order
      | _ -> Sched.Heuristic.Critical_path
    else params.Aco.Params.heuristic

  let allow_optional_for (config : Gpusim.Config.t) w =
    let frac = config.Gpusim.Config.opts.Gpusim.Config.optional_stall_fraction in
    let allowed =
      int_of_float ((frac *. float_of_int config.Gpusim.Config.num_wavefronts) +. 0.5)
    in
    w < allowed

  let make_wavefronts ?shared config graph params =
    Array.init config.Gpusim.Config.num_wavefronts (fun w ->
        Gpusim.Wavefront.create ?shared config graph params
          ~heuristic:(heuristic_for config params w)
          ~allow_optional_stalls:(allow_optional_for config w))

  (* One parallel ACO pass on the simulated GPU. Generic in the ant cost
     and the winning artifact, like the sequential driver.

     Robustness discipline around the plain search loop:
     - every reduction winner passes [validate_artifact] before it can
       become the emitted artifact (corrupted colony state never ships);
     - a faulted iteration (hang, quarantine, lost reduction message,
       watchdog abort, or a winner failing validation) is retried with a
       reseeded RNG under exponential backoff charged to simulated time,
       at most [max_retries] consecutive times before the pass degrades to
       its best-so-far artifact;
     - the pass aborts once its accumulated simulated time crosses
       [budget_ns], again keeping the best-so-far artifact. *)
  let run_pass (type a) ~params ~(config : Gpusim.Config.t) ~rng ~wavefronts ~pheromone ~mode
      ~(cost_of_ant : Aco.Ant.t -> int) ~(artifact_of_ant : Aco.Ant.t -> a)
      ~(validate_artifact : a -> bool) ~faults ~budget_ns ~iteration_deadline_ns ~max_retries
      ~trace ~metrics ~pass_label ~obs_cursor ~simd_cursor
      ~initial_cost ~(initial_order : int array) ~(initial_artifact : a) ~lb_cost ~termination
      ~n ~ready_ub =
    let open Aco.Params in
    Aco.Pheromone.reset pheromone ~initial:params.initial_pheromone;
    Aco.Pheromone.deposit_path_scaled pheromone initial_order ~deposit:params.deposit
      ~cost:initial_cost;
    let lanes = config.Gpusim.Config.target.Machine.Target.wavefront_size in
    let threads = Gpusim.Config.threads config in
    let faults_before = Gpusim.Faults.counts faults in
    (* Flight-recorder state. Everything the traced path touches inside the
       loop is allocated here, before the minor-words snapshot, so the
       untraced hot path is limited to branches on [tracing]/[metering] and
       the measured allocation stays byte-identical with tracing off. *)
    let tracing = Obs.Trace.enabled trace in
    let metering = Obs.Metrics.enabled metrics in
    let pass_t0 = Obs.Trace.now trace in
    let m_best = if metering then pass_label ^ ".best_cost" else "" in
    let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
    (* Convergence series: entry 0 is the initial cost, entry [k] the best
       cost after the [k]th attempted iteration (retries included). *)
    let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
    let bc_len = ref 1 in
    if tracing then begin
      let setup_ns = Gpusim.Mem_model.setup_time_ns config ~n ~ready_ub in
      Obs.Trace.span trace ~track:1 ~name:"kernel_launch" ~ts:pass_t0
        ~dur:config.Gpusim.Config.launch_overhead_ns;
      Obs.Trace.span trace ~track:1 ~name:"mem_setup"
        ~ts:(pass_t0 +. config.Gpusim.Config.launch_overhead_ns)
        ~dur:setup_ns;
      obs_cursor.(0) <- pass_t0 +. config.Gpusim.Config.launch_overhead_ns +. setup_ns
    end;
    let minor_before = Support.Perfcount.minor_words () in
    let best_cost = ref initial_cost in
    let best = ref initial_artifact in
    let improved = ref false in
    let iterations = ref 0 in
    let no_improve = ref 0 in
    let work = ref 0 in
    let ants_total = ref 0 in
    let serialized = ref 0 in
    let single = ref 0 in
    let lockstep_steps = ref 0 in
    let ant_steps = ref 0 in
    let selections = ref 0 in
    (* Per-iteration buffers, allocated once per pass and reused: the
       iteration loop itself stays allocation-free apart from the finished
       lists the wavefronts report. *)
    let num_wavefronts = Array.length wavefronts in
    let wavefront_times = Array.make (max 1 num_wavefronts) 0.0 in
    let outcomes : Gpusim.Wavefront.outcome option array = Array.make (max 1 num_wavefronts) None in
    let cost_buf = Array.make threads max_int in
    let red_cost = Array.make threads 0 in
    let red_idx = Array.make threads 0 in
    (* Iteration times land in a growable buffer (an iteration can add a
       backoff entry besides its own time, hence the factor 2). *)
    let iter_times = ref (Array.make (max 8 (min ((2 * params.max_iterations) + 4) 4096)) 0.0) in
    let iter_count = ref 0 in
    let push_time x =
      if !iter_count = Array.length !iter_times then begin
        let grown = Array.make (2 * Array.length !iter_times) 0.0 in
        Array.blit !iter_times 0 grown 0 !iter_count;
        iter_times := grown
      end;
      !iter_times.(!iter_count) <- x;
      incr iter_count
    in
    let elapsed = ref 0.0 in
    let retries = ref 0 in
    let consecutive_failures = ref 0 in
    let aborted_budget = ref false in
    let aborted_faults = ref false in
    let stop = ref false in
    let within_budget () = !elapsed < budget_ns in
    while
      (not !stop) && within_budget () && !best_cost > lb_cost && !no_improve < termination
      && !iterations < params.max_iterations
    do
      incr iterations;
      if tracing then begin
        (* Wavefronts round-robin over the SIMD units; a unit runs its
           wavefronts back to back, so a wavefront's track starts at the
           sum of the times of the earlier wavefronts on the same unit.
           The wavefronts read and advance these cursors themselves
           (installed via [Gpusim.Wavefront.set_obs]) so the per-iteration closure
           below captures nothing the untraced build does not. *)
        Array.fill simd_cursor 0 (Array.length simd_cursor) 0.0;
        obs_cursor.(1) <- obs_cursor.(0)
      end;
      (* Per-thread cost table for the reduction; losers and killed lanes
         report max_int. *)
      Array.fill cost_buf 0 threads max_int;
      let iter_faulted = ref false in
      Array.iteri
        (fun w wavefront ->
          let outcome = Gpusim.Wavefront.run_iteration ~faults wavefront ~rng ~mode ~pheromone in
          outcomes.(w) <- Some outcome;
          wavefront_times.(w) <- outcome.Gpusim.Wavefront.time_ns;
          work := !work + outcome.Gpusim.Wavefront.work;
          serialized := !serialized + outcome.Gpusim.Wavefront.serialized_ops;
          single := !single + outcome.Gpusim.Wavefront.single_path_ops;
          lockstep_steps := !lockstep_steps + outcome.Gpusim.Wavefront.steps;
          ant_steps := !ant_steps + outcome.Gpusim.Wavefront.ant_steps;
          selections := !selections + outcome.Gpusim.Wavefront.selections;
          ants_total := !ants_total + Gpusim.Wavefront.lanes wavefront;
          if outcome.Gpusim.Wavefront.hung || outcome.Gpusim.Wavefront.quarantined > 0 then
            iter_faulted := true;
          List.iteri
            (fun k ant -> cost_buf.((w * lanes) + k) <- cost_of_ant ant)
            outcome.Gpusim.Wavefront.finished)
        wavefronts;
      let winner_cost, winner_idx =
        Gpusim.Reduction.min_reduce_into ~costs:cost_buf ~scratch_cost:red_cost ~scratch_idx:red_idx
      in
      let dropped = Gpusim.Faults.enabled faults && Gpusim.Faults.reduction_drop faults in
      if dropped then iter_faulted := true;
      let iter_time_raw = Gpusim.Kernel_sim.iteration_time_ns config ~n ~wavefront_times in
      let iter_time, watchdog_fired =
        Gpusim.Kernel_sim.watchdog_clamp ~deadline_ns:iteration_deadline_ns iter_time_raw
      in
      if watchdog_fired then iter_faulted := true;
      push_time iter_time;
      elapsed := !elapsed +. iter_time;
      if tracing then begin
        Gpusim.Kernel_sim.trace_iteration trace config ~n ~track:1 ~ts:obs_cursor.(1)
          ~construction_ns:(Gpusim.Kernel_sim.construction_time_ns config ~wavefront_times);
        obs_cursor.(0) <- obs_cursor.(1) +. iter_time;
        if watchdog_fired then
          Obs.Trace.instant trace ~track:0 ~name:"watchdog_fired" ~ts:obs_cursor.(0);
        if dropped then
          Obs.Trace.instant trace ~track:1 ~name:"reduction_drop" ~ts:obs_cursor.(0)
      end;
      if metering then begin
        if watchdog_fired then Obs.Metrics.incr metrics "faults.watchdog_fired";
        if dropped then Obs.Metrics.incr metrics "faults.reduction_drop"
      end;
      (* The winner's thread index decomposes into its wavefront and its
         position in that wavefront's finished list. *)
      let winner_ant =
        if winner_cost < max_int then
          match outcomes.(winner_idx / lanes) with
          | Some o -> List.nth_opt o.Gpusim.Wavefront.finished (winner_idx mod lanes)
          | None -> None
        else None
      in
      let accepted =
        (not dropped) && (not watchdog_fired)
        &&
        match winner_ant with
        | Some ant ->
            let artifact = artifact_of_ant ant in
            (* Validation guard: a winner that does not reconstruct into a
               valid schedule is quarantined — the iteration failed. *)
            if validate_artifact artifact then begin
              Aco.Pheromone.decay pheromone params.decay;
              Aco.Pheromone.deposit_path_scaled pheromone (Aco.Ant.order ant)
                ~deposit:params.deposit ~cost:winner_cost;
              (* An equal-cost winner still becomes the emitted artifact — the
                 ACO build ships the schedule the ants constructed — but only a
                 strict improvement resets the termination counter. *)
              if winner_cost <= !best_cost then best := artifact;
              if winner_cost < !best_cost then begin
                best_cost := winner_cost;
                improved := true;
                no_improve := 0
              end
              else incr no_improve;
              true
            end
            else begin
              iter_faulted := true;
              false
            end
        | None -> false
      in
      if accepted then consecutive_failures := 0
      else if !iter_faulted then begin
        (* Guard-and-retry: the table still decays (simulated time passed),
           then the iteration is re-run from a reseeded stream with
           exponential backoff charged to simulated time; [max_retries]
           consecutive failures degrade the pass to its best-so-far. *)
        Aco.Pheromone.decay pheromone params.decay;
        if !consecutive_failures < max_retries then begin
          incr retries;
          incr consecutive_failures;
          ignore (Support.Rng.int64 rng);
          let backoff =
            Gpusim.Faults.retry_backoff_ns *. (2.0 ** float_of_int (!consecutive_failures - 1))
          in
          push_time backoff;
          elapsed := !elapsed +. backoff;
          if tracing then begin
            Obs.Trace.instant_arg trace ~track:0 ~name:"retry" ~ts:obs_cursor.(0)
              ~key:"attempt"
              ~value:(float_of_int !consecutive_failures);
            Obs.Trace.span trace ~track:0 ~name:"retry_backoff" ~ts:obs_cursor.(0)
              ~dur:backoff;
            obs_cursor.(0) <- obs_cursor.(0) +. backoff
          end;
          if metering then Obs.Metrics.incr metrics "robust.retries"
        end
        else begin
          aborted_faults := true;
          stop := true;
          if tracing then
            Obs.Trace.instant trace ~track:0 ~name:"fault_abort" ~ts:obs_cursor.(0);
          if metering then Obs.Metrics.incr metrics "robust.fault_aborts"
        end
      end
      else begin
        Aco.Pheromone.decay pheromone params.decay;
        incr no_improve
      end;
      bc_buf.(!bc_len) <- !best_cost;
      incr bc_len;
      if tracing then
        Obs.Trace.span_arg trace ~track:0 ~name:"iteration" ~ts:obs_cursor.(1)
          ~dur:iter_time ~key:"best_cost"
          ~value:(float_of_int !best_cost);
      if metering then begin
        Obs.Metrics.push metrics m_best (float_of_int !best_cost);
        Obs.Metrics.push metrics m_entropy (Aco.Pheromone.row_entropy pheromone)
      end
    done;
    if budget_ns < infinity && not (within_budget ()) then aborted_budget := true;
    let time_ns =
      Gpusim.Kernel_sim.pass_time_ns_buf config ~n ~ready_ub ~times:!iter_times ~count:!iter_count
    in
    (* The baseline evaluated the stats record's fields right to left, so
       [fault_counts] (which allocates) landed inside the measured window
       and the convergence series (textually before [minor_words]) must
       stay out of it: bind them explicitly in that order to keep the
       reported delta byte-identical with tracing off. *)
    let fault_counts = Gpusim.Faults.sub (Gpusim.Faults.counts faults) faults_before in
    let minor_delta = Support.Perfcount.minor_words () -. minor_before in
    let best_costs = Array.sub bc_buf 0 !bc_len in
    if tracing then begin
      let teardown = Gpusim.Mem_model.teardown_time_ns config ~n in
      Obs.Trace.span trace ~track:1 ~name:"mem_teardown"
        ~ts:(pass_t0 +. time_ns -. teardown)
        ~dur:teardown;
      Obs.Trace.span_arg trace ~track:0 ~name:pass_label ~ts:pass_t0 ~dur:time_ns
        ~key:"best_cost"
        ~value:(float_of_int !best_cost);
      if !aborted_budget then
        Obs.Trace.instant trace ~track:0 ~name:"budget_abort" ~ts:obs_cursor.(0);
      Obs.Trace.set_now trace (pass_t0 +. time_ns)
    end;
    if metering && !aborted_budget then Obs.Metrics.incr metrics "robust.budget_aborts";
    ( !best,
      !best_cost,
      {
        invoked = true;
        iterations = !iterations;
        ants_simulated = !ants_total;
        work = !work;
        time_ns;
        improved = !improved;
        hit_lower_bound = !best_cost <= lb_cost;
        serialized_ops = !serialized;
        single_path_ops = !single;
        lockstep_steps = !lockstep_steps;
        ant_steps = !ant_steps;
        selections = !selections;
        best_costs;
        minor_words = minor_delta;
        retries = !retries;
        aborted_budget = !aborted_budget;
        aborted_faults = !aborted_faults;
        fault_counts;
      } )

  let run_from_setup ?(params = Aco.Params.default) ?(seed = 1) ?faults ?(budget_ns = infinity)
      ?(iteration_deadline_ns = infinity) ?(max_retries = 2) ?(trace = Obs.Trace.null)
      ?(metrics = Obs.Metrics.null) ?(label = "") (config : Gpusim.Config.t)
      (setup : Aco.Setup.t) =
    let graph = setup.Aco.Setup.graph in
    let occ = setup.Aco.Setup.occ in
    let n = graph.Ddg.Graph.n in
    let faults =
      match faults with
      | Some f -> f
      | None ->
          if Gpusim.Config.faults_enabled config.Gpusim.Config.faults then
            (* Mix the region size and driver seed into the injector seed so
               different regions see different — but replayable — fault
               patterns. *)
            Gpusim.Faults.create config.Gpusim.Config.faults
              ~seed:(config.Gpusim.Config.fault_seed lxor (n * 0x9e3779b1) lxor (seed * 0x85ebca77))
          else Gpusim.Faults.disabled
    in
    let rng = Support.Rng.create seed in
    (* One set of region analyses (critical path, register layout, closure
       ready-list bound) feeds every wavefront of the colony. *)
    let shared = Aco.Ant.prepare_shared graph in
    let wavefronts = make_wavefronts ~shared config graph params in
    (* Track layout: 0 = driver, 1 = kernel stages, 2.. = one per
       wavefront. Hooks are attached here, outside any measured window, so
       the per-iteration calls need no optional-argument wrapping. *)
    let simds = Machine.Target.total_simds config.Gpusim.Config.target in
    (* Driver-owned simulated-time cursors, shared with every wavefront:
       [obs_cursor].(0) is the driver cursor, (1) the current iteration's
       start; [simd_cursor].(s) sums the construction time of the
       wavefronts already run on SIMD unit [s] this iteration. *)
    let obs_cursor = Array.make 2 0.0 in
    let simd_cursor = Array.make (max 1 simds) 0.0 in
    if Obs.Trace.enabled trace || Obs.Metrics.enabled metrics then begin
      Obs.Trace.name_track trace 0 "driver";
      Obs.Trace.name_track trace 1 "kernel: reduce + pheromone";
      Array.iteri
        (fun w wf ->
          Obs.Trace.name_track trace (2 + w) (Printf.sprintf "wavefront %d" w);
          Gpusim.Wavefront.set_obs wf ~trace ~metrics ~track:(2 + w) ~obs_cursor ~simd_cursor
            ~simd:(w mod simds))
        wavefronts
    end;
    let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
    let termination = Aco.Params.termination_condition n in
    let ready_ub = Aco.Ant.shared_ready_ub shared in
    let rp_scalar_of_ant ant =
      let v, s = Aco.Ant.rp_peaks ant in
      Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
    in
    let best_order, _, pass1 =
      if setup.Aco.Setup.pass1_needed then
        run_pass ~params ~config ~rng ~wavefronts ~pheromone ~mode:Aco.Ant.Rp_pass
          ~cost_of_ant:rp_scalar_of_ant ~artifact_of_ant:Aco.Ant.order
          ~validate_artifact:(fun order -> Result.is_ok (Sched.Schedule.of_order graph order))
          ~faults ~budget_ns ~iteration_deadline_ns ~max_retries ~trace ~metrics
          ~pass_label:(label ^ "pass1") ~obs_cursor ~simd_cursor
          ~initial_cost:(Sched.Cost.rp_scalar setup.Aco.Setup.pass1_initial_rp)
          ~initial_order:setup.Aco.Setup.pass1_initial_order
          ~initial_artifact:setup.Aco.Setup.pass1_initial_order
          ~lb_cost:(Sched.Cost.rp_scalar setup.Aco.Setup.rp_lb)
          ~termination ~n ~ready_ub
      else
        ( setup.Aco.Setup.pass1_initial_order,
          Sched.Cost.rp_scalar setup.Aco.Setup.pass1_initial_rp,
          no_pass )
    in
    let rp_target = Aco.Setup.rp_of_order occ graph best_order in
    let target_vgpr, target_sgpr = Aco.Setup.targets_of_rp rp_target in
    let initial_schedule = Aco.Setup.pass2_initial setup ~best_pass1_order:best_order in
    let initial_length = Sched.Schedule.length initial_schedule in
    (* The region's compile budget spans both passes: pass 2 inherits
       whatever pass 1 left. *)
    let budget2_ns =
      if budget_ns = infinity then infinity
      else Float.max 0.0 (budget_ns -. pass1.time_ns)
    in
    let schedule, _, pass2 =
      if
        initial_length - setup.Aco.Setup.length_lb
        >= max 1 params.Aco.Params.pass2_cycle_threshold
      then
        run_pass ~params ~config ~rng ~wavefronts ~pheromone
          ~mode:(Aco.Ant.Ilp_pass { target_vgpr; target_sgpr })
          ~cost_of_ant:Aco.Ant.length
          ~artifact_of_ant:(fun ant ->
            match Aco.Ant.schedule ant with
            | Some s -> s
            | None -> invalid_arg "Par_aco: finished ant produced invalid schedule")
          ~validate_artifact:(fun s -> Sched.Schedule.is_valid s ~latency_aware:true)
          ~faults ~budget_ns:budget2_ns ~iteration_deadline_ns ~max_retries ~trace ~metrics
          ~pass_label:(label ^ "pass2") ~obs_cursor ~simd_cursor
          ~initial_cost:initial_length
          ~initial_order:(Sched.Schedule.order initial_schedule)
          ~initial_artifact:initial_schedule ~lb_cost:setup.Aco.Setup.length_lb ~termination ~n
          ~ready_ub
      else (initial_schedule, initial_length, no_pass)
    in
    {
      schedule;
      cost = Sched.Cost.of_schedule occ schedule;
      heuristic_schedule = setup.Aco.Setup.amd_schedule;
      heuristic_cost = setup.Aco.Setup.amd_cost;
      rp_target;
      pass2_initial = initial_schedule;
      pass1;
      pass2;
    }

  let run ?params ?seed config occ graph =
    run_from_setup ?params ?seed config (Aco.Setup.prepare occ graph)

  let total_time_ns r = r.pass1.time_ns +. r.pass2.time_ns

  let total_retries r = r.pass1.retries + r.pass2.retries

  let total_faults r = Gpusim.Faults.add r.pass1.fault_counts r.pass2.fault_counts

  let degraded r =
    r.pass1.aborted_budget || r.pass2.aborted_budget || r.pass1.aborted_faults
    || r.pass2.aborted_faults
end
