let minor_words = Gc.minor_words

let span f =
  let before = Gc.minor_words () in
  let result = f () in
  (result, Gc.minor_words () -. before)

type t = { mutable started : float; mutable total : float }

let create () = { started = nan; total = 0.0 }

let start t = t.started <- Gc.minor_words ()

let stop t =
  if Float.is_nan t.started then invalid_arg "Perfcount.stop: not started";
  t.total <- t.total +. (Gc.minor_words () -. t.started);
  t.started <- nan

let total t = t.total
let reset t =
  t.started <- nan;
  t.total <- 0.0
