(** Fixed-capacity bitsets backed by unboxed integer words.

    Used for the transitive closure of data dependence graphs
    (Section V-A of the paper), where row-per-node bitsets make
    reachability queries and independence counting O(n/63) per pair
    instead of O(n). *)

type t
(** A set of small integers in [\[0, capacity)]. *)

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int
(** Number of elements the set can hold. *)

val copy : t -> t

val add : t -> int -> unit
(** [add s i] inserts [i]. Raises [Invalid_argument] out of range. *)

val remove : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int
(** Population count. *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all elements. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s] sets [into := into U s]. Capacities must match. *)

val inter_into : into:t -> t -> unit

val diff_into : into:t -> t -> unit
(** [diff_into ~into s] sets [into := into \ s]. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (a inter b)] without allocating. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] builds a capacity-[n] set containing [xs]. *)
