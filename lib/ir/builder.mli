(** Imperative construction of scheduling regions.

    The workload generator and the examples assemble regions through this
    builder: it hands out fresh virtual registers, numbers instructions
    consecutively, and produces a validated {!Region.t}. *)

type t

val create : name:string -> t

val fresh_vgpr : t -> Reg.t
val fresh_sgpr : t -> Reg.t

val emit :
  t -> ?name:string -> ?latency:int -> Opcode.kind -> defs:Reg.t list -> uses:Reg.t list -> unit
(** Append an instruction with explicit Def/Use sets. *)

val valu : t -> ?name:string -> Reg.t list -> Reg.t
(** [valu b uses] appends a 1-cycle vector ALU op reading [uses] and
    returns its freshly defined VGPR. *)

val valu_trans : t -> ?name:string -> Reg.t list -> Reg.t
(** Transcendental vector op (longer latency). *)

val salu : t -> ?name:string -> Reg.t list -> Reg.t
(** Scalar ALU op defining a fresh SGPR. *)

val vload : t -> ?name:string -> addr:Reg.t list -> unit -> Reg.t
(** Global load into a fresh VGPR. *)

val vstore : t -> ?name:string -> data:Reg.t list -> addr:Reg.t list -> unit -> unit
(** Global store; defines nothing. *)

val sload : t -> ?name:string -> addr:Reg.t list -> unit -> Reg.t
(** Scalar (constant) load into a fresh SGPR. *)

val lds_read : t -> ?name:string -> addr:Reg.t list -> unit -> Reg.t
val lds_write : t -> ?name:string -> data:Reg.t list -> addr:Reg.t list -> unit -> unit

val export : t -> Reg.t list -> unit
(** Terminal export of the given values. *)

val mark_live_out : t -> Reg.t -> unit
(** Record a register as live past the region exit. *)

val size : t -> int
(** Instructions emitted so far. *)

val finish : t -> Region.t
(** Validate and return the region. Raises [Invalid_argument] if the
    builder produced an inconsistent region (a builder bug). *)
