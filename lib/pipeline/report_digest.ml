(* Canonical rendering and digest of a suite report.

   The determinism contract of the compile service — cache on/off,
   [--jobs 1] vs [--jobs N] — is "byte-identical suite reports". A raw
   structural comparison is too strict for one benign reason: schedules
   embed their graph, and an analysis-cache hit aliases the graph of the
   *first* structurally-equal region seen, whose instruction names may
   differ from the requester's. Names never reach the compiler's output.
   So the contract is enforced over this canonical encoding, which spells
   out every semantically meaningful field — slots, cycles, costs, every
   pass-stats field including the allocation counters and per-iteration
   convergence series, degradation ledger entries, retry and fault
   tallies — and deliberately omits the identity of the graph object
   behind a schedule. Two reports with equal encodings direct the
   assembler to emit the same instruction streams and report the same
   telemetry. *)

let fl b v = Buffer.add_string b (Printf.sprintf "%h" v)

let int b v = Buffer.add_string b (string_of_int v)

let str b s =
  Buffer.add_char b '"';
  Buffer.add_string b s;
  Buffer.add_char b '"'

let bool b v = Buffer.add_char b (if v then 't' else 'f')

let sep b = Buffer.add_char b ';'

let ints b a =
  Buffer.add_char b '[';
  Array.iter
    (fun v ->
      int b v;
      Buffer.add_char b ',')
    a;
  Buffer.add_char b ']'

let slots b (s : Sched.Schedule.t) =
  Buffer.add_char b '<';
  Array.iter
    (fun slot ->
      (match slot with
      | Sched.Schedule.Stall -> Buffer.add_char b '.'
      | Sched.Schedule.Instr i -> int b i);
      Buffer.add_char b ',')
    s.Sched.Schedule.slots;
  Buffer.add_char b '>';
  ints b s.Sched.Schedule.cycle_of

let rp b (r : Sched.Cost.rp) =
  int b r.Sched.Cost.aprp_vgpr;
  sep b;
  int b r.Sched.Cost.aprp_sgpr;
  sep b;
  int b r.Sched.Cost.occupancy

let cost b (c : Sched.Cost.t) =
  rp b c.Sched.Cost.rp;
  sep b;
  int b c.Sched.Cost.length

let faults b (f : Engine.Types.fault_counts) =
  int b f.Engine.Types.lane_faults;
  sep b;
  int b f.Engine.Types.wavefront_hangs;
  sep b;
  int b f.Engine.Types.reduction_drops;
  sep b;
  int b f.Engine.Types.mem_faults

let pass b (p : Engine.Types.pass_stats) =
  bool b p.Engine.Types.invoked;
  int b p.Engine.Types.iterations;
  int b p.Engine.Types.ants_simulated;
  int b p.Engine.Types.work;
  fl b p.Engine.Types.time_ns;
  bool b p.Engine.Types.improved;
  bool b p.Engine.Types.hit_lower_bound;
  int b p.Engine.Types.serialized_ops;
  int b p.Engine.Types.single_path_ops;
  int b p.Engine.Types.lockstep_steps;
  int b p.Engine.Types.ant_steps;
  int b p.Engine.Types.selections;
  ints b p.Engine.Types.best_costs;
  fl b p.Engine.Types.minor_words;
  int b p.Engine.Types.retries;
  bool b p.Engine.Types.aborted_budget;
  bool b p.Engine.Types.aborted_faults;
  int b p.Engine.Types.scored_candidates;
  int b p.Engine.Types.pruned_candidates;
  faults b p.Engine.Types.fault_counts

let degradation b (d : Robust.degradation) = str b (Robust.degradation_label d)

let run b (r : Compile.backend_run) =
  str b r.Compile.backend;
  bool b r.Compile.caps.Engine.Types.rp_pass;
  bool b r.Compile.caps.Engine.Types.faults;
  bool b r.Compile.caps.Engine.Types.trace;
  bool b r.Compile.caps.Engine.Types.time_model;
  bool b r.Compile.caps.Engine.Types.prune;
  let res = r.Compile.result in
  slots b res.Engine.Types.schedule;
  cost b res.Engine.Types.cost;
  slots b res.Engine.Types.heuristic_schedule;
  cost b res.Engine.Types.heuristic_cost;
  rp b res.Engine.Types.rp_target;
  slots b res.Engine.Types.pass2_initial;
  pass b res.Engine.Types.pass1;
  pass b res.Engine.Types.pass2;
  fl b r.Compile.run_pass1_time_ns;
  fl b r.Compile.run_pass2_time_ns;
  degradation b r.Compile.run_degradation;
  int b r.Compile.run_retries;
  faults b r.Compile.run_fault_counts

let region b (r : Compile.region_report) =
  str b r.Compile.region_name;
  int b r.Compile.n;
  int b r.Compile.size_category;
  int b r.Compile.length_lb;
  cost b r.Compile.heuristic_cost;
  ints b r.Compile.heuristic_order;
  cost b r.Compile.cp_cost;
  bool b r.Compile.pass1_invoked;
  bool b r.Compile.pass2_invoked;
  int b r.Compile.pass2_gap;
  cost b r.Compile.aco_cost;
  ints b r.Compile.aco_order;
  cost b r.Compile.pass1_only_cost;
  ints b r.Compile.pass1_only_order;
  str b r.Compile.product_backend;
  Buffer.add_char b '{';
  List.iter
    (fun x ->
      run b x;
      sep b)
    r.Compile.runs;
  Buffer.add_char b '}';
  degradation b r.Compile.degradation;
  int b r.Compile.retries;
  faults b r.Compile.fault_counts

let kernel b (k : Compile.kernel_report) =
  str b k.Compile.kernel.Workload.Suite.kernel_name;
  int b k.Compile.kernel.Workload.Suite.hot_index;
  Buffer.add_char b '(';
  List.iter
    (fun r ->
      region b r;
      Buffer.add_char b '\n')
    k.Compile.regions;
  Buffer.add_char b ')'

let render (report : Compile.suite_report) =
  let b = Buffer.create 65536 in
  List.iter
    (fun k ->
      kernel b k;
      Buffer.add_char b '\n')
    report.Compile.kernels;
  Buffer.contents b

let digest report = Digest.to_hex (Digest.string (render report))

let render_region (r : Compile.region_report) =
  let b = Buffer.create 4096 in
  region b r;
  Buffer.contents b

let digest_region r = Digest.to_hex (Digest.string (render_region r))
