type t = { name : string; instrs : Instr.t array; live_out : Reg.t list }

type error =
  | Empty_region
  | Bad_id of { expected : int; got : int }
  | Use_after_exit of Reg.t

let error_to_string = function
  | Empty_region -> "region has no instructions"
  | Bad_id { expected; got } ->
      Printf.sprintf "instruction id %d where %d was expected" got expected
  | Use_after_exit r ->
      Printf.sprintf "live-out register %s is neither defined nor live-in" (Reg.to_string r)

let compute_live_in instrs =
  let defined = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun (i : Instr.t) ->
      List.iter
        (fun u ->
          if (not (Hashtbl.mem defined (Reg.hash u, u))) && not (Hashtbl.mem seen (Reg.hash u, u))
          then begin
            Hashtbl.add seen (Reg.hash u, u) ();
            acc := u :: !acc
          end)
        i.uses;
      List.iter (fun d -> Hashtbl.replace defined (Reg.hash d, d) ()) i.defs)
    instrs;
  List.rev !acc

let create ~name ?(live_out = []) instrs =
  match instrs with
  | [] -> Error Empty_region
  | _ ->
      let arr = Array.of_list instrs in
      let bad = ref None in
      Array.iteri
        (fun i (ins : Instr.t) ->
          if !bad = None && ins.id <> i then bad := Some (Bad_id { expected = i; got = ins.id }))
        arr;
      (match !bad with
      | Some e -> Error e
      | None ->
          let live_in = compute_live_in arr in
          let defined r =
            Array.exists (fun (i : Instr.t) -> List.exists (Reg.equal r) i.defs) arr
          in
          let dangling =
            List.find_opt
              (fun r -> (not (defined r)) && not (List.exists (Reg.equal r) live_in))
              live_out
          in
          (match dangling with
          | Some r -> Error (Use_after_exit r)
          | None -> Ok { name; instrs = arr; live_out }))

let create_exn ~name ?live_out instrs =
  match create ~name ?live_out instrs with
  | Ok t -> t
  | Error e -> invalid_arg ("Region.create_exn: " ^ error_to_string e)

let size t = Array.length t.instrs

let live_in t = compute_live_in t.instrs

let is_live_out t r = List.exists (Reg.equal r) t.live_out

let instr t i = t.instrs.(i)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "region %s (%d instrs)\n" t.name (size t));
  Array.iter
    (fun i ->
      Buffer.add_string buf ("  " ^ Instr.to_string i);
      Buffer.add_char buf '\n')
    t.instrs;
  if t.live_out <> [] then
    Buffer.add_string buf
      ("  live-out: " ^ String.concat " " (List.map Reg.to_string t.live_out) ^ "\n");
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
