type t = {
  ants_per_iteration : int;
  alpha : float;
  beta : float;
  q0 : float;
  decay : float;
  initial_pheromone : float;
  deposit : float;
  max_iterations : int;
  heuristic : Sched.Heuristic.kind;
  stall_base_probability : float;
  pass2_cycle_threshold : int;
}

let default =
  {
    ants_per_iteration = 128;
    alpha = 1.0;
    beta = 2.0;
    q0 = 0.9;
    decay = 0.8;
    initial_pheromone = 1.0;
    deposit = 1.0;
    max_iterations = 32;
    heuristic = Sched.Heuristic.Critical_path;
    stall_base_probability = 0.5;
    pass2_cycle_threshold = 1;
  }

let size_category n = if n < 50 then 0 else if n < 100 then 1 else 2

let termination_condition n = size_category n + 1

let size_category_label = function
  | 0 -> "1-49"
  | 1 -> "50-99"
  | _ -> ">=100"
