exception Cornered

let run graph ~target_vgpr ~target_sgpr =
  let rl = Ready_list.create ~latency_aware:true graph in
  let rp = Rp_tracker.create graph in
  let ctx = Heuristic.make_ctx graph rp in
  let rev_slots = ref [] in
  try
    while not (Ready_list.finished rl) do
      let fitting =
        List.filter
          (fun i -> Rp_tracker.fits_within rp i ~target_vgpr ~target_sgpr)
          (Ready_list.ready_list rl)
      in
      match fitting with
      | _ :: _ ->
          let i = Heuristic.best Heuristic.Critical_path ctx fitting in
          Ready_list.schedule rl i;
          Rp_tracker.schedule rp i;
          rev_slots := Schedule.Instr i :: !rev_slots
      | [] ->
          if Ready_list.min_semi_ready_cycle rl = None && Ready_list.ready_count rl > 0 then
            (* nothing fits and nothing will become ready by waiting *)
            raise Cornered
          else begin
            Ready_list.stall rl;
            rev_slots := Schedule.Stall :: !rev_slots
          end
    done;
    match Schedule.of_slots graph ~latency_aware:true (List.rev !rev_slots) with
    | Ok s -> Some s
    | Error _ -> None
  with Cornered -> None
