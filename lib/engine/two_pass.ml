(* The orchestrator both historical drivers contained a private copy of:
   pass-1/pass-2 sequencing, lower-bound gating, the RP-target handoff
   and budget threading, now written once against the backend interface.

   Byte-identity note: everything here runs outside any backend's
   measured window (the minor-words snapshots live inside the backends'
   pass loops), and no randomness is drawn, so routing a driver through
   this module leaves its schedules, RNG streams and reported stats
   exactly as before. *)

let run (backend : Backend.t) (ctx : Backend.ctx) (rc : Region_ctx.t) : Types.result =
  let module B = (val backend : Backend.S) in
  let setup = rc.Region_ctx.setup in
  let occ = setup.Setup.occ in
  let graph = setup.Setup.graph in
  let state = B.prepare ctx rc in
  Fun.protect ~finally:(fun () -> B.teardown state) @@ fun () ->
  (* The RP term of the objective is the backend's choice; the default
     ([None]) is the paper's occupancy cliff, under which every formula
     below is byte-identical to the historical drivers. *)
  let objective =
    match B.objective with Some o -> o | None -> Sched.Objective.Cliff
  in
  (* Pass 1: minimize RP, latencies ignored. Skipped when the initial
     order already meets the RP bound, or when the backend has no RP
     pass (single-pass cost formulations go straight to pass 2). *)
  let best_order, pass1 =
    if setup.Setup.pass1_needed && B.caps.Types.rp_pass then
      B.run_order_pass state
        {
          Backend.o_label = ctx.Backend.label ^ "pass1";
          o_budget = ctx.Backend.budget;
          o_initial_cost = Sched.Objective.rp_scalar objective setup.Setup.pass1_initial_rp;
          o_initial_order = setup.Setup.pass1_initial_order;
          o_lb_cost = Sched.Objective.rp_scalar objective setup.Setup.rp_lb;
        }
    else (setup.Setup.pass1_initial_order, Types.no_pass)
  in
  let rp_target = Setup.rp_of_order occ graph best_order in
  let target_vgpr, target_sgpr = Sched.Objective.breach_targets objective rp_target in
  (* Pass 2: minimize length under the pass-1 RP target, from the padded
     pass-1 winner, on whatever budget pass 1 left unspent. *)
  let initial_schedule = Setup.pass2_initial setup ~best_pass1_order:best_order in
  let initial_length = Sched.Schedule.length initial_schedule in
  let budget2 = Types.budget_minus ctx.Backend.budget pass1 in
  let schedule, pass2 =
    if
      initial_length - setup.Setup.length_lb
      >= max 1 ctx.Backend.params.Params.pass2_cycle_threshold
    then
      B.run_schedule_pass state
        {
          Backend.s_label = ctx.Backend.label ^ "pass2";
          s_budget = budget2;
          s_target_vgpr = target_vgpr;
          s_target_sgpr = target_sgpr;
          s_initial = initial_schedule;
          s_initial_length = initial_length;
          s_length_lb = setup.Setup.length_lb;
        }
    else (initial_schedule, Types.no_pass)
  in
  {
    Types.schedule;
    cost = Sched.Cost.of_schedule occ schedule;
    heuristic_schedule = setup.Setup.amd_schedule;
    heuristic_cost = setup.Setup.amd_cost;
    rp_target;
    pass2_initial = initial_schedule;
    pass1;
    pass2;
  }
