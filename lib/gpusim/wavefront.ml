type t = {
  config : Config.t;
  ants : Aco.Ant.t array;
  params : Aco.Params.t;
  heuristic : Sched.Heuristic.kind;
  allow_optional : bool;
}

let create config graph params ~heuristic ~allow_optional_stalls =
  let lanes = config.Config.target.Machine.Target.wavefront_size in
  {
    config;
    ants = Array.init lanes (fun _ -> Aco.Ant.create graph params);
    params;
    heuristic;
    allow_optional = allow_optional_stalls;
  }

let lanes t = Array.length t.ants

type outcome = {
  time_ns : float;
  work : int;
  serialized_ops : int;
  single_path_ops : int;
  steps : int;
  finished : Aco.Ant.t list;
  hung : bool;
  quarantined : int;
  mem_faults : int;
}

let hang_outcome =
  {
    time_ns = Faults.hang_penalty_ns;
    work = 0;
    serialized_ops = 0;
    single_path_ops = 0;
    steps = 0;
    finished = [];
    hung = true;
    quarantined = 0;
    mem_faults = 0;
  }

let run_iteration ?(faults = Faults.disabled) t ~rng ~mode ~pheromone =
  let config = t.config in
  let opts = config.Config.opts in
  if Faults.enabled faults && Faults.wavefront_hang faults then hang_outcome
  else begin
  Array.iter
    (fun ant ->
      Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:t.heuristic
        ~allow_optional_stalls:t.allow_optional mode)
    t.ants;
  (* Transient lane faults are decided up front (one trial per lane per
     iteration) and strike at an injector-chosen construction step: the
     corrupted lane's candidate can no longer be trusted, so the lane is
     killed — quarantined for the iteration. Partial work is still
     charged: the fault does not refund the time already spent. *)
  let graph_n = Aco.Pheromone.size pheromone in
  let fault_at =
    if Faults.enabled faults then
      Array.map
        (fun _ -> if Faults.lane_fault faults then 1 + Faults.pick faults (max 1 graph_n) else -1)
        t.ants
    else [||]
  in
  let quarantined = ref 0 in
  let mem_faults = ref 0 in
  let time = ref 0.0 in
  let serialized = ref 0 in
  let single = ref 0 in
  let steps = ref 0 in
  let any_active () = Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Active) t.ants in
  while any_active () do
    incr steps;
    if fault_at <> [||] then
      Array.iteri
        (fun i ant ->
          if fault_at.(i) = !steps && Aco.Ant.status ant = Aco.Ant.Active then begin
            Aco.Ant.kill ant;
            incr quarantined
          end)
        t.ants;
    let force_explore =
      if opts.Config.wavefront_level_explore then
        Some (not (Support.Rng.bool rng t.params.Aco.Params.q0))
      else None
    in
    let ready_limit =
      match opts.Config.ready_list_limiting with
      | `Off -> None
      | (`Min | `Mid) as mode ->
          let mn = ref max_int and mx = ref 0 in
          Array.iter
            (fun ant ->
              if Aco.Ant.status ant = Aco.Ant.Active then begin
                let c = Aco.Ant.ready_count ant in
                if c < !mn then mn := c;
                if c > !mx then mx := c
              end)
            t.ants;
          if !mn = max_int then None
          else Some (max 1 (match mode with `Min -> !mn | `Mid -> (!mn + !mx + 1) / 2))
    in
    let events = ref [] in
    Array.iter
      (fun ant ->
        if Aco.Ant.status ant = Aco.Ant.Active then
          events := Aco.Ant.step ?force_explore ?ready_limit ant ~pheromone :: !events)
      t.ants;
    let charge = Divergence.step_charge !events in
    let reads = List.map Divergence.lane_reads !events in
    let transactions = Mem_model.step_transactions config ~reads_per_lane:reads in
    (* A memory-transaction error forces a replay of the step's
       transactions: same data, double the time. *)
    let transactions =
      if
        Faults.enabled faults && transactions > 0
        && Faults.mem_fault faults
      then begin
        incr mem_faults;
        2 * transactions
      end
      else transactions
    in
    time :=
      !time
      +. (float_of_int charge.Divergence.serialized_ops *. config.Config.gpu_ns_per_op)
      +. (float_of_int transactions *. config.Config.mem_transaction_ns);
    serialized := !serialized + charge.Divergence.serialized_ops;
    single := !single + charge.Divergence.max_single_path_ops;
    (* Early wavefront termination: a finisher used the fewest cycles any
       lane of this wavefront can still achieve, so the rest cannot win
       the iteration (Section V-B). *)
    if
      opts.Config.early_wavefront_termination
      && Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Finished) t.ants
    then
      Array.iter (fun a -> if Aco.Ant.status a = Aco.Ant.Active then Aco.Ant.kill a) t.ants
  done;
  let work = Array.fold_left (fun acc a -> acc + Aco.Ant.work a) 0 t.ants in
  let finished =
    Array.fold_left
      (fun acc a -> if Aco.Ant.status a = Aco.Ant.Finished then a :: acc else acc)
      [] t.ants
    |> List.rev
  in
  {
    time_ns = !time;
    work;
    serialized_ops = !serialized;
    single_path_ops = !single;
    steps = !steps;
    finished;
    hung = false;
    quarantined = !quarantined;
    mem_faults = !mem_faults;
  }
  end
