(** The backend-agnostic vocabulary of the two-pass scheduling engine:
    one statistics record, one result record and one budget currency
    shared by every backend, ending the near-duplicate definitions the
    sequential and parallel drivers used to carry.

    Fields that a backend cannot measure stay at their neutral value
    (zero / [false] / {!fault_counts_zero}): the sequential CPU colony
    reports no simulated time, divergence or fault counters, while the
    GPU-model colony fills every field. *)

type fault_counts = {
  lane_faults : int;
  wavefront_hangs : int;
  reduction_drops : int;
  mem_faults : int;
}
(** Injected-fault tally of a pass (all zero for backends without fault
    support). The injector itself lives in [Gpusim.Faults], which
    re-exports this record as its [counts] type. *)

val fault_counts_zero : fault_counts
val fault_counts_add : fault_counts -> fault_counts -> fault_counts
val fault_counts_total : fault_counts -> int

type pass_stats = {
  invoked : bool;  (** false when the initial schedule was already at the bound *)
  iterations : int;
  ants_simulated : int;
  work : int;  (** abstract work units (see [Aco.Ant.work]) plus table upkeep *)
  time_ns : float;  (** simulated wall time; 0 for backends without a time model *)
  improved : bool;  (** beat the pass's initial schedule *)
  hit_lower_bound : bool;
  serialized_ops : int;  (** divergence-serialized compute ops (GPU model only) *)
  single_path_ops : int;  (** the no-divergence floor for the same steps *)
  lockstep_steps : int;  (** wavefront lockstep steps across all iterations *)
  ant_steps : int;  (** individual ant construction steps *)
  selections : int;  (** ant steps that selected an instruction *)
  best_costs : int array;
      (** convergence series: entry 0 is the initial cost, entry [k] the
          best cost after the [k]th {e attempted} iteration. This is the
          one convention every backend follows: retried iterations (GPU
          model) count as attempts with the best unchanged, and for
          backends that never retry, attempted and completed iterations
          coincide. *)
  minor_words : float;  (** host minor-heap words allocated during the pass *)
  retries : int;  (** faulted iterations re-run with a reseeded stream *)
  aborted_budget : bool;
      (** the pass exhausted its compile budget and kept its best-so-far *)
  aborted_faults : bool;
      (** consecutive failures exhausted the retry allowance and the pass
          degraded to its best-so-far *)
  scored_candidates : int;
      (** pass-2 candidates whose RP fit was actually evaluated
          ({!Sched.Rp_tracker.scored_candidates} delta across the pass);
          0 for backends/passes that never filter *)
  pruned_candidates : int;
      (** candidates dismissed by the min-register lower bounds before
          any fit evaluation; nonzero only under {!caps.prune} *)
  fault_counts : fault_counts;  (** faults injected during this pass *)
}

val no_pass : pass_stats
(** Stats of a pass that never ran. *)

type result = {
  schedule : Sched.Schedule.t;  (** final latency-valid schedule *)
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;  (** the AMD baseline schedule *)
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;  (** pass-1 outcome, pass-2 constraint *)
  pass2_initial : Sched.Schedule.t;
      (** pass 2's input schedule: the latency-padded pass-1 winner. Kept
          so the pipeline can synthesize what the compiler would emit if
          the cycle-threshold filter skipped pass 2. *)
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type budget = Unlimited | Work of int | Time_ns of float
(** Compile budget, in the currency the backend meters: abstract work
    units for CPU colonies, simulated nanoseconds for backends with a
    time model ({!caps.time_model}). *)

val budget_minus : budget -> pass_stats -> budget
(** Budget left for the next pass after [stats] spent its share; clamps
    at zero. *)

type caps = {
  rp_pass : bool;  (** runs a pass-1 RP search (a [false] backend goes
                       straight to pass 2 from the heuristic order) *)
  faults : bool;  (** models fault injection and retries *)
  trace : bool;  (** emits flight-recorder spans *)
  time_model : bool;  (** meters simulated time; budgets are [Time_ns] *)
  prune : bool;  (** arms sound lower-bound candidate pruning in pass 2 *)
}
(** Capability flags the pipeline uses to pick budget currencies,
    recorder hookup and reporting columns per backend. *)
