(** Pluggable pheromone-update rules.

    A policy owns every write to the {!Pheromone} table a colony makes:
    the initial bias ([init]), the per-iteration evaporate / deposit /
    clamp / stagnation step ([update]), and the evaporation-only path
    for faulted iterations ([evaporate]). The drivers — {!Colony},
    [Gpusim.Par_aco], the weighted standalone loop — are generic in the
    policy, which is what makes new update rules (MAX-MIN Ant System
    here, others later) a [make] call instead of a driver fork.

    Two implementations:

    - {!As} — the paper's vanilla Ant System: full evaporation each
      iteration, the iteration winner deposits [deposit / (1 + cost)].
      Byte-identical to the historical inline code: same RNG stream,
      same schedules, same minor-words (qcheck-proved against the
      frozen references in [test/]).
    - {!Mmas} — MAX-MIN Ant System (Skinderowicz, arXiv 2003.11902):
      only the best-so-far solution deposits, the trail is clamped into
      [[tau_min, tau_max]] with [tau_max = deposit / ((1 + best) * rho)]
      and [tau_min = tau_max / 2n], and a colony stagnant for
      {!mmas_stagnation_limit} iterations restarts from a uniform table
      at [tau_max] (at most {!mmas_max_restarts} times per pass,
      metered as ["aco.mmas.restarts"]). A restart reseeds the deposit
      anchor, never the RNG stream. *)

type spec = As | Mmas

val spec_to_string : spec -> string

type t = {
  spec : spec;
  init : Pheromone.t -> initial_order:int array -> initial_cost:int -> unit;
      (** Reset the table and bias it toward the initial (heuristic)
          solution. Called once per pass, before the driver's measured
          window opens. *)
  update : Pheromone.t -> winner_order:int array -> winner_cost:int -> unit;
      (** One completed iteration: evaporate, deposit, clamp, detect
          stagnation. A winner-less iteration passes {!no_order} and
          [winner_cost = max_int]. Allocates at most the boxed deposit
          amount (the historical count) under {!As}. *)
  evaporate : Pheromone.t -> unit;
      (** A faulted iteration (GPU model): simulated time passed, so
          the trail still evaporates, but nothing deposits and the
          stagnation counter is untouched. *)
  patience : int;
      (** Improvement-free iterations a driver should tolerate before
          ending the pass: the historical
          [Params.termination_condition] for {!As}, extended under
          {!Mmas} so every restart window fits. *)
  restarts : unit -> int;  (** Stagnation restarts fired so far. *)
}

val no_order : int array
(** Sentinel order of a winner-less iteration (never read, never
    written — safe to share). *)

val make : spec -> params:Params.t -> n:int -> metrics:Obs.Metrics.t -> t
(** Build a policy for a region of [n] instructions. All policy state
    is allocated here — callers run it from backend [prepare], outside
    any measured minor-words window. *)

val patience : t -> int
val spec : t -> spec

val restarts : t -> int
(** Restarts fired since [make] (0 under {!As}). *)

val mmas_max_restarts : int
(** Restart budget per pass. *)

val mmas_stagnation_limit : n:int -> int
(** Stagnant iterations before an MMAS restart fires — the plateau
    length the bench's stagnation-escape detector looks for. *)

val mmas_patience : n:int -> int
(** {!Mmas} driver patience: [(max_restarts + 1) * stagnation_limit]. *)
