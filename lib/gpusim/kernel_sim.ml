let construction_time_ns (config : Config.t) ~wavefront_times =
  let simds = Machine.Target.total_simds config.target in
  let per_simd = Array.make simds 0.0 in
  Array.iteri
    (fun w time ->
      let s = w mod simds in
      per_simd.(s) <- per_simd.(s) +. time)
    wavefront_times;
  Array.fold_left Float.max 0.0 per_simd

let log2_ceil n =
  let rec go v acc = if v >= n then acc else go (v * 2) (acc + 1) in
  go 1 0

let reduction_wall_ops ~threads = (8 * log2_ceil threads) + 8

let update_wall_ops ~n ~threads = (2 * (((n + 1) * n / max threads 1) + 1)) + 4

let iteration_time_ns (config : Config.t) ~n ~wavefront_times =
  let threads = Config.threads config in
  let ops = reduction_wall_ops ~threads + update_wall_ops ~n ~threads in
  construction_time_ns config ~wavefront_times
  +. (float_of_int ops *. config.gpu_ns_per_op)
  +. (2.0 *. config.sync_overhead_ns)

(* Watchdog rule for one iteration: an iteration that overruns the
   deadline is aborted at the deadline — its time is clamped (the
   watchdog fired and recovery began) and its result is discarded by the
   caller. *)
let watchdog_clamp ~deadline_ns time_ns =
  if time_ns > deadline_ns then (deadline_ns, true) else (time_ns, false)

(* Flight-recorder view of one iteration's stage budget: the same cost
   terms iteration_time_ns charges, laid out on the kernel track as
   construct / sync / reduce / sync / update spans starting at [ts].
   Pure bookkeeping — it records what the model already charged and
   never feeds back into any time. *)
let trace_iteration trace (config : Config.t) ~n ~track ~ts ~construction_ns =
  if Obs.Trace.enabled trace then begin
    let threads = Config.threads config in
    let gpu = config.gpu_ns_per_op in
    let reduce_ns = float_of_int (reduction_wall_ops ~threads) *. gpu in
    let update_ns = float_of_int (update_wall_ops ~n ~threads) *. gpu in
    let sync = config.sync_overhead_ns in
    Obs.Trace.span trace ~track ~name:"construct" ~ts ~dur:construction_ns;
    let t1 = ts +. construction_ns in
    Obs.Trace.span trace ~track ~name:"grid_sync" ~ts:t1 ~dur:sync;
    let t2 = t1 +. sync in
    Obs.Trace.span trace ~track ~name:"reduce" ~ts:t2 ~dur:reduce_ns;
    let t3 = t2 +. reduce_ns in
    Obs.Trace.span trace ~track ~name:"grid_sync" ~ts:t3 ~dur:sync;
    Obs.Trace.span trace ~track ~name:"pheromone_update" ~ts:(t3 +. sync)
      ~dur:update_ns
  end

let pass_time_ns (config : Config.t) ~n ~ready_ub ~iteration_times =
  config.launch_overhead_ns
  +. Mem_model.setup_time_ns config ~n ~ready_ub
  +. List.fold_left ( +. ) 0.0 iteration_times
  +. Mem_model.teardown_time_ns config ~n

let pass_time_ns_buf (config : Config.t) ~n ~ready_ub ~times ~count =
  let sum = ref 0.0 in
  for i = 0 to count - 1 do
    sum := !sum +. times.(i)
  done;
  config.launch_overhead_ns
  +. Mem_model.setup_time_ns config ~n ~ready_ub
  +. !sum
  +. Mem_model.teardown_time_ns config ~n
