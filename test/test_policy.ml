(* Pheromone-policy layer tests.

   Two pillars: (1) the [As] policy is byte-identical to the historical
   inline pheromone code — proved at the table level against inline
   [Pheromone] ops and at the driver level against the frozen
   pre-refactor colony loop kept in [Ant_ref.colony_run_pass], comparing
   schedules, every stats field and the minor-words window, plus the
   position of the RNG stream afterwards; (2) the [Mmas] policy keeps
   the trail inside [tau_min, tau_max] under arbitrary interleavings of
   init / winner updates / winner-less updates / evaporations, restarts
   to a uniform table at [tau_max] exactly when the mirror model says a
   restart must fire, and meters those restarts. *)

let params = Tu.test_params

let deposit = params.Aco.Params.deposit
let decay = params.Aco.Params.decay
let ident n = Array.init n (fun i -> i)

(* A deterministic valid order (any permutation works for deposits). *)
let order_of n c = Array.init n (fun i -> (i + abs c) mod n)

(* ------------------------------------------------------------------ *)
(* As byte-identity, table level: the policy vs inline ops. *)

let test_as_table_identity =
  QCheck.Test.make ~count:100 ~name:"As policy byte-identical to inline table ops"
    (QCheck.pair (QCheck.int_range 2 12) (QCheck.small_list (QCheck.int_bound 300)))
    (fun (n, costs) ->
      let p_policy = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
      let p_inline = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
      let policy =
        Aco.Pheromone_policy.make Aco.Pheromone_policy.As ~params ~n ~metrics:Obs.Metrics.null
      in
      policy.Aco.Pheromone_policy.init p_policy ~initial_order:(ident n) ~initial_cost:7;
      Aco.Pheromone.reset p_inline ~initial:params.Aco.Params.initial_pheromone;
      Aco.Pheromone.deposit_path p_inline (ident n) (deposit /. float_of_int (1 + 7));
      List.iter
        (fun c ->
          if c mod 3 = 0 then begin
            (* winner-less iteration *)
            policy.Aco.Pheromone_policy.update p_policy
              ~winner_order:Aco.Pheromone_policy.no_order ~winner_cost:max_int;
            Aco.Pheromone.decay p_inline decay
          end
          else begin
            policy.Aco.Pheromone_policy.update p_policy ~winner_order:(order_of n c)
              ~winner_cost:c;
            Aco.Pheromone.decay p_inline decay;
            Aco.Pheromone.deposit_path p_inline (order_of n c)
              (deposit /. float_of_int (1 + c))
          end)
        costs;
      policy.Aco.Pheromone_policy.evaporate p_policy;
      Aco.Pheromone.decay p_inline decay;
      if Aco.Pheromone.cells p_policy <> Aco.Pheromone.cells p_inline then
        QCheck.Test.fail_report "As policy diverged from inline pheromone ops";
      Aco.Pheromone_policy.restarts policy = 0)

(* ------------------------------------------------------------------ *)
(* As byte-identity, driver level: [Colony.run_pass] with the As policy
   vs the frozen pre-refactor loop in [Ant_ref.colony_run_pass]. *)

let rp_cost ant =
  let vgpr, sgpr = Aco.Ant.rp_peaks ant in
  Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks Tu.occ ~vgpr ~sgpr)

let stats_key (s : Engine.Types.pass_stats) =
  ( s.Engine.Types.invoked,
    s.iterations,
    s.ants_simulated,
    s.work,
    s.improved,
    s.hit_lower_bound,
    s.aborted_budget,
    Array.to_list s.best_costs,
    s.minor_words )

type colony_driver = Policy_colony | Frozen_colony

let run_colony driver graph ~seed ~mode ~cost_of_ant =
  let n = Ddg.Graph.size graph in
  let ants =
    Array.init params.Aco.Params.ants_per_iteration (fun _ -> Aco.Ant.create graph params)
  in
  let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
  let rng = Support.Rng.create seed in
  let artifact_of_ant ant = Array.copy (Aco.Ant.order ant) in
  let termination = Aco.Params.termination_condition n in
  let common ~run =
    let best, cost, stats =
      run ~initial_cost:999 ~initial_order:(ident n) ~initial_artifact:(ident n)
    in
    (Array.to_list best, cost, stats_key stats, Support.Rng.int rng 1_000_000)
  in
  match driver with
  | Policy_colony ->
      let policy =
        Aco.Pheromone_policy.make Aco.Pheromone_policy.As ~params ~n
          ~metrics:Obs.Metrics.null
      in
      common ~run:(fun ~initial_cost ~initial_order ~initial_artifact ->
          Aco.Colony.run_pass ~params ~rng ~ants ~pheromone ~policy ~mode ~cost_of_ant
            ~artifact_of_ant ~allow_optional_stalls:true ~budget_work:max_int
            ~metrics:Obs.Metrics.null ~pass_label:"p" ~initial_cost ~initial_order
            ~initial_artifact ~lb_cost:0 ~termination)
  | Frozen_colony ->
      common ~run:(fun ~initial_cost ~initial_order ~initial_artifact ->
          Ant_ref.colony_run_pass ~params ~rng ~ants ~pheromone ~mode ~cost_of_ant
            ~artifact_of_ant ~allow_optional_stalls:true ~budget_work:max_int
            ~metrics:Obs.Metrics.null ~pass_label:"p" ~initial_cost ~initial_order
            ~initial_artifact ~lb_cost:0 ~termination)

(* First runs pay one-time module/lazy initialization inside the
   measured minor-words window; force both paths once so the qcheck
   comparisons below see steady-state allocation. *)
let warmup =
  lazy
    (let graph = Ddg.Graph.build (Tu.diamond_region ()) in
     ignore (run_colony Policy_colony graph ~seed:3 ~mode:Aco.Ant.Rp_pass ~cost_of_ant:rp_cost);
     ignore (run_colony Frozen_colony graph ~seed:3 ~mode:Aco.Ant.Rp_pass ~cost_of_ant:rp_cost))

let check_colony_identity region seed mode cost_of_ant =
  Lazy.force warmup;
  let graph = Ddg.Graph.build region in
  let a = run_colony Policy_colony graph ~seed ~mode ~cost_of_ant in
  let b = run_colony Frozen_colony graph ~seed ~mode ~cost_of_ant in
  if a <> b then
    QCheck.Test.fail_report
      "Colony.run_pass with the As policy diverged from the frozen pre-refactor loop";
  true

let test_colony_identity_rp =
  QCheck.Test.make ~count:10 ~name:"colony As pass 1 byte-identical to frozen loop"
    (QCheck.pair (Tu.arb_region ~max_size:40 ()) QCheck.small_int)
    (fun (region, seed) -> check_colony_identity region seed Aco.Ant.Rp_pass rp_cost)

let test_colony_identity_ilp =
  QCheck.Test.make ~count:10 ~name:"colony As pass 2 byte-identical to frozen loop"
    (QCheck.pair (Tu.arb_region ~max_size:40 ()) QCheck.small_int)
    (fun (region, seed) ->
      let mode = Aco.Ant.Ilp_pass { target_vgpr = 1000; target_sgpr = 1000 } in
      check_colony_identity region seed mode Aco.Ant.length)

(* ------------------------------------------------------------------ *)
(* MMAS invariants: mirror the policy's bookkeeping (best-so-far cost,
   stagnation counter, restart budget, tau bounds) in plain test code
   and assert after every op that each trail cell sits inside
   [tau_min, tau_max] — exactly, since [clamp] and the mirror use the
   same float expressions — and that a restart leaves the table uniform
   at tau_max. *)

type mmas_op = Winner of int | Winnerless | Evaporate

let arb_mmas_ops =
  let open QCheck in
  let op_gen =
    Gen.frequency
      [
        (4, Gen.map (fun c -> Winner c) (Gen.int_bound 200));
        (2, Gen.return Winnerless);
        (1, Gen.return Evaporate);
      ]
  in
  let print (n, c0, ops) =
    let op_to_string = function
      | Winner c -> Printf.sprintf "W%d" c
      | Winnerless -> "L"
      | Evaporate -> "E"
    in
    Printf.sprintf "n=%d init=%d [%s]" n c0 (String.concat ";" (List.map op_to_string ops))
  in
  make ~print
    (Gen.triple (Gen.int_range 2 10) (Gen.int_bound 200)
       (Gen.list_size (Gen.int_range 1 40) op_gen))

let test_mmas_bounds =
  QCheck.Test.make ~count:200 ~name:"mmas trail stays in [tau_min, tau_max]; restarts metered"
    arb_mmas_ops
    (fun (n, c0, ops) ->
      let metrics = Obs.Metrics.create () in
      let policy = Aco.Pheromone_policy.make Aco.Pheromone_policy.Mmas ~params ~n ~metrics in
      let pheromone =
        Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone
      in
      (* Mirror model — same float expressions as the policy. *)
      let rho =
        let r = 1.0 -. decay in
        if r > 0.0 then r else 1.0
      in
      let limit = Aco.Pheromone_policy.mmas_stagnation_limit ~n in
      let lo = ref 0.0 and hi = ref 1.0 in
      let best = ref max_int and stag = ref 0 in
      let r_pass = ref 0 and r_ever = ref 0 in
      let set_bounds cost =
        let tau_max = deposit /. float_of_int (1 + cost) /. rho in
        hi := tau_max;
        lo := tau_max /. float_of_int (2 * max 1 n)
      in
      let check_cells ~uniform =
        Array.iteri
          (fun i v ->
            if v < !lo || v > !hi then
              QCheck.Test.fail_reportf "cell %d = %.17g outside [%.17g, %.17g]" i v !lo !hi;
            if uniform && v <> !hi then
              QCheck.Test.fail_reportf "cell %d = %.17g <> tau_max %.17g right after restart"
                i v !hi)
          (Aco.Pheromone.cells pheromone)
      in
      let step winner_order winner_cost =
        policy.Aco.Pheromone_policy.update pheromone ~winner_order ~winner_cost;
        if winner_cost < !best then begin
          best := winner_cost;
          stag := 0;
          set_bounds winner_cost
        end
        else incr stag;
        let fired = !stag >= limit && !r_pass < Aco.Pheromone_policy.mmas_max_restarts in
        if fired then begin
          best := max_int;
          stag := 0;
          incr r_pass;
          incr r_ever
        end;
        check_cells ~uniform:fired
      in
      policy.Aco.Pheromone_policy.init pheromone ~initial_order:(ident n) ~initial_cost:c0;
      best := c0;
      stag := 0;
      r_pass := 0;
      set_bounds c0;
      check_cells ~uniform:false;
      List.iter
        (function
          | Winner c -> step (order_of n c) c
          | Winnerless -> step Aco.Pheromone_policy.no_order max_int
          | Evaporate ->
              policy.Aco.Pheromone_policy.evaporate pheromone;
              check_cells ~uniform:false)
        ops;
      if Aco.Pheromone_policy.restarts policy <> !r_ever then
        QCheck.Test.fail_reportf "restarts accessor %d <> mirror %d"
          (Aco.Pheromone_policy.restarts policy)
          !r_ever;
      let metered =
        match Obs.Metrics.get metrics "aco.mmas.restarts" with
        | Some m -> int_of_float (Obs.Metrics.value m)
        | None -> 0
      in
      metered = !r_ever)

(* Deterministic walk through one restart window: with n = 4 the
   stagnation limit is termination_condition 4 + 2 = 3, so three
   winner-less iterations force exactly one restart; the next genuine
   winner must re-anchor the bounds. *)
let test_mmas_restart_walk () =
  let n = 4 in
  let metrics = Obs.Metrics.create () in
  let policy = Aco.Pheromone_policy.make Aco.Pheromone_policy.Mmas ~params ~n ~metrics in
  let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
  Alcotest.(check int)
    "patience covers every restart window"
    (Aco.Pheromone_policy.mmas_patience ~n)
    (Aco.Pheromone_policy.patience policy);
  policy.Aco.Pheromone_policy.init pheromone ~initial_order:(ident n) ~initial_cost:10;
  let rho = 1.0 -. decay in
  let tau_max cost = deposit /. float_of_int (1 + cost) /. rho in
  let stagnate () =
    policy.Aco.Pheromone_policy.update pheromone
      ~winner_order:Aco.Pheromone_policy.no_order ~winner_cost:max_int
  in
  stagnate ();
  stagnate ();
  Alcotest.(check int) "no restart yet" 0 (Aco.Pheromone_policy.restarts policy);
  stagnate ();
  Alcotest.(check int) "restart fired" 1 (Aco.Pheromone_policy.restarts policy);
  Array.iter
    (fun v -> Alcotest.(check (float 0.0)) "uniform at tau_max" (tau_max 10) v)
    (Aco.Pheromone.cells pheromone);
  (* The next winner re-seeds the forgotten anchor. *)
  policy.Aco.Pheromone_policy.update pheromone ~winner_order:(order_of n 5) ~winner_cost:5;
  Array.iter
    (fun v ->
      if v > tau_max 5 then Alcotest.failf "cell %g above re-anchored tau_max %g" v (tau_max 5))
    (Aco.Pheromone.cells pheromone);
  Alcotest.(check int) "still one restart" 1 (Aco.Pheromone_policy.restarts policy)

(* ------------------------------------------------------------------ *)
(* MMAS drives a real colony pass to a sane result: valid permutation,
   never worse than the initial cost. *)

let test_mmas_colony_runs () =
  let graph = Ddg.Graph.build (Tu.random_region ~max_size:30 11) in
  let n = Ddg.Graph.size graph in
  let policy =
    Aco.Pheromone_policy.make Aco.Pheromone_policy.Mmas ~params ~n ~metrics:Obs.Metrics.null
  in
  let ants =
    Array.init params.Aco.Params.ants_per_iteration (fun _ -> Aco.Ant.create graph params)
  in
  let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
  let best, cost, stats =
    Aco.Colony.run_pass ~params ~rng:(Support.Rng.create 42) ~ants ~pheromone ~policy
      ~mode:Aco.Ant.Rp_pass ~cost_of_ant:rp_cost
      ~artifact_of_ant:(fun a -> Array.copy (Aco.Ant.order a))
      ~allow_optional_stalls:true ~budget_work:max_int ~metrics:Obs.Metrics.null
      ~pass_label:"p1" ~initial_cost:max_int ~initial_order:(ident n)
      ~initial_artifact:(ident n) ~lb_cost:0
      ~termination:(Aco.Pheromone_policy.patience policy)
  in
  Alcotest.(check bool) "improved on the unreachable initial" true (cost < max_int);
  Alcotest.(check bool) "ran" true stats.Engine.Types.invoked;
  let seen = Array.make n false in
  Array.iter (fun i -> seen.(i) <- true) best;
  Alcotest.(check int) "order is a permutation" n (Array.length best);
  Array.iteri (fun i s -> if not s then Alcotest.failf "instruction %d missing" i) seen

(* ------------------------------------------------------------------ *)
(* Spill-aware objective arithmetic and the tracker's peak_excess. *)

let spill_model =
  {
    Sched.Objective.target_occupancy = 8;
    allow_vgpr = 10;
    allow_sgpr = 5;
    vgpr_spill_cycles = 4;
    sgpr_spill_cycles = 2;
  }

let test_objective_arithmetic () =
  let r = { Sched.Cost.aprp_vgpr = 12; aprp_sgpr = 4; occupancy = 1 } in
  let spill = Sched.Objective.Spill spill_model in
  Alcotest.(check int)
    "spill scalar prices excess and keeps the pressure tie-break"
    (((12 - 10) * 4) + 12 + 4)
    (Sched.Objective.rp_scalar spill r);
  Alcotest.(check int)
    "cliff scalar unchanged" (Sched.Cost.rp_scalar r)
    (Sched.Objective.rp_scalar Sched.Objective.Cliff r);
  Alcotest.(check (pair int int))
    "spill pass 2 is unconstrained"
    (Sched.Objective.no_target, Sched.Objective.no_target)
    (Sched.Objective.breach_targets spill r);
  Alcotest.(check (pair int int))
    "cliff pass 2 targets the achieved APRP" (12, 4)
    (Sched.Objective.breach_targets Sched.Objective.Cliff r);
  Alcotest.(check int)
    "spill cycles price per-class excess"
    ((2 * 4) + (2 * 2))
    (Sched.Objective.spill_cycles spill ~vgpr:12 ~sgpr:7);
  Alcotest.(check int) "cliff never spills" 0
    (Sched.Objective.spill_cycles Sched.Objective.Cliff ~vgpr:12 ~sgpr:7)

let test_peak_excess () =
  let graph = Ddg.Graph.build (Tu.diamond_region ()) in
  let tracker = Sched.Rp_tracker.create graph in
  for i = 0 to Ddg.Graph.size graph - 1 do
    Sched.Rp_tracker.schedule tracker i
  done;
  let v = Sched.Rp_tracker.peak tracker Ir.Reg.Vgpr in
  let s = Sched.Rp_tracker.peak tracker Ir.Reg.Sgpr in
  Alcotest.(check (pair int int))
    "excess above tight targets" (1, 1)
    (Sched.Rp_tracker.peak_excess tracker ~target_vgpr:(v - 1) ~target_sgpr:(s - 1));
  Alcotest.(check (pair int int))
    "no excess at the peaks" (0, 0)
    (Sched.Rp_tracker.peak_excess tracker ~target_vgpr:v ~target_sgpr:s)

let test_mem_model_spill () =
  let m = Gpusim.Mem_model.spill_model Gpusim.Config.bench in
  Alcotest.(check bool) "vgpr spill costs cycles" true (m.Sched.Objective.vgpr_spill_cycles >= 1);
  Alcotest.(check bool) "sgpr spill costs cycles" true (m.Sched.Objective.sgpr_spill_cycles >= 1);
  Alcotest.(check bool)
    "vgpr spill at least as expensive as sgpr" true
    (m.Sched.Objective.vgpr_spill_cycles >= m.Sched.Objective.sgpr_spill_cycles);
  Alcotest.(check bool) "positive vgpr allowance" true (m.Sched.Objective.allow_vgpr > 0);
  Alcotest.(check bool) "positive target occupancy" true (m.Sched.Objective.target_occupancy > 0)

let suite =
  [
    Alcotest.test_case "mmas restart walk" `Quick test_mmas_restart_walk;
    Alcotest.test_case "mmas colony pass" `Quick test_mmas_colony_runs;
    Alcotest.test_case "objective arithmetic" `Quick test_objective_arithmetic;
    Alcotest.test_case "rp_tracker peak_excess" `Quick test_peak_excess;
    Alcotest.test_case "mem_model spill model" `Quick test_mem_model_spill;
  ]
  @ Tu.qtests
      [
        test_as_table_identity;
        test_colony_identity_rp;
        test_colony_identity_ilp;
        test_mmas_bounds;
      ]
