(* The compile-service benchmark and its CI gates.

   [run] times the same suite compile four ways — cold cache, warm
   cache, cache off, and multi-domain — checks that all four reports
   agree canonically, sweeps a skewed suite over jobs 1/2/4 (the
   [scaling] series of BENCH_compile.json), and writes the file.
   [cache_gate] asserts the two service invariants on a duplicate-heavy
   suite: the analysis-cache hit rate stays above one half, and (under a
   race dispatch plus the ride-along baseline, i.e. several consumers
   per region) the closure analysis runs exactly once per distinct
   region. [scaling_gate] asserts the multi-domain executor actually
   wins on multicore hosts (and at least does no harm on small ones). *)

type row = {
  label : string;
  wall_s : float;
  stats : Pipeline.Analysis.stats option;
  digest : string;
}

let default_jobs =
  let d = Domain.recommended_domain_count () in
  if d >= 4 then 4 else max 2 d

(* The compile work itself is identical across rows; keep it modest so
   the benchmark is about analysis and orchestration, not ACO search. *)
let config () =
  let c = Pipeline.Compile.make_config ~gpu:Gpusim.Config.bench () in
  { c with Pipeline.Compile.run_sequential = false }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let compile_row ~label ~jobs ~cache config suite =
  let wall_s, report =
    timed (fun () -> Pipeline.Executor.run_suite ~jobs ?cache config suite)
  in
  {
    label;
    wall_s;
    stats = Option.map Pipeline.Analysis.stats cache;
    digest = Pipeline.Report_digest.digest report;
  }

let write_json ~file ~jobs rows ~scaling =
  let oc = open_out file in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"jobs\": ";
  Buffer.add_string buf (string_of_int jobs);
  Buffer.add_string buf ",\n  \"rows\": [\n";
  let cold = (List.hd rows).wall_s in
  List.iteri
    (fun i r ->
      let stats_json =
        match r.stats with
        | None -> "null"
        | Some s ->
            Printf.sprintf
              "{\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"computed\": %d, \
               \"hit_rate\": %.3f}"
              s.Pipeline.Analysis.hits s.Pipeline.Analysis.misses
              s.Pipeline.Analysis.evictions s.Pipeline.Analysis.computed
              (Pipeline.Analysis.hit_rate s)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"wall_s\": %.4f, \"speedup_vs_cold\": %s, \"cache\": %s, \
            \"digest\": %S}%s\n"
           r.label r.wall_s
           (if r.wall_s > 0.0 then Printf.sprintf "%.2f" (cold /. r.wall_s) else "null")
           stats_json r.digest
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"scaling\": [\n";
  let base = match scaling with r :: _ -> r.wall_s | [] -> 0.0 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"wall_s\": %.4f, \"speedup_vs_jobs1\": %s, \"digest\": \
            %S}%s\n"
           r.label r.wall_s
           (if r.wall_s > 0.0 then Printf.sprintf "%.2f" (base /. r.wall_s) else "null")
           r.digest
           (if i = List.length scaling - 1 then "" else ",")))
    scaling;
  Buffer.add_string buf "  ]\n}\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let run ~small () =
  let scale = if small then Workload.Suite.test_scale else Workload.Suite.bench_scale in
  (* Two copies of every kernel: the duplicate-heavy workload the cache
     exists for (shared kernels and template instantiations). *)
  let suite = Workload.Suite.replicate ~copies:2 (Workload.Suite.generate scale) in
  let config = config () in
  let jobs = default_jobs in
  let warm_cache = Pipeline.Analysis.create () in
  (* Bind each row in sequence: the warm row must reuse the cache the
     cold row just filled (a list literal would evaluate right to left). *)
  let cold =
    compile_row ~label:"compile/cold-cache" ~jobs:1 ~cache:(Some warm_cache) config suite
  in
  let warm =
    compile_row ~label:"compile/warm-cache" ~jobs:1 ~cache:(Some warm_cache) config suite
  in
  let off = compile_row ~label:"compile/cache-off" ~jobs:1 ~cache:None config suite in
  let fanned =
    compile_row
      ~label:(Printf.sprintf "compile/jobs-%d" jobs)
      ~jobs
      ~cache:(Some (Pipeline.Analysis.create ()))
      config suite
  in
  let rows = [ cold; warm; off; fanned ] in
  let reference = (List.hd rows).digest in
  List.iter
    (fun r ->
      if not (String.equal r.digest reference) then begin
        Printf.eprintf "compile bench: FAIL — %s diverged from cold-cache report\n"
          r.label;
        exit 1
      end)
    rows;
  print_string "COMPILE SERVICE — COLD/WARM CACHE AND MULTI-DOMAIN WALL CLOCK\n";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %8.3f s%s\n" r.label r.wall_s
        (match r.stats with
        | None -> ""
        | Some s ->
            Printf.sprintf "  (%d hits / %d misses, %.0f%% hit rate)"
              s.Pipeline.Analysis.hits s.Pipeline.Analysis.misses
              (100.0 *. Pipeline.Analysis.hit_rate s)))
    rows;
  Printf.printf "  reports: canonically identical across all %d configurations\n\n"
    (List.length rows);
  (* Jobs sweep on the skewed suite — the workload work stealing exists
     for. Fresh cache per row so every row pays the same analysis bill. *)
  let skew =
    if small then Workload.Suite.skewed ~giants:2 ~tiny:16 ()
    else Workload.Suite.skewed ()
  in
  let scaling =
    List.map
      (fun jobs ->
        compile_row
          ~label:(Printf.sprintf "scaling/jobs-%d" jobs)
          ~jobs
          ~cache:(Some (Pipeline.Analysis.create ()))
          config skew)
      [ 1; 2; 4 ]
  in
  let sref = (List.hd scaling).digest in
  List.iter
    (fun r ->
      if not (String.equal r.digest sref) then begin
        Printf.eprintf "compile bench: FAIL — %s diverged from jobs-1 report\n" r.label;
        exit 1
      end)
    scaling;
  print_string "COMPILE SERVICE — JOBS SWEEP (SKEWED SUITE)\n";
  let base = (List.hd scaling).wall_s in
  List.iter
    (fun r ->
      Printf.printf "  %-22s %8.3f s  (%.2fx vs jobs-1)\n" r.label r.wall_s
        (if r.wall_s > 0.0 then base /. r.wall_s else 0.0))
    scaling;
  Printf.printf "  reports: byte-identical digests across the sweep\n\n";
  write_json ~file:"BENCH_compile.json" ~jobs rows ~scaling

(* CI gate: the parallel executor must pay for itself. On a >= 4-core
   host, jobs-4 must beat jobs-1 by 1.5x on the skewed suite; on 2-3
   cores it must at least break even; on a single core it may cost at
   most 10% (pool + deal + merge overhead, with every worker index
   multiplexed onto one domain). Trials interleave jobs-1 and jobs-4
   (three each, best per side) so wall-clock drift on a shared runner
   hits both sides alike; digests must match in every trial. *)
let scaling_gate () =
  let cores = Domain.recommended_domain_count () in
  let threshold = if cores >= 4 then 1.5 else if cores >= 2 then 1.0 else 0.9 in
  let suite = Workload.Suite.skewed ~giants:2 ~tiny:24 () in
  let config = config () in
  let one ~jobs =
    compile_row
      ~label:(Printf.sprintf "scaling-gate/jobs-%d" jobs)
      ~jobs
      ~cache:(Some (Pipeline.Analysis.create ()))
      config suite
  in
  let best rows =
    let r = List.hd rows in
    List.iter
      (fun (r' : row) ->
        if not (String.equal r'.digest r.digest) then begin
          Printf.eprintf "scaling-gate: FAIL — %s digest unstable across trials\n"
            r'.label;
          exit 1
        end)
      rows;
    List.fold_left (fun acc (r' : row) -> if r'.wall_s < acc.wall_s then r' else acc) r rows
  in
  let trials =
    List.init 3 (fun _ ->
        let s = one ~jobs:1 in
        let p = one ~jobs:4 in
        (s, p))
  in
  let seq = best (List.map fst trials) in
  let par = best (List.map snd trials) in
  if not (String.equal seq.digest par.digest) then begin
    Printf.eprintf "scaling-gate: FAIL — jobs-4 report diverged from jobs-1\n";
    exit 1
  end;
  let speedup = if par.wall_s > 0.0 then seq.wall_s /. par.wall_s else 0.0 in
  Printf.printf
    "scaling-gate: %d cores, jobs-1 %.3f s, jobs-4 %.3f s, speedup %.2fx (floor %.2fx), \
     digests identical\n"
    cores seq.wall_s par.wall_s speedup threshold;
  if speedup < threshold then begin
    Printf.eprintf "scaling-gate: FAIL — speedup %.2fx below the %.2fx floor\n" speedup
      threshold;
    exit 1
  end;
  print_endline "scaling-gate: OK"

let cache_gate () =
  let suite =
    Workload.Suite.replicate ~copies:2
      (Workload.Suite.generate Workload.Suite.test_scale)
  in
  let distinct =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun region ->
        Hashtbl.replace seen (Engine.Region_ctx.fingerprint_of_region region) ())
      (List.concat_map
         (fun (k : Workload.Suite.kernel) -> k.Workload.Suite.regions)
         suite.Workload.Suite.kernels);
    Hashtbl.length seen
  in
  (* Race dispatch plus the ride-along baseline: every region has four
     analysis consumers, the hostile case for the once-per-region
     invariant. *)
  let config =
    {
      (Pipeline.Compile.make_config
         ~dispatch:(Engine.Dispatch.Race [ "par"; "weighted" ])
         ())
      with
      Pipeline.Compile.run_sequential = true;
    }
  in
  let cache = Pipeline.Analysis.create () in
  let c0 = Ddg.Closure.compute_count () in
  let report = Pipeline.Executor.run_suite ~jobs:1 ~cache config suite in
  let closures = Ddg.Closure.compute_count () - c0 in
  let s = Pipeline.Analysis.stats cache in
  let hit_rate = Pipeline.Analysis.hit_rate s in
  Printf.printf
    "cache-gate: %d regions (%d distinct), %d hits / %d misses (%.0f%% hit rate), %d \
     closure analyses\n"
    (List.length
       (List.concat_map
          (fun (kr : Pipeline.Compile.kernel_report) -> kr.Pipeline.Compile.regions)
          report.Pipeline.Compile.kernels))
    distinct s.Pipeline.Analysis.hits s.Pipeline.Analysis.misses (100.0 *. hit_rate)
    closures;
  let fail msg =
    Printf.eprintf "cache-gate: FAIL — %s\n" msg;
    exit 1
  in
  if hit_rate < 0.5 then
    fail
      (Printf.sprintf "hit rate %.2f below 0.5 on a duplicate-region suite" hit_rate);
  if s.Pipeline.Analysis.computed <> distinct then
    fail
      (Printf.sprintf "%d analyses for %d distinct regions" s.Pipeline.Analysis.computed
         distinct);
  if closures <> distinct then
    fail
      (Printf.sprintf
         "%d closure computations for %d distinct regions under race dispatch" closures
         distinct);
  print_endline "cache-gate: OK"
