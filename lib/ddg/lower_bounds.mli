(** Lower bounds on schedule length and register pressure.

    ACO terminates early when the global best schedule reaches the
    pre-computed lower bound, and the compile pipeline skips ACO entirely
    when the heuristic schedule is already at the bound (Section VI-A).
    Sound but not necessarily tight bounds are fine: a loose bound only
    makes the search run longer. *)

val schedule_length : Graph.t -> int
(** [max (critical path length + 1) n] for the paper's single-issue
    machine model. *)

val register_pressure : Graph.t -> Ir.Reg.cls -> int
(** A sound lower bound on the peak register pressure of any schedule for
    the given class: the maximum of (a) the live-in count (all live-in
    registers are simultaneously live at entry), (b) the live-out count
    (simultaneously live at exit), and (c) the largest single-instruction
    Def set combined with the registers that must be live across that
    instruction because it is their only producer path... reduced to the
    simple sound form [max |defs_i|]. *)

val min_reg_lb : Closure.t -> Graph.t -> Ir.Reg.cls -> int array
(** Per-instruction min-register lower bound (Chen et al., arXiv
    2303.06855): entry [i] is a sound lower bound on how many registers
    of the class are live at the point instruction [i] is issued, in
    every valid schedule. A register is counted iff it is certainly born
    by then (live-in, or a definer among [i]'s DDG ancestors or [i]
    itself) and certainly not yet dead (live-out, defined by [i], or
    used by a strict descendant of [i]). If the bound already exceeds
    the RP target, scheduling [i] breaches the target in any schedule —
    the soundness contract behind candidate pruning
    ({!Sched.Rp_tracker}). Takes a precomputed {!Closure.t}; never
    computes one itself. *)
