let run occ graph =
  let rl = Ready_list.create ~latency_aware:true graph in
  let rp = Rp_tracker.create graph in
  let ctx = Heuristic.make_ctx graph rp in
  let rev_slots = ref [] in
  let predicted_occupancy i =
    let v = Rp_tracker.peak_if_scheduled rp i Ir.Reg.Vgpr in
    let s = Rp_tracker.peak_if_scheduled rp i Ir.Reg.Sgpr in
    Machine.Occupancy.of_pressures occ ~vgpr:v ~sgpr:s
  in
  while not (Ready_list.finished rl) do
    if Ready_list.ready_count rl > 0 then begin
      let candidates = Ready_list.ready_list rl in
      let best_occ = List.fold_left (fun acc i -> max acc (predicted_occupancy i)) 1 candidates in
      let keep = List.filter (fun i -> predicted_occupancy i = best_occ) candidates in
      (* Like GCNMaxOccupancySchedStrategy, the baseline turns
         register-conservative well before the bucket boundary: once the
         live count passes 3/4 of the pressure that the current
         occupancy admits, candidates that do not grow pressure win over
         higher-critical-path ones. This sacrifices latency hiding for
         occupancy safety — the ILP the ACO search recovers. *)
      let keep =
        let current = Rp_tracker.current rp Ir.Reg.Vgpr in
        let admissible = Machine.Occupancy.max_pressure_for occ Ir.Reg.Vgpr ~occupancy:best_occ in
        if 4 * current >= 3 * admissible then
          match List.filter (fun i -> Rp_tracker.delta_if_scheduled rp i Ir.Reg.Vgpr <= 0) keep with
          | [] -> keep
          | conservative -> conservative
        else keep
      in
      let i = Heuristic.best Heuristic.Critical_path ctx keep in
      Ready_list.schedule rl i;
      Rp_tracker.schedule rp i;
      rev_slots := Schedule.Instr i :: !rev_slots
    end
    else begin
      Ready_list.stall rl;
      rev_slots := Schedule.Stall :: !rev_slots
    end
  done;
  match Schedule.of_slots graph ~latency_aware:true (List.rev !rev_slots) with
  | Ok s -> s
  | Error v -> failwith ("Amd_scheduler.run: invalid schedule: " ^ Schedule.violation_to_string v)

let run_with_cost occ graph =
  let s = run occ graph in
  (s, Cost.of_schedule occ s)
