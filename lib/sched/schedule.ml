type slot = Stall | Instr of int

type t = { graph : Ddg.Graph.t; slots : slot array; cycle_of : int array }

type violation =
  | Missing of int
  | Duplicated of int
  | Unknown_instr of int
  | Order_violation of { src : int; dst : int }
  | Latency_violation of { src : int; dst : int; need : int; got : int }

let violation_to_string = function
  | Missing i -> Printf.sprintf "instruction %%%d never scheduled" i
  | Duplicated i -> Printf.sprintf "instruction %%%d scheduled twice" i
  | Unknown_instr i -> Printf.sprintf "slot references unknown instruction %%%d" i
  | Order_violation { src; dst } ->
      Printf.sprintf "dependence %%%d -> %%%d not respected" src dst
  | Latency_violation { src; dst; need; got } ->
      Printf.sprintf "latency of %%%d -> %%%d needs %d cycles, got %d" src dst need got

let check (g : Ddg.Graph.t) ~latency_aware slots cycle_of =
  let n = g.n in
  let seen = Array.make n false in
  let err = ref None in
  let set e = if !err = None then err := Some e in
  Array.iter
    (function
      | Stall -> ()
      | Instr i ->
          if i < 0 || i >= n then set (Unknown_instr i)
          else if seen.(i) then set (Duplicated i)
          else seen.(i) <- true)
    slots;
  (match !err with
  | Some _ -> ()
  | None ->
      (match Array.find_index (fun s -> not s) seen with
      | Some i -> set (Missing i)
      | None -> ());
      if !err = None then
        Array.iter
          (fun (e : Ddg.Graph.edge) ->
            let cs = cycle_of.(e.src) and cd = cycle_of.(e.dst) in
            if cd <= cs then set (Order_violation { src = e.src; dst = e.dst })
            else if latency_aware && cd - cs < e.latency then
              set (Latency_violation { src = e.src; dst = e.dst; need = e.latency; got = cd - cs }))
          g.edges);
  match !err with Some e -> Error e | None -> Ok ()

let of_slots g ~latency_aware slots =
  let slots = Array.of_list slots in
  let cycle_of = Array.make g.Ddg.Graph.n (-1) in
  Array.iteri
    (fun c s -> match s with Instr i when i >= 0 && i < g.Ddg.Graph.n -> cycle_of.(i) <- c | Instr _ | Stall -> ())
    slots;
  match check g ~latency_aware slots cycle_of with
  | Ok () -> Ok { graph = g; slots; cycle_of }
  | Error e -> Error e

let of_order g order =
  of_slots g ~latency_aware:false (Array.to_list (Array.map (fun i -> Instr i) order))

let validate t ~latency_aware = check t.graph ~latency_aware t.slots t.cycle_of

let is_valid t ~latency_aware = Result.is_ok (validate t ~latency_aware)

let guard t ~latency_aware ~fallback =
  if is_valid t ~latency_aware then (t, false) else (fallback, true)

let length t = Array.length t.slots

let num_stalls t =
  Array.fold_left (fun acc s -> match s with Stall -> acc + 1 | Instr _ -> acc) 0 t.slots

let order t =
  let acc = ref [] in
  for c = Array.length t.slots - 1 downto 0 do
    match t.slots.(c) with Instr i -> acc := i :: !acc | Stall -> ()
  done;
  Array.of_list !acc

let cycle t i = t.cycle_of.(i)

let latency_pad (g : Ddg.Graph.t) order =
  let n = g.n in
  let cycle_of = Array.make n (-1) in
  let rev_slots = ref [] in
  let cycle = ref 0 in
  Array.iter
    (fun i ->
      (* Earliest cycle satisfying all predecessor latencies. *)
      let earliest = ref !cycle in
      Array.iter
        (fun (p, lat) ->
          if cycle_of.(p) < 0 then invalid_arg "Schedule.latency_pad: order violates dependences";
          earliest := max !earliest (cycle_of.(p) + max lat 1))
        g.preds.(i);
      while !cycle < !earliest do
        rev_slots := Stall :: !rev_slots;
        incr cycle
      done;
      rev_slots := Instr i :: !rev_slots;
      cycle_of.(i) <- !cycle;
      incr cycle)
    order;
  { graph = g; slots = Array.of_list (List.rev !rev_slots); cycle_of }

let to_string t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun c s ->
      match s with
      | Stall -> Buffer.add_string buf (Printf.sprintf "%4d: (stall)\n" c)
      | Instr i ->
          Buffer.add_string buf
            (Printf.sprintf "%4d: %s\n" c (Ir.Instr.to_string (Ddg.Graph.instr t.graph i))))
    t.slots;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
