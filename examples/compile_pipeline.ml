(* Compile pipeline: push a small synthetic suite through the full
   compile flow — AMD heuristic, lower-bound gating, two-pass parallel
   ACO on the simulated GPU, both Section VI-D filters — and report the
   per-kernel outcome plus the modeled execution-time effect. The suite
   goes through the region executor with a shared analysis cache, so the
   run also prints what the compile service did: how many region
   analyses were computed versus served from the cache.

   Run with: dune exec examples/compile_pipeline.exe *)

let () =
  let scale =
    { Workload.Suite.test_scale with Workload.Suite.num_kernels = 6; size_factor = 1.0 }
  in
  let suite = Workload.Suite.generate scale in
  let config = Pipeline.Compile.make_config ~gpu:{ Gpusim.Config.bench with num_wavefronts = 4 } () in
  let jobs = min 2 (Domain.recommended_domain_count ()) in
  Printf.printf "compiling %d kernels / %d benchmarks (%d domains)...\n%!"
    (List.length suite.Workload.Suite.kernels)
    (List.length suite.Workload.Suite.benchmarks)
    jobs;
  let cache = Pipeline.Analysis.create () in
  let report = Pipeline.Executor.run_suite ~jobs ~cache config suite in
  Format.printf "%a@." Pipeline.Analysis.pp_stats (Pipeline.Analysis.stats cache);
  let filters = Pipeline.Filters.default in
  List.iter
    (fun (kr : Pipeline.Compile.kernel_report) ->
      let hot = Pipeline.Compile.hot_region kr in
      let final = Pipeline.Perf_model.final_for filters hot in
      Printf.printf "%-28s n=%-4d occ %d->%d  len %d->%d%s%s\n"
        kr.Pipeline.Compile.kernel.Workload.Suite.kernel_name hot.Pipeline.Compile.n
        hot.Pipeline.Compile.heuristic_cost.Sched.Cost.rp.Sched.Cost.occupancy
        final.Pipeline.Perf_model.cost.Sched.Cost.rp.Sched.Cost.occupancy
        hot.Pipeline.Compile.heuristic_cost.Sched.Cost.length
        final.Pipeline.Perf_model.cost.Sched.Cost.length
        (if final.Pipeline.Perf_model.reverted then "  [reverted]" else "")
        (if not final.Pipeline.Perf_model.aco_ran then "  [ACO not invoked]" else ""))
    report.Pipeline.Compile.kernels;
  print_newline ();
  let totals = Pipeline.Timing.compile_totals ~threshold:filters.Pipeline.Filters.cycle_threshold report in
  Printf.printf "compile time: base %.1fs, +seq ACO %.1f%%, +parallel ACO %.1f%% (simulated)\n"
    (totals.Pipeline.Timing.base_ns /. 1e9)
    (Pipeline.Timing.pct_increase totals.Pipeline.Timing.base_ns totals.Pipeline.Timing.seq_ns)
    (Pipeline.Timing.pct_increase totals.Pipeline.Timing.base_ns totals.Pipeline.Timing.par_ns);
  print_newline ();
  print_endline "modeled execution-time effect per benchmark:";
  List.iter
    (fun (b : Workload.Suite.benchmark) ->
      let pct = Pipeline.Perf_model.speedup_pct filters report b in
      if Float.abs pct >= 0.05 then
        Printf.printf "  %-32s %+6.1f%%\n" b.Workload.Suite.bench_name pct)
    report.Pipeline.Compile.suite.Workload.Suite.benchmarks
