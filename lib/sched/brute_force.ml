(* Pressure of a downward-closed set S of scheduled instructions: a
   register is live after S when it is available (defined inside S or
   live-in) and still wanted (live-out or used by an instruction outside
   S). A def with no uses at all is counted only at the instant its
   instruction issues (the step cost below), matching Rp_tracker. *)

let min_peak_pressure (g : Ddg.Graph.t) cls =
  let n = g.n in
  if n > 20 then invalid_arg "Brute_force.min_peak_pressure: region too large";
  let region = g.region in
  let instrs = (region : Ir.Region.t).instrs in
  (* Collect the class's registers with their defining instruction and
     user set. *)
  let regs : (Ir.Reg.t, int option * int list) Hashtbl.t = Hashtbl.create 32 in
  let find r = Option.value (Hashtbl.find_opt regs r) ~default:(None, []) in
  Array.iteri
    (fun i (ins : Ir.Instr.t) ->
      List.iter
        (fun u ->
          if Ir.Reg.cls_equal (u : Ir.Reg.t).cls cls then
            let d, us = find u in
            Hashtbl.replace regs u (d, i :: us))
        ins.uses;
      List.iter
        (fun d ->
          if Ir.Reg.cls_equal (d : Ir.Reg.t).cls cls then
            let _, us = find d in
            Hashtbl.replace regs d (Some i, us))
        ins.defs)
    instrs;
  let reg_list = Hashtbl.fold (fun r v acc -> (r, v) :: acc) regs [] in
  let live_count s =
    List.fold_left
      (fun acc ((r : Ir.Reg.t), (def, users)) ->
        let available = match def with Some i -> s land (1 lsl i) <> 0 | None -> true in
        let wanted =
          Ir.Region.is_live_out region r
          || List.exists (fun u -> s land (1 lsl u) = 0) users
        in
        if available && wanted then acc + 1 else acc)
      0 reg_list
  in
  let dead_defs i =
    List.length
      (List.filter
         (fun (d : Ir.Reg.t) ->
           Ir.Reg.cls_equal d.cls cls
           &&
           let _, users = find d in
           users = [] && not (Ir.Region.is_live_out region d))
         instrs.(i).defs)
  in
  let pred_mask = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter (fun (p, _) -> pred_mask.(i) <- pred_mask.(i) lor (1 lsl p)) g.preds.(i)
  done;
  let full = (1 lsl n) - 1 in
  let f = Array.make (full + 1) max_int in
  f.(0) <- live_count 0;
  for s = 1 to full do
    (* Only downward-closed sets are reachable; others stay at max_int. *)
    let base = live_count s in
    for i = 0 to n - 1 do
      if s land (1 lsl i) <> 0 then begin
        let prev = s lxor (1 lsl i) in
        (* scheduling i last requires all of i's preds in prev *)
        if pred_mask.(i) land prev = pred_mask.(i) && f.(prev) < max_int then begin
          let step = base + dead_defs i in
          let candidate = max f.(prev) step in
          if candidate < f.(s) then f.(s) <- candidate
        end
      end
    done
  done;
  f.(full)

exception Pruned

let min_schedule_length (g : Ddg.Graph.t) =
  let n = g.n in
  if n > 12 then invalid_arg "Brute_force.min_schedule_length: region too large";
  let cp = Ddg.Critpath.compute g in
  let best = ref max_int in
  (* DFS over issue decisions; state: per-instruction issue cycle (-1 =
     unscheduled). At each step either issue a ready instruction at the
     current cycle or stall to the next cycle at which something new
     becomes ready. *)
  let cycle_of = Array.make n (-1) in
  let rec go scheduled cycle =
    if scheduled = n then best := min !best cycle
    else begin
      (* bound: every unscheduled instruction still needs its backward
         critical path *)
      let bound = ref (cycle + (n - scheduled)) in
      for i = 0 to n - 1 do
        if cycle_of.(i) < 0 then begin
          let earliest = ref cycle in
          Array.iter
            (fun (p, lat) ->
              if cycle_of.(p) >= 0 then earliest := max !earliest (cycle_of.(p) + max lat 1))
            g.preds.(i);
          bound := max !bound (!earliest + Ddg.Critpath.backward cp i + 1)
        end
      done;
      if !bound >= !best then raise_notrace Pruned;
      let ready = ref [] in
      let next_event = ref max_int in
      for i = n - 1 downto 0 do
        if cycle_of.(i) < 0 then begin
          let all_sched = ref true in
          let earliest = ref 0 in
          Array.iter
            (fun (p, lat) ->
              if cycle_of.(p) < 0 then all_sched := false
              else earliest := max !earliest (cycle_of.(p) + max lat 1))
            g.preds.(i);
          if !all_sched then
            if !earliest <= cycle then ready := i :: !ready
            else next_event := min !next_event !earliest
        end
      done;
      List.iter
        (fun i ->
          cycle_of.(i) <- cycle;
          (try go (scheduled + 1) (cycle + 1) with Pruned -> ());
          cycle_of.(i) <- -1)
        !ready;
      (* stalling is only useful to reach the next latency event *)
      if !next_event < max_int then try go scheduled !next_event with Pruned -> ()
    end
  in
  (try go 0 0 with Pruned -> ());
  !best
