(* The pluggable register-pressure term of the two-pass objective.

   The historical (and default) objective treats pass 1's RP scalar as a
   hard occupancy cliff: [Cost.rp_scalar] makes one lost wavefront worth
   more than any APRP saving, and pass 2 receives the pass-1 APRP peaks
   as hard per-class ceilings. [Spill] replaces the cliff with a model of
   what excess pressure actually costs at a fixed target occupancy:
   registers above the class allowance are assumed spilled, and each
   spilled register charges a modeled round-trip memory cost (RegDem,
   arXiv 1907.02894). Under [Spill] pass 2 is unconstrained — the spill
   traffic already priced the pressure, so clamping the schedule to the
   pass-1 peaks would double-charge it. *)

type spill_model = {
  target_occupancy : int;  (* waves/SIMD the model prices pressure against *)
  allow_vgpr : int;  (* register allowance per class at that occupancy *)
  allow_sgpr : int;
  vgpr_spill_cycles : int;  (* modeled cycles per spilled register *)
  sgpr_spill_cycles : int;
}

type t = Cliff | Spill of spill_model

let to_string = function Cliff -> "cliff" | Spill _ -> "spill"

(* Pass-2 target meaning "unconstrained": far above any register-file
   size, same sentinel the weighted backend uses for its single pass. *)
let no_target = 100000

let rp_scalar t (r : Cost.rp) =
  match t with
  | Cliff -> Cost.rp_scalar r
  | Spill m ->
      let excess_v = max 0 (r.Cost.aprp_vgpr - m.allow_vgpr) in
      let excess_s = max 0 (r.Cost.aprp_sgpr - m.allow_sgpr) in
      (excess_v * m.vgpr_spill_cycles)
      + (excess_s * m.sgpr_spill_cycles)
      + r.Cost.aprp_vgpr + r.Cost.aprp_sgpr

let breach_targets t (r : Cost.rp) =
  match t with
  | Cliff -> (r.Cost.aprp_vgpr, r.Cost.aprp_sgpr)
  | Spill _ -> (no_target, no_target)

let spill_cycles t ~vgpr ~sgpr =
  match t with
  | Cliff -> 0
  | Spill m ->
      (max 0 (vgpr - m.allow_vgpr) * m.vgpr_spill_cycles)
      + (max 0 (sgpr - m.allow_sgpr) * m.sgpr_spill_cycles)
