(* The serving-mode benchmark and its CI gate.

   [run] drives a Pipeline.Serve instance through a duplicate-heavy
   request stream (every distinct request appears [copies] times, so a
   working memo must hit on all but the first appearance), measures the
   sustained request rate in wall-clock time and the simulated-latency
   percentiles across all compile replies, and checks the two serving
   invariants the acceptance criteria name:

     - warm-cache hit rate (analysis cache and schedule memo) stays at
       or above one half on the duplicate-heavy stream;
     - at fault rate zero, every served digest is byte-identical to a
       direct Compile.run_region of the same request (memo replays
       included — a hit replays the original digest).

   Both sides of the digest comparison run with metrics disabled: the
   report digest covers the passes' GC allocation counters, so identity
   only holds under identical instrumentation (see DESIGN.md).
   Results land in BENCH_serve.json for the CI artifact. *)

type spec = { shape : string; size : int; seed : int }

(* Every shape family at a few sizes, each repeated [copies] times and
   interleaved so hits and misses mix the way a real client stream
   would (template reinstantiations arriving between fresh kernels). *)
let stream ~small =
  let sizes = if small then [ 12; 18 ] else [ 16; 24; 32 ] in
  let copies = 3 in
  let distinct =
    List.concat_map
      (fun shape ->
        List.map (fun size -> { shape; size; seed = (size * 131) + 7 }) sizes)
      Workload.Shapes.spec_names
  in
  let round = List.mapi (fun i s -> (i, s)) distinct in
  (distinct, List.concat (List.init copies (fun _ -> round)))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let write_json ~file ~requests ~distinct ~wall_s ~req_per_s ~p50 ~p99 ~max_ns
    ~(analysis : Pipeline.Analysis.stats) ~memo_hits ~memo_misses ~memo_entries
    ~digest_checked =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"requests\": %d,\n\
    \  \"distinct\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"sustained_req_per_s\": %.1f,\n\
    \  \"latency_ns\": {\"p50\": %.0f, \"p99\": %.0f, \"max\": %.0f},\n\
    \  \"analysis\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f},\n\
    \  \"memo\": {\"hits\": %d, \"misses\": %d, \"entries\": %d, \"hit_rate\": %.3f},\n\
    \  \"digest_identity\": {\"fault_rate\": 0.0, \"checked\": %d, \"ok\": true}\n\
     }\n"
    requests distinct wall_s req_per_s p50 p99 max_ns analysis.Pipeline.Analysis.hits
    analysis.Pipeline.Analysis.misses
    (Pipeline.Analysis.hit_rate analysis)
    memo_hits memo_misses memo_entries
    (float_of_int memo_hits /. float_of_int (max 1 (memo_hits + memo_misses)))
    digest_checked;
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "serve bench: FAIL — %s\n" msg;
      exit 1)
    fmt

let run ~small () =
  let distinct, requests = stream ~small in
  let compile =
    {
      (Pipeline.Compile.make_config ~gpu:Gpusim.Config.bench ()) with
      Pipeline.Compile.run_sequential = false;
    }
  in
  let cfg = Pipeline.Serve.default_config compile in
  let replies = ref [] in
  let on_reply = function
    | Pipeline.Serve.Compiled c -> replies := c :: !replies
    | Pipeline.Serve.Rejected { rej_id; error } ->
        fail "request %s rejected: %s" rej_id
          (Pipeline.Serve.proto_error_message error)
    | _ -> ()
  in
  let srv = Pipeline.Serve.create ~on_reply cfg in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (i, s) ->
      Pipeline.Serve.handle srv
        (Printf.sprintf "op=compile id=r%d shape=%s size=%d seed=%d" i s.shape
           s.size s.seed);
      (* pump after every frame: the bench measures sustained compile
         throughput, not admission pressure (that is the drill's job) *)
      ignore (Pipeline.Serve.process srv))
    requests;
  let wall_s = Unix.gettimeofday () -. t0 in
  let replies = List.rev !replies in
  let n = List.length requests in
  if List.length replies <> n then
    fail "%d compile replies for %d requests" (List.length replies) n;
  let req_per_s = float_of_int n /. wall_s in
  let latencies =
    let a =
      Array.of_list
        (List.map (fun (r : Pipeline.Serve.compile_reply) -> r.rep_latency_ns) replies)
    in
    Array.sort compare a;
    a
  in
  let p50 = percentile latencies 0.50 and p99 = percentile latencies 0.99 in
  let max_ns = percentile latencies 1.0 in
  let analysis = Pipeline.Serve.analysis_stats srv in
  let memo_hits, memo_misses, memo_entries = Pipeline.Serve.memo_stats srv in
  (* Digest identity: one direct compile per distinct request, compared
     against every served reply for that request (so memo replays are
     checked too). Both sides run uninstrumented. *)
  let direct = Hashtbl.create 64 in
  List.iteri
    (fun i s ->
      let region =
        match Workload.Shapes.of_spec ~name:s.shape ~size:s.size ~seed:s.seed with
        | Some r -> r
        | None -> fail "shape %s vanished from the generator registry" s.shape
      in
      let report = Pipeline.Compile.run_region compile ~name:s.shape region in
      Hashtbl.replace direct i (Pipeline.Report_digest.digest_region report))
    distinct;
  let checked = ref 0 in
  List.iter
    (fun (r : Pipeline.Serve.compile_reply) ->
      let i = int_of_string (String.sub r.rep_id 1 (String.length r.rep_id - 1)) in
      incr checked;
      match Hashtbl.find_opt direct i with
      | Some d when String.equal d r.rep_digest -> ()
      | Some d ->
          fail "digest divergence on %s (%s): served %s, direct %s" r.rep_id
            r.rep_region r.rep_digest d
      | None -> fail "reply id %s matches no request" r.rep_id)
    replies;
  let memo_rate =
    float_of_int memo_hits /. float_of_int (max 1 (memo_hits + memo_misses))
  in
  let analysis_rate = Pipeline.Analysis.hit_rate analysis in
  Printf.printf "SERVING MODE — SUSTAINED RATE, LATENCY, WARM-CACHE HIT RATE\n";
  Printf.printf "  %-24s %d (%d distinct, x%d duplicate-heavy)\n" "requests" n
    (List.length distinct)
    (n / List.length distinct);
  Printf.printf "  %-24s %.1f req/s (%.3f s wall)\n" "sustained rate" req_per_s wall_s;
  Printf.printf "  %-24s p50 %.0f ns, p99 %.0f ns, max %.0f ns (simulated)\n"
    "compile latency" p50 p99 max_ns;
  Printf.printf "  %-24s %d hits / %d misses (%.0f%% hit rate)\n" "analysis cache"
    analysis.Pipeline.Analysis.hits analysis.Pipeline.Analysis.misses
    (100.0 *. analysis_rate);
  Printf.printf "  %-24s %d hits / %d misses, %d resident (%.0f%% hit rate)\n"
    "schedule memo" memo_hits memo_misses memo_entries (100.0 *. memo_rate);
  Printf.printf "  %-24s %d replies vs %d direct compiles, all byte-identical\n\n"
    "digest identity" !checked (List.length distinct);
  if memo_rate < 0.5 then
    fail "memo hit rate %.2f below 0.5 on a duplicate-heavy stream" memo_rate;
  if analysis_rate < 0.5 then
    fail "analysis hit rate %.2f below 0.5 on a duplicate-heavy stream" analysis_rate;
  write_json ~file:"BENCH_serve.json" ~requests:n ~distinct:(List.length distinct)
    ~wall_s ~req_per_s ~p50 ~p99 ~max_ns ~analysis ~memo_hits ~memo_misses
    ~memo_entries ~digest_checked:!checked;
  print_endline "serve bench: OK"
