type t = { n : int; desc : Support.Bitset.t array; anc : Support.Bitset.t array }

(* Closure construction is the most expensive region analysis, so the
   compile service's "analysis runs once per distinct region" gate counts
   invocations here. Atomic: region jobs run on multiple domains. *)
let computations = Atomic.make 0

let compute_count () = Atomic.get computations

let compute (g : Graph.t) =
  Atomic.incr computations;
  let n = g.n in
  let desc = Array.init n (fun _ -> Support.Bitset.create n) in
  let anc = Array.init n (fun _ -> Support.Bitset.create n) in
  (* Children-first accumulation: desc(i) = U_{(i,j)} ({j} U desc(j)). *)
  let rev = Topo.reverse_order g in
  Array.iter
    (fun i ->
      Array.iter
        (fun (j, _) ->
          Support.Bitset.add desc.(i) j;
          Support.Bitset.union_into ~into:desc.(i) desc.(j))
        g.succs.(i))
    rev;
  let fwd = Topo.order g in
  Array.iter
    (fun i ->
      Array.iter
        (fun (j, _) ->
          Support.Bitset.add anc.(i) j;
          Support.Bitset.union_into ~into:anc.(i) anc.(j))
        g.preds.(i))
    fwd;
  { n; desc; anc }

let reaches t i j = Support.Bitset.mem t.desc.(i) j

let independent t i j = i <> j && (not (reaches t i j)) && not (reaches t j i)

let independent_count t i =
  t.n - 1 - Support.Bitset.cardinal t.desc.(i) - Support.Bitset.cardinal t.anc.(i)

let max_independent t =
  let m = ref 0 in
  for i = 0 to t.n - 1 do
    m := max !m (independent_count t i)
  done;
  !m

let ready_list_upper_bound t = max_independent t + 1

let descendants t i = t.desc.(i)
let ancestors t i = t.anc.(i)
