(** Occupancy and the APRP (adjusted peak register pressure) cost.

    Occupancy is the number of wavefronts resident per SIMD unit; it is
    capped by the register file: a kernel using [v] VGPRs allows
    [min (max_waves, vgprs_per_simd / round_up(v))] wavefronts. On the
    paper's target a PRP of 24 VGPRs or fewer gives the maximum occupancy
    of 10 and PRPs in [25, 28] give 9 (Section II-A) — this module's
    default target reproduces exactly that mapping.

    The APRP of a PRP value [x] is the maximum PRP giving the same
    occupancy as [x] (so [1..24 -> 24], [25..28 -> 28]). Using APRP as
    the pass-1 cost stops the search from chasing RP reductions that
    cannot change occupancy. *)

type t

val create : Target.t -> t
val default : t
(** [create Target.vega20]. *)

val of_class_pressure : t -> Ir.Reg.cls -> int -> int
(** [of_class_pressure o cls prp] is the occupancy permitted by a peak
    pressure of [prp] registers of class [cls]; at least 1 (a kernel
    always runs, spilling notwithstanding), at most [max_waves_per_simd].
    [prp = 0] gives the maximum. *)

val of_pressures : t -> vgpr:int -> sgpr:int -> int
(** Minimum across classes. *)

val aprp : t -> Ir.Reg.cls -> int -> int
(** [aprp o cls prp]: the largest pressure with the same occupancy as
    [prp]. Monotone and idempotent. *)

val max_waves : t -> int

val max_pressure_for : t -> Ir.Reg.cls -> occupancy:int -> int
(** Largest PRP of [cls] that still allows [occupancy] wavefronts.
    Raises [Invalid_argument] if [occupancy] is out of [1..max_waves]. *)
