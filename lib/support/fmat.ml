(* Unboxed float64 matrix backing the ant data plane. One Bigarray per
   matrix, row-major, with the row stride rounded up to a full cache
   line (8 doubles = 64 bytes) so rows never share a line and a row base
   is a single shift-free multiply. Reads and writes through [get]/[set]
   compile to raw float loads/stores — no boxing at the OCaml/float
   boundary — which is the whole point: pheromone rows, eta^beta tables
   and per-ant score slices all live here and are consumed by tight
   loops that must not allocate.

   Padding cells (columns [cols..stride-1]) are guaranteed to hold 0.0
   at all times; every bulk operation below preserves that, so summation
   over a padded row equals summation over its real prefix. *)

type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; stride : int; data : mat }

(* 8 float64 per 64-byte cache line *)
let line = 8

let stride_of_cols cols = (cols + line - 1) / line * line

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Fmat.create: negative dimension";
  let stride = stride_of_cols cols in
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max (rows * stride) 1) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; stride; data }

let rows t = t.rows
let cols t = t.cols
let stride t = t.stride
let words t = Bigarray.Array1.dim t.data

let[@inline] row_base t r = r * t.stride
let[@inline] get t i = Bigarray.Array1.unsafe_get t.data i
let[@inline] set t i v = Bigarray.Array1.unsafe_set t.data i v

let check_row t r name = if r < 0 || r >= t.rows then invalid_arg name

(* Checked per-row helpers for cold paths (setup, diagnostics). *)
let row_get t r j =
  check_row t r "Fmat.row_get: row out of range";
  if j < 0 || j >= t.cols then invalid_arg "Fmat.row_get: col out of range";
  get t ((r * t.stride) + j)

let row_set t r j v =
  check_row t r "Fmat.row_set: row out of range";
  if j < 0 || j >= t.cols then invalid_arg "Fmat.row_set: col out of range";
  set t ((r * t.stride) + j) v

let fill t v =
  (* real columns only: padding must stay 0.0 *)
  for r = 0 to t.rows - 1 do
    let base = r * t.stride in
    for j = 0 to t.cols - 1 do
      set t (base + j) v
    done
  done

let clear t = Bigarray.Array1.fill t.data 0.0

let row_to_array t r =
  check_row t r "Fmat.row_to_array: row out of range";
  Array.init t.cols (fun j -> get t ((r * t.stride) + j))

let to_array t = Array.init t.rows (fun r -> row_to_array t r)

(* --- per-domain matrix pool ---------------------------------------------- *)

(* Same contract as [Arena]: backends take their colony score table in
   [prepare] and give it back in [teardown]. What is pooled is the raw
   Bigarray (the malloc), not the descriptor record — the record is a
   handful of words allocated outside every measured minor-words window.
   A parked array is zero-filled over the prefix its last owner could
   have written, so a pooled matrix is indistinguishable from a fresh
   one. *)

let pool_limit = 8
let pool_key : mat list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let pool_takes = Atomic.make 0
let pool_reuses = Atomic.make 0

let takes () = Atomic.get pool_takes
let reuses () = Atomic.get pool_reuses

let take ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Fmat.take: negative dimension";
  Atomic.incr pool_takes;
  let stride = stride_of_cols cols in
  let need = max (rows * stride) 1 in
  let pool = Domain.DLS.get pool_key in
  let rec search acc = function
    | [] -> None
    | (d : mat) :: rest when Bigarray.Array1.dim d >= need ->
        pool := List.rev_append acc rest;
        Some d
    | d :: rest -> search (d :: acc) rest
  in
  match search [] !pool with
  | Some data ->
      Atomic.incr pool_reuses;
      { rows; cols; stride; data }
  | None -> create ~rows ~cols

let give t =
  (* Writes only ever land in [0, rows*stride): restoring that prefix to
     zero restores the whole-array invariant for the next taker. *)
  let used = min (t.rows * t.stride) (Bigarray.Array1.dim t.data) in
  (if used > 0 then
     let prefix = Bigarray.Array1.sub t.data 0 used in
     Bigarray.Array1.fill prefix 0.0);
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < pool_limit then pool := t.data :: !pool
  else begin
    (* full: drop the smallest resident so capacity ratchets upward *)
    let dim (d : mat) = Bigarray.Array1.dim d in
    let smallest = List.fold_left (fun m d -> if dim d < dim m then d else m) t.data !pool in
    if smallest != t.data then
      pool := t.data :: List.filter (fun d -> d != smallest) !pool
  end
