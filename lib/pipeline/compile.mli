(** The per-region and per-suite compile flow of Section VI-A.

    Every region is scheduled by the AMD heuristic; when the heuristic
    schedule is not provably optimal (its RP cost or length is above the
    lower bound), the ACO scheduler is invoked. The suite is compiled
    once with the parallel ACO (the product compiler) and once with the
    sequential ACO from the same starting points (the timing baseline of
    Tables 3.a/3.b and 5).

    ACO is run *ungated* here while each region's gap — heuristic
    schedule length minus the length lower bound — is recorded.
    {!Report} then synthesizes the compiler's output for any
    cycle-threshold setting (the tuned default, and Table 7's sweep)
    without recompiling: a region whose gap is below the threshold is
    treated as never having invoked ACO at all (Section VI-F calls this
    "filtering out unpromising scheduling regions"). *)

type config = {
  occ : Machine.Occupancy.t;
  gpu : Gpusim.Config.t;
  params : Aco.Params.t;
  filters : Filters.config;
  robust : Robust.config;  (** budgets, watchdog deadline, retry allowance *)
  seq_seed : int;
  par_seed : int;
  run_sequential : bool;  (** also time the CPU baseline *)
}

val make_config :
  ?gpu:Gpusim.Config.t ->
  ?filters:Filters.config ->
  ?robust:Robust.config ->
  ?fault_rate:float ->
  ?fault_seed:int ->
  ?compile_budget_ms:float ->
  ?max_retries:int ->
  unit ->
  config
(** Consistent defaults: the sequential ant count equals the parallel
    thread count (the paper compares equal colonies), the ILP pass is
    ungated for later synthesis.

    Robustness knobs layer on top of [robust] (default {!Robust.default},
    i.e. fault-free and unbounded): [fault_rate] installs
    {!Gpusim.Config.uniform_faults} on [gpu] (seeded by [fault_seed]),
    [compile_budget_ms] installs {!Robust.budgets_of_ms}, and
    [max_retries] overrides the retry allowance. *)

type region_report = {
  region_name : string;
  n : int;
  size_category : int;
  length_lb : int;
  heuristic_cost : Sched.Cost.t;
  heuristic_order : int array;
  cp_cost : Sched.Cost.t;  (** Critical-Path schedule (sensitivity check) *)
  pass1_invoked : bool;
  pass2_invoked : bool;
  pass2_gap : int;
      (** heuristic schedule length minus the length lower bound — the
          quantity the cycle-threshold filter gates ACO on (known before
          any ACO work is spent on the region) *)
  aco_cost : Sched.Cost.t;  (** parallel-ACO product, before filtering *)
  aco_order : int array;
  pass1_only_cost : Sched.Cost.t;  (** product if pass 2 were skipped *)
  pass1_only_order : int array;
  seq_pass1 : Aco.Seq_aco.pass_stats option;
  seq_pass2 : Aco.Seq_aco.pass_stats option;
  par_pass1 : Gpusim.Par_aco.pass_stats;
  par_pass2 : Gpusim.Par_aco.pass_stats;
  seq_pass1_time_ns : float;
  seq_pass2_time_ns : float;
  par_pass1_time_ns : float;
  par_pass2_time_ns : float;
  degradation : Robust.degradation;  (** the region's ledger entry *)
  retries : int;  (** faulted iterations re-run across both passes *)
  fault_counts : Gpusim.Faults.counts;  (** faults injected while compiling *)
}

type kernel_report = {
  kernel : Workload.Suite.kernel;
  regions : region_report list;  (** in [kernel.regions] order *)
}

type suite_report = {
  suite : Workload.Suite.t;
  compile_config : config;
  kernels : kernel_report list;
}

val run_region :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  config ->
  name:string ->
  Ir.Region.t ->
  region_report
(** Total: always yields a report whose [aco_order] reconstructs into a
    valid schedule. Faults are retried, over-budget passes keep their
    best-so-far, and a driver that traps (or emits an invalid schedule)
    is replaced by the AMD heuristic schedule — the failure mode is
    recorded in [degradation], never raised.

    [trace] / [metrics] (default disabled, a true no-op) attach the
    flight recorder: the region becomes a span on the driver track
    enclosing its parallel-ACO passes, degradations become instants via
    {!Robust.observe}, and both drivers' per-iteration series are
    recorded under ["<name>.par."] / ["<name>.seq."] prefixes. *)

val run_suite :
  ?progress:(string -> unit) ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  config ->
  Workload.Suite.t ->
  suite_report
(** Compile every kernel of the suite (kernels shared between benchmarks
    are compiled once). [progress] receives one message per kernel;
    [trace] / [metrics] are threaded to every {!run_region}. *)

val hot_region : kernel_report -> region_report
(** The region backing the kernel's hot loop. Total for any [hot_index]:
    out-of-range indices clamp to the nearest region (raises
    [Invalid_argument] only for a kernel with no regions, which the
    workload generator never produces). *)

val find_kernel : suite_report -> Workload.Suite.benchmark -> kernel_report
(** Kernel report backing a benchmark (kernels are compiled once even
    when shared). *)
