(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), then runs the
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # everything, bench scale
     dune exec bench/main.exe -- table3 fig4  # selected experiments
     dune exec bench/main.exe -- --small      # quick run on the test scale
     dune exec bench/main.exe -- micro        # micro-benchmarks only
     dune exec bench/main.exe -- alloc-gate   # assert the per-step allocation budget
     dune exec bench/main.exe -- obs-gate     # assert the trace-on overhead budget
     dune exec bench/main.exe -- prune-gate   # assert lower-bound pruning is sound and live
     dune exec bench/main.exe -- compile      # time cold/warm cache and multi-domain compiles
     dune exec bench/main.exe -- cache-gate   # assert analysis-cache hit rate + once-per-region analysis
     dune exec bench/main.exe -- scaling-gate # assert the jobs-4 executor speedup floor (nproc-aware)
     dune exec bench/main.exe -- serve        # serving mode: req/s, latency percentiles, warm-cache hit rate
     dune exec bench/main.exe -- check        # regression sentinel vs committed BENCH_*.json
     dune exec bench/main.exe -- --trace=F --metrics=G ...  # flight-record the compile *)

(* Pre-arena reference numbers for the two acceptance benchmarks,
   measured on this harness at the PR base commit. Kept so the emitted
   JSON carries its own speedup context. *)
let baseline_ns =
  [ ("core/one_ant_pass2", 107_680.0); ("core/wavefront_iteration", 5_158_500.0) ]

let write_bench_json rows ~alloc_words_per_step ~alloc_steps ~alloc_words
    ~hot_ns_per_step ~hot_ns_per_iter ~hot_steps =
  let file = "BENCH_arena.json" in
  let oc = open_out file in
  let buf = Buffer.create 1024 in
  let fl x = if Float.is_nan x then "null" else Printf.sprintf "%.2f" x in
  Buffer.add_string buf "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (r : Micro.row) ->
      let base = List.assoc_opt r.Micro.name baseline_ns in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": %s, \
            \"baseline_ns_per_run\": %s, \"speedup_vs_baseline\": %s}%s\n"
           r.Micro.name (fl r.Micro.ns_per_run)
           (fl r.Micro.minor_words_per_run)
           (match base with Some b -> fl b | None -> "null")
           (match base with
           | Some b when r.Micro.ns_per_run > 0.0 -> fl (b /. r.Micro.ns_per_run)
           | _ -> "null")
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"alloc_gate\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"minor_words_per_ant_step\": %s,\n" (fl alloc_words_per_step));
  Buffer.add_string buf (Printf.sprintf "    \"ant_steps\": %d,\n" alloc_steps);
  Buffer.add_string buf (Printf.sprintf "    \"minor_words\": %s,\n" (fl alloc_words));
  Buffer.add_string buf (Printf.sprintf "    \"ceiling\": %s\n" (fl Micro.alloc_ceiling));
  Buffer.add_string buf "  },\n  \"hot_loop\": {\n";
  (* ns per ant step at the 1 GHz reference clock reads directly as
     cycles per scheduled instruction (one ant step schedules one
     instruction) — the series `bench check` tracks. *)
  Buffer.add_string buf
    (Printf.sprintf "    \"ns_per_ant_step\": %s,\n" (fl hot_ns_per_step));
  Buffer.add_string buf
    (Printf.sprintf "    \"cycles_per_scheduled_instruction\": %s,\n" (fl hot_ns_per_step));
  Buffer.add_string buf
    (Printf.sprintf "    \"ns_per_iteration\": %s,\n" (fl hot_ns_per_iter));
  Buffer.add_string buf (Printf.sprintf "    \"ant_steps_per_iteration_batch\": %d\n" hot_steps);
  Buffer.add_string buf "  }\n}\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let write_obs_json ~untraced_ns ~traced_ns ~overhead_pct =
  let file = "BENCH_obs.json" in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"wavefront_iteration\": {\n\
    \    \"untraced_ns_per_run\": %.0f,\n\
    \    \"traced_ns_per_run\": %.0f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"ceiling_pct\": %.0f\n\
    \  }\n\
     }\n"
    untraced_ns traced_ns overhead_pct Micro.obs_ceiling_pct;
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let write_prune_json rows ~scored_off ~scored_on ~pruned ~identical =
  let file = "BENCH_prune.json" in
  let oc = open_out file in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"regions\": [\n";
  List.iteri
    (fun i (r : Micro.prune_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"identical\": %b, \"scored_without_pruning\": %d, \
            \"scored_with_pruning\": %d, \"pruned\": %d}%s\n"
           r.Micro.pg_name r.Micro.pg_identical r.Micro.pg_scored_off r.Micro.pg_scored_on
           r.Micro.pg_pruned
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"totals\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"scored_without_pruning\": %d,\n" scored_off);
  Buffer.add_string buf (Printf.sprintf "    \"scored_with_pruning\": %d,\n" scored_on);
  Buffer.add_string buf (Printf.sprintf "    \"pruned\": %d,\n" pruned);
  Buffer.add_string buf
    (Printf.sprintf "    \"reduction_pct\": %.2f,\n"
       (if scored_off > 0 then 100.0 *. float_of_int pruned /. float_of_int scored_off
        else 0.0));
  Buffer.add_string buf (Printf.sprintf "    \"identical_schedules\": %b\n" identical);
  Buffer.add_string buf "  }\n}\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let small = List.mem "--small" args in
  let no_seq = List.mem "--no-seq" args in
  let flag_value prefix =
    List.find_map
      (fun a ->
        let k = String.length prefix in
        if String.length a > k && String.sub a 0 k = prefix then
          Some (String.sub a k (String.length a - k))
        else None)
      args
  in
  let trace_file = flag_value "--trace=" in
  let metrics_file = flag_value "--metrics=" in
  let wanted = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let want name = wanted = [] || List.mem name wanted in
  let table_names = List.map fst Tables.all in
  let needs_compile = List.exists want table_names in
  if needs_compile then begin
    let scale = if small then Workload.Suite.test_scale else Workload.Suite.bench_scale in
    let suite = Workload.Suite.generate scale in
    let stats = Workload.Suite.stats suite in
    Printf.eprintf "# suite: %d benchmarks, %d kernels, %d regions (max size %d)\n%!"
      stats.Workload.Suite.num_benchmarks stats.Workload.Suite.num_kernels
      stats.Workload.Suite.num_regions stats.Workload.Suite.max_region_size;
    let config =
      let c = Pipeline.Compile.make_config ~gpu:Gpusim.Config.bench () in
      if no_seq then { c with Pipeline.Compile.run_sequential = false } else c
    in
    (* Optional flight recording of the whole suite compile; the ring
       drops the oldest events if the suite outgrows it. *)
    let trace =
      match trace_file with
      | Some _ -> Obs.Trace.create ~capacity:(1 lsl 20) ()
      | None -> Obs.Trace.null
    in
    let metrics =
      match metrics_file with Some _ -> Obs.Metrics.create () | None -> Obs.Metrics.null
    in
    let t0 = Unix.gettimeofday () in
    let done_kernels = ref 0 in
    let report =
      Pipeline.Compile.run_suite
        ~progress:(fun k ->
          incr done_kernels;
          Printf.eprintf "# [%d/%d] %s (%.0fs)\n%!" !done_kernels
            stats.Workload.Suite.num_kernels k
            (Unix.gettimeofday () -. t0))
        ~trace ~metrics config suite
    in
    Printf.eprintf "# compiled in %.1fs\n%!" (Unix.gettimeofday () -. t0);
    (match trace_file with
    | Some file ->
        Obs.Trace.write_chrome_json trace file;
        Printf.eprintf "# wrote %s (%d events, %d dropped)\n%!" file
          (Obs.Trace.recorded trace) (Obs.Trace.dropped trace)
    | None -> ());
    (match metrics_file with
    | Some file ->
        (if Filename.check_suffix file ".json" then Obs.Metrics.write_json
         else Obs.Metrics.write_csv)
          metrics file;
        Printf.eprintf "# wrote %s\n%!" file
    | None -> ());
    let ctx = { Tables.report; filters = Pipeline.Filters.default; config } in
    List.iter (fun (name, print) -> if want name then print ctx) Tables.all
  end;
  if want "micro" then begin
    let rows = Micro.run () in
    let per_step, steps, words = Micro.alloc_gate () in
    Printf.printf "  %-28s %12.1f mnr-words/ant-step (%d steps, ceiling %.0f)\n"
      "alloc_gate" per_step steps Micro.alloc_ceiling;
    let hot_per_step, hot_per_iter, hot_steps = Micro.hot_loop () in
    Printf.printf "  %-28s %12.1f cycles/scheduled-instruction (%.0f ns/iteration)\n\n"
      "hot_loop" hot_per_step hot_per_iter;
    write_bench_json rows ~alloc_words_per_step:per_step ~alloc_steps:steps
      ~alloc_words:words ~hot_ns_per_step:hot_per_step ~hot_ns_per_iter:hot_per_iter
      ~hot_steps
  end;
  if List.mem "alloc-gate" wanted then begin
    let per_step, steps, words = Micro.alloc_gate () in
    Printf.printf
      "alloc-gate: %.1f minor words per ant step (%d ant steps, %.0f words, ceiling %.0f)\n"
      per_step steps words Micro.alloc_ceiling;
    if per_step > Micro.alloc_ceiling then begin
      Printf.eprintf
        "alloc-gate: FAIL — selection loop allocates %.1f minor words per ant step (ceiling %.0f)\n"
        per_step Micro.alloc_ceiling;
      exit 1
    end
    else print_endline "alloc-gate: OK"
  end;
  if List.mem "prune-gate" wanted then begin
    let rows = Micro.prune_gate () in
    let scored_off = List.fold_left (fun a r -> a + r.Micro.pg_scored_off) 0 rows in
    let scored_on = List.fold_left (fun a r -> a + r.Micro.pg_scored_on) 0 rows in
    let pruned = List.fold_left (fun a r -> a + r.Micro.pg_pruned) 0 rows in
    let identical = List.for_all (fun r -> r.Micro.pg_identical) rows in
    List.iter
      (fun (r : Micro.prune_row) ->
        Printf.printf
          "prune-gate: %-12s %8d scored off, %8d scored on, %8d pruned, schedules %s\n"
          r.Micro.pg_name r.Micro.pg_scored_off r.Micro.pg_scored_on r.Micro.pg_pruned
          (if r.Micro.pg_identical then "identical" else "DIVERGED"))
      rows;
    Printf.printf
      "prune-gate: total %d scored off, %d scored on, %d pruned (%.1f%% of fit \
       evaluations skipped)\n"
      scored_off scored_on pruned
      (if scored_off > 0 then 100.0 *. float_of_int pruned /. float_of_int scored_off
       else 0.0);
    write_prune_json rows ~scored_off ~scored_on ~pruned ~identical;
    let conserved = scored_off = scored_on + pruned in
    if not identical then begin
      Printf.eprintf
        "prune-gate: FAIL — pruning changed a schedule or cost (must be sound-only)\n";
      exit 1
    end;
    if not conserved then begin
      Printf.eprintf
        "prune-gate: FAIL — meter conservation violated: %d scored off <> %d scored on + \
         %d pruned\n"
        scored_off scored_on pruned;
      exit 1
    end;
    if pruned <= 0 then begin
      Printf.eprintf "prune-gate: FAIL — lower-bound pruning never fired on the suite\n";
      exit 1
    end;
    print_endline "prune-gate: OK"
  end;
  if List.mem "compile" wanted then Compile_bench.run ~small ();
  if List.mem "cache-gate" wanted then Compile_bench.cache_gate ();
  if List.mem "scaling-gate" wanted then Compile_bench.scaling_gate ();
  if List.mem "serve" wanted then Serve_bench.run ~small ();
  if List.mem "check" wanted then begin
    let rc = Check.run () in
    if rc <> 0 then exit rc
  end;
  if List.mem "obs-gate" wanted then begin
    let untraced_ns, traced_ns, overhead_pct = Micro.obs_overhead () in
    Printf.printf
      "obs-gate: wavefront_iteration %.0f ns untraced, %.0f ns traced (overhead %.2f%%, \
       ceiling %.0f%%)\n"
      untraced_ns traced_ns overhead_pct Micro.obs_ceiling_pct;
    write_obs_json ~untraced_ns ~traced_ns ~overhead_pct;
    if overhead_pct > Micro.obs_ceiling_pct then begin
      Printf.eprintf
        "obs-gate: FAIL — tracing the wavefront loop costs %.2f%% (ceiling %.0f%%)\n"
        overhead_pct Micro.obs_ceiling_pct;
      exit 1
    end
    else print_endline "obs-gate: OK"
  end
