let table : (string, Backend.t) Hashtbl.t = Hashtbl.create 8

(* Registration order, kept separately so [names] lists backends in the
   order they were installed (re-registering a name keeps its slot). *)
let order : string list ref = ref []

let register (b : Backend.t) =
  let name = Backend.name b in
  if not (Hashtbl.mem table name) then order := !order @ [ name ];
  Hashtbl.replace table name b

let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Engine.Registry: unknown backend %S (registered: %s)" name
           (String.concat ", " !order))

let names () = !order
let mem name = Hashtbl.mem table name
