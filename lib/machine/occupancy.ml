type t = { target : Target.t }

let create target = { target }
let default = create Target.vega20

let round_up v g = (v + g - 1) / g * g

let of_class_pressure o cls prp =
  if prp < 0 then invalid_arg "Occupancy.of_class_pressure: negative pressure";
  let t = o.target in
  if prp = 0 then t.max_waves_per_simd
  else
    let alloc = round_up prp (Target.granularity t cls) in
    let budget = Target.reg_budget t cls in
    max 1 (min t.max_waves_per_simd (budget / alloc))

let of_pressures o ~vgpr ~sgpr =
  min (of_class_pressure o Ir.Reg.Vgpr vgpr) (of_class_pressure o Ir.Reg.Sgpr sgpr)

let max_waves o = o.target.Target.max_waves_per_simd

let max_pressure_for o cls ~occupancy =
  let t = o.target in
  if occupancy < 1 || occupancy > t.max_waves_per_simd then
    invalid_arg "Occupancy.max_pressure_for: occupancy out of range";
  let budget = Target.reg_budget t cls in
  if occupancy = 1 then budget
  else
    (* Largest allocation granule count g with budget/g >= occupancy. *)
    let g = Target.granularity t cls in
    let alloc = budget / occupancy / g * g in
    alloc

let aprp o cls prp =
  if prp = 0 then 0
  else
    let occ = of_class_pressure o cls prp in
    let budget = Target.reg_budget o.target cls in
    if prp >= budget then prp else max prp (max_pressure_for o cls ~occupancy:occ)
