(* Printers that regenerate each table and figure of the paper's
   evaluation section from a compiled suite. *)

module T = Support.Tablefmt

type ctx = {
  report : Pipeline.Compile.suite_report;
  filters : Pipeline.Filters.config;
  config : Pipeline.Compile.config;
}

let category_label = Aco.Params.size_category_label

let table1 ctx =
  let t = Pipeline.Report.table1 ctx.filters ctx.report in
  print_string
    (T.render ~title:"TABLE 1 — BENCHMARK STATISTICS"
       ~header:[ "Stat"; "Value" ]
       [
         [ "Number of benchmarks"; T.int t.Pipeline.Report.num_benchmarks ];
         [ "Number of kernels"; T.int t.Pipeline.Report.num_kernels ];
         [ "Number of scheduling regions"; T.int t.Pipeline.Report.num_regions ];
         [ "Regions processed by ACO in pass 1"; T.int t.Pipeline.Report.pass1_regions ];
         [ "Regions processed by ACO in pass 2"; T.int t.Pipeline.Report.pass2_regions ];
         [ "Avg. processed region size in pass 1"; T.f2 t.Pipeline.Report.avg_pass1_size ];
         [ "Avg. processed region size in pass 2"; T.f2 t.Pipeline.Report.avg_pass2_size ];
         [ "Max. processed region size in pass 1"; T.int t.Pipeline.Report.max_pass1_size ];
         [ "Max. processed region size in pass 2"; T.int t.Pipeline.Report.max_pass2_size ];
       ]);
  print_newline ()

let table2 ctx =
  let t = Pipeline.Report.table2 ctx.filters ctx.report in
  print_string
    (T.render ~title:"TABLE 2 — IMPROVEMENT OF ACO RELATIVE TO AMD SCHEDULER"
       ~header:[ "Stat"; "Value" ]
       [
         [ "Regions processed by ACO in pass 1"; T.int t.Pipeline.Report.t2_pass1_regions ];
         [ "Regions processed by ACO in pass 2"; T.int t.Pipeline.Report.t2_pass2_regions ];
         [ "Overall occupancy increase"; T.pctf t.Pipeline.Report.overall_occupancy_increase_pct ];
         [ "Max. occupancy increase in any kernel"; T.pctf t.Pipeline.Report.max_occupancy_increase_pct ];
         [ "Overall schedule length reduction"; T.pctf t.Pipeline.Report.overall_length_reduction_pct ];
         [ "Max. schedule length reduction"; T.pctf t.Pipeline.Report.max_length_reduction_pct ];
       ]);
  print_newline ()

let table3 ~pass ~title ctx =
  let rows = Pipeline.Report.table3 ~pass ctx.filters ctx.report in
  let col f = List.map f rows in
  print_string
    (T.render ~title
       ~header:("Inst. count range" :: List.map (fun (r : Pipeline.Report.speedup_row) -> category_label r.Pipeline.Report.category) rows)
       [
         "Regions processed by ACO" :: col (fun r -> T.int r.Pipeline.Report.processed);
         "Comparable regions" :: col (fun r -> T.int r.Pipeline.Report.comparable);
         "Geometric mean speedup" :: col (fun r -> T.f2 r.Pipeline.Report.geomean);
         "Max. speedup" :: col (fun r -> T.f2 r.Pipeline.Report.max_speedup);
         "Min. speedup" :: col (fun r -> T.f2 r.Pipeline.Report.min_speedup);
       ]);
  print_newline ()

let table3a = table3 ~pass:`One ~title:"TABLE 3.a — PARALLEL SPEEDUP IN THE FIRST PASS"
let table3b = table3 ~pass:`Two ~title:"TABLE 3.b — PARALLEL SPEEDUP IN THE SECOND PASS"

let speedup_figure ~pass ~title ctx =
  let data = Pipeline.Report.speedups ~pass ctx.filters ctx.report in
  let edges = [| 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |] in
  let label i =
    if i = Array.length edges - 2 then Printf.sprintf ">=%.1fx" edges.(i)
    else Printf.sprintf "%.1f-%.1fx" edges.(i) edges.(i + 1)
  in
  List.iter
    (fun cat ->
      let xs = List.filter_map (fun (c, s) -> if c = cat then Some s else None) data in
      if xs <> [] then begin
        let h = Support.Stats.histogram ~edges xs in
        print_string
          (Support.Stats.render_histogram
             ~title:(Printf.sprintf "%s — regions of size %s (%d regions)" title (category_label cat) (List.length xs))
             ~label h)
      end)
    [ 0; 1; 2 ];
  print_newline ()

let fig2 = speedup_figure ~pass:`One ~title:"Fig. 2 — speedup distribution, pass 1"
let fig3 = speedup_figure ~pass:`Two ~title:"Fig. 3 — speedup distribution, pass 2"

let ablation_table ~title ~baseline ctx =
  let rows =
    Pipeline.Ablation.compare_opts ctx.config ctx.report ~baseline
      ~optimized:Gpusim.Config.opts_paper
  in
  let col f = List.map f rows in
  print_string
    (T.render ~title
       ~header:("Inst. count range" :: List.map (fun (r : Pipeline.Ablation.time_row) -> category_label r.Pipeline.Ablation.category) rows)
       [
         "Pass 1 overall improvement" :: col (fun r -> T.pctf r.Pipeline.Ablation.pass1_overall_pct);
         "Pass 1 max. improvement" :: col (fun r -> T.pctf r.Pipeline.Ablation.pass1_max_pct);
         "Pass 2 overall improvement" :: col (fun r -> T.pctf r.Pipeline.Ablation.pass2_overall_pct);
         "Pass 2 max. improvement" :: col (fun r -> T.pctf r.Pipeline.Ablation.pass2_max_pct);
       ]);
  print_newline ()

let table4a =
  ablation_table ~title:"TABLE 4.a — IMPROVEMENTS IN ACO TIME FROM MEMORY OPTIMIZATIONS"
    ~baseline:Gpusim.Config.opts_no_memory

let table4b =
  ablation_table ~title:"TABLE 4.b — IMPROVEMENTS IN ACO TIME FROM DIVERGENCE OPTIMIZATIONS"
    ~baseline:Gpusim.Config.opts_no_divergence

let table5 ctx =
  let t =
    Pipeline.Timing.compile_totals ~threshold:ctx.filters.Pipeline.Filters.cycle_threshold
      ctx.report
  in
  let sec ns = Printf.sprintf "%.0f" (ns /. 1e9) in
  let with_pct ns =
    Printf.sprintf "%s (%.1f%%)" (sec ns) (Pipeline.Timing.pct_increase t.Pipeline.Timing.base_ns ns)
  in
  print_string
    (T.render ~title:"TABLE 5 — TOTAL COMPILE TIMES (simulated seconds)"
       ~header:[ "Scheduler"; "Total Compile Time" ]
       [
         [ "Base AMD"; sec t.Pipeline.Timing.base_ns ];
         [ "Sequential ACO"; with_pct t.Pipeline.Timing.seq_ns ];
         [ "Parallel ACO"; with_pct t.Pipeline.Timing.par_ns ];
       ]);
  print_newline ()

let table6 ctx =
  let rows =
    Pipeline.Ablation.stall_fraction_sweep ctx.config ctx.report
      ~fractions:[ 0.25; 0.5; 0.75 ] ~min_region_size:100
  in
  let col f = List.map f rows in
  print_string
    (T.render ~title:"TABLE 6 — EXPERIMENTATION WITH OPTIONAL STALLS (regions >= 100)"
       ~header:
         ("% Blocks inserting optional stalls"
         :: List.map (fun (r : Pipeline.Ablation.stall_row) ->
                Printf.sprintf "%.0f%%" (r.Pipeline.Ablation.fraction *. 100.0))
              rows)
       [
         "% Increase in ACO Time" :: col (fun r -> T.pctf r.Pipeline.Ablation.aco_time_increase_pct);
         "% Improvement in schedule length"
         :: col (fun r -> T.pctf r.Pipeline.Ablation.length_improvement_pct);
         "Max. % improvement in schedule length"
         :: col (fun r -> T.pctf r.Pipeline.Ablation.max_length_improvement_pct);
       ]);
  print_newline ()

let fig4 ctx =
  let f = Pipeline.Report.fig4 ctx.filters ctx.report in
  print_endline "Fig. 4 — execution-time speedup of benchmarks (significant only)";
  if f.Pipeline.Report.rows = [] then print_endline "  (no significant differences)"
  else begin
    let width = 40 in
    let maxpct =
      List.fold_left (fun acc (_, p) -> Float.max acc (Float.abs p)) 1.0 f.Pipeline.Report.rows
    in
    List.iter
      (fun (name, pct) ->
        let bar = int_of_float (Float.abs pct /. maxpct *. float_of_int width) in
        Printf.printf "  %-36s %+7.1f%% %s\n" name pct (String.make bar '#'))
      f.Pipeline.Report.rows
  end;
  Printf.printf "  geometric-mean improvement: %.1f%%\n" f.Pipeline.Report.geomean_improvement_pct;
  Printf.printf "  benchmarks improved >=5%%: %d, >=10%%: %d\n" f.Pipeline.Report.improved_ge_5pct
    f.Pipeline.Report.improved_ge_10pct;
  Printf.printf "  max regression: %.1f%%\n\n" f.Pipeline.Report.max_regression_pct

let table7 ctx =
  let rows = Pipeline.Report.table7 ~thresholds:[ 3; 5; 10; 15; 21; 25 ] ctx.report in
  let col f = List.map f rows in
  print_string
    (T.render ~title:"TABLE 7 — EXPERIMENTATION WITH CYCLE-BASED FILTER"
       ~header:
         ("Cycles" :: List.map (fun (r : Pipeline.Report.table7_row) -> string_of_int r.Pipeline.Report.threshold) rows)
       [
         "Imps. >= 3%" :: col (fun r -> T.int r.Pipeline.Report.imps_ge_3);
         "Imps. >= 5%" :: col (fun r -> T.int r.Pipeline.Report.imps_ge_5);
         "Imps. >= 10%" :: col (fun r -> T.int r.Pipeline.Report.imps_ge_10);
         "Regs. >= 3%" :: col (fun r -> T.int r.Pipeline.Report.regs_ge_3);
         "Regs. >= 5%" :: col (fun r -> T.int r.Pipeline.Report.regs_ge_5);
         "Regs. >= 10%" :: col (fun r -> T.int r.Pipeline.Report.regs_ge_10);
         "Max. Reg." :: col (fun r -> T.pctf r.Pipeline.Report.max_regression);
       ]);
  print_newline ()

let ready_limit ctx =
  let rows = Pipeline.Ablation.ready_limit_experiment ctx.config ctx.report in
  print_string
    (T.render
       ~title:
         "EXTRA — READY-LIST LIMITING (Section V-B negative result; vs limiting off)"
       ~header:[ "Limiting mode"; "ACO time change"; "Schedule length change" ]
       (List.map
          (fun (r : Pipeline.Ablation.ready_limit_row) ->
            [
              r.Pipeline.Ablation.limiting;
              T.pctf r.Pipeline.Ablation.time_change_pct;
              T.pctf r.Pipeline.Ablation.quality_change_pct;
            ])
          rows));
  print_newline ()

let objective ctx =
  let rows = Pipeline.Ablation.objective_comparison ctx.config ctx.report in
  print_string
    (T.render
       ~title:
         "EXTRA — TWO-PASS vs WEIGHTED-SUM OBJECTIVE (Section II-A design choice; ACO-eligible regions)"
       ~header:
         [ "Objective"; "Regions at better occupancy"; "Total occupancy"; "Total length" ]
       (List.map
          (fun (r : Pipeline.Ablation.objective_row) ->
            [
              r.Pipeline.Ablation.objective;
              T.int r.Pipeline.Ablation.kernels_at_better_occupancy;
              T.int r.Pipeline.Ablation.total_occupancy;
              T.int r.Pipeline.Ablation.total_length;
            ])
          rows));
  print_newline ()

let faults ctx =
  (* Recompile the suite under a fault storm with finite compile budgets
     and print the degradation ledger. The product compile held in
     [ctx.report] is untouched; the sequential baseline is skipped (the
     ledger concerns the parallel driver). *)
  let base = ctx.config in
  let fault_config =
    {
      base with
      Pipeline.Compile.gpu =
        Gpusim.Config.with_faults base.Pipeline.Compile.gpu (Gpusim.Config.uniform_faults 0.10);
      robust =
        {
          Pipeline.Robust.default with
          Pipeline.Robust.compile_budget_ns = Pipeline.Robust.budgets_of_ms 2.0;
        };
      run_sequential = false;
    }
  in
  let report = Pipeline.Compile.run_suite fault_config ctx.report.Pipeline.Compile.suite in
  let rows =
    Pipeline.Report.degradation_table report @ Pipeline.Report.degradation_total report
  in
  let label (r : Pipeline.Report.degradation_row) =
    r.Pipeline.Report.d_backend ^ "/"
    ^
    if r.Pipeline.Report.d_category < 0 then "all" else category_label r.Pipeline.Report.d_category
  in
  let col f = List.map (fun (r : Pipeline.Report.degradation_row) -> f r) rows in
  let tally f = col (fun r -> T.int (f r.Pipeline.Report.d_tally)) in
  print_string
    (T.render
       ~title:
         "FAULTS — DEGRADATION LEDGER (10% lane-fault rate, 2/4/8 ms budgets)"
       ~header:("Stat" :: List.map label rows)
       [
         "Regions compiled" :: tally (fun t -> t.Pipeline.Robust.regions);
         "Clean" :: tally (fun t -> t.Pipeline.Robust.clean);
         "Recovered via retries" :: tally (fun t -> t.Pipeline.Robust.retried);
         "Budget exceeded" :: tally (fun t -> t.Pipeline.Robust.budget_exceeded);
         "Heuristic fallback" :: tally (fun t -> t.Pipeline.Robust.faulted_fallback);
         (* only the serve loop sheds; a direct compile shows zeros here,
            which is itself the check that the driver never sheds *)
         "Shed (overload)" :: tally (fun t -> t.Pipeline.Robust.shed_overload);
         "Total retries" :: tally (fun t -> t.Pipeline.Robust.total_retries);
         "Faults injected"
         :: col (fun r -> T.int (Gpusim.Faults.total r.Pipeline.Report.d_faults));
       ]);
  print_newline ()

let perf ctx =
  let rows =
    Pipeline.Report.perf_table ctx.report @ [ Pipeline.Report.perf_total ctx.report ]
  in
  let label (r : Pipeline.Report.perf_row) =
    if r.Pipeline.Report.p_category < 0 then "all" else category_label r.Pipeline.Report.p_category
  in
  let col f = List.map (fun (r : Pipeline.Report.perf_row) -> f r) rows in
  print_string
    (T.render
       ~title:"PERF — ARENA ALLOCATION DISCIPLINE (parallel passes, host-side counters)"
       ~header:("Stat" :: List.map label rows)
       [
         "Regions compiled" :: col (fun r -> T.int r.Pipeline.Report.p_regions);
         "Lockstep steps" :: col (fun r -> T.int r.Pipeline.Report.p_lockstep_steps);
         "Ant steps" :: col (fun r -> T.int r.Pipeline.Report.p_ant_steps);
         "Selection steps" :: col (fun r -> T.int r.Pipeline.Report.p_selections);
         "Candidates scored" :: col (fun r -> T.int r.Pipeline.Report.p_scored_candidates);
         "Candidates pruned" :: col (fun r -> T.int r.Pipeline.Report.p_pruned_candidates);
         "Minor words allocated" :: col (fun r -> Printf.sprintf "%.0f" r.Pipeline.Report.p_minor_words);
         "Minor words / ant step" :: col (fun r -> T.f2 r.Pipeline.Report.p_words_per_ant_step);
       ]);
  print_newline ()

(* --- MMAS vs AS convergence over hot regions ----------------------- *)

(* Stagnation escape: a plateau of at least [limit] consecutive equal
   best-so-far entries followed by a strict improvement — the signature
   an MMAS restart leaves in the driver's convergence series (the
   restart fires after [limit] stagnant iterations; the reseeded table
   then finds something better). *)
let escaped ~limit series =
  let n = Array.length series in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < n do
    let j = ref (!i + 1) in
    while !j < n && series.(!j) = series.(!i) do
      incr j
    done;
    if !j < n && !j - !i >= limit && series.(!j) < series.(!i) then found := true;
    i := !j
  done;
  !found

type mmas_row = {
  mv_name : string;
  mv_n : int;
  mv_winner : string;
  mv_seq_occ : int;
  mv_mmas_occ : int;
  mv_seq_len : int;
  mv_mmas_len : int;
  mv_restarts : int;
  mv_escaped : bool;
  mv_seq_p1 : int array;
  mv_seq_p2 : int array;
  mv_mmas_p1 : int array;
  mv_mmas_p2 : int array;
}

let hot_regions (suite : Workload.Suite.t) =
  List.map
    (fun (k : Workload.Suite.kernel) ->
      let i =
        max 0 (min (List.length k.Workload.Suite.regions - 1) k.Workload.Suite.hot_index)
      in
      (k.Workload.Suite.kernel_name ^ "/hot", List.nth k.Workload.Suite.regions i))
    suite.Workload.Suite.kernels

let mmas_rows config suite =
  let race_config =
    {
      config with
      Pipeline.Compile.dispatch = Engine.Dispatch.Race [ "seq"; "mmas" ];
      run_sequential = false;
    }
  in
  List.filter_map
    (fun (name, region) ->
      (* Fresh metrics per region: in a seq,mmas race only the MMAS
         policy meters restarts, so the counter attributes cleanly. *)
      let metrics = Obs.Metrics.create () in
      let r = Pipeline.Compile.run_region race_config ~metrics ~name region in
      match
        (Pipeline.Compile.find_run r "seq", Pipeline.Compile.find_run r "mmas")
      with
      | Some seq, Some mmas ->
          let cost (run : Pipeline.Compile.backend_run) =
            run.Pipeline.Compile.result.Engine.Types.cost
          in
          let series (run : Pipeline.Compile.backend_run) pass =
            (pass run.Pipeline.Compile.result).Engine.Types.best_costs
          in
          let p1 (res : Engine.Types.result) = res.Engine.Types.pass1 in
          let p2 (res : Engine.Types.result) = res.Engine.Types.pass2 in
          let restarts =
            match Obs.Metrics.get metrics "aco.mmas.restarts" with
            | Some m -> int_of_float (Obs.Metrics.value m)
            | None -> 0
          in
          let limit =
            Aco.Pheromone_policy.mmas_stagnation_limit ~n:r.Pipeline.Compile.n
          in
          Some
            {
              mv_name = name;
              mv_n = r.Pipeline.Compile.n;
              mv_winner = r.Pipeline.Compile.product_backend;
              mv_seq_occ = (cost seq).Sched.Cost.rp.Sched.Cost.occupancy;
              mv_mmas_occ = (cost mmas).Sched.Cost.rp.Sched.Cost.occupancy;
              mv_seq_len = (cost seq).Sched.Cost.length;
              mv_mmas_len = (cost mmas).Sched.Cost.length;
              mv_restarts = restarts;
              mv_escaped =
                restarts > 0
                && (escaped ~limit (series mmas p1) || escaped ~limit (series mmas p2));
              mv_seq_p1 = series seq p1;
              mv_seq_p2 = series seq p2;
              mv_mmas_p1 = series mmas p1;
              mv_mmas_p2 = series mmas p2;
            }
      | _ -> None)
    (hot_regions suite)

type mmas_summary = {
  ms_regions : int;
  ms_mmas_wins : int;
  ms_strict_len_wins : int;
  ms_restarts : int;
  ms_escapes : int;
  ms_seq_total_length : int;
  ms_mmas_total_length : int;
}

let summarize_mmas rows =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    ms_regions = List.length rows;
    ms_mmas_wins = sum (fun r -> if String.equal r.mv_winner "mmas" then 1 else 0);
    ms_strict_len_wins =
      sum (fun r ->
          if
            r.mv_mmas_occ > r.mv_seq_occ
            || (r.mv_mmas_occ = r.mv_seq_occ && r.mv_mmas_len < r.mv_seq_len)
          then 1
          else 0);
    ms_restarts = sum (fun r -> r.mv_restarts);
    ms_escapes = sum (fun r -> if r.mv_escaped then 1 else 0);
    ms_seq_total_length = sum (fun r -> r.mv_seq_len);
    ms_mmas_total_length = sum (fun r -> r.mv_mmas_len);
  }

(* The deterministic fixture `bench check` diffs against the committed
   BENCH_backends.json: always the test-scale suite, always the same
   race, independent of the scale the tables above ran at. *)
let mmas_check_config () =
  let c = Pipeline.Compile.make_config ~gpu:Gpusim.Config.bench () in
  { c with Pipeline.Compile.run_sequential = false }

let mmas_check_rows () =
  mmas_rows (mmas_check_config ()) (Workload.Suite.generate Workload.Suite.test_scale)

let write_backends_json rows =
  let file = "BENCH_backends.json" in
  let s = summarize_mmas rows in
  let oc = open_out file in
  let buf = Buffer.create 4096 in
  let series a =
    "[" ^ String.concat ", " (List.map string_of_int (Array.to_list a)) ^ "]"
  in
  Buffer.add_string buf "{\n  \"scale\": \"test\",\n  \"race\": [\"seq\", \"mmas\"],\n";
  Buffer.add_string buf "  \"regions\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"winner\": %S, \"seq_occ\": %d, \
            \"mmas_occ\": %d, \"seq_len\": %d, \"mmas_len\": %d, \"restarts\": %d, \
            \"escaped\": %b,\n\
           \     \"seq_p1\": %s, \"mmas_p1\": %s,\n\
           \     \"seq_p2\": %s, \"mmas_p2\": %s}%s\n"
           r.mv_name r.mv_n r.mv_winner r.mv_seq_occ r.mv_mmas_occ r.mv_seq_len
           r.mv_mmas_len r.mv_restarts r.mv_escaped (series r.mv_seq_p1)
           (series r.mv_mmas_p1) (series r.mv_seq_p2) (series r.mv_mmas_p2)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n  \"summary\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"regions\": %d,\n" s.ms_regions);
  Buffer.add_string buf (Printf.sprintf "    \"mmas_wins\": %d,\n" s.ms_mmas_wins);
  Buffer.add_string buf
    (Printf.sprintf "    \"mmas_strict_len_wins\": %d,\n" s.ms_strict_len_wins);
  Buffer.add_string buf (Printf.sprintf "    \"restarts\": %d,\n" s.ms_restarts);
  Buffer.add_string buf (Printf.sprintf "    \"escapes\": %d,\n" s.ms_escapes);
  Buffer.add_string buf
    (Printf.sprintf "    \"seq_total_length\": %d,\n" s.ms_seq_total_length);
  Buffer.add_string buf
    (Printf.sprintf "    \"mmas_total_length\": %d\n" s.ms_mmas_total_length);
  Buffer.add_string buf "  }\n}\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "# wrote %s\n%!" file

let mmas_convergence ctx =
  let rows = mmas_rows ctx.config ctx.report.Pipeline.Compile.suite in
  let s = summarize_mmas rows in
  print_string
    (T.render
       ~title:
         "BACKENDS — MMAS vs AS CONVERGENCE OVER HOT REGIONS (race seq,mmas; \
          occupancy first, then length)"
       ~header:
         [ "Region"; "n"; "Winner"; "AS occ"; "MMAS occ"; "AS len"; "MMAS len";
           "Restarts"; "Escaped" ]
       (List.map
          (fun r ->
            [
              r.mv_name;
              T.int r.mv_n;
              r.mv_winner;
              T.int r.mv_seq_occ;
              T.int r.mv_mmas_occ;
              T.int r.mv_seq_len;
              T.int r.mv_mmas_len;
              T.int r.mv_restarts;
              (if r.mv_escaped then "yes" else "no");
            ])
          rows));
  Printf.printf
    "  mmas: won %d/%d hot region(s) (%d strictly better), %d restart(s), %d \
     stagnation escape(s)\n\n"
    s.ms_mmas_wins s.ms_regions s.ms_strict_len_wins s.ms_restarts s.ms_escapes;
  (* The committed regression fixture is always test-scale so `bench
     check` can re-measure it cheaply and deterministically. *)
  write_backends_json (mmas_check_rows ())

let backends ctx =
  (* Race every product backend over each kernel's hot region and compare
     the schedules they ship: one compile per region with the race
     dispatch, so all backends start from the same setup and the best
     product wins the region (occupancy first, then length). *)
  let names = [ "seq"; "par"; "weighted"; "mmas"; "mmas-spill" ] in
  let race_config =
    {
      ctx.config with
      Pipeline.Compile.dispatch = Engine.Dispatch.Race names;
      run_sequential = false;
    }
  in
  let reports =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        let i =
          max 0 (min (List.length k.Workload.Suite.regions - 1) k.Workload.Suite.hot_index)
        in
        Pipeline.Compile.run_region race_config
          ~name:(k.Workload.Suite.kernel_name ^ "/hot")
          (List.nth k.Workload.Suite.regions i))
      ctx.report.Pipeline.Compile.suite.Workload.Suite.kernels
  in
  let row name =
    let runs = List.filter_map (fun r -> Pipeline.Compile.find_run r name) reports in
    let wins =
      List.length
        (List.filter
           (fun (r : Pipeline.Compile.region_report) ->
             String.equal r.Pipeline.Compile.product_backend name)
           reports)
    in
    let sum f = List.fold_left (fun acc run -> acc + f run) 0 runs in
    let cost (run : Pipeline.Compile.backend_run) = run.Pipeline.Compile.result.Engine.Types.cost in
    let degraded =
      sum (fun run ->
          if run.Pipeline.Compile.run_degradation <> Pipeline.Robust.Clean then 1 else 0)
    in
    let time_ms =
      List.fold_left
        (fun acc (run : Pipeline.Compile.backend_run) ->
          acc +. run.Pipeline.Compile.run_pass1_time_ns +. run.Pipeline.Compile.run_pass2_time_ns)
        0.0 runs
      /. 1e6
    in
    [
      name;
      T.int (List.length runs);
      T.int wins;
      T.int (sum (fun run -> (cost run).Sched.Cost.rp.Sched.Cost.occupancy));
      T.int (sum (fun run -> (cost run).Sched.Cost.length));
      T.int degraded;
      Printf.sprintf "%.2f" time_ms;
    ]
  in
  print_string
    (T.render
       ~title:
         "BACKENDS — PRODUCT COMPARISON OVER HOT REGIONS (race dispatch, best schedule \
          ships)"
       ~header:
         [ "Backend"; "Regions"; "Regions won"; "Total occupancy"; "Total length";
           "Degraded"; "Modeled time (ms)" ]
       (List.map row names));
  print_newline ();
  mmas_convergence ctx

let convergence ctx =
  (* Convergence telemetry of the product compile: per-pass best-cost
     trajectories. Rows that improved past their seed schedule come
     first; the listing is capped so a bench-scale suite stays legible. *)
  let rows = Pipeline.Report.convergence_table ctx.report in
  let live = List.filter (fun (r : Pipeline.Report.convergence_row) -> r.Pipeline.Report.c_iterations > 0) rows in
  let improved, flat =
    List.partition
      (fun (r : Pipeline.Report.convergence_row) -> r.Pipeline.Report.c_final < r.Pipeline.Report.c_initial)
      live
  in
  let cap = 20 in
  let take n xs =
    let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
    go n xs
  in
  let shown = take cap (improved @ flat) in
  print_string (Pipeline.Report.render_convergence shown);
  Printf.printf
    "  convergence: %d ACO pass runs, %d improved on their initial schedule%s\n\n"
    (List.length live) (List.length improved)
    (if List.length live > cap then Printf.sprintf " (showing %d)" cap else "")

let all =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", (fun ctx -> table3a ctx; table3b ctx));
    ("fig2", fig2);
    ("fig3", fig3);
    ("table4a", table4a);
    ("table4b", table4b);
    ("table5", table5);
    ("table6", table6);
    ("fig4", fig4);
    ("table7", table7);
    ("ready-limit", ready_limit);
    ("objective", objective);
    ("faults", faults);
    ("perf", perf);
    ("backends", backends);
    ("convergence", convergence);
  ]
