(** Fixed-population work-stealing deque (Chase-Lev) over int items.

    The whole population is loaded at {!create}; nothing can be pushed
    afterwards, so the buffer is immutable once shared and only the two
    cursors are contended. One domain — the owner — calls {!take}; any
    other domain calls {!steal}. The owner pops from the high end of the
    buffer, thieves from the low end. OCaml atomics are sequentially
    consistent, which subsumes the fences of the original algorithm.

    The executor loads each deque in ascending job size, making the
    discipline dynamic LPT: the owner always holds its biggest remaining
    job, and an idle worker relieves a loaded one of its smallest. *)

type t

type steal =
  | Stolen of int  (** an item was stolen *)
  | Lost  (** lost a race with another thief or the owner — retry *)
  | Empty  (** nothing left to steal *)

val create : int array -> t
(** A deque holding the items (copied); index 0 is the steal end, the
    last index the owner's end. *)

val take : t -> int option
(** Owner only: pop from the owner's end. [None] when empty. *)

val steal : t -> steal
(** Any domain: steal from the opposite end. {!Lost} means contention,
    not emptiness — the caller decides whether to retry. *)

val length : t -> int
(** Racy snapshot of the remaining population (diagnostics only). *)
