(** Virtual registers of the AMD-GPU-like target.

    The two register classes mirror the AMDGPU backend: vector
    general-purpose registers (VGPRs, one value per lane) and scalar
    general-purpose registers (SGPRs, one value per wavefront). Register
    pressure is tracked per class because each class has its own
    occupancy limit (Section II-A of the paper). *)

type cls = Vgpr | Sgpr

type t = { cls : cls; id : int }
(** A virtual register: class plus a region-unique id per class. *)

val vgpr : int -> t
val sgpr : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val cls_equal : cls -> cls -> bool
val all_classes : cls list

val to_string : t -> string
(** ["v3"] or ["s7"]. *)

val cls_to_string : cls -> string
val pp : Format.formatter -> t -> unit
