let build = Ddg.Graph.build

let test_flow_edges_diamond () =
  let g = build (Tu.diamond_region ()) in
  (* 0:s_load 1:v_load 2:valu 3:valu 4:valu 5:store *)
  Alcotest.(check (option int)) "s_load -> v_load carries s_load latency"
    (Some (Ir.Opcode.default_latency Ir.Opcode.Smem_load))
    (Ddg.Graph.latency_between g 0 1);
  Alcotest.(check (option int)) "v_load -> valu carries load latency"
    (Some (Ir.Opcode.default_latency Ir.Opcode.Vmem_load))
    (Ddg.Graph.latency_between g 1 2);
  Alcotest.(check (option int)) "no edge between independent" None
    (Ddg.Graph.latency_between g 2 3);
  Alcotest.(check (list int)) "roots" [ 0 ] (Ddg.Graph.roots g);
  Alcotest.(check (list int)) "leaves" [ 5 ] (Ddg.Graph.leaves g)

let test_anti_output_edges () =
  (* non-SSA sequence: v0 = ...; use v0; v0 = ... again *)
  let v0 = Ir.Reg.vgpr 0 and v1 = Ir.Reg.vgpr 1 in
  let instrs =
    [
      Ir.Instr.make ~id:0 ~kind:Ir.Opcode.Valu ~defs:[ v0 ] ~uses:[] ();
      Ir.Instr.make ~id:1 ~kind:Ir.Opcode.Valu ~defs:[ v1 ] ~uses:[ v0 ] ();
      Ir.Instr.make ~id:2 ~kind:Ir.Opcode.Valu ~defs:[ v0 ] ~uses:[] ();
    ]
  in
  let g = build (Ir.Region.create_exn ~name:"antiout" instrs) in
  Alcotest.(check bool) "output dep 0->2" true (Ddg.Graph.latency_between g 0 2 <> None);
  Alcotest.(check bool) "anti dep 1->2" true (Ddg.Graph.latency_between g 1 2 <> None)

let test_mem_ordering () =
  let b = Ir.Builder.create ~name:"mem" in
  let a = Ir.Builder.valu b [] in
  Ir.Builder.vstore b ~data:[ a ] ~addr:[ a ] ();
  let l = Ir.Builder.vload b ~addr:[ a ] () in
  Ir.Builder.vstore b ~data:[ l ] ~addr:[ a ] ();
  let g = build (Ir.Builder.finish b) in
  (* store(1) -> load(2), load(2) -> store(3), store(1) -> store(3) *)
  Alcotest.(check bool) "store->load ordered" true (Ddg.Graph.latency_between g 1 2 <> None);
  Alcotest.(check bool) "load->store ordered" true (Ddg.Graph.latency_between g 2 3 <> None);
  Alcotest.(check bool) "store->store ordered" true (Ddg.Graph.latency_between g 1 3 <> None)

let test_scalar_loads_not_ordered () =
  let b = Ir.Builder.create ~name:"sload" in
  let a = Ir.Builder.valu b [] in
  Ir.Builder.vstore b ~data:[ a ] ~addr:[ a ] ();
  let s = Ir.Builder.sload b ~addr:[] () in
  ignore s;
  let g = build (Ir.Builder.finish b) in
  Alcotest.(check (option int)) "scalar load independent of store" None
    (Ddg.Graph.latency_between g 1 2)

let test_branch_depends_on_all () =
  let b = Ir.Builder.create ~name:"br" in
  let x = Ir.Builder.valu b [] in
  let y = Ir.Builder.valu b [ x ] in
  ignore y;
  Ir.Builder.emit b Ir.Opcode.Branch ~defs:[] ~uses:[];
  let g = build (Ir.Builder.finish b) in
  Alcotest.(check bool) "0 -> branch" true (Ddg.Graph.latency_between g 0 2 <> None);
  Alcotest.(check bool) "1 -> branch" true (Ddg.Graph.latency_between g 1 2 <> None)

let prop_edges_forward =
  QCheck.Test.make ~name:"all DDG edges point forward in program order" ~count:100
    (Tu.arb_graph ()) (fun g ->
      Array.for_all (fun (e : Ddg.Graph.edge) -> e.Ddg.Graph.src < e.Ddg.Graph.dst)
        g.Ddg.Graph.edges)

let prop_preds_succs_consistent =
  QCheck.Test.make ~name:"preds and succs are mirror images" ~count:100 (Tu.arb_graph ())
    (fun g ->
      let ok = ref true in
      for i = 0 to g.Ddg.Graph.n - 1 do
        Array.iter
          (fun (j, lat) ->
            if not (Array.exists (fun (p, l) -> p = i && l = lat) g.Ddg.Graph.preds.(j)) then
              ok := false)
          g.Ddg.Graph.succs.(i)
      done;
      !ok)

let test_topo_order_valid () =
  let g = build (Tu.diamond_region ()) in
  Alcotest.(check bool) "order is topological" true (Ddg.Topo.is_topological g (Ddg.Topo.order g))

let test_topo_rejects_bad_orders () =
  let g = build (Tu.diamond_region ()) in
  Alcotest.(check bool) "reversed is not topological" false
    (Ddg.Topo.is_topological g (Ddg.Topo.reverse_order g));
  Alcotest.(check bool) "wrong length rejected" false (Ddg.Topo.is_topological g [| 0; 1 |]);
  Alcotest.(check bool) "duplicate rejected" false
    (Ddg.Topo.is_topological g [| 0; 0; 1; 2; 3; 4 |])

let prop_topo_valid =
  QCheck.Test.make ~name:"Kahn order always topological" ~count:100 (Tu.arb_graph ())
    (fun g -> Ddg.Topo.is_topological g (Ddg.Topo.order g))

(* Naive reachability by DFS, for cross-checking the bitset closure. *)
let naive_reaches (g : Ddg.Graph.t) src dst =
  let visited = Array.make g.Ddg.Graph.n false in
  let rec dfs i =
    Array.exists
      (fun (j, _) -> j = dst || ((not visited.(j)) && (visited.(j) <- true; dfs j)))
      g.Ddg.Graph.succs.(i)
  in
  dfs src

let prop_closure_matches_dfs =
  QCheck.Test.make ~name:"closure = DFS reachability" ~count:40 (Tu.arb_graph ~max_size:25 ())
    (fun g ->
      let c = Ddg.Closure.compute g in
      let ok = ref true in
      for i = 0 to g.Ddg.Graph.n - 1 do
        for j = 0 to g.Ddg.Graph.n - 1 do
          if i <> j && Ddg.Closure.reaches c i j <> naive_reaches g i j then ok := false
        done
      done;
      !ok)

let prop_independent_symmetric =
  QCheck.Test.make ~name:"independence is symmetric" ~count:40 (Tu.arb_graph ~max_size:20 ())
    (fun g ->
      let c = Ddg.Closure.compute g in
      let ok = ref true in
      for i = 0 to g.Ddg.Graph.n - 1 do
        for j = 0 to g.Ddg.Graph.n - 1 do
          if Ddg.Closure.independent c i j <> Ddg.Closure.independent c j i then ok := false
        done
      done;
      !ok)

let prop_ready_ub_holds =
  QCheck.Test.make ~name:"ready-list UB bounds observed ready sizes" ~count:60
    (Tu.arb_graph ()) (fun g ->
      let c = Ddg.Closure.compute g in
      let ub = Ddg.Closure.ready_list_upper_bound c in
      let rl = Sched.Ready_list.create ~latency_aware:true g in
      let ok = ref true in
      while not (Sched.Ready_list.finished rl) do
        if Sched.Ready_list.ready_count rl > ub then ok := false;
        if Sched.Ready_list.ready_count rl > 0 then
          Sched.Ready_list.schedule rl (Sched.Ready_list.ready rl 0)
        else Sched.Ready_list.stall rl
      done;
      !ok)

let test_closure_example_figure1 () =
  (* A chain a->b->c plus two independent nodes: max independent = 2 for
     the chain members... construct a small graph and check the counts. *)
  let b = Ir.Builder.create ~name:"cl" in
  let x = Ir.Builder.valu b [] in
  let y = Ir.Builder.valu b [ x ] in
  ignore (Ir.Builder.valu b [ y ]);
  ignore (Ir.Builder.valu b []);
  (* independent of the chain *)
  let g = build (Ir.Builder.finish b) in
  let c = Ddg.Closure.compute g in
  Alcotest.(check int) "chain head independents" 1 (Ddg.Closure.independent_count c 0);
  Alcotest.(check int) "lone node independents" 3 (Ddg.Closure.independent_count c 3);
  Alcotest.(check int) "UB = max + 1" 4 (Ddg.Closure.ready_list_upper_bound c)

let test_critpath_diamond () =
  let g = build (Tu.diamond_region ()) in
  let cp = Ddg.Critpath.compute g in
  let sl = Ir.Opcode.default_latency Ir.Opcode.Smem_load in
  let vl = Ir.Opcode.default_latency Ir.Opcode.Vmem_load in
  (* 0:s_load 1:v_load 2/3:valu 4:valu 5:store *)
  Alcotest.(check int) "fwd at root" 0 (Ddg.Critpath.forward cp 0);
  Alcotest.(check int) "fwd at v_load" sl (Ddg.Critpath.forward cp 1);
  Alcotest.(check int) "fwd at mid" (sl + vl) (Ddg.Critpath.forward cp 2);
  Alcotest.(check int) "fwd at join" (sl + vl + 1) (Ddg.Critpath.forward cp 4);
  Alcotest.(check int) "bwd at root" (sl + vl + 2) (Ddg.Critpath.backward cp 0);
  Alcotest.(check int) "bwd at leaf" 0 (Ddg.Critpath.backward cp 5);
  Alcotest.(check int) "cp length" (sl + vl + 2) (Ddg.Critpath.critical_path_length cp)

let prop_length_lb_sound =
  QCheck.Test.make ~name:"length LB <= every list schedule" ~count:60 (Tu.arb_graph ())
    (fun g ->
      let lb = Ddg.Lower_bounds.schedule_length g in
      List.for_all
        (fun h -> Sched.Schedule.length (Sched.List_scheduler.run g h) >= lb)
        Sched.Heuristic.all)

let prop_rp_lb_sound =
  QCheck.Test.make ~name:"RP LB <= peak of every list schedule" ~count:60 (Tu.arb_graph ())
    (fun g ->
      List.for_all
        (fun h ->
          let s = Sched.List_scheduler.run g h in
          let peaks = Sched.Rp_tracker.naive_peaks g (Sched.Schedule.order s) in
          peaks Ir.Reg.Vgpr >= Ddg.Lower_bounds.register_pressure g Ir.Reg.Vgpr
          && peaks Ir.Reg.Sgpr >= Ddg.Lower_bounds.register_pressure g Ir.Reg.Sgpr)
        Sched.Heuristic.all)

let test_to_dot () =
  let g = build (Tu.diamond_region ()) in
  let dot = Ddg.Graph.to_dot g in
  Alcotest.(check bool) "dot output non-trivial" true (String.length dot > 50)

let suite =
  [
    Alcotest.test_case "flow edges + latencies" `Quick test_flow_edges_diamond;
    Alcotest.test_case "anti/output edges" `Quick test_anti_output_edges;
    Alcotest.test_case "memory ordering" `Quick test_mem_ordering;
    Alcotest.test_case "scalar loads unordered" `Quick test_scalar_loads_not_ordered;
    Alcotest.test_case "branch is a sink" `Quick test_branch_depends_on_all;
    Alcotest.test_case "topo order valid" `Quick test_topo_order_valid;
    Alcotest.test_case "topo rejects bad orders" `Quick test_topo_rejects_bad_orders;
    Alcotest.test_case "closure small example" `Quick test_closure_example_figure1;
    Alcotest.test_case "critical path diamond" `Quick test_critpath_diamond;
    Alcotest.test_case "dot rendering" `Quick test_to_dot;
  ]
  @ Tu.qtests
      [
        prop_edges_forward;
        prop_preds_succs_consistent;
        prop_topo_valid;
        prop_closure_matches_dfs;
        prop_independent_symmetric;
        prop_ready_ub_holds;
        prop_length_lb_sound;
        prop_rp_lb_sound;
      ]
