type kernel = {
  kernel_name : string;
  regions : Ir.Region.t list;
  hot_index : int;
  mem_ratio : float;
}

type benchmark = {
  bench_name : string;
  kernel : kernel;
  items : int;
  bytes_per_item : float;
}

type t = { kernels : kernel list; benchmarks : benchmark list }

type scale = {
  seed : int;
  num_kernels : int;
  extra_benchmarks : int;
  size_factor : float;
  small_regions_min : int;
  small_regions_max : int;
  include_giant : bool;
}

let test_scale =
  {
    seed = 2024;
    num_kernels = 8;
    extra_benchmarks = 2;
    size_factor = 0.5;
    small_regions_min = 2;
    small_regions_max = 6;
    include_giant = false;
  }

let bench_scale =
  {
    seed = 906;
    num_kernels = 40;
    extra_benchmarks = 12;
    size_factor = 1.0;
    small_regions_min = 6;
    small_regions_max = 24;
    include_giant = true;
  }

type family =
  | Reduce
  | Scan
  | Transform
  | Stencil
  | Matmul
  | Histogram
  | Sort
  | Gather
  | WideAccum

(* Matmul/WideAccum appear twice: register-hungry kernels are the ones the
   RP pass exists for, so the pool leans toward them the way rocPRIM leans
   toward tiled primitives. *)
let families =
  [| Reduce; Scan; Transform; Stencil; Matmul; Histogram; Sort; Gather; WideAccum;
     Matmul; WideAccum; Stencil |]

let family_name = function
  | Reduce -> "block_reduce"
  | Scan -> "block_scan"
  | Transform -> "device_transform"
  | Stencil -> "device_adjacent_difference"
  | Matmul -> "block_gemm_tile"
  | Histogram -> "device_histogram"
  | Sort -> "block_radix_sort"
  | Gather -> "device_select"
  | WideAccum -> "device_reduce_unrolled"

(* Scale an integer parameter, keeping a sane floor. *)
let scaled factor lo v = max lo (int_of_float (float_of_int v *. factor))

let hot_region rng factor family =
  let pick lo hi = lo + Support.Rng.int rng (hi - lo + 1) in
  match family with
  | Reduce -> (Shapes.reduction rng ~items:(scaled factor 4 (pick 12 64)), 0.80)
  | Scan -> (Shapes.scan rng ~items:(scaled factor 6 (pick 16 48)), 0.60)
  | Transform ->
      ( Shapes.transform rng ~unroll:(scaled factor 3 (pick 6 24)) ~chain:(pick 2 6),
        0.70 )
  | Stencil ->
      (Shapes.stencil rng ~outputs:(scaled factor 4 (pick 8 32)) ~radius:(pick 2 5), 0.50)
  | Matmul -> (Shapes.matmul_tile rng ~m:(scaled factor 4 (pick 8 26)) ~k:(pick 2 6), 0.30)
  | Histogram -> (Shapes.histogram rng ~items:(scaled factor 4 (pick 8 48)), 0.75)
  | Sort -> (Shapes.sort_pass rng ~items:(scaled factor 4 (pick 8 24)), 0.50)
  | Gather -> (Shapes.gather_compute rng ~lanes:(scaled factor 3 (pick 6 16)) ~chain:(pick 1 3), 0.80)
  | WideAccum ->
      ( Shapes.wide_accum rng
          ~accumulators:(scaled factor 8 (pick 18 34))
          ~rounds:(scaled factor 8 (pick 16 48)),
        0.55 )

let small_region rng =
  let r = Support.Rng.float rng in
  if r < 0.45 then Shapes.scalar_setup rng ~count:(2 + Support.Rng.int rng 10)
  else if r < 0.75 then
    Shapes.gather_compute rng ~lanes:(4 + Support.Rng.int rng 8) ~chain:(1 + Support.Rng.int rng 3)
  else if r < 0.9 then Shapes.reduction rng ~items:(2 + Support.Rng.int rng 6)
  else Shapes.scan rng ~items:(2 + Support.Rng.int rng 4)

let make_kernel rng scale index =
  let family = families.(index mod Array.length families) in
  let hot, mem_ratio = hot_region rng scale.size_factor family in
  let n_small =
    scale.small_regions_min
    + Support.Rng.int rng (max 1 (scale.small_regions_max - scale.small_regions_min + 1))
  in
  let smalls = List.init n_small (fun _ -> small_region rng) in
  {
    kernel_name = Printf.sprintf "%s_%d" (family_name family) index;
    regions = hot :: smalls;
    hot_index = 0;
    mem_ratio;
  }

let giant_kernel rng =
  let hot = Shapes.matmul_tile rng ~m:30 ~k:10 in
  let smalls = List.init 12 (fun _ -> small_region rng) in
  { kernel_name = "device_merge_sort_giant"; regions = hot :: smalls; hot_index = 0; mem_ratio = 0.4 }

let make_benchmark rng suffix kernel =
  let items = 1 lsl (14 + Support.Rng.int rng 8) in
  let bytes_per_item = float_of_int (4 * (1 + Support.Rng.int rng 4)) in
  {
    bench_name = Printf.sprintf "%s.%s" kernel.kernel_name suffix;
    kernel;
    items;
    bytes_per_item;
  }

let generate scale =
  let rng = Support.Rng.create scale.seed in
  let kernels = List.init scale.num_kernels (fun i -> make_kernel (Support.Rng.split rng) scale i) in
  let kernels = if scale.include_giant then kernels @ [ giant_kernel (Support.Rng.split rng) ] else kernels in
  let base_benchmarks = List.map (fun k -> make_benchmark rng "base" k) kernels in
  let kernel_array = Array.of_list kernels in
  let extras =
    List.init scale.extra_benchmarks (fun i ->
        let k = Support.Rng.choose rng kernel_array in
        make_benchmark rng (Printf.sprintf "variant%d" i) k)
  in
  { kernels; benchmarks = base_benchmarks @ extras }

(* A deliberately unbalanced compile workload: a handful of giant
   matmul-tile regions next to a long tail of tiny ones. A static
   round-robin of such a suite strands whoever drew the giants; it is
   the adversarial input for the executor's work stealing (the stolen
   jobs are the tail) and the shape the scaling benchmark sweeps. *)
let skewed ?(seed = 4242) ?(giants = 3) ?(tiny = 48) () =
  let rng = Support.Rng.create seed in
  let giant_kernels =
    List.init (max 0 giants) (fun i ->
        let rng = Support.Rng.split rng in
        let hot = Shapes.matmul_tile rng ~m:(24 + (4 * i)) ~k:(6 + i) in
        {
          kernel_name = Printf.sprintf "skew_giant_%d" i;
          regions = [ hot ];
          hot_index = 0;
          mem_ratio = 0.35;
        })
  in
  let tiny_kernels =
    List.init (max 0 tiny) (fun i ->
        let rng = Support.Rng.split rng in
        {
          kernel_name = Printf.sprintf "skew_tiny_%d" i;
          regions = [ small_region rng ];
          hot_index = 0;
          mem_ratio = 0.7;
        })
  in
  { kernels = giant_kernels @ tiny_kernels; benchmarks = [] }

(* Compile-side workload replication: each copy re-lists every kernel
   under a fresh name but shares the region values, the way template
   instantiation multiplies structurally identical regions across a real
   suite. Benchmarks are left untouched (they reference the original
   kernels); replication multiplies compile work, not execution work. *)
let replicate ~copies t =
  if copies <= 1 then t
  else
    let kernels =
      List.concat
        (List.init copies (fun c ->
             if c = 0 then t.kernels
             else
               List.map
                 (fun k ->
                   { k with kernel_name = Printf.sprintf "%s~dup%d" k.kernel_name c })
                 t.kernels))
    in
    { t with kernels }

type stats = {
  num_benchmarks : int;
  num_kernels : int;
  num_regions : int;
  max_region_size : int;
  avg_region_size : float;
}

let all_regions t = List.concat_map (fun k -> k.regions) t.kernels

let stats t =
  let regions = all_regions t in
  let sizes = List.map Ir.Region.size regions in
  let total = List.fold_left ( + ) 0 sizes in
  {
    num_benchmarks = List.length t.benchmarks;
    num_kernels = List.length t.kernels;
    num_regions = List.length regions;
    max_region_size = List.fold_left max 0 sizes;
    avg_region_size = float_of_int total /. float_of_int (List.length regions);
  }
