(** One simulated wavefront: 64 ants advancing in lockstep
    (Section IV-B maps one ant to one GPU thread; a block is one
    wavefront so no intra-block synchronization is needed).

    Each lockstep step asks every active ant for one construction step,
    charges the divergence-serialized compute cost and the coalescing-
    dependent memory transactions, and honours the wavefront-level
    optimizations: a single exploration coin per step, optional stalls
    only in designated wavefronts, early termination once a lane
    finishes, and a per-wavefront guiding heuristic. *)

type t

val create :
  ?shared:Aco.Ant.shared ->
  Config.t ->
  Ddg.Graph.t ->
  Aco.Params.t ->
  heuristic:Sched.Heuristic.kind ->
  allow_optional_stalls:bool ->
  t
(** Allocate the wavefront's ants, batched into one SoA colony arena
    sized once from the transitive-closure ready-list bound; all state is
    reused across iterations. [shared] lets a driver reuse one set of
    region analyses across every wavefront of the colony. *)

val lanes : t -> int

val arena_words : t -> int
(** Size of this wavefront's colony arena in words. *)

val retire : t -> unit
(** Return the colony arena and score matrix to their domain-local pools
    ({!Support.Arena.give}, {!Support.Fmat.give}). The wavefront must
    not run again after retirement; drivers call this once at backend
    teardown, after the best schedule has been copied out of the
    lanes. *)

val scored_candidates : t -> int
(** Cumulative fit-evaluated pass-2 candidates, summed over the lanes
    ({!Aco.Ant.scored_candidates}); drivers snapshot deltas around a
    pass. *)

val pruned_candidates : t -> int
(** Cumulative lower-bound-pruned candidates, summed over the lanes. *)

val set_obs :
  t ->
  trace:Obs.Trace.t ->
  metrics:Obs.Metrics.t ->
  track:int ->
  obs_cursor:float array ->
  simd_cursor:float array ->
  simd:int ->
  unit
(** Attach a flight recorder and metrics registry; [track] is this
    wavefront's trace track, [simd] the SIMD unit it round-robins onto.
    [obs_cursor].(1) must hold the current iteration's simulated start
    time and [simd_cursor].(simd) the summed construction time of the
    earlier wavefronts on the same unit; the wavefront adds its own time
    to that slot as it finishes. Mutable fields rather than per-call
    optional arguments — and driver-shared scratch arrays rather than
    values threaded through closures — so the untraced hot path (defaults
    [Obs.Trace.null] / [Obs.Metrics.null]) stays allocation-free inside
    the drivers' minor-words measurement windows. With tracing on, each
    lockstep round becomes a span on [track], and lane quarantines,
    memory replays and wavefront hangs become instant events; metrics
    record ready-list occupancy, optional stalls and the divergence
    serialization ratio. *)

type outcome = {
  time_ns : float;  (** simulated lockstep construction time *)
  work : int;  (** total abstract work of all lanes (CPU-model currency) *)
  serialized_ops : int;  (** compute ops after divergence serialization *)
  single_path_ops : int;  (** compute ops had every step been uniform *)
  steps : int;  (** lockstep steps executed *)
  ant_steps : int;  (** individual ant construction steps (active lanes summed) *)
  selections : int;  (** ant steps that selected an instruction (ranks 0–1) *)
  finished : Aco.Ant.t list;
      (** lanes that completed a schedule, in lane order; their state is
          valid until the next [run_iteration] on this wavefront *)
  hung : bool;
      (** the wavefront hung (injected fault) and was recovered by the
          watchdog; [finished] is empty and [time_ns] is the watchdog
          detection penalty *)
  quarantined : int;
      (** lanes killed by injected transient faults this iteration *)
  mem_faults : int;  (** memory-transaction replays injected this iteration *)
}

val run_iteration :
  ?faults:Faults.t ->
  t ->
  rng:Support.Rng.t ->
  mode:Aco.Ant.mode ->
  pheromone:Aco.Pheromone.t ->
  outcome
(** Construct one candidate schedule per lane. [rng] seeds the lanes
    (each lane receives an independent split, as each GPU thread
    receives a distinct seed). [faults] (default {!Faults.disabled})
    may hang the whole wavefront, quarantine individual lanes
    mid-construction, or replay a step's memory transactions; it never
    touches [rng], so a disabled injector leaves the construction
    byte-identical. *)
