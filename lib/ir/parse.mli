(** Textual scheduling regions — the compile service's ingest format.

    The grammar is the one {!Region.to_string} prints, extended with an
    optional [@latency] suffix on the mnemonic so non-default latencies
    survive a round trip:

    {v
    region <name> (<n> instrs)          # header optional
      %0: s_load s0 <-                  # defs before "<-", uses after
      %1: v_load@12 v0 <- s0            # explicit latency
      %2: v_store v0 s0                 # no defs: no arrow, all uses
      live-out: v0 s0                   # optional
    v}

    Instruction ids must be consecutive from zero (original program
    order); registers are written [v<n>] / [s<n>]. Blank lines and
    [#]-comments are ignored. Parsing is total: every malformed input is
    a typed {!error} naming the offending line, never an exception —
    this is the validation boundary the serve loop rejects hostile
    requests at. *)

type error = {
  line : int;  (** 1-based line number of the offending line *)
  what : string;  (** human-readable description *)
}

val error_to_string : error -> string

val region_of_string : string -> (Region.t, error) result
(** Parse and validate (via {!Region.create}, so id sequencing and
    live-out consistency are enforced too). *)

val region_to_wire : Region.t -> string
(** Render a region in the grammar above with every latency explicit —
    the canonical wire form: [region_of_string (region_to_wire r)]
    succeeds and reconstructs a structurally identical region (same
    fingerprint under [Engine.Region_ctx]). *)
