(** Latency-weighted critical paths through the DDG.

    The backward critical path ("distance to the farthest leaf") is the
    classic Critical-Path guiding heuristic (Section IV-A); forward plus
    backward distances give the schedule-length lower bound used for the
    termination test and the paper's filters. *)

type t

val compute : Graph.t -> t

val forward : t -> int -> int
(** [forward c i]: longest latency-weighted path from any root to [i]
    (0 at roots). Equals the earliest cycle at which [i] can issue. *)

val backward : t -> int -> int
(** Longest latency-weighted path from [i] to any leaf (0 at leaves). *)

val through : t -> int -> int
(** [forward + backward]: length of the longest path through [i]. *)

val critical_path_length : t -> int
(** Max over nodes of [through]. *)
