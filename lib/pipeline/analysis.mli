(** Content-addressed cache of {!Engine.Region_ctx.t}.

    Compilation setup — DDG closure, critical path, lower bounds, the
    AMD-heuristic schedule, register layout — dominates compile time for
    the small regions that make up most of a suite (Section VI-A's
    motivation for filtering). Real suites repeat themselves: rocPRIM
    kernels shared across benchmarks, template instantiations whose
    regions are structurally identical. This cache recognises the
    repetition by content, not by name: the key is the region's
    structural fingerprint ({!Engine.Region_ctx.fingerprint_of_region})
    salted with the occupancy model.

    The cache is domain-safe (one internal mutex) and computes misses
    {e outside} the lock through a per-key once-cell: the first
    requester installs the cell, analyses, and wakes any waiters;
    concurrent requesters of the same key block on the cell instead of
    re-analysing. The compile-service invariant — a distinct region is
    analysed exactly once no matter how many domains or racing backends
    want its context — holds, while domains missing on {e different}
    regions analyse concurrently. Eviction is LRU with a bounded entry
    count (in-flight cells are never evicted); all traffic is counted
    and mirrored into the registry's [analysis.cache.*] counters when
    one is attached. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  computed : int;  (** full analyses run (= misses, counted separately for gates) *)
  entries : int;  (** current resident contexts *)
  capacity : int;  (** 0 when caching is off *)
}

val default_capacity : int

val create : ?metrics:Obs.Metrics.t -> ?capacity:int -> unit -> t
(** [capacity <= 0] turns storage off: every {!get} computes (and
    counts) but nothing is retained — the [--cache off] configuration,
    still usable as a computation meter. *)

val disabled : unit -> t
(** [create ~capacity:0 ()]. *)

val caching : t -> bool
(** [capacity > 0]. *)

val get : t -> Machine.Occupancy.t -> Ir.Region.t -> Engine.Region_ctx.t
(** The region's analysis context, from cache when a structurally equal
    region was analysed before. A lookup that finds another domain's
    analysis still in flight waits for it (and counts as a hit). Note
    that a hit returns the context of the {e first} structurally-equal
    region seen: instruction names may differ from the requester's
    (everything the compiler emits — orders, slots, costs, stats — is
    name-independent). *)

val stats : t -> stats

val hit_rate : stats -> float
(** Hits over lookups, [0.0] when no lookups happened. *)

val pp_stats : Format.formatter -> stats -> unit
