(* Serve drill: drive the compile service at 4x its admission capacity
   under a 20% fault storm, with hostile frames mixed in, and check the
   daemon's whole contract at once:

     - every frame is answered exactly once (typed error, shed reply,
       or compile reply) — the service never drops or double-counts;
     - overload degrades to Shed_overload (Critical-Path schedule, no
       ACO work) instead of stalling or failing;
     - every emitted order — clean, degraded or shed — re-validates;
     - the final ledger tally and the Obs.Metrics counters account for
       100% of the requests;
     - the drain is clean and the process exits 0.

   Everything is simulated time, so the run is deterministic in its
   seeds. Run with: dune exec examples/serve_drill.exe *)

let () =
  let metrics = Obs.Metrics.create () in
  let replies = ref [] in
  let on_reply r = replies := r :: !replies in
  let compile =
    Pipeline.Compile.make_config ~fault_rate:0.2 ~fault_seed:99
      ~compile_budget_ms:1.0 ()
  in
  let compile = { compile with Pipeline.Compile.run_sequential = false } in
  let cfg =
    {
      (Pipeline.Serve.default_config compile) with
      Pipeline.Serve.queue_capacity = 8;
      max_in_flight = 2;
      shed_threshold = 0.75;
      max_retries = 2;
    }
  in
  let srv = Pipeline.Serve.create ~metrics ~on_reply cfg in
  (* 4x admission capacity, in bursts that outrun the processing pump *)
  let total = 4 * cfg.Pipeline.Serve.queue_capacity in
  let shapes = [| "scan"; "reduction"; "transform"; "stencil" |] in
  for i = 0 to total - 1 do
    let req =
      Printf.sprintf "op=compile id=q%d client=drill-%d shape=%s size=%d seed=%d" i
        (i mod 3) shapes.(i mod Array.length shapes)
        (16 + (i mod 5 * 8))
        (i * 7)
    in
    Pipeline.Serve.handle srv ~client:"drill" req;
    (* pump only every 8th request: the queue fills and sheds *)
    if i mod 8 = 7 then ignore (Pipeline.Serve.process srv)
  done;
  (* hostile traffic: a framing violation and two malformed payloads *)
  Pipeline.Serve.handle_frame_error srv ~client:"hostile"
    (Support.Frame.Oversized { length = 1 lsl 30; limit = 1 lsl 20 });
  Pipeline.Serve.handle srv ~client:"hostile" "op=compile id=bad1 shape=nonesuch";
  Pipeline.Serve.handle srv ~client:"hostile"
    "op=compile id=bad2\nregion broken (1 instrs)\n  %0: not_an_opcode v0 <-";
  Pipeline.Serve.drain srv;

  (* --- accounting ------------------------------------------------------ *)
  let frames = total + 3 in
  let replies = List.rev !replies in
  let compiled, rejected_replies, byes =
    List.fold_left
      (fun (c, r, b) reply ->
        match reply with
        | Pipeline.Serve.Compiled x -> (x :: c, r, b)
        | Pipeline.Serve.Rejected _ -> (c, r + 1, b)
        | Pipeline.Serve.Drained _ -> (c, r, b + 1)
        | _ -> (c, r, b))
      ([], 0, 0) replies
  in
  let compiled = List.rev compiled in
  let tally = Pipeline.Serve.tally srv in
  let counter name =
    match Obs.Metrics.get metrics name with
    | Some m -> Obs.Metrics.count m
    | None -> 0
  in
  let check what ok =
    Printf.printf "  %-52s %s\n" what (if ok then "ok" else "FAIL");
    if not ok then exit 1
  in
  Printf.printf "drill: %d compile requests at 4x capacity, fault rate 0.2, +3 hostile frames\n\n"
    total;
  let histogram =
    List.fold_left
      (fun acc (r : Pipeline.Serve.compile_reply) ->
        let label = Pipeline.Robust.degradation_label r.Pipeline.Serve.rep_outcome in
        let n = try List.assoc label acc with Not_found -> 0 in
        (label, n + 1) :: List.remove_assoc label acc)
      [] compiled
  in
  Printf.printf "outcomes:\n";
  List.iter (fun (label, n) -> Printf.printf "  %-16s %d\n" label n)
    (List.sort compare histogram);
  Printf.printf "\naccounting:\n";
  check "every frame received" (Pipeline.Serve.received srv = frames);
  check "every frame answered (replies = frames + bye)"
    (List.length replies = frames + 1);
  check "compile replies + rejects = frames"
    (List.length compiled + rejected_replies = frames);
  check "exactly one bye" (byes = 1);
  check "ledger covers every compile reply"
    (tally.Pipeline.Robust.regions = List.length compiled);
  check "some requests were shed" (tally.Pipeline.Robust.shed_overload > 0);
  check "hostile frames all rejected" (rejected_replies = 3);
  check "metrics agree: serve.requests = frames" (counter "serve.requests" = frames);
  check "metrics agree: serve.malformed = rejects"
    (counter "serve.malformed" = rejected_replies);
  check "metrics agree: serve.shed_overload = ledger shed"
    (counter "serve.shed_overload" = tally.Pipeline.Robust.shed_overload);
  check "metrics agree: latency histogram covers every compile reply"
    ((match Obs.Metrics.get metrics "serve.latency_ns" with
     | Some m -> Obs.Metrics.count m
     | None -> 0)
    = List.length compiled);
  check "per-client counters cover every frame"
    (counter "serve.client.drill.requests"
     + counter "serve.client.drill-0.requests"
     + counter "serve.client.drill-1.requests"
     + counter "serve.client.drill-2.requests"
     + counter "serve.client.hostile.requests"
    = frames);
  check "drained cleanly" (Pipeline.Serve.state srv = `Drained);
  check "queue empty after drain" (Pipeline.Serve.queue_depth srv = 0);
  (* every emitted order — including shed Critical-Path answers and
     faulted fallbacks — must reconstruct into a valid schedule *)
  let all_valid =
    List.for_all
      (fun (r : Pipeline.Serve.compile_reply) ->
        let shape = r.Pipeline.Serve.rep_region in
        let id = r.Pipeline.Serve.rep_id in
        let i = int_of_string (String.sub id 1 (String.length id - 1)) in
        match
          Workload.Shapes.of_spec ~name:shape
            ~size:(16 + (i mod 5 * 8))
            ~seed:(i * 7)
        with
        | None -> false
        | Some region -> (
            match
              Sched.Schedule.of_order (Ddg.Graph.build region)
                r.Pipeline.Serve.rep_order
            with
            | Ok _ -> true
            | Error _ -> false))
      compiled
  in
  check "every emitted order re-validates" all_valid;
  Printf.printf "\nledger: %d regions — %d clean, %d retried, %d budget, %d fallback, %d shed\n"
    tally.Pipeline.Robust.regions tally.Pipeline.Robust.clean
    tally.Pipeline.Robust.retried tally.Pipeline.Robust.budget_exceeded
    tally.Pipeline.Robust.faulted_fallback tally.Pipeline.Robust.shed_overload;
  print_endline "serve drill passed"
