(** The GPU-parallel ACO scheduler (Sections IV-B and V) running on the
    simulated GPU.

    One ant per thread, one wavefront per block; per iteration all
    wavefronts construct schedules in lockstep, a tree reduction selects
    the iteration winner, and the pheromone table is updated in parallel.
    The algorithm itself is exact — it produces real schedules that must
    validate — while its wall time is charged by {!Kernel_sim},
    {!Divergence} and {!Mem_model} under the configuration's
    optimization toggles. *)

type pass_stats = Engine.Types.pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;  (** total abstract work units of all ants *)
  time_ns : float;  (** simulated GPU wall time of the pass *)
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;  (** divergence-serialized compute ops *)
  single_path_ops : int;  (** the no-divergence floor for the same steps *)
  lockstep_steps : int;  (** wavefront lockstep steps across all iterations *)
  ant_steps : int;  (** individual ant construction steps *)
  selections : int;  (** ant steps that selected an instruction *)
  best_costs : int array;
      (** convergence series: entry 0 is the initial cost, entry [k] the
          best cost after the [k]th attempted iteration (retried
          iterations included, their best unchanged) *)
  minor_words : float;
      (** host (OCaml) minor-heap words allocated during the pass — the
          allocation-discipline counter the arena refactor drives toward
          zero per ant step *)
  retries : int;
      (** faulted iterations re-run with a reseeded stream (each charged
          an exponential backoff in simulated time) *)
  aborted_budget : bool;
      (** the pass ran out of compile budget and kept its best-so-far *)
  aborted_faults : bool;
      (** consecutive failures exhausted the retry allowance and the pass
          degraded to its best-so-far *)
  scored_candidates : int;
      (** pass-2 candidates whose RP fit was evaluated across all
          wavefronts (tracker-meter delta across the pass) *)
  pruned_candidates : int;
      (** candidates dismissed by the min-register lower bounds; nonzero
          only under a pruning-capable configuration *)
  fault_counts : Faults.counts;  (** faults injected during this pass *)
}
(** The engine's unified statistics record (see {!Engine.Types}); this
    backend fills every field. *)

val no_pass : pass_stats

type result = Engine.Types.result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
      (** pass 2's input schedule (the latency-padded pass-1 winner) *)
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type Engine.Backend.ext +=
  | Gpu_config of Config.t
      (** launch geometry and optimization toggles (default {!Config.bench}) *)
  | Fault_injector of Faults.t
      (** explicit injector; when absent one is derived from the
          configuration's fault rates and seed *)
  | Watchdog of { iteration_deadline_ns : float; max_retries : int }
      (** per-iteration watchdog deadline and the consecutive-failure
          retry allowance (defaults: no deadline, 2 retries) *)
(** Context extensions the ["par"] backend reads in [prepare]. *)

val backend : Engine.Backend.t
(** The ["par"] backend: RP pass, fault injection, flight-recorder
    tracing and a simulated-time model ([Time_ns] budgets). *)

val register : unit -> unit
(** Install {!backend} in {!Engine.Registry} (idempotent). *)

val run :
  ?params:Aco.Params.t -> ?seed:int -> Config.t -> Machine.Occupancy.t -> Ddg.Graph.t -> result

val run_from_setup :
  ?params:Aco.Params.t ->
  ?seed:int ->
  ?faults:Faults.t ->
  ?budget_ns:float ->
  ?iteration_deadline_ns:float ->
  ?max_retries:int ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?label:string ->
  Config.t ->
  Aco.Setup.t ->
  result
(** As {!run} but from a prepared {!Aco.Setup.t}, so the pipeline can
    race the sequential and parallel drivers from identical inputs.

    Observability: [trace] (default {!Obs.Trace.null}) attaches a flight
    recorder — track 0 carries driver-level iteration/pass spans and
    fault instants, track 1 the kernel-stage budget, tracks 2.. one per
    wavefront — timestamped in simulated nanoseconds. [metrics] (default
    {!Obs.Metrics.null}) records per-iteration best-cost and
    pheromone-entropy series named ["<label>passN.*"] plus fault and
    robustness counters. Both default to disabled recorders, which are
    true no-ops: schedules, RNG streams and the reported [minor_words]
    stay byte-identical.

    Robustness controls (all default to the fault-free, unbounded
    behaviour, leaving existing callers byte-identical):
    - [faults]: the fault injector. When omitted, one is built from
      [config.faults]/[config.fault_seed] (or {!Faults.disabled} when
      all rates are zero).
    - [budget_ns]: per-region compile budget in simulated nanoseconds,
      shared across both passes; an over-budget pass aborts keeping its
      best-so-far artifact and reports [aborted_budget].
    - [iteration_deadline_ns]: watchdog deadline for a single iteration
      ({!Kernel_sim.watchdog_clamp}); a fired watchdog discards the
      iteration's winner and charges exactly the deadline.
    - [max_retries]: consecutive faulted iterations tolerated before the
      pass degrades to its best-so-far ([aborted_faults]). Every
      constructed winner must additionally pass schedule validation
      before it is trusted. *)

val total_time_ns : result -> float
(** GPU time across both passes. *)

val total_retries : result -> int

val total_faults : result -> Faults.counts

val degraded : result -> bool
(** True when either pass aborted (budget or faults) and emitted its
    best-so-far rather than running to its termination condition. *)
