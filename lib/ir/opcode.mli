(** Instruction kinds of the AMD-GPU-like target with default result
    latencies.

    The paper's machine model is single-issue but latency-aware
    (Section II-A); latencies here are compressed versions of real GCN
    latencies (a VMEM load takes hundreds of cycles on Vega) — what
    matters for the scheduler is the *relative* gap between cheap ALU
    ops and long memory loads, which creates the mandatory/optional
    stall decisions of Section IV-C and makes the paper's 21-cycle
    filter threshold meaningful. *)

type kind =
  | Valu  (** vector ALU, 1 cycle *)
  | Valu_trans  (** transcendental vector ALU (rcp/sqrt/exp), 4 cycles *)
  | Salu  (** scalar ALU, 1 cycle *)
  | Vmem_load  (** global/buffer load, long latency *)
  | Vmem_store  (** global/buffer store, no consumer latency *)
  | Smem_load  (** scalar (constant) load *)
  | Lds  (** local data share access *)
  | Branch  (** control flow; region terminator *)
  | Export  (** export / final write *)

val default_latency : kind -> int
(** Cycles between issue and availability of the defined registers. *)

val to_string : kind -> string

val of_string : string -> kind option
(** Inverse of {!to_string} (the mnemonics are a bijection); [None] for
    an unknown mnemonic. *)

val equal : kind -> kind -> bool
val all : kind list

val is_memory : kind -> bool
(** Loads/stores/LDS — used by the performance model to classify kernels
    as memory-bound. *)
