(** Classic greedy list scheduling driven by a single heuristic.

    Used to build initial schedules for the ACO search (Section IV-A: an
    initial schedule is constructed with a heuristic such as
    Critical-Path or Last-Use-Count) and as a comparison point in the
    scheduling-sensitivity filter. *)

val run : ?latency_aware:bool -> Ddg.Graph.t -> Heuristic.kind -> Schedule.t
(** Schedule the whole region, issuing the highest-priority ready
    instruction each cycle and stalling when none is ready.
    [latency_aware] defaults to [true]; pass [false] for the pass-1
    (order-only) variant. The result always validates. *)

val run_order : Ddg.Graph.t -> Heuristic.kind -> int array
(** Pass-1 convenience: the instruction order of
    [run ~latency_aware:false]. *)
