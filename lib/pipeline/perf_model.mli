(** Execution-time model for the compiled benchmarks (Figure 4,
    Table 7).

    A benchmark's runtime is dominated by its kernel's hot region. The
    model combines the two quantities the scheduler controls:

    - compute time proportional to the hot region's schedule length;
    - memory time proportional to the (schedule-independent) traffic the
      heuristic hot schedule implies, divided by a latency-hiding factor
      that grows with the kernel's occupancy.

    An *un-modeled-factor* term captures everything the scheduler cannot
    see (caching, banking, DRAM phase): a deterministic pseudo-random
    perturbation whose magnitude grows with how far the emitted schedule
    strays from the heuristic order, biased toward harm. Regions changed
    radically for a marginal modeled gain can therefore regress — exactly
    the regressions the cycle-threshold filter exists to remove
    (Section VI-D / Table 7). *)

type final_choice = {
  cost : Sched.Cost.t;
  order : int array;
  reverted : bool;  (** post-scheduling filter reverted to the heuristic *)
  aco_ran : bool;  (** some ACO pass actually executed under this threshold *)
}

val final_for : Filters.config -> Compile.region_report -> final_choice
(** Synthesize the compiler's emitted schedule for a region under the
    given filter settings (see {!Compile}: the suite is compiled ungated
    and thresholds are applied afterwards). *)

type view = Heuristic | Cp | Final of Filters.config

val kernel_occupancy : view -> Compile.kernel_report -> int
(** Minimum occupancy across the kernel's regions — the register
    allocator sizes the kernel by its worst region. *)

val benchmark_time : view -> Compile.suite_report -> Workload.Suite.benchmark -> float
(** Modeled time per work item (arbitrary units, comparable across
    views), including the un-modeled-factor perturbation for [Final]. *)

val benchmark_throughput : view -> Compile.suite_report -> Workload.Suite.benchmark -> float
(** [bytes_per_item / time] — the GB/s-like figure rocPRIM reports. *)

val speedup_pct : Filters.config -> Compile.suite_report -> Workload.Suite.benchmark -> float
(** Throughput change of the ACO build vs the heuristic build, percent
    (positive = improvement). *)

val sensitive : Compile.suite_report -> Workload.Suite.benchmark -> bool
(** The scheduling-sensitivity criterion of Section VI-A (coefficient of
    variation of the base / CP / ACO times); the paper's 3%% bar on
    hardware-noisy measurements maps to 2%% on our jitter-free modeled
    times. *)

val reldist : int array -> int array -> float
(** Normalized permutation distance between two instruction orders
    (0 = identical, ~1 = unrecognizably shuffled) — the magnitude knob of
    the un-modeled-factor term, exposed for the test suite. *)
