(** Minor-allocation counters for the hot-loop perf instrumentation.

    [Gc.minor_words] is a monotone counter of words allocated on the
    minor heap; deltas around a region of code measure its allocation
    rate with no sampling noise. The drivers wrap each ACO pass in a
    span and surface the delta in their pass stats, and the bench
    harness asserts a per-ant-step ceiling from the same numbers. *)

val minor_words : unit -> float
(** Words allocated on the minor heap since program start. *)

type t
(** An accumulating counter (for spans that start and stop across
    function boundaries). *)

val create : unit -> t
val start : t -> unit

val stop : t -> unit
(** Closes an open {!start} window, adding its delta to the total. A
    no-op when not started (e.g. after {!reset}), so teardown paths can
    call it unconditionally. *)

val span : ?into:t -> (unit -> 'a) -> 'a * float
(** [span f] runs [f] and returns its result with the minor words it
    allocated. The measurement is exception-safe: if [f] raises, the
    delta up to the raise is still accumulated into [into] (when given)
    before the exception is re-raised with its backtrace. *)

val total : t -> float
val reset : t -> unit
