type pass_stats = Engine.Types.pass_stats = {
  invoked : bool;
  iterations : int;
  ants_simulated : int;
  work : int;
  time_ns : float;
  improved : bool;
  hit_lower_bound : bool;
  serialized_ops : int;
  single_path_ops : int;
  lockstep_steps : int;
  ant_steps : int;
  selections : int;
  best_costs : int array;
  minor_words : float;
  retries : int;
  aborted_budget : bool;
  aborted_faults : bool;
  scored_candidates : int;
  pruned_candidates : int;
  fault_counts : Faults.counts;
}

let no_pass = Engine.Types.no_pass

type result = Engine.Types.result = {
  schedule : Sched.Schedule.t;
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;
  pass2_initial : Sched.Schedule.t;
  pass1 : pass_stats;
  pass2 : pass_stats;
}

type Engine.Backend.ext +=
  | Gpu_config of Config.t
  | Fault_injector of Faults.t
  | Watchdog of { iteration_deadline_ns : float; max_retries : int }

(* Wavefront role assignment (Section V-B): when per-wavefront heuristics
   are on, half the wavefronts use the aggressive Critical-Path
   heuristic and a quarter each use Last-Use-Count and source order. *)
let heuristic_for (config : Config.t) params w =
  if config.opts.Config.per_wavefront_heuristic then
    match w mod 4 with
    | 2 -> Sched.Heuristic.Last_use_count
    | 3 -> Sched.Heuristic.Source_order
    | _ -> Sched.Heuristic.Critical_path
  else params.Aco.Params.heuristic

let allow_optional_for (config : Config.t) w =
  let frac = config.opts.Config.optional_stall_fraction in
  let allowed =
    int_of_float ((frac *. float_of_int config.num_wavefronts) +. 0.5)
  in
  w < allowed

let make_wavefronts ?shared config graph params =
  Array.init config.Config.num_wavefronts (fun w ->
      Wavefront.create ?shared config graph params
        ~heuristic:(heuristic_for config params w)
        ~allow_optional_stalls:(allow_optional_for config w))

(* One parallel ACO pass on the simulated GPU. Generic in the ant cost
   and the winning artifact, like the sequential driver.

   Robustness discipline around the plain search loop:
   - every reduction winner passes [validate_artifact] before it can
     become the emitted artifact (corrupted colony state never ships);
   - a faulted iteration (hang, quarantine, lost reduction message,
     watchdog abort, or a winner failing validation) is retried with a
     reseeded RNG under exponential backoff charged to simulated time,
     at most [max_retries] consecutive times before the pass degrades to
     its best-so-far artifact;
   - the pass aborts once its accumulated simulated time crosses
     [budget_ns], again keeping the best-so-far artifact. *)
let run_pass (type a) ~params ~(config : Config.t) ~rng ~wavefronts ~pheromone ~policy
    ~mode ~(cost_of_ant : Aco.Ant.t -> int) ~(artifact_of_ant : Aco.Ant.t -> a)
    ~(validate_artifact : a -> bool) ~faults ~budget_ns ~iteration_deadline_ns ~max_retries
    ~trace ~metrics ~pass_label ~obs_cursor ~simd_cursor
    ~initial_cost ~(initial_order : int array) ~(initial_artifact : a) ~lb_cost ~termination
    ~n ~ready_ub =
  let open Aco.Params in
  policy.Aco.Pheromone_policy.init pheromone ~initial_order ~initial_cost;
  let lanes = config.target.Machine.Target.wavefront_size in
  let threads = Config.threads config in
  let faults_before = Faults.counts faults in
  (* Flight-recorder state. Everything the traced path touches inside the
     loop is allocated here, before the minor-words snapshot, so the
     untraced hot path is limited to branches on [tracing]/[metering] and
     the measured allocation stays byte-identical with tracing off. *)
  let tracing = Obs.Trace.enabled trace in
  let metering = Obs.Metrics.enabled metrics in
  let pass_t0 = Obs.Trace.now trace in
  let m_best = if metering then pass_label ^ ".best_cost" else "" in
  let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
  (* Convergence series: entry 0 is the initial cost, entry [k] the best
     cost after the [k]th attempted iteration (retries included). *)
  let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
  let bc_len = ref 1 in
  if tracing then begin
    let setup_ns = Mem_model.setup_time_ns config ~n ~ready_ub in
    Obs.Trace.span trace ~track:1 ~name:"kernel_launch" ~ts:pass_t0
      ~dur:config.launch_overhead_ns;
    Obs.Trace.span trace ~track:1 ~name:"mem_setup"
      ~ts:(pass_t0 +. config.launch_overhead_ns)
      ~dur:setup_ns;
    obs_cursor.(0) <- pass_t0 +. config.launch_overhead_ns +. setup_ns
  end;
  (* Candidate meters are cumulative on the ants' trackers; the pass
     reports deltas, summed outside the minor-words window. *)
  let sum_meters () =
    let scored = ref 0 and pruned = ref 0 in
    for w = 0 to Array.length wavefronts - 1 do
      let wf = Array.unsafe_get wavefronts w in
      scored := !scored + Wavefront.scored_candidates wf;
      pruned := !pruned + Wavefront.pruned_candidates wf
    done;
    (!scored, !pruned)
  in
  let scored_before, pruned_before = sum_meters () in
  let minor_before = Support.Perfcount.minor_words () in
  let best_cost = ref initial_cost in
  let best = ref initial_artifact in
  let improved = ref false in
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  let ants_total = ref 0 in
  let serialized = ref 0 in
  let single = ref 0 in
  let lockstep_steps = ref 0 in
  let ant_steps = ref 0 in
  let selections = ref 0 in
  (* Per-iteration buffers, allocated once per pass and reused: the
     iteration loop itself stays allocation-free apart from the finished
     lists the wavefronts report. *)
  let num_wavefronts = Array.length wavefronts in
  let wavefront_times = Array.make (max 1 num_wavefronts) 0.0 in
  let outcomes : Wavefront.outcome option array = Array.make (max 1 num_wavefronts) None in
  let cost_buf = Array.make threads max_int in
  let red_cost = Array.make threads 0 in
  let red_idx = Array.make threads 0 in
  (* Iteration times land in a growable buffer (an iteration can add a
     backoff entry besides its own time, hence the factor 2). *)
  let iter_times = ref (Array.make (max 8 (min ((2 * params.max_iterations) + 4) 4096)) 0.0) in
  let iter_count = ref 0 in
  let push_time x =
    if !iter_count = Array.length !iter_times then begin
      let grown = Array.make (2 * Array.length !iter_times) 0.0 in
      Array.blit !iter_times 0 grown 0 !iter_count;
      iter_times := grown
    end;
    !iter_times.(!iter_count) <- x;
    incr iter_count
  in
  let elapsed = ref 0.0 in
  let retries = ref 0 in
  let consecutive_failures = ref 0 in
  let aborted_budget = ref false in
  let aborted_faults = ref false in
  let stop = ref false in
  let within_budget () = !elapsed < budget_ns in
  while
    (not !stop) && within_budget () && !best_cost > lb_cost && !no_improve < termination
    && !iterations < params.max_iterations
  do
    incr iterations;
    if tracing then begin
      (* Wavefronts round-robin over the SIMD units; a unit runs its
         wavefronts back to back, so a wavefront's track starts at the
         sum of the times of the earlier wavefronts on the same unit.
         The wavefronts read and advance these cursors themselves
         (installed via [Wavefront.set_obs]) so the per-iteration closure
         below captures nothing the untraced build does not. *)
      Array.fill simd_cursor 0 (Array.length simd_cursor) 0.0;
      obs_cursor.(1) <- obs_cursor.(0)
    end;
    (* Per-thread cost table for the reduction; losers and killed lanes
       report max_int. *)
    Array.fill cost_buf 0 threads max_int;
    let iter_faulted = ref false in
    Array.iteri
      (fun w wavefront ->
        let outcome = Wavefront.run_iteration ~faults wavefront ~rng ~mode ~pheromone in
        outcomes.(w) <- Some outcome;
        wavefront_times.(w) <- outcome.Wavefront.time_ns;
        work := !work + outcome.Wavefront.work;
        serialized := !serialized + outcome.Wavefront.serialized_ops;
        single := !single + outcome.Wavefront.single_path_ops;
        lockstep_steps := !lockstep_steps + outcome.Wavefront.steps;
        ant_steps := !ant_steps + outcome.Wavefront.ant_steps;
        selections := !selections + outcome.Wavefront.selections;
        ants_total := !ants_total + Wavefront.lanes wavefront;
        if outcome.Wavefront.hung || outcome.Wavefront.quarantined > 0 then
          iter_faulted := true;
        List.iteri
          (fun k ant -> cost_buf.((w * lanes) + k) <- cost_of_ant ant)
          outcome.Wavefront.finished)
      wavefronts;
    let winner_cost, winner_idx =
      Reduction.min_reduce_into ~costs:cost_buf ~scratch_cost:red_cost ~scratch_idx:red_idx
    in
    let dropped = Faults.enabled faults && Faults.reduction_drop faults in
    if dropped then iter_faulted := true;
    let iter_time_raw = Kernel_sim.iteration_time_ns config ~n ~wavefront_times in
    let iter_time, watchdog_fired =
      Kernel_sim.watchdog_clamp ~deadline_ns:iteration_deadline_ns iter_time_raw
    in
    if watchdog_fired then iter_faulted := true;
    push_time iter_time;
    elapsed := !elapsed +. iter_time;
    if tracing then begin
      Kernel_sim.trace_iteration trace config ~n ~track:1 ~ts:obs_cursor.(1)
        ~construction_ns:(Kernel_sim.construction_time_ns config ~wavefront_times);
      obs_cursor.(0) <- obs_cursor.(1) +. iter_time;
      if watchdog_fired then
        Obs.Trace.instant trace ~track:0 ~name:"watchdog_fired" ~ts:obs_cursor.(0);
      if dropped then
        Obs.Trace.instant trace ~track:1 ~name:"reduction_drop" ~ts:obs_cursor.(0)
    end;
    if metering then begin
      if watchdog_fired then Obs.Metrics.incr metrics "faults.watchdog_fired";
      if dropped then Obs.Metrics.incr metrics "faults.reduction_drop"
    end;
    (* The winner's thread index decomposes into its wavefront and its
       position in that wavefront's finished list. *)
    let winner_ant =
      if winner_cost < max_int then
        match outcomes.(winner_idx / lanes) with
        | Some o -> List.nth_opt o.Wavefront.finished (winner_idx mod lanes)
        | None -> None
      else None
    in
    let accepted =
      (not dropped) && (not watchdog_fired)
      &&
      match winner_ant with
      | Some ant ->
          let artifact = artifact_of_ant ant in
          (* Validation guard: a winner that does not reconstruct into a
             valid schedule is quarantined — the iteration failed. *)
          if validate_artifact artifact then begin
            policy.Aco.Pheromone_policy.update pheromone
              ~winner_order:(Aco.Ant.order ant) ~winner_cost;
            (* An equal-cost winner still becomes the emitted artifact — the
               ACO build ships the schedule the ants constructed — but only a
               strict improvement resets the termination counter. *)
            if winner_cost <= !best_cost then best := artifact;
            if winner_cost < !best_cost then begin
              best_cost := winner_cost;
              improved := true;
              no_improve := 0
            end
            else incr no_improve;
            true
          end
          else begin
            iter_faulted := true;
            false
          end
      | None -> false
    in
    if accepted then consecutive_failures := 0
    else if !iter_faulted then begin
      (* Guard-and-retry: the table still evaporates (simulated time
         passed) but the failed iteration deposits nothing and advances
         no stagnation bookkeeping, then the iteration is re-run from a
         reseeded stream with exponential backoff charged to simulated
         time; [max_retries] consecutive failures degrade the pass to
         its best-so-far. *)
      policy.Aco.Pheromone_policy.evaporate pheromone;
      if !consecutive_failures < max_retries then begin
        incr retries;
        incr consecutive_failures;
        ignore (Support.Rng.int64 rng);
        let backoff =
          Faults.retry_backoff_ns *. (2.0 ** float_of_int (!consecutive_failures - 1))
        in
        push_time backoff;
        elapsed := !elapsed +. backoff;
        if tracing then begin
          Obs.Trace.instant_arg trace ~track:0 ~name:"retry" ~ts:obs_cursor.(0)
            ~key:"attempt"
            ~value:(float_of_int !consecutive_failures);
          Obs.Trace.span trace ~track:0 ~name:"retry_backoff" ~ts:obs_cursor.(0)
            ~dur:backoff;
          obs_cursor.(0) <- obs_cursor.(0) +. backoff
        end;
        if metering then Obs.Metrics.incr metrics "robust.retries"
      end
      else begin
        aborted_faults := true;
        stop := true;
        if tracing then
          Obs.Trace.instant trace ~track:0 ~name:"fault_abort" ~ts:obs_cursor.(0);
        if metering then Obs.Metrics.incr metrics "robust.fault_aborts"
      end
    end
    else begin
      (* A clean iteration with no surviving winner: same table upkeep
         as the sequential colony's winner-less branch. *)
      policy.Aco.Pheromone_policy.update pheromone
        ~winner_order:Aco.Pheromone_policy.no_order ~winner_cost:max_int;
      incr no_improve
    end;
    bc_buf.(!bc_len) <- !best_cost;
    incr bc_len;
    if tracing then
      Obs.Trace.span_arg trace ~track:0 ~name:"iteration" ~ts:obs_cursor.(1)
        ~dur:iter_time ~key:"best_cost"
        ~value:(float_of_int !best_cost);
    if metering then begin
      Obs.Metrics.push metrics m_best (float_of_int !best_cost);
      Obs.Metrics.push metrics m_entropy (Aco.Pheromone.row_entropy pheromone)
    end
  done;
  if budget_ns < infinity && not (within_budget ()) then aborted_budget := true;
  let time_ns =
    Kernel_sim.pass_time_ns_buf config ~n ~ready_ub ~times:!iter_times ~count:!iter_count
  in
  (* The baseline evaluated the stats record's fields right to left, so
     [fault_counts] (which allocates) landed inside the measured window
     and the convergence series (textually before [minor_words]) must
     stay out of it: bind them explicitly in that order to keep the
     reported delta byte-identical with tracing off. *)
  let fault_counts = Faults.sub (Faults.counts faults) faults_before in
  let minor_delta = Support.Perfcount.minor_words () -. minor_before in
  let scored_after, pruned_after = sum_meters () in
  let best_costs = Array.sub bc_buf 0 !bc_len in
  if tracing then begin
    let teardown = Mem_model.teardown_time_ns config ~n in
    Obs.Trace.span trace ~track:1 ~name:"mem_teardown"
      ~ts:(pass_t0 +. time_ns -. teardown)
      ~dur:teardown;
    Obs.Trace.span_arg trace ~track:0 ~name:pass_label ~ts:pass_t0 ~dur:time_ns
      ~key:"best_cost"
      ~value:(float_of_int !best_cost);
    if !aborted_budget then
      Obs.Trace.instant trace ~track:0 ~name:"budget_abort" ~ts:obs_cursor.(0);
    Obs.Trace.set_now trace (pass_t0 +. time_ns)
  end;
  if metering && !aborted_budget then Obs.Metrics.incr metrics "robust.budget_aborts";
  ( !best,
    !best_cost,
    {
      invoked = true;
      iterations = !iterations;
      ants_simulated = !ants_total;
      work = !work;
      time_ns;
      improved = !improved;
      hit_lower_bound = !best_cost <= lb_cost;
      serialized_ops = !serialized;
      single_path_ops = !single;
      lockstep_steps = !lockstep_steps;
      ant_steps = !ant_steps;
      selections = !selections;
      best_costs;
      minor_words = minor_delta;
      retries = !retries;
      aborted_budget = !aborted_budget;
      aborted_faults = !aborted_faults;
      scored_candidates = scored_after - scored_before;
      pruned_candidates = pruned_after - pruned_before;
      fault_counts;
    } )

type state = {
  params : Aco.Params.t;
  config : Config.t;
  rng : Support.Rng.t;
  wavefronts : Wavefront.t array;
  pheromone : Aco.Pheromone.t;
  policy : Aco.Pheromone_policy.t;
  faults : Faults.t;
  iteration_deadline_ns : float;
  max_retries : int;
  trace : Obs.Trace.t;
  metrics : Obs.Metrics.t;
  obs_cursor : float array;
  simd_cursor : float array;
  termination : int;
  n : int;
  ready_ub : int;
  graph : Ddg.Graph.t;
  rp_scalar_of_ant : Aco.Ant.t -> int;
}

(* The GPU model meters simulated nanoseconds, so its budget currency is
   [Time_ns]; a [Work] budget indicates a pipeline wiring bug. *)
let ns_of_budget = function
  | Engine.Types.Unlimited -> infinity
  | Engine.Types.Time_ns t -> t
  | Engine.Types.Work _ ->
      invalid_arg "Par_aco: work budgets belong to backends without a time model"

module Backend_impl = struct
  let name = "par"

  let caps =
    {
      Engine.Types.rp_pass = true;
      faults = true;
      trace = true;
      time_model = true;
      prune = false;
    }

  (* The GPU model races under the paper's own rules: vanilla Ant System
     pheromone (threaded as the [As] policy below) and the cliff
     objective. *)
  let objective = None

  type nonrec state = state

  let prepare (ctx : Engine.Backend.ctx) (rc : Engine.Region_ctx.t) =
    let setup = rc.Engine.Region_ctx.setup in
    let graph = setup.Aco.Setup.graph in
    let occ = setup.Aco.Setup.occ in
    let n = graph.Ddg.Graph.n in
    let params = ctx.Engine.Backend.params in
    let trace = ctx.Engine.Backend.trace in
    let metrics = ctx.Engine.Backend.metrics in
    (* Backend-specific context: launch geometry, fault injector and
       watchdog arrive as extensions; unknown extensions are ignored. *)
    let config =
      List.fold_left
        (fun acc e -> match e with Gpu_config c -> c | _ -> acc)
        Config.bench ctx.Engine.Backend.ext
    in
    let iteration_deadline_ns, max_retries =
      List.fold_left
        (fun acc e ->
          match e with
          | Watchdog { iteration_deadline_ns; max_retries } ->
              (iteration_deadline_ns, max_retries)
          | _ -> acc)
        (infinity, 2) ctx.Engine.Backend.ext
    in
    let injector =
      List.fold_left
        (fun acc e -> match e with Fault_injector f -> Some f | _ -> acc)
        None ctx.Engine.Backend.ext
    in
    let seed = ctx.Engine.Backend.seed in
    let faults =
      match injector with
      | Some f -> f
      | None ->
          if Config.faults_enabled config.Config.faults then
            (* Mix the region size and driver seed into the injector seed so
               different regions see different — but replayable — fault
               patterns. *)
            Faults.create config.Config.faults
              ~seed:(config.Config.fault_seed lxor (n * 0x9e3779b1) lxor (seed * 0x85ebca77))
          else Faults.disabled
    in
    let rng = Support.Rng.create seed in
    (* The region context's analyses (critical path, register layout,
       closure ready-list bound) feed every wavefront of the colony. *)
    let shared = Aco.Ant.shared_of_region_ctx rc in
    let wavefronts = make_wavefronts ~shared config graph params in
    (* Track layout: 0 = driver, 1 = kernel stages, 2.. = one per
       wavefront. Hooks are attached here, outside any measured window, so
       the per-iteration calls need no optional-argument wrapping. *)
    let simds = Machine.Target.total_simds config.Config.target in
    (* Driver-owned simulated-time cursors, shared with every wavefront:
       [obs_cursor].(0) is the driver cursor, (1) the current iteration's
       start; [simd_cursor].(s) sums the construction time of the
       wavefronts already run on SIMD unit [s] this iteration. *)
    let obs_cursor = Array.make 2 0.0 in
    let simd_cursor = Array.make (max 1 simds) 0.0 in
    if Obs.Trace.enabled trace || Obs.Metrics.enabled metrics then begin
      Obs.Trace.name_track trace 0 "driver";
      Obs.Trace.name_track trace 1 "kernel: reduce + pheromone";
      Array.iteri
        (fun w wf ->
          Obs.Trace.name_track trace (2 + w) (Printf.sprintf "wavefront %d" w);
          Wavefront.set_obs wf ~trace ~metrics ~track:(2 + w) ~obs_cursor ~simd_cursor
            ~simd:(w mod simds))
        wavefronts
    end;
    let pheromone = Aco.Pheromone.create ~n ~initial:params.Aco.Params.initial_pheromone in
    let policy = Aco.Pheromone_policy.make Aco.Pheromone_policy.As ~params ~n ~metrics in
    let termination = Aco.Pheromone_policy.patience policy in
    let ready_ub = Aco.Ant.shared_ready_ub shared in
    let rp_scalar_of_ant ant =
      let v, s = Aco.Ant.rp_peaks ant in
      Sched.Cost.rp_scalar (Sched.Cost.rp_of_peaks occ ~vgpr:v ~sgpr:s)
    in
    {
      params;
      config;
      rng;
      wavefronts;
      pheromone;
      policy;
      faults;
      iteration_deadline_ns;
      max_retries;
      trace;
      metrics;
      obs_cursor;
      simd_cursor;
      termination;
      n;
      ready_ub;
      graph;
      rp_scalar_of_ant;
    }

  let run_order_pass st (req : Engine.Backend.order_request) =
    let order, _, stats =
      run_pass ~params:st.params ~config:st.config ~rng:st.rng ~wavefronts:st.wavefronts
        ~pheromone:st.pheromone ~policy:st.policy ~mode:Aco.Ant.Rp_pass
        ~cost_of_ant:st.rp_scalar_of_ant
        ~artifact_of_ant:Aco.Ant.order
        ~validate_artifact:(fun order ->
          Result.is_ok (Sched.Schedule.of_order st.graph order))
        ~faults:st.faults
        ~budget_ns:(ns_of_budget req.Engine.Backend.o_budget)
        ~iteration_deadline_ns:st.iteration_deadline_ns ~max_retries:st.max_retries
        ~trace:st.trace ~metrics:st.metrics ~pass_label:req.Engine.Backend.o_label
        ~obs_cursor:st.obs_cursor ~simd_cursor:st.simd_cursor
        ~initial_cost:req.Engine.Backend.o_initial_cost
        ~initial_order:req.Engine.Backend.o_initial_order
        ~initial_artifact:req.Engine.Backend.o_initial_order
        ~lb_cost:req.Engine.Backend.o_lb_cost ~termination:st.termination ~n:st.n
        ~ready_ub:st.ready_ub
    in
    (order, stats)

  let run_schedule_pass st (req : Engine.Backend.schedule_request) =
    let schedule, _, stats =
      run_pass ~params:st.params ~config:st.config ~rng:st.rng ~wavefronts:st.wavefronts
        ~pheromone:st.pheromone ~policy:st.policy
        ~mode:
          (Aco.Ant.Ilp_pass
             {
               target_vgpr = req.Engine.Backend.s_target_vgpr;
               target_sgpr = req.Engine.Backend.s_target_sgpr;
             })
        ~cost_of_ant:Aco.Ant.length
        ~artifact_of_ant:(fun ant ->
          match Aco.Ant.schedule ant with
          | Some s -> s
          | None -> invalid_arg "Par_aco: finished ant produced invalid schedule")
        ~validate_artifact:(fun s -> Sched.Schedule.is_valid s ~latency_aware:true)
        ~faults:st.faults
        ~budget_ns:(ns_of_budget req.Engine.Backend.s_budget)
        ~iteration_deadline_ns:st.iteration_deadline_ns ~max_retries:st.max_retries
        ~trace:st.trace ~metrics:st.metrics ~pass_label:req.Engine.Backend.s_label
        ~obs_cursor:st.obs_cursor ~simd_cursor:st.simd_cursor
        ~initial_cost:req.Engine.Backend.s_initial_length
        ~initial_order:(Sched.Schedule.order req.Engine.Backend.s_initial)
        ~initial_artifact:req.Engine.Backend.s_initial
        ~lb_cost:req.Engine.Backend.s_length_lb ~termination:st.termination ~n:st.n
        ~ready_ub:st.ready_ub
    in
    (schedule, stats)

  let teardown st = Array.iter Wavefront.retire st.wavefronts
end

let backend : Engine.Backend.t = (module Backend_impl)
let register () = Engine.Registry.register backend

let run_from_setup ?(params = Aco.Params.default) ?(seed = 1) ?faults ?(budget_ns = infinity)
    ?(iteration_deadline_ns = infinity) ?(max_retries = 2) ?(trace = Obs.Trace.null)
    ?(metrics = Obs.Metrics.null) ?(label = "") (config : Config.t)
    (setup : Aco.Setup.t) =
  let ext =
    Gpu_config config
    :: Watchdog { iteration_deadline_ns; max_retries }
    :: (match faults with Some f -> [ Fault_injector f ] | None -> [])
  in
  Engine.Two_pass.run backend
    {
      Engine.Backend.params;
      seed;
      budget =
        (if budget_ns = infinity then Engine.Types.Unlimited
         else Engine.Types.Time_ns budget_ns);
      trace;
      metrics;
      label;
      ext;
    }
    (Engine.Region_ctx.of_setup setup)

let run ?params ?seed config occ graph =
  run_from_setup ?params ?seed config (Aco.Setup.prepare occ graph)

let total_time_ns r = r.pass1.time_ns +. r.pass2.time_ns

let total_retries r = r.pass1.retries + r.pass2.retries

let total_faults r = Faults.add r.pass1.fault_counts r.pass2.fault_counts

let degraded r =
  r.pass1.aborted_budget || r.pass2.aborted_budget || r.pass1.aborted_faults
  || r.pass2.aborted_faults
